#include "apps/rw_phases.hpp"

#include <gtest/gtest.h>

namespace adx::apps {
namespace {

rw_phases_config fast(rw_lock_mode m) {
  rw_phases_config c;
  c.processors = 6;
  c.readers = 4;
  c.writers = 2;
  c.ops_per_phase = 16;
  c.phases = 4;
  c.read_work = sim::microseconds(30);
  c.write_work = sim::microseconds(90);
  c.think = sim::microseconds(60);
  c.mode = m;
  c.cost = locks::lock_cost_model::fast_test();
  c.machine = sim::machine_config::test_machine(6);
  return c;
}

TEST(RwPhases, CompletesWithoutViolations) {
  for (auto m : {rw_lock_mode::fixed_reader_pref, rw_lock_mode::fixed_writer_pref,
                 rw_lock_mode::fixed_balanced, rw_lock_mode::adaptive}) {
    const auto r = run_rw_phases(fast(m));
    EXPECT_FALSE(r.exclusion_violated) << to_string(m);
    EXPECT_GT(r.reads, 0u) << to_string(m);
    EXPECT_GT(r.writes, 0u) << to_string(m);
  }
}

TEST(RwPhases, Deterministic) {
  const auto a = run_rw_phases(fast(rw_lock_mode::adaptive));
  const auto b = run_rw_phases(fast(rw_lock_mode::adaptive));
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
  EXPECT_EQ(a.bias_reconfigurations, b.bias_reconfigurations);
}

TEST(RwPhases, AdaptiveModeActuallyAdapts) {
  const auto r = run_rw_phases(fast(rw_lock_mode::adaptive));
  EXPECT_GT(r.bias_reconfigurations, 0u);
}

TEST(RwPhases, FixedModesNeverReconfigure) {
  for (auto m : {rw_lock_mode::fixed_reader_pref, rw_lock_mode::fixed_writer_pref,
                 rw_lock_mode::fixed_balanced}) {
    const auto r = run_rw_phases(fast(m));
    EXPECT_EQ(r.bias_reconfigurations, 0u) << to_string(m);
  }
}

TEST(RwPhases, WriterPrefCutsWriterWaiting) {
  const auto rp = run_rw_phases(fast(rw_lock_mode::fixed_reader_pref));
  const auto wp = run_rw_phases(fast(rw_lock_mode::fixed_writer_pref));
  EXPECT_LT(wp.mean_writer_wait_us, rp.mean_writer_wait_us);
}

TEST(RwPhases, ValidatesConfig) {
  auto c = fast(rw_lock_mode::adaptive);
  c.readers = 10;  // readers + writers > processors
  EXPECT_THROW((void)run_rw_phases(c), std::invalid_argument);
}

TEST(RwPhases, NamesAreStable) {
  EXPECT_STREQ(to_string(rw_lock_mode::adaptive), "adaptive bias");
  EXPECT_STREQ(to_string(rw_lock_mode::fixed_balanced), "fixed balanced (bias 50)");
}

}  // namespace
}  // namespace adx::apps
