#include "apps/kvstore.hpp"

#include <gtest/gtest.h>

namespace adx::apps {
namespace {

kv_config fast(locks::lock_kind k) {
  kv_config c;
  c.processors = 4;
  c.threads = 12;
  c.ops_per_thread = 25;
  c.buckets = 8;
  c.hot_fraction = 0.5;
  c.op_work = sim::microseconds(30);
  c.think = sim::microseconds(80);
  c.kind = k;
  c.cost = locks::lock_cost_model::fast_test();
  c.machine = sim::machine_config::test_machine(4);
  return c;
}

TEST(KvStore, NoOperationLost) {
  const auto r = run_kv_workload(fast(locks::lock_kind::blocking));
  EXPECT_EQ(r.total_ops, 12u * 25u);
}

TEST(KvStore, NoOperationLostAdaptive) {
  const auto r = run_kv_workload(fast(locks::lock_kind::adaptive));
  EXPECT_EQ(r.total_ops, 12u * 25u);
}

TEST(KvStore, Deterministic) {
  const auto a = run_kv_workload(fast(locks::lock_kind::adaptive));
  const auto b = run_kv_workload(fast(locks::lock_kind::adaptive));
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
  EXPECT_EQ(a.hot_requests, b.hot_requests);
}

TEST(KvStore, HotBucketHotterThanColdOnes) {
  auto c = fast(locks::lock_kind::blocking);
  c.hot_fraction = 0.7;
  const auto r = run_kv_workload(c);
  EXPECT_GT(r.hot_requests, r.cold_requests / (c.buckets - 1));
  EXPECT_GT(r.hot_contention, r.cold_contention);
  EXPECT_GT(r.hot_peak_waiting, 1);
}

TEST(KvStore, AdaptiveDivergesPerLock) {
  // The paper's per-lock adaptation claim: the hot bucket's lock and a cold
  // bucket's lock end up in different configurations.
  auto c = fast(locks::lock_kind::adaptive);
  c.hot_fraction = 0.8;
  c.threads = 16;
  c.params.adapt = {2, 10, 100, 2};
  const auto r = run_kv_workload(c);
  ASSERT_GE(r.hot_final_spin, 0);
  ASSERT_GE(r.cold_final_spin, 0);
  // Cold bucket: no contention -> pure spin at the cap, and its waiters
  // never block. Hot bucket under multiprogramming: deep waiting repeatedly
  // cuts the spin budget, so blocking happened during the run. (The *final*
  // hot spin value is not asserted: the end-of-run drain leaves the hot lock
  // uncontended, and its last samples legitimately flip it back to spin.)
  EXPECT_EQ(r.cold_final_spin, 100);
  EXPECT_GT(r.hot_blocks, 0u);
  EXPECT_EQ(r.cold_blocks, 0u);
  EXPECT_GT(r.hot_contention, r.cold_contention);
}

TEST(KvStore, SeedChangesSchedule) {
  auto a = fast(locks::lock_kind::blocking);
  auto b = fast(locks::lock_kind::blocking);
  b.seed = a.seed + 1;
  EXPECT_NE(run_kv_workload(a).elapsed.ns, run_kv_workload(b).elapsed.ns);
}

TEST(KvStore, ValidatesConfig) {
  auto c = fast(locks::lock_kind::spin);
  c.buckets = 0;
  EXPECT_THROW((void)run_kv_workload(c), std::invalid_argument);
  c = fast(locks::lock_kind::spin);
  c.processors = 0;
  EXPECT_THROW((void)run_kv_workload(c), std::invalid_argument);
}

TEST(KvStore, SingleBucketDegeneratesToOneLock) {
  auto c = fast(locks::lock_kind::blocking);
  c.buckets = 1;
  c.hot_fraction = 1.0;
  const auto r = run_kv_workload(c);
  EXPECT_EQ(r.total_ops, 12u * 25u);
  EXPECT_EQ(r.cold_requests, 0u);
}

}  // namespace
}  // namespace adx::apps
