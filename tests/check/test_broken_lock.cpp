// End-to-end checker validation: the planted-bug lock must be caught by the
// sweep, the failure must replay from its journal, and the shrinker must
// produce a (possibly empty) journal that still reproduces it. A checker
// that cannot catch a known-broken lock proves nothing about correct ones.
#include <gtest/gtest.h>

#include <optional>
#include <utility>

#include "check/runner.hpp"

namespace adx::check {
namespace {

check_params broken_params(std::uint64_t seed,
                           sim::perturb_profile profile = sim::perturb_profile::delay()) {
  check_params p;
  p.config = run_config{}
                 .with_machine(sim::machine_config::test_machine(4))
                 .with_perturb(profile)
                 .with_seed(seed);
  p.fix = fixture::broken_lock;
  return p;
}

/// The broken lock's races are seed-dependent; sweep until one fires.
std::optional<std::pair<check_params, check_result>> find_failure() {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    for (const auto& profile :
         {sim::perturb_profile::delay(), sim::perturb_profile::chaos()}) {
      auto p = broken_params(seed, profile);
      auto r = run_check(p);
      if (r.failed()) return {{p, std::move(r)}};
    }
  }
  return std::nullopt;
}

TEST(BrokenLock, SweepCatchesThePlantedBug) {
  const auto failure = find_failure();
  ASSERT_TRUE(failure.has_value())
      << "no seed in the sweep tripped the broken lock";
  const auto& [p, r] = *failure;
  bool safety = false;
  for (const auto& v : r.violations) {
    safety |= v.oracle == "mutual-exclusion" || v.oracle == "lost-wakeup" ||
              v.oracle == "deadlock";
  }
  EXPECT_TRUE(safety) << to_string(r.violations.front());
}

TEST(BrokenLock, FailureReplaysFromItsJournal) {
  const auto failure = find_failure();
  ASSERT_TRUE(failure.has_value());
  const auto& [p, r] = *failure;
  const auto replay = replay_check(p, r.trace);
  EXPECT_TRUE(replay.failed());
}

TEST(BrokenLock, ShrinkerReducesToAStableReproducer) {
  const auto failure = find_failure();
  ASSERT_TRUE(failure.has_value());
  const auto& [p, r] = *failure;
  const auto shrunk = shrink_trace(p, r.trace);
  EXPECT_TRUE(shrunk.still_fails);
  EXPECT_LE(shrunk.minimal.size(), r.trace.size());
  EXPECT_GT(shrunk.replays, 0u);
}

TEST(BrokenLock, ConfigJsonRoundTripsTheFailingRun) {
  const auto failure = find_failure();
  ASSERT_TRUE(failure.has_value());
  const auto& [p, r] = *failure;
  auto p2 = p;
  p2.config = run_config::from_json(p.config.to_json());
  EXPECT_EQ(p2.config, p.config);
  EXPECT_TRUE(run_check(p2).failed());
}

TEST(Checker, CorrectLocksPassTheSweep) {
  for (const auto kind : locks::all_lock_kinds()) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      check_params p;
      p.config = run_config{}
                     .with_machine(sim::machine_config::test_machine(4))
                     .with_lock(kind)
                     .with_perturb(sim::perturb_profile::preempt())
                     .with_seed(seed);
      p.fix = fixture::mutex;
      p.iterations = 8;
      const auto r = run_check(p);
      EXPECT_TRUE(r.completed) << locks::to_string(kind) << " seed " << seed;
      EXPECT_TRUE(r.violations.empty())
          << locks::to_string(kind) << " seed " << seed << ": "
          << to_string(r.violations.front());
    }
  }
}

TEST(Checker, ReconfigFixtureExercisesPsiSafely) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    check_params p;
    p.config = run_config{}
                   .with_machine(sim::machine_config::test_machine(4))
                   .with_lock(locks::lock_kind::reconfigurable)
                   .with_perturb(sim::perturb_profile::delay())
                   .with_seed(seed);
    p.fix = fixture::reconfig;
    const auto r = run_check(p);
    EXPECT_TRUE(r.completed) << "seed " << seed;
    EXPECT_TRUE(r.violations.empty())
        << "seed " << seed << ": " << to_string(r.violations.front());
  }
}

TEST(Checker, FixtureNamesRoundTrip) {
  for (const auto f : all_fixtures()) {
    EXPECT_EQ(parse_fixture(to_string(f)), f);
  }
  EXPECT_THROW((void)parse_fixture("nope"), std::invalid_argument);
}

TEST(Checker, RunsAreDeterministic) {
  auto p = broken_params(7);
  p.fix = fixture::mutex;
  p.config.with_lock(locks::lock_kind::blocking);
  const auto a = run_check(p);
  const auto b = run_check(p);
  EXPECT_EQ(a.end_time.ns, b.end_time.ns);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.trace, b.trace);
}

}  // namespace
}  // namespace adx::check
