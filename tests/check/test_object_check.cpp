#include "check/objects.hpp"

#include <gtest/gtest.h>

#include "objects/object_policy.hpp"

#include <stdexcept>

namespace adx::check {
namespace {

object_check_params point(const char* object, std::uint64_t seed,
                          sim::perturb_profile profile = sim::perturb_profile::preempt()) {
  object_check_params p;
  p.config = run_config{}
                 .with_machine(sim::machine_config::test_machine(4))
                 .with_lock(object == std::string("hashmap") ? locks::lock_kind::adaptive
                                                             : locks::lock_kind::blocking)
                 .with_perturb(profile)
                 .with_seed(seed)
                 .with_object(object);
  p.iterations = 10;
  return p;
}

TEST(ObjectCheck, HashmapPassesEveryOracle) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto r = run_object_check(point("hashmap", seed));
    EXPECT_TRUE(r.completed) << "seed " << seed;
    for (const auto& v : r.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << to_string(v);
    }
  }
}

TEST(ObjectCheck, MonitorPassesEveryOracle) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto r = run_object_check(point("monitor", seed));
    EXPECT_TRUE(r.completed) << "seed " << seed;
    for (const auto& v : r.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << to_string(v);
    }
  }
}

TEST(ObjectCheck, RunsAreDeterministic) {
  for (const char* object : {"hashmap", "monitor"}) {
    const auto a = run_object_check(point(object, 7, sim::perturb_profile::chaos()));
    const auto b = run_object_check(point(object, 7, sim::perturb_profile::chaos()));
    EXPECT_EQ(a.end_time.ns, b.end_time.ns) << object;
    EXPECT_EQ(a.events, b.events) << object;
    EXPECT_EQ(a.trace, b.trace) << object;
  }
}

TEST(ObjectCheck, ReplayWithFullJournalReproducesTheRun) {
  const auto p = point("hashmap", 11, sim::perturb_profile::delay());
  const auto rec = run_object_check(p);
  const auto rep = replay_object_check(p, rec.trace);
  EXPECT_EQ(rep.end_time.ns, rec.end_time.ns);
  EXPECT_EQ(rep.events, rec.events);
  EXPECT_EQ(rep.violations.size(), rec.violations.size());
}

TEST(ObjectCheck, UnknownObjectKindThrows) {
  auto p = point("hashmap", 1);
  p.config.object = "btree";
  EXPECT_THROW((void)run_object_check(p), std::invalid_argument);
}

TEST(ObjectCheck, ObjectPolicyOverrideIsApplied) {
  // A valid override runs clean; a wrong-family policy name must fail fast.
  auto p = point("hashmap", 2);
  p.config.object_policy = objects::default_map_spec().with_param("load-grow", 120);
  EXPECT_TRUE(run_object_check(p).violations.empty());
  p.config.object_policy = policy::policy_spec{}.with_name("mode-adapt");
  EXPECT_THROW((void)run_object_check(p), std::invalid_argument);
}

}  // namespace
}  // namespace adx::check
