#include "locks/run_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "policy/registry.hpp"

namespace adx {
namespace {

TEST(RunConfig, DefaultRoundTripsThroughJson) {
  const run_config rc{};
  EXPECT_EQ(run_config::from_json(rc.to_json()), rc);
}

TEST(RunConfig, CustomizedConfigRoundTripsThroughJson) {
  auto rc = run_config{}
                .with_machine(sim::machine_config::test_machine(4))
                .with_lock(locks::lock_kind::adaptive)
                .with_policy(locks::waiting_policy::pure_spin(32))
                .with_grant_mode(1)
                .with_perturb(sim::perturb_profile::chaos())
                .with_seed(42);
  rc.machine.wire_model = sim::interconnect_model::butterfly;
  rc.params.combined_spin_limit = 17;
  rc.params.adapt = {12, 20, 400, 2};
  EXPECT_EQ(run_config::from_json(rc.to_json()), rc);
}

TEST(RunConfig, EveryRegisteredPolicySpecRoundTripsThroughJson) {
  for (const auto name : policy::all_policy_names()) {
    auto rc = run_config{}.with_lock(locks::lock_kind::adaptive);
    rc.params.policy = policy::default_spec(name, 3);
    EXPECT_EQ(run_config::from_json(rc.to_json()), rc) << name;
  }
}

TEST(RunConfig, WrappedPolicySpecRoundTripsThroughJson) {
  auto rc = run_config{}.with_lock(locks::lock_kind::adaptive);
  rc.params.policy = policy::default_spec("break-even")
                         .with_param("break_even_us", 120.25)
                         .with_hysteresis(3)
                         .with_deadband(16)
                         .with_cooldown(6);
  const auto back = run_config::from_json(rc.to_json());
  EXPECT_EQ(back, rc);
  EXPECT_EQ(back.params.policy.params.at("break_even_us"), 120.25);
  ASSERT_EQ(back.params.policy.wrappers.size(), 3u);
  EXPECT_EQ(back.params.policy.wrappers[1].kind, "deadband");
}

TEST(RunConfig, ConfigsWithoutAPolicyKeyStayOnTheDefault) {
  // Pre-engine configs (and hand-written ones) omit "policy" entirely.
  const auto rc = run_config::from_json(R"({"lock": "adaptive"})");
  EXPECT_TRUE(rc.params.policy.is_default());
}

TEST(RunConfig, EveryPresetProfileRoundTrips) {
  for (const auto& p :
       {sim::perturb_profile::none(), sim::perturb_profile::ties(),
        sim::perturb_profile::delay(), sim::perturb_profile::preempt(),
        sim::perturb_profile::latency(), sim::perturb_profile::chaos()}) {
    const auto rc = run_config{}.with_perturb(p);
    EXPECT_EQ(run_config::from_json(rc.to_json()).perturb, p) << to_string(p);
  }
}

TEST(RunConfig, EffectiveMachineAppliesTheRunSeed) {
  auto rc = run_config{}.with_machine(sim::machine_config::test_machine(4));
  const auto base_seed = rc.machine.seed;
  EXPECT_EQ(rc.effective_machine().seed, base_seed);  // seed 0: keep as-is
  rc.with_seed(777);
  EXPECT_EQ(rc.effective_machine().seed, 777u);
  EXPECT_EQ(rc.machine.seed, base_seed);  // the stored config is untouched
}

TEST(RunConfig, MissingAndUnknownKeysAreTolerated) {
  const auto rc = run_config::from_json(R"({"seed": 9, "future_key": [1, 2]})");
  EXPECT_EQ(rc.seed, 9u);
  EXPECT_EQ(rc.lock, locks::lock_kind::spin);  // default preserved
}

TEST(RunConfig, MalformedJsonThrows) {
  EXPECT_THROW((void)run_config::from_json("not json"), std::invalid_argument);
  EXPECT_THROW((void)run_config::from_json("{\"seed\": }"), std::invalid_argument);
}

TEST(RunConfig, RejectsZeroGroupSize) {
  // group_size feeds machine_config::group_of()/groups() as a divisor; zero
  // must be rejected at the parse boundary, not crash the first model query.
  EXPECT_THROW((void)run_config::from_json(R"({"machine": {"group_size": 0}})"),
               std::invalid_argument);
  const auto rc = run_config::from_json(R"({"machine": {"group_size": 4}})");
  EXPECT_EQ(rc.machine.group_size, 4u);
}

TEST(RunConfig, FluentBuilderSetsEveryField) {
  const auto rc = run_config{}
                      .with_nodes(6)
                      .with_lock(locks::lock_kind::combined)
                      .with_grant_mode(1)
                      .with_perturb(sim::perturb_profile::preempt())
                      .with_seed(5);
  EXPECT_EQ(rc.machine.nodes, 6u);
  EXPECT_EQ(rc.lock, locks::lock_kind::combined);
  EXPECT_EQ(rc.params.grant_mode, 1);
  EXPECT_EQ(rc.perturb, sim::perturb_profile::preempt());
  EXPECT_EQ(rc.seed, 5u);
}

TEST(RunConfig, ObjectAxisRoundTripsThroughJson) {
  auto spec = policy::policy_spec{}.with_name("stripe-adapt").with_param("load-grow", 120);
  const auto rc = run_config{}.with_object("hashmap").with_object_policy(spec).with_seed(3);
  const auto back = run_config::from_json(rc.to_json());
  EXPECT_EQ(back, rc);
  EXPECT_EQ(back.object, "hashmap");
  EXPECT_EQ(back.object_policy.name, "stripe-adapt");
  EXPECT_EQ(back.object_policy.params.at("load-grow"), 120.0);
}

TEST(RunConfig, ObjectAxisIsOmittedFromPureLockConfigs) {
  const auto rc = run_config{};
  const auto text = rc.to_json();
  EXPECT_EQ(text.find("\"object\""), std::string::npos) << text;
  EXPECT_EQ(text.find("\"object_policy\""), std::string::npos) << text;
  const auto back = run_config::from_json(text);
  EXPECT_TRUE(back.object.empty());
  EXPECT_TRUE(back.object_policy.is_default());
}

TEST(RunConfig, ShardsRoundTripAndDefaultOmission) {
  // shards == 1 (the default) must not appear: pre-sharding configs and
  // replay journals stay byte-stable.
  const auto plain = run_config{}.to_json();
  EXPECT_EQ(plain.find("\"shards\""), std::string::npos) << plain;

  const auto rc = run_config{}.with_shards(8);
  const auto text = rc.to_json();
  EXPECT_NE(text.find("\"shards\":8"), std::string::npos) << text;
  const auto back = run_config::from_json(text);
  EXPECT_EQ(back, rc);
  EXPECT_EQ(back.shards, 8u);
}

TEST(RunConfig, AdaptiveLookaheadRoundTripAndDefaultOmission) {
  const auto plain = run_config{}.to_json();
  EXPECT_EQ(plain.find("\"adaptive_lookahead\""), std::string::npos) << plain;

  const auto rc = run_config{}.with_shards(4).with_adaptive_lookahead();
  const auto text = rc.to_json();
  EXPECT_NE(text.find("\"adaptive_lookahead\":true"), std::string::npos) << text;
  const auto back = run_config::from_json(text);
  EXPECT_EQ(back, rc);

  // The domain options mirror the config's execution knobs.
  const auto opt = rc.domain_options();
  EXPECT_EQ(opt.shards, 4u);
  EXPECT_TRUE(opt.adaptive_lookahead);
  EXPECT_EQ(opt.seed, rc.machine.seed);
  EXPECT_EQ(run_config{}.with_seed(9).domain_options().seed, 9u);
}

TEST(RunConfig, HierarchicalMachineRoundTripsThroughJson) {
  // Group keys are emitted only under the hierarchical wire model.
  const auto plain = run_config{}.to_json();
  EXPECT_EQ(plain.find("\"group_size\""), std::string::npos) << plain;
  EXPECT_EQ(plain.find("\"group_wire_ns\""), std::string::npos) << plain;

  auto rc = run_config{}.with_machine(sim::machine_config::hierarchical_numa(4, 4));
  rc.machine.group_wire = sim::microseconds(0.9);
  const auto text = rc.to_json();
  EXPECT_NE(text.find("\"group_size\":4"), std::string::npos) << text;
  const auto back = run_config::from_json(text);
  EXPECT_EQ(back, rc);
  EXPECT_EQ(back.machine.group_size, 4u);
  EXPECT_EQ(back.machine.group_wire.ns, sim::microseconds(0.9).ns);
}

}  // namespace
}  // namespace adx
