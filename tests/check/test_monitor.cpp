// Monitor oracle tests: hand-driven event streams exercise each oracle's
// trigger precisely; whole-runtime runs confirm the oracles stay quiet on
// correct locks (including barging grant_mode=1, which the paper's direct
// handoff discipline does not cover).
#include "check/monitor.hpp"

#include <gtest/gtest.h>

#include "check/runner.hpp"
#include "locks/blocking_lock.hpp"
#include "locks/factory.hpp"

namespace adx::check {
namespace {

struct harness {
  ct::runtime rt{sim::machine_config::test_machine(2)};
  std::unique_ptr<locks::lock_object> lk =
      locks::make_lock(locks::lock_kind::spin, 0, locks::lock_cost_model::fast_test());
  sim::vtime t{};

  sim::vtime tick() {
    t = t + sim::microseconds(5);
    return t;
  }
};

TEST(Monitor, CleanHandDrivenStreamHasNoViolations) {
  harness h;
  monitor mon(h.rt);
  mon.watch(*h.lk, "l");
  for (std::uint32_t tid = 0; tid < 3; ++tid) {
    mon.on_acquired(*h.lk, h.tick(), {}, tid);
    mon.on_release(*h.lk, h.tick(), tid);
  }
  EXPECT_TRUE(mon.violations().empty());
}

TEST(Monitor, DetectsTwoConcurrentOwners) {
  harness h;
  monitor mon(h.rt);
  mon.watch(*h.lk, "l");
  mon.on_acquired(*h.lk, h.tick(), {}, 0);
  mon.on_acquired(*h.lk, h.tick(), {}, 1);  // second owner without a release
  ASSERT_FALSE(mon.violations().empty());
  EXPECT_EQ(mon.violations().front().oracle, "mutual-exclusion");
  EXPECT_EQ(mon.violations().front().lock, "l");
}

TEST(Monitor, DetectsReleaseByNonOwner) {
  harness h;
  monitor mon(h.rt);
  mon.watch(*h.lk, "l");
  mon.on_acquired(*h.lk, h.tick(), {}, 0);
  mon.on_release(*h.lk, h.tick(), 3);
  ASSERT_FALSE(mon.violations().empty());
  EXPECT_EQ(mon.violations().front().oracle, "mutual-exclusion");
}

TEST(Monitor, DetectsOperationInsideAnOpenPsiTransition) {
  harness h;
  monitor mon(h.rt);
  mon.watch(*h.lk, "l");
  mon.on_psi_begin(*h.lk, h.tick());
  mon.on_acquired(*h.lk, h.tick(), {}, 0);  // grant while Ψ is half-applied
  mon.on_psi_end(*h.lk, h.tick());
  ASSERT_FALSE(mon.violations().empty());
  EXPECT_EQ(mon.violations().front().oracle, "reconfig-atomicity");
}

TEST(Monitor, DetectsStarvationBeyondTheOvertakeBound) {
  harness h;
  oracle_params p;
  p.max_overtakes = 2;
  monitor mon(h.rt, p);
  mon.watch(*h.lk, "l");
  mon.on_contended(*h.lk, h.tick(), 5);  // thread 5 starts waiting
  for (std::uint32_t g = 0; g < 5; ++g) {  // five grants overtake it
    mon.on_acquired(*h.lk, h.tick(), {}, 1);
    mon.on_release(*h.lk, h.tick(), 1);
  }
  mon.on_acquired(*h.lk, h.tick(), {}, 5);
  bool starved = false;
  for (const auto& v : mon.violations()) starved |= v.oracle == "starvation";
  EXPECT_TRUE(starved);
}

TEST(Monitor, DetectsAbbaDeadlockAtQuiescence) {
  ct::runtime rt(sim::machine_config::test_machine(2));
  monitor mon(rt);
  const auto cost = locks::lock_cost_model::fast_test();
  locks::blocking_lock a(0, cost);
  locks::blocking_lock b(0, cost);
  mon.watch(a, "a");
  mon.watch(b, "b");
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await a.lock(ctx);
    co_await ctx.compute(sim::microseconds(200));
    co_await b.lock(ctx);
    co_await b.unlock(ctx);
    co_await a.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await b.lock(ctx);
    co_await ctx.compute(sim::microseconds(200));
    co_await a.lock(ctx);
    co_await a.unlock(ctx);
    co_await b.unlock(ctx);
  });
  const auto r = rt.run();
  EXPECT_FALSE(r.completed);
  mon.finish(r);
  bool deadlock = false;
  for (const auto& v : mon.violations()) deadlock |= v.oracle == "deadlock";
  EXPECT_TRUE(deadlock);
}

TEST(Monitor, QuietOnACorrectContendedRun) {
  check_params p;
  p.config = run_config{}
                 .with_machine(sim::machine_config::test_machine(4))
                 .with_lock(locks::lock_kind::blocking)
                 .with_perturb(sim::perturb_profile::delay())
                 .with_seed(3);
  p.fix = fixture::oversub;
  const auto r = run_check(p);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.violations.empty()) << to_string(r.violations.front());
}

TEST(Monitor, GrantModeBargingStaysSafeUnderContention) {
  // grant_mode=1 (release-and-retry barging) for the three lock families
  // that honour it: oversubscribed contention + perturbation, every oracle
  // armed. Barging may reorder grants but must never break safety.
  for (const auto kind : {locks::lock_kind::combined, locks::lock_kind::reconfigurable,
                          locks::lock_kind::adaptive}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      check_params p;
      p.config = run_config{}
                     .with_machine(sim::machine_config::test_machine(4))
                     .with_lock(kind)
                     .with_grant_mode(1)
                     .with_perturb(sim::perturb_profile::delay())
                     .with_seed(seed);
      p.fix = fixture::oversub;
      p.iterations = 8;
      const auto r = run_check(p);
      EXPECT_TRUE(r.completed) << locks::to_string(kind) << " seed " << seed;
      EXPECT_TRUE(r.violations.empty())
          << locks::to_string(kind) << " seed " << seed << ": "
          << to_string(r.violations.front());
    }
  }
}

}  // namespace
}  // namespace adx::check
