#include "check/perturbers.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace adx::check {
namespace {

struct draw_log {
  std::vector<std::uint64_t> ties;
  std::vector<std::int64_t> resumes;
  std::vector<std::int64_t> accesses;
  std::vector<bool> preempts;
};

draw_log drive(sim::perturber& p, int n = 200) {
  draw_log out;
  sim::vtime t{};
  for (int i = 0; i < n; ++i) {
    t = t + sim::microseconds(3);
    out.ties.push_back(p.tie_key(t, static_cast<std::uint64_t>(i)));
    out.resumes.push_back(p.resume_delay(static_cast<std::uint32_t>(i % 7)).ns);
    out.accesses.push_back(p.access_delay(i % 4, (i + 1) % 4).ns);
    out.preempts.push_back(p.preempt_at_lock(static_cast<std::uint32_t>(i % 7)));
  }
  return out;
}

TEST(Perturbers, SameSeedSameDecisions) {
  random_perturber a(sim::perturb_profile::chaos(), 9001);
  random_perturber b(sim::perturb_profile::chaos(), 9001);
  const auto la = drive(a);
  const auto lb = drive(b);
  EXPECT_EQ(la.ties, lb.ties);
  EXPECT_EQ(la.resumes, lb.resumes);
  EXPECT_EQ(la.accesses, lb.accesses);
  EXPECT_EQ(la.preempts, lb.preempts);
}

TEST(Perturbers, DifferentSeedsDiverge) {
  random_perturber a(sim::perturb_profile::chaos(), 1);
  random_perturber b(sim::perturb_profile::chaos(), 2);
  const auto la = drive(a);
  const auto lb = drive(b);
  EXPECT_NE(la.ties, lb.ties);
}

TEST(Perturbers, NoneProfileIsTheIdentity) {
  random_perturber p(sim::perturb_profile::none(), 1234);
  const auto l = drive(p);
  for (std::size_t i = 0; i < l.ties.size(); ++i) {
    EXPECT_EQ(l.ties[i], i);  // FIFO tie order preserved
    EXPECT_EQ(l.resumes[i], 0);
    EXPECT_EQ(l.accesses[i], 0);
    EXPECT_FALSE(l.preempts[i]);
  }
}

TEST(Perturbers, ProfileCategoriesAreIndependentStreams) {
  // Disabling one category must not change another category's draws: the
  // delay-only profile and the chaos profile share the resume-delay stream.
  random_perturber delay_only(sim::perturb_profile::delay(), 31337);
  random_perturber chaos(sim::perturb_profile::chaos(), 31337);
  for (int i = 0; i < 100; ++i) {
    // Interleave other hooks on the chaos side only.
    (void)chaos.preempt_at_lock(0);
    (void)chaos.access_delay(0, 1);
    EXPECT_EQ(delay_only.resume_delay(3).ns, chaos.resume_delay(3).ns) << i;
  }
}

TEST(Perturbers, RecordingJournalsOnlyInjectedActions) {
  recording_perturber rec(sim::perturb_profile::chaos(), 4242);
  const auto log = drive(rec);
  const auto& trace = rec.trace();
  EXPECT_FALSE(trace.empty());
  std::size_t nonzero_resumes = 0;
  for (const auto v : log.resumes) nonzero_resumes += v != 0 ? 1 : 0;
  std::size_t journaled_resumes = 0;
  for (const auto& a : trace) {
    if (a.cat == perturb_action::category::resume_delay) {
      ++journaled_resumes;
      EXPECT_NE(a.value_ns, 0);
    }
  }
  EXPECT_EQ(journaled_resumes, nonzero_resumes);
}

TEST(Perturbers, ReplayOfTheFullJournalReproducesTheRun) {
  recording_perturber rec(sim::perturb_profile::chaos(), 777);
  const auto la = drive(rec);
  replay_perturber rep(sim::perturb_profile::chaos(), 777, rec.trace());
  const auto lb = drive(rep);
  EXPECT_EQ(la.ties, lb.ties);
  EXPECT_EQ(la.resumes, lb.resumes);
  EXPECT_EQ(la.accesses, lb.accesses);
  EXPECT_EQ(la.preempts, lb.preempts);
}

TEST(Perturbers, EmptyJournalReplayKeepsTiesButDropsInjections) {
  recording_perturber rec(sim::perturb_profile::chaos(), 777);
  const auto la = drive(rec);
  replay_perturber rep(sim::perturb_profile::chaos(), 777, {});
  const auto lb = drive(rep);
  EXPECT_EQ(la.ties, lb.ties);  // tie reordering is seed-driven, not journaled
  for (std::size_t i = 0; i < lb.resumes.size(); ++i) {
    EXPECT_EQ(lb.resumes[i], 0);
    EXPECT_EQ(lb.accesses[i], 0);
    EXPECT_FALSE(lb.preempts[i]);
  }
}

TEST(Perturbers, ActionsPrintTheirCategoryAndIndex) {
  const perturb_action a{perturb_action::category::preempt, 12, 0};
  const auto s = to_string(a);
  EXPECT_NE(s.find("preempt"), std::string::npos);
  EXPECT_NE(s.find("12"), std::string::npos);
}

}  // namespace
}  // namespace adx::check
