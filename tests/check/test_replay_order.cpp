// Event-order reproducibility through the checker: a recorded run and the
// replay of its journal must drive the simulation through the identical event
// sequence. This is the regression net for the event queue's ordering
// contract — (timestamp, tie key, insertion seq) ascending — which the 4-ary
// heap must preserve exactly: any tie broken differently cascades into a
// different end time or event count within a handful of scheduling rounds.
#include <gtest/gtest.h>

#include "check/runner.hpp"

namespace adx::check {
namespace {

check_params params(fixture f, sim::perturb_profile profile, std::uint64_t seed) {
  check_params p;
  p.config = run_config{}
                 .with_machine(sim::machine_config::test_machine(4))
                 .with_perturb(profile)
                 .with_seed(seed);
  p.fix = f;
  return p;
}

TEST(ReplayOrder, UnperturbedRunsAreBitIdentical) {
  const auto p = params(fixture::mutex, sim::perturb_profile::none(), 9001);
  const auto a = run_check(p);
  const auto b = run_check(p);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_TRUE(a.trace.empty());  // nothing to journal without perturbation
}

// FIFO among equal-timestamp events: the ties profile perturbs ONLY the
// tie-break key (seed-driven, not journaled), so two runs at the same seed
// must still produce the same schedule — and a different seed must be free
// to produce a different one. Together these pin down that tie order is
// decided by the inserted key, not by heap-internal layout.
TEST(ReplayOrder, TieReorderingIsAFunctionOfTheSeed) {
  const auto p1 = params(fixture::mutex, sim::perturb_profile::ties(), 42);
  const auto a = run_check(p1);
  const auto b = run_check(p1);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events, b.events);
}

TEST(ReplayOrder, FullJournalReplayReproducesTheRecordedRun) {
  for (const auto f : {fixture::mutex, fixture::oversub, fixture::reconfig}) {
    const auto p = params(f, sim::perturb_profile::chaos(), 1234);
    const auto recorded = run_check(p);
    const auto replayed = replay_check(p, recorded.trace);
    EXPECT_EQ(recorded.end_time, replayed.end_time) << "fixture " << to_string(f);
    EXPECT_EQ(recorded.events, replayed.events) << "fixture " << to_string(f);
    EXPECT_EQ(recorded.completed, replayed.completed) << "fixture " << to_string(f);
    EXPECT_EQ(recorded.violations.size(), replayed.violations.size())
        << "fixture " << to_string(f);
  }
}

// The oversubscribed fixture stacks several threads per processor — the
// densest source of equal-timestamp events (simultaneous wakeups, dispatch
// bursts). Replay identity here exercises FIFO tie-breaking hardest.
TEST(ReplayOrder, OversubscribedFixtureReplaysExactly) {
  auto p = params(fixture::oversub, sim::perturb_profile::delay(), 31337);
  p.iterations = 20;
  const auto recorded = run_check(p);
  ASSERT_TRUE(recorded.completed);
  const auto replayed = replay_check(p, recorded.trace);
  EXPECT_EQ(recorded.end_time, replayed.end_time);
  EXPECT_EQ(recorded.events, replayed.events);
}

}  // namespace
}  // namespace adx::check
