#include "cli/options.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace adx::cli {
namespace {

options make_opts() {
  return options("prog", "test program")
      .u64("cities", 32, "problem size")
      .str("lock", "blocking", "lock kind")
      .flag("csv", "emit csv");
}

void parse(options& o, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  o.parse(static_cast<int>(args.size()),
          const_cast<char**>(const_cast<const char**>(args.data())));
}

TEST(Options, DefaultsHoldWithoutArguments) {
  auto o = make_opts();
  parse(o, {});
  EXPECT_EQ(o.get_u64("cities"), 32u);
  EXPECT_EQ(o.get_str("lock"), "blocking");
  EXPECT_FALSE(o.get_flag("csv"));
  EXPECT_FALSE(o.was_set("cities"));
}

TEST(Options, ParsesEqualsAndSpaceForms) {
  auto o = make_opts();
  parse(o, {"--cities=48", "--lock", "adaptive", "--csv"});
  EXPECT_EQ(o.get_u64("cities"), 48u);
  EXPECT_EQ(o.get_str("lock"), "adaptive");
  EXPECT_TRUE(o.get_flag("csv"));
  EXPECT_TRUE(o.was_set("cities"));
  EXPECT_TRUE(o.was_set("lock"));
}

TEST(Options, UnknownFlagExitsWithCodeTwo) {
  EXPECT_EXIT(
      {
        auto o = make_opts();
        parse(o, {"--citeis=48"});
      },
      testing::ExitedWithCode(2), "unknown flag: --citeis");
}

TEST(Options, MalformedIntegerExitsWithCodeTwo) {
  EXPECT_EXIT(
      {
        auto o = make_opts();
        parse(o, {"--cities=ten"});
      },
      testing::ExitedWithCode(2), "unsigned integer");
}

TEST(Options, MissingValueExitsWithCodeTwo) {
  EXPECT_EXIT(
      {
        auto o = make_opts();
        parse(o, {"--lock"});
      },
      testing::ExitedWithCode(2), "needs a value");
}

TEST(Options, PositionalArgumentIsRejected) {
  EXPECT_EXIT(
      {
        auto o = make_opts();
        parse(o, {"stray"});
      },
      testing::ExitedWithCode(2), "unexpected argument");
}

TEST(Options, HelpExitsZero) {
  EXPECT_EXIT(
      {
        auto o = make_opts();
        parse(o, {"--help"});
      },
      testing::ExitedWithCode(0), "");
}

TEST(Options, HelpScreenListsEveryDeclaredFlag) {
  const auto o = make_opts();
  std::ostringstream os;
  o.print_help(os);
  const auto s = os.str();
  EXPECT_NE(s.find("--cities=<n>"), std::string::npos);
  EXPECT_NE(s.find("--lock=<s>"), std::string::npos);
  EXPECT_NE(s.find("--csv"), std::string::npos);
  EXPECT_NE(s.find("default: 32"), std::string::npos);
  EXPECT_NE(s.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace adx::cli
