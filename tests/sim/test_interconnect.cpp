#include "sim/interconnect.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace adx::sim {
namespace {

TEST(ButterflyNetwork, StageCountIsLog4) {
  EXPECT_EQ(butterfly_network(4, microseconds(1), microseconds(1)).stages(), 1u);
  EXPECT_EQ(butterfly_network(16, microseconds(1), microseconds(1)).stages(), 2u);
  EXPECT_EQ(butterfly_network(32, microseconds(1), microseconds(1)).stages(), 3u);
  EXPECT_EQ(butterfly_network(64, microseconds(1), microseconds(1)).stages(), 3u);
}

TEST(ButterflyNetwork, UncontendedLatencyIsStagesTimesStep) {
  butterfly_network net(32, microseconds(0.3), microseconds(0.13));
  const auto t = net.traverse(0, 17, vtime{});
  EXPECT_EQ(t.ns, 3 * (microseconds(0.3).ns + microseconds(0.13).ns));
  EXPECT_EQ(net.total_switch_delay().ns, 0);
}

TEST(ButterflyNetwork, RouteIsDeterministicAndInRange) {
  butterfly_network net(32, microseconds(0.3), microseconds(0.13));
  for (node_id s = 0; s < 32; ++s) {
    for (node_id d = 0; d < 32; ++d) {
      for (unsigned stage = 0; stage < net.stages(); ++stage) {
        const auto a = net.route(s, d, stage);
        EXPECT_EQ(a, net.route(s, d, stage));
        EXPECT_LT(a, net.switches_per_stage());
      }
    }
  }
}

TEST(ButterflyNetwork, FinalStageDependsOnlyOnDestinationGroup) {
  // Destination-tag routing: at the last stage, the switch serving a packet
  // is determined by the destination (its output port group), regardless of
  // source.
  butterfly_network net(16, microseconds(0.3), microseconds(0.13));
  const unsigned last = net.stages() - 1;
  for (node_id d = 0; d < 16; ++d) {
    const auto sw = net.route(0, d, last);
    for (node_id s = 1; s < 16; ++s) {
      EXPECT_EQ(net.route(s, d, last), sw) << "src " << s << " dst " << (int)d;
    }
  }
}

TEST(ButterflyNetwork, ConcurrentPacketsToOneDestinationQueue) {
  butterfly_network net(16, microseconds(0.3), microseconds(0.13));
  // Many sources fire at the same destination at t=0: the shared final-stage
  // switch serializes them.
  vtime last{};
  for (node_id s = 0; s < 8; ++s) {
    last = max(last, net.traverse(s, 15, vtime{}));
  }
  EXPECT_GT(net.total_switch_delay().ns, 0);
  butterfly_network net2(16, microseconds(0.3), microseconds(0.13));
  const auto lone = net2.traverse(0, 15, vtime{});
  EXPECT_GT(last.ns, lone.ns);
}

TEST(ButterflyNetwork, DisjointPathsDoNotInterfere) {
  butterfly_network net(16, microseconds(0.3), microseconds(0.13));
  const auto a = net.traverse(0, 0, vtime{});   // same-group path
  const auto b = net.traverse(15, 15, vtime{});  // disjoint at every stage
  EXPECT_EQ(a.ns, b.ns);
  EXPECT_EQ(net.total_switch_delay().ns, 0);
}

TEST(Machine, ButterflyModelMatchesConstantWhenIdle) {
  auto base = machine_config::butterfly_gp1000();
  auto staged = base;
  staged.wire_model = interconnect_model::butterfly;

  machine m1(base);
  machine m2(staged);
  const auto a = m1.access(0, 9, access_kind::read);
  const auto b = m2.access(0, 9, access_kind::read);
  // Defaults are calibrated to agree when idle: 3 x (0.3 + 0.13) = 1.29 vs
  // remote_wire 1.3 (within one switch step).
  EXPECT_NEAR(static_cast<double>(a.ns), static_cast<double>(b.ns), 100.0);
}

TEST(Machine, ButterflyModelShowsTreeSaturation) {
  // Hot-spot traffic from every node to module 0: the staged network's
  // switch queueing adds delay beyond the module's own serialization.
  auto staged = machine_config::butterfly_gp1000();
  staged.wire_model = interconnect_model::butterfly;
  machine m(staged);
  vtime last{};
  for (node_id n = 1; n < 32; ++n) {
    last = max(last, m.access(n, 0, access_kind::read));
  }
  ASSERT_NE(m.network(), nullptr);
  EXPECT_GT(m.network()->total_switch_delay().ns, 0);
  EXPECT_EQ(m.network()->packets(), 2u * 31u);  // out and back per access
}

TEST(Machine, LocalAccessesBypassTheNetwork) {
  auto staged = machine_config::butterfly_gp1000();
  staged.wire_model = interconnect_model::butterfly;
  machine m(staged);
  m.access(3, 3, access_kind::read);
  EXPECT_EQ(m.network()->packets(), 0u);
}

}  // namespace
}  // namespace adx::sim
