#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace adx::sim {
namespace {

TEST(VDur, LiteralConstructorsAgree) {
  EXPECT_EQ(nanoseconds(1000).ns, 1000);
  EXPECT_EQ(microseconds(1.0).ns, 1000);
  EXPECT_EQ(milliseconds(1.0).ns, 1'000'000);
  EXPECT_EQ(seconds(1.0).ns, 1'000'000'000);
}

TEST(VDur, FractionalMicroseconds) {
  EXPECT_EQ(microseconds(0.5).ns, 500);
  EXPECT_EQ(microseconds(30.73).ns, 30730);
}

TEST(VDur, Arithmetic) {
  const auto a = microseconds(10);
  const auto b = microseconds(3);
  EXPECT_EQ((a + b).ns, 13000);
  EXPECT_EQ((a - b).ns, 7000);
  EXPECT_EQ((a * 3).ns, 30000);
  EXPECT_EQ((3 * a).ns, 30000);
  EXPECT_EQ((a / 2).ns, 5000);
}

TEST(VDur, CompoundAssignment) {
  auto a = microseconds(5);
  a += microseconds(2);
  EXPECT_EQ(a.ns, 7000);
  a -= microseconds(3);
  EXPECT_EQ(a.ns, 4000);
}

TEST(VDur, Comparisons) {
  EXPECT_LT(microseconds(1), microseconds(2));
  EXPECT_EQ(microseconds(1), nanoseconds(1000));
  EXPECT_GE(milliseconds(1), microseconds(1000));
}

TEST(VDur, NegativeDifferencesRepresentable) {
  const auto d = microseconds(1) - microseconds(2);
  EXPECT_EQ(d.ns, -1000);
  EXPECT_LT(d, vdur{});
}

TEST(VDur, ReportingConversions) {
  EXPECT_DOUBLE_EQ(microseconds(1.5).us(), 1.5);
  EXPECT_DOUBLE_EQ(milliseconds(2.5).ms(), 2.5);
}

TEST(VTime, AdvanceAndDifference) {
  vtime t{};
  const auto t2 = t + microseconds(10);
  EXPECT_EQ(t2.ns, 10000u);
  EXPECT_EQ((t2 - t).ns, 10000);
  EXPECT_EQ((t - t2).ns, -10000);
}

TEST(VTime, Ordering) {
  const vtime a{100};
  const vtime b{200};
  EXPECT_LT(a, b);
  EXPECT_EQ(max(a, b), b);
  EXPECT_EQ(max(b, a), b);
}

TEST(VTime, ReportingConversions) {
  const vtime t{2'500'000};
  EXPECT_DOUBLE_EQ(t.ms(), 2.5);
  EXPECT_DOUBLE_EQ(t.us(), 2500.0);
}

}  // namespace
}  // namespace adx::sim
