// The event queue's callback slab: chunked growth, freelist reuse, inline
// vs. spilled callable storage, and callback lifetime handling.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

namespace adx::sim {
namespace {

constexpr std::size_t kChunk = 128;  // mirrors event_queue::kEventsPerChunk

TEST(EventSlab, NoSlotsUntilFirstEvent) {
  event_queue q;
  EXPECT_EQ(q.slab_capacity(), 0u);
  EXPECT_EQ(q.slab_free(), 0u);
}

TEST(EventSlab, GrowsByWholeChunks) {
  event_queue q;
  q.schedule_at(vtime{1}, [] {});
  EXPECT_EQ(q.slab_capacity(), kChunk);
  for (std::size_t i = 0; i < kChunk; ++i) q.schedule_at(vtime{1}, [] {});
  // kChunk + 1 pending events can't fit in one chunk.
  EXPECT_EQ(q.slab_capacity(), 2 * kChunk);
  EXPECT_EQ(q.slab_free(), 2 * kChunk - (kChunk + 1));
  EXPECT_EQ(q.pending(), kChunk + 1);
}

TEST(EventSlab, CapacityMinusFreeTracksPending) {
  event_queue q;
  for (int i = 0; i < 40; ++i) q.schedule_at(vtime{static_cast<std::uint64_t>(i)}, [] {});
  EXPECT_EQ(q.slab_capacity() - q.slab_free(), q.pending());
  q.run(25);
  EXPECT_EQ(q.slab_capacity() - q.slab_free(), q.pending());
  q.run();
  EXPECT_EQ(q.slab_free(), q.slab_capacity());
}

// Steady-state churn — schedule/run/schedule/run — must recycle slots rather
// than grow the slab: one chunk serves an unbounded number of events as long
// as few are pending at once.
TEST(EventSlab, SteadyStateChurnReusesSlots) {
  event_queue q;
  int runs = 0;
  std::function<void()> chain = [&] {
    if (++runs < 10'000) q.schedule_after(vdur{1}, chain);
  };
  q.schedule_at(vtime{0}, chain);
  q.run();
  EXPECT_EQ(runs, 10'000);
  // std::function<void()> is 32 bytes on mainstream ABIs — inline — so the
  // chain needs exactly one slot at a time and one chunk forever.
  EXPECT_EQ(q.slab_capacity(), kChunk);
}

TEST(EventSlab, LargeCallablesSpillAndStillRun) {
  event_queue q;
  std::array<std::uint64_t, 16> payload{};  // 128 bytes: over the inline limit
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 3 + 1;
  std::uint64_t sum = 0;
  q.schedule_at(vtime{5}, [payload, &sum] {
    for (const auto v : payload) sum += v;
  });
  q.run();
  EXPECT_EQ(sum, 376u);  // sum of 3i+1 for i in [0,16)
}

// Destroying the queue with events still pending must run the callbacks'
// destructors (shared_ptr captures would leak otherwise).
TEST(EventSlab, PendingCallbacksDestroyedWithQueue) {
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  {
    event_queue q;
    q.schedule_at(vtime{1}, [token] { (void)*token; });
    q.schedule_at(vtime{2}, [token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired());  // two pending captures keep it alive
  }
  EXPECT_TRUE(watch.expired());
}

TEST(EventSlab, CallbackDestroyedAfterItRuns) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  event_queue q;
  q.schedule_at(vtime{1}, [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());
  q.run();
  EXPECT_TRUE(watch.expired());
}

// A callback that schedules from inside its own invocation (slab and heap may
// both grow mid-invoke) must stay valid while running.
TEST(EventSlab, CallbackMaySpawnChunkGrowthWhileRunning) {
  event_queue q;
  int ran = 0;
  q.schedule_at(vtime{1}, [&] {
    for (std::size_t i = 0; i < 3 * kChunk; ++i) {
      q.schedule_after(vdur{1}, [&ran] { ++ran; });
    }
  });
  q.run();
  EXPECT_EQ(ran, static_cast<int>(3 * kChunk));
  EXPECT_GE(q.slab_capacity(), 3 * kChunk);
}

}  // namespace
}  // namespace adx::sim
