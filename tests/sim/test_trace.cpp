#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace adx::sim {
namespace {

trace make_ramp() {
  trace t("ramp");
  t.record(vtime{0}, 0);
  t.record(vtime{250}, 2);
  t.record(vtime{500}, 5);
  t.record(vtime{750}, 1);
  return t;
}

TEST(Trace, RecordsSamplesInOrder) {
  const auto t = make_ramp();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.samples()[2].value, 5);
  EXPECT_EQ(t.samples()[2].at.ns, 500u);
}

TEST(Trace, MaxAndMean) {
  const auto t = make_ramp();
  EXPECT_EQ(t.max_value(), 5);
  EXPECT_DOUBLE_EQ(t.mean_value(), 2.0);
}

TEST(Trace, EmptyTraceSafeAccessors) {
  trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.max_value(), 0);
  EXPECT_DOUBLE_EQ(t.mean_value(), 0.0);
}

TEST(Trace, RebucketMaxTakesWindowMax) {
  trace t;
  t.record(vtime{100}, 1);
  t.record(vtime{150}, 7);
  t.record(vtime{190}, 2);
  t.record(vtime{900}, 3);
  const auto b = t.rebucket_max(vtime{1000}, 10);
  ASSERT_EQ(b.size(), 10u);
  EXPECT_EQ(b[1], 7);  // max of the 100-200ns window
  EXPECT_EQ(b[9], 3);
}

TEST(Trace, RebucketCarriesLastValueThroughGaps) {
  trace t;
  t.record(vtime{0}, 4);
  t.record(vtime{990}, 1);
  const auto b = t.rebucket_max(vtime{1000}, 10);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(b[i], 4) << i;
  EXPECT_EQ(b[9], 1);
}

TEST(Trace, RebucketIgnoresSamplesBeyondHorizon) {
  trace t;
  t.record(vtime{50}, 2);
  t.record(vtime{5000}, 9);
  const auto b = t.rebucket_max(vtime{1000}, 4);
  for (auto v : b) EXPECT_NE(v, 9);
}

TEST(Trace, RebucketZeroBucketsSafe) {
  const auto t = make_ramp();
  EXPECT_TRUE(t.rebucket_max(vtime{1000}, 0).empty());
}

TEST(Trace, RebucketEmptyTraceIsAllZero) {
  trace t;
  const auto b = t.rebucket_max(vtime{1000}, 5);
  ASSERT_EQ(b.size(), 5u);
  for (auto v : b) EXPECT_EQ(v, 0);
}

TEST(Trace, RebucketZeroHorizonKeepsTimeZeroSamples) {
  // A run that ends instantly (horizon 0) still has its t=0 samples: they
  // belong to the first window rather than being dropped.
  trace t;
  t.record(vtime{0}, 3);
  t.record(vtime{0}, 5);
  t.record(vtime{400}, 9);  // beyond the horizon: excluded
  const auto b = t.rebucket_max(vtime{0}, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 5);
  // Carry-forward fills the rest of the (degenerate) axis.
  EXPECT_EQ(b[1], 5);
  EXPECT_EQ(b[3], 5);
}

TEST(Trace, RebucketZeroHorizonZeroBuckets) {
  trace t;
  t.record(vtime{0}, 3);
  EXPECT_TRUE(t.rebucket_max(vtime{0}, 0).empty());
}

TEST(Trace, RebucketSingleSample) {
  trace t;
  t.record(vtime{500}, 7);
  const auto b = t.rebucket_max(vtime{1000}, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0);  // before the sample: nothing to carry
  EXPECT_EQ(b[1], 7);  // 500 falls in window [250.25, 500.5)
  EXPECT_EQ(b[2], 7);  // carried forward
  EXPECT_EQ(b[3], 7);
}

TEST(Trace, RebucketSingleBucketTakesGlobalMax) {
  const auto t = make_ramp();
  const auto b = t.rebucket_max(vtime{1000}, 1);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 5);
}

TEST(Trace, CsvFormat) {
  trace t("waiters");
  t.record(vtime{1000}, 3);
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("time_us,waiters"), std::string::npos);
  EXPECT_NE(csv.find("1,3"), std::string::npos);
}

TEST(Trace, AsciiChartHasAxesAndMarks) {
  const auto t = make_ramp();
  const auto chart = t.ascii_chart(vtime{1000}, 20, 5);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
  EXPECT_NE(chart.find("5"), std::string::npos);  // peak label
}

TEST(Trace, ClearEmpties) {
  auto t = make_ramp();
  t.clear();
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace adx::sim
