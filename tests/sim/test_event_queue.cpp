#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace adx::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  event_queue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now().ns, 0u);
  EXPECT_FALSE(q.run_one());
}

TEST(EventQueue, RunsInTimeOrder) {
  event_queue q;
  std::vector<int> order;
  q.schedule_at(vtime{300}, [&] { order.push_back(3); });
  q.schedule_at(vtime{100}, [&] { order.push_back(1); });
  q.schedule_at(vtime{200}, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now().ns, 300u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  event_queue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(vtime{100}, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, SchedulingInPastClampsToNow) {
  event_queue q;
  vtime seen{};
  q.schedule_at(vtime{500}, [&] {
    q.schedule_at(vtime{100}, [&] { seen = q.now(); });  // "in the past"
  });
  q.run();
  EXPECT_EQ(seen.ns, 500u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  event_queue q;
  vtime seen{};
  q.schedule_at(vtime{100}, [&] {
    q.schedule_after(vdur{50}, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen.ns, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  event_queue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) q.schedule_after(vdur{10}, recurse);
  };
  q.schedule_at(vtime{0}, recurse);
  q.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(q.now().ns, 90u);
}

TEST(EventQueue, RunLimitStopsEarly) {
  event_queue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(vtime{static_cast<std::uint64_t>(i)}, [&] { ++count; });
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, RunUntilRespectsDeadline) {
  event_queue q;
  int count = 0;
  for (std::uint64_t t : {10u, 20u, 30u, 40u}) q.schedule_at(vtime{t}, [&] { ++count; });
  q.run_until(vtime{25});
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(EventQueue, RunUntilIncludesNewlyDueEvents) {
  event_queue q;
  int count = 0;
  q.schedule_at(vtime{10}, [&] {
    ++count;
    q.schedule_at(vtime{15}, [&] { ++count; });
  });
  q.run_until(vtime{20});
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, ProcessedCounterAccumulates) {
  event_queue q;
  q.schedule_at(vtime{1}, [] {});
  q.schedule_at(vtime{2}, [] {});
  q.run();
  EXPECT_EQ(q.processed(), 2u);
}

// Cross-checks the 4-ary heap against a trivially correct reference model: a
// flat vector with the same semantics (clamp past times to now, pop the
// minimum by (at, insertion seq)). Both sides consume an identical schedule —
// up-front inserts, nested inserts from running callbacks, dense multi-way
// ties — and must report the same execution order, event for event.
TEST(EventQueue, StressMatchesReferenceModelOrder) {
  struct model_event {
    std::uint64_t at;
    std::uint64_t id;
  };
  struct reference_queue {
    std::vector<model_event> pending;
    std::uint64_t now{0};
    std::uint64_t next_seq{0};  // doubles as the event id
    std::uint64_t insert(std::uint64_t at) {
      if (at < now) at = now;
      pending.push_back({at, next_seq});
      return next_seq++;
    }
    std::uint64_t pop() {  // min by (at, seq); seq is unique
      std::size_t best = 0;
      for (std::size_t i = 1; i < pending.size(); ++i) {
        const auto& a = pending[i];
        const auto& b = pending[best];
        if (a.at < b.at || (a.at == b.at && a.id < b.id)) best = i;
      }
      now = pending[best].at;
      const auto id = pending[best].id;
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best));
      return id;
    }
  };

  event_queue q;
  reference_queue model;
  std::vector<std::uint64_t> executed;

  // Deterministic LCG: the point is coverage of tie patterns, not randomness.
  std::uint64_t x = 0x2545F4914F6CDD1DULL;
  const auto rnd = [&](std::uint64_t mod) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return (x >> 33) % mod;
  };

  // Inserts the same event into both queues; a third of events spawn 1-2
  // followers when they run, some at the current instant (FIFO among events
  // created while their own timestamp is executing).
  const std::function<void(std::uint64_t)> insert = [&](std::uint64_t at) {
    const auto id = model.insert(at);
    q.schedule_at(vtime{at}, [&, id, at] {
      executed.push_back(id);
      if (id % 3 == 0) {
        const auto n = 1 + rnd(2);
        for (std::uint64_t k = 0; k < n; ++k) insert(at + rnd(5));
      }
    });
  };

  for (int i = 0; i < 500; ++i) {
    insert(rnd(50));  // dense timestamp range -> many multi-way ties
  }
  q.run();

  // Replay the reference: its callbacks are the same closures by id, so the
  // follower inserts were already mirrored during the real run; just drain.
  std::vector<std::uint64_t> expected;
  while (!model.pending.empty()) expected.push_back(model.pop());

  ASSERT_EQ(executed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(executed[i], expected[i]) << "divergence at event " << i;
  }
  EXPECT_EQ(q.processed(), executed.size());
}

// Equal-timestamp FIFO under load: many bursts at identical instants must
// execute in exact insertion order even as the 4-ary heap grows and shrinks
// around them.
TEST(EventQueue, MassiveTieBurstsKeepFifoOrder) {
  event_queue q;
  std::vector<int> order;
  int id = 0;
  for (std::uint64_t t : {40u, 10u, 30u, 10u, 20u, 40u, 10u}) {
    for (int i = 0; i < 37; ++i) {
      q.schedule_at(vtime{t}, [&order, id] { order.push_back(id); });
      ++id;
    }
  }
  q.run();
  ASSERT_EQ(order.size(), 7u * 37u);
  // Reconstruct expected: stable sort of insertion ids by timestamp.
  std::vector<std::pair<std::uint64_t, int>> model;
  int mid = 0;
  for (std::uint64_t t : {40u, 10u, 30u, 10u, 20u, 40u, 10u}) {
    for (int i = 0; i < 37; ++i) model.emplace_back(t, mid++);
  }
  std::stable_sort(model.begin(), model.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < model.size(); ++i) {
    EXPECT_EQ(order[i], model[i].second) << "position " << i;
  }
}

// A perturbed tie key reorders same-instant events by (key, seq) — and only
// same-instant events; cross-timestamp order is untouched.
TEST(EventQueue, PerturbedTieKeyReordersWithinInstantOnly) {
  struct reverse_ties final : perturber {
    std::uint64_t tie_key(vtime, std::uint64_t seq) override { return ~seq; }
  } rev;
  event_queue q;
  q.set_perturber(&rev);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) q.schedule_at(vtime{100}, [&order, i] { order.push_back(i); });
  for (int i = 4; i < 8; ++i) q.schedule_at(vtime{200}, [&order, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0, 7, 6, 5, 4}));
}

TEST(EventQueue, NowMonotoneNonDecreasing) {
  event_queue q;
  vtime last{};
  bool monotone = true;
  for (std::uint64_t t : {5u, 3u, 9u, 3u, 7u}) {
    q.schedule_at(vtime{t}, [&] {
      monotone = monotone && q.now() >= last;
      last = q.now();
    });
  }
  q.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace adx::sim
