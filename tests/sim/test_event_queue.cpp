#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace adx::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  event_queue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now().ns, 0u);
  EXPECT_FALSE(q.run_one());
}

TEST(EventQueue, RunsInTimeOrder) {
  event_queue q;
  std::vector<int> order;
  q.schedule_at(vtime{300}, [&] { order.push_back(3); });
  q.schedule_at(vtime{100}, [&] { order.push_back(1); });
  q.schedule_at(vtime{200}, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now().ns, 300u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  event_queue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(vtime{100}, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, SchedulingInPastClampsToNow) {
  event_queue q;
  vtime seen{};
  q.schedule_at(vtime{500}, [&] {
    q.schedule_at(vtime{100}, [&] { seen = q.now(); });  // "in the past"
  });
  q.run();
  EXPECT_EQ(seen.ns, 500u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  event_queue q;
  vtime seen{};
  q.schedule_at(vtime{100}, [&] {
    q.schedule_after(vdur{50}, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen.ns, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  event_queue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) q.schedule_after(vdur{10}, recurse);
  };
  q.schedule_at(vtime{0}, recurse);
  q.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(q.now().ns, 90u);
}

TEST(EventQueue, RunLimitStopsEarly) {
  event_queue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(vtime{static_cast<std::uint64_t>(i)}, [&] { ++count; });
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, RunUntilRespectsDeadline) {
  event_queue q;
  int count = 0;
  for (std::uint64_t t : {10u, 20u, 30u, 40u}) q.schedule_at(vtime{t}, [&] { ++count; });
  q.run_until(vtime{25});
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(EventQueue, RunUntilIncludesNewlyDueEvents) {
  event_queue q;
  int count = 0;
  q.schedule_at(vtime{10}, [&] {
    ++count;
    q.schedule_at(vtime{15}, [&] { ++count; });
  });
  q.run_until(vtime{20});
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, ProcessedCounterAccumulates) {
  event_queue q;
  q.schedule_at(vtime{1}, [] {});
  q.schedule_at(vtime{2}, [] {});
  q.run();
  EXPECT_EQ(q.processed(), 2u);
}

TEST(EventQueue, NowMonotoneNonDecreasing) {
  event_queue q;
  vtime last{};
  bool monotone = true;
  for (std::uint64_t t : {5u, 3u, 9u, 3u, 7u}) {
    q.schedule_at(vtime{t}, [&] {
      monotone = monotone && q.now() >= last;
      last = q.now();
    });
  }
  q.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace adx::sim
