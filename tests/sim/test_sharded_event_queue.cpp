#include "sim/sharded_event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "exec/job_executor.hpp"
#include "sim/event_queue.hpp"

namespace adx::sim {
namespace {

TEST(ShardedEventQueue, RejectsZeroShards) {
  EXPECT_THROW(sharded_event_queue(0, microseconds(10)), std::invalid_argument);
}

TEST(ShardedEventQueue, RejectsNonPositiveLookahead) {
  EXPECT_THROW(sharded_event_queue(4, vdur{0}), std::invalid_argument);
  EXPECT_THROW(sharded_event_queue(4, vdur{-5}), std::invalid_argument);
}

TEST(ShardedEventQueue, StartsEmpty) {
  sharded_event_queue q(4, microseconds(10));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run(), 0u);
  EXPECT_EQ(q.windows(), 0u);
  EXPECT_EQ(q.processed(), 0u);
}

TEST(ShardedEventQueue, SendValidatesTargetShard) {
  sharded_event_queue q(2, microseconds(10));
  EXPECT_THROW(q.send(0, 5, vtime{100'000}, 0, [] {}), std::out_of_range);
}

TEST(ShardedEventQueue, SendInsideHorizonThrows) {
  sharded_event_queue q(2, vdur{1000});
  // Source shard sits at time 0; anything before 0 + lookahead is a
  // causality hazard the conservative protocol must reject.
  EXPECT_THROW(q.send(0, 1, vtime{999}, 0, [] {}), std::logic_error);
}

TEST(ShardedEventQueue, SendExactlyAtHorizonIsAllowed) {
  sharded_event_queue q(2, vdur{1000});
  bool ran = false;
  q.send(0, 1, vtime{1000}, 0, [&] { ran = true; });
  q.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.cross_sends(), 1u);
}

TEST(ShardedEventQueue, TiesWithinShardKeepFifoOrder) {
  sharded_event_queue q(1, microseconds(10));
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(0, vtime{100}, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ShardedEventQueue, NowIsMaxOverShards) {
  sharded_event_queue q(2, microseconds(10));
  q.schedule_at(0, vtime{300}, [] {});
  q.schedule_at(1, vtime{7000}, [] {});
  q.run();
  EXPECT_EQ(q.now(0).ns, 300u);
  EXPECT_EQ(q.now(1).ns, 7000u);
  EXPECT_EQ(q.now().ns, 7000u);
}

// --- Stress: the sharded queue vs a plain sequential event_queue. ---------
//
// The program: kStreams independent event chains that occasionally fire
// cross-stream messages. Stream s's own events live on timestamps ≡ s
// (mod kStreams) and message transit is a multiple of kStreams, so a
// delivery keeps its *sender's* residue class: it can never tie with the
// receiver's local events, and same-timestamp deliveries can only come from
// one sender (whose origin counter orders them by program order in both
// executions). The per-stream traces are therefore a total observable —
// byte-identical between the plain reference queue and the sharded queue at
// every shard count and worker count.

constexpr unsigned kStreams = 8;
constexpr std::uint64_t kResidue = kStreams;
constexpr vdur kLookahead{kResidue * 50};  // multiple of the residue modulus

struct rec {
  std::uint64_t at;
  unsigned origin;  ///< stream whose clock produced the timestamp
  bool delivered;   ///< true for a cross-stream message delivery
  bool operator==(const rec&) const = default;
};

struct run_result {
  std::array<std::vector<rec>, kStreams> trace;
  std::uint64_t processed{0};
  std::uint64_t windows{0};
  std::uint64_t cross_sends{0};
};

class driver {
 public:
  // shard_count == 0 runs the reference model: every stream on one plain
  // event_queue, messages scheduled directly at their delivery time.
  driver(unsigned shard_count, unsigned events_per_stream) : shards_(shard_count) {
    if (shards_ > 0) shq_ = std::make_unique<sharded_event_queue>(shards_, kLookahead);
    for (unsigned s = 0; s < kStreams; ++s) {
      st_[s].x = 0x9E3779B97F4A7C15ULL * (s + 1);
      st_[s].remaining = events_per_stream;
      schedule_local(s, vtime{s});
    }
  }

  run_result run(exec::job_executor* ex = nullptr) {
    if (shards_ == 0) {
      out_.processed = ref_.run();
    } else {
      out_.processed = ex ? shq_->run(*ex) : shq_->run();
      out_.windows = shq_->windows();
      out_.cross_sends = shq_->cross_sends();
    }
    return std::move(out_);
  }

 private:
  struct stream_state {
    std::uint64_t x{0};
    unsigned remaining{0};
    std::uint64_t origin_counter{0};
  };

  [[nodiscard]] unsigned shard_of(unsigned s) const { return shards_ ? s % shards_ : 0; }

  std::uint64_t rnd(unsigned s, std::uint64_t mod) {
    auto& x = st_[s].x;
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return (x >> 33) % mod;
  }

  void schedule_local(unsigned s, vtime at) {
    const auto fn = [this, s, at] { local_event(s, at); };
    if (shards_) {
      shq_->schedule_at(shard_of(s), at, fn);
    } else {
      ref_.schedule_at(at, fn);
    }
  }

  void local_event(unsigned s, vtime t) {
    out_.trace[s].push_back({t.ns, s, false});
    if (rnd(s, 4) == 0) {
      const auto u = static_cast<unsigned>((s + 1 + rnd(s, kStreams - 1)) % kStreams);
      // extra == 0 lands the message at exactly the lookahead horizon — the
      // boundary case the conservative window must still order correctly.
      const std::uint64_t extra = rnd(s, 3) * kResidue;
      const vtime at{t.ns + static_cast<std::uint64_t>(kLookahead.ns) + extra};
      const auto fn = [this, u, s, at] { out_.trace[u].push_back({at.ns, s, true}); };
      if (shards_) {
        const auto origin =
            (static_cast<std::uint64_t>(s) << 32) | st_[s].origin_counter++;
        shq_->send(shard_of(s), shard_of(u), at, origin, fn);
      } else {
        ref_.schedule_at(at, fn);
      }
    }
    if (--st_[s].remaining > 0) {
      schedule_local(s, vtime{t.ns + kResidue * (1 + rnd(s, 25))});
    }
  }

  unsigned shards_;
  event_queue ref_;
  std::unique_ptr<sharded_event_queue> shq_;
  std::array<stream_state, kStreams> st_;
  run_result out_;
};

TEST(ShardedEventQueue, StressMatchesSequentialReferenceAtEveryShardCount) {
  constexpr unsigned kEvents = 400;
  const auto ref = driver(0, kEvents).run();
  std::uint64_t deliveries = 0;
  for (const auto& t : ref.trace) {
    for (const auto& r : t) deliveries += r.delivered ? 1 : 0;
  }
  ASSERT_EQ(ref.processed, kStreams * kEvents + deliveries);

  std::uint64_t windows = 0, sends = 0;
  for (const unsigned shards : {1u, 2u, 3u, 5u, 8u}) {
    const auto got = driver(shards, kEvents).run();
    EXPECT_EQ(got.processed, ref.processed) << "shards=" << shards;
    for (unsigned s = 0; s < kStreams; ++s) {
      EXPECT_EQ(got.trace[s], ref.trace[s]) << "shards=" << shards << " stream=" << s;
    }
    // Window and barrier-delivery counts are pure functions of the global
    // pending set, so they too are shard-count invariants.
    if (windows == 0) {
      windows = got.windows;
      sends = got.cross_sends;
      EXPECT_GT(sends, 0u);
    } else {
      EXPECT_EQ(got.windows, windows) << "shards=" << shards;
      EXPECT_EQ(got.cross_sends, sends) << "shards=" << shards;
    }
  }
}

TEST(ShardedEventQueue, ParallelExecutionMatchesSequential) {
  constexpr unsigned kEvents = 300;
  const auto seq = driver(8, kEvents).run();
  exec::job_executor ex(4);
  const auto par = driver(8, kEvents).run(&ex);
  EXPECT_EQ(par.processed, seq.processed);
  EXPECT_EQ(par.windows, seq.windows);
  EXPECT_EQ(par.cross_sends, seq.cross_sends);
  for (unsigned s = 0; s < kStreams; ++s) {
    EXPECT_EQ(par.trace[s], seq.trace[s]) << "stream=" << s;
  }
}

}  // namespace
}  // namespace adx::sim
