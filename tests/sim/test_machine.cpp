#include "sim/machine.hpp"

#include <gtest/gtest.h>

namespace adx::sim {
namespace {

machine_config flat_config() {
  auto c = machine_config::test_machine(4);
  c.local_wire = microseconds(0.1);
  c.remote_wire = microseconds(1.0);
  c.mem_service = microseconds(0.5);
  c.atomic_service = microseconds(1.0);
  return c;
}

TEST(Machine, RejectsZeroNodes) {
  machine_config c;
  c.nodes = 0;
  EXPECT_THROW(machine m(c), std::invalid_argument);
}

TEST(Machine, RejectsOutOfRangeNodes) {
  machine m(flat_config());
  EXPECT_THROW(m.access(0, 99, access_kind::read), std::out_of_range);
  EXPECT_THROW(m.access(99, 0, access_kind::read), std::out_of_range);
}

TEST(Machine, LocalReadLatency) {
  machine m(flat_config());
  const auto done = m.access(0, 0, access_kind::read);
  // wire out + service + wire back = 0.1 + 0.5 + 0.1
  EXPECT_EQ(done.ns, static_cast<std::uint64_t>(microseconds(0.7).ns));
}

TEST(Machine, RemoteReadLatency) {
  machine m(flat_config());
  const auto done = m.access(0, 1, access_kind::read);
  EXPECT_EQ(done.ns, static_cast<std::uint64_t>(microseconds(2.5).ns));
}

TEST(Machine, RemoteCostsMoreThanLocal) {
  machine m(flat_config());
  const auto local = m.access(0, 0, access_kind::read);
  machine m2(flat_config());
  const auto remote = m2.access(0, 1, access_kind::read);
  EXPECT_GT(remote.ns, local.ns);
}

TEST(Machine, AtomicUsesAtomicService) {
  machine m(flat_config());
  const auto done = m.access(0, 0, access_kind::rmw);
  EXPECT_EQ(done.ns, static_cast<std::uint64_t>(microseconds(1.2).ns));
}

TEST(Machine, ModuleQueuesConcurrentAccesses) {
  machine m(flat_config());
  // Two accesses to the same module issued at t=0: the second queues.
  const auto first = m.access(0, 0, access_kind::read);
  const auto second = m.access(1, 0, access_kind::read);
  EXPECT_GT(second.ns, first.ns);
  // Different modules do not interfere.
  machine m2(flat_config());
  const auto a = m2.access(0, 0, access_kind::read);
  const auto b = m2.access(1, 1, access_kind::read);
  EXPECT_EQ(a.ns, b.ns);
}

TEST(Machine, QueueDelayRecorded) {
  machine m(flat_config());
  m.access(0, 0, access_kind::read);
  m.access(1, 0, access_kind::read);
  m.access(2, 0, access_kind::read);
  EXPECT_GT(m.total_queue_delay().ns, 0);
  EXPECT_EQ(m.module_at(0).serviced(), 3u);
}

TEST(Machine, LedgerCountsByKindAndLocality) {
  machine m(flat_config());
  m.access(0, 0, access_kind::read);
  m.access(0, 1, access_kind::read);
  m.access(0, 0, access_kind::write);
  m.access(0, 2, access_kind::write);
  m.access(0, 0, access_kind::rmw);
  m.access(0, 3, access_kind::rmw);
  const auto& c = m.counts();
  EXPECT_EQ(c.local_reads, 1u);
  EXPECT_EQ(c.remote_reads, 1u);
  EXPECT_EQ(c.local_writes, 1u);
  EXPECT_EQ(c.remote_writes, 1u);
  EXPECT_EQ(c.local_rmws, 1u);
  EXPECT_EQ(c.remote_rmws, 1u);
  EXPECT_EQ(c.total(), 6u);
}

TEST(Machine, LedgerSnapshotDiff) {
  machine m(flat_config());
  m.access(0, 0, access_kind::read);
  const auto before = m.counts();
  m.access(0, 0, access_kind::write);
  m.access(0, 1, access_kind::write);
  const auto delta = m.counts() - before;
  EXPECT_EQ(delta.reads(), 0u);
  EXPECT_EQ(delta.writes(), 2u);
}

TEST(Machine, AccessNChainsThroughModule) {
  machine m(flat_config());
  const auto done = m.access_n(0, 0, access_kind::read, 10);
  // 10 accesses serialize on the module: >= 10 * service.
  EXPECT_GE(done.ns, static_cast<std::uint64_t>(microseconds(5.0).ns));
  EXPECT_EQ(m.counts().local_reads, 10u);
}

TEST(Machine, ButterflyPresetShape) {
  const auto c = machine_config::butterfly_gp1000();
  EXPECT_EQ(c.nodes, 32u);
  EXPECT_GT(c.remote_wire, c.local_wire);
  EXPECT_GT(c.atomic_service, c.mem_service);
  EXPECT_GT(c.context_switch, microseconds(100));
}

machine_config hier_config() {
  auto c = flat_config();  // nodes = 4
  c.wire_model = interconnect_model::hierarchical;
  c.group_size = 2;  // groups {0,1} and {2,3}
  c.group_wire = microseconds(0.5);
  return c;
}

TEST(Machine, HierarchicalSameGroupUsesGroupWire) {
  machine m(hier_config());
  // wire out + service + wire back = 0.5 + 0.5 + 0.5
  EXPECT_EQ(m.access(0, 1, access_kind::read).ns,
            static_cast<std::uint64_t>(microseconds(1.5).ns));
}

TEST(Machine, HierarchicalCrossGroupUsesRemoteWire) {
  machine m(hier_config());
  EXPECT_EQ(m.access(0, 2, access_kind::read).ns,
            static_cast<std::uint64_t>(microseconds(2.5).ns));
}

TEST(Machine, HierarchicalLocalAccessUnchanged) {
  machine m(hier_config());
  EXPECT_EQ(m.access(0, 0, access_kind::read).ns,
            static_cast<std::uint64_t>(microseconds(0.7).ns));
}

TEST(Machine, GroupArithmetic) {
  auto c = hier_config();
  c.nodes = 10;
  c.group_size = 4;
  EXPECT_EQ(c.group_of(0), 0u);
  EXPECT_EQ(c.group_of(3), 0u);
  EXPECT_EQ(c.group_of(4), 1u);
  EXPECT_EQ(c.group_of(9), 2u);
  EXPECT_EQ(c.groups(), 3u);  // rounds up
}

TEST(Machine, MinCrossGroupLatencyPerModel) {
  auto c = flat_config();
  EXPECT_EQ(c.min_cross_group_latency(), c.remote_wire);
  c.wire_model = interconnect_model::hierarchical;
  EXPECT_EQ(c.min_cross_group_latency(), c.remote_wire);
  c.wire_model = interconnect_model::butterfly;
  c.nodes = 16;  // two 4-ary stages
  c.switch_stage_latency = microseconds(0.2);
  c.switch_service = microseconds(0.3);
  EXPECT_EQ(c.min_cross_group_latency().ns, microseconds(1.0).ns);
}

TEST(Machine, HierarchicalPresetShapes) {
  const auto n = machine_config::hierarchical_numa();
  EXPECT_EQ(n.nodes, 1024u);
  EXPECT_EQ(n.groups(), 32u);
  EXPECT_EQ(n.wire_model, interconnect_model::hierarchical);
  EXPECT_GT(n.group_wire, n.local_wire);
  EXPECT_GT(n.remote_wire, n.group_wire);

  const auto f = machine_config::fat_tree_hpc4096();
  EXPECT_EQ(f.nodes, 4096u);
  EXPECT_EQ(f.group_size, 64u);
  EXPECT_EQ(f.min_cross_group_latency(), f.remote_wire);
}

TEST(Machine, RandomStreamSeededFromConfig) {
  auto cfg = flat_config();
  cfg.seed = 2024;
  machine a(cfg);
  machine b(cfg);
  EXPECT_EQ(a.random()(), b.random()());
}

}  // namespace
}  // namespace adx::sim
