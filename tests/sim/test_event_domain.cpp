#include "sim/event_domain.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "exec/job_executor.hpp"
#include "sim/machine_config.hpp"

namespace adx::sim {
namespace {

machine_config four_groups() {
  auto cfg = machine_config::hierarchical_numa(4, 4);
  return cfg;
}

TEST(EventDomain, FactoryClampsShardsToGroups) {
  const auto cfg = four_groups();
  auto dom = make_event_domain(cfg, {.shards = 64});
  EXPECT_EQ(dom->places(), 4u);
  // More shards than places is silently clamped; still runs.
  dom->queue_of(0).schedule_at(vtime{5}, [] {});
  EXPECT_EQ(dom->run(nullptr), 1u);
}

TEST(EventDomain, LookaheadComesFromTheInterconnect) {
  const auto cfg = four_groups();
  auto dom = make_event_domain(cfg, {.shards = 1});
  EXPECT_EQ(dom->lookahead(), cfg.min_cross_group_latency());
}

TEST(EventDomain, SequentialDomainRejectsBadPlace) {
  auto dom = make_event_domain(four_groups(), {.shards = 1});
  EXPECT_THROW(dom->queue_of(4), std::out_of_range);
  EXPECT_THROW(dom->send(4, 0, vtime{1'000'000'000}, 0, [] {}), std::out_of_range);
  EXPECT_THROW(dom->send(0, 4, vtime{1'000'000'000}, 0, [] {}), std::out_of_range);
}

TEST(EventDomain, SequentialDomainEnforcesTheHorizon) {
  const auto cfg = four_groups();
  auto dom = make_event_domain(cfg, {.shards = 1});
  const auto L = dom->lookahead();
  EXPECT_THROW(dom->send(0, 1, vtime{} + (L - nanoseconds(1)), 0, [] {}),
               std::logic_error);
  bool ran = false;
  dom->send(0, 1, vtime{} + L, 1, [&] { ran = true; });
  dom->run(nullptr);
  EXPECT_TRUE(ran);
  EXPECT_EQ(dom->stats().cross_sends, 1u);
}

TEST(EventDomain, StreamsAreAPureFunctionOfSeedAndPlace) {
  const auto cfg = four_groups();
  auto a = make_event_domain(cfg, {.shards = 1, .seed = 7});
  auto b = make_event_domain(cfg, {.shards = 3, .seed = 7});
  for (unsigned p = 0; p < 4; ++p) {
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(a->stream(p)(), b->stream(p)());
    }
  }
}

/// Ping-pong between places through send(): the workload every discipline-
/// following client reduces to. Returns the full delivery log.
struct pingpong_run {
  /// Delivery log per destination place (one slot is only ever appended by
  /// its own shard, so parallel windows never race on it).
  std::vector<std::vector<std::uint64_t>> log;
  vtime end{};
  domain_stats stats;
};

pingpong_run run_pingpong(unsigned shards, unsigned workers, bool adaptive,
                          unsigned rounds) {
  const auto cfg = four_groups();
  auto dom = make_event_domain(
      cfg, {.shards = shards, .seed = 11, .adaptive_lookahead = adaptive});
  pingpong_run out;
  out.log.resize(dom->places());
  const auto L = dom->lookahead();
  std::vector<std::uint64_t> counters(dom->places(), 0);

  // Each place p fires a chain of `rounds` messages to (p+1)%places; every
  // delivery is timestamped exactly at the sender's horizon.
  struct hop_fn {
    event_domain* dom;
    pingpong_run* out;
    std::vector<std::uint64_t>* counters;
    vdur L;
    unsigned places;

    void fire(unsigned from, unsigned left) const {
      if (left == 0) return;
      const unsigned to = (from + 1) % places;
      const std::uint64_t origin =
          (static_cast<std::uint64_t>(from) << 32) | (*counters)[from]++;
      auto* self = this;
      dom->send(from, to, dom->queue_of(from).now() + L, origin,
                [self, to, left, origin] {
                  self->out->log[to].push_back(origin);
                  self->fire(to, left - 1);
                });
    }
  };
  hop_fn hop{dom.get(), &out, &counters, L, dom->places()};
  for (unsigned p = 0; p < dom->places(); ++p) hop.fire(p, rounds);

  exec::job_executor ex(workers);
  dom->run(workers > 1 ? &ex : nullptr);
  out.end = dom->now();
  out.stats = dom->stats();
  return out;
}

TEST(EventDomain, PingPongBitIdenticalAcrossShardAndWorkerCounts) {
  const auto ref = run_pingpong(1, 1, false, 12);
  ASSERT_FALSE(ref.log[0].empty());
  for (unsigned shards : {2u, 3u, 4u}) {
    for (unsigned workers : {1u, 4u}) {
      const auto got = run_pingpong(shards, workers, false, 12);
      EXPECT_EQ(got.log, ref.log) << "shards=" << shards << " workers=" << workers;
      EXPECT_EQ(got.end, ref.end) << "shards=" << shards;
      EXPECT_EQ(got.stats, ref.stats) << "shards=" << shards;
    }
  }
}

TEST(EventDomain, AdaptiveMatchesNonAdaptiveForHorizonSends) {
  // Every ping-pong message is sent at exactly now + L, so the adaptive
  // grid's sub-segment barriers see identical batches: results must match
  // the non-adaptive run bit for bit (the equivalence the federation relies
  // on), while the counters may differ.
  const auto plain = run_pingpong(1, 1, false, 12);
  for (unsigned shards : {1u, 3u}) {
    const auto ad = run_pingpong(shards, 1, true, 12);
    EXPECT_EQ(ad.log, plain.log) << "shards=" << shards;
    EXPECT_EQ(ad.end, plain.end) << "shards=" << shards;
  }
}

TEST(EventDomain, AdaptiveLookaheadWidensOnQuietRounds) {
  const auto cfg = four_groups();
  auto dom = make_event_domain(cfg, {.shards = 2, .adaptive_lookahead = true});
  // A long chain of place-local events, one per lookahead window, with zero
  // cross-place traffic: the widen factor must climb and cut the window
  // count well below the non-adaptive run's.
  const auto L = dom->lookahead();
  for (int i = 1; i <= 64; ++i) {
    dom->queue_of(0).schedule_at(vtime{} + L * i, [] {});
  }
  dom->run(nullptr);
  const auto s = dom->stats();
  EXPECT_GT(s.peak_widen, 1u);
  EXPECT_GT(s.widened_windows, 0u);
  EXPECT_LT(s.windows, 64u);

  auto plain = make_event_domain(cfg, {.shards = 2});
  for (int i = 1; i <= 64; ++i) {
    plain->queue_of(0).schedule_at(vtime{} + L * i, [] {});
  }
  plain->run(nullptr);
  EXPECT_EQ(plain->stats().peak_widen, 1u);
  EXPECT_GT(plain->stats().windows, s.windows);
  // Same events either way.
  EXPECT_EQ(plain->processed(), dom->processed());
}

TEST(EventDomain, AdaptiveCountersAreShardInvariant) {
  const auto a = run_pingpong(1, 1, true, 10);
  for (unsigned shards : {2u, 4u}) {
    const auto b = run_pingpong(shards, 1, true, 10);
    EXPECT_EQ(b.stats, a.stats) << "shards=" << shards;
  }
}

TEST(EventDomain, SlabStatsAreShardInvariant) {
  // slots_acquired / callback_spills are logical-schedule functions; the sum
  // over shards must not depend on the shard count.
  const auto ref = run_pingpong(1, 1, false, 12);
  for (unsigned shards : {2u, 3u, 4u}) {
    const auto got = run_pingpong(shards, 1, false, 12);
    EXPECT_EQ(got.stats.slab_slots, ref.stats.slab_slots) << "shards=" << shards;
    EXPECT_EQ(got.stats.callback_spills, ref.stats.callback_spills);
  }
}

TEST(EventDomain, BudgetStopsAtAShardInvariantBoundary) {
  auto count_processed = [](unsigned shards) {
    const auto cfg = four_groups();
    auto dom = make_event_domain(cfg, {.shards = shards});
    const auto L = dom->lookahead();
    for (unsigned p = 0; p < dom->places(); ++p) {
      for (int i = 1; i <= 20; ++i) {
        dom->queue_of(p).schedule_at(vtime{} + L * i, [] {});
      }
    }
    dom->run(nullptr, 17);
    return dom->processed();
  };
  const auto ref = count_processed(1);
  EXPECT_GE(ref, 17u);
  EXPECT_EQ(count_processed(2), ref);
  EXPECT_EQ(count_processed(4), ref);
}

}  // namespace
}  // namespace adx::sim
