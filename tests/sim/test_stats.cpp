#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace adx::sim {
namespace {

TEST(Accumulator, EmptyIsZeroed) {
  accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, SingleValue) {
  accumulator a;
  a.add(5.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MeanMinMaxSum) {
  accumulator a;
  for (double v : {1.0, 2.0, 3.0, 4.0}) a.add(v);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
}

TEST(Accumulator, SampleVariance) {
  accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_NEAR(a.variance(), 4.571428, 1e-5);  // n-1 denominator
}

TEST(Accumulator, NegativeValues) {
  accumulator a;
  a.add(-3.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
}

TEST(Accumulator, ResetClears) {
  accumulator a;
  a.add(1.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, BucketsValues) {
  histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OverflowUnderflow) {
  histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi edge is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BucketLowerEdges) {
  histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
}

TEST(Histogram, NonZeroOrigin) {
  histogram h(100.0, 200.0, 4);
  h.add(125.0);
  h.add(199.0);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

}  // namespace
}  // namespace adx::sim
