#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace adx::sim {
namespace {

TEST(Accumulator, EmptyIsZeroed) {
  accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, SingleValue) {
  accumulator a;
  a.add(5.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MeanMinMaxSum) {
  accumulator a;
  for (double v : {1.0, 2.0, 3.0, 4.0}) a.add(v);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
}

TEST(Accumulator, SampleVariance) {
  accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_NEAR(a.variance(), 4.571428, 1e-5);  // n-1 denominator
}

TEST(Accumulator, NegativeValues) {
  accumulator a;
  a.add(-3.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
}

TEST(Accumulator, ResetClears) {
  accumulator a;
  a.add(1.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, BucketsValues) {
  histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OverflowUnderflow) {
  histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi edge is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BucketLowerEdges) {
  histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
}

TEST(Histogram, NonZeroOrigin) {
  histogram h(100.0, 200.0, 4);
  h.add(125.0);
  h.add(199.0);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(LogHistogram, EmptyQuantileIsZero) {
  log_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, ExactBelowSubBucketRange) {
  // With sub_bits = 5, values below 2^5 get one bucket each: quantiles in
  // that range are exact, not approximations.
  log_histogram h(5);
  for (std::uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(h.index_of(v), v);
    EXPECT_EQ(h.bucket_hi(v), v);
    h.add(v);
  }
  EXPECT_EQ(h.quantile(0.5), 15u);
  EXPECT_EQ(h.quantile(1.0), 31u);
  EXPECT_EQ(h.max(), 31u);
}

TEST(LogHistogram, IndexAndBucketHiRoundTrip) {
  log_histogram h(5);
  for (const std::uint64_t v : {32ULL, 33ULL, 63ULL, 64ULL, 1000ULL, 65'535ULL,
                                1ULL << 30, (1ULL << 40) + 12345ULL}) {
    const auto i = h.index_of(v);
    // v lands in bucket i: above the previous bucket's ceiling, at or below
    // its own.
    EXPECT_GE(h.bucket_hi(i), v) << v;
    EXPECT_LT(h.bucket_hi(i - 1), v) << v;
    // Log-linear error bound: the sub-bucket width is at most v / 2^sub_bits.
    EXPECT_LE(h.bucket_hi(i) - v, v / 32) << v;
  }
}

TEST(LogHistogram, QuantileClampsToObservedMax) {
  log_histogram h;
  h.add(1000);  // bucket ceiling is above 1000, but 1000 is the real max
  EXPECT_EQ(h.quantile(0.5), 1000u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
}

TEST(LogHistogram, MergeMatchesSequentialAdds) {
  log_histogram all, odd, even;
  std::uint64_t x = 99;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto v = (x >> 33) % 1'000'000;
    all.add(v);
    (i % 2 ? odd : even).add(v);
  }
  even.merge(odd);
  EXPECT_EQ(even.count(), all.count());
  EXPECT_EQ(even.max(), all.max());
  EXPECT_DOUBLE_EQ(even.mean(), all.mean());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(even.quantile(q), all.quantile(q)) << q;
  }
}

TEST(LogHistogram, WeightedAddCountsEverySample) {
  log_histogram h;
  h.add(10, 7);
  h.add(1'000'000, 3);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.quantile(0.5), 10u);
  EXPECT_GT(h.quantile(0.95), 900'000u);
}

TEST(LogHistogram, SumSurvivesPastUint64) {
  // v * count alone exceeds 2^64 here; a 64-bit sum would wrap and report a
  // tiny mean. The 128-bit accumulator keeps the mean exact.
  log_histogram h;
  const std::uint64_t v = 1ULL << 40;
  h.add(v, 1ULL << 25);  // v * count == 2^65
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(v));

  log_histogram other;
  other.add(v, 1ULL << 25);
  h.merge(other);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(v));
}

}  // namespace
}  // namespace adx::sim
