#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace adx::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  rng a(123);
  rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  rng r(7);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[r.below(8)];
  for (int k = 0; k < 8; ++k) EXPECT_GT(seen[k], 700) << "bucket " << k;
}

TEST(Rng, UniformInclusiveBounds) {
  rng r(9);
  bool lo_hit = false;
  bool hi_hit = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    lo_hit |= v == 3;
    hi_hit |= v == 6;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  rng r(13);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(50.0);
  EXPECT_NEAR(sum / kN, 50.0, 2.5);
}

TEST(Rng, ShuffleIsPermutation) {
  rng r(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  r.shuffle(w.begin(), w.end());
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ReseedRestartsSequence) {
  rng r(99);
  const auto first = r();
  r();
  r.reseed(99);
  EXPECT_EQ(r(), first);
}

TEST(Splitmix, KnownToBeStateAdvancing) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace adx::sim
