// small_ring: the inline-first FIFO behind lock waiter queues and processor
// ready queues. Checks FIFO semantics, head re-queueing, and the inline-to-
// spill transition (growth must preserve order; repeated growth must keep
// working).
#include "sim/small_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>

namespace adx::sim {
namespace {

TEST(SmallRing, StartsEmpty) {
  small_ring<std::uint32_t, 4> r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
}

TEST(SmallRing, FifoWithinInlineCapacity) {
  small_ring<std::uint32_t, 4> r;
  for (std::uint32_t i = 0; i < 4; ++i) r.push_back(i);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
  EXPECT_TRUE(r.empty());
}

TEST(SmallRing, PushFrontJumpsTheQueue) {
  small_ring<std::uint32_t, 4> r;
  r.push_back(1);
  r.push_back(2);
  r.push_front(99);
  EXPECT_EQ(r.front(), 99u);
  r.pop_front();
  EXPECT_EQ(r.front(), 1u);
}

TEST(SmallRing, WrapsAroundInlineBuffer) {
  small_ring<std::uint32_t, 4> r;
  // Interleave pushes and pops so head walks all the way around the ring.
  for (std::uint32_t i = 0; i < 20; ++i) {
    r.push_back(i);
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
  EXPECT_TRUE(r.empty());
}

TEST(SmallRing, GrowthPreservesOrder) {
  small_ring<std::uint32_t, 4> r;
  // Rotate head to the middle first so growth has to unwrap a wrapped ring.
  r.push_back(100);
  r.push_back(101);
  r.pop_front();
  r.pop_front();
  for (std::uint32_t i = 0; i < 10; ++i) r.push_back(i);  // spills at 5th push
  EXPECT_EQ(r.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
}

TEST(SmallRing, PushFrontCanTriggerGrowth) {
  small_ring<std::uint32_t, 2> r;
  r.push_back(1);
  r.push_back(2);
  r.push_front(0);  // full: must grow, then place at head
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.front(), 0u);
  r.pop_front();
  EXPECT_EQ(r.front(), 1u);
  r.pop_front();
  EXPECT_EQ(r.front(), 2u);
}

// Differential check against std::deque over a long mixed op sequence,
// crossing the spill boundary repeatedly relative to ring occupancy.
TEST(SmallRing, MatchesDequeOverMixedOps) {
  small_ring<std::uint32_t, 4> r;
  std::deque<std::uint32_t> model;
  std::uint64_t x = 88172645463325252ULL;
  for (int step = 0; step < 5000; ++step) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const auto v = static_cast<std::uint32_t>(x);
    switch (x % 4) {
      case 0:
      case 1:
        r.push_back(v);
        model.push_back(v);
        break;
      case 2:
        r.push_front(v);
        model.push_front(v);
        break;
      case 3:
        if (!model.empty()) {
          ASSERT_EQ(r.front(), model.front());
          r.pop_front();
          model.pop_front();
        }
        break;
    }
    ASSERT_EQ(r.size(), model.size());
    if (!model.empty()) ASSERT_EQ(r.front(), model.front());
  }
  while (!model.empty()) {
    ASSERT_EQ(r.front(), model.front());
    r.pop_front();
    model.pop_front();
  }
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace adx::sim
