// Parallel-vs-sequential equivalence for the refactored sweep drivers: the
// same simulations fanned out across workers must produce bit-identical
// virtual-time results. These tests double as the TSan stress surface for
// concurrent sim::machine / ct::runtime instances — the whole parallel-sweep
// design rests on runs being instance-scoped.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/objects.hpp"
#include "check/runner.hpp"
#include "exec/job_executor.hpp"
#include "perf/scenario.hpp"
#include "policy/registry.hpp"
#include "workload/cs_workload.hpp"

namespace adx {
namespace {

std::vector<workload::cs_config> small_grid() {
  std::vector<workload::cs_config> grid;
  for (const double cs_us : {25.0, 100.0, 400.0}) {
    for (const auto kind : {locks::lock_kind::blocking, locks::lock_kind::combined,
                            locks::lock_kind::adaptive}) {
      workload::cs_config cfg;
      cfg.processors = 4;
      cfg.threads = 8;
      cfg.iterations = 40;
      cfg.cs_length = sim::microseconds(cs_us);
      cfg.think_time = sim::microseconds(3 * cs_us + 100);
      cfg.kind = kind;
      cfg.params.combined_spin_limit = 10;
      grid.push_back(cfg);
    }
  }
  return grid;
}

TEST(ParallelRuns, CsSweepMatchesSequentialBitForBit) {
  const auto grid = small_grid();
  std::vector<workload::cs_result> seq;
  seq.reserve(grid.size());
  for (const auto& cfg : grid) seq.push_back(run_cs_workload(cfg));

  for (const unsigned jobs : {1u, 4u}) {
    exec::job_executor ex(jobs);
    const auto par = workload::run_cs_sweep(grid, ex);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(par[i].elapsed.ns, seq[i].elapsed.ns) << "jobs=" << jobs << " i=" << i;
      EXPECT_EQ(par[i].acquisitions, seq[i].acquisitions) << "i=" << i;
      EXPECT_EQ(par[i].contended, seq[i].contended) << "i=" << i;
      EXPECT_EQ(par[i].blocks, seq[i].blocks) << "i=" << i;
      EXPECT_EQ(par[i].peak_waiting, seq[i].peak_waiting) << "i=" << i;
      EXPECT_DOUBLE_EQ(par[i].mean_wait_us, seq[i].mean_wait_us) << "i=" << i;
    }
  }
}

TEST(ParallelRuns, PolicySweepMatchesSequentialBitForBit) {
  // The bench_abl_policy shape: one adaptive-lock workload per registered
  // policy (plus a wrapped variant), fanned out across workers.
  std::vector<workload::cs_config> grid;
  std::vector<policy::policy_spec> specs;
  specs.emplace_back();  // built-in simple-adapt
  for (const auto name : policy::all_policy_names()) {
    specs.push_back(policy::default_spec(name));
  }
  specs.push_back(policy::default_spec("break-even").with_hysteresis(2));
  for (const auto& spec : specs) {
    workload::cs_config cfg;
    cfg.processors = 4;
    cfg.threads = 8;
    cfg.iterations = 30;
    cfg.cs_length = sim::microseconds(120);
    cfg.think_time = sim::microseconds(300);
    cfg.kind = locks::lock_kind::adaptive;
    cfg.params.policy = spec;
    grid.push_back(cfg);
  }

  std::vector<workload::cs_result> seq;
  seq.reserve(grid.size());
  for (const auto& cfg : grid) seq.push_back(run_cs_workload(cfg));

  for (const unsigned jobs : {1u, 4u}) {
    exec::job_executor ex(jobs);
    const auto par = workload::run_cs_sweep(grid, ex);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(par[i].elapsed.ns, seq[i].elapsed.ns) << "jobs=" << jobs << " i=" << i;
      EXPECT_EQ(par[i].acquisitions, seq[i].acquisitions) << "i=" << i;
      EXPECT_EQ(par[i].blocks, seq[i].blocks) << "i=" << i;
    }
  }
}

check::check_params sweep_point(std::uint64_t seed, check::fixture fix,
                                locks::lock_kind kind) {
  check::check_params p;
  p.config = run_config{}
                 .with_machine(sim::machine_config::test_machine(4))
                 .with_lock(kind)
                 .with_perturb(sim::perturb_profile::chaos())
                 .with_seed(seed);
  p.fix = fix;
  p.iterations = 8;
  return p;
}

TEST(ParallelRuns, CheckSweepMatchesSequentialBitForBit) {
  // A miniature adx-check sweep: fixtures x locks x seeds, exactly the shape
  // main.cpp fans out. Concurrent run_check calls build concurrent machines,
  // perturbers and monitors — the TSan target.
  std::vector<check::check_params> points;
  for (const auto fix : {check::fixture::mutex, check::fixture::oversub}) {
    for (const auto kind : {locks::lock_kind::blocking, locks::lock_kind::ticket}) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        points.push_back(sweep_point(seed, fix, kind));
      }
    }
  }
  std::vector<check::check_result> seq;
  seq.reserve(points.size());
  for (const auto& p : points) seq.push_back(check::run_check(p));

  exec::job_executor ex(4);
  const auto par = ex.map(points.size(),
                          [&](std::size_t i) { return check::run_check(points[i]); });
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(par[i].end_time.ns, seq[i].end_time.ns) << "i=" << i;
    EXPECT_EQ(par[i].events, seq[i].events) << "i=" << i;
    EXPECT_EQ(par[i].violations.size(), seq[i].violations.size()) << "i=" << i;
    EXPECT_EQ(par[i].trace, seq[i].trace) << "i=" << i;
  }
}

TEST(ParallelRuns, ObjectCheckSweepMatchesSequentialBitForBit) {
  // The adx-check --objects axis: object kinds x seeds fanned out exactly as
  // main.cpp does. Concurrent run_object_check calls build concurrent maps,
  // monitors, stripe locks and shadow models — each must stay instance-scoped.
  std::vector<check::object_check_params> points;
  for (const char* object : {"hashmap", "monitor"}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      check::object_check_params p;
      p.config = run_config{}
                     .with_machine(sim::machine_config::test_machine(4))
                     .with_lock(object == std::string("hashmap")
                                    ? locks::lock_kind::adaptive
                                    : locks::lock_kind::blocking)
                     .with_perturb(sim::perturb_profile::chaos())
                     .with_seed(seed)
                     .with_object(object);
      p.iterations = 8;
      points.push_back(std::move(p));
    }
  }
  std::vector<check::check_result> seq;
  seq.reserve(points.size());
  for (const auto& p : points) seq.push_back(check::run_object_check(p));

  for (const unsigned jobs : {1u, 4u}) {
    exec::job_executor ex(jobs);
    const auto par = ex.map(points.size(), [&](std::size_t i) {
      return check::run_object_check(points[i]);
    });
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(par[i].end_time.ns, seq[i].end_time.ns) << "jobs=" << jobs << " i=" << i;
      EXPECT_EQ(par[i].events, seq[i].events) << "i=" << i;
      EXPECT_EQ(par[i].violations.size(), seq[i].violations.size()) << "i=" << i;
      EXPECT_EQ(par[i].trace, seq[i].trace) << "i=" << i;
    }
  }
}

std::optional<std::pair<check::check_params, check::check_result>> broken_failure() {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    for (const auto& profile :
         {sim::perturb_profile::delay(), sim::perturb_profile::chaos()}) {
      check::check_params p;
      p.config = run_config{}
                     .with_machine(sim::machine_config::test_machine(4))
                     .with_perturb(profile)
                     .with_seed(seed);
      p.fix = check::fixture::broken_lock;
      auto r = check::run_check(p);
      if (r.failed()) return {{p, std::move(r)}};
    }
  }
  return std::nullopt;
}

TEST(ParallelRuns, ShrinkTraceIsWorkerCountInvariant) {
  const auto failure = broken_failure();
  ASSERT_TRUE(failure.has_value()) << "no seed tripped the broken lock";
  const auto& [p, r] = *failure;

  const auto seq = check::shrink_trace(p, r.trace);  // one inline worker
  for (const unsigned jobs : {2u, 5u}) {
    exec::job_executor ex(jobs);
    const auto par = check::shrink_trace(p, r.trace, ex);
    EXPECT_EQ(par.minimal, seq.minimal) << "jobs=" << jobs;
    EXPECT_EQ(par.replays, seq.replays) << "jobs=" << jobs;
    EXPECT_EQ(par.still_fails, seq.still_fails) << "jobs=" << jobs;
  }
}

perf::scenario tiny_scenario(const std::string& name, double cs_us) {
  return perf::scenario{
      name, "test scenario", [cs_us]() {
        workload::cs_config cfg;
        cfg.processors = 3;
        cfg.threads = 6;
        cfg.iterations = 30;
        cfg.cs_length = sim::microseconds(cs_us);
        cfg.kind = locks::lock_kind::blocking;
        const auto r = run_cs_workload(cfg);
        perf::scenario_result out;
        out.metrics.push_back({"elapsed_us", "us", perf::metric_clock::virtual_time,
                               static_cast<double>(r.elapsed.ns) / 1000.0, false});
        out.metrics.push_back({"acquisitions", "count", perf::metric_clock::virtual_time,
                               static_cast<double>(r.acquisitions), false});
        return out;
      }};
}

TEST(ParallelRuns, ScenarioBatchVirtualMetricsAreWorkerCountInvariant) {
  const std::vector<perf::scenario> scenarios = {
      tiny_scenario("tiny_a", 40), tiny_scenario("tiny_b", 150),
      tiny_scenario("tiny_c", 600)};
  std::vector<const perf::scenario*> list;
  for (const auto& s : scenarios) list.push_back(&s);

  std::vector<std::vector<perf::scenario_outcome>> runs;
  for (const unsigned jobs : {1u, 3u}) {
    exec::job_executor ex(jobs);
    runs.push_back(perf::run_scenarios(list, 2, 0, ex));
  }
  ASSERT_EQ(runs[0].size(), list.size());
  ASSERT_EQ(runs[1].size(), list.size());
  for (std::size_t i = 0; i < list.size(); ++i) {
    ASSERT_TRUE(runs[0][i].ok());
    ASSERT_TRUE(runs[1][i].ok());
    const auto& a = runs[0][i].summary;
    const auto& b = runs[1][i].summary;
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (std::size_t m = 0; m < a.metrics.size(); ++m) {
      if (a.metrics[m].clock != perf::metric_clock::virtual_time) continue;
      EXPECT_EQ(a.metrics[m].name, b.metrics[m].name);
      EXPECT_EQ(a.metrics[m].stats.median, b.metrics[m].stats.median)
          << a.metrics[m].name << " diverged between jobs=1 and jobs=3";
      EXPECT_EQ(a.metrics[m].stats.iqr, 0.0) << a.metrics[m].name;
    }
  }
}

}  // namespace
}  // namespace adx
