// Unit tests for the parallel sweep executor: the determinism contract
// (results collected by index, identical for any worker count), the
// find_first ordering guarantees, and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/job_executor.hpp"

namespace adx::exec {
namespace {

TEST(JobExecutor, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(default_jobs(), 1u);
  EXPECT_EQ(resolve_jobs(0), default_jobs());
  EXPECT_EQ(resolve_jobs(3), 3u);
  EXPECT_EQ(resolve_jobs(1u << 20), 512u) << "worker count must be clamped";
}

TEST(JobExecutor, ReportsItsWorkerCount) {
  job_executor one(1);
  EXPECT_EQ(one.jobs(), 1u);
  job_executor four(4);
  EXPECT_EQ(four.jobs(), 4u);
  job_executor dflt(0);
  EXPECT_EQ(dflt.jobs(), default_jobs());
}

TEST(JobExecutor, MapCollectsByIndexForAnyWorkerCount) {
  const std::size_t n = 103;  // deliberately not a multiple of any chunk
  std::vector<std::size_t> expect(n);
  for (std::size_t i = 0; i < n; ++i) expect[i] = i * i;
  for (const unsigned jobs : {1u, 2u, 5u}) {
    job_executor ex(jobs);
    const auto out = ex.map(n, [](std::size_t i) { return i * i; });
    EXPECT_EQ(out, expect) << "jobs=" << jobs;
  }
}

TEST(JobExecutor, MapHandlesNonTrivialResultTypes) {
  job_executor ex(3);
  const auto out =
      ex.map(20, [](std::size_t i) { return std::string(i, 'x'); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], std::string(i, 'x'));
  }
}

TEST(JobExecutor, ForEachVisitsEveryIndexExactlyOnce) {
  const std::size_t n = 257;
  for (const unsigned jobs : {1u, 4u}) {
    std::vector<std::atomic<int>> visits(n);
    job_executor ex(jobs);
    ex.for_each(n, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(JobExecutor, ChunkSizeNeverChangesResults) {
  const std::size_t n = 37;
  std::vector<std::size_t> expect(n);
  std::iota(expect.begin(), expect.end(), std::size_t{0});
  job_executor ex(4);
  // chunk > count, chunk == count, count % chunk != 0, chunk == 1.
  for (const std::size_t chunk : {std::size_t{100}, n, std::size_t{5}, std::size_t{1}}) {
    const auto out = ex.map(n, [](std::size_t i) { return i; }, chunk);
    EXPECT_EQ(out, expect) << "chunk=" << chunk;
  }
}

TEST(JobExecutor, EmptyAndSingletonBatches) {
  for (const unsigned jobs : {1u, 4u}) {
    job_executor ex(jobs);
    EXPECT_TRUE(ex.map(0, [](std::size_t) { return 1; }).empty());
    EXPECT_EQ(ex.find_first(0, [](std::size_t) { return true; }),
              job_executor::npos);
    const auto one = ex.map(1, [](std::size_t i) { return i + 41; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 41u);
  }
}

TEST(JobExecutor, ExecutorIsReusableAcrossBatches) {
  job_executor ex(3);
  for (int round = 0; round < 5; ++round) {
    const auto out = ex.map(round * 10 + 1,
                            [round](std::size_t i) { return i + static_cast<std::size_t>(round); });
    ASSERT_EQ(out.size(), static_cast<std::size_t>(round * 10 + 1));
    EXPECT_EQ(out.back(), out.size() - 1 + static_cast<std::size_t>(round));
  }
}

TEST(JobExecutor, FindFirstReturnsSmallestHitForAnyWorkerCount) {
  for (const unsigned jobs : {1u, 2u, 6u}) {
    job_executor ex(jobs);
    EXPECT_EQ(ex.find_first(100, [](std::size_t i) { return i >= 37; }), 37u)
        << "jobs=" << jobs;
    EXPECT_EQ(ex.find_first(100, [](std::size_t i) { return i == 99; }), 99u)
        << "jobs=" << jobs;
    EXPECT_EQ(ex.find_first(100, [](std::size_t) { return false; }),
              job_executor::npos)
        << "jobs=" << jobs;
    EXPECT_EQ(ex.find_first(100, [](std::size_t) { return true; }), 0u)
        << "jobs=" << jobs;
  }
}

TEST(JobExecutor, SequentialFindFirstStopsAtTheFirstHit) {
  // With one worker the executor must behave exactly like a plain loop:
  // evaluate 0,1,...,hit and nothing beyond.
  job_executor ex(1);
  std::vector<std::size_t> evaluated;
  const auto hit = ex.find_first(50, [&](std::size_t i) {
    evaluated.push_back(i);
    return i == 7;
  });
  EXPECT_EQ(hit, 7u);
  EXPECT_EQ(evaluated, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(JobExecutor, ExceptionPropagatesWithItsMessage) {
  for (const unsigned jobs : {1u, 4u}) {
    job_executor ex(jobs);
    try {
      ex.for_each(64, [](std::size_t i) {
        if (i >= 5) throw std::runtime_error("boom at " + std::to_string(i));
      });
      FAIL() << "expected a throw (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()).substr(0, 8), "boom at ");
    }
    // The executor survives a throwing batch.
    EXPECT_EQ(ex.find_first(10, [](std::size_t i) { return i == 4; }), 4u);
  }
}

TEST(JobExecutor, SequentialExceptionIsTheFirstThrow) {
  // One worker reproduces a plain loop: the lowest-indexed throw wins and
  // nothing after it runs.
  job_executor ex(1);
  std::size_t last = 0;
  try {
    ex.for_each(64, [&](std::size_t i) {
      last = i;
      if (i == 9) throw std::runtime_error("boom at 9");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 9");
  }
  EXPECT_EQ(last, 9u);
}

}  // namespace
}  // namespace adx::exec
