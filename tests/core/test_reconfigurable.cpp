#include "core/reconfigurable.hpp"

#include <gtest/gtest.h>

namespace adx::core {
namespace {

class widget : public reconfigurable_object {
 public:
  widget() : reconfigurable_object("plain") {
    attributes().declare("knob", 1);
    attributes().declare("dial", 2);
  }
};

TEST(Reconfigurable, InitialConfiguration) {
  widget w;
  const auto c = w.current_configuration();
  EXPECT_EQ(c.method_impl, "plain");
  EXPECT_EQ(c.attrs.values[0].second, 1);
  EXPECT_EQ(w.config_generation(), 0u);
}

TEST(Reconfigurable, AttributeReconfigurationCostsOneReadOneWrite) {
  widget w;
  EXPECT_EQ(w.reconfigure_attribute("knob", 9), set_result::ok);
  EXPECT_EQ(w.attributes().value("knob"), 9);
  EXPECT_EQ(w.costs().reconfigurations, (op_cost{1, 1}));
  EXPECT_EQ(w.costs().reconfiguration_ops, 1u);
}

TEST(Reconfigurable, GenerationBumpsPerPsi) {
  widget w;
  w.reconfigure_attribute("knob", 2);
  w.reconfigure_attribute("dial", 3);
  EXPECT_EQ(w.config_generation(), 2u);
}

TEST(Reconfigurable, FailedReconfigurationCostsNothing) {
  widget w;
  w.attributes().at("knob").set_mutable(false);
  EXPECT_EQ(w.reconfigure_attribute("knob", 5), set_result::immutable);
  EXPECT_EQ(w.costs().reconfiguration_ops, 0u);
  EXPECT_EQ(w.config_generation(), 0u);
}

TEST(Reconfigurable, OwnedAttributeRequiresAgent) {
  widget w;
  ASSERT_TRUE(w.attributes().at("knob").acquire(11));
  EXPECT_EQ(w.reconfigure_attribute("knob", 5), set_result::not_owner);
  EXPECT_EQ(w.reconfigure_attribute("knob", 5, 11), set_result::ok);
}

TEST(Reconfigurable, MethodImplReconfigurationCostsFiveWrites) {
  // Table 8: scheduler swap = 3 sub-module writes + flag set + flag reset.
  widget w;
  w.reconfigure_method_impl("fancy");
  EXPECT_EQ(w.method_impl(), "fancy");
  EXPECT_EQ(w.costs().reconfigurations, (op_cost{0, 5}));
}

TEST(Reconfigurable, ReinitializeRestoresAttributes) {
  widget w;
  w.reconfigure_attribute("knob", 100);
  w.reinitialize();
  EXPECT_EQ(w.attributes().value("knob"), 1);
}

TEST(Reconfigurable, CostLedgerAccumulates) {
  widget w;
  w.reconfigure_attribute("knob", 2);
  w.reconfigure_method_impl("other");
  EXPECT_EQ(w.costs().reconfigurations, (op_cost{1, 6}));
  EXPECT_EQ(w.costs().reconfiguration_ops, 2u);
}

TEST(OpCost, Arithmetic) {
  op_cost a{1, 2};
  op_cost b{3, 4};
  EXPECT_EQ(a + b, (op_cost{4, 6}));
  a += b;
  EXPECT_EQ(a.total(), 10u);
}

}  // namespace
}  // namespace adx::core
