#include "core/attribute.hpp"

#include <gtest/gtest.h>

namespace adx::core {
namespace {

TEST(Attribute, InitialState) {
  attribute<std::int64_t> a("spin-time", 10);
  EXPECT_EQ(a.name(), "spin-time");
  EXPECT_EQ(a.get(), 10);
  EXPECT_TRUE(a.is_mutable());
  EXPECT_FALSE(a.owner().has_value());
}

TEST(Attribute, ImplicitSetSucceedsWhenUnowned) {
  attribute<std::int64_t> a("x", 0);
  EXPECT_EQ(a.set(5), set_result::ok);
  EXPECT_EQ(a.get(), 5);
}

TEST(Attribute, ImmutableRejectsSet) {
  attribute<std::int64_t> a("x", 1);
  a.set_mutable(false);
  EXPECT_EQ(a.set(2), set_result::immutable);
  EXPECT_EQ(a.get(), 1);
}

TEST(Attribute, MutabilityIsTimeDependent) {
  attribute<std::int64_t> a("x", 1);
  a.set_mutable(false);
  EXPECT_EQ(a.set(2), set_result::immutable);
  a.set_mutable(true);
  EXPECT_EQ(a.set(2), set_result::ok);
}

TEST(Attribute, ExplicitAcquisition) {
  attribute<std::int64_t> a("x", 0);
  EXPECT_TRUE(a.acquire(7));
  EXPECT_EQ(a.owner(), std::optional<agent_id>{7});
}

TEST(Attribute, AcquisitionIsIdempotentForSameAgent) {
  attribute<std::int64_t> a("x", 0);
  EXPECT_TRUE(a.acquire(7));
  EXPECT_TRUE(a.acquire(7));
}

TEST(Attribute, SecondAgentCannotAcquire) {
  attribute<std::int64_t> a("x", 0);
  EXPECT_TRUE(a.acquire(7));
  EXPECT_FALSE(a.acquire(8));
  EXPECT_EQ(a.owner(), std::optional<agent_id>{7});
}

TEST(Attribute, OwnedAttributeRejectsImplicitSet) {
  attribute<std::int64_t> a("x", 0);
  (void)a.acquire(7);
  EXPECT_EQ(a.set(5), set_result::not_owner);
  EXPECT_EQ(a.set(5, 8), set_result::not_owner);
  EXPECT_EQ(a.get(), 0);
}

TEST(Attribute, OwnerCanSet) {
  attribute<std::int64_t> a("x", 0);
  (void)a.acquire(7);
  EXPECT_EQ(a.set(5, 7), set_result::ok);
  EXPECT_EQ(a.get(), 5);
}

TEST(Attribute, ReleaseRestoresImplicitAccess) {
  attribute<std::int64_t> a("x", 0);
  (void)a.acquire(7);
  a.release(7);
  EXPECT_FALSE(a.owner().has_value());
  EXPECT_EQ(a.set(3), set_result::ok);
}

TEST(Attribute, ReleaseByNonOwnerIsNoOp) {
  attribute<std::int64_t> a("x", 0);
  (void)a.acquire(7);
  a.release(8);
  EXPECT_EQ(a.owner(), std::optional<agent_id>{7});
}

TEST(Attribute, ResetRestoresInitialValueAndFreedom) {
  attribute<std::int64_t> a("x", 42);
  a.set(7);
  (void)a.acquire(3);
  a.set_mutable(false);
  a.reset();
  EXPECT_EQ(a.get(), 42);
  EXPECT_TRUE(a.is_mutable());
  EXPECT_FALSE(a.owner().has_value());
}

TEST(Attribute, DeclaredSetCostIsOneReadOneWrite) {
  EXPECT_EQ(attribute<std::int64_t>::set_cost(), (op_cost{1, 1}));
}

TEST(Attribute, WorksWithNonIntegerTypes) {
  attribute<double> a("rate", 0.5);
  EXPECT_EQ(a.set(0.75), set_result::ok);
  EXPECT_DOUBLE_EQ(a.get(), 0.75);
}

}  // namespace
}  // namespace adx::core
