#include <gtest/gtest.h>

#include "core/monitor.hpp"
#include "core/sensor.hpp"

namespace adx::core {
namespace {

TEST(Sensor, SamplesEveryTriggerAtPeriodOne) {
  int value = 5;
  sensor s("v", [&] { return value; }, 1);
  const auto obs = s.trigger();
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->sensor, "v");
  EXPECT_EQ(obs->value, 5);
}

TEST(Sensor, PeriodTwoSamplesEveryOtherTrigger) {
  // The paper's lock monitor samples once during every other unlock.
  sensor s("v", [] { return 1; }, 2);
  EXPECT_FALSE(s.trigger().has_value());
  EXPECT_TRUE(s.trigger().has_value());
  EXPECT_FALSE(s.trigger().has_value());
  EXPECT_TRUE(s.trigger().has_value());
  EXPECT_EQ(s.triggers_seen(), 4u);
  EXPECT_EQ(s.samples_taken(), 2u);
}

TEST(Sensor, ZeroPeriodClampsToOne) {
  sensor s("v", [] { return 1; }, 0);
  EXPECT_EQ(s.period(), 1u);
  EXPECT_TRUE(s.trigger().has_value());
}

TEST(Sensor, SetPeriodChangesSamplingRate) {
  sensor s("v", [] { return 1; }, 1);
  s.set_period(3);
  EXPECT_FALSE(s.trigger().has_value());
  EXPECT_FALSE(s.trigger().has_value());
  EXPECT_TRUE(s.trigger().has_value());
}

TEST(Sensor, ObservesCurrentValueAtSampleTime) {
  int value = 0;
  sensor s("v", [&] { return value; }, 1);
  value = 3;
  EXPECT_EQ(s.trigger()->value, 3);
  value = 9;
  EXPECT_EQ(s.trigger()->value, 9);
}

TEST(Sensor, SampleCostIsOneRead) {
  EXPECT_EQ(sensor::sample_cost(), (op_cost{1, 0}));
}

TEST(Monitor, CloselyCoupledDeliversInline) {
  monitor m(coupling::closely_coupled);
  int v = 4;
  m.add_sensor(sensor("a", [&] { return v; }, 1));
  const auto due = m.trigger();
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].value, 4);
  EXPECT_EQ(m.backlog(), 0u);
}

TEST(Monitor, LooselyCoupledQueuesObservations) {
  monitor m(coupling::loosely_coupled);
  m.add_sensor(sensor("a", [] { return 1; }, 1));
  EXPECT_TRUE(m.trigger().empty());
  EXPECT_TRUE(m.trigger().empty());
  EXPECT_EQ(m.backlog(), 2u);
}

TEST(Monitor, DrainDeliversOldestFirstUpToMax) {
  monitor m(coupling::loosely_coupled);
  int v = 0;
  m.add_sensor(sensor("a", [&] { return v; }, 1));
  for (v = 1; v <= 3; ++v) m.trigger();
  const auto first = m.drain(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].value, 1);  // stale state delivered late
  EXPECT_EQ(first[1].value, 2);
  EXPECT_EQ(m.drain().size(), 1u);
}

TEST(Monitor, OverflowDropsOldest) {
  monitor m(coupling::loosely_coupled, /*queue_cap=*/2);
  int v = 0;
  m.add_sensor(sensor("a", [&] { return v; }, 1));
  for (v = 1; v <= 4; ++v) m.trigger();
  EXPECT_EQ(m.dropped(), 2u);
  const auto obs = m.drain();
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].value, 3);  // 1 and 2 were dropped ("information overload")
}

TEST(Monitor, DiversityCountsSensors) {
  monitor m;
  m.add_sensor(sensor("a", [] { return 0; }, 1));
  m.add_sensor(sensor("b", [] { return 0; }, 1));
  EXPECT_EQ(m.diversity(), 2u);
}

TEST(Monitor, MultipleSensorsWithDifferentPeriods) {
  monitor m(coupling::closely_coupled);
  m.add_sensor(sensor("fast", [] { return 1; }, 1));
  m.add_sensor(sensor("slow", [] { return 2; }, 3));
  EXPECT_EQ(m.trigger().size(), 1u);  // fast only
  EXPECT_EQ(m.trigger().size(), 1u);
  EXPECT_EQ(m.trigger().size(), 2u);  // both due
  EXPECT_EQ(m.total_samples(), 4u);
}

TEST(Monitor, ModeSwitchable) {
  monitor m(coupling::closely_coupled);
  m.add_sensor(sensor("a", [] { return 1; }, 1));
  m.set_mode(coupling::loosely_coupled);
  EXPECT_TRUE(m.trigger().empty());
  EXPECT_EQ(m.backlog(), 1u);
}

TEST(Monitor, AggregationFoldsPerSensor) {
  monitor m(coupling::closely_coupled);
  int v = 0;
  m.add_sensor(sensor("raw", [&] { return v; }, 1));
  m.add_sensor(sensor("smooth", [&] { return v; }, 1), sensor_aggregation::ewma(0.5));
  m.add_sensor(sensor("peak", [&] { return v; }, 1), sensor_aggregation::max_in_window(2));
  v = 8;
  auto due = m.trigger();
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].value, 8);  // last value
  EXPECT_EQ(due[1].value, 8);  // ewma primes on the first sample
  EXPECT_EQ(due[2].value, 8);
  v = 0;
  due = m.trigger();
  EXPECT_EQ(due[0].value, 0);
  EXPECT_EQ(due[1].value, 4);  // 0.5*0 + 0.5*8
  EXPECT_EQ(due[2].value, 8);  // window of 2 still holds the peak
  due = m.trigger();
  EXPECT_EQ(due[1].value, 2);
  EXPECT_EQ(due[2].value, 0);  // peak aged out of the window
}

TEST(Monitor, MaxInWindowZeroWindowActsAsLastValue) {
  monitor m(coupling::closely_coupled);
  int v = 9;
  m.add_sensor(sensor("w", [&] { return v; }, 1), sensor_aggregation::max_in_window(0));
  EXPECT_EQ(m.trigger()[0].value, 9);
  v = 3;
  EXPECT_EQ(m.trigger()[0].value, 3);
}

TEST(Monitor, ClearSensorsResetsAggregationState) {
  // Regression: clear_sensors used to keep the per-sensor fold state (and
  // queued loosely-coupled observations), so a re-installed sensor set
  // started from aggregates a previous policy had primed.
  monitor m(coupling::closely_coupled);
  int v = 100;
  m.add_sensor(sensor("s", [&] { return v; }, 1), sensor_aggregation::ewma(0.25));
  m.add_sensor(sensor("p", [&] { return v; }, 1), sensor_aggregation::max_in_window(8));
  (void)m.trigger();
  EXPECT_EQ(m.aggregated_value(0), 100);
  EXPECT_EQ(m.aggregated_value(1), 100);

  m.clear_sensors();
  EXPECT_EQ(m.sensor_count(), 0u);
  v = 0;
  m.add_sensor(sensor("s", [&] { return v; }, 1), sensor_aggregation::ewma(0.25));
  m.add_sensor(sensor("p", [&] { return v; }, 1), sensor_aggregation::max_in_window(8));
  const auto due = m.trigger();
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].value, 0) << "EWMA accumulator survived clear_sensors";
  EXPECT_EQ(due[1].value, 0) << "max-in-window history survived clear_sensors";
}

TEST(Monitor, ClearSensorsDropsQueuedObservations) {
  monitor m(coupling::loosely_coupled);
  m.add_sensor(sensor("a", [] { return 1; }, 1));
  (void)m.trigger();
  EXPECT_EQ(m.backlog(), 1u);
  m.clear_sensors();
  EXPECT_EQ(m.backlog(), 0u) << "stale observations outlived their sensors";
}

}  // namespace
}  // namespace adx::core
