#include "core/attribute_set.hpp"

#include <gtest/gtest.h>

namespace adx::core {
namespace {

attribute_set lock_attrs() {
  attribute_set s;
  s.declare("spin-time", 10);
  s.declare("delay-time", 0);
  s.declare("sleep-time", 1);
  s.declare("timeout", 0);
  return s;
}

TEST(AttributeSet, DeclareAndLookup) {
  auto s = lock_attrs();
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.value("spin-time"), 10);
  EXPECT_NE(s.find("sleep-time"), nullptr);
  EXPECT_EQ(s.find("nope"), nullptr);
}

TEST(AttributeSet, DuplicateDeclareThrows) {
  auto s = lock_attrs();
  EXPECT_THROW(s.declare("spin-time", 1), std::invalid_argument);
}

TEST(AttributeSet, AtThrowsOnUnknown) {
  auto s = lock_attrs();
  EXPECT_THROW(s.at("bogus"), std::out_of_range);
  const auto& cs = s;
  EXPECT_THROW((void)cs.at("bogus"), std::out_of_range);
}

TEST(AttributeSet, SnapshotCapturesCurrentValues) {
  auto s = lock_attrs();
  s.at("spin-time").set(50);
  const auto snap = s.snapshot();
  ASSERT_EQ(snap.values.size(), 4u);
  EXPECT_EQ(snap.values[0], (std::pair<std::string, std::int64_t>{"spin-time", 50}));
}

TEST(AttributeSet, SnapshotsCompareByValue) {
  auto a = lock_attrs();
  auto b = lock_attrs();
  EXPECT_EQ(a.snapshot(), b.snapshot());
  b.at("timeout").set(99);
  EXPECT_NE(a.snapshot(), b.snapshot());
}

TEST(AttributeSet, ResetAllRestoresInitials) {
  auto s = lock_attrs();
  s.at("spin-time").set(999);
  s.at("sleep-time").set(0);
  s.reset_all();
  EXPECT_EQ(s.value("spin-time"), 10);
  EXPECT_EQ(s.value("sleep-time"), 1);
}

TEST(AttributeSet, IterationVisitsDeclarationOrder) {
  auto s = lock_attrs();
  std::vector<std::string> names;
  for (const auto& a : s) names.push_back(a.name());
  EXPECT_EQ(names, (std::vector<std::string>{"spin-time", "delay-time", "sleep-time",
                                             "timeout"}));
}

TEST(Configuration, EqualityIncludesMethodImpl) {
  configuration a{"fcfs", lock_attrs().snapshot()};
  configuration b{"priority", lock_attrs().snapshot()};
  EXPECT_NE(a, b);
  b.method_impl = "fcfs";
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace adx::core
