#include "core/adaptive.hpp"

#include <gtest/gtest.h>

namespace adx::core {
namespace {

/// A policy that raises "knob" whenever the sensed value exceeds a bound.
class bound_policy final : public adaptation_policy {
 public:
  bound_policy(reconfigurable_object& obj, std::int64_t bound)
      : obj_(&obj), bound_(bound) {}

  void observe(const observation& obs) override {
    last_value = obs.value;
    if (obs.value > bound_) {
      obj_->reconfigure_attribute("knob", obs.value);
      note_decision();
    }
  }

  std::int64_t last_value{-1};

 private:
  reconfigurable_object* obj_;
  std::int64_t bound_;
};

class gadget : public adaptive_object {
 public:
  gadget() {
    attributes().declare("knob", 0);
    object_monitor().add_sensor(sensor("load", [this] { return load; }, 2));
  }
  std::int64_t load{0};
};

TEST(Adaptive, FeedbackLoopRunsPolicyOnSample) {
  gadget g;
  auto pol = std::make_shared<bound_policy>(g, 5);
  g.set_policy(pol);
  g.load = 10;
  EXPECT_EQ(g.feedback_point(), 0u);  // period 2: first trigger no sample
  EXPECT_EQ(g.feedback_point(), 1u);
  EXPECT_EQ(pol->last_value, 10);
  EXPECT_EQ(g.attributes().value("knob"), 10);
  EXPECT_EQ(pol->decisions(), 1u);
}

TEST(Adaptive, NoDecisionBelowBound) {
  gadget g;
  auto pol = std::make_shared<bound_policy>(g, 5);
  g.set_policy(pol);
  g.load = 3;
  g.feedback_point();
  g.feedback_point();
  EXPECT_EQ(pol->last_value, 3);
  EXPECT_EQ(pol->decisions(), 0u);
  EXPECT_EQ(g.config_generation(), 0u);
}

TEST(Adaptive, MonitorSamplesCountedInLedger) {
  gadget g;
  g.set_policy(std::make_shared<bound_policy>(g, 100));
  for (int i = 0; i < 6; ++i) g.feedback_point();
  EXPECT_EQ(g.costs().monitor_samples, 3u);
  EXPECT_EQ(g.costs().monitoring, (op_cost{3, 0}));
}

TEST(Adaptive, WorksWithoutPolicy) {
  gadget g;
  g.load = 42;
  EXPECT_EQ(g.feedback_point(), 0u);
  EXPECT_EQ(g.feedback_point(), 1u);  // sampled, delivered nowhere
}

TEST(Adaptive, LooselyCoupledPumpDeliversStaleObservations) {
  gadget g;
  g.object_monitor().set_mode(coupling::loosely_coupled);
  auto pol = std::make_shared<bound_policy>(g, 5);
  g.set_policy(pol);

  g.load = 50;
  g.feedback_point();
  g.feedback_point();  // queued, not delivered
  EXPECT_EQ(pol->last_value, -1);

  g.load = 0;  // state has since changed...
  EXPECT_EQ(g.pump(), 1u);
  EXPECT_EQ(pol->last_value, 50);  // ...but the policy sees the old state
}

TEST(Adaptive, PumpOnEmptyBacklogIsNoOp) {
  gadget g;
  g.set_policy(std::make_shared<bound_policy>(g, 5));
  EXPECT_EQ(g.pump(), 0u);
}

}  // namespace
}  // namespace adx::core
