#include "locks/scheduler.hpp"

#include <gtest/gtest.h>

namespace adx::locks {
namespace {

TEST(Fcfs, GrantsInRegistrationOrder) {
  fcfs_scheduler s;
  s.register_waiter(3, 0);
  s.register_waiter(1, 9);  // priority ignored
  s.register_waiter(2, 5);
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{3});
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{1});
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{2});
  EXPECT_EQ(s.pick_next(), std::nullopt);
}

TEST(Fcfs, DeregisterRemovesWaiter) {
  fcfs_scheduler s;
  s.register_waiter(1, 0);
  s.register_waiter(2, 0);
  EXPECT_TRUE(s.deregister(1));
  EXPECT_FALSE(s.deregister(1));
  EXPECT_EQ(s.waiting(), 1u);
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{2});
}

TEST(Priority, GrantsHighestPriorityFirst) {
  priority_scheduler s;
  s.register_waiter(1, 2);
  s.register_waiter(2, 9);
  s.register_waiter(3, 5);
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{2});
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{3});
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{1});
}

TEST(Priority, FifoWithinSameLevel) {
  priority_scheduler s;
  s.register_waiter(5, 1);
  s.register_waiter(6, 1);
  s.register_waiter(7, 1);
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{5});
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{6});
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{7});
}

TEST(Priority, NegativePrioritiesOrdered) {
  priority_scheduler s;
  s.register_waiter(1, -5);
  s.register_waiter(2, 0);
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{2});
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{1});
}

TEST(Priority, Deregister) {
  priority_scheduler s;
  s.register_waiter(1, 3);
  s.register_waiter(2, 8);
  EXPECT_TRUE(s.deregister(2));
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{1});
}

TEST(Handoff, DesignatedWaiterJumpsQueue) {
  handoff_scheduler s;
  s.register_waiter(1, 0);
  s.register_waiter(2, 0);
  s.register_waiter(3, 0);
  s.designate(3);
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{3});
  // Designation is consumed: back to FCFS.
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{1});
}

TEST(Handoff, UnregisteredDesignationFallsBackToFcfs) {
  handoff_scheduler s;
  s.register_waiter(1, 0);
  s.designate(99);  // not registered
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{1});
  // Designation stays armed until the designated thread actually registers.
  EXPECT_EQ(s.designated(), std::optional<ct::thread_id>{99});
}

TEST(Handoff, DesignationSurvivesUntilRegistration) {
  handoff_scheduler s;
  s.designate(7);
  s.register_waiter(1, 0);
  s.register_waiter(7, 0);
  EXPECT_EQ(s.pick_next(), std::optional<ct::thread_id>{7});
}

TEST(Handoff, Deregister) {
  handoff_scheduler s;
  s.register_waiter(4, 0);
  EXPECT_TRUE(s.deregister(4));
  EXPECT_EQ(s.pick_next(), std::nullopt);
}

TEST(Schedulers, NamesAreStable) {
  EXPECT_EQ(fcfs_scheduler{}.name(), "fcfs");
  EXPECT_EQ(priority_scheduler{}.name(), "priority");
  EXPECT_EQ(handoff_scheduler{}.name(), "handoff");
}

TEST(Schedulers, WaitingCounts) {
  fcfs_scheduler s;
  EXPECT_EQ(s.waiting(), 0u);
  s.register_waiter(1, 0);
  s.register_waiter(2, 0);
  EXPECT_EQ(s.waiting(), 2u);
  s.pick_next();
  EXPECT_EQ(s.waiting(), 1u);
}

}  // namespace
}  // namespace adx::locks
