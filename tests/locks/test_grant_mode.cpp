// The grant-mode attribute: direct handoff vs. release-and-retry (barging)
// release disciplines of the reconfigurable lock.
#include <gtest/gtest.h>

#include "ct/context.hpp"
#include "locks/factory.hpp"

namespace adx::locks {
namespace {

sim::machine_config mc(unsigned nodes = 6) { return sim::machine_config::test_machine(nodes); }
lock_cost_model cost() { return lock_cost_model::fast_test(); }

TEST(GrantMode, AttributeDeclaredDefaultHandoff) {
  reconfigurable_lock lk(0, cost());
  EXPECT_EQ(lk.attributes().value("grant-mode"), 0);
}

TEST(GrantMode, RetryModeMutualExclusionAndProgress) {
  ct::runtime rt(mc());
  reconfigurable_lock lk(0, cost(), waiting_policy::pure_sleep());
  lk.attributes().at("grant-mode").set(1);
  ct::svar<std::uint64_t> counter(0, 0);
  int in_cs = 0;
  bool violated = false;
  for (unsigned p = 0; p < 6; ++p) {
    rt.fork(p, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 30; ++i) {
        co_await lk.lock(ctx);
        if (++in_cs != 1) violated = true;
        const auto v = co_await ctx.read(counter);
        co_await ctx.compute(sim::microseconds(20));
        co_await ctx.write(counter, v + 1);
        --in_cs;
        co_await lk.unlock(ctx);
        co_await ctx.compute(sim::microseconds(10));
      }
    });
  }
  EXPECT_TRUE(rt.run_all().completed);
  EXPECT_FALSE(violated);
  EXPECT_EQ(counter.raw(), 180u);
}

TEST(GrantMode, RetryModeUnderMultiprogramming) {
  ct::runtime rt(mc(3));
  reconfigurable_lock lk(0, cost(), waiting_policy::mixed(5));
  lk.attributes().at("grant-mode").set(1);
  ct::svar<std::uint64_t> counter(0, 0);
  for (unsigned t = 0; t < 9; ++t) {  // 3 threads per processor
    rt.fork(t % 3, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 20; ++i) {
        co_await lk.lock(ctx);
        const auto v = co_await ctx.read(counter);
        co_await ctx.compute(sim::microseconds(15));
        co_await ctx.write(counter, v + 1);
        co_await lk.unlock(ctx);
        co_await ctx.sleep_for(sim::microseconds(40));
      }
    });
  }
  EXPECT_TRUE(rt.run_all().completed);
  EXPECT_EQ(counter.raw(), 180u);
}

TEST(GrantMode, HandoffModeRecordsHandoffsRetryDoesNot) {
  const auto run_mode = [](std::int64_t mode) {
    ct::runtime rt(mc());
    reconfigurable_lock lk(0, cost(), waiting_policy::pure_sleep());
    lk.attributes().at("grant-mode").set(mode);
    for (unsigned p = 0; p < 3; ++p) {
      rt.fork(p, [&](ct::context& ctx) -> ct::task<void> {
        for (int i = 0; i < 10; ++i) {
          co_await lk.lock(ctx);
          co_await ctx.compute(sim::microseconds(100));
          co_await lk.unlock(ctx);
        }
      });
    }
    rt.run_all();
    return lk.stats().handoffs();
  };
  EXPECT_GT(run_mode(0), 0u);
  EXPECT_EQ(run_mode(1), 0u);
}

TEST(GrantMode, RetryModeAvoidsGrantConvoyUnderOversubscription) {
  // 4 compute-heavy threads per processor: a direct handoff charges the lock
  // to a grantee that waits in its processor's run queue; barging lets any
  // runnable thread take it. Barging must finish significantly sooner.
  const auto run_mode = [](std::int64_t mode) {
    ct::runtime rt(sim::machine_config::butterfly_gp1000());
    simple_adapt_params p{2, 5, 15, 2};
    p.pure_spin_on_idle = false;
    adaptive_lock lk(0, lock_cost_model::butterfly_cthreads(), p);
    lk.attributes().at("grant-mode").set(mode);
    for (unsigned t = 0; t < 24; ++t) {
      rt.fork(t % 6, [&](ct::context& ctx) -> ct::task<void> {
        for (int i = 0; i < 30; ++i) {
          co_await lk.lock(ctx);
          co_await ctx.compute(sim::microseconds(40));
          co_await lk.unlock(ctx);
          co_await ctx.sleep_for(sim::microseconds(150));
        }
      });
    }
    return rt.run_all().end_time;
  };
  const auto handoff = run_mode(0);
  const auto barging = run_mode(1);
  EXPECT_LT(barging.ns, handoff.ns);
}

TEST(GrantMode, FactoryAppliesGrantMode) {
  lock_params params;
  params.grant_mode = 1;
  const auto lk = make_lock(lock_kind::adaptive, 0, cost(), params);
  auto* rl = dynamic_cast<reconfigurable_lock*>(lk.get());
  ASSERT_NE(rl, nullptr);
  EXPECT_EQ(rl->attributes().value("grant-mode"), 1);
}

TEST(GrantMode, TimedWaitersSurviveRetryMode) {
  ct::runtime rt(mc());
  reconfigurable_lock lk(0, cost(), waiting_policy::conditional(150, 2));
  lk.attributes().at("grant-mode").set(1);
  bool acquired = false;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(2));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(30));
    co_await lk.lock(ctx);
    acquired = true;
    co_await lk.unlock(ctx);
  });
  EXPECT_TRUE(rt.run_all().completed);
  EXPECT_TRUE(acquired);
}

TEST(GrantMode, SchedulerSwapAdoptedInRetryMode) {
  // Regression: pending-scheduler adoption must also happen on the
  // release-and-retry unlock path, not only under direct handoff.
  ct::runtime rt(mc());
  reconfigurable_lock lk(0, cost(), waiting_policy::pure_sleep());
  lk.attributes().at("grant-mode").set(1);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(2));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(50));
    co_await lk.lock(ctx);  // registers and blocks -> swap must defer
    co_await lk.unlock(ctx);
  });
  rt.fork(2, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.sleep_for(sim::milliseconds(1));  // waiter registered
    co_await lk.configure_scheduler(ctx, std::make_unique<priority_scheduler>());
  });
  EXPECT_TRUE(rt.run_all().completed);
  EXPECT_EQ(lk.scheduler().name(), "priority");
  EXPECT_FALSE(lk.scheduler_transition_pending());
}

}  // namespace
}  // namespace adx::locks
