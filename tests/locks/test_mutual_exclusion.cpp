// Property suite over the whole lock family: mutual exclusion, progress,
// acquisition accounting, and determinism, for every lock kind and several
// contention shapes.
#include <gtest/gtest.h>

#include "ct/context.hpp"
#include "locks/factory.hpp"

namespace adx::locks {
namespace {

struct scenario {
  lock_kind kind;
  unsigned processors;
  unsigned threads;
  int iterations;
};

std::string scenario_name(const testing::TestParamInfo<scenario>& info) {
  std::string n = to_string(info.param.kind);
  for (auto& c : n) {
    if (c == '-') c = '_';
  }
  return n + "_p" + std::to_string(info.param.processors) + "_t" +
         std::to_string(info.param.threads);
}

class MutualExclusion : public testing::TestWithParam<scenario> {};

struct run_outcome {
  std::uint64_t counter;
  bool violated;
  sim::vtime end;
  std::uint64_t acquisitions;
  std::uint64_t releases;
};

run_outcome run_scenario(const scenario& sc) {
  ct::runtime rt(sim::machine_config::test_machine(sc.processors));
  auto lk = make_lock(sc.kind, 0, lock_cost_model::fast_test());
  ct::svar<std::uint64_t> counter(0, 0);
  int in_cs = 0;
  bool violated = false;
  for (unsigned t = 0; t < sc.threads; ++t) {
    rt.fork(t % sc.processors, [&, t](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < sc.iterations; ++i) {
        co_await lk->lock(ctx);
        if (++in_cs != 1) violated = true;
        if (lk->owner() != ctx.self()) violated = true;
        const auto v = co_await ctx.read(counter);
        co_await ctx.compute(sim::microseconds(3));
        co_await ctx.write(counter, v + 1);
        --in_cs;
        co_await lk->unlock(ctx);
        co_await ctx.compute(sim::microseconds(2 + t));
      }
    });
  }
  const auto r = rt.run_all();
  return {counter.raw(), violated, r.end_time, lk->stats().acquisitions(),
          lk->stats().releases()};
}

TEST_P(MutualExclusion, CriticalSectionsNeverOverlap) {
  const auto& sc = GetParam();
  const auto out = run_scenario(sc);
  EXPECT_FALSE(out.violated);
}

TEST_P(MutualExclusion, EveryIncrementSurvives) {
  const auto& sc = GetParam();
  const auto out = run_scenario(sc);
  EXPECT_EQ(out.counter, std::uint64_t{sc.threads} * sc.iterations);
}

TEST_P(MutualExclusion, AcquisitionsBalanceReleases) {
  const auto& sc = GetParam();
  const auto out = run_scenario(sc);
  const std::uint64_t expected = std::uint64_t{sc.threads} * sc.iterations;
  EXPECT_EQ(out.acquisitions, expected);
  EXPECT_EQ(out.releases, expected);
}

TEST_P(MutualExclusion, DeterministicReplay) {
  const auto& sc = GetParam();
  EXPECT_EQ(run_scenario(sc).end.ns, run_scenario(sc).end.ns);
}

constexpr lock_kind kAllKinds[] = {
    lock_kind::atomior, lock_kind::spin,     lock_kind::backoff,
    lock_kind::blocking, lock_kind::combined, lock_kind::advisory,
    lock_kind::ticket,  lock_kind::mcs,      lock_kind::reconfigurable,
    lock_kind::adaptive,
};

std::vector<scenario> contended_scenarios() {
  std::vector<scenario> v;
  for (auto k : kAllKinds) v.push_back({k, 4, 4, 40});
  return v;
}

std::vector<scenario> multiprogrammed_scenarios() {
  std::vector<scenario> v;
  for (auto k : kAllKinds) {
    // Pure spin kinds would livelock a processor whose peer holds the lock
    // (spinners never yield, the owner can never run); that is real spin-lock
    // behaviour under multiprogramming, so only preemptible kinds run here.
    if (k == lock_kind::atomior || k == lock_kind::spin || k == lock_kind::backoff ||
        k == lock_kind::ticket || k == lock_kind::mcs || k == lock_kind::advisory) {
      continue;  // advisory's default advice is spin, so it spins too
    }
    v.push_back({k, 2, 6, 25});
  }
  return v;
}

std::vector<scenario> uncontended_scenarios() {
  std::vector<scenario> v;
  for (auto k : kAllKinds) v.push_back({k, 1, 1, 30});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Contended, MutualExclusion,
                         testing::ValuesIn(contended_scenarios()), scenario_name);
INSTANTIATE_TEST_SUITE_P(Multiprogrammed, MutualExclusion,
                         testing::ValuesIn(multiprogrammed_scenarios()), scenario_name);
INSTANTIATE_TEST_SUITE_P(Uncontended, MutualExclusion,
                         testing::ValuesIn(uncontended_scenarios()), scenario_name);

}  // namespace
}  // namespace adx::locks
