#include "locks/condition.hpp"

#include <gtest/gtest.h>

#include "ct/context.hpp"
#include "locks/blocking_lock.hpp"
#include "locks/spin_lock.hpp"

namespace adx::locks {
namespace {

sim::machine_config mc() { return sim::machine_config::test_machine(4); }
lock_cost_model cost() { return lock_cost_model::fast_test(); }

TEST(Condition, WaitReleasesLockAndSignalWakes) {
  ct::runtime rt(mc());
  blocking_lock lk(0, cost());
  condition cv;
  bool flag = false;
  bool consumer_saw = false;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    while (!flag) co_await cv.wait(ctx, lk);
    consumer_saw = flag;
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.sleep_for(sim::milliseconds(1));
    co_await lk.lock(ctx);  // acquirable: the waiter released it
    flag = true;
    co_await lk.unlock(ctx);
    co_await cv.signal(ctx);
  });
  const auto r = rt.run_all();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(consumer_saw);
}

TEST(Condition, SignalBeforeAnyWaiterIsLost) {
  // Mesa semantics: signals do not accumulate; the predicate protects you.
  ct::runtime rt(mc());
  blocking_lock lk(0, cost());
  condition cv;
  bool flag = false;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await cv.signal(ctx);  // nobody waiting: no-op
    co_await lk.lock(ctx);
    flag = true;
    co_await lk.unlock(ctx);
    co_await cv.signal(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.sleep_for(sim::milliseconds(1));
    co_await lk.lock(ctx);
    while (!flag) co_await cv.wait(ctx, lk);  // predicate already true
    co_await lk.unlock(ctx);
  });
  EXPECT_TRUE(rt.run_all().completed);
}

TEST(Condition, BroadcastWakesAllWaiters) {
  ct::runtime rt(mc());
  blocking_lock lk(0, cost());
  condition cv;
  bool go = false;
  int woke = 0;
  for (unsigned p = 0; p < 3; ++p) {
    rt.fork(p, [&](ct::context& ctx) -> ct::task<void> {
      co_await lk.lock(ctx);
      while (!go) co_await cv.wait(ctx, lk);
      ++woke;
      co_await lk.unlock(ctx);
    });
  }
  rt.fork(3, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.sleep_for(sim::milliseconds(2));
    co_await lk.lock(ctx);
    go = true;
    co_await lk.unlock(ctx);
    co_await cv.broadcast(ctx);
  });
  const auto r = rt.run_all();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(woke, 3);
}

TEST(Condition, SignalDuringWaitersUnlockIsNotLost) {
  // The race the registration-before-unlock protocol exists for: the signal
  // fires while the waiter is mid-unlock (registered but not yet blocked).
  ct::runtime rt(mc());
  blocking_lock lk(0, cost());
  condition cv;
  bool flag = false;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    flag = true;  // set before the waiter even starts waiting
    while (!flag) co_await cv.wait(ctx, lk);
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    while (!flag) {
      // Fire a signal "simultaneously" with our own wait registration via a
      // helper thread below; rely on the protocol to not deadlock.
      co_await cv.wait(ctx, lk);
    }
    co_await lk.unlock(ctx);
  });
  rt.fork(2, [&](ct::context& ctx) -> ct::task<void> {
    for (int i = 0; i < 50; ++i) {
      co_await cv.signal(ctx);
      co_await ctx.sleep_for(sim::microseconds(7));
    }
  });
  EXPECT_TRUE(rt.run_all().completed);
}

TEST(Condition, ProducerConsumerPipeline) {
  ct::runtime rt(mc());
  spin_lock lk(0, cost());
  condition not_empty;
  condition not_full;
  std::deque<int> buffer;
  constexpr std::size_t kCap = 4;
  constexpr int kItems = 40;
  std::vector<int> consumed;

  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    for (int i = 0; i < kItems; ++i) {
      co_await lk.lock(ctx);
      while (buffer.size() >= kCap) co_await not_full.wait(ctx, lk);
      buffer.push_back(i);
      co_await lk.unlock(ctx);
      co_await not_empty.signal(ctx);
      co_await ctx.compute(sim::microseconds(20));
    }
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    for (int i = 0; i < kItems; ++i) {
      co_await lk.lock(ctx);
      while (buffer.empty()) co_await not_empty.wait(ctx, lk);
      consumed.push_back(buffer.front());
      buffer.pop_front();
      co_await lk.unlock(ctx);
      co_await not_full.signal(ctx);
      co_await ctx.compute(sim::microseconds(35));
    }
  });
  const auto r = rt.run_all();
  EXPECT_TRUE(r.completed);
  ASSERT_EQ(consumed.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(consumed[i], i);  // FIFO order
}

TEST(Condition, WaiterCountVisible) {
  ct::runtime rt(mc());
  blocking_lock lk(0, cost());
  condition cv;
  std::size_t mid_count = 0;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await cv.wait(ctx, lk);
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.sleep_for(sim::milliseconds(1));
    mid_count = cv.waiters();
    co_await cv.signal(ctx);
  });
  rt.run_all();
  EXPECT_EQ(mid_count, 1u);
  EXPECT_EQ(cv.waiters(), 0u);
}

}  // namespace
}  // namespace adx::locks
