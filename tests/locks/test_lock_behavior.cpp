// Per-kind behavioural tests: the properties that distinguish the lock
// family members from one another.
#include <gtest/gtest.h>

#include "ct/context.hpp"
#include "locks/advisory_lock.hpp"
#include "locks/backoff_lock.hpp"
#include "locks/blocking_lock.hpp"
#include "locks/combined_lock.hpp"
#include "locks/factory.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/spin_lock.hpp"
#include "locks/tas_lock.hpp"
#include "locks/ticket_lock.hpp"

namespace adx::locks {
namespace {

sim::machine_config mc(unsigned nodes = 4) { return sim::machine_config::test_machine(nodes); }
lock_cost_model cost() { return lock_cost_model::fast_test(); }

/// Measures the virtual time of one uncontended lock or unlock operation.
template <typename L, typename Op>
sim::vdur time_op(L& lk, Op op, bool pre_lock) {
  ct::runtime rt(mc());
  sim::vdur measured{};
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    if (pre_lock) co_await lk.lock(ctx);
    const auto t0 = ctx.now();
    co_await op(ctx);
    measured = ctx.now() - t0;
  });
  rt.run_all();
  return measured;
}

TEST(TasLock, UncontendedCostIsOverheadPlusOneRmw) {
  tas_lock lk(0, cost());
  const auto d = time_op(
      lk, [&](ct::context& ctx) { return lk.lock(ctx); }, false);
  // 2us overhead + local rmw (0.1 + 1.0 + 0.1).
  EXPECT_NEAR(d.us(), 3.2, 0.01);
}

TEST(SpinLock, CostExceedsTas) {
  tas_lock t(0, cost());
  spin_lock s(0, cost());
  const auto dt = time_op(
      t, [&](ct::context& ctx) { return t.lock(ctx); }, false);
  const auto ds = time_op(
      s, [&](ct::context& ctx) { return s.lock(ctx); }, false);
  EXPECT_GT(ds.ns, dt.ns);
}

TEST(SpinUnlock, CheaperThanBlockingUnlock) {
  spin_lock s(0, cost());
  blocking_lock b(0, cost());
  const auto ds = time_op(
      s, [&](ct::context& ctx) { return s.unlock(ctx); }, true);
  const auto db = time_op(
      b, [&](ct::context& ctx) { return b.unlock(ctx); }, true);
  EXPECT_LT(ds.ns, db.ns);
}

TEST(SpinLock, SpinnerOccupiesItsProcessor) {
  // A spinning waiter prevents a same-processor peer from running.
  ct::runtime rt(mc());
  spin_lock lk(0, cost());
  sim::vtime peer_ran{};
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(2));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(10));  // let p0 take the lock
    co_await lk.lock(ctx);                        // spins ~2ms
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(1));
    peer_ran = ctx.now();
  });
  rt.run_all();
  // The peer on processor 1 only runs after the spinner acquires+releases.
  EXPECT_GT(peer_ran.ms(), 1.9);
}

TEST(BlockingLock, WaiterReleasesItsProcessor) {
  ct::runtime rt(mc());
  blocking_lock lk(0, cost());
  sim::vtime peer_ran{};
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(2));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(10));
    co_await lk.lock(ctx);  // blocks: processor 1 is free meanwhile
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(1));
    peer_ran = ctx.now();
  });
  rt.run_all();
  EXPECT_LT(peer_ran.ms(), 1.0);  // ran while the waiter was blocked
}

TEST(BlockingLock, CountsBlocksNotSpins) {
  ct::runtime rt(mc());
  blocking_lock lk(0, cost());
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(1));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(50));
    co_await lk.lock(ctx);
    co_await lk.unlock(ctx);
  });
  rt.run_all();
  EXPECT_GE(lk.stats().blocks(), 1u);
  EXPECT_EQ(lk.stats().spin_iterations(), 0u);
}

TEST(BackoffLock, FewerWordAccessesThanPureSpin) {
  const auto spins_for = [](lock_kind k) {
    ct::runtime rt(mc());
    auto lk = make_lock(k, 0, cost());
    for (unsigned p = 0; p < 3; ++p) {
      rt.fork(p, [&](ct::context& ctx) -> ct::task<void> {
        for (int i = 0; i < 10; ++i) {
          co_await lk->lock(ctx);
          co_await ctx.compute(sim::microseconds(200));
          co_await lk->unlock(ctx);
        }
      });
    }
    rt.run_all();
    return lk->stats().spin_iterations();
  };
  EXPECT_LT(spins_for(lock_kind::backoff), spins_for(lock_kind::spin));
}

TEST(CombinedLock, SpinsUpToLimitThenBlocks) {
  ct::runtime rt(mc());
  combined_lock lk(0, cost(), /*spin_limit=*/5);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(5));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(50));
    co_await lk.lock(ctx);  // CS far exceeds the spin budget
    co_await lk.unlock(ctx);
  });
  rt.run_all();
  EXPECT_GE(lk.stats().spin_iterations(), 5u);
  EXPECT_GE(lk.stats().blocks(), 1u);
  EXPECT_GE(lk.stats().handoffs(), 1u);
}

TEST(CombinedLock, ShortCsResolvesBySpinningOnly) {
  ct::runtime rt(mc());
  combined_lock lk(0, cost(), /*spin_limit=*/64);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::microseconds(5));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(3));
    co_await lk.lock(ctx);
    co_await lk.unlock(ctx);
  });
  rt.run_all();
  EXPECT_EQ(lk.stats().blocks(), 0u);
}

TEST(AdvisoryLock, WaitersFollowSleepAdvice) {
  ct::runtime rt(mc());
  advisory_lock lk(0, cost());
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await lk.set_advice(ctx, lock_advice::sleep);  // long phase coming
    co_await ctx.compute(sim::milliseconds(3));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(100));
    co_await lk.lock(ctx);
    co_await lk.unlock(ctx);
  });
  rt.run_all();
  EXPECT_GE(lk.stats().blocks(), 1u);
}

TEST(AdvisoryLock, WaitersFollowSpinAdvice) {
  ct::runtime rt(mc());
  advisory_lock lk(0, cost());
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);  // default advice: spin
    co_await ctx.compute(sim::microseconds(300));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(50));
    co_await lk.lock(ctx);
    co_await lk.unlock(ctx);
  });
  rt.run_all();
  EXPECT_EQ(lk.stats().blocks(), 0u);
  EXPECT_GT(lk.stats().spin_iterations(), 0u);
}

TEST(TicketLock, GrantsInFifoOrder) {
  ct::runtime rt(mc(8));
  ticket_lock lk(0, cost());
  std::vector<unsigned> order;
  for (unsigned p = 0; p < 6; ++p) {
    rt.fork(p, [&, p](ct::context& ctx) -> ct::task<void> {
      // Stagger arrivals so request order is well-defined.
      co_await ctx.compute(sim::microseconds(30 * (p + 1)));
      co_await lk.lock(ctx);
      order.push_back(p);
      co_await ctx.compute(sim::microseconds(400));
      co_await lk.unlock(ctx);
    });
  }
  rt.run_all();
  EXPECT_EQ(order, (std::vector<unsigned>{0, 1, 2, 3, 4, 5}));
}

TEST(McsLock, WaitersSpinOnLocalFlag) {
  // Contended MCS waiting must generate (almost) no remote reads: the spin
  // happens on a flag homed at the waiter's own node.
  ct::runtime rt(mc());
  mcs_lock lk(0, cost());
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(2));
    co_await lk.unlock(ctx);
  });
  const auto before_fork = rt.mach().counts();
  (void)before_fork;
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(50));
    const auto before = rt.mach().counts();
    co_await lk.lock(ctx);
    const auto waited = rt.mach().counts() - before;
    // The ~2ms wait spins locally: local reads dominate remote ones.
    EXPECT_GT(waited.local_reads, 20u);
    EXPECT_LT(waited.remote_reads, 5u);
    co_await lk.unlock(ctx);
  });
  rt.run_all();
  EXPECT_GE(lk.stats().handoffs(), 1u);
}

TEST(McsLock, SpinLockHammersRemoteModuleByContrast) {
  ct::runtime rt(mc());
  spin_lock lk(2, cost());  // word on node 2: remote to both threads
  std::uint64_t remote_reads = 0;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(2));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(50));
    const auto before = rt.mach().counts();
    co_await lk.lock(ctx);
    remote_reads = (rt.mach().counts() - before).remote_reads;
    co_await lk.unlock(ctx);
  });
  rt.run_all();
  EXPECT_GT(remote_reads, 20u);
}

TEST(LockStats, WaitTimeRecordedForContendedAcquisition) {
  ct::runtime rt(mc());
  spin_lock lk(0, cost());
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(1));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(20));
    co_await lk.lock(ctx);
    co_await lk.unlock(ctx);
  });
  rt.run_all();
  EXPECT_EQ(lk.stats().contended(), 1u);
  EXPECT_GT(lk.stats().wait_time_us().max(), 900.0);
  EXPECT_EQ(lk.stats().peak_waiting(), 1);
}

TEST(LockStats, PatternTraceRecordsWaitingChanges) {
  ct::runtime rt(mc());
  spin_lock lk(0, cost());
  sim::trace pattern("qlock");
  lk.stats().attach_pattern_trace(&pattern);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::microseconds(500));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(20));
    co_await lk.lock(ctx);
    co_await lk.unlock(ctx);
  });
  rt.run_all();
  ASSERT_FALSE(pattern.empty());
  EXPECT_EQ(pattern.max_value(), 1);
}

TEST(Factory, RoundTripsKindNames) {
  for (auto k : {lock_kind::atomior, lock_kind::spin, lock_kind::backoff,
                 lock_kind::blocking, lock_kind::combined, lock_kind::advisory,
                 lock_kind::ticket, lock_kind::mcs, lock_kind::reconfigurable,
                 lock_kind::adaptive}) {
    EXPECT_EQ(parse_lock_kind(to_string(k)), k);
  }
  EXPECT_THROW((void)parse_lock_kind("nonsense"), std::invalid_argument);
}

TEST(Factory, ProducesRequestedKinds) {
  const auto lk = make_lock(lock_kind::mcs, 1, cost());
  EXPECT_EQ(lk->kind(), "mcs");
  EXPECT_EQ(lk->home(), 1u);
}

}  // namespace
}  // namespace adx::locks
