#include "locks/rw_lock.hpp"

#include <gtest/gtest.h>

#include "ct/context.hpp"

namespace adx::locks {
namespace {

sim::machine_config mc(unsigned nodes = 8) { return sim::machine_config::test_machine(nodes); }
lock_cost_model cost() { return lock_cost_model::fast_test(); }

TEST(RwLock, DeclaresAttributes) {
  reconfigurable_rw_lock lk(0, cost(), 50, 10);
  EXPECT_EQ(lk.read_bias(), 50);
  EXPECT_EQ(lk.attributes().value("spin-time"), 10);
}

TEST(RwLock, BiasClampedToRange) {
  reconfigurable_rw_lock lk(0, cost(), 250);
  EXPECT_EQ(lk.read_bias(), 100);
  EXPECT_TRUE(lk.apply_read_bias(-5));
  EXPECT_EQ(lk.read_bias(), 0);
}

TEST(RwLock, ApplyBiasIsPackedPsi) {
  reconfigurable_rw_lock lk(0, cost());
  EXPECT_TRUE(lk.apply_read_bias(75));
  EXPECT_EQ(lk.costs().reconfigurations, (core::op_cost{1, 1}));
  EXPECT_TRUE(lk.apply_read_bias(75));  // no-op
  EXPECT_EQ(lk.costs().reconfiguration_ops, 1u);
}

TEST(RwLock, ReadersShareTheLock) {
  ct::runtime rt(mc());
  reconfigurable_rw_lock lk(0, cost());
  std::int64_t peak_readers = 0;
  for (unsigned p = 0; p < 4; ++p) {
    rt.fork(p, [&](ct::context& ctx) -> ct::task<void> {
      co_await lk.lock_shared(ctx);
      peak_readers = std::max(peak_readers, lk.readers_raw());
      co_await ctx.compute(sim::microseconds(500));
      co_await lk.unlock_shared(ctx);
    });
  }
  rt.run_all();
  EXPECT_GT(peak_readers, 1);  // genuine concurrency
  EXPECT_EQ(lk.read_acquisitions(), 4u);
}

TEST(RwLock, WriterExcludesEveryone) {
  ct::runtime rt(mc());
  reconfigurable_rw_lock lk(0, cost());
  bool violated = false;
  ct::svar<std::int64_t> value(0, 0);
  for (unsigned p = 0; p < 3; ++p) {
    rt.fork(p, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 20; ++i) {
        co_await lk.lock_exclusive(ctx);
        if (lk.readers_raw() != 0) violated = true;
        const auto v = co_await ctx.read(value);
        co_await ctx.compute(sim::microseconds(30));
        co_await ctx.write(value, v + 1);
        co_await lk.unlock_exclusive(ctx);
      }
    });
  }
  for (unsigned p = 3; p < 6; ++p) {
    rt.fork(p, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 20; ++i) {
        co_await lk.lock_shared(ctx);
        if (lk.writer_raw()) violated = true;
        co_await ctx.compute(sim::microseconds(15));
        co_await lk.unlock_shared(ctx);
      }
    });
  }
  const auto r = rt.run_all();
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(violated);
  EXPECT_EQ(value.raw(), 60);
}

TEST(RwLock, WriterPreferenceBlocksNewReaders) {
  // bias 0: once a writer waits, arriving readers must queue behind it.
  ct::runtime rt(mc());
  reconfigurable_rw_lock lk(0, cost(), /*bias=*/0, /*spin=*/0);
  std::vector<int> order;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock_shared(ctx);  // long-running initial reader
    co_await ctx.compute(sim::milliseconds(2));
    co_await lk.unlock_shared(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(100));
    co_await lk.lock_exclusive(ctx);  // queues behind the reader
    order.push_back(1);
    co_await lk.unlock_exclusive(ctx);
  });
  rt.fork(2, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(500));  // arrives after the writer
    co_await lk.lock_shared(ctx);
    order.push_back(2);
    co_await lk.unlock_shared(ctx);
  });
  rt.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // writer first
}

TEST(RwLock, ReaderPreferenceAdmitsReadersPastWaitingWriter) {
  // bias 100: readers keep flowing while a writer waits (within allowance).
  ct::runtime rt(mc());
  reconfigurable_rw_lock lk(0, cost(), /*bias=*/100, /*spin=*/0);
  std::vector<int> order;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock_shared(ctx);
    co_await ctx.compute(sim::milliseconds(2));
    co_await lk.unlock_shared(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(100));
    co_await lk.lock_exclusive(ctx);
    order.push_back(1);
    co_await lk.unlock_exclusive(ctx);
  });
  rt.fork(2, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(500));
    co_await lk.lock_shared(ctx);  // admitted alongside the running reader
    order.push_back(2);
    co_await ctx.compute(sim::milliseconds(1));
    co_await lk.unlock_shared(ctx);
  });
  rt.run_all();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));  // reader slipped in first
}

TEST(RwLock, BiasAllowanceBoundsWriterStarvation) {
  // Even at bias 100, at most `bias` readers pass between writer grants.
  ct::runtime rt(mc());
  reconfigurable_rw_lock lk(0, cost(), /*bias=*/3, /*spin=*/0);
  bool writer_done = false;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(200));
    co_await lk.lock_exclusive(ctx);
    writer_done = true;
    co_await lk.unlock_exclusive(ctx);
  });
  // A stream of readers that would starve the writer under pure reader pref.
  for (unsigned p = 1; p < 5; ++p) {
    rt.fork(p, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 30; ++i) {
        co_await lk.lock_shared(ctx);
        co_await ctx.compute(sim::microseconds(120));
        co_await lk.unlock_shared(ctx);
        co_await ctx.compute(sim::microseconds(10));
      }
    });
  }
  const auto r = rt.run_all();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(writer_done);
}

TEST(RwLock, WaitersBlockAfterSpinBudget) {
  ct::runtime rt(mc());
  reconfigurable_rw_lock lk(0, cost(), /*bias=*/50, /*spin=*/3);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock_exclusive(ctx);
    co_await ctx.compute(sim::milliseconds(3));
    co_await lk.unlock_exclusive(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(50));
    co_await lk.lock_shared(ctx);
    co_await lk.unlock_shared(ctx);
  });
  rt.run_all();
  EXPECT_GE(lk.stats().blocks(), 1u);
  EXPECT_GE(lk.stats().spin_iterations(), 3u);
}

TEST(RwLock, Deterministic) {
  const auto once = [] {
    ct::runtime rt(mc());
    adaptive_rw_lock lk(0, cost());
    for (unsigned p = 0; p < 6; ++p) {
      rt.fork(p, [&, p](ct::context& ctx) -> ct::task<void> {
        for (int i = 0; i < 15; ++i) {
          if (p < 4) {
            co_await lk.lock_shared(ctx);
            co_await ctx.compute(sim::microseconds(40));
            co_await lk.unlock_shared(ctx);
          } else {
            co_await lk.lock_exclusive(ctx);
            co_await ctx.compute(sim::microseconds(80));
            co_await lk.unlock_exclusive(ctx);
          }
          co_await ctx.sleep_for(sim::microseconds(30 + 7 * p));
        }
      });
    }
    return rt.run_all().end_time;
  };
  EXPECT_EQ(once().ns, once().ns);
}

TEST(AdaptiveRwLock, HasBothSensors) {
  adaptive_rw_lock lk(0, cost());
  EXPECT_EQ(lk.object_monitor().sensor_count(), 2u);
  EXPECT_EQ(lk.object_monitor().sensor_at(0).name(), "read-ratio-pct");
  EXPECT_EQ(lk.object_monitor().sensor_at(1).name(), "waiting-writers");
}

TEST(AdaptiveRwLock, ReadMostlyPhaseRaisesBias) {
  ct::runtime rt(mc());
  rw_adapt_params p;
  p.sample_period = 2;
  adaptive_rw_lock lk(0, cost(), p);
  const auto initial = lk.read_bias();
  for (unsigned proc = 0; proc < 4; ++proc) {
    rt.fork(proc, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 25; ++i) {
        co_await lk.lock_shared(ctx);
        co_await ctx.compute(sim::microseconds(40));
        co_await lk.unlock_shared(ctx);
        co_await ctx.sleep_for(sim::microseconds(60));
      }
    });
  }
  rt.run_all();
  EXPECT_GT(lk.read_bias(), initial);
  EXPECT_GT(lk.policy()->decisions(), 0u);
}

TEST(AdaptiveRwLock, WriteHeavyPhaseLowersBias) {
  ct::runtime rt(mc());
  rw_adapt_params p;
  p.sample_period = 2;
  adaptive_rw_lock lk(0, cost(), p);
  const auto initial = lk.read_bias();
  for (unsigned proc = 0; proc < 4; ++proc) {
    rt.fork(proc, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 25; ++i) {
        co_await lk.lock_exclusive(ctx);
        co_await ctx.compute(sim::microseconds(40));
        co_await lk.unlock_exclusive(ctx);
        co_await ctx.sleep_for(sim::microseconds(60));
      }
    });
  }
  rt.run_all();
  EXPECT_LT(lk.read_bias(), initial);
}

TEST(AdaptiveRwLock, PolicyIgnoresForeignSensor) {
  reconfigurable_rw_lock lk(0, cost(), 50);
  rw_adapt_policy pol(lk, {});
  pol.observe({"bogus", 99});
  EXPECT_EQ(lk.read_bias(), 50);
  EXPECT_EQ(pol.decisions(), 0u);
}

TEST(AdaptiveRwLock, PinnedBiasResistsPolicy) {
  reconfigurable_rw_lock lk(0, cost(), 50);
  lk.attributes().at("read-bias").set_mutable(false);
  EXPECT_FALSE(lk.apply_read_bias(100));
  EXPECT_EQ(lk.read_bias(), 50);
}

}  // namespace
}  // namespace adx::locks
