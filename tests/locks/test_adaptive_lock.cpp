#include "locks/adaptive_lock.hpp"

#include <gtest/gtest.h>

#include "ct/context.hpp"

namespace adx::locks {
namespace {

sim::machine_config mc(unsigned nodes = 4) { return sim::machine_config::test_machine(nodes); }
lock_cost_model cost() { return lock_cost_model::fast_test(); }

TEST(AdaptiveLock, HasWaitingThreadsSensor) {
  adaptive_lock lk(0, cost());
  ASSERT_EQ(lk.object_monitor().sensor_count(), 1u);
  EXPECT_EQ(lk.object_monitor().sensor_at(0).name(), "no-of-waiting-threads");
  EXPECT_EQ(lk.object_monitor().sensor_at(0).period(), 2u);
  EXPECT_NE(lk.policy(), nullptr);
}

TEST(AdaptiveLock, NoContentionConfiguresPureSpin) {
  // "The lock adaptation policy identifies such no-contention locks and
  //  configures them to low-latency spin-locks."
  ct::runtime rt(mc());
  simple_adapt_params p;
  p.spin_cap = 128;
  adaptive_lock lk(0, cost(), p, waiting_policy::mixed(10));
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await lk.lock(ctx);
      co_await ctx.compute(sim::microseconds(5));
      co_await lk.unlock(ctx);
    }
  });
  rt.run_all();
  EXPECT_TRUE(lk.current_policy().is_pure_spin());
  EXPECT_EQ(lk.current_policy().spin_time, 128);
}

TEST(AdaptiveLock, ModerateWaitingGrowsSpinCount) {
  ct::runtime rt(mc());
  simple_adapt_params p;
  p.waiting_threshold = 4;  // 2 waiters stays below threshold
  p.n = 10;
  p.spin_cap = 1000;
  adaptive_lock lk(0, cost(), p, waiting_policy::mixed(10));
  for (unsigned proc = 0; proc < 3; ++proc) {
    rt.fork(proc, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 20; ++i) {
        co_await lk.lock(ctx);
        co_await ctx.compute(sim::microseconds(60));
        co_await lk.unlock(ctx);
      }
    });
  }
  rt.run_all();
  // Spins grew beyond the initial 10 (policy saw 1-2 waiters repeatedly).
  EXPECT_GT(lk.current_policy().spin_time, 10);
  EXPECT_GT(lk.policy()->decisions(), 0u);
}

TEST(AdaptiveLock, HeavyWaitingDrivesToPureBlocking) {
  ct::runtime rt(mc(8));
  simple_adapt_params p;
  p.waiting_threshold = 1;  // anything above one waiter shrinks spins
  p.n = 10;
  adaptive_lock lk(0, cost(), p, waiting_policy::mixed(10));
  for (unsigned proc = 0; proc < 6; ++proc) {
    rt.fork(proc, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 12; ++i) {
        co_await lk.lock(ctx);
        co_await ctx.compute(sim::microseconds(300));
        co_await lk.unlock(ctx);
      }
    });
  }
  rt.run_all();
  // With 5 waiters > threshold=1 the policy repeatedly subtracts 2n and hits
  // pure blocking (it may bounce back when waiting drains at the end; the
  // blocks counter proves the blocking phase happened).
  EXPECT_GT(lk.stats().blocks(), 0u);
  EXPECT_GT(lk.policy()->decisions(), 1u);
}

TEST(AdaptiveLock, SamplePeriodHonoured) {
  ct::runtime rt(mc());
  simple_adapt_params p;
  p.sample_period = 4;
  adaptive_lock lk(0, cost(), p);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    for (int i = 0; i < 16; ++i) {
      co_await lk.lock(ctx);
      co_await lk.unlock(ctx);
    }
  });
  rt.run_all();
  EXPECT_EQ(lk.object_monitor().sensor_at(0).samples_taken(), 4u);
  EXPECT_EQ(lk.costs().monitor_samples, 4u);
}

TEST(AdaptiveLock, SamplePeriodOneSamplesEveryUnlock) {
  ct::runtime rt(mc());
  simple_adapt_params p;
  p.sample_period = 1;
  adaptive_lock lk(0, cost(), p);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    for (int i = 0; i < 16; ++i) {
      co_await lk.lock(ctx);
      co_await lk.unlock(ctx);
    }
  });
  rt.run_all();
  EXPECT_EQ(lk.object_monitor().sensor_at(0).samples_taken(), 16u);
}

TEST(AdaptiveLock, SamplePeriodLongerThanRunNeverSamples) {
  // A period far beyond the trigger count must neither divide by zero nor
  // deliver a single observation — the lock just runs unmonitored.
  ct::runtime rt(mc());
  simple_adapt_params p;
  p.sample_period = 1000;
  adaptive_lock lk(0, cost(), p);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    for (int i = 0; i < 16; ++i) {
      co_await lk.lock(ctx);
      co_await lk.unlock(ctx);
    }
  });
  rt.run_all();
  EXPECT_EQ(lk.object_monitor().sensor_at(0).samples_taken(), 0u);
  EXPECT_EQ(lk.costs().reconfiguration_ops, 0u);
  EXPECT_EQ(lk.policy()->decisions(), 0u);
}

TEST(AdaptiveLock, SamplePeriodZeroIsNormalizedToEveryUnlock) {
  ct::runtime rt(mc());
  simple_adapt_params p;
  p.sample_period = 0;  // core::sensor guards 0 -> 1
  adaptive_lock lk(0, cost(), p);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    for (int i = 0; i < 8; ++i) {
      co_await lk.lock(ctx);
      co_await lk.unlock(ctx);
    }
  });
  rt.run_all();
  EXPECT_EQ(lk.object_monitor().sensor_at(0).period(), 1u);
  EXPECT_EQ(lk.object_monitor().sensor_at(0).samples_taken(), 8u);
}

TEST(AdaptiveLock, MonitoringChargesTime) {
  // Identical workloads; higher sampling rate must cost more virtual time
  // on an uncontended lock (monitoring overhead, §3).
  const auto run_with_period = [](std::uint32_t period) {
    ct::runtime rt(mc());
    simple_adapt_params p;
    p.sample_period = period;
    adaptive_lock lk(0, cost(), p);
    rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 50; ++i) {
        co_await lk.lock(ctx);
        co_await lk.unlock(ctx);
      }
    });
    return rt.run_all().end_time;
  };
  EXPECT_GT(run_with_period(1).ns, run_with_period(8).ns);
}

TEST(AdaptiveLock, ReconfigurationChargesAccesses) {
  ct::runtime rt(mc());
  simple_adapt_params p;
  p.sample_period = 2;
  adaptive_lock lk(0, cost(), p, waiting_policy::mixed(10));
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await lk.unlock(ctx);
    co_await lk.lock(ctx);
    const auto before = rt.mach().counts();
    co_await lk.unlock(ctx);  // 2nd unlock: sample + reconfigure to pure spin
    const auto delta = rt.mach().counts() - before;
    EXPECT_GE(delta.reads(), 2u);   // queue check + sensor read + Ψ read
    EXPECT_GE(delta.writes(), 2u);  // word release + Ψ write
  });
  rt.run_all();
  EXPECT_EQ(lk.costs().reconfiguration_ops, 1u);
}

TEST(AdaptiveLock, StableStateStopsReconfiguring) {
  ct::runtime rt(mc());
  adaptive_lock lk(0, cost());
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    for (int i = 0; i < 40; ++i) {
      co_await lk.lock(ctx);
      co_await lk.unlock(ctx);
    }
  });
  rt.run_all();
  // First sample flips to pure spin; after that the policy sees the same
  // no-contention state and issues no further Ψ.
  EXPECT_EQ(lk.costs().reconfiguration_ops, 1u);
  EXPECT_EQ(lk.policy()->decisions(), 1u);
}

TEST(AdaptiveLock, KindString) {
  adaptive_lock lk(0, cost());
  EXPECT_EQ(lk.kind(), "adaptive");
}

TEST(SimpleAdaptPolicy, FollowsPaperPseudocode) {
  reconfigurable_lock lk(0, cost(), waiting_policy::mixed(30));
  simple_adapt_params p;
  p.waiting_threshold = 4;
  p.n = 10;
  p.spin_cap = 100;
  simple_adapt_policy pol(lk, p);

  // waiting == 0 -> pure spin at cap.
  pol.observe({"no-of-waiting-threads", 0});
  EXPECT_EQ(lk.current_policy(), waiting_policy::pure_spin(100));

  // 0 < waiting <= threshold -> spins += n (capped), mixed.
  pol.observe({"no-of-waiting-threads", 2});
  EXPECT_EQ(lk.current_policy(), waiting_policy::mixed(100));  // capped at 100

  // waiting > threshold -> spins -= 2n.
  pol.observe({"no-of-waiting-threads", 9});
  EXPECT_EQ(lk.current_policy(), waiting_policy::mixed(80));

  // Repeated heavy waiting drives spins <= 0 -> pure blocking.
  for (int i = 0; i < 4; ++i) pol.observe({"no-of-waiting-threads", 9});
  EXPECT_TRUE(lk.current_policy().is_pure_sleep());

  // Recovery: no waiters -> pure spin again.
  pol.observe({"no-of-waiting-threads", 0});
  EXPECT_TRUE(lk.current_policy().is_pure_spin());
}

TEST(SimpleAdaptPolicy, IgnoresForeignSensors) {
  reconfigurable_lock lk(0, cost(), waiting_policy::mixed(30));
  simple_adapt_policy pol(lk, {});
  pol.observe({"some-other-sensor", 99});
  EXPECT_EQ(lk.current_policy(), waiting_policy::mixed(30));
  EXPECT_EQ(pol.decisions(), 0u);
}

}  // namespace
}  // namespace adx::locks
