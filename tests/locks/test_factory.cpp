#include "locks/factory.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "locks/run_config.hpp"

namespace adx::locks {
namespace {

TEST(Factory, LockKindNamesRoundTrip) {
  for (const auto k : all_lock_kinds()) {
    EXPECT_EQ(parse_lock_kind(to_string(k)), k) << to_string(k);
  }
}

TEST(Factory, AllLockKindsAreDistinctAndComplete) {
  std::set<std::string> names;
  for (const auto k : all_lock_kinds()) names.insert(to_string(k));
  EXPECT_EQ(names.size(), all_lock_kinds().size());
  EXPECT_EQ(all_lock_kinds().size(), 10u);
  EXPECT_TRUE(names.contains("spin"));
  EXPECT_TRUE(names.contains("adaptive"));
}

TEST(Factory, ParseErrorListsTheValidKinds) {
  try {
    (void)parse_lock_kind("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    EXPECT_NE(msg.find("valid:"), std::string::npos);
    for (const auto k : all_lock_kinds()) {
      EXPECT_NE(msg.find(to_string(k)), std::string::npos) << to_string(k);
    }
  }
}

TEST(Factory, MakeLockFromRunConfigBuildsEveryKind) {
  const lock_cost_model cost = lock_cost_model::fast_test();
  for (const auto k : all_lock_kinds()) {
    const auto rc = adx::run_config{}.with_lock(k);
    const auto lk = make_lock(rc, 0, cost);
    ASSERT_NE(lk, nullptr) << to_string(k);
  }
  EXPECT_EQ(make_lock(adx::run_config{}.with_lock(lock_kind::spin), 0, cost)->kind(),
            "spin");
  EXPECT_EQ(
      make_lock(adx::run_config{}.with_lock(lock_kind::adaptive), 0, cost)->kind(),
      "adaptive");
}

}  // namespace
}  // namespace adx::locks
