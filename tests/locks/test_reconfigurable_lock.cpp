#include "locks/reconfigurable_lock.hpp"

#include <gtest/gtest.h>

#include "ct/context.hpp"

namespace adx::locks {
namespace {

sim::machine_config mc() { return sim::machine_config::test_machine(4); }
lock_cost_model cost() { return lock_cost_model::fast_test(); }

TEST(WaitingPolicy, PresetsMatchPaperTable) {
  // §5.1: spin-time/delay-time/sleep-time/timeout -> resulting lock.
  EXPECT_TRUE(waiting_policy::pure_spin(8).is_pure_spin());
  EXPECT_EQ(waiting_policy::pure_spin(8), (waiting_policy{8, 0, 0, 0}));
  EXPECT_EQ(waiting_policy::spin_backoff(8, 2), (waiting_policy{8, 2, 0, 0}));
  EXPECT_TRUE(waiting_policy::pure_sleep().is_pure_sleep());
  EXPECT_EQ(waiting_policy::pure_sleep(), (waiting_policy{0, 0, 1, 0}));
  EXPECT_EQ(waiting_policy::conditional(500, 4), (waiting_policy{4, 0, 0, 500}));
  EXPECT_EQ(waiting_policy::mixed(10, 1), (waiting_policy{10, 1, 1, 0}));
}

TEST(ReconfigurableLock, DeclaresTheFourAttributes) {
  reconfigurable_lock lk(0, cost(), waiting_policy::mixed(10));
  EXPECT_EQ(lk.attributes().value("spin-time"), 10);
  EXPECT_EQ(lk.attributes().value("delay-time"), 0);
  EXPECT_EQ(lk.attributes().value("sleep-time"), 1);
  EXPECT_EQ(lk.attributes().value("timeout"), 0);
  EXPECT_EQ(lk.method_impl(), "fcfs");
  EXPECT_EQ(lk.config_generation(), 0u);
}

TEST(ReconfigurableLock, ApplyWaitingPolicyIsPackedPsi) {
  reconfigurable_lock lk(0, cost());
  EXPECT_TRUE(lk.apply_waiting_policy(waiting_policy::pure_spin(32)));
  EXPECT_EQ(lk.current_policy(), waiting_policy::pure_spin(32));
  EXPECT_EQ(lk.costs().reconfigurations, (core::op_cost{1, 1}));
  EXPECT_EQ(lk.config_generation(), 1u);
}

TEST(ReconfigurableLock, NoOpPolicyApplicationCostsNothing) {
  reconfigurable_lock lk(0, cost(), waiting_policy::mixed(10));
  EXPECT_TRUE(lk.apply_waiting_policy(waiting_policy::mixed(10)));
  EXPECT_EQ(lk.costs().reconfiguration_ops, 0u);
}

TEST(ReconfigurableLock, OwnedAttributeBlocksPolicyApplication) {
  reconfigurable_lock lk(0, cost());
  ASSERT_TRUE(lk.attributes().at("spin-time").acquire(42));
  EXPECT_FALSE(lk.apply_waiting_policy(waiting_policy::pure_sleep()));
  // All-or-nothing: nothing changed.
  EXPECT_EQ(lk.attributes().value("sleep-time"), 1);
  EXPECT_TRUE(lk.apply_waiting_policy(waiting_policy::pure_sleep(), 42));
}

TEST(ReconfigurableLock, PureSpinConfigNeverBlocks) {
  ct::runtime rt(mc());
  reconfigurable_lock lk(0, cost(), waiting_policy::pure_spin(16));
  for (unsigned p = 0; p < 3; ++p) {
    rt.fork(p, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 15; ++i) {
        co_await lk.lock(ctx);
        co_await ctx.compute(sim::microseconds(20));
        co_await lk.unlock(ctx);
      }
    });
  }
  rt.run_all();
  EXPECT_EQ(lk.stats().blocks(), 0u);
  EXPECT_GT(lk.stats().spin_iterations(), 0u);
}

TEST(ReconfigurableLock, PureSleepConfigNeverSpins) {
  ct::runtime rt(mc());
  reconfigurable_lock lk(0, cost(), waiting_policy::pure_sleep());
  for (unsigned p = 0; p < 3; ++p) {
    rt.fork(p, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 15; ++i) {
        co_await lk.lock(ctx);
        co_await ctx.compute(sim::microseconds(20));
        co_await lk.unlock(ctx);
      }
    });
  }
  rt.run_all();
  EXPECT_EQ(lk.stats().spin_iterations(), 0u);
  EXPECT_GT(lk.stats().blocks(), 0u);
}

TEST(ReconfigurableLock, ConditionalConfigTimesOutAndRetries) {
  ct::runtime rt(mc());
  reconfigurable_lock lk(0, cost(), waiting_policy::conditional(/*timeout_us=*/100,
                                                               /*spin=*/2));
  bool acquired = false;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(2));  // much longer than timeout
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(20));
    co_await lk.lock(ctx);
    acquired = true;
    co_await lk.unlock(ctx);
  });
  rt.run_all();
  EXPECT_TRUE(acquired);
  EXPECT_GE(lk.stats().blocks(), 2u);  // several timed-out waits
}

TEST(ReconfigurableLock, ConfigureWaitingPolicyChargesOneReadOneWrite) {
  ct::runtime rt(mc());
  reconfigurable_lock lk(0, cost());
  sim::access_counts delta;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    const auto before = rt.mach().counts();
    co_await lk.configure_waiting_policy(ctx, waiting_policy::pure_spin(8));
    delta = rt.mach().counts() - before;
  });
  rt.run_all();
  EXPECT_EQ(delta.reads(), 1u);
  EXPECT_EQ(delta.writes(), 1u);
  EXPECT_EQ(lk.current_policy(), waiting_policy::pure_spin(8));
}

TEST(ReconfigurableLock, ConfigureSchedulerChargesFiveWrites) {
  // Table 8: three sub-module writes + flag set + flag reset.
  ct::runtime rt(mc());
  reconfigurable_lock lk(0, cost());
  sim::access_counts delta;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    const auto before = rt.mach().counts();
    co_await lk.configure_scheduler(ctx, std::make_unique<priority_scheduler>());
    delta = rt.mach().counts() - before;
  });
  rt.run_all();
  EXPECT_EQ(delta.writes(), 5u);
  EXPECT_EQ(lk.scheduler().name(), "priority");
  EXPECT_EQ(lk.method_impl(), "priority");
}

TEST(ReconfigurableLock, SchedulerSwapDeferredWhileWaitersRegistered) {
  ct::runtime rt(mc());
  reconfigurable_lock lk(0, cost(), waiting_policy::pure_sleep());
  std::string mid_swap_name;
  bool pending_mid_swap = false;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(2));
    co_await lk.unlock(ctx);
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.compute(sim::microseconds(50));
    co_await lk.lock(ctx);  // registers and blocks
    co_await lk.unlock(ctx);
  });
  rt.fork(2, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.sleep_for(sim::milliseconds(1));  // waiter now registered
    co_await lk.configure_scheduler(ctx, std::make_unique<handoff_scheduler>());
    mid_swap_name = std::string(lk.scheduler().name());
    pending_mid_swap = lk.scheduler_transition_pending();
  });
  rt.run_all();
  // During the transition the old scheduler still served; afterwards the new
  // one was adopted.
  EXPECT_EQ(mid_swap_name, "fcfs");
  EXPECT_TRUE(pending_mid_swap);
  EXPECT_EQ(lk.scheduler().name(), "handoff");
  EXPECT_FALSE(lk.scheduler_transition_pending());
}

TEST(ReconfigurableLock, AcquireAttributeOperation) {
  ct::runtime rt(mc());
  reconfigurable_lock lk(0, cost());
  bool first = false;
  bool second = true;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    first = co_await lk.acquire_attribute(ctx, "spin-time", 5);
    second = co_await lk.acquire_attribute(ctx, "spin-time", 6);
    co_await lk.release_attribute(ctx, "spin-time", 5);
  });
  rt.run_all();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_FALSE(lk.attributes().at("spin-time").owner().has_value());
}

TEST(ReconfigurableLock, MidWaitPolicyChangeTakesEffect) {
  // A waiter sleeping under pure_sleep wakes via handoff even after the
  // policy changes; and a policy change to pure_spin converts new waiters.
  ct::runtime rt(mc());
  reconfigurable_lock lk(0, cost(), waiting_policy::pure_sleep());
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::milliseconds(1));
    lk.apply_waiting_policy(waiting_policy::pure_spin(64));
    co_await ctx.compute(sim::milliseconds(1));
    co_await lk.unlock(ctx);
  });
  std::uint64_t spins_after = 0;
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
    co_await ctx.sleep_for(sim::microseconds(1500));  // after the change
    co_await lk.lock(ctx);
    spins_after = lk.stats().spin_iterations();
    co_await lk.unlock(ctx);
  });
  rt.run_all();
  EXPECT_GT(spins_after, 0u);
  EXPECT_EQ(lk.stats().blocks(), 0u);
}

TEST(ReconfigurableLock, KindString) {
  reconfigurable_lock lk(0, cost());
  EXPECT_EQ(lk.kind(), "reconfigurable");
}

}  // namespace
}  // namespace adx::locks
