#include <gtest/gtest.h>

#include "ct/context.hpp"
#include "ct/runtime.hpp"
#include "objects/adaptive_monitor.hpp"
#include "objects/workloads.hpp"

namespace adx::objects {
namespace {

monitor_config fast_monitor(std::int64_t mode, bool adaptive) {
  monitor_config mc;
  mc.lock = locks::lock_kind::blocking;
  mc.cost = locks::lock_cost_model::fast_test();
  mc.initial_mode = mode;
  mc.adaptive = adaptive;
  return mc;
}

monitor_workload_config workload(monitor_config mc) {
  monitor_workload_config cfg;
  cfg.processors = 4;
  cfg.threads = 12;
  cfg.ops_per_thread = 60;
  cfg.machine = sim::machine_config::test_machine(4);
  cfg.mon = mc;
  return cfg;
}

TEST(AdaptiveMonitor, ClassicModeExecutesEverySectionExactlyOnce) {
  auto cfg = workload(fast_monitor(adaptive_monitor::kClassic, false));
  const auto res = run_monitor_workload(cfg);
  EXPECT_EQ(res.counter, res.total_ops);
  EXPECT_EQ(res.final_mode, adaptive_monitor::kClassic);
  EXPECT_EQ(res.delegated, 0u);
}

TEST(AdaptiveMonitor, DelegatedModeCombinesWithoutLosingSections) {
  auto cfg = workload(fast_monitor(adaptive_monitor::kDelegated, false));
  cfg.section = sim::microseconds(8);
  cfg.outside = sim::microseconds(4);  // heavy contention: combiners form
  const auto res = run_monitor_workload(cfg);
  EXPECT_EQ(res.counter, res.total_ops) << "delegated section lost or duplicated";
  EXPECT_GT(res.delegated, 0u) << "no section was ever delegated";
  EXPECT_GT(res.combines, 0u);
}

TEST(AdaptiveMonitor, AdaptsToDelegationOnShortContendedSections) {
  auto cfg = workload(fast_monitor(adaptive_monitor::kClassic, true));
  cfg.section = sim::microseconds(5);
  cfg.outside = sim::microseconds(5);
  cfg.threads = 16;
  cfg.ops_per_thread = 120;
  const auto res = run_monitor_workload(cfg);
  EXPECT_EQ(res.counter, res.total_ops);
  EXPECT_GT(res.mode_switches, 0u) << "policy never reconfigured the mode";
  EXPECT_EQ(res.final_mode, adaptive_monitor::kDelegated);
  EXPECT_GT(res.delegated, 0u);
}

TEST(AdaptiveMonitor, StaysClassicOnLongSections) {
  auto cfg = workload(fast_monitor(adaptive_monitor::kClassic, true));
  cfg.section = sim::microseconds(200);
  cfg.outside = sim::microseconds(50);
  const auto res = run_monitor_workload(cfg);
  EXPECT_EQ(res.counter, res.total_ops);
  EXPECT_EQ(res.final_mode, adaptive_monitor::kClassic);
  EXPECT_EQ(res.delegated, 0u);
}

TEST(AdaptiveMonitor, ModeSwitchIsARecordedPsiOperation) {
  ct::runtime rt(sim::machine_config::test_machine(4));
  adaptive_monitor mon(fast_monitor(adaptive_monitor::kClassic, false));
  EXPECT_EQ(mon.method_impl(), "classic");
  mon.request_mode(adaptive_monitor::kDelegated);
  EXPECT_EQ(mon.mode(), adaptive_monitor::kDelegated);
  EXPECT_EQ(mon.method_impl(), "delegated");
  EXPECT_EQ(mon.mode_switches(), 1u);
  EXPECT_GT(mon.costs().reconfiguration_ops, 0u);
  const auto gen = mon.config_generation();
  mon.request_mode(adaptive_monitor::kDelegated);  // no-op: already there
  EXPECT_EQ(mon.config_generation(), gen);
}

TEST(AdaptiveMonitor, ConditionVariableSupportsProducerConsumer) {
  ct::runtime rt(sim::machine_config::test_machine(4));
  adaptive_monitor mon(fast_monitor(adaptive_monitor::kClassic, false));
  int available = 0;
  int consumed = 0;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {  // consumer
    for (int i = 0; i < 5; ++i) {
      co_await mon.enter(ctx);
      while (available == 0) co_await mon.wait(ctx);
      --available;
      ++consumed;
      co_await mon.exit(ctx);
    }
  });
  rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {  // producer
    for (int i = 0; i < 5; ++i) {
      co_await ctx.compute(sim::microseconds(20));
      co_await mon.enter(ctx);
      ++available;
      co_await mon.signal(ctx);
      co_await mon.exit(ctx);
    }
  });
  const auto r = rt.run_all();
  EXPECT_EQ(consumed, 5);
  EXPECT_EQ(available, 0);
  EXPECT_GT(r.end_time.ns, 0);
}

TEST(AdaptiveMonitor, WorkloadIsDeterministic) {
  auto cfg = workload(fast_monitor(adaptive_monitor::kClassic, true));
  const auto a = run_monitor_workload(cfg);
  const auto b = run_monitor_workload(cfg);
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
  EXPECT_EQ(a.final_mode, b.final_mode);
  EXPECT_EQ(a.mode_switches, b.mode_switches);
  EXPECT_EQ(a.delegated, b.delegated);
}

}  // namespace
}  // namespace adx::objects
