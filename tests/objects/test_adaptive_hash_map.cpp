#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "ct/context.hpp"
#include "ct/runtime.hpp"
#include "objects/adaptive_hash_map.hpp"
#include "objects/workloads.hpp"

namespace adx::objects {
namespace {

map_config small_map(unsigned stripes = 4, bool adaptive = false) {
  map_config mc;
  mc.min_stripes = stripes;
  mc.max_stripes = stripes;
  mc.initial_stripes = stripes;
  mc.buckets_per_stripe = 2;
  mc.lock = locks::lock_kind::spin;
  mc.cost = locks::lock_cost_model::fast_test();
  mc.nodes = 4;
  mc.adaptive = adaptive;
  return mc;
}

TEST(AdaptiveHashMap, PointOperationsBehaveLikeAMap) {
  ct::runtime rt(sim::machine_config::test_machine(4));
  adaptive_hash_map<std::uint64_t, std::int64_t> map(small_map());
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    EXPECT_TRUE(co_await map.insert(ctx, 7, 70));
    EXPECT_FALSE(co_await map.insert(ctx, 7, 71));  // assign, not insert
    EXPECT_TRUE(co_await map.insert(ctx, 15, 150));
    const auto v = co_await map.find(ctx, 7);
    EXPECT_EQ(v.value_or(-1), 71);
    EXPECT_FALSE((co_await map.find(ctx, 99)).has_value());
    EXPECT_TRUE(co_await map.erase(ctx, 7));
    EXPECT_FALSE(co_await map.erase(ctx, 7));
    EXPECT_FALSE((co_await map.find(ctx, 7)).has_value());
    co_await map.update(ctx, 15, [](std::int64_t& x) { x += 1; });
    co_await map.update(ctx, 20, [](std::int64_t& x) { x += 5; }, 100);
    const auto n = co_await map.size_slow(ctx);
    EXPECT_EQ(n, 2u);
  });
  rt.run_all();
  EXPECT_EQ(map.size_fast(), 2u);
  const auto entries = map.snapshot_raw();
  ASSERT_EQ(entries.size(), 2u);
}

TEST(AdaptiveHashMap, ExplicitStripeReconfigurationPreservesContent) {
  map_config mc = small_map();
  mc.min_stripes = 2;
  mc.max_stripes = 8;
  mc.initial_stripes = 2;
  ct::runtime rt(sim::machine_config::test_machine(4));
  adaptive_hash_map<std::uint64_t, std::int64_t> map(mc);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    for (std::uint64_t k = 0; k < 40; ++k) co_await map.insert(ctx, k, std::int64_t(k));
    const auto gen_before = map.config_generation();
    co_await map.reconfigure_stripes(ctx, 8);
    EXPECT_EQ(map.active_stripes(), 8u);
    EXPECT_GT(map.config_generation(), gen_before);
    EXPECT_EQ(map.attributes().value("active-stripes"), 8);
    for (std::uint64_t k = 0; k < 40; ++k) {
      const auto v = co_await map.find(ctx, k);
      EXPECT_EQ(v.value_or(-1), std::int64_t(k)) << "key " << k;
    }
    co_await map.reconfigure_stripes(ctx, 2);
    EXPECT_EQ(map.active_stripes(), 2u);
    EXPECT_EQ(co_await map.size_slow(ctx), 40u);
  });
  rt.run_all();
  EXPECT_EQ(map.resizes(), 2u);
  EXPECT_EQ(map.psi_violations(), 0u);
}

TEST(AdaptiveHashMap, ReconfigurationChargesPsiCostAndLedger) {
  map_config mc = small_map();
  mc.min_stripes = 2;
  mc.max_stripes = 4;
  mc.initial_stripes = 2;
  ct::runtime rt(sim::machine_config::test_machine(4));
  adaptive_hash_map<std::uint64_t, std::int64_t> map(mc);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    for (std::uint64_t k = 0; k < 10; ++k) co_await map.insert(ctx, k, 1);
    co_await map.reconfigure_stripes(ctx, 4);
  });
  rt.run_all();
  EXPECT_EQ(map.costs().reconfiguration_ops, 1u);
  // One read + one write per moved entry plus the stripe-table write.
  EXPECT_EQ(map.costs().reconfigurations.reads, 10u);
  EXPECT_EQ(map.costs().reconfigurations.writes, 11u);
}

TEST(AdaptiveHashMap, ConcurrentWorkloadMatchesSequentialShadow) {
  map_workload_config cfg;
  cfg.processors = 4;
  cfg.threads = 12;
  cfg.ops_per_thread = 120;
  cfg.key_space = 64;
  cfg.machine = sim::machine_config::test_machine(4);
  cfg.map = small_map(4, false);
  cfg.map.lock = locks::lock_kind::adaptive;
  const auto res = run_map_workload(cfg);
  EXPECT_EQ(res.total_ops, 12u * 120u);
  EXPECT_TRUE(res.shadow_match);
  EXPECT_EQ(res.psi_violations, 0u);
  EXPECT_GT(res.stripe_contended, 0u);
}

TEST(AdaptiveHashMap, AdaptiveWorkloadStaysLinearizableAcrossResizes) {
  map_workload_config cfg;
  cfg.processors = 4;
  cfg.threads = 16;
  cfg.ops_per_thread = 150;
  cfg.key_space = 256;
  cfg.insert_fraction = 0.6;
  cfg.machine = sim::machine_config::test_machine(4);
  cfg.map.min_stripes = 2;
  cfg.map.max_stripes = 32;
  cfg.map.initial_stripes = 2;
  cfg.map.buckets_per_stripe = 2;
  cfg.map.stripe_factor = 4;
  cfg.map.lock = locks::lock_kind::spin;
  cfg.map.cost = locks::lock_cost_model::fast_test();
  cfg.map.adaptive = true;
  const auto res = run_map_workload(cfg);
  EXPECT_GT(res.resizes, 0u) << "workload never exercised the stripe Ψ";
  EXPECT_TRUE(res.shadow_match);
  EXPECT_EQ(res.psi_violations, 0u);
}

TEST(AdaptiveHashMap, GrowsUnderContentionShrinksWhenIdle) {
  // Phase 1: heavy uniform contention on few stripes must grow the count.
  map_workload_config grow;
  grow.processors = 4;
  grow.threads = 16;
  grow.ops_per_thread = 200;
  grow.key_space = 128;
  grow.think = sim::microseconds(1);
  grow.machine = sim::machine_config::test_machine(4);
  grow.map.min_stripes = 2;
  grow.map.max_stripes = 32;
  grow.map.initial_stripes = 2;
  grow.map.buckets_per_stripe = 2;
  grow.map.lock = locks::lock_kind::spin;
  grow.map.cost = locks::lock_cost_model::fast_test();
  grow.map.adaptive = true;
  const auto grown = run_map_workload(grow);
  EXPECT_GT(grown.final_stripes, 2u);

  // Phase 2: a single quiet thread on a near-empty map must shrink back.
  ct::runtime rt(sim::machine_config::test_machine(4));
  map_config mc = grow.map;
  mc.initial_stripes = 32;
  adaptive_hash_map<std::uint64_t, std::int64_t> map(mc);
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    for (std::uint64_t i = 0; i < 300; ++i) {
      co_await map.find(ctx, i % 8);
    }
  });
  rt.run_all();
  EXPECT_LT(map.active_stripes(), 32u);
}

TEST(AdaptiveHashMap, WorkloadIsDeterministic) {
  map_workload_config cfg;
  cfg.processors = 4;
  cfg.threads = 10;
  cfg.ops_per_thread = 80;
  cfg.key_space = 64;
  cfg.machine = sim::machine_config::test_machine(4);
  cfg.map.min_stripes = 2;
  cfg.map.max_stripes = 16;
  cfg.map.initial_stripes = 2;
  cfg.map.lock = locks::lock_kind::adaptive;
  cfg.map.cost = locks::lock_cost_model::fast_test();
  const auto a = run_map_workload(cfg);
  const auto b = run_map_workload(cfg);
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
  EXPECT_EQ(a.final_stripes, b.final_stripes);
  EXPECT_EQ(a.resizes, b.resizes);
  EXPECT_EQ(a.final_size, b.final_size);
  EXPECT_EQ(a.stripe_blocks, b.stripe_blocks);

  map_workload_config other = cfg;
  other.seed = cfg.seed + 1;
  const auto c = run_map_workload(other);
  EXPECT_NE(a.elapsed.ns, c.elapsed.ns) << "seed should perturb the schedule";
}

TEST(AdaptiveHashMap, ValidatesConfiguration) {
  map_config mc = small_map();
  mc.min_stripes = 0;
  EXPECT_THROW((adaptive_hash_map<std::uint64_t, std::int64_t>(mc)),
               std::invalid_argument);
  mc = small_map();
  mc.initial_stripes = 99;
  EXPECT_THROW((adaptive_hash_map<std::uint64_t, std::int64_t>(mc)),
               std::invalid_argument);
  mc = small_map();
  mc.buckets_per_stripe = 0;
  EXPECT_THROW((adaptive_hash_map<std::uint64_t, std::int64_t>(mc)),
               std::invalid_argument);
  mc = small_map();
  mc.stripe_factor = 1;
  EXPECT_THROW((adaptive_hash_map<std::uint64_t, std::int64_t>(mc)),
               std::invalid_argument);
}

TEST(AdaptiveHashMap, IdentityHashPinsKeysToStripes) {
  map_config mc = small_map(4);
  mc.buckets_per_stripe = 1;
  adaptive_hash_map<std::uint64_t, std::int64_t, identity_hash<std::uint64_t>> map(mc);
  EXPECT_EQ(map.stripe_of(0), 0u);
  EXPECT_EQ(map.stripe_of(1), 1u);
  EXPECT_EQ(map.stripe_of(5), 1u);  // 5 % 4 buckets
}

}  // namespace
}  // namespace adx::objects
