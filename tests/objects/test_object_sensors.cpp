// Object-generic sensor wiring: the policy::sensor_host path shared by the
// lock family, the hash map and the monitor object — sampling-period edge
// cases, aggregation folds, and the common unknown-sensor error UX.
#include <gtest/gtest.h>

#include <stdexcept>

#include "ct/runtime.hpp"
#include "objects/adaptive_hash_map.hpp"
#include "objects/adaptive_monitor.hpp"
#include "policy/sensor_host.hpp"

namespace adx::objects {
namespace {

using map_t = adaptive_hash_map<std::uint64_t, std::int64_t>;

map_config plain_map() {
  map_config mc;
  mc.min_stripes = 2;
  mc.max_stripes = 4;
  mc.initial_stripes = 2;
  mc.buckets_per_stripe = 2;
  mc.lock = locks::lock_kind::spin;
  mc.cost = locks::lock_cost_model::fast_test();
  mc.nodes = 2;
  mc.adaptive = false;  // tests wire sensors explicitly
  return mc;
}

policy::sensor_spec spec_of(std::string name, std::uint64_t period,
                            policy::aggregation agg = policy::aggregation::last_value) {
  policy::sensor_spec s;
  s.name = std::move(name);
  s.period = period;
  s.agg = agg;
  return s;
}

TEST(ObjectSensors, PeriodZeroIsNormalizedToEveryTrigger) {
  map_t map(plain_map());
  const policy::sensor_spec specs[] = {spec_of("load-factor", 0)};
  policy::install_sensors(map, map, specs);
  auto& mon = map.object_monitor();
  ASSERT_EQ(mon.sensor_count(), 1u);
  EXPECT_EQ(mon.sensor_at(0).period(), 1u);
  EXPECT_EQ(map.feedback_point(), 1u);  // every trigger samples
  EXPECT_EQ(map.feedback_point(), 1u);
}

TEST(ObjectSensors, PeriodOneSamplesEveryFeedbackPoint) {
  adaptive_monitor mon_obj([] {
    monitor_config mc;
    mc.cost = locks::lock_cost_model::fast_test();
    mc.adaptive = false;
    return mc;
  }());
  const policy::sensor_spec specs[] = {spec_of("monitor-waiters", 1)};
  policy::install_sensors(mon_obj, mon_obj, specs);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(mon_obj.feedback_point(), 1u);
  EXPECT_EQ(mon_obj.object_monitor().total_samples(), 5u);
}

TEST(ObjectSensors, LargePeriodSamplesOnlyOnTheThousandthTrigger) {
  map_t map(plain_map());
  const policy::sensor_spec specs[] = {spec_of("probe-length", 1000)};
  policy::install_sensors(map, map, specs);
  for (int i = 0; i < 999; ++i) {
    EXPECT_EQ(map.feedback_point(), 0u) << "sampled early at trigger " << i;
  }
  EXPECT_EQ(map.feedback_point(), 1u);
  EXPECT_EQ(map.object_monitor().total_samples(), 1u);
}

TEST(ObjectSensors, UnknownNamesShareTheLockFamilyErrorUX) {
  map_t map(plain_map());
  const policy::sensor_spec bad[] = {spec_of("lock-hold-time", 2)};  // a *lock* sensor
  try {
    policy::install_sensors(map, map, bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown sensor: lock-hold-time"), std::string::npos) << msg;
    EXPECT_NE(msg.find("load-factor"), std::string::npos) << msg;
    EXPECT_NE(msg.find("stripe-contention-skew"), std::string::npos) << msg;
    EXPECT_NE(msg.find("probe-length"), std::string::npos) << msg;
  }
  // Validation happens before installation: the monitor is untouched.
  EXPECT_EQ(map.object_monitor().sensor_count(), 0u);
}

TEST(ObjectSensors, MonitorLevelAggregationFoldsForObjectPolicies) {
  // The map's load-factor sensor with a max-in-window fold: the aggregated
  // value must hold the peak even after the raw value falls back.
  map_t map(plain_map());
  const policy::sensor_spec specs[] = {
      spec_of("load-factor", 1, policy::aggregation::max_in_window)};
  policy::install_sensors(map, map, specs);
  ct::runtime rt(sim::machine_config::test_machine(2));
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    for (std::uint64_t k = 0; k < 8; ++k) co_await map.insert(ctx, k, 1);
    for (std::uint64_t k = 0; k < 8; ++k) co_await map.erase(ctx, k);
  });
  rt.run_all();
  // The raw load factor is back to 0 after the erases, but the 8-sample
  // window still holds the first erase-phase reading (7 entries / 4 buckets).
  EXPECT_EQ(map.object_monitor().aggregated_value(0), 175);
}

TEST(ObjectSensors, EveryAdvertisedSensorIsConstructible) {
  map_t map(plain_map());
  for (const auto name : map.sensor_names()) {
    const auto s = map.make_sensor(name, 2);
    EXPECT_EQ(s.name(), name);
  }
  adaptive_monitor mon([] {
    monitor_config mc;
    mc.cost = locks::lock_cost_model::fast_test();
    mc.adaptive = false;
    return mc;
  }());
  for (const auto name : mon.sensor_names()) {
    const auto s = mon.make_sensor(name, 2);
    EXPECT_EQ(s.name(), name);
  }
}

}  // namespace
}  // namespace adx::objects
