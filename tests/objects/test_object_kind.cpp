#include <gtest/gtest.h>

#include <stdexcept>

#include "objects/objects.hpp"

namespace adx::objects {
namespace {

TEST(ObjectKind, RoundTripsEveryKind) {
  for (const auto k : all_object_kinds()) {
    EXPECT_EQ(parse_object_kind(to_string(k)), k);
  }
}

TEST(ObjectKind, DeclarationOrderIsTheSweepAxis) {
  const auto kinds = all_object_kinds();
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], object_kind::hashmap);
  EXPECT_EQ(kinds[1], object_kind::monitor);
}

TEST(ObjectKind, UnknownNameListsValidKinds) {
  try {
    (void)parse_object_kind("btree");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown object kind: btree"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hashmap"), std::string::npos) << msg;
    EXPECT_NE(msg.find("monitor"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace adx::objects
