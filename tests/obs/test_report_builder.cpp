#include <gtest/gtest.h>

#include <sstream>

#include "obs/report_sink.hpp"

namespace adx::obs {
namespace {

TEST(ReportBuilder, PrintsHeadersAndRows) {
  report_builder t({"lock", "time (ms)"});
  t.row({"blocking", "3207"});
  t.row({"adaptive", "2636"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("lock"), std::string::npos);
  EXPECT_NE(s.find("blocking"), std::string::npos);
  EXPECT_NE(s.find("2636"), std::string::npos);
}

TEST(ReportBuilder, PadsToWidestCell) {
  report_builder t({"a"});
  t.row({"longer-cell-content"});
  std::ostringstream os;
  t.print(os);
  // The header row must be padded at least as wide as the widest cell.
  const auto s = os.str();
  const auto header_pos = s.find("| a");
  const auto header_end = s.find('\n', header_pos);
  EXPECT_GE(header_end - header_pos, std::string("| longer-cell-content |").size());
}

TEST(ReportBuilder, ShortRowsTolerated) {
  report_builder t({"x", "y"});
  t.row({"only-one"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(ReportBuilder, NumFormatting) {
  EXPECT_EQ(report_builder::num(3.14159, 2), "3.14");
  EXPECT_EQ(report_builder::num(17.0, 0), "17");
}

TEST(ReportBuilder, PctFormatting) {
  EXPECT_EQ(report_builder::pct(0.178), "17.8%");
  EXPECT_EQ(report_builder::pct(0.065), "6.5%");
}

TEST(ReportBuilder, EmitRoutesThroughReportSinks) {
  report_builder t({"k", "v"});
  t.title("demo");
  t.row({"a", "1"});
  std::ostringstream table_os;
  t.emit(report_format::table, table_os);
  EXPECT_NE(table_os.str().find("demo"), std::string::npos);
  std::ostringstream csv_os;
  t.emit(report_format::csv, csv_os);
  EXPECT_NE(csv_os.str().find("k,v"), std::string::npos);
  std::ostringstream json_os;
  t.emit(report_format::json, json_os);
  EXPECT_NE(json_os.str().find("\"k\""), std::string::npos);
}

}  // namespace
}  // namespace adx::obs
