#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "obs/log_histogram.hpp"
#include "sim/memory.hpp"

namespace adx::obs {
namespace {

TEST(LogHistogram, EmptyIsAllZero) {
  log_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(LogHistogram, SingleSampleIsEveryPercentile) {
  log_histogram h;
  h.add(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(LogHistogram, PercentilesWithinQuantizationError) {
  log_histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
  // Sub-bucket quantization bounds relative error to ~2^(1/8)-1 ≈ 9%.
  EXPECT_NEAR(h.percentile(50), 500.0, 500.0 * 0.10);
  EXPECT_NEAR(h.percentile(90), 900.0, 900.0 * 0.10);
  EXPECT_NEAR(h.percentile(99), 990.0, 990.0 * 0.10);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
}

TEST(LogHistogram, BelowRangeLandsInUnderflowBucket) {
  log_histogram h(/*min_value=*/1.0);
  h.add(0.25);
  EXPECT_EQ(h.bucket(0), 1u);
  // Percentiles are clamped to the observed extremes, not bucket midpoints.
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.25);
}

TEST(LogHistogram, HugeValuesLandInTopBucketAndStayFinite) {
  log_histogram h;
  h.add(1e30);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 1e30);
}

TEST(LogHistogram, ResetClears) {
  log_histogram h;
  h.add(3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(Metrics, CountersAndGaugesCreateOnFirstUse) {
  metrics m;
  m.get_counter("a.b").inc();
  m.get_counter("a.b").inc(4);
  m.get_gauge("g").set(2.5);
  EXPECT_EQ(m.get_counter("a.b").value(), 5u);
  EXPECT_DOUBLE_EQ(m.get_gauge("g").value(), 2.5);
  EXPECT_EQ(m.counters().size(), 1u);
}

TEST(Metrics, JsonSnapshotIsDeterministicAndSorted) {
  metrics m;
  m.get_counter("z.last").set(2);
  m.get_counter("a.first").set(1);
  m.get_gauge("mid").set(0.5);
  const auto json = m.to_json();
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"a.first\":1"), std::string::npos);
  EXPECT_NE(json.find("\"mid\":0.5"), std::string::npos);
  EXPECT_EQ(json, m.to_json());
}

TEST(Metrics, HistogramSnapshotCarriesPercentiles) {
  metrics m;
  log_histogram h;
  for (int i = 0; i < 10; ++i) h.add(8.0);
  m.set_histogram("wait_us", h);
  const auto json = m.to_json();
  EXPECT_NE(json.find("\"wait_us\":{\"count\":10"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":8"), std::string::npos);
}

TEST(Metrics, ExportAccessCountsMirrorsLedger) {
  sim::access_counts c;
  c.local_reads = 3;
  c.remote_reads = 2;
  c.local_writes = 5;
  c.remote_rmws = 1;
  metrics m;
  export_access_counts(c, m, "sim");
  EXPECT_EQ(m.get_counter("sim.local_reads").value(), 3u);
  EXPECT_EQ(m.get_counter("sim.reads").value(), 5u);
  EXPECT_EQ(m.get_counter("sim.writes").value(), 5u);
  EXPECT_EQ(m.get_counter("sim.rmws").value(), 1u);
  EXPECT_EQ(m.get_counter("sim.total").value(), 11u);
}

}  // namespace
}  // namespace adx::obs
