#include "obs/tracer.hpp"

#include <gtest/gtest.h>

namespace adx::obs {
namespace {

TEST(Tracer, DisabledByDefault) {
  tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_TRUE(t.empty());
}

TEST(Tracer, DisabledFastPathNeverAllocates) {
  tracer t;
  for (int i = 0; i < 1000; ++i) {
    t.complete("span", "cat", sim::vtime{100}, sim::vdur{50}, 0, 1);
    t.instant("mark", "cat", sim::vtime{100}, 0, 1);
    t.counter("gauge", "cat", sim::vtime{100}, 0, 7);
  }
  EXPECT_TRUE(t.empty());
  // The event vector must never have been touched: no reserve, no push.
  EXPECT_EQ(t.events().capacity(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RecordsWhenEnabled) {
  tracer t;
  t.enable();
  t.complete("span", "lock", sim::vtime{2000}, sim::vdur{500}, 3, 7);
  t.instant("mark", "ct", sim::vtime{2500}, 3, 7, {"v_i", 4});
  t.counter("depth", "lock", sim::vtime{3000}, 3, 9);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.events()[0].name, "span");
  EXPECT_EQ(t.events()[0].ph, phase::complete);
  EXPECT_EQ(t.events()[0].dur.ns, 500);
  EXPECT_EQ(t.events()[1].a1.value, 4);
  EXPECT_EQ(t.events()[2].a1.value, 9);
}

TEST(Tracer, ExportsSortedByVirtualTime) {
  tracer t;
  t.enable();
  t.instant("late", "c", sim::vtime{3000}, 0, 0);
  t.instant("early", "c", sim::vtime{1000}, 0, 0);
  t.instant("mid", "c", sim::vtime{2000}, 0, 0);
  const auto json = t.chrome_json();
  const auto e = json.find("early");
  const auto m = json.find("mid");
  const auto l = json.find("late");
  ASSERT_NE(e, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(l, std::string::npos);
  EXPECT_LT(e, m);
  EXPECT_LT(m, l);

  const auto csv = t.csv();
  EXPECT_LT(csv.find("early"), csv.find("mid"));
  EXPECT_LT(csv.find("mid"), csv.find("late"));
}

TEST(Tracer, TimestampTiesKeepRecordingOrder) {
  tracer t;
  t.enable();
  t.instant("first", "c", sim::vtime{500}, 0, 0);
  t.instant("second", "c", sim::vtime{500}, 0, 0);
  const auto json = t.chrome_json();
  EXPECT_LT(json.find("first"), json.find("second"));
}

TEST(Tracer, LimitCapsStorageAndCountsDropped) {
  tracer t;
  t.enable();
  t.set_limit(2);
  for (int i = 0; i < 5; ++i) t.instant("e", "c", sim::vtime{i}, 0, 0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 3u);
  EXPECT_NE(t.chrome_json().find("\"droppedEvents\":3"), std::string::npos);
}

TEST(Tracer, ClearResets) {
  tracer t;
  t.enable();
  t.set_limit(1);
  t.instant("a", "c", sim::vtime{1}, 0, 0);
  t.instant("b", "c", sim::vtime{2}, 0, 0);
  EXPECT_EQ(t.dropped(), 1u);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_TRUE(t.enabled()) << "clear drops events, not the enable state";
}

}  // namespace
}  // namespace adx::obs
