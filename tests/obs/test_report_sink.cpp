#include "obs/report_sink.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hpp"

namespace adx::obs {
namespace {

report make_report() {
  report r;
  r.title = "Table X: demo";
  r.preamble = {"(two rows, three columns)"};
  r.columns = {"name", "value", "note"};
  r.add_row({"alpha", "1.50", "plain"});
  r.add_row({"beta", "20.00", "has, comma"});
  r.notes = {"trailing remark"};
  return r;
}

std::string render(const report& r, report_format f) {
  std::ostringstream os;
  report_sink(f, os).emit(r);
  return os.str();
}

TEST(ReportSink, ParseFormat) {
  EXPECT_EQ(parse_report_format("table"), report_format::table);
  EXPECT_EQ(parse_report_format("csv"), report_format::csv);
  EXPECT_EQ(parse_report_format("json"), report_format::json);
  EXPECT_FALSE(parse_report_format("yaml").has_value());
  EXPECT_FALSE(parse_report_format("").has_value());
}

TEST(ReportSink, TableGolden) {
  const std::string expected =
      "Table X: demo\n"
      "(two rows, three columns)\n"
      "\n"
      "+-------+-------+------------+\n"
      "| name  | value | note       |\n"
      "+-------+-------+------------+\n"
      "| alpha | 1.50  | plain      |\n"
      "| beta  | 20.00 | has, comma |\n"
      "+-------+-------+------------+\n"
      "\n"
      "trailing remark\n";
  EXPECT_EQ(render(make_report(), report_format::table), expected);
}

TEST(ReportSink, BareGridMatchesLegacyPrinter) {
  // No title / preamble / notes: exactly the old workload::table output,
  // with no leading or trailing blank lines.
  report r;
  r.columns = {"a", "bb"};
  r.add_row({"x", "y"});
  const std::string expected =
      "+---+----+\n"
      "| a | bb |\n"
      "+---+----+\n"
      "| x | y  |\n"
      "+---+----+\n";
  EXPECT_EQ(render(r, report_format::table), expected);
}

TEST(ReportSink, CsvGolden) {
  const std::string expected =
      "# Table X: demo\n"
      "# (two rows, three columns)\n"
      "name,value,note\n"
      "alpha,1.50,plain\n"
      "beta,20.00,\"has, comma\"\n"
      "# trailing remark\n";
  EXPECT_EQ(render(make_report(), report_format::csv), expected);
}

TEST(ReportSink, JsonNumericCellsUnquoted) {
  const auto json = render(make_report(), report_format::json);
  EXPECT_NE(json.find("\"value\":1.50"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"notes\":[\"trailing remark\"]"), std::string::npos);
}

TEST(ReportSink, JsonEscapesQuotes) {
  report r;
  r.columns = {"c"};
  r.add_row({"say \"hi\""});
  const auto json = render(r, report_format::json);
  EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
}

TEST(ReportSink, ShortRowsPadAndLongValuesWiden) {
  report r;
  r.columns = {"col"};
  r.add_row({});  // missing cell renders as empty
  r.add_row({"wider-than-header"});
  const auto out = render(r, report_format::table);
  EXPECT_NE(out.find("| wider-than-header |"), std::string::npos);
  EXPECT_NE(out.find("|                   |"), std::string::npos);
}

TEST(JsonHelpers, NumberDetection) {
  EXPECT_TRUE(json_is_number("42"));
  EXPECT_TRUE(json_is_number("-1.5"));
  EXPECT_TRUE(json_is_number("20.00"));
  EXPECT_FALSE(json_is_number("17.8%"));
  EXPECT_FALSE(json_is_number("-"));
  EXPECT_FALSE(json_is_number(""));
  EXPECT_FALSE(json_is_number("1.5x"));
  EXPECT_FALSE(json_is_number("nan"));
}

}  // namespace
}  // namespace adx::obs
