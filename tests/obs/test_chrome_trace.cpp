// Golden + structural validation of the Chrome trace-event JSON exporter:
// the exact bytes for a small trace, and the ph/ts/pid/tid shape every
// event must carry for chrome://tracing / Perfetto to load the file.
#include <gtest/gtest.h>

#include "obs/tracer.hpp"

namespace adx::obs {
namespace {

tracer make_small_trace() {
  tracer t;
  t.enable();
  // 1.5 us held span, an annotated reconfiguration instant, a counter.
  t.complete("qlock.held", "lock", sim::vtime{1000}, sim::vdur{1500}, 0, 3);
  t.instant("qlock.reconfigure", "lock", sim::vtime{2500}, 0, 3, {"v_i", 5}, {},
            "d_c", "pure-spin(400)");
  t.counter("qlock.waiting", "lock", sim::vtime{3000}, 0, 2);
  return t;
}

TEST(ChromeTrace, GoldenOutput) {
  const auto t = make_small_trace();
  const std::string expected =
      "{\"traceEvents\":["
      "\n{\"name\":\"qlock.held\",\"cat\":\"lock\",\"ph\":\"X\",\"ts\":1.000,"
      "\"dur\":1.500,\"pid\":0,\"tid\":3},"
      "\n{\"name\":\"qlock.reconfigure\",\"cat\":\"lock\",\"ph\":\"i\","
      "\"ts\":2.500,\"pid\":0,\"tid\":3,\"s\":\"t\","
      "\"args\":{\"v_i\":5,\"d_c\":\"pure-spin(400)\"}},"
      "\n{\"name\":\"qlock.waiting\",\"cat\":\"lock\",\"ph\":\"C\",\"ts\":3.000,"
      "\"pid\":0,\"tid\":0,\"args\":{\"value\":2}}"
      "\n],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(t.chrome_json(), expected);
}

TEST(ChromeTrace, EveryEventCarriesRequiredFields) {
  const auto t = make_small_trace();
  const auto json = t.chrome_json();
  // Three events, each with the mandatory keys.
  std::size_t pos = 0;
  int events = 0;
  while ((pos = json.find("{\"name\":", pos)) != std::string::npos) {
    const auto end = json.find("}", pos);
    const auto obj = json.substr(pos, end - pos + 1);
    EXPECT_NE(obj.find("\"ph\":"), std::string::npos) << obj;
    EXPECT_NE(obj.find("\"ts\":"), std::string::npos) << obj;
    EXPECT_NE(obj.find("\"pid\":"), std::string::npos) << obj;
    EXPECT_NE(obj.find("\"tid\":"), std::string::npos) << obj;
    ++events;
    pos = end;
  }
  EXPECT_EQ(events, 3);
}

TEST(ChromeTrace, EscapesStringsInNamesAndDetails) {
  tracer t;
  t.enable();
  t.instant("we\"ird\\name", "c", sim::vtime{0}, 0, 0, {}, {}, "note",
            "line1\nline2");
  const auto json = t.chrome_json();
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
}

TEST(ChromeTrace, CsvGoldenOutput) {
  const auto t = make_small_trace();
  const std::string expected =
      "ph,ts_us,dur_us,pid,tid,cat,name,args\n"
      "X,1.000,1.500,0,3,lock,qlock.held,\n"
      "i,2.500,,0,3,lock,qlock.reconfigure,v_i=5;d_c=pure-spin(400)\n"
      "C,3.000,,0,0,lock,qlock.waiting,value=2\n";
  EXPECT_EQ(t.csv(), expected);
}

}  // namespace
}  // namespace adx::obs
