// Cross-checks the observability subsystem against the ground truth it
// instruments: on a contended torture workload, lock_stats counters, the
// metrics-registry snapshot, and the structured-event trace must all tell
// the same story — and recording must not perturb virtual time.
#include <gtest/gtest.h>

#include <algorithm>

#include "ct/context.hpp"
#include "locks/factory.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "tsp/parallel.hpp"

namespace adx {
namespace {

struct torture_result {
  sim::vtime elapsed{};
  std::uint64_t requests{0};
  std::uint64_t acquisitions{0};
  std::uint64_t releases{0};
  std::uint64_t contended{0};
  std::uint64_t blocks{0};
  std::uint64_t handoffs{0};
  obs::metrics metrics;
  std::uint64_t rt_blocks{0};
  std::uint64_t rt_unblocks{0};
};

/// A contended increment loop on one lock; optionally traced.
torture_result run_torture(locks::lock_kind kind, obs::tracer* tr) {
  constexpr unsigned procs = 4;
  constexpr unsigned threads = 6;
  constexpr int iters = 25;

  ct::runtime rt(sim::machine_config::test_machine(procs));
  auto lk = locks::make_lock(kind, 0, locks::lock_cost_model::fast_test());
  if (tr) {
    rt.attach_tracer(tr);
    lk->stats().attach_tracer(tr, "lk", 0);
  }
  ct::svar<std::uint64_t> counter(0, 0);
  for (unsigned t = 0; t < threads; ++t) {
    rt.fork(t % procs, [&, t](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < iters; ++i) {
        co_await lk->lock(ctx);
        const auto v = co_await ctx.read(counter);
        co_await ctx.compute(sim::microseconds(30 + 7 * (t % 3)));
        co_await ctx.write(counter, v + 1);
        co_await lk->unlock(ctx);
        co_await ctx.sleep_for(sim::microseconds(50));
      }
    });
  }
  const auto res = rt.run_all(100'000'000ULL);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(counter.raw(), std::uint64_t{threads} * iters);

  torture_result out;
  out.elapsed = res.end_time;
  const auto& st = lk->stats();
  out.requests = st.requests();
  out.acquisitions = st.acquisitions();
  out.releases = st.releases();
  out.contended = st.contended();
  out.blocks = st.blocks();
  out.handoffs = st.handoffs();
  st.export_metrics(out.metrics, "lock.lk");
  rt.export_metrics(out.metrics);
  out.rt_blocks = rt.blocks();
  out.rt_unblocks = rt.unblocks();
  return out;
}

TEST(ObsConsistency, LockCountersBalanceOnTortureWorkload) {
  for (const auto kind : {locks::lock_kind::blocking, locks::lock_kind::adaptive}) {
    const auto r = run_torture(kind, nullptr);
    EXPECT_EQ(r.requests, 6u * 25u) << locks::to_string(kind);
    EXPECT_EQ(r.requests, r.acquisitions) << locks::to_string(kind);
    EXPECT_EQ(r.acquisitions, r.releases) << locks::to_string(kind);
    EXPECT_GT(r.contended, 0u) << "workload not contended enough to test anything";
  }
}

TEST(ObsConsistency, ExportedMetricsMirrorLockStats) {
  auto r = run_torture(locks::lock_kind::adaptive, nullptr);
  EXPECT_EQ(r.metrics.get_counter("lock.lk.requests").value(), r.requests);
  EXPECT_EQ(r.metrics.get_counter("lock.lk.acquisitions").value(), r.acquisitions);
  EXPECT_EQ(r.metrics.get_counter("lock.lk.releases").value(), r.releases);
  EXPECT_EQ(r.metrics.get_counter("lock.lk.contended").value(), r.contended);
  EXPECT_EQ(r.metrics.get_counter("lock.lk.blocks").value(), r.blocks);
  EXPECT_EQ(r.metrics.get_histogram("lock.lk.wait_us").count(), r.acquisitions);
  EXPECT_EQ(r.metrics.get_histogram("lock.lk.held_us").count(), r.releases);
  // Runtime scheduling counters land in the same registry.
  EXPECT_EQ(r.metrics.get_counter("ct.blocks").value(), r.rt_blocks);
  EXPECT_EQ(r.metrics.get_counter("ct.unblocks").value(), r.rt_unblocks);
  EXPECT_EQ(r.metrics.get_counter("ct.forks").value(), 6u);
  EXPECT_EQ(r.metrics.get_counter("ct.exits").value(), 6u);
}

TEST(ObsConsistency, TraceEventsAgreeWithCounters) {
  obs::tracer tr;
  tr.enable();
  const auto r = run_torture(locks::lock_kind::blocking, &tr);

  const auto count_named = [&](const char* name) {
    return static_cast<std::uint64_t>(
        std::count_if(tr.events().begin(), tr.events().end(),
                      [&](const obs::event& e) { return e.name == name; }));
  };
  EXPECT_EQ(count_named("lk.held"), r.releases);
  EXPECT_EQ(count_named("lk.acquire"), r.acquisitions);
  EXPECT_EQ(count_named("lk.contend"), r.contended);
  EXPECT_EQ(count_named("lk.block"), r.blocks);
  EXPECT_EQ(count_named("lk.handoff"), r.handoffs);
  EXPECT_EQ(count_named("unblock"), r.rt_unblocks);
  EXPECT_EQ(count_named("block"), r.rt_blocks);

  // Every span must lie within the run and have a non-negative duration.
  for (const auto& e : tr.events()) {
    EXPECT_GE(e.dur.ns, 0) << e.name;
    EXPECT_LE(e.ts.ns + static_cast<std::uint64_t>(e.dur.ns), r.elapsed.ns)
        << e.name;
  }
}

TEST(ObsConsistency, TracingDoesNotPerturbVirtualTime) {
  for (const auto kind : {locks::lock_kind::blocking, locks::lock_kind::adaptive}) {
    const auto plain = run_torture(kind, nullptr);
    obs::tracer tr;
    tr.enable();
    const auto traced = run_torture(kind, &tr);
    EXPECT_EQ(plain.elapsed.ns, traced.elapsed.ns) << locks::to_string(kind);
    EXPECT_GT(tr.size(), 0u);
  }
}

TEST(ObsConsistency, TspTracerSeesAllFourLockFamilies) {
  const auto inst = tsp::instance::random_asymmetric(12, 9001);
  obs::tracer tr;
  tr.enable();
  tsp::parallel_config cfg;
  cfg.processors = 4;
  cfg.run.lock = locks::lock_kind::adaptive;
  cfg.tracer = &tr;
  const auto res = tsp::solve_parallel(inst, cfg);
  EXPECT_GT(res.expansions, 0u);

  const auto has_prefix = [&](const char* p) {
    return std::any_of(tr.events().begin(), tr.events().end(),
                       [&](const obs::event& e) { return e.name.rfind(p, 0) == 0; });
  };
  EXPECT_TRUE(has_prefix("qlock"));
  EXPECT_TRUE(has_prefix("glob-act-lock"));
  EXPECT_TRUE(has_prefix("globlock"));
  EXPECT_TRUE(has_prefix("glob-low-lock"));
  EXPECT_TRUE(has_prefix("run"));
}

}  // namespace
}  // namespace adx
