// Cross-module integration: combinations the unit suites don't reach —
// whole applications on the staged butterfly interconnect, and the
// loosely-coupled external-agent adaptation driving a live lock.
#include <gtest/gtest.h>

#include "apps/kvstore.hpp"
#include "ct/context.hpp"
#include "locks/adaptive_lock.hpp"
#include "tsp/parallel.hpp"

namespace adx {
namespace {

TEST(CrossModule, TspOnStagedInterconnectStillOptimalAndDeterministic) {
  const auto inst = tsp::instance::random_asymmetric(16, 31);
  const auto seq = tsp::solve_sequential(inst);

  tsp::parallel_config cfg;
  cfg.impl = tsp::variant::centralized;
  cfg.processors = 6;
  cfg.cost = locks::lock_cost_model::fast_test();
  cfg.run.machine = sim::machine_config::test_machine(8);
  cfg.run.machine.wire_model = sim::interconnect_model::butterfly;
  cfg.per_op_us = 0.2;

  const auto a = tsp::solve_parallel(inst, cfg);
  const auto b = tsp::solve_parallel(inst, cfg);
  EXPECT_EQ(a.best.cost, seq.best.cost);
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
}

TEST(CrossModule, StagedInterconnectChangesTimingNotResults) {
  const auto inst = tsp::instance::random_asymmetric(14, 8);
  tsp::parallel_config flat;
  flat.impl = tsp::variant::distributed;
  flat.processors = 5;
  flat.cost = locks::lock_cost_model::fast_test();
  flat.run.machine = sim::machine_config::test_machine(8);
  flat.per_op_us = 0.2;
  auto staged = flat;
  staged.run.machine.wire_model = sim::interconnect_model::butterfly;

  const auto rf = tsp::solve_parallel(inst, flat);
  const auto rs = tsp::solve_parallel(inst, staged);
  EXPECT_EQ(rf.best.cost, rs.best.cost);
  EXPECT_NE(rf.elapsed.ns, rs.elapsed.ns);  // latency model differs
}

TEST(CrossModule, KvStoreOnStagedInterconnect) {
  apps::kv_config c;
  c.processors = 4;
  c.threads = 8;
  c.ops_per_thread = 20;
  c.buckets = 4;
  c.cost = locks::lock_cost_model::fast_test();
  c.machine = sim::machine_config::test_machine(4);
  c.machine.wire_model = sim::interconnect_model::butterfly;
  const auto r = run_kv_workload(c);
  EXPECT_EQ(r.total_ops, 8u * 20u);
}

TEST(CrossModule, ExternalAgentAdaptsLooselyCoupledLock) {
  // The §5.1 monitor-thread arrangement end-to-end: the lock's monitor
  // queues observations; a dedicated agent thread pumps them into the policy
  // with lag; the lock still adapts (eventually).
  ct::runtime rt(sim::machine_config::test_machine(5));
  locks::simple_adapt_params p;
  p.sample_period = 1;
  locks::adaptive_lock lk(0, locks::lock_cost_model::fast_test(), p,
                          locks::waiting_policy::mixed(10));
  lk.object_monitor().set_mode(core::coupling::loosely_coupled);

  bool workers_done = false;
  int done_count = 0;
  for (unsigned w = 0; w < 3; ++w) {
    rt.fork(w, [&](ct::context& ctx) -> ct::task<void> {
      for (int i = 0; i < 30; ++i) {
        co_await lk.lock(ctx);
        co_await ctx.compute(sim::microseconds(20));
        co_await lk.unlock(ctx);
        co_await ctx.compute(sim::microseconds(40));
      }
      if (++done_count == 3) workers_done = true;
    });
  }
  std::uint64_t pumped = 0;
  rt.fork(4, [&](ct::context& ctx) -> ct::task<void> {
    while (!workers_done) {
      co_await ctx.sleep_for(sim::microseconds(400));
      pumped += lk.pump(8);
    }
    pumped += lk.pump();
  });
  const auto r = rt.run_all();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(pumped, 0u);
  EXPECT_GT(lk.policy()->decisions(), 0u);
  // Observations were consumed through the queue, not delivered inline.
  EXPECT_EQ(lk.object_monitor().backlog(), 0u);
}

TEST(CrossModule, AttributeOwnershipFreezesAdaptationMidRun) {
  // An external agent acquires the spin-time attribute: the in-object policy
  // can no longer reconfigure (its Ψ attempts fail), and resumes after
  // release — ownership working end-to-end against a live feedback loop.
  ct::runtime rt(sim::machine_config::test_machine(4));
  locks::simple_adapt_params p;
  p.sample_period = 1;
  locks::adaptive_lock lk(0, locks::lock_cost_model::fast_test(), p,
                          locks::waiting_policy::mixed(10));
  std::uint64_t decisions_while_owned = 0;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    EXPECT_TRUE(co_await lk.acquire_attribute(ctx, "spin-time", 99));
    const auto before = lk.policy()->decisions();
    for (int i = 0; i < 10; ++i) {
      co_await lk.lock(ctx);
      co_await lk.unlock(ctx);
    }
    decisions_while_owned = lk.policy()->decisions() - before;
    co_await lk.release_attribute(ctx, "spin-time", 99);
    for (int i = 0; i < 10; ++i) {
      co_await lk.lock(ctx);
      co_await lk.unlock(ctx);
    }
  });
  rt.run_all();
  EXPECT_EQ(decisions_while_owned, 0u);
  EXPECT_GT(lk.policy()->decisions(), 0u);  // resumed after release
}

}  // namespace
}  // namespace adx
