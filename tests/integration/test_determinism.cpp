// Whole-stack determinism: identical configurations must replay to the exact
// same virtual end time, event count, and statistics. Every experiment in
// the benchmark harness relies on this property.
#include <gtest/gtest.h>

#include "tsp/parallel.hpp"
#include "workload/client_server.hpp"
#include "workload/cs_workload.hpp"

namespace adx {
namespace {

TEST(Determinism, TspAllVariantsReplayExactly) {
  const auto inst = tsp::instance::random_asymmetric(16, 4242);
  for (auto v : {tsp::variant::centralized, tsp::variant::distributed,
                 tsp::variant::distributed_lb}) {
    tsp::parallel_config cfg;
    cfg.impl = v;
    cfg.processors = 5;
    cfg.cost = locks::lock_cost_model::fast_test();
    cfg.run.machine = sim::machine_config::test_machine(6);
    cfg.per_op_us = 0.3;
    cfg.record_patterns = true;
    const auto a = tsp::solve_parallel(inst, cfg);
    const auto b = tsp::solve_parallel(inst, cfg);
    EXPECT_EQ(a.elapsed.ns, b.elapsed.ns) << to_string(v);
    EXPECT_EQ(a.events, b.events) << to_string(v);
    EXPECT_EQ(a.expansions, b.expansions) << to_string(v);
    EXPECT_EQ(a.best.cost, b.best.cost) << to_string(v);
    EXPECT_EQ(a.qlock_pattern.size(), b.qlock_pattern.size()) << to_string(v);
  }
}

TEST(Determinism, CsWorkloadReplaysExactly) {
  workload::cs_config cfg;
  cfg.processors = 4;
  cfg.threads = 8;
  cfg.iterations = 30;
  cfg.kind = locks::lock_kind::adaptive;
  cfg.cost = locks::lock_cost_model::fast_test();
  cfg.machine = sim::machine_config::test_machine(4);
  const auto a = workload::run_cs_workload(cfg);
  const auto b = workload::run_cs_workload(cfg);
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
  EXPECT_EQ(a.contended, b.contended);
  EXPECT_EQ(a.spin_iterations, b.spin_iterations);
}

TEST(Determinism, ClientServerReplaysExactly) {
  workload::client_server_config cfg;
  cfg.processors = 5;
  cfg.clients = 4;
  cfg.total_requests = 80;
  cfg.cost = locks::lock_cost_model::fast_test();
  cfg.machine = sim::machine_config::test_machine(5);
  for (auto s : {workload::sched_kind::fcfs, workload::sched_kind::priority,
                 workload::sched_kind::handoff}) {
    cfg.sched = s;
    const auto a = workload::run_client_server(cfg);
    const auto b = workload::run_client_server(cfg);
    EXPECT_EQ(a.elapsed.ns, b.elapsed.ns) << to_string(s);
  }
}

TEST(Determinism, SeedChangesOutcome) {
  const auto a = tsp::instance::random_asymmetric(16, 1);
  const auto b = tsp::instance::random_asymmetric(16, 2);
  EXPECT_NE(a.data(), b.data());
}

}  // namespace
}  // namespace adx
