// Cross-checks between the paper's declared cost model (§3.1, Table 8) and
// what the simulator's access ledger actually records: the formal model is
// executable, so the declared `n1 R n2 W` prices must match real traffic.
#include <gtest/gtest.h>

#include "ct/context.hpp"
#include "locks/adaptive_lock.hpp"
#include "locks/factory.hpp"

namespace adx {
namespace {

sim::machine_config mc() { return sim::machine_config::test_machine(4); }
locks::lock_cost_model cost() { return locks::lock_cost_model::fast_test(); }

TEST(CostModel, DeclaredPolicyPsiMatchesLedgerTraffic) {
  ct::runtime rt(mc());
  locks::reconfigurable_lock lk(0, cost());
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    const auto before = rt.mach().counts();
    co_await lk.configure_waiting_policy(ctx, locks::waiting_policy::pure_spin(9));
    const auto traffic = rt.mach().counts() - before;
    // Declared: 1R + 1W. Charged: exactly one read and one write.
    EXPECT_EQ(traffic.reads(), lk.costs().reconfigurations.reads);
    EXPECT_EQ(traffic.writes(), lk.costs().reconfigurations.writes);
  });
  rt.run_all();
}

TEST(CostModel, SchedulerPsiChargesDeclaredWrites) {
  ct::runtime rt(mc());
  locks::reconfigurable_lock lk(0, cost());
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    const auto before = rt.mach().counts();
    co_await lk.configure_scheduler(ctx, std::make_unique<locks::priority_scheduler>());
    const auto traffic = rt.mach().counts() - before;
    EXPECT_EQ(traffic.writes(), lk.costs().reconfigurations.writes);
  });
  rt.run_all();
}

TEST(CostModel, UncontendedLockOpDominatedByOverheadNotMemory) {
  // Table 4's structure: the instruction path dominates; the memory system
  // contributes only a few accesses per op.
  ct::runtime rt(mc());
  auto lk = locks::make_lock(locks::lock_kind::spin, 0, cost());
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    const auto before = rt.mach().counts();
    co_await lk->lock(ctx);
    const auto traffic = rt.mach().counts() - before;
    EXPECT_LE(traffic.total(), 2u);  // one RMW (+ maybe a read)
    co_await lk->unlock(ctx);
  });
  rt.run_all();
}

TEST(CostModel, AdaptiveMonitorSampleReadsStateVariable) {
  ct::runtime rt(mc());
  locks::simple_adapt_params p;
  p.sample_period = 1;
  locks::adaptive_lock lk(0, cost(), p, locks::waiting_policy::pure_spin(8));
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    co_await lk.lock(ctx);
    const auto before = rt.mach().counts();
    co_await lk.unlock(ctx);  // sample fires (period 1); policy sees 0 waiters
    const auto traffic = rt.mach().counts() - before;
    // unlock path: queue-check read + word write + sensor read (no Ψ since
    // pure spin is already configured at the cap... it may reconfigure once).
    EXPECT_GE(traffic.reads(), 2u);
  });
  rt.run_all();
  EXPECT_EQ(lk.costs().monitor_samples, 1u);
}

TEST(CostModel, RemoteLockCostsMoreThanLocal) {
  // The local/remote split of Tables 4-5.
  const auto time_lock = [](sim::node_id home) {
    ct::runtime rt(mc());
    auto lk = locks::make_lock(locks::lock_kind::atomior, home, cost());
    sim::vdur d{};
    rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
      const auto t0 = ctx.now();
      co_await lk->lock(ctx);
      d = ctx.now() - t0;
      co_await lk->unlock(ctx);
    });
    rt.run_all();
    return d;
  };
  EXPECT_GT(time_lock(2).ns, time_lock(0).ns);
}

TEST(CostModel, LockingCycleOrderingMatchesTable6) {
  // spin cycle < backoff cycle < blocking cycle, on a busy lock — with the
  // calibrated Butterfly constants (the fast-test model compresses the
  // deltas below the ordering threshold).
  const auto cycle = [](locks::lock_kind k) {
    // Average over several hold times: the waiter's backoff/spin phase
    // relative to the release otherwise aliases the measurement.
    sim::vdur total{};
    for (const double hold_ms : {1.62, 1.85, 2.04, 2.31, 2.58}) {
      ct::runtime rt(sim::machine_config::butterfly_gp1000());
      auto lk = locks::make_lock(k, 0, locks::lock_cost_model::butterfly_cthreads());
      sim::vtime acquired{};
      sim::vtime released{};
      rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
        co_await lk->lock(ctx);
        co_await ctx.compute(sim::milliseconds(hold_ms));
        co_await lk->unlock(ctx);
        released = ctx.now();
      });
      rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
        co_await ctx.compute(sim::microseconds(50));
        co_await lk->lock(ctx);
        acquired = ctx.now();
        co_await lk->unlock(ctx);
      });
      rt.run_all();
      total += acquired - released;
    }
    return total / 5;
  };
  const auto spin = cycle(locks::lock_kind::spin);
  const auto backoff = cycle(locks::lock_kind::backoff);
  const auto blocking = cycle(locks::lock_kind::blocking);
  EXPECT_LT(spin.ns, backoff.ns);
  EXPECT_LT(backoff.ns, blocking.ns);
}

}  // namespace
}  // namespace adx
