// Randomized torture: seeded random schedules (thread counts, processor
// counts, critical-section and think times, lock homes) across every lock
// kind, checking the fundamental invariants — mutual exclusion, no lost
// increments, termination, determinism — far from the hand-picked scenarios
// of the unit tests.
#include <gtest/gtest.h>

#include "ct/context.hpp"
#include "locks/factory.hpp"
#include "locks/rw_lock.hpp"
#include "sim/rng.hpp"

namespace adx {
namespace {

struct torture_case {
  std::uint64_t seed;
  locks::lock_kind kind;
};

std::string torture_name(const testing::TestParamInfo<torture_case>& info) {
  std::string n = locks::to_string(info.param.kind);
  for (auto& c : n) {
    if (c == '-') c = '_';
  }
  return n + "_s" + std::to_string(info.param.seed);
}

class LockTorture : public testing::TestWithParam<torture_case> {};

TEST_P(LockTorture, RandomScheduleKeepsInvariants) {
  const auto& tc = GetParam();
  sim::rng r(tc.seed);

  const unsigned procs = 2 + static_cast<unsigned>(r.below(6));
  const bool spin_only = tc.kind == locks::lock_kind::atomior ||
                         tc.kind == locks::lock_kind::spin ||
                         tc.kind == locks::lock_kind::backoff ||
                         tc.kind == locks::lock_kind::ticket ||
                         tc.kind == locks::lock_kind::mcs ||
                         tc.kind == locks::lock_kind::advisory;
  // Spin-only kinds livelock when waiters share a processor with the owner.
  const unsigned threads =
      spin_only ? procs : procs + static_cast<unsigned>(r.below(procs + 1));
  const int iters = 10 + static_cast<int>(r.below(25));
  const auto home = static_cast<sim::node_id>(r.below(procs));

  locks::lock_params params;
  params.combined_spin_limit = 1 + static_cast<std::int64_t>(r.below(40));
  params.adapt.waiting_threshold = 1 + static_cast<std::int64_t>(r.below(16));
  params.adapt.n = 1 + static_cast<std::int64_t>(r.below(30));
  params.adapt.spin_cap = 10 + static_cast<std::int64_t>(r.below(300));
  params.adapt.sample_period = 1 + r.below(6);
  params.grant_mode = static_cast<std::int64_t>(r.below(2));

  std::vector<std::uint64_t> cs_us(threads);
  std::vector<std::uint64_t> think_us(threads);
  for (unsigned t = 0; t < threads; ++t) {
    cs_us[t] = 5 + r.below(200);
    think_us[t] = 20 + r.below(500);
  }

  const auto run_once = [&] {
    ct::runtime rt(sim::machine_config::test_machine(procs));
    auto lk = locks::make_lock(tc.kind, home, locks::lock_cost_model::fast_test(),
                               params);
    ct::svar<std::uint64_t> counter(home, 0);
    int in_cs = 0;
    bool violated = false;
    for (unsigned t = 0; t < threads; ++t) {
      rt.fork(t % procs, [&, t](ct::context& ctx) -> ct::task<void> {
        for (int i = 0; i < iters; ++i) {
          co_await lk->lock(ctx);
          if (++in_cs != 1) violated = true;
          const auto v = co_await ctx.read(counter);
          co_await ctx.compute(sim::microseconds(static_cast<double>(cs_us[t])));
          co_await ctx.write(counter, v + 1);
          --in_cs;
          co_await lk->unlock(ctx);
          if (threads > procs) {
            co_await ctx.sleep_for(
                sim::microseconds(static_cast<double>(think_us[t])));
          } else {
            co_await ctx.compute(
                sim::microseconds(static_cast<double>(think_us[t])));
          }
        }
      });
    }
    const auto res = rt.run_all(100'000'000ULL);
    EXPECT_TRUE(res.completed);
    EXPECT_FALSE(violated);
    EXPECT_EQ(counter.raw(), std::uint64_t{threads} * iters);
    return res.end_time;
  };

  EXPECT_EQ(run_once().ns, run_once().ns) << "non-deterministic replay";
}

std::vector<torture_case> torture_cases() {
  std::vector<torture_case> v;
  constexpr locks::lock_kind kinds[] = {
      locks::lock_kind::atomior,   locks::lock_kind::spin,
      locks::lock_kind::backoff,   locks::lock_kind::blocking,
      locks::lock_kind::combined,  locks::lock_kind::advisory,
      locks::lock_kind::ticket,    locks::lock_kind::mcs,
      locks::lock_kind::reconfigurable, locks::lock_kind::adaptive,
  };
  for (const auto k : kinds) {
    for (std::uint64_t seed : {11ULL, 23ULL, 37ULL}) {
      v.push_back({seed, k});
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, LockTorture,
                         testing::ValuesIn(torture_cases()), torture_name);

TEST(RwLockTorture, RandomReadWriteMixKeepsInvariants) {
  for (const std::uint64_t seed : {3ULL, 19ULL, 41ULL}) {
    sim::rng r(seed);
    const unsigned procs = 3 + static_cast<unsigned>(r.below(5));
    const unsigned threads = procs;  // one per processor
    const auto bias = static_cast<std::int64_t>(r.below(101));

    ct::runtime rt(sim::machine_config::test_machine(procs));
    locks::reconfigurable_rw_lock lk(0, locks::lock_cost_model::fast_test(), bias,
                                     static_cast<std::int64_t>(r.below(20)));
    std::int64_t writers_in = 0;
    bool violated = false;
    std::uint64_t writes_done = 0;
    for (unsigned t = 0; t < threads; ++t) {
      const bool writer = r.uniform01() < 0.4;
      const auto work = 10 + r.below(150);
      rt.fork(t % procs, [&, writer, work](ct::context& ctx) -> ct::task<void> {
        for (int i = 0; i < 20; ++i) {
          if (writer) {
            co_await lk.lock_exclusive(ctx);
            if (++writers_in != 1 || lk.readers_raw() != 0) violated = true;
            co_await ctx.compute(sim::microseconds(static_cast<double>(work)));
            --writers_in;
            ++writes_done;
            co_await lk.unlock_exclusive(ctx);
          } else {
            co_await lk.lock_shared(ctx);
            if (writers_in != 0) violated = true;
            co_await ctx.compute(sim::microseconds(static_cast<double>(work)));
            co_await lk.unlock_shared(ctx);
          }
          co_await ctx.compute(sim::microseconds(25));
        }
      });
    }
    const auto res = rt.run_all(100'000'000ULL);
    EXPECT_TRUE(res.completed) << "seed " << seed;
    EXPECT_FALSE(violated) << "seed " << seed;
  }
}

}  // namespace
}  // namespace adx
