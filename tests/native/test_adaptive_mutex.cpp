#include "native/adaptive_mutex.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace adx::native {
namespace {

TEST(NativeAdaptiveMutex, BasicLockUnlock) {
  adaptive_mutex m;
  m.lock();
  m.unlock();
  m.lock();
  m.unlock();
}

TEST(NativeAdaptiveMutex, TryLock) {
  adaptive_mutex m;
  EXPECT_TRUE(m.try_lock());
  EXPECT_FALSE(m.try_lock());
  m.unlock();
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

TEST(NativeAdaptiveMutex, MutualExclusionUnderRealThreads) {
  adaptive_mutex m;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        m.lock();
        ++counter;  // racy unless the mutex works
        m.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, long{kThreads} * kIters);
}

TEST(NativeAdaptiveMutex, UncontendedConvergesToPureSpin) {
  adapt_params p;
  p.spin_cap = 1000;
  p.sample_period = 2;
  adaptive_mutex m(p, /*initial_spin=*/10);
  for (int i = 0; i < 10; ++i) {
    m.lock();
    m.unlock();
  }
  EXPECT_EQ(m.spin_budget(), 1000);
  EXPECT_GE(m.monitor_samples(), 4u);
  EXPECT_GE(m.reconfigurations(), 1u);
}

TEST(NativeAdaptiveMutex, PolicyReconfiguresUnderLoad) {
  // On a single-core host waiters are rarely observable at sample time, so
  // assert the robust property: the policy reconfigures at least once (the
  // initial budget differs from the cap, so the very first sample adapts),
  // and the budget stays within [0, cap].
  adapt_params p;
  p.waiting_threshold = 0;  // any waiter shrinks the budget
  p.n = 100;
  p.spin_cap = 200;
  p.sample_period = 1;
  adaptive_mutex m(p, /*initial_spin=*/50);
  std::atomic<bool> stop{false};
  std::thread holder([&] {
    for (int i = 0; i < 2000 && !stop.load(); ++i) {
      m.lock();
      m.unlock();
    }
  });
  std::thread contender([&] {
    for (int i = 0; i < 2000 && !stop.load(); ++i) {
      m.lock();
      m.unlock();
    }
  });
  holder.join();
  contender.join();
  stop = true;
  EXPECT_GE(m.reconfigurations(), 1u);
  EXPECT_GE(m.spin_budget(), 0);
  EXPECT_LE(m.spin_budget(), 200);
}

TEST(NativeAdaptiveMutex, ZeroBudgetStillCorrect) {
  adapt_params p;
  p.spin_cap = 0;  // pure blocking forever
  adaptive_mutex m(p, /*initial_spin=*/0);
  long counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 3; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        m.lock();
        ++counter;
        m.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 15000);
}

TEST(NativeSpinMutex, MutualExclusion) {
  spin_mutex m;
  long counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        m.lock();
        ++counter;
        m.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 80000);
}

TEST(NativeSpinMutex, TryLock) {
  spin_mutex m;
  EXPECT_TRUE(m.try_lock());
  EXPECT_FALSE(m.try_lock());
  m.unlock();
}

TEST(NativeBlockingMutex, MutualExclusion) {
  blocking_mutex m;
  long counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        m.lock();
        ++counter;
        m.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(NativeAdaptiveMutex, UsableWithStdLockGuard) {
  adaptive_mutex m;
  {
    std::lock_guard<adaptive_mutex> g(m);
  }
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

}  // namespace
}  // namespace adx::native
