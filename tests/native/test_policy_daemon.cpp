// Native async-mode adaptive mutex + policy daemon. The concurrency tests
// double as the TSan targets: the CI thread-sanitizer job runs this binary
// to prove the SPSC ring publish (inside the critical section) and the
// daemon-side pump never race.
#include "native/policy_daemon.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "native/snapshot_ring.hpp"

namespace adx::native {
namespace {

TEST(SnapshotRing, PushPopFifo) {
  snapshot_ring r(4);
  EXPECT_EQ(r.capacity(), 4u);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_TRUE(r.push({i}));
  EXPECT_FALSE(r.push({99}));  // full: dropped and counted
  EXPECT_EQ(r.dropped(), 1u);
  sensor_snapshot s;
  for (std::int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(r.pop(s));
    EXPECT_EQ(s.waiting, i);
  }
  EXPECT_FALSE(r.pop(s));
  EXPECT_EQ(r.backlog(), 0u);
}

TEST(SnapshotRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(snapshot_ring(3).capacity(), 4u);
  EXPECT_EQ(snapshot_ring(1).capacity(), 2u);
  EXPECT_EQ(snapshot_ring(256).capacity(), 256u);
}

TEST(SnapshotRing, SpscConcurrentTransfer) {
  // One producer, one consumer, every pushed value received in order.
  snapshot_ring r(64);
  constexpr std::int64_t kN = 20000;
  std::thread producer([&] {
    for (std::int64_t i = 0; i < kN; ++i) {
      while (!r.push({i})) std::this_thread::yield();
    }
  });
  std::int64_t expect = 0;
  sensor_snapshot s;
  while (expect < kN) {
    if (r.pop(s)) {
      ASSERT_EQ(s.waiting, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_EQ(r.backlog(), 0u);
}

TEST(NativeAsyncMutex, SyncModeIsUnchanged) {
  adaptive_mutex m;
  EXPECT_FALSE(m.async_mode());
  m.lock();
  m.unlock();
  EXPECT_EQ(m.snapshot_backlog(), 0u);  // nothing published in sync mode
}

TEST(NativeAsyncMutex, PublishesInsteadOfAdaptingInline) {
  adapt_params p;
  p.sample_period = 2;
  p.spin_cap = 1000;
  adaptive_mutex m(p, /*initial_spin=*/10, /*async=*/true);
  for (int i = 0; i < 10; ++i) {
    m.lock();
    m.unlock();
  }
  // No inline policy work: the budget is untouched and no samples ran...
  EXPECT_EQ(m.spin_budget(), 10);
  EXPECT_EQ(m.monitor_samples(), 0u);
  EXPECT_EQ(m.snapshot_backlog(), 5u);  // ...but every 2nd unlock published.
  // Draining runs the same simple-adapt rule the sync mode runs inline:
  // uncontended samples converge the budget to the spin cap.
  EXPECT_EQ(m.pump(), 5u);
  EXPECT_EQ(m.monitor_samples(), 5u);
  EXPECT_EQ(m.spin_budget(), 1000);
  EXPECT_GE(m.reconfigurations(), 1u);
}

TEST(NativeAsyncMutex, PumpWhileLockingIsRaceFree) {
  // The clear-cut producer/consumer race test (TSan target): worker threads
  // publish from inside the critical section while this thread pumps
  // concurrently. Counter integrity proves mutual exclusion survived the
  // async instrumentation.
  adapt_params p;
  p.sample_period = 1;
  adaptive_mutex m(p, /*initial_spin=*/64, /*async=*/true);
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::atomic<int> finished{0};
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        m.lock();
        ++counter;
        m.unlock();
      }
      finished.fetch_add(1, std::memory_order_release);
    });
  }
  std::uint64_t pumped = 0;
  while (finished.load(std::memory_order_acquire) < kThreads) {
    pumped += m.pump(128);
    std::this_thread::yield();
  }
  for (auto& t : ts) t.join();
  pumped += m.pump();
  EXPECT_EQ(counter, long{kThreads} * kIters);
  // Every publish is either pumped or was dropped on a full ring.
  EXPECT_EQ(pumped + m.dropped_snapshots(), std::uint64_t{kThreads} * kIters);
  EXPECT_GE(m.spin_budget(), 0);
  EXPECT_LE(m.spin_budget(), m.params().spin_cap);
}

TEST(NativePolicyDaemon, DrainsWatchedMutexes) {
  adapt_params p;
  p.sample_period = 1;
  adaptive_mutex m(p, /*initial_spin=*/32, /*async=*/true);
  policy_daemon d(daemon_config{std::chrono::microseconds(200), /*idle_ticks=*/0});
  d.watch(m);
  EXPECT_EQ(d.watched(), 1u);
  d.start();
  EXPECT_TRUE(d.running());
  std::vector<std::thread> ts;
  for (int t = 0; t < 2; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        m.lock();
        m.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  d.stop();
  EXPECT_FALSE(d.running());
  // stop() performs a final drain, so nothing is left behind.
  EXPECT_EQ(m.snapshot_backlog(), 0u);
  EXPECT_EQ(d.pumped() + m.dropped_snapshots(), 40000u);
  EXPECT_GE(m.monitor_samples(), d.pumped());
}

TEST(NativePolicyDaemon, IgnoresSyncMutexesAndIsIdempotent) {
  adaptive_mutex sync_m;  // sync mode: adapts inline, nothing to drain
  policy_daemon d;
  d.watch(sync_m);
  EXPECT_EQ(d.watched(), 0u);
  d.start();  // no registrations: never spawns
  EXPECT_FALSE(d.running());
  d.stop();  // idempotent on a never-started daemon
  d.stop();
}

TEST(NativePolicyDaemon, CoordinatorDemotesIdleMutexToPureSpin) {
  adapt_params p;
  p.sample_period = 1;
  p.spin_cap = 4096;
  adaptive_mutex m(p, /*initial_spin=*/7, /*async=*/true);
  policy_daemon d(daemon_config{std::chrono::microseconds(100), /*idle_ticks=*/2});
  d.watch(m);
  d.start();
  // The mutex sees zero traffic; after idle_ticks flat ticks the daemon
  // demotes it to pure spin at the cap.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (d.demotions() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  d.stop();
  EXPECT_GE(d.demotions(), 1u);
  EXPECT_EQ(m.spin_budget(), 4096);
}

}  // namespace
}  // namespace adx::native
