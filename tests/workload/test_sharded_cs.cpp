// Bit-identity of the federated ct workloads across shard and worker
// counts. The suites are named ShardedCt* on purpose: the TSan CI job runs
// them as its sharded-ct stress filter, driving real parallel windows over
// the federation's native state.
#include "workload/sharded_cs.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "exec/job_executor.hpp"
#include "workload/ct_serve.hpp"

namespace adx::workload {
namespace {

sharded_cs_config small_cs(unsigned shards) {
  sharded_cs_config cfg;
  cfg.machine = sim::machine_config::hierarchical_numa(3, 4);
  cfg.machine.context_switch = sim::microseconds(10);
  cfg.machine.dispatch_latency = sim::microseconds(2);
  cfg.threads_per_group = 3;
  cfg.iterations = 12;
  cfg.remote_every = 3;
  cfg.cs_length = sim::microseconds(40);
  cfg.think_time = sim::microseconds(120);
  cfg.shards = shards;
  return cfg;
}

/// The observables every run must reproduce exactly.
struct cs_signature {
  sim::vtime elapsed{};
  std::vector<std::uint64_t> acq;
  std::uint64_t contended{};
  std::uint64_t blocks{};
  std::uint64_t spins{};
  std::uint64_t echoes{};
  double rtt_mean{};
  double rtt_p99{};
  std::uint64_t posts{};
  sim::domain_stats domain;

  friend bool operator==(const cs_signature&, const cs_signature&) = default;
};

cs_signature run_cs(unsigned shards, unsigned workers, bool adaptive = false) {
  auto cfg = small_cs(shards);
  cfg.adaptive_lookahead = adaptive;
  exec::job_executor ex(workers);
  const auto r = run_sharded_cs(cfg, workers > 1 ? &ex : nullptr);
  EXPECT_TRUE(r.completed);
  return {r.elapsed, r.group_acquisitions, r.contended, r.blocks,
          r.spin_iterations, r.echoes, r.echo_rtt_mean_us, r.echo_rtt_p99_us,
          r.posts, r.domain};
}

TEST(ShardedCtSweep, RunsAndServesEveryEcho) {
  const auto cfg = small_cs(1);
  const auto r = run_sharded_cs(cfg);
  EXPECT_TRUE(r.completed);
  // 3 groups x 3 clients x (12/3) echoes, each an acquisition by the server
  // plus the clients' own 12 iterations each.
  EXPECT_EQ(r.echoes, 3u * 3u * 4u);
  EXPECT_EQ(r.acquisitions, 3u * 3u * 12u + r.echoes);
  // Every echo is a request post plus a reply post.
  EXPECT_EQ(r.posts, 2 * r.echoes);
  EXPECT_GT(r.echo_rtt_mean_us, 0.0);
  ASSERT_EQ(r.group_acquisitions.size(), 3u);
}

TEST(ShardedCtSweep, BitIdenticalAcrossShardAndWorkerCounts) {
  const auto ref = run_cs(1, 1);
  for (unsigned shards : {2u, 3u, 8u}) {
    for (unsigned workers : {1u, 8u}) {
      EXPECT_EQ(run_cs(shards, workers), ref)
          << "shards=" << shards << " workers=" << workers;
    }
  }
}

TEST(ShardedCtSweep, AdaptiveLookaheadMatchesNonAdaptive) {
  // Every cross-group message travels at exactly the horizon, so the
  // adaptive grid is an equivalence-preserving optimization here.
  const auto plain = run_cs(1, 1, false);
  for (unsigned shards : {1u, 3u}) {
    auto ad = run_cs(shards, 1, true);
    // The widen counters may legitimately differ; compare the physics.
    ad.domain.widened_windows = plain.domain.widened_windows;
    ad.domain.peak_widen = plain.domain.peak_widen;
    ad.domain.windows = plain.domain.windows;
    EXPECT_EQ(ad, plain) << "shards=" << shards;
  }
}

TEST(ShardedCtSweep, BlockingLocksHandOffAcrossTheHorizon) {
  auto cfg = small_cs(2);
  cfg.kind = locks::lock_kind::blocking;
  exec::job_executor ex(2);
  const auto r = run_sharded_cs(cfg, &ex);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.blocks, 0u);

  auto cfg1 = small_cs(1);
  cfg1.kind = locks::lock_kind::blocking;
  const auto seq = run_sharded_cs(cfg1);
  EXPECT_EQ(r.elapsed, seq.elapsed);
  EXPECT_EQ(r.blocks, seq.blocks);
  EXPECT_EQ(r.group_acquisitions, seq.group_acquisitions);
}

TEST(ShardedCtSweep, SingleGroupDegeneratesToLocalSweep) {
  auto cfg = small_cs(1);
  cfg.machine = sim::machine_config::hierarchical_numa(1, 4);
  cfg.machine.context_switch = sim::microseconds(10);
  cfg.machine.dispatch_latency = sim::microseconds(2);
  const auto r = run_sharded_cs(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.echoes, 0u);  // no other group to echo to
  EXPECT_EQ(r.posts, 0u);
  EXPECT_EQ(r.acquisitions, 3u * 12u);
}

// ---------------------------------------------------------------- ct_serve

ct_serve_config small_serve(unsigned shards) {
  ct_serve_config cfg;
  cfg.machine = sim::machine_config::hierarchical_numa(3, 4);
  cfg.machine.context_switch = sim::microseconds(10);
  cfg.machine.dispatch_latency = sim::microseconds(2);
  cfg.servers_per_group = 2;
  cfg.requests_per_group = 40;
  cfg.mean_interarrival_us = 80.0;
  cfg.remote_fraction = 0.3;
  cfg.kind = locks::lock_kind::spin;
  cfg.shards = shards;
  return cfg;
}

struct serve_signature {
  sim::vtime elapsed{};
  std::uint64_t served{};
  std::uint64_t remote{};
  double p50{};
  double p99{};
  std::uint64_t acq{};
  std::uint64_t posts{};
  sim::domain_stats domain;

  friend bool operator==(const serve_signature&, const serve_signature&) = default;
};

serve_signature run_serve(unsigned shards, unsigned workers) {
  exec::job_executor ex(workers);
  const auto r = run_ct_serve(small_serve(shards), workers > 1 ? &ex : nullptr);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.served, r.generated);
  return {r.elapsed,        r.served, r.remote_requests, r.latency_p50_us,
          r.latency_p99_us, r.acquisitions, r.posts,    r.domain};
}

TEST(ShardedCtServe, ServesEveryRequestAndShutsDown) {
  const auto r = run_ct_serve(small_serve(1));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.generated, 3u * 40u);
  EXPECT_EQ(r.served, r.generated);
  EXPECT_GT(r.remote_requests, 0u);
  EXPECT_GT(r.latency_p99_us, 0.0);
  EXPECT_GE(r.latency_p99_us, r.latency_p50_us);
}

TEST(ShardedCtServe, BitIdenticalAcrossShardAndWorkerCounts) {
  const auto ref = run_serve(1, 1);
  for (unsigned shards : {2u, 3u, 8u}) {
    for (unsigned workers : {1u, 8u}) {
      EXPECT_EQ(run_serve(shards, workers), ref)
          << "shards=" << shards << " workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace adx::workload
