#include "workload/client_server.hpp"

#include <gtest/gtest.h>

namespace adx::workload {
namespace {

client_server_config fast(sched_kind s) {
  client_server_config c;
  c.processors = 6;
  c.clients = 5;
  c.total_requests = 120;
  c.sched = s;
  c.cost = locks::lock_cost_model::fast_test();
  c.machine = sim::machine_config::test_machine(6);
  return c;
}

TEST(ClientServer, CompletesAllRequests) {
  const auto r = run_client_server(fast(sched_kind::fcfs));
  EXPECT_GT(r.server_rounds, 0u);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(ClientServer, Deterministic) {
  const auto a = run_client_server(fast(sched_kind::priority));
  const auto b = run_client_server(fast(sched_kind::priority));
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
}

TEST(ClientServer, PriorityBeatsFcfs) {
  // The §2 claim: priority locks best, FCFS worst for client-server apps —
  // on the metric the lock scheduler controls, the server's lock wait and
  // hence the request service latency (makespan in this closed system is
  // client-production-bound).
  const auto fcfs = run_client_server(fast(sched_kind::fcfs));
  const auto prio = run_client_server(fast(sched_kind::priority));
  EXPECT_LT(prio.mean_request_latency_us, fcfs.mean_request_latency_us);
}

TEST(ClientServer, PriorityCutsServerWaiting) {
  const auto fcfs = run_client_server(fast(sched_kind::fcfs));
  const auto prio = run_client_server(fast(sched_kind::priority));
  EXPECT_LT(prio.mean_server_wait_us, fcfs.mean_server_wait_us);
}

TEST(ClientServer, HandoffNoWorseThanFcfs) {
  const auto fcfs = run_client_server(fast(sched_kind::fcfs));
  const auto handoff = run_client_server(fast(sched_kind::handoff));
  EXPECT_LE(handoff.mean_request_latency_us, fcfs.mean_request_latency_us);
  EXPECT_LE(handoff.mean_server_wait_us, fcfs.mean_server_wait_us);
}

TEST(ClientServer, ValidatesConfig) {
  auto c = fast(sched_kind::fcfs);
  c.clients = 0;
  EXPECT_THROW((void)run_client_server(c), std::invalid_argument);
  c = fast(sched_kind::fcfs);
  c.clients = 10;  // clients + server exceed processors
  EXPECT_THROW((void)run_client_server(c), std::invalid_argument);
}

TEST(ClientServer, SchedNames) {
  EXPECT_STREQ(to_string(sched_kind::fcfs), "fcfs");
  EXPECT_STREQ(to_string(sched_kind::priority), "priority");
  EXPECT_STREQ(to_string(sched_kind::handoff), "handoff");
}

}  // namespace
}  // namespace adx::workload
