#include "workload/open_loop.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "exec/job_executor.hpp"

namespace adx::workload {
namespace {

// One lock per group and a 40us mean critical section against a 600us mean
// interarrival: ~7% utilization in the light phase, deeply saturated when the
// 8x burst multiplier is on. These are the bench_serve_openloop constants.
open_loop_config light_config() {
  open_loop_config cfg;
  cfg.machine = sim::machine_config::hierarchical_numa(8, 8);
  cfg.locks_per_group = 1;
  cfg.requests_per_group = 400;
  cfg.mean_interarrival_us = 600.0;
  cfg.mean_service_us = 40.0;
  cfg.params.adapt.waiting_threshold = 16;
  return cfg;
}

open_loop_config bursty_config() {
  auto cfg = light_config();
  // Long enough for the burst phases to drive queue depth past the spin
  // crossover (~85 waiters) so the hot-spot collapse actually compounds.
  cfg.requests_per_group = 1500;
  cfg.bursty = true;
  cfg.burst_mult = 8.0;
  cfg.burst_period_us = 30'000.0;
  return cfg;
}

TEST(OpenLoop, CompletesEveryArrival) {
  auto cfg = light_config();
  const auto groups = cfg.machine.groups();
  for (const auto kind :
       {locks::lock_kind::spin, locks::lock_kind::blocking, locks::lock_kind::adaptive}) {
    cfg.kind = kind;
    const auto r = run_open_loop(cfg);
    EXPECT_EQ(r.completed, groups * cfg.requests_per_group) << locks::to_string(kind);
    EXPECT_GT(r.p50_ns, 0u) << locks::to_string(kind);
    EXPECT_GE(r.p99_ns, r.p50_ns) << locks::to_string(kind);
    EXPECT_GE(r.p999_ns, r.p99_ns) << locks::to_string(kind);
    EXPECT_GE(r.max_ns, r.p999_ns) << locks::to_string(kind);
  }
}

TEST(OpenLoop, BitIdenticalAcrossShardCounts) {
  auto cfg = bursty_config();
  cfg.shards = 1;
  const auto ref = run_open_loop(cfg);
  for (const unsigned shards : {2u, 3u, 8u}) {
    cfg.shards = shards;
    const auto got = run_open_loop(cfg);
    EXPECT_EQ(got.completed, ref.completed) << "shards=" << shards;
    EXPECT_EQ(got.elapsed.ns, ref.elapsed.ns) << "shards=" << shards;
    EXPECT_EQ(got.p50_ns, ref.p50_ns) << "shards=" << shards;
    EXPECT_EQ(got.p99_ns, ref.p99_ns) << "shards=" << shards;
    EXPECT_EQ(got.p999_ns, ref.p999_ns) << "shards=" << shards;
    EXPECT_EQ(got.max_ns, ref.max_ns) << "shards=" << shards;
    EXPECT_EQ(got.mean_ns, ref.mean_ns) << "shards=" << shards;
    EXPECT_EQ(got.grants_spin, ref.grants_spin) << "shards=" << shards;
    EXPECT_EQ(got.grants_block, ref.grants_block) << "shards=" << shards;
    EXPECT_EQ(got.remote_requests, ref.remote_requests) << "shards=" << shards;
    EXPECT_EQ(got.windows, ref.windows) << "shards=" << shards;
    EXPECT_EQ(got.cross_sends, ref.cross_sends) << "shards=" << shards;
    EXPECT_EQ(got.throughput, ref.throughput) << "shards=" << shards;
  }
}

TEST(OpenLoop, ParallelWorkersMatchSequential) {
  auto cfg = bursty_config();
  cfg.shards = 4;
  const auto seq = run_open_loop(cfg);
  exec::job_executor ex(3);
  const auto par = run_open_loop(cfg, ex);
  EXPECT_EQ(par.completed, seq.completed);
  EXPECT_EQ(par.elapsed.ns, seq.elapsed.ns);
  EXPECT_EQ(par.p50_ns, seq.p50_ns);
  EXPECT_EQ(par.p999_ns, seq.p999_ns);
  EXPECT_EQ(par.mean_ns, seq.mean_ns);
  EXPECT_EQ(par.windows, seq.windows);
  EXPECT_EQ(par.cross_sends, seq.cross_sends);
}

TEST(OpenLoop, SweepIsByteIdenticalForAnyWorkerCount) {
  std::vector<open_loop_config> pts;
  for (const auto kind : {locks::lock_kind::spin, locks::lock_kind::adaptive}) {
    auto cfg = light_config();
    cfg.kind = kind;
    cfg.requests_per_group = 200;
    pts.push_back(cfg);
  }
  exec::job_executor one(1), four(4);
  const auto a = run_open_loop_sweep(pts, one);
  const auto b = run_open_loop_sweep(pts, four);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].p50_ns, b[i].p50_ns) << i;
    EXPECT_EQ(a[i].p999_ns, b[i].p999_ns) << i;
    EXPECT_EQ(a[i].mean_ns, b[i].mean_ns) << i;
  }
}

// Light load: queues stay shallow, so the adaptive lock keeps the spin
// handoff and beats the blocking lock's fixed context-switch tail.
TEST(OpenLoop, AdaptiveHoldsNearSpinUnderLightLoad) {
  auto cfg = light_config();
  cfg.kind = locks::lock_kind::spin;
  const auto spin = run_open_loop(cfg);
  cfg.kind = locks::lock_kind::blocking;
  const auto block = run_open_loop(cfg);
  cfg.kind = locks::lock_kind::adaptive;
  const auto adapt = run_open_loop(cfg);

  EXPECT_LT(adapt.p99_ns, block.p99_ns);
  EXPECT_LT(adapt.p50_ns, 2 * spin.p50_ns);
  EXPECT_GT(adapt.grants_spin, adapt.grants_block);
}

// Bursty load: the spin lock's hot-spot tax compounds with queue depth and
// its tail collapses; the adaptive lock crosses to the blocking handoff at
// waiting_threshold and tracks the blocking lock's bounded tail instead.
TEST(OpenLoop, AdaptiveAvoidsSpinCollapseUnderBursts) {
  auto cfg = bursty_config();
  cfg.kind = locks::lock_kind::spin;
  const auto spin = run_open_loop(cfg);
  cfg.kind = locks::lock_kind::blocking;
  const auto block = run_open_loop(cfg);
  cfg.kind = locks::lock_kind::adaptive;
  const auto adapt = run_open_loop(cfg);

  EXPECT_LT(adapt.p999_ns, spin.p999_ns / 5);
  EXPECT_LT(adapt.p999_ns, 2 * block.p999_ns);
  EXPECT_GT(adapt.grants_block, adapt.grants_spin);
}

TEST(OpenLoop, RemoteTrafficRidesTheBarrier) {
  auto cfg = light_config();
  cfg.remote_ratio = 0.0;
  auto r = run_open_loop(cfg);
  EXPECT_EQ(r.remote_requests, 0u);
  EXPECT_EQ(r.cross_sends, 0u);

  cfg.remote_ratio = 0.5;
  r = run_open_loop(cfg);
  EXPECT_GT(r.remote_requests, 0u);
  // Every remote request is exactly one barrier delivery (transit == the
  // conservative lookahead), including ones whose target maps to the same
  // shard — same-shard group traffic still goes through send().
  EXPECT_EQ(r.cross_sends, r.remote_requests);
}

TEST(OpenLoop, RejectsBadShardCount) {
  auto cfg = light_config();
  cfg.shards = 0;
  EXPECT_THROW((void)run_open_loop(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace adx::workload
