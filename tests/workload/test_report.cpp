#include "workload/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace adx::workload {
namespace {

TEST(Table, PrintsHeadersAndRows) {
  table t({"lock", "time (ms)"});
  t.row({"blocking", "3207"});
  t.row({"adaptive", "2636"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("lock"), std::string::npos);
  EXPECT_NE(s.find("blocking"), std::string::npos);
  EXPECT_NE(s.find("2636"), std::string::npos);
}

TEST(Table, PadsToWidestCell) {
  table t({"a"});
  t.row({"longer-cell-content"});
  std::ostringstream os;
  t.print(os);
  // The header row must be padded at least as wide as the widest cell.
  const auto s = os.str();
  const auto header_pos = s.find("| a");
  const auto header_end = s.find('\n', header_pos);
  EXPECT_GE(header_end - header_pos, std::string("| longer-cell-content |").size());
}

TEST(Table, ShortRowsTolerated) {
  table t({"x", "y"});
  t.row({"only-one"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(table::num(3.14159, 2), "3.14");
  EXPECT_EQ(table::num(17.0, 0), "17");
}

TEST(Table, PctFormatting) {
  EXPECT_EQ(table::pct(0.178), "17.8%");
  EXPECT_EQ(table::pct(0.065), "6.5%");
}

}  // namespace
}  // namespace adx::workload
