#include "workload/cs_workload.hpp"

#include <gtest/gtest.h>

namespace adx::workload {
namespace {

cs_config fast(locks::lock_kind k) {
  cs_config c;
  c.processors = 4;
  c.threads = 4;
  c.iterations = 40;
  c.cs_length = sim::microseconds(50);
  c.think_time = sim::microseconds(100);
  c.kind = k;
  c.cost = locks::lock_cost_model::fast_test();
  c.machine = sim::machine_config::test_machine(4);
  return c;
}

TEST(CsWorkload, RunsToCompletion) {
  const auto r = run_cs_workload(fast(locks::lock_kind::spin));
  EXPECT_EQ(r.acquisitions, 160u);
  EXPECT_GT(r.elapsed.ns, 0u);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(CsWorkload, Deterministic) {
  const auto a = run_cs_workload(fast(locks::lock_kind::adaptive));
  const auto b = run_cs_workload(fast(locks::lock_kind::adaptive));
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
  EXPECT_EQ(a.contended, b.contended);
}

TEST(CsWorkload, LongerCriticalSectionsRaiseContention) {
  auto short_cs = fast(locks::lock_kind::blocking);
  auto long_cs = fast(locks::lock_kind::blocking);
  short_cs.cs_length = sim::microseconds(5);
  long_cs.cs_length = sim::microseconds(400);
  const auto rs = run_cs_workload(short_cs);
  const auto rl = run_cs_workload(long_cs);
  EXPECT_GT(rl.contention_ratio, rs.contention_ratio);
  EXPECT_GT(rl.mean_wait_us, rs.mean_wait_us);
}

TEST(CsWorkload, SpinBeatsBlockingWithOneThreadPerProcessor) {
  // §2: "spin locks consistently outperform blocking locks when the number
  // of processors exceeds [or matches] the number of threads."
  auto spin = fast(locks::lock_kind::spin);
  auto block = fast(locks::lock_kind::blocking);
  spin.cs_length = block.cs_length = sim::microseconds(150);
  const auto rs = run_cs_workload(spin);
  const auto rb = run_cs_workload(block);
  EXPECT_LT(rs.elapsed.ns, rb.elapsed.ns);
}

TEST(CsWorkload, BlockingBeatsCombinedSpinUnderMultiprogramming) {
  // §2: with multiple runnable threads per processor, spinning steals cycles
  // from peers that could make progress. (Pure spin would livelock outright,
  // which is the extreme form of the same statement; compare against a
  // spin-then-block lock instead.)
  auto combined = fast(locks::lock_kind::combined);
  combined.threads = 8;  // 2 per processor
  combined.params.combined_spin_limit = 200;
  combined.iterations = 25;
  auto block = combined;
  block.kind = locks::lock_kind::blocking;
  const auto rc = run_cs_workload(combined);
  const auto rb = run_cs_workload(block);
  EXPECT_LT(rb.elapsed.ns, rc.elapsed.ns);
}

TEST(CsWorkload, BlocksHappenOnlyForBlockingCapableLocks) {
  const auto rs = run_cs_workload(fast(locks::lock_kind::spin));
  EXPECT_EQ(rs.blocks, 0u);
  auto bc = fast(locks::lock_kind::blocking);
  bc.cs_length = sim::microseconds(300);
  const auto rb = run_cs_workload(bc);
  EXPECT_GT(rb.blocks, 0u);
}

TEST(CsWorkload, ValidatesConfig) {
  auto c = fast(locks::lock_kind::spin);
  c.processors = 0;
  EXPECT_THROW((void)run_cs_workload(c), std::invalid_argument);
  c = fast(locks::lock_kind::spin);
  c.threads = 0;
  EXPECT_THROW((void)run_cs_workload(c), std::invalid_argument);
}

TEST(CsWorkload, AdaptiveConvergesToSpinWhenUncontended) {
  auto c = fast(locks::lock_kind::adaptive);
  c.threads = 1;
  c.processors = 1;
  const auto r = run_cs_workload(c);
  EXPECT_EQ(r.contended, 0u);
  EXPECT_EQ(r.blocks, 0u);
}

}  // namespace
}  // namespace adx::workload
