#include "ct/runtime.hpp"

#include <gtest/gtest.h>

#include "ct/context.hpp"

namespace adx::ct {
namespace {

sim::machine_config cfg(unsigned nodes = 4) { return sim::machine_config::test_machine(nodes); }

TEST(Runtime, RunsSingleThreadToCompletion) {
  runtime rt(cfg());
  bool ran = false;
  rt.fork(0, [&](context&) -> task<void> {
    ran = true;
    co_return;
  });
  const auto r = rt.run_all();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(rt.state_of(0), thread_state::done);
}

TEST(Runtime, ComputeAdvancesVirtualTime) {
  runtime rt(cfg());
  rt.fork(0, [](context& ctx) -> task<void> {
    co_await ctx.compute(sim::microseconds(100));
    co_await ctx.compute(sim::microseconds(50));
  });
  const auto r = rt.run_all();
  // Startup pays dispatch latency + one switch-in; the trailing
  // exit-dispatch event may add a little more to the final clock reading.
  const double lo = 150.0 + cfg().dispatch_latency.us() + cfg().context_switch.us();
  EXPECT_GE((r.end_time - sim::vtime{}).us(), lo);
  EXPECT_LE((r.end_time - sim::vtime{}).us(),
            lo + cfg().dispatch_latency.us() + cfg().context_switch.us());
}

TEST(Runtime, ForkRejectsBadProcessor) {
  runtime rt(cfg(2));
  EXPECT_THROW(
      rt.fork(5, [](context&) -> task<void> { co_return; }),
      std::out_of_range);
}

TEST(Runtime, ThreadsOnDifferentProcessorsRunConcurrently) {
  runtime rt(cfg());
  rt.fork(0, [](context& ctx) -> task<void> {
    co_await ctx.compute(sim::milliseconds(1));
  });
  rt.fork(1, [](context& ctx) -> task<void> {
    co_await ctx.compute(sim::milliseconds(1));
  });
  const auto r = rt.run_all();
  EXPECT_LT(r.end_time.ms(), 1.5);  // parallel, not 2ms serial
}

TEST(Runtime, ThreadsOnSameProcessorSerialize) {
  runtime rt(cfg());
  sim::vtime end0{}, end1{};
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await ctx.compute(sim::milliseconds(1));
    end0 = ctx.now();
  });
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await ctx.compute(sim::milliseconds(1));
    end1 = ctx.now();
  });
  rt.run_all();
  // Second thread cannot even start until the first finishes (no yields).
  EXPECT_GE(end1.ms(), 2.0);
  EXPECT_LT(end0.ms(), end1.ms());
}

TEST(Runtime, YieldInterleavesSameProcessorThreads) {
  runtime rt(cfg());
  std::vector<int> order;
  for (int id = 0; id < 2; ++id) {
    rt.fork(0, [&order, id](context& ctx) -> task<void> {
      for (int i = 0; i < 3; ++i) {
        order.push_back(id);
        co_await ctx.yield();
      }
    });
  }
  rt.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(Runtime, YieldAloneIsNoOp) {
  runtime rt(cfg());
  rt.fork(0, [](context& ctx) -> task<void> {
    co_await ctx.yield();  // no peer: must not deadlock or switch
    co_await ctx.yield();
  });
  const auto r = rt.run_all();
  EXPECT_TRUE(r.completed);
}

TEST(Runtime, YieldChargesContextSwitch) {
  runtime rt(cfg());
  sim::vtime after{};
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await ctx.yield();
    after = ctx.now();
  });
  rt.fork(0, [](context&) -> task<void> { co_return; });
  rt.run_all();
  EXPECT_GE((after - sim::vtime{}).us(), cfg().context_switch.us());
}

TEST(Runtime, SleepWakesAfterDuration) {
  runtime rt(cfg());
  sim::vtime woke{};
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await ctx.sleep_for(sim::milliseconds(2));
    woke = ctx.now();
  });
  rt.run_all();
  EXPECT_GE(woke.ms(), 2.0);
  EXPECT_LT(woke.ms(), 2.2);
}

TEST(Runtime, SleepReleasesProcessor) {
  runtime rt(cfg());
  sim::vtime peer_done{};
  rt.fork(0, [](context& ctx) -> task<void> {
    co_await ctx.sleep_for(sim::milliseconds(5));
  });
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await ctx.compute(sim::microseconds(100));
    peer_done = ctx.now();
  });
  rt.run_all();
  EXPECT_LT(peer_done.ms(), 1.0);  // ran while the first thread slept
}

TEST(Runtime, BlockUnblockRoundTrip) {
  runtime rt(cfg());
  bool resumed = false;
  const auto sleeper = rt.fork(0, [&](context& ctx) -> task<void> {
    co_await ctx.block();
    resumed = true;
  });
  rt.fork(1, [&, sleeper](context& ctx) -> task<void> {
    co_await ctx.compute(sim::microseconds(500));
    co_await ctx.unblock(sleeper);
  });
  const auto r = rt.run_all();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(resumed);
}

TEST(Runtime, UnblockOnRunningThreadIsLostWakeup) {
  runtime rt(cfg());
  bool woke_flag = false;
  const auto target = rt.fork(0, [&](context& ctx) -> task<void> {
    co_await ctx.compute(sim::milliseconds(2));  // running, not blocked
    woke_flag = true;
  });
  bool wake_result = true;
  rt.fork(1, [&, target](context& ctx) -> task<void> {
    wake_result = co_await ctx.unblock(target);
  });
  rt.run_all();
  EXPECT_FALSE(wake_result);
  EXPECT_TRUE(woke_flag);
}

TEST(Runtime, BlockForTimesOut) {
  runtime rt(cfg());
  bool woken = true;
  sim::vtime t_end{};
  rt.fork(0, [&](context& ctx) -> task<void> {
    woken = co_await ctx.block_for(sim::milliseconds(1));
    t_end = ctx.now();
  });
  rt.run_all();
  EXPECT_FALSE(woken);
  EXPECT_GE(t_end.ms(), 1.0);
}

TEST(Runtime, BlockForWokenEarly) {
  runtime rt(cfg());
  bool woken = false;
  sim::vtime t_end{};
  const auto waiter = rt.fork(0, [&](context& ctx) -> task<void> {
    woken = co_await ctx.block_for(sim::milliseconds(10));
    t_end = ctx.now();
  });
  rt.fork(1, [&, waiter](context& ctx) -> task<void> {
    co_await ctx.compute(sim::microseconds(200));
    co_await ctx.unblock(waiter);
  });
  rt.run_all();
  EXPECT_TRUE(woken);
  EXPECT_LT(t_end.ms(), 2.0);
}

TEST(Runtime, StaleTimeoutDoesNotRewake) {
  // Thread times out, then blocks again; the first timeout's event must not
  // wake the second block.
  runtime rt(cfg());
  int wakes = 0;
  const auto t = rt.fork(0, [&](context& ctx) -> task<void> {
    (void)co_await ctx.block_for(sim::microseconds(100));
    ++wakes;
    co_await ctx.block();  // woken only by the explicit unblock below
    ++wakes;
  });
  rt.fork(1, [&, t](context& ctx) -> task<void> {
    co_await ctx.sleep_for(sim::milliseconds(5));
    co_await ctx.unblock(t);
  });
  const auto r = rt.run_all();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(wakes, 2);
}

TEST(Runtime, JoinWaitsForTarget) {
  runtime rt(cfg());
  sim::vtime join_done{};
  const auto worker = rt.fork(0, [](context& ctx) -> task<void> {
    co_await ctx.compute(sim::milliseconds(3));
  });
  rt.fork(1, [&, worker](context& ctx) -> task<void> {
    co_await ctx.join(worker);
    join_done = ctx.now();
  });
  rt.run_all();
  EXPECT_GE(join_done.ms(), 3.0);
}

TEST(Runtime, JoinOnFinishedThreadReturnsImmediately) {
  runtime rt(cfg());
  const auto worker = rt.fork(0, [](context&) -> task<void> { co_return; });
  bool joined = false;
  rt.fork(1, [&, worker](context& ctx) -> task<void> {
    co_await ctx.compute(sim::milliseconds(1));  // let worker finish first
    co_await ctx.join(worker);
    joined = true;
  });
  const auto r = rt.run_all();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(joined);
}

TEST(Runtime, DeadlockDetected) {
  runtime rt(cfg());
  rt.fork(0, [](context& ctx) -> task<void> { co_await ctx.block(); });
  EXPECT_THROW(rt.run_all(), deadlock_error);
}

TEST(Runtime, DeadlockReportListsStuckThreads) {
  runtime rt(cfg());
  rt.fork(0, [](context& ctx) -> task<void> { co_await ctx.block(); });
  rt.fork(1, [](context& ctx) -> task<void> { co_await ctx.block(); });
  try {
    rt.run_all();
    FAIL() << "expected deadlock_error";
  } catch (const deadlock_error& e) {
    EXPECT_EQ(e.stuck().size(), 2u);
  }
}

TEST(Runtime, ThreadExceptionRethrownFromRunAll) {
  runtime rt(cfg());
  rt.fork(0, [](context&) -> task<void> {
    throw std::logic_error("inside thread");
    co_return;
  });
  EXPECT_THROW(rt.run_all(), std::logic_error);
}

TEST(Runtime, EventBudgetGuard) {
  runtime rt(cfg());
  rt.fork(0, [](context& ctx) -> task<void> {
    for (;;) co_await ctx.compute(sim::microseconds(1));
  });
  EXPECT_THROW(rt.run_all(1000), simulation_limit_error);
}

TEST(Runtime, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    runtime rt(cfg());
    for (unsigned p = 0; p < 4; ++p) {
      rt.fork(p, [](context& ctx) -> task<void> {
        for (int i = 0; i < 20; ++i) {
          co_await ctx.compute(sim::microseconds(7));
          co_await ctx.yield();
        }
      });
      rt.fork(p, [](context& ctx) -> task<void> {
        for (int i = 0; i < 20; ++i) {
          co_await ctx.sleep_for(sim::microseconds(13));
        }
      });
    }
    return rt.run_all().end_time;
  };
  EXPECT_EQ(run_once().ns, run_once().ns);
}

TEST(Runtime, PriorityVisibleThroughContext) {
  runtime rt(cfg());
  rt.fork(
      0,
      [](context& ctx) -> task<void> {
        EXPECT_EQ(ctx.priority(), 7);
        ctx.set_priority(3);
        EXPECT_EQ(ctx.priority(), 3);
        co_return;
      },
      /*priority=*/7);
  rt.run_all();
}

TEST(Runtime, CurrentOnTracksRunningThread) {
  runtime rt(cfg());
  rt.fork(0, [&](context& ctx) -> task<void> {
    EXPECT_EQ(rt.current_on(0), ctx.self());
    co_return;
  });
  rt.run_all();
  EXPECT_EQ(rt.current_on(0), invalid_thread);
}

}  // namespace
}  // namespace adx::ct
