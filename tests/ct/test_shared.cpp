#include "ct/shared.hpp"

#include <gtest/gtest.h>

#include "ct/context.hpp"
#include "ct/runtime.hpp"

namespace adx::ct {
namespace {

sim::machine_config cfg() { return sim::machine_config::test_machine(4); }

TEST(Svar, ReadReturnsStoredValue) {
  runtime rt(cfg());
  svar<std::uint64_t> v(0, 77);
  std::uint64_t got = 0;
  rt.fork(0, [&](context& ctx) -> task<void> { got = co_await ctx.read(v); });
  rt.run_all();
  EXPECT_EQ(got, 77u);
}

TEST(Svar, WriteUpdatesValue) {
  runtime rt(cfg());
  svar<std::uint64_t> v(0, 0);
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await ctx.write(v, std::uint64_t{5});
  });
  rt.run_all();
  EXPECT_EQ(v.raw(), 5u);
}

TEST(Svar, FetchOrReturnsOldValue) {
  runtime rt(cfg());
  svar<std::uint64_t> v(0, 0b0010);
  std::uint64_t old = ~0ull;
  rt.fork(0, [&](context& ctx) -> task<void> {
    old = co_await ctx.fetch_or(v, std::uint64_t{0b0001});
  });
  rt.run_all();
  EXPECT_EQ(old, 0b0010u);
  EXPECT_EQ(v.raw(), 0b0011u);
}

TEST(Svar, FetchAddAccumulates) {
  runtime rt(cfg());
  svar<std::int64_t> v(0, 10);
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await ctx.fetch_add(v, std::int64_t{5});
    co_await ctx.fetch_add(v, std::int64_t{-3});
  });
  rt.run_all();
  EXPECT_EQ(v.raw(), 12);
}

TEST(Svar, ExchangeSwapsValue) {
  runtime rt(cfg());
  svar<std::uint64_t> v(0, 1);
  std::uint64_t old = 0;
  rt.fork(0, [&](context& ctx) -> task<void> {
    old = co_await ctx.exchange(v, std::uint64_t{9});
  });
  rt.run_all();
  EXPECT_EQ(old, 1u);
  EXPECT_EQ(v.raw(), 9u);
}

TEST(Svar, CasSucceedsOnMatch) {
  runtime rt(cfg());
  svar<std::uint64_t> v(0, 4);
  std::uint64_t prev = 0;
  rt.fork(0, [&](context& ctx) -> task<void> {
    prev = co_await ctx.cas(v, std::uint64_t{4}, std::uint64_t{8});
  });
  rt.run_all();
  EXPECT_EQ(prev, 4u);
  EXPECT_EQ(v.raw(), 8u);
}

TEST(Svar, CasFailsOnMismatch) {
  runtime rt(cfg());
  svar<std::uint64_t> v(0, 4);
  std::uint64_t prev = 0;
  rt.fork(0, [&](context& ctx) -> task<void> {
    prev = co_await ctx.cas(v, std::uint64_t{5}, std::uint64_t{8});
  });
  rt.run_all();
  EXPECT_EQ(prev, 4u);
  EXPECT_EQ(v.raw(), 4u);  // unchanged
}

TEST(Svar, AccessesHitTheLedger) {
  runtime rt(cfg());
  svar<std::uint64_t> local(0, 0);
  svar<std::uint64_t> remote(2, 0);
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await ctx.read(local);
    co_await ctx.write(remote, std::uint64_t{1});
    co_await ctx.fetch_or(remote, std::uint64_t{2});
  });
  rt.run_all();
  const auto& c = rt.mach().counts();
  EXPECT_EQ(c.local_reads, 1u);
  EXPECT_EQ(c.remote_writes, 1u);
  EXPECT_EQ(c.remote_rmws, 1u);
}

TEST(Svar, RemoteAccessSlowerThanLocal) {
  const auto once = [](sim::node_id home) {
    runtime rt(cfg());
    svar<std::uint64_t> v(home, 0);
    rt.fork(0, [&](context& ctx) -> task<void> {
      for (int i = 0; i < 100; ++i) co_await ctx.read(v);
    });
    return rt.run_all().end_time;
  };
  EXPECT_GT(once(3).ns, once(0).ns);
}

TEST(Svar, RmwIsAtomicUnderContention) {
  runtime rt(cfg());
  svar<std::int64_t> counter(0, 0);
  for (unsigned p = 0; p < 4; ++p) {
    rt.fork(p, [&](context& ctx) -> task<void> {
      for (int i = 0; i < 250; ++i) {
        co_await ctx.fetch_add(counter, std::int64_t{1});
      }
    });
  }
  rt.run_all();
  EXPECT_EQ(counter.raw(), 1000);
}

TEST(Svar, TouchChargesBulkAccesses) {
  runtime rt(cfg());
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await ctx.touch(1, sim::access_kind::write, 25);
  });
  rt.run_all();
  EXPECT_EQ(rt.mach().counts().remote_writes, 25u);
}

}  // namespace
}  // namespace adx::ct
