#include "ct/sync.hpp"

#include <gtest/gtest.h>

namespace adx::ct {
namespace {

sim::machine_config cfg() { return sim::machine_config::test_machine(4); }

TEST(WaitQueue, NotifyOneWakesInFifoOrder) {
  runtime rt(cfg());
  wait_queue q;
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    rt.fork(0, [&, i](context& ctx) -> task<void> {
      co_await q.wait(ctx);
      woke.push_back(i);
    });
  }
  rt.fork(1, [&](context& ctx) -> task<void> {
    co_await ctx.sleep_for(sim::milliseconds(1));
    for (int i = 0; i < 3; ++i) {
      co_await q.notify_one(ctx);
      co_await ctx.sleep_for(sim::microseconds(200));
    }
  });
  rt.run_all();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
}

TEST(WaitQueue, NotifyAllWakesEveryone) {
  runtime rt(cfg());
  wait_queue q;
  int woke = 0;
  for (unsigned p = 0; p < 3; ++p) {
    rt.fork(p, [&](context& ctx) -> task<void> {
      co_await q.wait(ctx);
      ++woke;
    });
  }
  rt.fork(3, [&](context& ctx) -> task<void> {
    co_await ctx.sleep_for(sim::milliseconds(1));
    co_await q.notify_all(ctx);
  });
  rt.run_all();
  EXPECT_EQ(woke, 3);
  EXPECT_TRUE(q.empty());
}

TEST(WaitQueue, NotifyOnEmptyIsNoOp) {
  runtime rt(cfg());
  wait_queue q;
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await q.notify_one(ctx);
    co_await q.notify_all(ctx);
  });
  EXPECT_TRUE(rt.run_all().completed);
}

TEST(Semaphore, InitialCountAdmitsWithoutBlocking) {
  runtime rt(cfg());
  semaphore sem(2);
  int admitted = 0;
  for (unsigned p = 0; p < 2; ++p) {
    rt.fork(p, [&](context& ctx) -> task<void> {
      co_await sem.acquire(ctx);
      ++admitted;
    });
  }
  rt.run_all();
  EXPECT_EQ(admitted, 2);
  EXPECT_EQ(sem.count(), 0);
}

TEST(Semaphore, BlocksWhenExhausted) {
  runtime rt(cfg());
  semaphore sem(1);
  std::vector<int> order;
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await sem.acquire(ctx);
    order.push_back(1);
    co_await ctx.compute(sim::milliseconds(1));
    co_await sem.release(ctx);
  });
  rt.fork(1, [&](context& ctx) -> task<void> {
    co_await ctx.compute(sim::microseconds(10));
    co_await sem.acquire(ctx);
    order.push_back(2);
    co_await sem.release(ctx);
  });
  rt.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Semaphore, ReleaseWithoutWaitersIncrementsCount) {
  runtime rt(cfg());
  semaphore sem(0);
  rt.fork(0, [&](context& ctx) -> task<void> {
    co_await sem.release(ctx);
    co_await sem.release(ctx);
  });
  rt.run_all();
  EXPECT_EQ(sem.count(), 2);
}

TEST(Barrier, AllPartiesProceedTogether) {
  runtime rt(cfg());
  barrier b(3);
  std::vector<sim::vtime> crossed(3);
  for (unsigned p = 0; p < 3; ++p) {
    rt.fork(p, [&, p](context& ctx) -> task<void> {
      co_await ctx.compute(sim::microseconds(100 * (p + 1)));
      co_await b.arrive_and_wait(ctx);
      crossed[p] = ctx.now();
    });
  }
  rt.run_all();
  // Nobody crosses before the slowest arrives (300us of compute).
  for (const auto& t : crossed) EXPECT_GE(t.us(), 300.0);
}

TEST(Barrier, IsCyclic) {
  runtime rt(cfg());
  barrier b(2);
  int rounds_done = 0;
  for (unsigned p = 0; p < 2; ++p) {
    rt.fork(p, [&](context& ctx) -> task<void> {
      for (int r = 0; r < 3; ++r) {
        co_await b.arrive_and_wait(ctx);
      }
      ++rounds_done;
    });
  }
  EXPECT_TRUE(rt.run_all().completed);
  EXPECT_EQ(rounds_done, 2);
}

}  // namespace
}  // namespace adx::ct
