#include "ct/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace adx::ct {
namespace {

task<int> answer() { co_return 42; }

task<int> add(int a, int b) { co_return a + b; }

task<int> nested() {
  const int x = co_await answer();
  const int y = co_await add(x, 8);
  co_return y;
}

task<void> boom() {
  throw std::runtime_error("boom");
  co_return;  // unreachable; marks this as a coroutine
}

task<int> catch_and_translate() {
  try {
    co_await boom();
  } catch (const std::runtime_error&) {
    co_return -1;
  }
  co_return 0;
}

/// Driver coroutine that stores its result through an out-pointer; resumed
/// manually since these tests run without a runtime.
template <typename T>
task<void> drive(task<T> t, T* out) {
  *out = co_await std::move(t);
}

TEST(Task, DefaultConstructedIsInvalid) {
  task<int> t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.done());
}

TEST(Task, LazyUntilAwaited) {
  bool ran = false;
  auto make = [&]() -> task<void> {
    ran = true;
    co_return;
  };
  auto t = make();
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(ran);  // not started yet
  t.handle().resume();
  EXPECT_TRUE(ran);
}

TEST(Task, ReturnsValueThroughAwait) {
  int out = 0;
  auto d = drive(answer(), &out);
  d.handle().resume();
  EXPECT_TRUE(d.done());
  EXPECT_EQ(out, 42);
}

TEST(Task, NestedAwaitsChain) {
  int out = 0;
  auto d = drive(nested(), &out);
  d.handle().resume();
  EXPECT_EQ(out, 50);
}

TEST(Task, ExceptionsPropagateToAwaiter) {
  int out = 0;
  auto d = drive(catch_and_translate(), &out);
  d.handle().resume();
  EXPECT_EQ(out, -1);
}

TEST(Task, MoveTransfersOwnership) {
  auto t = answer();
  auto u = std::move(t);
  EXPECT_FALSE(t.valid());  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_TRUE(u.valid());
}

TEST(Task, MoveAssignDestroysOld) {
  auto t = answer();
  t = add(1, 2);  // old frame destroyed, no leak (ASAN would catch)
  EXPECT_TRUE(t.valid());
}

TEST(Task, DeepNestingDoesNotOverflow) {
  // Symmetric transfer keeps the resume chain flat.
  struct rec {
    static task<int> down(int n) {
      if (n == 0) co_return 0;
      co_return 1 + co_await down(n - 1);
    }
  };
  int out = 0;
  auto d = drive(rec::down(2000), &out);
  d.handle().resume();
  EXPECT_EQ(out, 2000);
}

}  // namespace
}  // namespace adx::ct
