#include "ct/federation.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "ct/context.hpp"
#include "locks/factory.hpp"
#include "sim/event_domain.hpp"

namespace adx::ct {
namespace {

sim::machine_config fed_machine(unsigned groups = 3, unsigned per_group = 4) {
  auto cfg = sim::machine_config::hierarchical_numa(groups, per_group);
  cfg.context_switch = sim::microseconds(5);
  cfg.dispatch_latency = sim::microseconds(1);
  return cfg;
}

TEST(Federation, RejectsButterflyWireModel) {
  auto cfg = fed_machine();
  cfg.wire_model = sim::interconnect_model::butterfly;
  auto dom = sim::make_event_domain(cfg);
  EXPECT_THROW(federation(cfg, *dom), std::invalid_argument);
}

TEST(Federation, RejectsPlaceCountMismatch) {
  auto cfg = fed_machine(3, 4);
  auto dom = sim::make_event_domain(fed_machine(2, 4));
  EXPECT_THROW(federation(cfg, *dom), std::invalid_argument);
}

TEST(Federation, GroupConfigTrimsNodesAndFoldsSeed) {
  auto cfg = fed_machine(3, 4);
  cfg.nodes = 10;  // last group short: 4 + 4 + 2
  const auto g0 = federation::group_config(cfg, 0);
  const auto g2 = federation::group_config(cfg, 2);
  EXPECT_EQ(g0.nodes, 4u);
  EXPECT_EQ(g2.nodes, 2u);
  EXPECT_NE(g0.seed, cfg.seed);
  EXPECT_NE(g0.seed, g2.seed);
  // The trimmed machine is all one group.
  EXPECT_EQ(g0.group_of(3), 0u);
  EXPECT_EQ(g2.group_of(1), 0u);
}

TEST(Federation, ForkMapsGlobalNodesToGroupLocalProcessors) {
  const auto cfg = fed_machine(3, 4);
  auto dom = sim::make_event_domain(cfg);
  federation fed(cfg, *dom);
  ASSERT_EQ(fed.groups(), 3u);

  std::vector<unsigned> ran_on(3, ~0u);
  for (unsigned g = 0; g < 3; ++g) {
    const sim::node_id node = g * 4 + 2;  // third processor of each group
    const auto t = fed.fork(node, [&ran_on, g](context& ctx) -> task<void> {
      ran_on[g] = ctx.proc();
      co_return;
    });
    EXPECT_EQ(t.group, g);
  }
  EXPECT_THROW(fed.fork(12, [](context&) -> task<void> { co_return; }),
               std::out_of_range);

  const auto r = fed.run_all();
  EXPECT_TRUE(r.completed);
  for (unsigned g = 0; g < 3; ++g) EXPECT_EQ(ran_on[g], 2u);
}

TEST(Federation, PostUnblockLandsExactlyAtTheLookaheadHorizon) {
  const auto cfg = fed_machine(2, 4);
  auto dom = sim::make_event_domain(cfg);
  federation fed(cfg, *dom);
  const auto L = dom->lookahead();

  sim::vtime blocked_at{};
  sim::vtime posted_at{};
  sim::vtime woken_at{};

  // A thread on group 1 blocks; a thread on group 0 wakes it cross-shard.
  const auto sleeper = fed.fork(4, [&](context& ctx) -> task<void> {
    blocked_at = ctx.now();
    co_await ctx.block();
    woken_at = ctx.now();
  });
  fed.fork(0, [&, sleeper](context& ctx) -> task<void> {
    co_await ctx.sleep_for(sim::microseconds(50));
    posted_at = ctx.now();
    fed.post_unblock(0, sleeper);
    co_return;
  });

  const auto r = fed.run_all();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(fed.posts(), 1u);
  // The wakeup event lands at exactly posted_at + L; the woken thread then
  // pays its own dispatch/context-switch before running.
  EXPECT_GE(woken_at, posted_at + L);
  EXPECT_LT(blocked_at, posted_at + L);
  EXPECT_EQ(dom->stats().cross_sends, 1u);
}

TEST(Federation, CrossPlaceLockOperationThrows) {
  const auto cfg = fed_machine(2, 4);
  auto dom = sim::make_event_domain(cfg);
  federation fed(cfg, *dom);

  auto lk = locks::make_lock(locks::lock_kind::spin, 0,
                             locks::lock_cost_model::butterfly_cthreads(), {});
  lk->bind_place(0);

  // A group-1 thread touching a place-0 lock violates the shard discipline.
  fed.fork(4, [&lk](context& ctx) -> task<void> {
    co_await lk->lock(ctx);
    co_await lk->unlock(ctx);
  });
  EXPECT_THROW(fed.run_all(), std::logic_error);

  // The same lock is fine from its own place.
  auto dom2 = sim::make_event_domain(cfg);
  federation fed2(cfg, *dom2);
  auto lk2 = locks::make_lock(locks::lock_kind::spin, 0,
                              locks::lock_cost_model::butterfly_cthreads(), {});
  lk2->bind_place(0);
  fed2.fork(0, [&lk2](context& ctx) -> task<void> {
    co_await lk2->lock(ctx);
    co_await lk2->unlock(ctx);
  });
  EXPECT_TRUE(fed2.run_all().completed);
  EXPECT_EQ(lk2->stats().acquisitions(), 1u);
}

TEST(Federation, DeadlockReportsStuckThreadsAcrossGroups) {
  const auto cfg = fed_machine(2, 4);
  auto dom = sim::make_event_domain(cfg);
  federation fed(cfg, *dom);
  fed.fork(0, [](context& ctx) -> task<void> { co_await ctx.block(); });
  fed.fork(5, [](context& ctx) -> task<void> { co_await ctx.block(); });
  EXPECT_THROW(fed.run_all(), deadlock_error);
  const auto r = fed.run(nullptr);
  EXPECT_FALSE(r.completed);
  ASSERT_EQ(r.stuck.size(), 2u);
  EXPECT_EQ(r.stuck[0].group, 0u);
  EXPECT_EQ(r.stuck[1].group, 1u);
}

/// End-to-end determinism: a federated token ring (each group's thread
/// blocks, is woken cross-shard, then wakes the next group) must finish at
/// the same virtual time with the same counters at every shard/worker count.
struct ring_observables {
  sim::vtime end{};
  std::uint64_t posts{0};
  std::uint64_t dispatches{0};
  sim::domain_stats stats;

  friend bool operator==(const ring_observables&, const ring_observables&) = default;
};

ring_observables run_ring(unsigned shards, unsigned workers) {
  const auto cfg = fed_machine(3, 4);
  auto dom = sim::make_event_domain(cfg, {.shards = shards, .seed = 123});
  federation fed(cfg, *dom);

  std::vector<federation::fed_thread> ring(3);
  for (unsigned g = 0; g < 3; ++g) {
    ring[g] = fed.fork(g * 4, [&fed, &ring, g](context& ctx) -> task<void> {
      for (int lap = 0; lap < 5; ++lap) {
        co_await ctx.block();
        co_await ctx.compute(sim::microseconds(20));
        fed.post_unblock(g, ring[(g + 1) % 3]);
      }
    });
  }
  // Kick the ring from a group-0 thread that sleeps past every ring
  // thread's first block (a host-side post at time L could land while
  // ring[0] is still dispatching and be lost as a pre-block wakeup).
  fed.fork(1, [&fed, &ring](context& ctx) -> task<void> {
    co_await ctx.sleep_for(sim::microseconds(200));
    fed.post_unblock(0, ring[0]);
  });

  exec::job_executor ex(workers);
  const auto r = fed.run_all(workers > 1 ? &ex : nullptr);
  EXPECT_TRUE(r.completed);
  return {r.end_time, fed.posts(), fed.total_dispatches(), dom->stats()};
}

TEST(Federation, TokenRingBitIdenticalAcrossShardAndWorkerCounts) {
  const auto ref = run_ring(1, 1);
  EXPECT_EQ(ref.posts, 16u);  // 1 kick + 15 laps
  for (unsigned shards : {2u, 3u}) {
    for (unsigned workers : {1u, 4u}) {
      EXPECT_EQ(run_ring(shards, workers), ref)
          << "shards=" << shards << " workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace adx::ct
