#include "policy/sensors.hpp"

#include <gtest/gtest.h>

#include "locks/reconfigurable_lock.hpp"

namespace adx::policy {
namespace {

locks::lock_cost_model cost() { return locks::lock_cost_model::fast_test(); }

TEST(LockSensors, CatalogueListsFourSensors) {
  const auto names = all_sensor_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "no-of-waiting-threads");
  EXPECT_EQ(names[1], "lock-hold-time");
  EXPECT_EQ(names[2], "handoff-latency");
  EXPECT_EQ(names[3], "acquire-rate");
}

TEST(LockSensors, EveryCatalogueNameConstructs) {
  locks::reconfigurable_lock lk(0, cost());
  for (const auto name : all_sensor_names()) {
    auto s = make_lock_sensor(name, lk, 3);
    EXPECT_EQ(s.name(), name);
    EXPECT_EQ(s.period(), 3u);
  }
}

TEST(LockSensors, UnknownNameListsTheValidSensors) {
  locks::reconfigurable_lock lk(0, cost());
  try {
    (void)make_lock_sensor("cpu-temperature", lk, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cpu-temperature"), std::string::npos);
    for (const auto name : all_sensor_names()) {
      EXPECT_NE(msg.find(std::string(name)), std::string::npos) << name;
    }
  }
}

TEST(LockSensors, WaitingThreadsReadsLiveCount) {
  locks::reconfigurable_lock lk(0, cost());
  auto s = make_lock_sensor("no-of-waiting-threads", lk, 1);
  const auto obs = s.trigger();
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->value, 0);
}

TEST(LockSensors, HoldTimeReadsLastCompletedHold) {
  locks::reconfigurable_lock lk(0, cost());
  lk.stats().on_acquired(sim::vtime{1'000}, sim::vdur{0}, 1);
  lk.stats().on_release(sim::vtime{251'000}, 1);  // held 250us
  auto s = make_lock_sensor("lock-hold-time", lk, 1);
  const auto obs = s.trigger();
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->value, 250);
}

TEST(LockSensors, HandoffLatencyReadsReleaseToAcquireGap) {
  locks::reconfigurable_lock lk(0, cost());
  auto s = make_lock_sensor("handoff-latency", lk, 1);
  EXPECT_EQ(s.trigger()->value, 0);  // no handoff observed yet
  lk.stats().on_acquired(sim::vtime{1'000}, sim::vdur{0}, 1);
  lk.stats().on_release(sim::vtime{2'000}, 1);
  lk.stats().on_acquired(sim::vtime{42'000}, sim::vdur{40'000}, 2);  // 40us later
  EXPECT_EQ(s.trigger()->value, 40);
}

TEST(LockSensors, AcquireRateIsDeltaBetweenSamples) {
  locks::reconfigurable_lock lk(0, cost());
  auto s = make_lock_sensor("acquire-rate", lk, 1);
  EXPECT_EQ(s.trigger()->value, 0);
  for (int i = 0; i < 5; ++i) {
    lk.stats().on_acquired(sim::vtime{}, sim::vdur{}, 1);
  }
  EXPECT_EQ(s.trigger()->value, 5);
  EXPECT_EQ(s.trigger()->value, 0);  // no new acquisitions since last sample
}

}  // namespace
}  // namespace adx::policy
