#include "policy/engine.hpp"

#include <gtest/gtest.h>

#include "policy/registry.hpp"
#include "workload/cs_workload.hpp"

namespace adx::policy {
namespace {

using locks::waiting_policy;

locks::lock_cost_model cost() { return locks::lock_cost_model::fast_test(); }

sensor_spec spec_with(aggregation agg, double alpha = 0.25, std::uint64_t window = 8) {
  sensor_spec s;
  s.agg = agg;
  s.ewma_alpha = alpha;
  s.window = window;
  return s;
}

// ------------------------------------------------------------- aggregators

TEST(Aggregator, LastValuePassesThrough) {
  aggregator a(spec_with(aggregation::last_value));
  EXPECT_EQ(a.feed(3), 3);
  EXPECT_EQ(a.feed(7), 7);
  EXPECT_EQ(a.feed(0), 0);
}

TEST(Aggregator, EwmaPrimesOnFirstSampleThenSmooths) {
  aggregator a(spec_with(aggregation::ewma, 0.5));
  EXPECT_EQ(a.feed(100), 100);  // primed, not pulled toward zero
  EXPECT_EQ(a.feed(0), 50);     // 0.5*0 + 0.5*100
  EXPECT_EQ(a.feed(0), 25);
}

TEST(Aggregator, MaxInWindowTracksAndExpiresSpikes) {
  aggregator a(spec_with(aggregation::max_in_window, 0.25, 2));
  EXPECT_EQ(a.feed(9), 9);
  EXPECT_EQ(a.feed(1), 9);  // spike still inside the 2-sample window
  EXPECT_EQ(a.feed(1), 1);  // spike aged out
}

// ------------------------------------------------------------- combinators

/// A core that always wants the configuration it was told to want.
class fixed_core final : public decision_core {
 public:
  explicit fixed_core(std::optional<waiting_policy> want) : want_(want) {}
  [[nodiscard]] std::string_view name() const override { return "fixed"; }
  std::optional<waiting_policy> decide(const core::observation&, std::int64_t,
                                       const waiting_policy&) override {
    ++calls;
    return want_;
  }
  void notify_applied() override { ++applied; }

  std::optional<waiting_policy> want_;
  int calls{0};
  int applied{0};
};

const core::observation kObs{"no-of-waiting-threads", 1};

TEST(Hysteresis, PassesOnlyAfterKConsecutiveIdenticalDecisions) {
  auto inner = std::make_unique<fixed_core>(waiting_policy::pure_sleep());
  auto* raw = inner.get();
  auto h = wrap_hysteresis(std::move(inner), 3);
  EXPECT_EQ(h->decide(kObs, 1, {}), std::nullopt);
  EXPECT_EQ(h->decide(kObs, 1, {}), std::nullopt);
  EXPECT_EQ(h->decide(kObs, 1, {}), waiting_policy::pure_sleep());
  // The streak resets after a pass-through.
  EXPECT_EQ(h->decide(kObs, 1, {}), std::nullopt);
  // notify_applied reaches the inner core.
  h->notify_applied();
  EXPECT_EQ(raw->applied, 1);
}

TEST(Hysteresis, ChangedDesireRestartsTheStreak) {
  auto inner = std::make_unique<fixed_core>(waiting_policy::mixed(10));
  auto* raw = inner.get();
  auto h = wrap_hysteresis(std::move(inner), 2);
  EXPECT_EQ(h->decide(kObs, 1, {}), std::nullopt);
  raw->want_ = waiting_policy::mixed(20);  // inner changes its mind
  EXPECT_EQ(h->decide(kObs, 1, {}), std::nullopt);
  EXPECT_EQ(h->decide(kObs, 1, {}), waiting_policy::mixed(20));
}

TEST(Deadband, SuppressesSmallSameShapeSpinDeltas) {
  auto d = wrap_deadband(std::make_unique<fixed_core>(waiting_policy::mixed(14)), 8);
  // Current mixed(10): |14-10| = 4 < 8 — suppressed.
  EXPECT_EQ(d->decide(kObs, 1, waiting_policy::mixed(10)), std::nullopt);
  // Current mixed(2): |14-2| = 12 >= 8 — passes.
  EXPECT_EQ(d->decide(kObs, 1, waiting_policy::mixed(2)), waiting_policy::mixed(14));
}

TEST(Deadband, ShapeChangesAlwaysPass) {
  auto d = wrap_deadband(std::make_unique<fixed_core>(waiting_policy::pure_sleep()), 1000);
  EXPECT_EQ(d->decide(kObs, 1, waiting_policy::mixed(10)),
            waiting_policy::pure_sleep());
}

TEST(Cooldown, SuppressesDecisionsAfterAnAppliedPsi) {
  auto c = wrap_cooldown(std::make_unique<fixed_core>(waiting_policy::pure_sleep()), 2);
  EXPECT_EQ(c->decide(kObs, 1, {}), waiting_policy::pure_sleep());
  c->notify_applied();
  EXPECT_EQ(c->decide(kObs, 1, {}), std::nullopt);
  EXPECT_EQ(c->decide(kObs, 1, {}), std::nullopt);
  EXPECT_EQ(c->decide(kObs, 1, {}), waiting_policy::pure_sleep());
}

// ------------------------------------------------------------------ engine

TEST(Engine, AppliesDecisionsAndRecordsThem) {
  locks::reconfigurable_lock lk(0, cost(), waiting_policy::mixed(30));
  sensor_spec waiting;
  engine eng(lk, "fixed", std::make_unique<fixed_core>(waiting_policy::pure_sleep()),
             {waiting});
  eng.observe({"no-of-waiting-threads", 6});
  EXPECT_TRUE(lk.current_policy().is_pure_sleep());
  EXPECT_EQ(eng.policy_name(), "fixed");
  EXPECT_EQ(eng.decisions(), 1u);
  EXPECT_EQ(eng.last_decision().sensor_value, 6);
  EXPECT_EQ(eng.last_decision().applied, waiting_policy::pure_sleep());
  EXPECT_EQ(eng.last_decision().sensors, "no-of-waiting-threads=6");
}

TEST(Engine, SkipsNoopDecisions) {
  locks::reconfigurable_lock lk(0, cost(), waiting_policy::pure_sleep());
  engine eng(lk, "fixed", std::make_unique<fixed_core>(waiting_policy::pure_sleep()),
             {sensor_spec{}});
  eng.observe({"no-of-waiting-threads", 2});
  EXPECT_EQ(eng.decisions(), 0u);  // desired == current: no Ψ, no record
}

TEST(Engine, AggregatesPerSensorBeforeDeciding) {
  locks::reconfigurable_lock lk(0, cost(), waiting_policy::mixed(30));
  auto spec = spec_with(aggregation::max_in_window, 0.25, 4);
  spec.name = "no-of-waiting-threads";
  auto core = std::make_unique<fixed_core>(std::nullopt);
  auto* raw = core.get();
  engine eng(lk, "fixed", std::move(core), {spec});
  eng.observe({"no-of-waiting-threads", 9});
  eng.observe({"no-of-waiting-threads", 1});
  EXPECT_EQ(raw->calls, 2);
  // Engine folded the window max; the last sensor vector would report 9.
  eng.observe({"no-of-waiting-threads", 2});
  EXPECT_EQ(raw->calls, 3);
}

// The registry-built simple-adapt must be behaviorally identical to the
// lock's built-in loop: same decisions, same costs, same elapsed virtual
// time on an identical workload.
TEST(Engine, RegistryBuiltSimpleAdaptMatchesBuiltinBitExactly) {
  const auto run = [](bool via_engine) {
    workload::cs_config c;
    c.processors = 4;
    c.threads = 8;
    c.iterations = 40;
    c.cs_length = sim::microseconds(80);
    c.think_time = sim::microseconds(150);
    c.kind = locks::lock_kind::adaptive;
    c.cost = locks::lock_cost_model::fast_test();
    c.machine = sim::machine_config::test_machine(4);
    if (via_engine) {
      // Same policy, same single sensor at the same period — but the spec is
      // non-default, so the factory routes it through the policy engine.
      sensor_spec waiting;
      waiting.period = c.params.adapt.sample_period;
      c.params.policy = policy_spec{}.with_sensor(waiting);
    }
    return run_cs_workload(c);
  };
  const auto builtin = run(false);
  const auto engine_built = run(true);
  EXPECT_EQ(builtin.elapsed.ns, engine_built.elapsed.ns);
  EXPECT_EQ(builtin.acquisitions, engine_built.acquisitions);
  EXPECT_EQ(builtin.contended, engine_built.contended);
  EXPECT_EQ(builtin.blocks, engine_built.blocks);
}

}  // namespace
}  // namespace adx::policy
