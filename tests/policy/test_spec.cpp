#include "policy/spec.hpp"

#include <gtest/gtest.h>

#include "policy/registry.hpp"

namespace adx::policy {
namespace {

TEST(PolicySpec, DefaultIsSimpleAdapt) {
  policy_spec s;
  EXPECT_EQ(s.name, "simple-adapt");
  EXPECT_TRUE(s.is_default());
  EXPECT_TRUE(s.params.empty());
  EXPECT_TRUE(s.sensors.empty());
  EXPECT_TRUE(s.wrappers.empty());
}

TEST(PolicySpec, AnyDeviationIsNotDefault) {
  EXPECT_FALSE(policy_spec{}.with_name("break-even").is_default());
  EXPECT_FALSE(policy_spec{}.with_param("spin_cap", 64).is_default());
  EXPECT_FALSE(policy_spec{}.with_sensor({}).is_default());
  EXPECT_FALSE(policy_spec{}.with_hysteresis().is_default());
}

TEST(PolicySpec, BuilderComposes) {
  sensor_spec hold;
  hold.name = "lock-hold-time";
  hold.period = 4;
  hold.agg = aggregation::ewma;
  hold.ewma_alpha = 0.5;
  const auto s = policy_spec{}
                     .with_name("break-even")
                     .with_param("spin_cap", 128)
                     .with_sensor(hold)
                     .with_hysteresis(3)
                     .with_cooldown(5);
  EXPECT_EQ(s.name, "break-even");
  EXPECT_EQ(s.params.at("spin_cap"), 128.0);
  ASSERT_EQ(s.sensors.size(), 1u);
  EXPECT_EQ(s.sensors[0].agg, aggregation::ewma);
  ASSERT_EQ(s.wrappers.size(), 2u);
  EXPECT_EQ(s.wrappers[0].kind, "hysteresis");
  EXPECT_EQ(s.wrappers[0].confirm, 3u);
  EXPECT_EQ(s.wrappers[1].kind, "cooldown");
  EXPECT_EQ(s.wrappers[1].observations, 5u);
}

TEST(PolicySpec, JsonRoundTripDefault) {
  const policy_spec s;
  EXPECT_EQ(policy_spec::from_json(s.to_json()), s);
}

TEST(PolicySpec, JsonRoundTripEveryRegisteredPolicy) {
  for (const auto name : all_policy_names()) {
    const auto s = default_spec(name);
    EXPECT_EQ(policy_spec::from_json(s.to_json()), s) << name;
  }
}

TEST(PolicySpec, JsonRoundTripNestedCombinatorsAndParams) {
  sensor_spec wmax;
  wmax.name = "no-of-waiting-threads";
  wmax.period = 1;
  wmax.agg = aggregation::max_in_window;
  wmax.window = 16;
  const auto s = policy_spec{}
                     .with_name("multi-sensor")
                     .with_param("waiting_threshold", 3)
                     .with_param("spin_budget_us", 93.5)
                     .with_sensor(wmax)
                     .with_hysteresis(2)
                     .with_deadband(12)
                     .with_cooldown(7);
  const auto back = policy_spec::from_json(s.to_json());
  EXPECT_EQ(back, s);
  // Double params survive exactly (shortest round-trip formatting).
  EXPECT_EQ(back.params.at("spin_budget_us"), 93.5);
}

TEST(PolicySpec, AggregationNamesRoundTrip) {
  for (const auto a : {aggregation::last_value, aggregation::ewma,
                       aggregation::max_in_window}) {
    EXPECT_EQ(parse_aggregation(to_string(a)), a);
  }
  EXPECT_THROW((void)parse_aggregation("mean"), std::invalid_argument);
}

TEST(PolicySpec, RejectsUnknownWrapperKind) {
  try {
    (void)policy_spec::from_json(
        R"({"name":"simple-adapt","wrappers":[{"kind":"bogus"}]})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    EXPECT_NE(msg.find("hysteresis"), std::string::npos);
    EXPECT_NE(msg.find("deadband"), std::string::npos);
    EXPECT_NE(msg.find("cooldown"), std::string::npos);
  }
}

TEST(PolicySpec, MissingKeysKeepDefaults) {
  const auto s = policy_spec::from_json(R"({"name":"ewma-hold"})");
  EXPECT_EQ(s.name, "ewma-hold");
  EXPECT_TRUE(s.params.empty());
  EXPECT_TRUE(s.sensors.empty());
  EXPECT_TRUE(s.wrappers.empty());
}

}  // namespace
}  // namespace adx::policy
