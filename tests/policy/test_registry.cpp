#include "policy/registry.hpp"

#include <gtest/gtest.h>

#include "locks/factory.hpp"
#include "policy/engine.hpp"

namespace adx::policy {
namespace {

locks::lock_cost_model cost() { return locks::lock_cost_model::fast_test(); }

TEST(Registry, ListsTheFourBuiltinPolicies) {
  const auto names = all_policy_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "simple-adapt");
  EXPECT_EQ(names[1], "break-even");
  EXPECT_EQ(names[2], "ewma-hold");
  EXPECT_EQ(names[3], "multi-sensor");
  for (const auto& info : all_policies()) {
    EXPECT_FALSE(info.description.empty()) << info.name;
  }
}

TEST(Registry, ParseErrorListsTheValidPolicies) {
  try {
    (void)parse_policy_name("fancy-adapt");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fancy-adapt"), std::string::npos);
    for (const auto name : all_policy_names()) {
      EXPECT_NE(msg.find(std::string(name)), std::string::npos) << name;
    }
  }
}

TEST(Registry, DefaultSpecOfSimpleAdaptIsTheDefault) {
  // Keeps the factory on the built-in bit-identical path.
  EXPECT_TRUE(default_spec("simple-adapt").is_default());
}

TEST(Registry, DefaultSpecsCarryTheirSensors) {
  const auto be = default_spec("break-even", 4);
  ASSERT_EQ(be.sensors.size(), 2u);
  EXPECT_EQ(be.sensors[0].name, "no-of-waiting-threads");
  EXPECT_EQ(be.sensors[0].period, 4u);
  EXPECT_EQ(be.sensors[0].agg, aggregation::last_value);
  EXPECT_EQ(be.sensors[1].name, "lock-hold-time");
  EXPECT_EQ(be.sensors[1].agg, aggregation::ewma);

  const auto eh = default_spec("ewma-hold");
  ASSERT_EQ(eh.sensors.size(), 1u);
  EXPECT_EQ(eh.sensors[0].name, "lock-hold-time");
}

TEST(Registry, InstallReplacesSensorsAndPolicy) {
  locks::adaptive_lock lk(0, cost());
  locks::lock_params params;
  params.policy = default_spec("break-even");
  install(lk, params, cost());
  ASSERT_EQ(lk.object_monitor().sensor_count(), 2u);
  EXPECT_EQ(lk.object_monitor().sensor_at(0).name(), "no-of-waiting-threads");
  EXPECT_EQ(lk.object_monitor().sensor_at(1).name(), "lock-hold-time");
  const auto* p = dynamic_cast<const locks::lock_adapt_policy*>(lk.policy());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->policy_name(), "break-even");
}

TEST(Registry, InstallAppliesWrappersOutermostFirst) {
  locks::adaptive_lock lk(0, cost());
  locks::lock_params params;
  params.policy = default_spec("ewma-hold").with_hysteresis(2).with_cooldown(3);
  install(lk, params, cost());
  const auto* p = dynamic_cast<const locks::lock_adapt_policy*>(lk.policy());
  ASSERT_NE(p, nullptr);
  // Wrapper names accumulate inside-out: cooldown is innermost-applied last
  // in the list, so the full name reads core+cooldown+hysteresis.
  EXPECT_EQ(p->policy_name(), "ewma-hold+cooldown+hysteresis");
}

TEST(Registry, InstallRejectsUnknownPolicy) {
  locks::adaptive_lock lk(0, cost());
  locks::lock_params params;
  params.policy.name = "fancy-adapt";
  EXPECT_THROW(install(lk, params, cost()), std::invalid_argument);
}

TEST(Registry, MakeLockRoutesNonDefaultSpecsThroughTheEngine) {
  locks::lock_params params;
  params.policy = default_spec("multi-sensor");
  const auto lk = locks::make_lock(locks::lock_kind::adaptive, 0, cost(), params);
  auto* al = dynamic_cast<locks::adaptive_lock*>(lk.get());
  ASSERT_NE(al, nullptr);
  const auto* p = dynamic_cast<const locks::lock_adapt_policy*>(al->policy());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->policy_name(), "multi-sensor");
  EXPECT_EQ(al->object_monitor().sensor_count(), 2u);
}

TEST(Registry, MakeLockDefaultSpecKeepsTheBuiltinPolicy) {
  const auto lk = locks::make_lock(locks::lock_kind::adaptive, 0, cost(), {});
  auto* al = dynamic_cast<locks::adaptive_lock*>(lk.get());
  ASSERT_NE(al, nullptr);
  // The built-in simple_adapt_policy, not an engine instance.
  EXPECT_NE(dynamic_cast<const locks::simple_adapt_policy*>(al->policy()), nullptr);
}

}  // namespace
}  // namespace adx::policy
