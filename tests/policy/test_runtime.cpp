// The asynchronous policy runtime (policy::async_runtime) and the sync/async
// equivalence contract: under a fixed observation schedule the async path
// must deliver the SAME observation sequence to the policy core as the sync
// path — decisions are a pure function of that sequence, so the decision
// sequence is bit-identical; only *when* the work is charged differs.
#include "policy/runtime.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptive.hpp"
#include "ct/runtime.hpp"
#include "locks/factory.hpp"
#include "locks/reconfigurable_lock.hpp"
#include "locks/run_config.hpp"
#include "objects/object_policy.hpp"
#include "policy/registry.hpp"
#include "workload/cs_workload.hpp"

namespace adx::policy {
namespace {

// ----------------------------------------------------------- spec plumbing

TEST(AsyncSpec, DefaultJsonIsByteStable) {
  // The execution-mode keys must not leak into default specs: every replay
  // journal and committed baseline embeds this exact byte form.
  EXPECT_EQ(policy_spec{}.to_json(),
            "{\"name\":\"simple-adapt\",\"params\":{},\"sensors\":[],"
            "\"wrappers\":[]}");
  EXPECT_TRUE(policy_spec{}.is_default());
}

TEST(AsyncSpec, AsyncIsNeverDefault) {
  // Even async simple-adapt must route through the registry/engine so the
  // runtime has a queue to drain.
  EXPECT_FALSE(policy_spec{}.with_async().is_default());
  EXPECT_FALSE(policy_spec{}.with_coordinate().is_default());
}

TEST(AsyncSpec, RoundTripsThroughJson) {
  auto spec = policy_spec{}.with_name("break-even").with_async(120).with_coordinate();
  const auto text = spec.to_json();
  EXPECT_NE(text.find("\"mode\":\"async\""), std::string::npos);
  EXPECT_NE(text.find("\"period_us\":120"), std::string::npos);
  EXPECT_NE(text.find("\"coordinate\":true"), std::string::npos);
  EXPECT_EQ(policy_spec::from_json(text), spec);
}

TEST(AsyncSpec, DefaultPeriodOmittedFromJson) {
  auto spec = policy_spec{}.with_async();  // period stays kDefaultPeriodUs
  EXPECT_EQ(spec.to_json().find("period_us"), std::string::npos);
  EXPECT_EQ(policy_spec::from_json(spec.to_json()), spec);
}

TEST(AsyncSpec, ParseExecModeRejectsUnknown) {
  EXPECT_EQ(parse_exec_mode("sync"), exec_mode::sync);
  EXPECT_EQ(parse_exec_mode("async"), exec_mode::async);
  try {
    (void)parse_exec_mode("bogus");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "unknown mode: bogus (valid: sync async)");
  }
}

TEST(AsyncSpec, RunConfigCarriesAsyncObjectPolicy) {
  auto rc = run_config{}
                .with_object("hashmap")
                .with_object_policy(objects::default_map_spec().with_async(80));
  EXPECT_EQ(run_config::from_json(rc.to_json()), rc);
}

// ------------------------------------------------- sync/async equivalence

/// Records every delivered observation and decides by a fixed rule, so two
/// instances agree iff they saw the identical observation sequence.
class recording_policy final : public core::adaptation_policy {
 public:
  void observe(const core::observation& obs) override {
    log.push_back({std::string(obs.sensor), obs.value});
    if (obs.value >= 5) note_decision();
  }
  std::vector<std::pair<std::string, std::int64_t>> log;
};

TEST(AsyncRuntime, AsyncReproducesSyncDecisionSequence) {
  // Fixed schedule: both objects' sensors read the same script, advanced one
  // step per feedback point. The sync object runs its policy inline; the
  // async object queues and is pumped in batches (the daemon's ticks). The
  // delivered sequences — and therefore the decision sequence — must match
  // bit-for-bit.
  const std::vector<std::int64_t> script = {1, 4, 9, 2, 7, 7, 0, 5, 3, 8,
                                            6, 1, 9, 9, 2, 4, 5, 0, 7, 3};

  core::adaptive_object sync_obj("scripted");
  core::adaptive_object async_obj("scripted");
  std::size_t si = 0;
  std::size_t ai = 0;
  sync_obj.object_monitor().add_sensor(
      core::sensor("load", [&] { return script[si++ % script.size()]; }, 2));
  async_obj.object_monitor().add_sensor(
      core::sensor("load", [&] { return script[ai++ % script.size()]; }, 2));
  async_obj.object_monitor().set_mode(core::coupling::loosely_coupled);

  auto sp = std::make_shared<recording_policy>();
  auto ap = std::make_shared<recording_policy>();
  sync_obj.set_policy(sp);
  async_obj.set_policy(ap);

  std::size_t sync_delivered = 0;
  std::size_t async_inline = 0;
  for (int t = 0; t < 40; ++t) {
    sync_delivered += sync_obj.feedback_point();
    async_inline += async_obj.feedback_point();
    if (t % 5 == 4) async_obj.pump();  // the daemon's periodic tick
  }
  async_obj.pump();  // final drain

  EXPECT_GT(sync_delivered, 0u);
  // The zero-cost fast path: async feedback points deliver nothing inline.
  EXPECT_EQ(async_inline, 0u);
  EXPECT_EQ(ap->log, sp->log);
  EXPECT_EQ(ap->decisions(), sp->decisions());
}

TEST(AsyncRuntime, ReinstallClearsQueuedObservationsCleanly) {
  // clear_sensors() with a non-empty loose queue: re-installing a policy
  // mid-sampling must drop the stale observations with the old sensors —
  // the new policy starts from a clean slate, never seeing the old stream.
  core::adaptive_object obj("scripted");
  obj.object_monitor().set_mode(core::coupling::loosely_coupled);
  obj.object_monitor().add_sensor(core::sensor("stale", [] { return 9; }, 1));
  obj.feedback_point();
  obj.feedback_point();
  EXPECT_EQ(obj.object_monitor().backlog(), 2u);

  obj.object_monitor().clear_sensors();
  obj.object_monitor().add_sensor(core::sensor("fresh", [] { return 1; }, 1));
  auto p = std::make_shared<recording_policy>();
  obj.set_policy(p);

  EXPECT_EQ(obj.object_monitor().backlog(), 0u);
  EXPECT_EQ(obj.pump(), 0u);
  obj.feedback_point();
  EXPECT_EQ(obj.pump(), 1u);
  ASSERT_EQ(p->log.size(), 1u);
  EXPECT_EQ(p->log[0].first, "fresh");
}

// ---------------------------------------------------- workload end-to-end

workload::cs_config async_cs_config() {
  workload::cs_config cfg;
  cfg.processors = 4;
  cfg.threads = 8;
  cfg.iterations = 60;
  cfg.cs_length = sim::microseconds(40);
  cfg.think_time = sim::microseconds(60);
  cfg.kind = locks::lock_kind::adaptive;
  cfg.params.policy = policy::default_spec("break-even");
  cfg.params.policy.with_async(40);
  return cfg;
}

TEST(AsyncRuntime, DaemonDrainsAndWorkloadCompletes) {
  const auto cfg = async_cs_config();
  const auto res = workload::run_cs_workload(cfg);
  EXPECT_EQ(res.acquisitions, 8u * 60u);
  EXPECT_GT(res.policy_ticks, 0u);
  EXPECT_GT(res.policy_pumped, 0u);
}

TEST(AsyncRuntime, SyncModeNeverStartsTheDaemon) {
  auto cfg = async_cs_config();
  cfg.params.policy = policy::default_spec("break-even");  // sync again
  const auto res = workload::run_cs_workload(cfg);
  EXPECT_EQ(res.acquisitions, 8u * 60u);
  EXPECT_EQ(res.policy_ticks, 0u);
  EXPECT_EQ(res.policy_pumped, 0u);
}

TEST(AsyncRuntime, AsyncRunsAreBitReproducible) {
  // Daemon wakeups are ordinary simulator events at fixed virtual times, so
  // the whole run — including every daemon-side charge — replays exactly.
  const auto a = workload::run_cs_workload(async_cs_config());
  const auto b = workload::run_cs_workload(async_cs_config());
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
  EXPECT_EQ(a.acquisitions, b.acquisitions);
  EXPECT_EQ(a.spin_iterations, b.spin_iterations);
  EXPECT_EQ(a.policy_ticks, b.policy_ticks);
  EXPECT_EQ(a.policy_pumped, b.policy_pumped);
}

// ----------------------------------------------------------- coordinator

ct::task<void> hammer(ct::context& ctx, locks::lock_object& lk, int iters) {
  for (int i = 0; i < iters; ++i) {
    co_await lk.lock(ctx);
    co_await ctx.compute(sim::microseconds(3));
    co_await lk.unlock(ctx);
    co_await ctx.compute(sim::microseconds(2));
  }
}

TEST(AsyncRuntime, CoordinatorDemotesIdleLockEndToEnd) {
  ct::runtime rt(sim::machine_config::test_machine(2));
  const auto cost = locks::lock_cost_model::fast_test();
  locks::lock_params params;
  params.policy.with_async(10).with_coordinate();

  auto busy = locks::make_lock(locks::lock_kind::adaptive, 0, cost, params);
  auto idle = locks::make_lock(locks::lock_kind::adaptive, 1, cost, params);

  policy::runtime_config rc;
  rc.period = sim::microseconds(10);
  rc.proc = 1;
  rc.coord.idle_ticks = 2;
  policy::async_runtime art(rc);
  EXPECT_TRUE(art.adopt_lock(*busy, params, cost));
  EXPECT_TRUE(art.adopt_lock(*idle, params, cost));
  EXPECT_EQ(art.registrations(), 2u);

  rt.fork(0, [&](ct::context& ctx) { return hammer(ctx, *busy, 100); });
  art.start(rt);
  rt.run_all();

  // The idle lock never saw an acquisition: after idle_ticks flat ticks the
  // coordinator demoted it to the cheap spin policy, visibly and exactly
  // once (activity never re-armed it).
  EXPECT_EQ(art.demotions(), 1u);
  auto* il = dynamic_cast<locks::reconfigurable_lock*>(idle.get());
  ASSERT_NE(il, nullptr);
  EXPECT_EQ(il->current_policy(), rc.coord.idle_policy);
  auto* ilock = dynamic_cast<locks::adaptive_lock*>(idle.get());
  ASSERT_NE(ilock, nullptr);
  EXPECT_EQ(ilock->stats().reconfigures(), 1u);
}

TEST(AsyncRuntime, AdoptRejectsSyncSpecsAndNonAdaptiveLocks) {
  const auto cost = locks::lock_cost_model::fast_test();
  locks::lock_params sync_params;  // default spec: sync
  auto lk = locks::make_lock(locks::lock_kind::adaptive, 0, cost, sync_params);
  policy::async_runtime art;
  EXPECT_FALSE(art.adopt_lock(*lk, sync_params, cost));

  locks::lock_params async_params;
  async_params.policy.with_async();
  auto plain = locks::make_lock(locks::lock_kind::spin, 0, cost, async_params);
  EXPECT_FALSE(art.adopt_lock(*plain, async_params, cost));
  EXPECT_EQ(art.registrations(), 0u);
}

}  // namespace
}  // namespace adx::policy
