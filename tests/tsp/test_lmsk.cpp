#include "tsp/lmsk.hpp"

#include <gtest/gtest.h>

#include <set>

namespace adx::tsp {
namespace {

TEST(Lmsk, RootBoundIsReductionSum) {
  // Hand-checkable 3-city matrix.
  std::vector<std::int32_t> d = {0, 4, 7, 5, 0, 3, 6, 8, 0};
  instance inst(3, std::move(d));
  lmsk engine(inst);
  const auto root = engine.root();
  // Row minima 4,3,6 = 13; after row subtraction every column has a zero.
  EXPECT_EQ(root.bound, 13);
  EXPECT_EQ(root.k(), 3);
}

TEST(Lmsk, RootMatrixHasZeroInEveryRowAndColumn) {
  const auto inst = instance::random_asymmetric(12, 5);
  lmsk engine(inst);
  const auto root = engine.root();
  for (int i = 0; i < root.k(); ++i) {
    bool row_zero = false;
    bool col_zero = false;
    for (int j = 0; j < root.k(); ++j) {
      row_zero |= root.cell(i, j) == 0;
      col_zero |= root.cell(j, i) == 0;
    }
    EXPECT_TRUE(row_zero) << "row " << i;
    EXPECT_TRUE(col_zero) << "col " << i;
  }
}

TEST(Lmsk, ChildBoundsNeverDecrease) {
  const auto inst = instance::random_asymmetric(10, 11);
  lmsk engine(inst);
  std::uint32_t seq = 1;
  std::vector<subproblem> stack;
  stack.push_back(engine.root());
  int checked = 0;
  while (!stack.empty() && checked < 200) {
    auto sp = std::move(stack.back());
    stack.pop_back();
    const auto parent_bound = sp.bound;
    auto er = engine.expand(std::move(sp), kInfBound, seq);
    for (auto& c : er.children) {
      EXPECT_GE(c.bound, parent_bound);
      ++checked;
      stack.push_back(std::move(c));
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(Lmsk, ExpandProducesAtMostTwoChildren) {
  const auto inst = instance::random_asymmetric(9, 2);
  lmsk engine(inst);
  std::uint32_t seq = 1;
  auto er = engine.expand(engine.root(), kInfBound, seq);
  EXPECT_LE(er.children.size(), 2u);
  EXPECT_FALSE(er.completed.has_value());
}

TEST(Lmsk, PruneParameterDropsChildren) {
  const auto inst = instance::random_asymmetric(9, 2);
  lmsk engine(inst);
  std::uint32_t seq = 1;
  const auto root = engine.root();
  auto er = engine.expand(root, /*best=*/root.bound, seq);  // nothing can beat it
  EXPECT_TRUE(er.children.empty());
}

TEST(Lmsk, OpsAreCounted) {
  const auto inst = instance::random_asymmetric(10, 3);
  lmsk engine(inst);
  std::uint32_t seq = 1;
  (void)engine.expand(engine.root(), kInfBound, seq);
  EXPECT_GT(engine.total_ops(), 100u);
  EXPECT_EQ(engine.total_expansions(), 1u);
}

struct brute_case {
  int n;
  std::uint64_t seed;
  bool euclidean;
};

class LmskVsBruteForce : public testing::TestWithParam<brute_case> {};

TEST_P(LmskVsBruteForce, FindsOptimalTour) {
  const auto& pc = GetParam();
  const auto inst = pc.euclidean ? instance::random_euclidean(pc.n, pc.seed)
                                 : instance::random_asymmetric(pc.n, pc.seed);
  const auto bf = solve_brute_force(inst);
  const auto lm = solve_sequential(inst);
  ASSERT_TRUE(lm.best.valid());
  EXPECT_EQ(lm.best.cost, bf.cost);
  // The reported tour must be a real Hamiltonian cycle with that cost.
  EXPECT_EQ(inst.tour_cost(lm.best.order), lm.best.cost);
  std::set<std::int16_t> cities(lm.best.order.begin(), lm.best.order.end());
  EXPECT_EQ(cities.size(), static_cast<std::size_t>(pc.n));
}

std::vector<brute_case> brute_cases() {
  std::vector<brute_case> v;
  for (int n : {5, 6, 7, 8}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 17ULL}) {
      v.push_back({n, seed, false});
    }
  }
  for (std::uint64_t seed : {4ULL, 5ULL}) v.push_back({7, seed, true});
  return v;
}

INSTANTIATE_TEST_SUITE_P(SmallInstances, LmskVsBruteForce,
                         testing::ValuesIn(brute_cases()),
                         [](const testing::TestParamInfo<brute_case>& info) {
                           return (info.param.euclidean ? std::string("euc")
                                                        : std::string("asym")) +
                                  "_n" + std::to_string(info.param.n) + "_s" +
                                  std::to_string(info.param.seed);
                         });

TEST(Lmsk, SequentialSolverStatsPopulated) {
  const auto inst = instance::random_asymmetric(14, 21);
  const auto r = solve_sequential(inst);
  EXPECT_TRUE(r.best.valid());
  EXPECT_GT(r.expansions, 0u);
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.peak_queue, 0u);
}

TEST(Lmsk, SequentialDeterministic) {
  const auto inst = instance::random_asymmetric(16, 77);
  const auto a = solve_sequential(inst);
  const auto b = solve_sequential(inst);
  EXPECT_EQ(a.best.cost, b.best.cost);
  EXPECT_EQ(a.expansions, b.expansions);
  EXPECT_EQ(a.best.order, b.best.order);
}

TEST(Lmsk, OptimalNeverWorseThanGreedyUpperBound) {
  const auto inst = instance::random_asymmetric(18, 99);
  // Greedy nearest-neighbour tour as an upper bound.
  std::vector<std::int16_t> order{0};
  std::set<int> left;
  for (int i = 1; i < 18; ++i) left.insert(i);
  while (!left.empty()) {
    const int cur = order.back();
    int best = -1;
    for (int c : left) {
      if (best < 0 || inst.at(cur, c) < inst.at(cur, best)) best = c;
    }
    order.push_back(static_cast<std::int16_t>(best));
    left.erase(best);
  }
  const auto r = solve_sequential(inst);
  EXPECT_LE(r.best.cost, inst.tour_cost(order));
}

TEST(Lmsk, RootBoundLowerBoundsOptimal) {
  const auto inst = instance::random_asymmetric(12, 123);
  lmsk engine(inst);
  const auto root = engine.root();
  const auto r = solve_sequential(inst);
  EXPECT_LE(root.bound, r.best.cost);
}

}  // namespace
}  // namespace adx::tsp
