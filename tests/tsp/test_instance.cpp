#include "tsp/instance.hpp"

#include <gtest/gtest.h>

namespace adx::tsp {
namespace {

TEST(Instance, RejectsTinyProblems) {
  EXPECT_THROW(instance(2, std::vector<std::int32_t>(4, 1)), std::invalid_argument);
}

TEST(Instance, RejectsSizeMismatch) {
  EXPECT_THROW(instance(4, std::vector<std::int32_t>(10, 1)), std::invalid_argument);
}

TEST(Instance, DiagonalForcedToInf) {
  auto inst = instance(3, std::vector<std::int32_t>(9, 5));
  for (int i = 0; i < 3; ++i) EXPECT_EQ(inst.at(i, i), kInf);
  EXPECT_EQ(inst.at(0, 1), 5);
}

TEST(Instance, RandomAsymmetricDeterministic) {
  const auto a = instance::random_asymmetric(10, 42);
  const auto b = instance::random_asymmetric(10, 42);
  EXPECT_EQ(a.data(), b.data());
  const auto c = instance::random_asymmetric(10, 43);
  EXPECT_NE(a.data(), c.data());
}

TEST(Instance, RandomAsymmetricInRange) {
  const auto inst = instance::random_asymmetric(12, 7, 5, 9);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (i == j) continue;
      EXPECT_GE(inst.at(i, j), 5);
      EXPECT_LE(inst.at(i, j), 9);
    }
  }
}

TEST(Instance, RandomAsymmetricIsActuallyAsymmetric) {
  const auto inst = instance::random_asymmetric(10, 1);
  bool asym = false;
  for (int i = 0; i < 10 && !asym; ++i) {
    for (int j = i + 1; j < 10; ++j) {
      if (inst.at(i, j) != inst.at(j, i)) {
        asym = true;
        break;
      }
    }
  }
  EXPECT_TRUE(asym);
}

TEST(Instance, EuclideanSymmetricAndTriangleFriendly) {
  const auto inst = instance::random_euclidean(8, 3);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      if (i == j) continue;
      EXPECT_EQ(inst.at(i, j), inst.at(j, i));
      EXPECT_GE(inst.at(i, j), 1);
    }
  }
}

TEST(Instance, TourCostSumsCycle) {
  // 3-cycle with known weights.
  std::vector<std::int32_t> d = {0, 1, 9, 9, 0, 2, 3, 9, 0};
  instance inst(3, std::move(d));
  EXPECT_EQ(inst.tour_cost({0, 1, 2}), 1 + 2 + 3);
}

TEST(Instance, TourCostRejectsWrongLength) {
  const auto inst = instance::random_asymmetric(5, 1);
  EXPECT_THROW((void)inst.tour_cost({0, 1, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace adx::tsp
