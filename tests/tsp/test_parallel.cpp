#include "tsp/parallel.hpp"

#include <gtest/gtest.h>

namespace adx::tsp {
namespace {

parallel_config fast_cfg(variant v, locks::lock_kind k) {
  parallel_config cfg;
  cfg.impl = v;
  cfg.run.lock = k;
  cfg.processors = 6;
  cfg.cost = locks::lock_cost_model::fast_test();
  cfg.run.machine = sim::machine_config::test_machine(8);
  cfg.per_op_us = 0.2;  // keep virtual runs small for tests
  return cfg;
}

struct par_case {
  variant v;
  locks::lock_kind k;
};

class ParallelTsp : public testing::TestWithParam<par_case> {};

TEST_P(ParallelTsp, FindsTheOptimalTour) {
  const auto inst = instance::random_asymmetric(16, 31);
  const auto seq = solve_sequential(inst);
  const auto r = solve_parallel(inst, fast_cfg(GetParam().v, GetParam().k));
  ASSERT_TRUE(r.best.valid());
  EXPECT_EQ(r.best.cost, seq.best.cost);
  EXPECT_EQ(inst.tour_cost(r.best.order), r.best.cost);
}

TEST_P(ParallelTsp, Deterministic) {
  const auto inst = instance::random_asymmetric(14, 8);
  const auto a = solve_parallel(inst, fast_cfg(GetParam().v, GetParam().k));
  const auto b = solve_parallel(inst, fast_cfg(GetParam().v, GetParam().k));
  EXPECT_EQ(a.elapsed.ns, b.elapsed.ns);
  EXPECT_EQ(a.expansions, b.expansions);
  EXPECT_EQ(a.events, b.events);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAndLocks, ParallelTsp,
    testing::Values(par_case{variant::centralized, locks::lock_kind::blocking},
                    par_case{variant::centralized, locks::lock_kind::adaptive},
                    par_case{variant::centralized, locks::lock_kind::spin},
                    par_case{variant::distributed, locks::lock_kind::blocking},
                    par_case{variant::distributed, locks::lock_kind::adaptive},
                    par_case{variant::distributed_lb, locks::lock_kind::blocking},
                    par_case{variant::distributed_lb, locks::lock_kind::adaptive}),
    [](const testing::TestParamInfo<par_case>& info) {
      std::string s = std::string(to_string(info.param.v)) + "_" +
                      locks::to_string(info.param.k);
      for (auto& c : s) {
        if (c == '-') c = '_';
      }
      return s;
    });

TEST(ParallelTsp, LockReportsCoverTheFourPaperLocks) {
  const auto inst = instance::random_asymmetric(12, 5);
  const auto r = solve_parallel(inst, fast_cfg(variant::centralized,
                                               locks::lock_kind::blocking));
  ASSERT_EQ(r.lock_reports.size(), 4u);
  EXPECT_EQ(r.lock_reports[0].name, "qlock");
  EXPECT_EQ(r.lock_reports[1].name, "glob-low-lock");
  EXPECT_EQ(r.lock_reports[2].name, "glob-act-lock");
  EXPECT_EQ(r.lock_reports[3].name, "globlock");
  EXPECT_GT(r.lock_reports[0].requests, 0u);
}

TEST(ParallelTsp, PatternsRecordedWhenRequested) {
  const auto inst = instance::random_asymmetric(14, 5);
  auto cfg = fast_cfg(variant::centralized, locks::lock_kind::blocking);
  cfg.record_patterns = true;
  const auto r = solve_parallel(inst, cfg);
  EXPECT_FALSE(r.qlock_pattern.empty());
  EXPECT_FALSE(r.act_pattern.empty());
}

TEST(ParallelTsp, PatternsEmptyByDefault) {
  const auto inst = instance::random_asymmetric(12, 5);
  const auto r = solve_parallel(inst, fast_cfg(variant::centralized,
                                               locks::lock_kind::blocking));
  EXPECT_TRUE(r.qlock_pattern.empty());
}

TEST(ParallelTsp, CentralizedQlockMoreContendedThanDistributed) {
  const auto inst = instance::random_asymmetric(18, 9001);
  auto central = fast_cfg(variant::centralized, locks::lock_kind::blocking);
  auto dist = fast_cfg(variant::distributed, locks::lock_kind::blocking);
  const auto rc = solve_parallel(inst, central);
  const auto rd = solve_parallel(inst, dist);
  EXPECT_GT(rc.lock_reports[0].contention_ratio, rd.lock_reports[0].contention_ratio);
}

TEST(ParallelTsp, DistributedVariantsSteal) {
  const auto inst = instance::random_asymmetric(16, 77);
  const auto rd =
      solve_parallel(inst, fast_cfg(variant::distributed, locks::lock_kind::blocking));
  const auto rlb = solve_parallel(
      inst, fast_cfg(variant::distributed_lb, locks::lock_kind::blocking));
  EXPECT_GT(rd.steals + rlb.steals, 0u);
}

TEST(ParallelTsp, SingleProcessorDegeneratesGracefully) {
  const auto inst = instance::random_asymmetric(12, 3);
  auto cfg = fast_cfg(variant::centralized, locks::lock_kind::blocking);
  cfg.processors = 1;
  const auto seq = solve_sequential(inst);
  const auto r = solve_parallel(inst, cfg);
  EXPECT_EQ(r.best.cost, seq.best.cost);
}

TEST(ParallelTsp, RejectsBadProcessorCount) {
  const auto inst = instance::random_asymmetric(12, 3);
  auto cfg = fast_cfg(variant::centralized, locks::lock_kind::blocking);
  cfg.processors = 0;
  EXPECT_THROW(solve_parallel(inst, cfg), std::invalid_argument);
  cfg.processors = 99;  // > machine nodes
  EXPECT_THROW(solve_parallel(inst, cfg), std::invalid_argument);
}

TEST(ParallelTsp, MoreProcessorsFinishSooner) {
  const auto inst = instance::random_asymmetric(18, 9001);
  auto one = fast_cfg(variant::centralized, locks::lock_kind::blocking);
  one.processors = 1;
  one.per_op_us = 3.0;  // enough work per node for parallelism to pay
  auto six = fast_cfg(variant::centralized, locks::lock_kind::blocking);
  six.processors = 6;
  six.per_op_us = 3.0;
  const auto r1 = solve_parallel(inst, one);
  const auto r6 = solve_parallel(inst, six);
  EXPECT_LT(r6.elapsed.ns, r1.elapsed.ns);
}

TEST(ParallelTsp, VariantNames) {
  EXPECT_STREQ(to_string(variant::centralized), "centralized");
  EXPECT_STREQ(to_string(variant::distributed), "distributed");
  EXPECT_STREQ(to_string(variant::distributed_lb), "distributed-lb");
}

}  // namespace
}  // namespace adx::tsp
