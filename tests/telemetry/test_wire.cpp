// Wire-protocol codec: bit-exact round trips for every message type, strict
// rejection of malformed frames, and incremental parsing at any chunking.
#include "telemetry/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace adx::telemetry {
namespace {

message roundtrip(const message& in) {
  const std::string frame = encode_frame(in);
  frame_reader r;
  r.feed(frame);
  message out;
  EXPECT_EQ(r.next(out), frame_reader::status::ok);
  EXPECT_EQ(r.pending(), 0u);
  return out;
}

hello_msg sample_hello() { return {kProtocolVersion, "run-7", "adx-check"}; }

trace_event_msg sample_event() {
  trace_event_msg e;
  e.name = "qlock.held";
  e.cat = "lock";
  e.ph = 0;  // complete
  e.ts_ns = 123'456'789;
  e.dur_ns = 42'000;
  e.pid = 3;
  e.tid = 17;
  e.a1_key = "v_i";
  e.a1_value = -5;
  e.a2_key = "waiting";
  e.a2_value = 9;
  e.detail_key = "d_c";
  e.detail = "spin-then-block(400)";
  return e;
}

metrics_msg sample_metrics() {
  metrics_msg m;
  m.ts_ns = 999;
  m.counters = {{"lock.acquisitions", 120}, {"sim.remote_reads", 7}};
  m.gauges = {{"lock.contention_ratio", 0.375},
              {"weird", -0.0},
              {"tiny", std::numeric_limits<double>::denorm_min()}};
  hist_snapshot h;
  h.name = "lock.wait_us";
  h.min_value = 0.5;
  h.sub_per_octave = 8;
  h.bucket_count = 385;
  h.count = 3;
  h.sum = 17.25;
  h.min = 1.5;
  h.max = 12.0;
  h.buckets = {{5, 1}, {40, 2}};
  m.histograms.push_back(h);
  return m;
}

adapt_msg sample_adapt() {
  return {55'000, "qlock", "simple-adapt", "pure-spin(400)",
          "no-of-waiting-threads=3", 3};
}

TEST(Wire, RoundTripEveryMessageType) {
  EXPECT_EQ(roundtrip(message{sample_hello()}), message{sample_hello()});
  EXPECT_EQ(roundtrip(message{sample_event()}), message{sample_event()});
  EXPECT_EQ(roundtrip(message{sample_metrics()}), message{sample_metrics()});
  EXPECT_EQ(roundtrip(message{sample_adapt()}), message{sample_adapt()});
  EXPECT_EQ(roundtrip(message{progress_msg{3, 12, "mutex/spin"}}),
            message{(progress_msg{3, 12, "mutex/spin"})});
  EXPECT_EQ(roundtrip(message{result_msg{"cell-a", 1, "mutual-exclusion"}}),
            message{(result_msg{"cell-a", 1, "mutual-exclusion"})});
  EXPECT_EQ(roundtrip(message{bye_msg{99}}), message{bye_msg{99}});
}

TEST(Wire, DoublesRoundTripBitExact) {
  // Doubles travel as IEEE-754 bit patterns; NaN payload bits included.
  metrics_msg m;
  m.gauges = {{"nan", std::nan("")},
              {"inf", std::numeric_limits<double>::infinity()},
              {"neg0", -0.0},
              {"pi", 3.141592653589793}};
  const auto out = std::get<metrics_msg>(roundtrip(message{m}));
  ASSERT_EQ(out.gauges.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.gauges[i].second),
              std::bit_cast<std::uint64_t>(m.gauges[i].second))
        << m.gauges[i].first;
  }
}

TEST(Wire, IncrementalFeedByteAtATime) {
  const std::string frame = encode_frame(message{sample_event()});
  frame_reader r;
  message out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    r.feed(frame.data() + i, 1);
    EXPECT_EQ(r.next(out), frame_reader::status::need_more) << "at byte " << i;
  }
  r.feed(frame.data() + frame.size() - 1, 1);
  ASSERT_EQ(r.next(out), frame_reader::status::ok);
  EXPECT_EQ(out, message{sample_event()});
}

TEST(Wire, MultipleFramesInOneBuffer) {
  std::string buf = encode_frame(message{sample_hello()}) +
                    encode_frame(message{sample_adapt()}) +
                    encode_frame(message{bye_msg{0}});
  frame_reader r;
  r.feed(buf);
  message out;
  ASSERT_EQ(r.next(out), frame_reader::status::ok);
  EXPECT_TRUE(std::holds_alternative<hello_msg>(out));
  ASSERT_EQ(r.next(out), frame_reader::status::ok);
  EXPECT_TRUE(std::holds_alternative<adapt_msg>(out));
  ASSERT_EQ(r.next(out), frame_reader::status::ok);
  EXPECT_TRUE(std::holds_alternative<bye_msg>(out));
  EXPECT_EQ(r.next(out), frame_reader::status::need_more);
}

TEST(Wire, TruncatedPayloadRejectedAtEveryPrefix) {
  // Chop the payload (not the frame header): every prefix must fail decode,
  // never misparse. The frame_reader would wait for more bytes; decoding the
  // truncated payload directly must error.
  const message m{sample_event()};
  const std::string frame = encode_frame(m);
  const std::string payload = frame.substr(5);
  for (std::size_t n = 0; n < payload.size(); ++n) {
    message out;
    std::string err;
    EXPECT_FALSE(decode_payload(
        static_cast<std::uint8_t>(msg_type::trace_event),
        std::string_view(payload.data(), n), out, &err))
        << "prefix of " << n << " bytes decoded";
    EXPECT_FALSE(err.empty());
  }
}

TEST(Wire, TrailingBytesRejected) {
  const std::string frame = encode_frame(message{bye_msg{1}});
  std::string payload = frame.substr(5) + "x";  // one trailing byte
  message out;
  std::string err;
  EXPECT_FALSE(decode_payload(static_cast<std::uint8_t>(msg_type::bye), payload,
                              out, &err));
  EXPECT_NE(err.find("trailing"), std::string::npos);
}

TEST(Wire, UnknownTypeRejected) {
  message out;
  std::string err;
  EXPECT_FALSE(decode_payload(0, "", out, &err));
  EXPECT_FALSE(decode_payload(200, "", out, &err));
  EXPECT_NE(err.find("unknown"), std::string::npos);
}

TEST(Wire, OversizedFramePoisonsReader) {
  // Header claiming a > kMaxFrameBytes payload: the reader must error
  // immediately (not buffer 16 MiB of garbage) and stay failed.
  std::string bogus;
  const std::uint32_t len = kMaxFrameBytes + 1;
  for (int i = 0; i < 4; ++i) bogus.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  bogus.push_back(2);
  frame_reader r;
  r.feed(bogus);
  message out;
  EXPECT_EQ(r.next(out), frame_reader::status::error);
  EXPECT_NE(r.error_text().find("exceeds"), std::string::npos);
  // Poisoned: even a valid frame afterwards keeps erroring.
  r.feed(encode_frame(message{bye_msg{0}}));
  EXPECT_EQ(r.next(out), frame_reader::status::error);
}

TEST(Wire, CorruptStringLengthRejected) {
  // A string whose declared length runs past the payload end.
  std::string payload;
  const std::uint32_t version = kProtocolVersion;
  for (int i = 0; i < 4; ++i) payload.push_back(static_cast<char>((version >> (8 * i)) & 0xFF));
  const std::uint32_t huge = 0xFFFFFF;
  for (int i = 0; i < 4; ++i) payload.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  payload += "ab";
  message out;
  std::string err;
  EXPECT_FALSE(decode_payload(static_cast<std::uint8_t>(msg_type::hello), payload,
                              out, &err));
}

TEST(Wire, ObsEventConversionPreservesFields) {
  obs::event e;
  e.name = "proc.run";
  e.cat = "ct";
  e.ph = obs::phase::complete;
  e.ts = sim::vtime{5000};
  e.dur = sim::vdur{250};
  e.pid = 2;
  e.tid = 11;
  e.a1 = {"v_i", 42};
  e.detail_key = "d_c";
  e.detail = "blocking";
  const auto w = to_wire(e);
  EXPECT_EQ(w.name, "proc.run");
  EXPECT_EQ(w.cat, "ct");
  EXPECT_EQ(w.ph, static_cast<std::uint8_t>(obs::phase::complete));
  EXPECT_EQ(w.ts_ns, 5000);
  EXPECT_EQ(w.dur_ns, 250);
  EXPECT_EQ(w.a1_key, "v_i");
  EXPECT_EQ(w.a1_value, 42);
  EXPECT_TRUE(w.a2_key.empty());
  EXPECT_EQ(w.detail_key, "d_c");
  EXPECT_EQ(w.detail, "blocking");
}

TEST(Wire, MetricsSnapshotAndHistogramRestore) {
  obs::metrics m;
  m.get_counter("a.count").inc(7);
  m.get_gauge("a.ratio").set(0.25);
  auto& h = m.get_histogram("a.wait_us");
  for (const double v : {1.0, 2.0, 4.0, 100.0, 5000.0}) h.add(v);

  const auto snap = snapshot_metrics(m, 777);
  EXPECT_EQ(snap.ts_ns, 777);
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 7u);
  ASSERT_EQ(snap.histograms.size(), 1u);

  // Reconstructed histogram answers every query the original does.
  const auto back = restore_histogram(snap.histograms[0]);
  EXPECT_EQ(back.count(), h.count());
  EXPECT_DOUBLE_EQ(back.sum(), h.sum());
  EXPECT_DOUBLE_EQ(back.min(), h.min());
  EXPECT_DOUBLE_EQ(back.max(), h.max());
  for (const double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(back.percentile(p), h.percentile(p)) << "p" << p;
  }
}

TEST(Wire, ParseEndpointForms) {
  auto ep = parse_endpoint("unix:/tmp/x.sock");
  ASSERT_TRUE(ep);
  EXPECT_EQ(ep->k, endpoint::kind::unix_domain);
  EXPECT_EQ(ep->path, "/tmp/x.sock");

  ep = parse_endpoint("/tmp/bare-path.sock");
  ASSERT_TRUE(ep);
  EXPECT_EQ(ep->k, endpoint::kind::unix_domain);

  ep = parse_endpoint("tcp:127.0.0.1:9314");
  ASSERT_TRUE(ep);
  EXPECT_EQ(ep->k, endpoint::kind::tcp);
  EXPECT_EQ(ep->host, "127.0.0.1");
  EXPECT_EQ(ep->port, 9314);

  std::string err;
  EXPECT_FALSE(parse_endpoint("unix:", &err));
  EXPECT_FALSE(parse_endpoint("tcp:nohost", &err));
  EXPECT_FALSE(parse_endpoint("tcp:127.0.0.1:0", &err));
  EXPECT_FALSE(parse_endpoint("tcp:127.0.0.1:70000", &err));
  EXPECT_FALSE(parse_endpoint("garbage", &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace adx::telemetry
