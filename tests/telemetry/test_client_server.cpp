// End-to-end loopback: real clients streaming to a real server over unix /
// TCP sockets, with the CI invariant checked in-process — the server's live
// merged export is byte-identical to merging the producers' dump files after
// the fact. Plus the degradation contracts: server death mid-run never
// crashes or blocks a producer, and virtual results are bit-identical with
// telemetry on or off.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "check/runner.hpp"
#include "obs/tracer.hpp"
#include "telemetry/client.hpp"
#include "telemetry/hook.hpp"
#include "telemetry/server.hpp"
#include "telemetry/timeline.hpp"

namespace adx::telemetry {
namespace {

std::string tmp_path(const std::string& tag, const std::string& suffix) {
  static int counter = 0;
  return "/tmp/adx-tlm-test-" + std::to_string(::getpid()) + "-" + tag + "-" +
         std::to_string(counter++) + suffix;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Decodes a dump file into messages; fails the test on any framing error.
std::vector<message> parse_dump(const std::string& path) {
  frame_reader r;
  r.feed(read_file(path));
  std::vector<message> out;
  message m;
  for (;;) {
    const auto st = r.next(m);
    if (st == frame_reader::status::need_more) break;
    EXPECT_EQ(st, frame_reader::status::ok) << r.error_text();
    if (st != frame_reader::status::ok) break;
    out.push_back(std::move(m));
  }
  EXPECT_EQ(r.pending(), 0u) << "trailing bytes in dump " << path;
  return out;
}

/// Merges dump files exactly as `adx-telemetryd --merge` does.
std::string merge_dumps(const std::vector<std::string>& paths) {
  timeline tl;
  for (const auto& p : paths) {
    stream_state st;
    for (const auto& m : parse_dump(p)) {
      std::string err;
      EXPECT_TRUE(tl.apply(st, m, &err)) << p << ": " << err;
    }
    tl.stream_closed(st);
  }
  return tl.chrome_json();
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 10'000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// One producer's worth of traffic, deterministic per run id.
void publish_workload(client& c, int run_index) {
  for (int i = 0; i < 20; ++i) {
    trace_event_msg e;
    e.name = "job" + std::to_string(i);
    e.cat = "test";
    e.ph = static_cast<std::uint8_t>(obs::phase::instant);
    e.ts_ns = 1000 * (i + 1) + run_index;  // interleaves across runs
    e.tid = static_cast<std::uint32_t>(i % 4);
    c.publish(message{std::move(e)});
  }
  c.publish_adapt(adapt_msg{5'500 + run_index, "qlock", "simple-adapt",
                            "spin-then-block(30)", "no-of-waiting-threads=2", 2});
  obs::metrics m;
  m.get_counter("runs").inc(static_cast<std::uint64_t>(run_index + 1));
  m.get_histogram("wait_us").add(10.0 * (run_index + 1));
  c.publish_metrics(m, 21'000 + run_index);
  c.publish_progress(20, 20, "done");
  c.publish_result("sweep", false, "");
}

TEST(ClientServer, UnixLoopbackLiveMergeEqualsPostHocDumps) {
  const std::string sock = tmp_path("uds", ".sock");
  timeline tl;
  std::string err;
  auto srv = server::start(*parse_endpoint("unix:" + sock), tl, &err);
  ASSERT_TRUE(srv) << err;

  constexpr int kProducers = 4;
  std::vector<std::string> dumps;
  for (int p = 0; p < kProducers; ++p) dumps.push_back(tmp_path("uds-dump", ".tlm"));
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      client_options copt;
      copt.endpoint = "unix:" + sock;
      copt.dump_path = dumps[static_cast<std::size_t>(p)];
      copt.run_id = "run-" + std::to_string(p);
      copt.producer = "test-producer";
      std::string cerr;
      auto c = client::open(copt, &cerr);
      ASSERT_TRUE(c) << cerr;
      EXPECT_TRUE(c->socket_alive());
      publish_workload(*c, p);
      c->flush();
      EXPECT_EQ(c->dropped(), 0u);
      // Destructor sends bye and closes the stream.
    });
  }
  for (auto& t : producers) t.join();

  ASSERT_TRUE(wait_until([&] { return tl.runs_done() >= kProducers; }))
      << "server saw " << tl.runs_done() << " finished runs";
  srv->stop();
  EXPECT_EQ(srv->connections_accepted(), static_cast<std::size_t>(kProducers));
  EXPECT_EQ(srv->protocol_errors(), 0u);

  const std::string live = tl.chrome_json();
  const std::string posthoc = merge_dumps(dumps);
  EXPECT_EQ(live, posthoc);  // THE invariant: live merge == post-hoc merge
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_NE(live.find("\"run\":\"run-" + std::to_string(p) + "\""),
              std::string::npos);
  }
  EXPECT_NE(live.find("\"qlock.adapt\""), std::string::npos);

  for (const auto& d : dumps) std::remove(d.c_str());
  std::remove(sock.c_str());
}

TEST(ClientServer, TcpLoopbackStreams) {
  timeline tl;
  std::unique_ptr<server> srv;
  std::uint16_t port = 0;
  for (std::uint16_t p = 19'431; p < 19'531 && !srv; ++p) {
    endpoint ep;
    ep.k = endpoint::kind::tcp;
    ep.host = "127.0.0.1";
    ep.port = p;
    std::string err;
    srv = server::start(ep, tl, &err);
    if (srv) port = p;
  }
  ASSERT_TRUE(srv) << "no free loopback port";

  {
    client_options copt;
    copt.endpoint = "tcp:127.0.0.1:" + std::to_string(port);
    copt.run_id = "tcp-run";
    copt.producer = "tcp-test";
    std::string err;
    auto c = client::open(copt, &err);
    ASSERT_TRUE(c) << err;
    publish_workload(*c, 0);
    c->flush();
  }
  ASSERT_TRUE(wait_until([&] { return tl.runs_done() >= 1; }));
  srv->stop();
  EXPECT_EQ(srv->protocol_errors(), 0u);
  EXPECT_NE(tl.chrome_json().find("\"run\":\"tcp-run\""), std::string::npos);
}

TEST(ClientServer, MultiThreadedPublisherKeepsDumpEqualToStream) {
  // Frames from several publishing threads land in per-thread rings; the
  // sender serializes them into ONE order written to both socket and dump.
  const std::string sock = tmp_path("mt", ".sock");
  const std::string dump = tmp_path("mt-dump", ".tlm");
  timeline tl;
  std::string err;
  auto srv = server::start(*parse_endpoint("unix:" + sock), tl, &err);
  ASSERT_TRUE(srv) << err;
  {
    client_options copt;
    copt.endpoint = "unix:" + sock;
    copt.dump_path = dump;
    copt.run_id = "mt-run";
    copt.producer = "mt";
    auto c = client::open(copt, &err);
    ASSERT_TRUE(c) << err;
    std::vector<std::thread> pubs;
    for (int t = 0; t < 4; ++t) {
      pubs.emplace_back([&, t] {
        for (int i = 0; i < 50; ++i) {
          trace_event_msg e;
          e.name = "t" + std::to_string(t) + "." + std::to_string(i);
          e.cat = "mt";
          e.ph = static_cast<std::uint8_t>(obs::phase::instant);
          e.ts_ns = 100 * i + t;
          e.tid = static_cast<std::uint32_t>(t);
          c->publish(message{std::move(e)});
        }
      });
    }
    for (auto& t : pubs) t.join();
    c->flush();
    EXPECT_EQ(c->dropped(), 0u);
  }
  ASSERT_TRUE(wait_until([&] { return tl.runs_done() >= 1; }));
  srv->stop();
  EXPECT_EQ(srv->protocol_errors(), 0u);
  EXPECT_EQ(tl.chrome_json(), merge_dumps({dump}));

  std::remove(dump.c_str());
  std::remove(sock.c_str());
}

TEST(ClientServer, ServerDeathMidRunNeverBlocksOrCorruptsDump) {
  const std::string sock = tmp_path("kill", ".sock");
  const std::string dump = tmp_path("kill-dump", ".tlm");
  timeline tl;
  std::string err;
  auto srv = server::start(*parse_endpoint("unix:" + sock), tl, &err);
  ASSERT_TRUE(srv) << err;

  client_options copt;
  copt.endpoint = "unix:" + sock;
  copt.dump_path = dump;
  copt.run_id = "doomed";
  copt.producer = "kill-test";
  copt.send_timeout_ms = 200;  // fast stall detection, bounded test time
  auto c = client::open(copt, &err);
  ASSERT_TRUE(c) << err;
  EXPECT_TRUE(c->socket_alive());

  publish_workload(*c, 0);
  c->flush();

  // Kill the server mid-run, then keep publishing hard.
  srv->stop();
  srv.reset();
  std::remove(sock.c_str());
  constexpr int kAfter = 500;
  for (int i = 0; i < kAfter; ++i) {
    trace_event_msg e;
    e.name = "after" + std::to_string(i);
    e.cat = "kill";
    e.ph = static_cast<std::uint8_t>(obs::phase::instant);
    e.ts_ns = 100'000 + i;
    c->publish(message{std::move(e)});
    if (i % 100 == 0) c->flush();  // flush() must not hang on a dead socket
  }
  c->flush();
  EXPECT_EQ(c->dropped(), 0u);  // rings never filled; socket death != drops
  c.reset();                    // clean shutdown, bye still written to dump

  // The dump is untouched by the socket's death: complete and well-framed.
  const auto msgs = parse_dump(dump);
  ASSERT_GE(msgs.size(), 2u);
  ASSERT_TRUE(std::holds_alternative<hello_msg>(msgs.front()));
  ASSERT_TRUE(std::holds_alternative<bye_msg>(msgs.back()));
  std::size_t after_events = 0;
  for (const auto& m : msgs) {
    if (const auto* e = std::get_if<trace_event_msg>(&m)) {
      after_events += e->cat == "kill" ? 1 : 0;
    }
  }
  EXPECT_EQ(after_events, static_cast<std::size_t>(kAfter));
  std::remove(dump.c_str());
}

TEST(ClientServer, DumpOnlyClientFramesHelloFirstByeLast) {
  const std::string dump = tmp_path("dumponly", ".tlm");
  {
    client_options copt;
    copt.dump_path = dump;
    copt.run_id = "offline";
    copt.producer = "dump-test";
    std::string err;
    auto c = client::open(copt, &err);
    ASSERT_TRUE(c) << err;
    EXPECT_FALSE(c->socket_alive());
    publish_workload(*c, 0);
  }
  const auto msgs = parse_dump(dump);
  ASSERT_GE(msgs.size(), 2u);
  const auto* hello = std::get_if<hello_msg>(&msgs.front());
  ASSERT_NE(hello, nullptr);
  EXPECT_EQ(hello->run_id, "offline");
  EXPECT_EQ(hello->producer, "dump-test");
  EXPECT_EQ(hello->version, kProtocolVersion);
  EXPECT_TRUE(std::holds_alternative<bye_msg>(msgs.back()));
  std::remove(dump.c_str());
}

TEST(ClientServer, OpenFailsWithNoReachableDestination) {
  client_options copt;
  copt.endpoint = "unix:/tmp/adx-tlm-test-no-such-server.sock";
  copt.run_id = "r";
  std::string err;
  EXPECT_EQ(client::open(copt, &err), nullptr);
  EXPECT_FALSE(err.empty());
}

TEST(ClientServer, TracerSinkStreamsRecordedEvents) {
  // A sink-only tracer (enabled() false, sink attached) streams every record
  // without storing — the sim-side live-export path.
  const std::string dump = tmp_path("sink", ".tlm");
  {
    client_options copt;
    copt.dump_path = dump;
    copt.run_id = "sink-run";
    std::string err;
    auto c = client::open(copt, &err);
    ASSERT_TRUE(c) << err;

    obs::tracer tr;
    tr.attach_sink(c.get());
    ASSERT_TRUE(tr.recording());
    tr.instant("adapt.decision", "policy", sim::vtime{2'000}, 0, 1,
               {"v_i", 3});
    tr.complete("cs.held", "lock", sim::vtime{1'000}, sim::vdur{500}, 0, 1);
    tr.attach_sink(nullptr);
  }
  const auto msgs = parse_dump(dump);
  std::size_t events = 0;
  for (const auto& m : msgs) {
    if (const auto* e = std::get_if<trace_event_msg>(&m)) {
      ++events;
      if (e->name == "adapt.decision") {
        EXPECT_EQ(e->ts_ns, 2'000);
        EXPECT_EQ(e->a1_key, "v_i");
        EXPECT_EQ(e->a1_value, 3);
      }
    }
  }
  EXPECT_EQ(events, 2u);
  std::remove(dump.c_str());
}

TEST(Hook, EnabledTracksTheActiveClientAndRoutesAdaptEvents) {
  ASSERT_FALSE(enabled());  // no client: one relaxed load, nothing else
  publish_adapt_event(1, "noop", "p", "d", "s", 0);  // must be a safe no-op

  const std::string dump = tmp_path("hook", ".tlm");
  {
    client_options copt;
    copt.dump_path = dump;
    copt.run_id = "hooked";
    std::string err;
    auto c = client::open(copt, &err);
    ASSERT_TRUE(c) << err;
    EXPECT_TRUE(enabled());
    EXPECT_EQ(active(), c.get());
    publish_adapt_event(9'000, "qlock", "simple-adapt", "blocking",
                        "no-of-waiting-threads=4", 4);
    c->flush();
  }
  EXPECT_FALSE(enabled());  // destruction clears the registration

  bool saw = false;
  for (const auto& m : parse_dump(dump)) {
    if (const auto* a = std::get_if<adapt_msg>(&m)) {
      saw = true;
      EXPECT_EQ(a->ts_ns, 9'000);
      EXPECT_EQ(a->object, "qlock");
      EXPECT_EQ(a->decision, "blocking");
      EXPECT_EQ(a->sensor_value, 4);
    }
  }
  EXPECT_TRUE(saw);
  std::remove(dump.c_str());
}

TEST(ClientServer, VirtualResultsBitIdenticalWithTelemetryOn) {
  // Satellite guarantee: attaching telemetry must not perturb the simulation.
  // Run the adaptive-lock checker fixture (which fires the adapt hook from
  // inside lock_stats::on_reconfigure) with and without an active client and
  // compare every virtual-clock result exactly.
  check::check_params p;
  p.config.lock = locks::lock_kind::adaptive;
  p.config.seed = 7;
  p.iterations = 6;

  const auto baseline = check::run_check(p);

  const std::string dump = tmp_path("identical", ".tlm");
  check::check_result with_tele;
  {
    client_options copt;
    copt.dump_path = dump;
    copt.run_id = "identical";
    std::string err;
    auto c = client::open(copt, &err);
    ASSERT_TRUE(c) << err;
    with_tele = check::run_check(p);
  }

  EXPECT_EQ(with_tele.end_time.ns, baseline.end_time.ns);
  EXPECT_EQ(with_tele.events, baseline.events);
  EXPECT_EQ(with_tele.completed, baseline.completed);
  EXPECT_EQ(with_tele.violations.size(), baseline.violations.size());
  std::remove(dump.c_str());
}

}  // namespace
}  // namespace adx::telemetry
