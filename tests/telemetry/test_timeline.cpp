// Timeline merge semantics: order-independence of the merged export,
// hello-first framing, latest-wins metrics, adaptation accounting, and the
// dashboard render.
#include "telemetry/timeline.hpp"

#include <gtest/gtest.h>

#include "telemetry/dashboard.hpp"

namespace adx::telemetry {
namespace {

message hello(const std::string& run, const std::string& producer = "test") {
  return message{hello_msg{kProtocolVersion, run, producer}};
}

message instant(const std::string& name, std::int64_t ts_ns, std::uint32_t tid = 0) {
  trace_event_msg e;
  e.name = name;
  e.cat = "test";
  e.ph = static_cast<std::uint8_t>(obs::phase::instant);
  e.ts_ns = ts_ns;
  e.tid = tid;
  return message{std::move(e)};
}

message adapt(const std::string& object, const std::string& decision,
              std::int64_t ts_ns) {
  return message{adapt_msg{ts_ns, object, "simple-adapt", decision,
                           "no-of-waiting-threads=2", 2}};
}

void apply_ok(timeline& tl, stream_state& st, const message& m) {
  std::string err;
  ASSERT_TRUE(tl.apply(st, m, &err)) << err;
}

TEST(Timeline, RequiresHelloFirst) {
  timeline tl;
  stream_state st;
  std::string err;
  EXPECT_FALSE(tl.apply(st, instant("x", 1), &err));
  EXPECT_NE(err.find("hello"), std::string::npos);
  apply_ok(tl, st, hello("r"));
  EXPECT_TRUE(tl.apply(st, instant("x", 1), &err));
  EXPECT_FALSE(tl.apply(st, hello("r2"), &err));  // double hello
}

TEST(Timeline, RejectsUnknownVersion) {
  timeline tl;
  stream_state st;
  std::string err;
  EXPECT_FALSE(tl.apply(st, message{hello_msg{99, "r", "p"}}, &err));
  EXPECT_NE(err.find("version"), std::string::npos);
}

TEST(Timeline, MergedExportIndependentOfStreamInterleaving) {
  // Two producers' frames applied in two different interleavings must export
  // the same bytes — the invariant that makes "server live merge" equal
  // "post-hoc dump merge".
  const std::vector<message> a = {hello("run-a"), instant("a1", 100),
                                  adapt("qlock", "pure-spin(400)", 150),
                                  instant("a2", 300), message{bye_msg{0}}};
  const std::vector<message> b = {hello("run-b"), instant("b1", 100),
                                  instant("b2", 200), message{bye_msg{0}}};

  timeline sequential;
  {
    stream_state sa, sb;
    for (const auto& m : a) apply_ok(sequential, sa, m);
    for (const auto& m : b) apply_ok(sequential, sb, m);
  }
  timeline interleaved;
  {
    stream_state sa, sb;
    // b first, then alternating — arrival order across streams scrambled.
    apply_ok(interleaved, sb, b[0]);
    apply_ok(interleaved, sa, a[0]);
    apply_ok(interleaved, sb, b[1]);
    apply_ok(interleaved, sa, a[1]);
    apply_ok(interleaved, sa, a[2]);
    apply_ok(interleaved, sb, b[2]);
    apply_ok(interleaved, sb, b[3]);
    for (std::size_t i = 3; i < a.size(); ++i) apply_ok(interleaved, sa, a[i]);
  }
  EXPECT_EQ(sequential.chrome_json(), interleaved.chrome_json());
}

TEST(Timeline, WithinRunOrderIsArrivalOrderAtEqualTimestamps) {
  timeline tl;
  stream_state st;
  apply_ok(tl, st, hello("r"));
  apply_ok(tl, st, instant("first", 500));
  apply_ok(tl, st, instant("second", 500));  // same virtual time
  const auto json = tl.chrome_json();
  EXPECT_LT(json.find("\"first\""), json.find("\"second\""));
}

TEST(Timeline, AdaptEventsBecomeInstantsWithPolicyArgs) {
  timeline tl;
  stream_state st;
  apply_ok(tl, st, hello("r"));
  apply_ok(tl, st, adapt("qlock", "spin-then-block(30)", 250));
  const auto json = tl.chrome_json();
  EXPECT_NE(json.find("\"qlock.adapt\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"d_c\":\"spin-then-block(30)\""), std::string::npos);
  EXPECT_NE(json.find("\"run\":\"r\""), std::string::npos);
  EXPECT_NE(json.find("\"v_i\":2"), std::string::npos);
}

TEST(Timeline, MetricsLatestSnapshotWinsAndHistogramsMerge) {
  timeline tl;
  stream_state s1, s2;
  apply_ok(tl, s1, hello("r1"));
  apply_ok(tl, s2, hello("r2"));

  const auto metrics_with = [](double value, std::uint64_t count) {
    obs::metrics m;
    auto& h = m.get_histogram("wait_us");
    for (std::uint64_t i = 0; i < count; ++i) h.add(value);
    return m;
  };
  // r1 publishes twice: the older snapshot must be superseded, not merged.
  apply_ok(tl, s1, message{snapshot_metrics(metrics_with(10.0, 100), 1)});
  apply_ok(tl, s1, message{snapshot_metrics(metrics_with(10.0, 3), 2)});
  apply_ok(tl, s2, message{snapshot_metrics(metrics_with(1000.0, 3), 2)});

  const auto snap = tl.snapshot();
  ASSERT_EQ(snap.merged_histograms.count("wait_us"), 1u);
  const auto& merged = snap.merged_histograms.at("wait_us");
  EXPECT_EQ(merged.count(), 6u);  // 3 from each run's LATEST snapshot
  // Half the samples at 10us, half at 1000us: p25 low, p99 high.
  EXPECT_LT(merged.percentile(25.0), 20.0);
  EXPECT_GT(merged.percentile(99.0), 500.0);
}

TEST(Timeline, RunAccountingAndStreamClose) {
  timeline tl;
  stream_state s1, s2;
  apply_ok(tl, s1, hello("r1"));
  apply_ok(tl, s2, hello("r2"));
  EXPECT_EQ(tl.runs_seen(), 2u);
  EXPECT_EQ(tl.runs_done(), 0u);

  apply_ok(tl, s1, message{bye_msg{4}});
  EXPECT_EQ(tl.runs_done(), 1u);

  tl.stream_closed(s2);  // died without bye: still terminates
  EXPECT_EQ(tl.runs_done(), 2u);

  const auto snap = tl.snapshot();
  ASSERT_EQ(snap.runs.size(), 2u);
  EXPECT_EQ(snap.runs[0].run_id, "r1");
  EXPECT_EQ(snap.runs[0].dropped, 4u);
  EXPECT_TRUE(snap.runs[1].done);
}

TEST(Timeline, SnapshotCountsAdaptDecisions) {
  timeline tl;
  stream_state st;
  apply_ok(tl, st, hello("r"));
  apply_ok(tl, st, adapt("lk0", "pure-spin(400)", 10));
  apply_ok(tl, st, adapt("lk0", "blocking", 20));
  apply_ok(tl, st, adapt("lk1", "blocking", 30));
  apply_ok(tl, st, message{progress_msg{2, 8, "cell"}});
  apply_ok(tl, st, message{result_msg{"cell", 1, "mutual-exclusion"}});

  const auto snap = tl.snapshot();
  ASSERT_EQ(snap.runs.size(), 1u);
  const auto& r = snap.runs[0];
  EXPECT_EQ(r.adapt_total, 3u);
  EXPECT_EQ(r.decision_counts.at("blocking"), 2u);
  EXPECT_EQ(r.decision_counts.at("pure-spin(400)"), 1u);
  EXPECT_EQ(r.object_state.at("lk0"), "blocking");  // last decision wins
  EXPECT_EQ(r.object_state.at("lk1"), "blocking");
  EXPECT_EQ(r.last_adapt, "lk1: blocking");
  EXPECT_EQ(r.progress.done, 2u);
  EXPECT_EQ(r.results, 1u);
  EXPECT_EQ(r.failures, 1u);
}

TEST(Timeline, DroppedFramesSurfaceInExport) {
  timeline tl;
  stream_state st;
  apply_ok(tl, st, hello("r"));
  apply_ok(tl, st, message{bye_msg{17}});
  EXPECT_NE(tl.chrome_json().find("\"droppedEvents\":17"), std::string::npos);
}

TEST(Dashboard, RendersRunsOccupancyAndPercentiles) {
  timeline tl;
  stream_state st;
  apply_ok(tl, st, hello("burst-1", "bench_serve_ct"));
  apply_ok(tl, st, adapt("g0.lock", "pure-spin(400)", 100));
  apply_ok(tl, st, adapt("g1.lock", "blocking", 200));
  apply_ok(tl, st, message{progress_msg{1, 3, "adaptive"}});
  obs::metrics m;
  auto& h = m.get_histogram("serve.adaptive.latency_us");
  for (const double v : {10.0, 20.0, 30.0, 4000.0}) h.add(v);
  apply_ok(tl, st, message{snapshot_metrics(m, 300)});

  const auto text = render_dashboard(tl.snapshot());
  EXPECT_NE(text.find("burst-1"), std::string::npos);
  EXPECT_NE(text.find("bench_serve_ct"), std::string::npos);
  EXPECT_NE(text.find("adaptations: 2"), std::string::npos);
  EXPECT_NE(text.find("blocking=1"), std::string::npos);
  EXPECT_NE(text.find("pure-spin(400)=1"), std::string::npos);
  EXPECT_NE(text.find("1/3"), std::string::npos);
  EXPECT_NE(text.find("serve.adaptive.latency_us"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  // No ANSI escapes unless color is requested.
  EXPECT_EQ(text.find('\x1b'), std::string::npos);
}

}  // namespace
}  // namespace adx::telemetry
