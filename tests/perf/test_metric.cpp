// Metric model: clock tagging, quantile summaries, and the scenario runner's
// contract (implicit wall_ns, determinism enforcement, full reporting).
#include "perf/metric.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "perf/scenario.hpp"

namespace adx::perf {
namespace {

TEST(MetricClock, RoundTripsThroughStrings) {
  EXPECT_STREQ(to_string(metric_clock::virtual_time), "virtual");
  EXPECT_STREQ(to_string(metric_clock::wall), "wall");
  EXPECT_EQ(parse_metric_clock("virtual"), metric_clock::virtual_time);
  EXPECT_EQ(parse_metric_clock("wall"), metric_clock::wall);
  EXPECT_FALSE(parse_metric_clock("cpu").has_value());
}

TEST(Summarize, EmptyInputIsAllZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.median, 0);
  EXPECT_EQ(s.iqr, 0);
  EXPECT_EQ(s.min, 0);
}

TEST(Summarize, SingleValue) {
  const auto s = summarize({42.0});
  EXPECT_EQ(s.median, 42.0);
  EXPECT_EQ(s.iqr, 0.0);
  EXPECT_EQ(s.min, 42.0);
}

TEST(Summarize, OddCountMedianIsMiddleOrderStatistic) {
  const auto s = summarize({5, 1, 9, 3, 7});
  EXPECT_EQ(s.median, 5.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.iqr, 4.0);  // Q3=7, Q1=3
}

TEST(Summarize, EvenCountInterpolates) {
  const auto s = summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_EQ(s.min, 1.0);
}

TEST(Summarize, InputOrderIrrelevant) {
  const auto a = summarize({9, 1, 5, 3, 7});
  const auto b = summarize({1, 3, 5, 7, 9});
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.iqr, b.iqr);
  EXPECT_EQ(a.min, b.min);
}

TEST(RunScenario, ZeroRepsRejected) {
  const scenario sc{"s", "d", [] { return scenario_result{}; }};
  EXPECT_THROW((void)run_scenario(sc, 0, 0), std::invalid_argument);
}

TEST(RunScenario, AddsImplicitWallMetricAndRunsWarmup) {
  int calls = 0;
  const scenario sc{"s", "d", [&] {
    ++calls;
    return scenario_result{{{"v", "count", metric_clock::virtual_time, 7.0}}};
  }};
  const auto sum = run_scenario(sc, 3, 2);
  EXPECT_EQ(calls, 5);  // 2 warmup + 3 measured
  ASSERT_EQ(sum.metrics.size(), 2u);
  EXPECT_EQ(sum.metrics[0].name, "v");
  EXPECT_EQ(sum.metrics[0].stats.median, 7.0);
  EXPECT_EQ(sum.metrics[0].reps, 3u);
  EXPECT_EQ(sum.metrics[1].name, "wall_ns");
  EXPECT_EQ(sum.metrics[1].clock, metric_clock::wall);
  EXPECT_GT(sum.metrics[1].stats.median, 0.0);
}

TEST(RunScenario, VirtualMetricVaryingAcrossRepsThrows) {
  int rep = 0;
  const scenario sc{"drifty", "d", [&] {
    return scenario_result{
        {{"v", "us", metric_clock::virtual_time, static_cast<double>(rep++)}}};
  }};
  EXPECT_THROW((void)run_scenario(sc, 3, 0), std::logic_error);
}

TEST(RunScenario, WallMetricMayVaryAcrossReps) {
  int rep = 0;
  const scenario sc{"noisy", "d", [&] {
    return scenario_result{
        {{"rate", "events/s", metric_clock::wall, 100.0 + rep++, true}}};
  }};
  const auto sum = run_scenario(sc, 3, 0);
  EXPECT_EQ(sum.metrics[0].stats.median, 101.0);
  EXPECT_TRUE(sum.metrics[0].higher_better);
}

TEST(RunScenario, MetricMissingFromSomeRepThrows) {
  int rep = 0;
  const scenario sc{"flaky", "d", [&] {
    scenario_result r;
    if (rep++ == 0) r.metrics.push_back({"sometimes", "us", metric_clock::wall, 1.0});
    return r;
  }};
  EXPECT_THROW((void)run_scenario(sc, 2, 0), std::logic_error);
}

TEST(RunScenario, MetricChangingClockThrows) {
  int rep = 0;
  const scenario sc{"shifty", "d", [&] {
    return scenario_result{{{"m", "us",
                             rep++ == 0 ? metric_clock::virtual_time : metric_clock::wall,
                             1.0}}};
  }};
  EXPECT_THROW((void)run_scenario(sc, 2, 0), std::logic_error);
}

}  // namespace
}  // namespace adx::perf
