// The scenario registry: completeness, naming discipline, and determinism of
// the virtual-clock metrics that the regression gate compares exactly.
#include "perf/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

namespace adx::perf {
namespace {

TEST(Scenarios, NamesAreUniqueAndDescribed) {
  std::set<std::string> seen;
  for (const auto& s : all_scenarios()) {
    EXPECT_TRUE(seen.insert(s.name).second) << "duplicate scenario " << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
    EXPECT_TRUE(s.body != nullptr) << s.name;
  }
  EXPECT_GE(seen.size(), 15u);
}

TEST(Scenarios, RequiredGateScenariosExist) {
  // The committed baselines and CI perf gate are keyed on these names.
  for (const char* name :
       {"bench_table7_cycle_adaptive", "bench_fig1_cs_sweep", "sim_event_queue_churn",
        "bench_table1_tsp_central", "bench_table4_lock_cost"}) {
    EXPECT_NE(find_scenario(name), nullptr) << name;
  }
}

TEST(Scenarios, PolicyAblationScenarioIsRegistered) {
  const auto* sc = find_scenario("bench_abl_policy");
  ASSERT_NE(sc, nullptr);
  EXPECT_FALSE(sc->description.empty());
}

// The async execution-mode ablation: the scenario must exist for the perf
// gate, and one run must show the daemon actually engaged — wakeups
// happened and the queued observations reached the policy (the async rows
// are meaningless if the runtime silently stayed sync).
TEST(Scenarios, AsyncPolicyScenarioRunsTheDaemon) {
  const auto* sc = find_scenario("bench_abl_async_policy");
  ASSERT_NE(sc, nullptr);
  const auto sum = run_scenario(*sc, 1, 0);
  const auto value = [&](const std::string& name) -> double {
    for (const auto& m : sum.metrics) {
      if (m.name == name) return m.stats.median;
    }
    ADD_FAILURE() << "metric not found: " << name;
    return 0.0;
  };
  EXPECT_GT(value("sync_total_virtual_ms"), 0.0);
  EXPECT_GT(value("async_total_virtual_ms"), 0.0);
  EXPECT_GT(value("async_daemon_ticks"), 0.0);
  EXPECT_GT(value("async_pumped"), 0.0);
}

TEST(Scenarios, FindRejectsUnknownNames) {
  EXPECT_EQ(find_scenario("bench_nonexistent"), nullptr);
  EXPECT_EQ(find_scenario(""), nullptr);
}

// Every scenario's virtual-clock metrics must be identical across
// repetitions — the property the whole exact-match gate rests on. The
// runner enforces it by throwing; two reps of the cheapest scenarios prove
// the wiring end to end.
TEST(Scenarios, MicrobenchVirtualMetricsAreDeterministic) {
  for (const char* name : {"sim_event_queue_churn", "bench_table4_lock_cost"}) {
    const auto* sc = find_scenario(name);
    ASSERT_NE(sc, nullptr);
    const auto sum = run_scenario(*sc, 2, 0);
    bool any_virtual = false;
    for (const auto& m : sum.metrics) {
      if (m.clock != metric_clock::virtual_time) continue;
      any_virtual = true;
      EXPECT_EQ(m.stats.iqr, 0.0) << name << ":" << m.name;
    }
    EXPECT_TRUE(any_virtual) << name;
  }
}

// The headline property of the src/objects benches (mirrors the paper's
// claim for adaptive locks): the adaptive column must track the better
// fixed configuration on every workload shape, never losing to both. The
// metrics are virtual-clock and therefore exact, so this is a hard
// relation, not a tolerance band.
TEST(Scenarios, AdaptiveHashMapTracksTheBetterFixedStriping) {
  const auto* sc = find_scenario("bench_hashmap_mixed");
  ASSERT_NE(sc, nullptr);
  const auto sum = run_scenario(*sc, 1, 0);
  const auto value = [&](const std::string& name) -> double {
    for (const auto& m : sum.metrics) {
      if (m.name == name) return m.stats.median;
    }
    ADD_FAILURE() << "metric not found: " << name;
    return 0.0;
  };
  for (const char* shape : {"low", "high"}) {
    const std::string s(shape);
    const double fixed4 = value(s + "_fixed4_virtual_ms");
    const double fixed64 = value(s + "_fixed64_virtual_ms");
    const double adaptive = value(s + "_adaptive_virtual_ms");
    EXPECT_LT(adaptive, std::max(fixed4, fixed64))
        << s << ": adaptive " << adaptive << " lost to both fixed configs ("
        << fixed4 << ", " << fixed64 << ")";
  }
}

TEST(Scenarios, AdaptiveMonitorTracksTheBetterFixedMode) {
  const auto* sc = find_scenario("bench_monitor_delegation");
  ASSERT_NE(sc, nullptr);
  const auto sum = run_scenario(*sc, 1, 0);
  const auto value = [&](const std::string& name) -> double {
    for (const auto& m : sum.metrics) {
      if (m.name == name) return m.stats.median;
    }
    ADD_FAILURE() << "metric not found: " << name;
    return 0.0;
  };
  for (const char* shape : {"short", "long"}) {
    const std::string s(shape);
    const double classic = value(s + "_classic_virtual_ms");
    const double delegated = value(s + "_delegated_virtual_ms");
    const double adaptive = value(s + "_adaptive_virtual_ms");
    EXPECT_LT(adaptive, std::max(classic, delegated))
        << s << ": adaptive " << adaptive << " lost to both fixed modes ("
        << classic << ", " << delegated << ")";
  }
}

TEST(Scenarios, EveryScenarioReportsAtLeastOneVirtualMetric) {
  // Statically declared in every body; spot-check by name conventions. A
  // scenario with only wall metrics would silently weaken the exact gate.
  for (const auto& s : all_scenarios()) {
    EXPECT_TRUE(s.name.rfind("bench_", 0) == 0 || s.name.rfind("sim_", 0) == 0)
        << "scenario name '" << s.name << "' should state what it mirrors";
  }
}

}  // namespace
}  // namespace adx::perf
