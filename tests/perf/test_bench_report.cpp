// BENCH.json round-trip and the regression-gate comparison semantics:
// virtual metrics exact, wall metrics banded, tolerance refused on
// deterministic metrics, direction-aware rate gating.
#include "perf/bench_report.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace adx::perf {
namespace {

bench_report sample_report() {
  bench_report r;
  r.reps = 5;
  r.warmup = 1;
  r.note = "unit test \"quoted\" note";
  scenario_summary s;
  s.name = "scn";
  s.metrics.push_back({"virt_us", "us", metric_clock::virtual_time,
                       {123.456789012345678, 0.0, 123.456789012345678}, 5, false});
  s.metrics.push_back({"wall_ns", "ns", metric_clock::wall, {1000.0, 50.0, 930.0}, 5, false});
  s.metrics.push_back(
      {"rate", "events/s", metric_clock::wall, {5000.0, 100.0, 4800.0}, 5, true});
  r.scenarios.push_back(std::move(s));
  return r;
}

TEST(BenchReport, JsonRoundTripsExactly) {
  const auto r = sample_report();
  const auto back = bench_report::from_json(r.to_json());
  EXPECT_EQ(back.version, r.version);
  EXPECT_EQ(back.reps, r.reps);
  EXPECT_EQ(back.warmup, r.warmup);
  EXPECT_EQ(back.note, r.note);
  ASSERT_EQ(back.scenarios.size(), 1u);
  const auto& m = back.scenarios[0].metrics;
  ASSERT_EQ(m.size(), 3u);
  // Bit-exact: the gate demands exact equality on virtual metrics, so the
  // formatter must not round.
  EXPECT_EQ(m[0].stats.median, 123.456789012345678);
  EXPECT_EQ(m[0].clock, metric_clock::virtual_time);
  EXPECT_FALSE(m[0].higher_better);
  EXPECT_TRUE(m[2].higher_better);
  EXPECT_EQ(m[2].unit, "events/s");
}

TEST(BenchReport, EmissionIsDeterministic) {
  EXPECT_EQ(sample_report().to_json(), sample_report().to_json());
}

TEST(BenchReport, RejectsNewerVersion) {
  EXPECT_THROW((void)bench_report::from_json(R"({"bench_version": 99})"),
               std::invalid_argument);
}

TEST(BenchReport, RejectsMalformedJsonAndBadEnums) {
  EXPECT_THROW((void)bench_report::from_json("{"), std::invalid_argument);
  EXPECT_THROW((void)bench_report::from_json(
                   R"({"scenarios": [{"name": "s", "metrics": [{"name": "m", "clock": "cpu"}]}]})"),
               std::invalid_argument);
  EXPECT_THROW((void)bench_report::from_json(
                   R"({"scenarios": [{"name": "s", "metrics": [{"name": "m", "dir": "left"}]}]})"),
               std::invalid_argument);
  EXPECT_THROW((void)bench_report::from_json(R"({"scenarios": [{"metrics": []}]})"),
               std::invalid_argument);
}

TEST(ToleranceSpec, ParsesGlobalAndPerMetric) {
  const auto t = tolerance_spec::parse("0.3,wall_ns=0.5,rate=0.1");
  EXPECT_DOUBLE_EQ(t.wall_default, 0.3);
  EXPECT_DOUBLE_EQ(t.for_metric("wall_ns"), 0.5);
  EXPECT_DOUBLE_EQ(t.for_metric("rate"), 0.1);
  EXPECT_DOUBLE_EQ(t.for_metric("other"), 0.3);
}

TEST(ToleranceSpec, EmptyTextKeepsDefault) {
  EXPECT_DOUBLE_EQ(tolerance_spec::parse("").wall_default, 0.25);
}

TEST(ToleranceSpec, RejectsMalformedInput) {
  EXPECT_THROW((void)tolerance_spec::parse("abc"), std::invalid_argument);
  EXPECT_THROW((void)tolerance_spec::parse("0.2,0.3"), std::invalid_argument);  // 2nd global
  EXPECT_THROW((void)tolerance_spec::parse("=0.3"), std::invalid_argument);
  EXPECT_THROW((void)tolerance_spec::parse("wall_ns=-1"), std::invalid_argument);
  EXPECT_THROW((void)tolerance_spec::parse("wall_ns=1e9"), std::invalid_argument);
}

TEST(ValidateTolerance, RefusesDeterministicMetricsAndUnknownNames) {
  const auto base = sample_report();
  tolerance_spec t;
  t.per_metric["virt_us"] = 0.1;  // virtual-clock metric: refused
  t.per_metric["nonexistent"] = 0.1;
  const auto errors = validate_tolerance(t, base);
  ASSERT_EQ(errors.size(), 2u);
  const std::string joined = errors[0] + "\n" + errors[1];
  EXPECT_NE(joined.find("virt_us"), std::string::npos);
  EXPECT_NE(joined.find("exact match"), std::string::npos);
  EXPECT_NE(joined.find("nonexistent"), std::string::npos);

  tolerance_spec ok;
  ok.per_metric["wall_ns"] = 0.4;
  EXPECT_TRUE(validate_tolerance(ok, base).empty());
}

TEST(Compare, IdenticalReportsProduceNoFindings) {
  const auto r = sample_report();
  const auto cmp = compare_reports(r, r, {});
  EXPECT_FALSE(cmp.failed());
  EXPECT_TRUE(cmp.findings.empty());
}

TEST(Compare, VirtualDivergenceIsFatalInBothDirections) {
  const auto base = sample_report();
  for (const double factor : {1.001, 0.999}) {
    auto cur = sample_report();
    cur.scenarios[0].metrics[0].stats.median *= factor;
    const auto cmp = compare_reports(cur, base, {});
    ASSERT_TRUE(cmp.failed());
    EXPECT_EQ(cmp.findings[0].kind, finding_kind::virtual_divergence);
    EXPECT_EQ(cmp.regressed_scenarios(), std::vector<std::string>{"scn"});
  }
}

TEST(Compare, WallWithinBandPasses) {
  const auto base = sample_report();
  auto cur = sample_report();
  cur.scenarios[0].metrics[1].stats.median = 1200.0;  // +20% < 25% default
  EXPECT_FALSE(compare_reports(cur, base, {}).failed());
}

TEST(Compare, WallBeyondToleranceAndBandFails) {
  const auto base = sample_report();
  auto cur = sample_report();
  // limit = 1000*1.25 + 1.5*max(50,50) = 1325
  cur.scenarios[0].metrics[1].stats.median = 1400.0;
  const auto cmp = compare_reports(cur, base, {});
  ASSERT_TRUE(cmp.failed());
  EXPECT_EQ(cmp.findings[0].kind, finding_kind::wall_regression);
  EXPECT_EQ(cmp.findings[0].metric, "wall_ns");
}

TEST(Compare, NoisyCurrentRunWidensItsOwnBand) {
  const auto base = sample_report();
  auto cur = sample_report();
  cur.scenarios[0].metrics[1].stats.median = 1400.0;
  cur.scenarios[0].metrics[1].stats.iqr = 200.0;  // limit: 1250 + 300 = 1550
  EXPECT_FALSE(compare_reports(cur, base, {}).failed());
}

TEST(Compare, RateDropIsARegressionRateGainIsNot) {
  const auto base = sample_report();
  auto slower = sample_report();
  // rate: higher_better. lower bound = 5000*0.75 - 150 = 3600.
  slower.scenarios[0].metrics[2].stats.median = 3000.0;
  const auto cmp = compare_reports(slower, base, {});
  ASSERT_TRUE(cmp.failed());
  EXPECT_EQ(cmp.findings[0].kind, finding_kind::wall_regression);
  EXPECT_EQ(cmp.findings[0].metric, "rate");

  auto faster = sample_report();
  faster.scenarios[0].metrics[2].stats.median = 9000.0;
  const auto cmp2 = compare_reports(faster, base, {});
  EXPECT_FALSE(cmp2.failed());
  ASSERT_EQ(cmp2.findings.size(), 1u);
  EXPECT_EQ(cmp2.findings[0].kind, finding_kind::wall_improvement);
}

TEST(Compare, MissingScenarioAndMetricAreFatal) {
  const auto base = sample_report();
  bench_report empty;
  const auto cmp = compare_reports(empty, base, {});
  ASSERT_TRUE(cmp.failed());
  EXPECT_EQ(cmp.findings[0].kind, finding_kind::missing_scenario);

  auto gappy = sample_report();
  gappy.scenarios[0].metrics.erase(gappy.scenarios[0].metrics.begin());
  const auto cmp2 = compare_reports(gappy, base, {});
  ASSERT_TRUE(cmp2.failed());
  EXPECT_EQ(cmp2.findings[0].kind, finding_kind::missing_metric);
}

TEST(Compare, CurrentOnlyEntriesAreInformational) {
  const auto base = sample_report();
  auto cur = sample_report();
  cur.scenarios[0].metrics.push_back(
      {"extra", "us", metric_clock::wall, {1.0, 0.0, 1.0}, 5, false});
  scenario_summary s2;
  s2.name = "brand_new";
  cur.scenarios.push_back(s2);
  const auto cmp = compare_reports(cur, base, {});
  EXPECT_FALSE(cmp.failed());
  ASSERT_EQ(cmp.findings.size(), 2u);
  EXPECT_EQ(cmp.findings[0].kind, finding_kind::new_entry);
  EXPECT_EQ(cmp.findings[1].kind, finding_kind::new_entry);
}

TEST(Compare, DescribeNamesTheProblem) {
  const auto base = sample_report();
  auto cur = sample_report();
  cur.scenarios[0].metrics[1].stats.median = 2000.0;
  const auto cmp = compare_reports(cur, base, {});
  ASSERT_TRUE(cmp.failed());
  const auto text = cmp.findings[0].describe();
  EXPECT_NE(text.find("wall-regression"), std::string::npos);
  EXPECT_NE(text.find("scn"), std::string::npos);
  EXPECT_NE(text.find("wall_ns"), std::string::npos);
  EXPECT_NE(text.find("+100.0%"), std::string::npos);
}

}  // namespace
}  // namespace adx::perf
