#include "sim/perturb.hpp"

#include <stdexcept>

namespace adx::sim {

const char* to_string(const perturb_profile& p) {
  if (p == perturb_profile::none()) return "none";
  if (p == perturb_profile::ties()) return "ties";
  if (p == perturb_profile::delay()) return "delay";
  if (p == perturb_profile::preempt()) return "preempt";
  if (p == perturb_profile::latency()) return "latency";
  if (p == perturb_profile::chaos()) return "chaos";
  return "custom";
}

perturb_profile parse_perturb_profile(std::string_view name) {
  if (name == "none") return perturb_profile::none();
  if (name == "ties") return perturb_profile::ties();
  if (name == "delay") return perturb_profile::delay();
  if (name == "preempt") return perturb_profile::preempt();
  if (name == "latency") return perturb_profile::latency();
  if (name == "chaos") return perturb_profile::chaos();
  throw std::invalid_argument("unknown perturbation profile: '" + std::string(name) +
                              "' (valid: none, ties, delay, preempt, latency, chaos)");
}

}  // namespace adx::sim
