// The execution domain: the one interface every layer above sim uses to
// drive a simulation, whether it runs on a single sequential event_queue or
// on the sharded conservative-lookahead DES.
//
// A domain partitions the simulated machine into `places` — one per NUMA
// group (machine_config::group_of) — and maps each place onto an executing
// shard. Everything a workload, runtime, lock, or policy daemon does falls
// into exactly two categories:
//
//   * Place-local work: scheduled directly on `queue_of(place)` (the shard's
//     own 4-ary heap). Legal from setup code and from events already
//     executing on the same shard. This is the hot path — zero abstraction
//     cost beyond a pointer indirection.
//   * Cross-place influence: `send()` — timestamped at least `lookahead()`
//     in the future (== is the horizon, and the canonical transit time),
//     tagged with a shard-invariant origin (e.g. group << 32 | counter),
//     buffered per shard and merged at window barriers in (at, origin)
//     order.
//
// Both implementations run the identical window grid — the same barrier
// positions, the same delivery batches, the same adaptive-lookahead state
// machine driven only by shard-invariant delivered-send counts — so a
// workload that follows the discipline produces bit-identical results on the
// sequential queue and on any shard/worker count. `queue_domain` exists
// (rather than delivering sends inline on the single heap) precisely because
// inline delivery would assign tie-break seqs at emission order instead of
// barrier-merge order and silently diverge from the sharded run on
// same-timestamp ties.
#pragma once

#include <cstdint>
#include <memory>

#include "exec/job_executor.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine_config.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace adx::sim {

/// Virtual-metrics snapshot of a domain run. Every field is a pure function
/// of the logical schedule — bit-identical at every shard and worker count.
struct domain_stats {
  std::uint64_t windows = 0;          ///< synchronization rounds executed
  std::uint64_t cross_sends = 0;      ///< deliveries merged at barriers
  std::uint64_t widened_windows = 0;  ///< rounds run with widen factor > 1
  std::uint64_t peak_widen = 1;       ///< largest widen factor reached
  std::uint64_t slab_slots = 0;       ///< callback slots acquired, all queues
  std::uint64_t callback_spills = 0;  ///< oversized callbacks spilled to heap

  friend bool operator==(const domain_stats&, const domain_stats&) = default;
};

class event_domain {
 public:
  virtual ~event_domain() = default;

  /// Number of places (== the machine's NUMA group count).
  [[nodiscard]] virtual unsigned places() const = 0;

  /// The conservative horizon: minimum virtual time for any influence to
  /// cross a place boundary (machine_config::min_cross_group_latency()).
  [[nodiscard]] virtual vdur lookahead() const = 0;

  /// The queue executing `place`'s events. Hand it to the place's machine;
  /// schedule on it only from setup code or from that shard's own events.
  [[nodiscard]] virtual event_queue& queue_of(unsigned place) = 0;

  /// Cross-place send: runs `fn` on `to`'s shard at `at`, which must be at
  /// least `lookahead()` past the sending shard's clock (== allowed).
  /// `origin` must be unique per delivery and must not encode a shard index.
  virtual void send(unsigned from, unsigned to, vtime at, std::uint64_t origin,
                    event_queue::callback fn) = 0;

  /// Per-place deterministic random stream, seeded
  /// seed ^ (0x9e3779b97f4a7c15 * (place + 1)) — a pure function of
  /// (seed, place), so re-sharding cannot reorder any draw sequence.
  [[nodiscard]] virtual rng& stream(unsigned place) = 0;

  /// Runs the window loop until drained, or until the first barrier at which
  /// at least `max_events` events have run (shard-invariant stopping point).
  /// `ex` may be null for sequential execution; results are identical.
  virtual std::uint64_t run(exec::job_executor* ex,
                            std::uint64_t max_events = ~0ULL) = 0;

  /// Latest clock across places — the simulation's end time after run().
  [[nodiscard]] virtual vtime now() const = 0;
  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual std::uint64_t processed() const = 0;
  [[nodiscard]] virtual domain_stats stats() const = 0;
};

/// How to build a domain for a machine.
struct domain_options {
  /// Executing shards; clamped to the machine's group count. 1 = the
  /// sequential queue (queue_domain).
  unsigned shards = 1;
  /// Seed for the per-place streams (a workload typically passes its own).
  std::uint64_t seed = 0x5eedULL;
  /// Opt-in adaptive lookahead: widen the window up to `max_widen` L-sized
  /// sub-segments after rounds with zero cross-place traffic; decay to 1 on
  /// any delivery. L stays the correctness floor.
  bool adaptive_lookahead = false;
  unsigned max_widen = 8;
};

/// Builds the domain `cfg` calls for: one place per NUMA group, lookahead
/// from the interconnect, sequential or sharded per `opt.shards`.
[[nodiscard]] std::unique_ptr<event_domain> make_event_domain(
    const machine_config& cfg, const domain_options& opt = {});

}  // namespace adx::sim
