// Virtual time for the discrete-event NUMA simulator.
//
// The simulator models a BBN Butterfly GP1000-class machine; all latencies in
// the paper are reported in microseconds, so virtual time is kept in integer
// nanoseconds to give two decimal digits of microsecond resolution with exact
// arithmetic (no floating-point drift across millions of events).
#pragma once

#include <cstdint>
#include <compare>

namespace adx::sim {

/// A span of virtual time. Signed so that differences are representable.
struct vdur {
  std::int64_t ns{0};

  friend constexpr vdur operator+(vdur a, vdur b) { return {a.ns + b.ns}; }
  friend constexpr vdur operator-(vdur a, vdur b) { return {a.ns - b.ns}; }
  friend constexpr vdur operator*(vdur a, std::int64_t k) { return {a.ns * k}; }
  friend constexpr vdur operator*(std::int64_t k, vdur a) { return {a.ns * k}; }
  friend constexpr vdur operator/(vdur a, std::int64_t k) { return {a.ns / k}; }
  constexpr vdur& operator+=(vdur o) { ns += o.ns; return *this; }
  constexpr vdur& operator-=(vdur o) { ns -= o.ns; return *this; }
  friend constexpr auto operator<=>(vdur, vdur) = default;

  /// Value in (fractional) microseconds, for reporting.
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns) / 1e3; }
  /// Value in (fractional) milliseconds, for reporting.
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns) / 1e6; }
};

/// An absolute point on the simulation clock (ns since simulation start).
struct vtime {
  std::uint64_t ns{0};

  friend constexpr vtime operator+(vtime t, vdur d) {
    return {t.ns + static_cast<std::uint64_t>(d.ns)};
  }
  friend constexpr vdur operator-(vtime a, vtime b) {
    return {static_cast<std::int64_t>(a.ns) - static_cast<std::int64_t>(b.ns)};
  }
  friend constexpr auto operator<=>(vtime, vtime) = default;

  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns) / 1e6; }
};

namespace detail {
/// Round-to-nearest conversion: naive truncation turns 0.7us into 699ns
/// because 0.7 is not exactly representable.
constexpr std::int64_t round_ns(double v) {
  return static_cast<std::int64_t>(v >= 0 ? v + 0.5 : v - 0.5);
}
}  // namespace detail

constexpr vdur nanoseconds(std::int64_t n) { return {n}; }
constexpr vdur microseconds(double u) { return {detail::round_ns(u * 1e3)}; }
constexpr vdur milliseconds(double m) { return {detail::round_ns(m * 1e6)}; }
constexpr vdur seconds(double s) { return {detail::round_ns(s * 1e9)}; }

/// Returns the later of two time points.
constexpr vtime max(vtime a, vtime b) { return a < b ? b : a; }

}  // namespace adx::sim
