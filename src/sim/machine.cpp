#include "sim/machine.hpp"

namespace adx::sim {

machine::machine(machine_config cfg)
    : cfg_(cfg),
      owned_events_(std::make_unique<event_queue>()),
      events_(owned_events_.get()),
      rng_(cfg.seed) {
  init();
}

machine::machine(machine_config cfg, event_queue& queue)
    : cfg_(cfg), events_(&queue), rng_(cfg.seed) {
  init();
}

void machine::init() {
  if (cfg_.nodes == 0) throw std::invalid_argument("machine: nodes must be > 0");
  modules_.reserve(cfg_.nodes);
  for (node_id n = 0; n < cfg_.nodes; ++n) modules_.emplace_back(n);
  if (cfg_.wire_model == interconnect_model::butterfly) {
    network_ = std::make_unique<butterfly_network>(
        cfg_.nodes, cfg_.switch_stage_latency, cfg_.switch_service);
  }
}

vtime machine::access(node_id from, node_id home, access_kind kind) {
  if (from >= cfg_.nodes || home >= cfg_.nodes) {
    throw std::out_of_range("machine::access: node out of range");
  }
  const bool local = from == home;
  const vdur service = kind == access_kind::rmw ? cfg_.atomic_service : cfg_.mem_service;

  switch (kind) {
    case access_kind::read:
      ++(local ? counts_.local_reads : counts_.remote_reads);
      break;
    case access_kind::write:
      ++(local ? counts_.local_writes : counts_.remote_writes);
      break;
    case access_kind::rmw:
      ++(local ? counts_.local_rmws : counts_.remote_rmws);
      break;
  }

  // Injected interconnect congestion spike (schedule exploration): extra
  // latency on the outbound leg, so the access also occupies the module
  // later — downstream queueing shifts exactly as a real spike would.
  const vdur spike = perturber_ ? perturber_->access_delay(from, home) : vdur{};

  if (!local && network_) {
    // Staged network: queue through the switches out and back.
    const vtime arrival = network_->traverse(from, home, now() + spike);
    const vtime done_at_module = modules_[home].service(arrival, service);
    return network_->traverse(home, from, done_at_module);
  }
  // Hierarchical model: intra-group remote accesses ride the cheap group
  // wire; only cross-group traffic pays the backbone. Other models price
  // every remote access at remote_wire, exactly as before.
  const bool near = cfg_.wire_model == interconnect_model::hierarchical &&
                    cfg_.group_of(from) == cfg_.group_of(home);
  const vdur wire = local ? cfg_.local_wire : near ? cfg_.group_wire : cfg_.remote_wire;
  const vtime arrival = now() + wire + spike;
  const vtime done_at_module = modules_[home].service(arrival, service);
  return done_at_module + wire;
}

vtime machine::access_n(node_id from, node_id home, access_kind kind, std::uint64_t n) {
  vtime t = now();
  for (std::uint64_t i = 0; i < n; ++i) t = access(from, home, kind);
  return t;
}

vdur machine::total_queue_delay() const {
  vdur d{};
  for (const auto& m : modules_) d += m.total_queue_delay();
  return d;
}

}  // namespace adx::sim
