#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace adx::sim {

std::int64_t trace::max_value() const {
  std::int64_t m = 0;
  for (const auto& s : samples_) m = std::max(m, s.value);
  return m;
}

double trace::mean_value() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += static_cast<double>(s.value);
  return sum / static_cast<double>(samples_.size());
}

std::vector<std::int64_t> trace::rebucket_max(vtime horizon, std::size_t buckets) const {
  std::vector<std::int64_t> out(buckets, 0);
  if (buckets == 0) return out;
  std::vector<bool> seen(buckets, false);
  for (const auto& s : samples_) {
    if (s.at.ns > horizon.ns) continue;
    // Zero horizon: every in-range sample (all at t == 0) belongs to the
    // first window rather than being dropped.
    auto idx = horizon.ns == 0
                   ? std::size_t{0}
                   : static_cast<std::size_t>(static_cast<unsigned __int128>(
                                                  s.at.ns) *
                                              buckets / (horizon.ns + 1));
    idx = std::min(idx, buckets - 1);
    out[idx] = seen[idx] ? std::max(out[idx], s.value) : s.value;
    seen[idx] = true;
  }
  // Carry the last observed value through empty windows so the chart reads as
  // a step function rather than dropping to zero between samples.
  std::int64_t last = 0;
  for (std::size_t i = 0; i < buckets; ++i) {
    if (seen[i]) {
      last = out[i];
    } else {
      out[i] = last;
    }
  }
  return out;
}

std::string trace::to_csv() const {
  std::ostringstream os;
  os << "time_us," << (name_.empty() ? "value" : name_) << '\n';
  for (const auto& s : samples_) {
    os << s.at.us() << ',' << s.value << '\n';
  }
  return os.str();
}

std::string trace::ascii_chart(vtime horizon, std::size_t width, std::size_t rows) const {
  const auto series = rebucket_max(horizon, width);
  std::int64_t peak = 1;
  for (auto v : series) peak = std::max(peak, v);

  std::ostringstream os;
  for (std::size_t r = rows; r-- > 0;) {
    // The threshold for printing a mark in this row.
    const double level = static_cast<double>(peak) * static_cast<double>(r + 1) /
                         static_cast<double>(rows);
    os << ' ';
    if (r == rows - 1) {
      std::ostringstream label;
      label << peak;
      os << label.str();
    } else {
      os << ' ';
    }
    os << " |";
    for (auto v : series) {
      os << (static_cast<double>(v) >= level ? '#' : ' ');
    }
    os << '\n';
  }
  os << "  0 +" << std::string(width, '-') << '\n';
  os << "     0" << std::string(width > 12 ? width - 12 : 0, ' ') << horizon.ms()
     << " ms\n";
  return os.str();
}

}  // namespace adx::sim
