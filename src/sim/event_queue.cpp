#include "sim/event_queue.hpp"

#include <utility>

namespace adx::sim {

void event_queue::schedule_at(vtime at, callback cb) {
  if (at < now_) at = now_;
  const auto seq = seq_++;
  const auto key = perturber_ ? perturber_->tie_key(at, seq) : seq;
  heap_.push(entry{at, key, seq, std::move(cb)});
}

bool event_queue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the callback must be moved out, so pop
  // via const_cast of the known-mutable element (standard idiom; the element
  // is immediately popped).
  auto& top = const_cast<entry&>(heap_.top());
  now_ = top.at;
  callback cb = std::move(top.cb);
  heap_.pop();
  ++processed_;
  cb();
  return true;
}

std::uint64_t event_queue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && run_one()) ++n;
  return n;
}

std::uint64_t event_queue::run_until(vtime until) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().at <= until && run_one()) ++n;
  return n;
}

}  // namespace adx::sim
