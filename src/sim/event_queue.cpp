#include "sim/event_queue.hpp"

#include <atomic>
#include <chrono>

namespace adx::sim {
namespace {

// The only process-global in the simulator. Atomic because independent
// event_queue instances now pop concurrently on exec::job_executor workers;
// relaxed is enough — it is a debug knob set before runs start, and the hot
// path only needs a data-race-free load.
std::atomic<std::uint64_t> g_debug_pop_delay_ns{0};

void debug_pop_delay() {
  const auto ns = g_debug_pop_delay_ns.load(std::memory_order_relaxed);
  if (ns == 0) return;
  const auto t0 = std::chrono::steady_clock::now();
  const auto until = t0 + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
  }
}

}  // namespace

void event_queue::set_debug_pop_delay_ns(std::uint64_t ns) {
  g_debug_pop_delay_ns.store(ns, std::memory_order_relaxed);
}
std::uint64_t event_queue::debug_pop_delay_ns() {
  return g_debug_pop_delay_ns.load(std::memory_order_relaxed);
}

event_queue::~event_queue() {
  // Pending events still own their callbacks; run their destructors. The
  // freelist slots hold nothing.
  for (const auto& h : heap_) {
    auto& s = slot_at(h.slot);
    s.destroy(s);
  }
}

void event_queue::grow_slab() {
  const auto base = static_cast<std::uint32_t>(chunks_.size()) * kEventsPerChunk;
  chunks_.push_back(std::make_unique<event_slot[]>(kEventsPerChunk));
  auto* chunk = chunks_.back().get();
  for (std::uint32_t i = 0; i + 1 < kEventsPerChunk; ++i) {
    chunk[i].next_free = base + i + 1;
  }
  // Splice ahead of any existing freelist (reserve_slots grows while slots
  // are still free; the hot path only grows when free_head_ == kNoSlot).
  chunk[kEventsPerChunk - 1].next_free = free_head_;
  free_head_ = base;
}

std::size_t event_queue::slab_free() const {
  std::size_t n = 0;
  for (auto s = free_head_; s != kNoSlot;
       s = chunks_[s / kEventsPerChunk][s % kEventsPerChunk].next_free) {
    ++n;
  }
  return n;
}

bool event_queue::run_one() {
  if (heap_.empty()) return false;
  debug_pop_delay();
  const handle h = heap_pop_top();
  now_ = h.at;
  ++processed_;
  // Invoke in place: chunks are never moved or freed, so the callback's
  // address stays valid even if it schedules further events (which may grow
  // the slab or the heap). The guard destroys the callback and recycles the
  // slot even if the callback throws.
  struct slot_guard {
    event_queue* q;
    std::uint32_t slot;
    ~slot_guard() {
      auto& s = q->slot_at(slot);
      s.destroy(s);
      q->release_slot(slot);
    }
  } guard{this, h.slot};
  auto& s = slot_at(h.slot);
  s.invoke(s);
  return true;
}

std::uint64_t event_queue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && run_one()) ++n;
  return n;
}

std::uint64_t event_queue::run_until(vtime until) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().at <= until && run_one()) ++n;
  return n;
}

std::uint64_t event_queue::run_until(vtime until, std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && !heap_.empty() && heap_.front().at <= until && run_one()) ++n;
  return n;
}

}  // namespace adx::sim
