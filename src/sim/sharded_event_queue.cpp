#include "sim/sharded_event_queue.hpp"

#include <algorithm>

namespace adx::sim {

bool sharded_event_queue::window(exec::job_executor* ex) {
  // Drain outboxes first so the shard heaps are the whole pending set. For
  // sends emitted inside a window this is the same barrier as flushing at
  // window end; doing it here additionally covers sends issued from outside
  // any event (before the first window runs).
  deliver_outboxes();

  // The global minimum pending timestamp.
  bool any = false;
  vtime tmin{};
  for (const auto& s : shards_) {
    if (s->q.empty()) continue;
    if (!any || s->q.next_at() < tmin) tmin = s->q.next_at();
    any = true;
  }
  if (!any) return false;

  // Events with timestamp < tmin + lookahead are safe: any cross-shard
  // influence generated inside the window lands at >= sender_now + lookahead
  // >= tmin + lookahead, past the horizon. run_until is inclusive, so the
  // bound is horizon - 1ns (lookahead >= 1ns is enforced at construction).
  const vtime until{(tmin + lookahead_).ns - 1};
  ++windows_;
  if (ex != nullptr) {
    ex->for_each(shards_.size(),
                 [&](std::size_t i) { shards_[i]->q.run_until(until); });
  } else {
    for (auto& s : shards_) s->q.run_until(until);
  }
  return true;
}

void sharded_event_queue::deliver_outboxes() {
  // Merge every outbox in ascending (at, origin) order — a total order as
  // long as origins are unique per delivery, and independent of both the
  // worker schedule (outboxes are complete at the barrier) and the shard
  // count (the key never mentions a shard index). The stable sort makes even
  // duplicate-origin ties deterministic for a fixed shard count: outboxes
  // are concatenated in shard order and each one is in emission order.
  std::vector<pending_send> all;
  for (auto& s : shards_) {
    for (auto& p : s->outbox) all.push_back(std::move(p));
    s->outbox.clear();
  }
  if (all.empty()) return;
  std::stable_sort(all.begin(), all.end(), [](const pending_send& a, const pending_send& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.origin < b.origin;
  });
  for (auto& p : all) {
    shards_[p.to]->q.schedule_at(p.at, std::move(p.fn));
  }
  cross_sends_ += all.size();
}

std::uint64_t sharded_event_queue::run(exec::job_executor& ex) {
  const auto before = processed();
  // A single shard has no concurrency to exploit; skip the fan-out so the
  // degenerate case stays the plain sequential loop.
  exec::job_executor* driver = shards_.size() > 1 && ex.jobs() > 1 ? &ex : nullptr;
  while (window(driver)) {
  }
  return processed() - before;
}

std::uint64_t sharded_event_queue::run() {
  const auto before = processed();
  while (window(nullptr)) {
  }
  return processed() - before;
}

}  // namespace adx::sim
