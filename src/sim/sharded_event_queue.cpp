#include "sim/sharded_event_queue.hpp"

#include <algorithm>

namespace adx::sim {

bool sharded_event_queue::window(exec::job_executor* ex) {
  // Drain outboxes first so the shard heaps are the whole pending set. For
  // sends emitted inside a window this is the same barrier as flushing at
  // window end; doing it here additionally covers sends issued from outside
  // any event (before the first window runs).
  std::uint64_t traffic = deliver_outboxes();

  // The global minimum pending timestamp.
  bool any = false;
  vtime tmin{};
  for (const auto& s : shards_) {
    if (s->q.empty()) continue;
    if (!any || s->q.next_at() < tmin) tmin = s->q.next_at();
    any = true;
  }
  if (!any) return false;

  // Events with timestamp < tmin + lookahead are safe: any cross-shard
  // influence generated inside the window lands at >= sender_now + lookahead
  // >= tmin + lookahead, past the horizon. run_until is inclusive, so the
  // bound is horizon - 1ns (lookahead >= 1ns is enforced at construction).
  //
  // With adaptive lookahead the round covers `widen_` consecutive L-sized
  // sub-segments, separated by delivery barriers: a send emitted in
  // sub-segment k is timestamped >= tmin + k*lookahead, so delivering it at
  // the barrier after sub-segment k puts it on its target heap before any
  // sub-segment that could reach its timestamp — the conservative argument
  // applies inductively per sub-segment, and L stays the correctness floor.
  const std::uint64_t w = widen_;
  for (std::uint64_t k = 1; k <= w; ++k) {
    const vtime until{(tmin + lookahead_ * static_cast<std::int64_t>(k)).ns - 1};
    if (ex != nullptr) {
      ex->for_each(shards_.size(),
                   [&](std::size_t i) { shards_[i]->q.run_until(until); });
    } else {
      for (auto& s : shards_) s->q.run_until(until);
    }
    if (k < w) traffic += deliver_outboxes();
  }
  ++windows_;
  if (w > 1) ++widened_windows_;
  if (adaptive_) {
    widen_ = traffic == 0 ? std::min<std::uint64_t>(widen_ * 2, max_widen_) : 1;
    peak_widen_ = std::max(peak_widen_, w);
  }
  return true;
}

std::uint64_t sharded_event_queue::deliver_outboxes() {
  // Merge every outbox in ascending (at, origin) order — a total order as
  // long as origins are unique per delivery, and independent of both the
  // worker schedule (outboxes are complete at the barrier) and the shard
  // count (the key never mentions a shard index). The stable sort makes even
  // duplicate-origin ties deterministic for a fixed shard count: outboxes
  // are concatenated in shard order and each one is in emission order.
  std::vector<pending_send> all;
  for (auto& s : shards_) {
    for (auto& p : s->outbox) all.push_back(std::move(p));
    s->outbox.clear();
  }
  if (all.empty()) return 0;
  std::stable_sort(all.begin(), all.end(), [](const pending_send& a, const pending_send& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.origin < b.origin;
  });
  for (auto& p : all) {
    shards_[p.to]->q.schedule_at(p.at, std::move(p.fn));
  }
  cross_sends_ += all.size();
  return all.size();
}

std::uint64_t sharded_event_queue::run_budgeted(exec::job_executor* ex,
                                               std::uint64_t max_events) {
  const auto before = processed();
  // A single shard has no concurrency to exploit; skip the fan-out so the
  // degenerate case stays the plain sequential loop.
  exec::job_executor* driver =
      ex != nullptr && shards_.size() > 1 && ex->jobs() > 1 ? ex : nullptr;
  while (processed() - before < max_events && window(driver)) {
  }
  return processed() - before;
}

std::uint64_t sharded_event_queue::run(exec::job_executor& ex) {
  return run_budgeted(&ex, ~0ULL);
}

std::uint64_t sharded_event_queue::run() { return run_budgeted(nullptr, ~0ULL); }

}  // namespace adx::sim
