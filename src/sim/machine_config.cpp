#include "sim/machine_config.hpp"

namespace adx::sim {

vdur machine_config::min_cross_group_latency() const {
  switch (wire_model) {
    case interconnect_model::butterfly: {
      // Uncontended one-way staged latency: stages x (hop + service), the
      // same formula butterfly_network charges when its switches are idle.
      unsigned stages = 1;
      for (unsigned span = 4; span < nodes; span *= 4) ++stages;
      return vdur{(switch_stage_latency + switch_service).ns *
                  static_cast<std::int64_t>(stages)};
    }
    case interconnect_model::constant_wire:
    case interconnect_model::hierarchical:
      return remote_wire;
  }
  return remote_wire;
}

machine_config machine_config::butterfly_gp1000() {
  machine_config c;
  c.nodes = 32;
  c.local_wire = microseconds(0.2);
  c.remote_wire = microseconds(1.3);
  c.mem_service = microseconds(0.6);
  c.atomic_service = microseconds(1.2);
  c.context_switch = microseconds(400);
  c.dispatch_latency = microseconds(12);
  return c;
}

machine_config machine_config::hierarchical_numa(unsigned groups, unsigned per_group) {
  machine_config c;
  c.nodes = groups * per_group;
  c.wire_model = interconnect_model::hierarchical;
  c.group_size = per_group;
  c.local_wire = microseconds(0.2);
  c.group_wire = microseconds(0.7);
  c.remote_wire = microseconds(2.6);
  c.mem_service = microseconds(0.6);
  c.atomic_service = microseconds(1.2);
  c.context_switch = microseconds(85);
  c.dispatch_latency = microseconds(12);
  return c;
}

machine_config machine_config::fat_tree_hpc4096() {
  machine_config c;
  c.nodes = 4096;
  c.wire_model = interconnect_model::hierarchical;
  c.group_size = 64;
  c.local_wire = microseconds(0.15);
  c.group_wire = microseconds(0.5);
  c.remote_wire = microseconds(2.0);
  c.mem_service = microseconds(0.4);
  c.atomic_service = microseconds(0.9);
  c.context_switch = microseconds(40);
  c.dispatch_latency = microseconds(5);
  return c;
}

machine_config machine_config::test_machine(unsigned nodes) {
  machine_config c;
  c.nodes = nodes;
  c.local_wire = microseconds(0.1);
  c.remote_wire = microseconds(1.0);
  c.mem_service = microseconds(0.5);
  c.atomic_service = microseconds(1.0);
  c.context_switch = microseconds(10);
  c.dispatch_latency = microseconds(2);
  return c;
}

}  // namespace adx::sim
