#include "sim/machine_config.hpp"

namespace adx::sim {

machine_config machine_config::butterfly_gp1000() {
  machine_config c;
  c.nodes = 32;
  c.local_wire = microseconds(0.2);
  c.remote_wire = microseconds(1.3);
  c.mem_service = microseconds(0.6);
  c.atomic_service = microseconds(1.2);
  c.context_switch = microseconds(400);
  c.dispatch_latency = microseconds(12);
  return c;
}

machine_config machine_config::test_machine(unsigned nodes) {
  machine_config c;
  c.nodes = nodes;
  c.local_wire = microseconds(0.1);
  c.remote_wire = microseconds(1.0);
  c.mem_service = microseconds(0.5);
  c.atomic_service = microseconds(1.0);
  c.context_switch = microseconds(10);
  c.dispatch_latency = microseconds(2);
  return c;
}

}  // namespace adx::sim
