// Memory modules and the access ledger.
//
// The paper's formal model (§3.1) prices every state-transition and
// reconfiguration operation in memory reads and writes (`t = n1 R n2 W`).
// The simulator makes that model executable: every access is routed through
// the owning module, charged wire + service latency, and counted in a ledger
// that tests and benches can snapshot.
#pragma once

#include <cstdint>

#include "sim/machine_config.hpp"
#include "sim/time.hpp"

namespace adx::sim {

enum class access_kind : std::uint8_t { read, write, rmw };

/// Counts of accesses, split by locality. Snapshot-and-diff to price an
/// operation in the paper's R/W units.
struct access_counts {
  std::uint64_t local_reads{0};
  std::uint64_t local_writes{0};
  std::uint64_t remote_reads{0};
  std::uint64_t remote_writes{0};
  std::uint64_t local_rmws{0};
  std::uint64_t remote_rmws{0};

  [[nodiscard]] std::uint64_t reads() const { return local_reads + remote_reads; }
  [[nodiscard]] std::uint64_t writes() const { return local_writes + remote_writes; }
  [[nodiscard]] std::uint64_t rmws() const { return local_rmws + remote_rmws; }
  [[nodiscard]] std::uint64_t total() const { return reads() + writes() + rmws(); }

  friend access_counts operator-(access_counts a, const access_counts& b) {
    a.local_reads -= b.local_reads;
    a.local_writes -= b.local_writes;
    a.remote_reads -= b.remote_reads;
    a.remote_writes -= b.remote_writes;
    a.local_rmws -= b.local_rmws;
    a.remote_rmws -= b.remote_rmws;
    return a;
  }
  friend bool operator==(const access_counts&, const access_counts&) = default;
};

/// One memory module: FIFO single-server queue. An access arriving while the
/// module is busy waits; that queueing is what turns N spinning processors
/// into the hot-spot degradation the paper's locks are designed around.
class memory_module {
 public:
  explicit memory_module(node_id node) : node_(node) {}

  [[nodiscard]] node_id node() const { return node_; }

  /// Services an access arriving at `arrival` taking `service` module time;
  /// returns the completion time at the module.
  vtime service(vtime arrival, vdur service_time) {
    const vtime start = max(arrival, busy_until_);
    busy_until_ = start + service_time;
    ++serviced_;
    total_queue_delay_ += start - arrival;
    return busy_until_;
  }

  [[nodiscard]] vtime busy_until() const { return busy_until_; }
  [[nodiscard]] std::uint64_t serviced() const { return serviced_; }
  /// Total time accesses spent queued behind other accesses at this module.
  [[nodiscard]] vdur total_queue_delay() const { return total_queue_delay_; }

 private:
  node_id node_;
  vtime busy_until_{};
  std::uint64_t serviced_{0};
  vdur total_queue_delay_{};
};

}  // namespace adx::sim
