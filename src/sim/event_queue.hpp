// The discrete-event core: a time-ordered queue of callbacks. The whole
// simulation is single-threaded and deterministic; ties are broken by
// insertion sequence number so identical runs replay identically. An attached
// perturber can override the tie-break key (schedule exploration); ordering
// stays deterministic because the key is computed once, at insertion.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/perturb.hpp"
#include "sim/time.hpp"

namespace adx::sim {

class event_queue {
 public:
  using callback = std::function<void()>;

  /// Schedules `cb` to run at absolute time `at`. Scheduling in the past is a
  /// logic error and is clamped to `now()` (the event still runs, after all
  /// events already due at `now()`).
  void schedule_at(vtime at, callback cb);

  /// Schedules `cb` to run `after` from now.
  void schedule_after(vdur after, callback cb) { schedule_at(now_ + after, std::move(cb)); }

  [[nodiscard]] vtime now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Runs the earliest event; returns false if the queue was empty.
  bool run_one();

  /// Runs events until the queue drains or `limit` events have run.
  /// Returns the number of events processed.
  std::uint64_t run(std::uint64_t limit = ~0ULL);

  /// Runs events with timestamp <= `until` (events scheduled during the run
  /// are included if due). Returns the number processed.
  std::uint64_t run_until(vtime until);

  /// Attaches a schedule perturber (not owned; null detaches). Only the
  /// tie-break hook is consulted here; events already queued keep the key
  /// they were inserted with.
  void set_perturber(perturber* p) { perturber_ = p; }
  [[nodiscard]] perturber* get_perturber() const { return perturber_; }

 private:
  struct entry {
    vtime at;
    std::uint64_t key;  ///< tie-break key (== seq unless perturbed)
    std::uint64_t seq;
    callback cb;
  };
  struct later {
    bool operator()(const entry& a, const entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.key == b.key ? a.seq > b.seq : a.key > b.key;
    }
  };

  std::priority_queue<entry, std::vector<entry>, later> heap_;
  vtime now_{};
  std::uint64_t seq_{0};
  std::uint64_t processed_{0};
  perturber* perturber_{nullptr};
};

}  // namespace adx::sim
