// The discrete-event core: a time-ordered queue of callbacks. The whole
// simulation is single-threaded and deterministic; ties are broken by
// insertion sequence number so identical runs replay identically. An attached
// perturber can override the tie-break key (schedule exploration); ordering
// stays deterministic because the key is computed once, at insertion.
//
// Layout is tuned for the simulator's hot loop (every simulated microsecond
// is one or more schedule/pop pairs):
//
//   * The priority queue is a 4-ary implicit heap of 32-byte POD handles
//     {at, key, seq, slot}. A 4-ary heap halves the tree depth of a binary
//     heap and keeps each node's children in one cache line; sifting moves
//     handles, never callbacks. The top element is always heap_[0] — peeking
//     the next timestamp (run_until's loop condition) is a single load.
//   * Callbacks live in a chunked slab (fixed-size chunks, freelist reuse)
//     with 48 bytes of in-place storage per event — enough for every capture
//     list the runtime schedules, so steady-state event traffic performs no
//     heap allocation at all. Larger callables spill to the heap
//     transparently. Chunks are never moved or freed, so a callback's address
//     stays valid while it runs even if it schedules further events.
//
// Ordering is exactly what the old binary-heap implementation produced:
// (at, key, seq) ascending, strict total order because seq is unique.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/perturb.hpp"
#include "sim/time.hpp"

namespace adx::sim {

class event_queue {
 public:
  using callback = std::function<void()>;

  event_queue() = default;
  event_queue(const event_queue&) = delete;
  event_queue& operator=(const event_queue&) = delete;
  ~event_queue();

  /// Schedules `fn` to run at absolute time `at`. Scheduling in the past is a
  /// logic error and is clamped to `now()` (the event still runs, after all
  /// events already due at `now()`). Accepts any void() callable; capture
  /// lists up to 48 bytes are stored without allocating.
  template <typename F>
  void schedule_at(vtime at, F&& fn) {
    if (at < now_) at = now_;
    const auto seq = seq_++;
    const auto key = perturber_ ? perturber_->tie_key(at, seq) : seq;
    const std::uint32_t slot = acquire_slot();
    if constexpr (sizeof(std::decay_t<F>) > kInlineCallbackBytes ||
                  alignof(std::decay_t<F>) > alignof(std::max_align_t)) {
      ++spills_;
    }
    construct_callback(slot_at(slot), std::forward<F>(fn));
    heap_push(handle{at, key, seq, slot});
  }

  /// Schedules `fn` to run `after` from now.
  template <typename F>
  void schedule_after(vdur after, F&& fn) {
    schedule_at(now_ + after, std::forward<F>(fn));
  }

  [[nodiscard]] vtime now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  /// Timestamp of the earliest pending event (requires !empty()). The top of
  /// the 4-ary heap is heap_[0], so this is a single load — the sharded
  /// queue's window computation peeks every shard each round.
  [[nodiscard]] vtime next_at() const { return heap_.front().at; }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Runs the earliest event; returns false if the queue was empty.
  bool run_one();

  /// Runs events until the queue drains or `limit` events have run.
  /// Returns the number of events processed.
  std::uint64_t run(std::uint64_t limit = ~0ULL);

  /// Runs events with timestamp <= `until` (events scheduled during the run
  /// are included if due). Returns the number processed.
  std::uint64_t run_until(vtime until);

  /// Bounded variant: stops after `limit` events even if more are due — the
  /// livelock guard for window-driven runs whose events respawn at one
  /// timestamp.
  std::uint64_t run_until(vtime until, std::uint64_t limit);

  /// Attaches a schedule perturber (not owned; null detaches). Only the
  /// tie-break hook is consulted here; events already queued keep the key
  /// they were inserted with.
  void set_perturber(perturber* p) { perturber_ = p; }
  [[nodiscard]] perturber* get_perturber() const { return perturber_; }

  /// Slab observability (tests): total callback slots ever allocated, and how
  /// many of them are currently on the freelist. The slab grows in
  /// fixed-size chunks and never shrinks; capacity - free == pending().
  [[nodiscard]] std::size_t slab_capacity() const {
    return chunks_.size() * kEventsPerChunk;
  }
  [[nodiscard]] std::size_t slab_free() const;

  /// Grows this queue's private slab until at least `n` slots are free, so a
  /// burst of `n` schedules performs no allocation. Each queue owns its
  /// arena outright — under the sharded DES, shards pre-size before the run
  /// and parallel windows never touch a shared allocator.
  void reserve_slots(std::size_t n) {
    while (slab_capacity() - pending() < n) grow_slab();
  }

  /// Slots ever acquired == events ever scheduled (processed() + pending()).
  /// A pure function of the logical schedule, so it is invariant under
  /// re-sharding — the virtual-metrics hook for the slab-locality claim.
  [[nodiscard]] std::uint64_t slots_acquired() const { return seq_; }

  /// Callbacks whose captures exceeded the inline slot and spilled to the
  /// heap. Also shard-count-invariant; steady-state event traffic keeps
  /// this at zero.
  [[nodiscard]] std::uint64_t callback_spills() const { return spills_; }

  /// CI/test hook: busy-wait `ns` of host wall time inside every pop.
  /// Virtual-time results are unaffected (the simulated clock cannot see host
  /// time); wall metrics degrade proportionally. adx-bench's regression-gate
  /// self-test uses this to prove the gate trips. 0 (the default) disables.
  static void set_debug_pop_delay_ns(std::uint64_t ns);
  [[nodiscard]] static std::uint64_t debug_pop_delay_ns();

 private:
  static constexpr std::size_t kInlineCallbackBytes = 48;
  static constexpr std::uint32_t kEventsPerChunk = 128;
  static constexpr std::uint32_t kNoSlot = ~0U;

  /// What the heap sifts: timestamp and tie-break keys plus the slab slot
  /// holding the callback. POD, 32 bytes.
  struct handle {
    vtime at;
    std::uint64_t key;  ///< tie-break key (== seq unless perturbed)
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<handle> && sizeof(handle) <= 32);

  /// One slab slot: in-place callback storage plus its type-erased entry
  /// points. `next_free` threads the freelist through unused slots.
  struct event_slot {
    alignas(alignof(std::max_align_t)) unsigned char buf[kInlineCallbackBytes];
    void (*invoke)(event_slot&);
    void (*destroy)(event_slot&);
    std::uint32_t next_free;
  };

  static bool earlier(const handle& a, const handle& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key == b.key ? a.seq < b.seq : a.key < b.key;
  }

  /// Sift-up with a hole (no swaps): parent of i is (i-1)/4.
  void heap_push(handle h) {
    std::size_t i = heap_.size();
    heap_.push_back(h);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(h, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = h;
  }

  /// Removes and returns heap_[0]; sifts the last element down with a hole.
  handle heap_pop_top() {
    const handle top = heap_[0];
    const handle last = heap_.back();
    heap_.pop_back();
    if (const std::size_t n = heap_.size(); n != 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (earlier(heap_[c], heap_[best])) best = c;
        }
        if (!earlier(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

  template <typename F>
  static void construct_callback(event_slot& s, F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineCallbackBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.buf)) D(std::forward<F>(fn));
      s.invoke = [](event_slot& e) { (*std::launder(reinterpret_cast<D*>(e.buf)))(); };
      s.destroy = [](event_slot& e) { std::launder(reinterpret_cast<D*>(e.buf))->~D(); };
    } else {
      ::new (static_cast<void*>(s.buf)) (D*)(new D(std::forward<F>(fn)));
      s.invoke = [](event_slot& e) { (**std::launder(reinterpret_cast<D**>(e.buf)))(); };
      s.destroy = [](event_slot& e) { delete *std::launder(reinterpret_cast<D**>(e.buf)); };
    }
  }

  [[nodiscard]] event_slot& slot_at(std::uint32_t s) {
    return chunks_[s / kEventsPerChunk][s % kEventsPerChunk];
  }

  std::uint32_t acquire_slot() {
    if (free_head_ == kNoSlot) grow_slab();
    const auto s = free_head_;
    free_head_ = slot_at(s).next_free;
    return s;
  }

  void release_slot(std::uint32_t s) {
    slot_at(s).next_free = free_head_;
    free_head_ = s;
  }

  void grow_slab();  // cold path: appends one chunk, rebuilds the freelist

  std::vector<handle> heap_;
  std::vector<std::unique_ptr<event_slot[]>> chunks_;
  std::uint32_t free_head_{kNoSlot};
  vtime now_{};
  std::uint64_t seq_{0};
  std::uint64_t processed_{0};
  std::uint64_t spills_{0};
  perturber* perturber_{nullptr};
};

}  // namespace adx::sim
