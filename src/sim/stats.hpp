// Lightweight summary statistics used across the simulator, the lock
// instrumentation, and the benchmark reporting.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace adx::sim {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
class accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : 0.0;
  }

  void reset() { *this = accumulator{}; }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Fixed-width linear histogram with overflow bucket; used for waiting-time
/// and queue-depth distributions in lock statistics.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), buckets_(buckets, 0), overflow_(0), underflow_(0) {}

  void add(double x) {
    if (x < lo_) {
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                              static_cast<double>(buckets_.size()));
    ++buckets_[std::min(idx, buckets_.size() - 1)];
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(buckets_.size());
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = underflow_ + overflow_;
    for (auto b : buckets_) t += b;
    return t;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_;
  std::uint64_t underflow_;
};

/// HDR-style log-linear histogram over non-negative integer values (latency
/// nanoseconds). Each power-of-two octave is split into 2^sub_bits linear
/// sub-buckets, so relative quantile error is bounded by 2^-sub_bits (~3% at
/// the default 5) across the whole 64-bit range while storage stays a few KB.
/// Bucket indexing is pure integer arithmetic and merge is bucket-wise
/// addition, so per-shard histograms merged in any order yield bit-identical
/// quantiles — the property the sharded tail-latency scenarios are gated on.
class log_histogram {
 public:
  explicit log_histogram(unsigned sub_bits = 5) : sub_bits_(sub_bits) {}

  void add(std::uint64_t v, std::uint64_t count = 1) {
    const std::size_t i = index_of(v);
    if (i >= buckets_.size()) buckets_.resize(i + 1, 0);
    buckets_[i] += count;
    total_ += count;
    max_ = std::max(max_, v);
    // 128-bit accumulation: v * count alone can exceed 2^64 for wide counts,
    // and long runs of ns-scale values would silently wrap a 64-bit sum.
    sum_ += static_cast<unsigned __int128>(v) * count;
  }

  /// Bucket-wise sum; commutative and associative, so any merge tree over
  /// the same per-shard histograms produces the same result.
  void merge(const log_histogram& other) {
    if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
    total_ += other.total_;
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  /// Value at quantile q in [0, 1]: the inclusive upper bound of the bucket
  /// holding the ceil(q * total)-th sample (exact for values below 2^sub_bits,
  /// within one sub-bucket above). Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    if (total_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= rank) return std::min(bucket_hi(i), max_);
    }
    return max_;
  }

  [[nodiscard]] std::uint64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p99() const { return quantile(0.99); }
  [[nodiscard]] std::uint64_t p999() const { return quantile(0.999); }

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_) : 0.0;
  }

  /// Index of the bucket recording `v` — values below 2^sub_bits map 1:1;
  /// above, the octave (msb - sub_bits) selects a block of 2^sub_bits
  /// sub-buckets and the top sub_bits bits below the msb select within it.
  [[nodiscard]] std::size_t index_of(std::uint64_t v) const {
    if (v < (1ULL << sub_bits_)) return static_cast<std::size_t>(v);
    const unsigned msb = 63U - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - sub_bits_;
    return static_cast<std::size_t>(((static_cast<std::uint64_t>(shift) + 1) << sub_bits_) +
                                    ((v >> shift) - (1ULL << sub_bits_)));
  }

  /// Inclusive upper bound of bucket i (its largest representable value).
  [[nodiscard]] std::uint64_t bucket_hi(std::size_t i) const {
    if (i < (1ULL << sub_bits_)) return i;
    const std::uint64_t block = (i >> sub_bits_) - 1;  // == shift
    const std::uint64_t sub = (i & ((1ULL << sub_bits_) - 1)) + (1ULL << sub_bits_);
    return ((sub + 1) << block) - 1;
  }

 private:
  unsigned sub_bits_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_{0};
  std::uint64_t max_{0};
  unsigned __int128 sum_{0};
};

}  // namespace adx::sim
