// Lightweight summary statistics used across the simulator, the lock
// instrumentation, and the benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace adx::sim {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
class accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : 0.0;
  }

  void reset() { *this = accumulator{}; }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Fixed-width linear histogram with overflow bucket; used for waiting-time
/// and queue-depth distributions in lock statistics.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), buckets_(buckets, 0), overflow_(0), underflow_(0) {}

  void add(double x) {
    if (x < lo_) {
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                              static_cast<double>(buckets_.size()));
    ++buckets_[std::min(idx, buckets_.size() - 1)];
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(buckets_.size());
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = underflow_ + overflow_;
    for (auto b : buckets_) t += b;
    return t;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_;
  std::uint64_t underflow_;
};

}  // namespace adx::sim
