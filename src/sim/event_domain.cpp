#include "sim/event_domain.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/sharded_event_queue.hpp"

namespace adx::sim {
namespace {

std::vector<rng> make_streams(unsigned places, std::uint64_t seed) {
  std::vector<rng> s;
  s.reserve(places);
  for (unsigned p = 0; p < places; ++p) {
    s.emplace_back(seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
  }
  return s;
}

/// Sequential domain: every place maps to one event_queue, but sends still
/// go through an outbox merged at window barriers — running the exact grid
/// the sharded implementation runs, so tie-break seqs (and therefore every
/// downstream observable) match the sharded run bit for bit.
class queue_domain final : public event_domain {
 public:
  queue_domain(unsigned places, vdur lookahead, const domain_options& opt)
      : places_(places),
        lookahead_(lookahead),
        adaptive_(opt.adaptive_lookahead),
        max_widen_(opt.max_widen < 1 ? 1 : opt.max_widen),
        streams_(make_streams(places, opt.seed)) {
    if (lookahead.ns <= 0) {
      throw std::invalid_argument("queue_domain: lookahead must be positive");
    }
  }

  [[nodiscard]] unsigned places() const override { return places_; }
  [[nodiscard]] vdur lookahead() const override { return lookahead_; }
  [[nodiscard]] event_queue& queue_of(unsigned place) override {
    check_place(place);
    return q_;
  }
  [[nodiscard]] rng& stream(unsigned place) override { return streams_.at(place); }

  void send(unsigned from, unsigned to, vtime at, std::uint64_t origin,
            event_queue::callback fn) override {
    check_place(from);
    check_place(to);
    if (at < q_.now() + lookahead_) {
      throw std::logic_error("queue_domain::send: timestamp inside the lookahead horizon");
    }
    outbox_.push_back({at, origin, std::move(fn)});
  }

  std::uint64_t run(exec::job_executor*, std::uint64_t max_events) override {
    const auto before = q_.processed();
    while (q_.processed() - before < max_events && window()) {
    }
    return q_.processed() - before;
  }

  [[nodiscard]] vtime now() const override { return q_.now(); }
  [[nodiscard]] bool empty() const override { return q_.empty() && outbox_.empty(); }
  [[nodiscard]] std::uint64_t processed() const override { return q_.processed(); }
  [[nodiscard]] domain_stats stats() const override {
    domain_stats s;
    s.windows = windows_;
    s.cross_sends = cross_sends_;
    s.widened_windows = widened_windows_;
    s.peak_widen = peak_widen_;
    s.slab_slots = q_.slots_acquired();
    s.callback_spills = q_.callback_spills();
    return s;
  }

 private:
  void check_place(unsigned place) const {
    if (place >= places_) throw std::out_of_range("queue_domain: bad place");
  }

  std::uint64_t deliver() {
    if (outbox_.empty()) return 0;
    std::stable_sort(outbox_.begin(), outbox_.end(),
                     [](const pending_send& a, const pending_send& b) {
                       if (a.at != b.at) return a.at < b.at;
                       return a.origin < b.origin;
                     });
    for (auto& p : outbox_) q_.schedule_at(p.at, std::move(p.fn));
    const auto n = outbox_.size();
    outbox_.clear();
    cross_sends_ += n;
    return n;
  }

  /// One synchronization round — the same grid sharded_event_queue::window
  /// runs: leading delivery barrier, widen_ L-sized sub-segments with
  /// barriers between them, widening driven only by the delivered count.
  bool window() {
    std::uint64_t traffic = deliver();
    if (q_.empty()) return false;
    const vtime tmin = q_.next_at();
    const std::uint64_t w = widen_;
    for (std::uint64_t k = 1; k <= w; ++k) {
      const vtime until{(tmin + lookahead_ * static_cast<std::int64_t>(k)).ns - 1};
      q_.run_until(until);
      if (k < w) traffic += deliver();
    }
    ++windows_;
    if (w > 1) ++widened_windows_;
    if (adaptive_) {
      widen_ = traffic == 0 ? std::min<std::uint64_t>(widen_ * 2, max_widen_) : 1;
      peak_widen_ = std::max(peak_widen_, w);
    }
    return true;
  }

  struct pending_send {
    vtime at;
    std::uint64_t origin;
    event_queue::callback fn;
  };

  unsigned places_;
  vdur lookahead_;
  bool adaptive_;
  unsigned max_widen_;
  event_queue q_;
  std::vector<pending_send> outbox_;
  std::vector<rng> streams_;
  std::uint64_t widen_{1};
  std::uint64_t windows_{0};
  std::uint64_t cross_sends_{0};
  std::uint64_t widened_windows_{0};
  std::uint64_t peak_widen_{1};
};

/// Parallel domain: places map round-robin onto sharded_event_queue shards.
class sharded_domain final : public event_domain {
 public:
  sharded_domain(unsigned places, unsigned shards, vdur lookahead,
                 const domain_options& opt)
      : places_(places),
        shards_(shards),
        q_(shards, lookahead),
        streams_(make_streams(places, opt.seed)) {
    if (opt.adaptive_lookahead) q_.set_adaptive_lookahead(true, opt.max_widen);
  }

  [[nodiscard]] unsigned places() const override { return places_; }
  [[nodiscard]] vdur lookahead() const override { return q_.lookahead(); }
  [[nodiscard]] event_queue& queue_of(unsigned place) override {
    return q_.shard_queue(shard_of(place));
  }
  [[nodiscard]] rng& stream(unsigned place) override { return streams_.at(place); }

  void send(unsigned from, unsigned to, vtime at, std::uint64_t origin,
            event_queue::callback fn) override {
    q_.send(shard_of(from), shard_of(to), at, origin, std::move(fn));
  }

  std::uint64_t run(exec::job_executor* ex, std::uint64_t max_events) override {
    return q_.run_budgeted(ex, max_events);
  }

  [[nodiscard]] vtime now() const override { return q_.now(); }
  [[nodiscard]] bool empty() const override { return q_.empty(); }
  [[nodiscard]] std::uint64_t processed() const override { return q_.processed(); }
  [[nodiscard]] domain_stats stats() const override {
    domain_stats s;
    s.windows = q_.windows();
    s.cross_sends = q_.cross_sends();
    s.widened_windows = q_.widened_windows();
    s.peak_widen = q_.peak_widen();
    for (unsigned i = 0; i < shards_; ++i) {
      s.slab_slots += q_.shard_queue(i).slots_acquired();
      s.callback_spills += q_.shard_queue(i).callback_spills();
    }
    return s;
  }

 private:
  [[nodiscard]] unsigned shard_of(unsigned place) const {
    if (place >= places_) throw std::out_of_range("sharded_domain: bad place");
    return place % shards_;
  }

  unsigned places_;
  unsigned shards_;
  // stats() is morally const; shard_queue hands out mutable references.
  mutable sharded_event_queue q_;
  std::vector<rng> streams_;
};

}  // namespace

std::unique_ptr<event_domain> make_event_domain(const machine_config& cfg,
                                                const domain_options& opt) {
  const unsigned places = cfg.groups();
  const vdur lookahead = cfg.min_cross_group_latency();
  unsigned shards = opt.shards < 1 ? 1 : opt.shards;
  if (shards > places) shards = places;
  if (shards == 1) {
    return std::make_unique<queue_domain>(places, lookahead, opt);
  }
  return std::make_unique<sharded_domain>(places, shards, lookahead, opt);
}

}  // namespace adx::sim
