// A small-buffer FIFO ring for trivially-copyable elements.
//
// The simulator keeps many tiny queues alive at once — one ready queue per
// simulated processor, one wait queue per lock — and nearly all of them hold
// zero to a handful of elements at any instant. std::deque pays a heap
// allocation (block map + first block) per queue just for being constructed,
// which dominates the cost of building and tearing down a simulated machine
// in the micro-benches. This ring keeps the first N elements inline — an
// empty or shallow queue never touches the heap — and spills to a
// geometrically grown heap ring beyond that; once spilled it stays spilled
// (a queue that deep stays deep).
//
// Interface is the FIFO subset the simulator needs: push_back / front /
// pop_front, plus push_front for re-queueing at the head (a woken lock waiter
// that loses the race keeps its place in line).
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>

namespace adx::sim {

template <typename T, std::size_t N = 8>
class small_ring {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(N != 0 && (N & (N - 1)) == 0, "inline capacity must be a power of two");

 public:
  small_ring() = default;
  small_ring(const small_ring&) = delete;
  small_ring& operator=(const small_ring&) = delete;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] T front() const { return data()[head_]; }

  void push_back(T v) {
    if (size_ == cap_) grow();
    data()[(head_ + size_) & (cap_ - 1)] = v;
    ++size_;
  }

  void push_front(T v) {
    if (size_ == cap_) grow();
    head_ = (head_ + cap_ - 1) & (cap_ - 1);
    data()[head_] = v;
    ++size_;
  }

  void pop_front() {
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

 private:
  [[nodiscard]] T* data() { return spill_ ? spill_.get() : inline_; }
  [[nodiscard]] const T* data() const { return spill_ ? spill_.get() : inline_; }

  void grow() {
    const std::size_t new_cap = cap_ * 2;
    auto bigger = std::make_unique<T[]>(new_cap);
    const auto* src = data();
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = src[(head_ + i) & (cap_ - 1)];
    }
    spill_ = std::move(bigger);
    cap_ = new_cap;
    head_ = 0;
  }

  T inline_[N];
  std::unique_ptr<T[]> spill_;
  std::size_t cap_{N};
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace adx::sim
