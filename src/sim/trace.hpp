// Time-series trace recorder. The paper's Figures 4-9 are "locking pattern"
// plots: the number of threads waiting on a lock, sampled over the run. A
// trace stores (virtual time, value) samples and can render them as CSV or a
// terminal ASCII chart so every figure bench can print the series it
// regenerates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace adx::sim {

/// One (time, value) sample of an integer-valued signal.
struct trace_sample {
  vtime at;
  std::int64_t value;
  friend bool operator==(const trace_sample&, const trace_sample&) = default;
};

/// Append-only time series with reporting helpers.
class trace {
 public:
  explicit trace(std::string name = {}) : name_(std::move(name)) {}

  void record(vtime at, std::int64_t value) { samples_.push_back({at, value}); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<trace_sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  [[nodiscard]] std::int64_t max_value() const;
  [[nodiscard]] double mean_value() const;

  /// Re-buckets the series into `buckets` equal time windows over
  /// [0, horizon], taking the max sample in each window (matching how the
  /// paper's pattern figures show contention peaks). Windows without samples
  /// repeat the previous value.
  [[nodiscard]] std::vector<std::int64_t> rebucket_max(vtime horizon,
                                                       std::size_t buckets) const;

  /// "time_us,value" lines, one per sample.
  [[nodiscard]] std::string to_csv() const;

  /// A rows×width character chart of the rebucketed series, for terminal
  /// reproduction of the paper's figures.
  [[nodiscard]] std::string ascii_chart(vtime horizon, std::size_t width = 72,
                                        std::size_t rows = 12) const;

  void clear() { samples_.clear(); }

 private:
  std::string name_;
  std::vector<trace_sample> samples_;
};

}  // namespace adx::sim
