// Sharded discrete-event core with conservative-lookahead synchronization.
//
// The single global `event_queue` caps machine size at one core's event
// throughput. This class splits the simulation into S shards (one
// `event_queue` each — the same 4-ary heap + slab engine) that execute in
// *windows*: every round the coordinator computes the global minimum pending
// timestamp T and lets each shard run all of its events with timestamp in
// [T, T + lookahead) concurrently on `exec::job_executor` workers. The
// classic Chandy–Misra–Bryant conservative argument applies: if any
// cross-shard influence takes at least `lookahead` of virtual time to arrive
// (in this codebase, the interconnect's minimum cross-group hop latency —
// see machine_config::min_cross_group_latency()), no event inside the window
// can be affected by an event executing concurrently in another shard, so
// the parallel execution is a legal serialization of the sequential one.
//
// Determinism contract (the src/exec discipline, extended to shards):
//   * Shard-local results are bit-identical for ANY shard count and ANY
//     worker count. With one shard the queue degenerates to the sequential
//     4-ary heap: same (at, seq) FIFO ordering, same clamp semantics.
//   * Events on one shard may freely schedule further events on their own
//     shard via schedule_at (FIFO seq tie-break, exactly event_queue).
//   * Cross-shard communication goes through send(): the timestamp must be
//     at least `lookahead` in the future (== is allowed: "exactly at the
//     horizon"), deliveries are buffered in per-shard outboxes during the
//     window and merged at the barrier in ascending (at, origin) order.
//     `origin` is a caller-chosen tag, unique per delivery (e.g. sender
//     group << 32 | counter); because it does not mention the shard index,
//     the merge order — and therefore every downstream seq tie-break — is
//     invariant under re-sharding the same logical streams.
//   * Workloads must be shard-disciplined: an event may touch only state
//     owned by its shard's node group. The TSan CI job runs the stress tests
//     and a sharded open-loop sweep to police this claim.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "exec/job_executor.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace adx::sim {

class sharded_event_queue {
 public:
  /// `shards` independent sub-queues; `lookahead` is the conservative
  /// synchronization horizon (must be positive — a zero lookahead would
  /// serialize every event and deadlock the window loop).
  sharded_event_queue(unsigned shards, vdur lookahead)
      : lookahead_(lookahead) {
    if (shards == 0) throw std::invalid_argument("sharded_event_queue: shards must be > 0");
    if (lookahead.ns <= 0) {
      throw std::invalid_argument("sharded_event_queue: lookahead must be positive");
    }
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i) shards_.push_back(std::make_unique<shard>());
  }
  sharded_event_queue(const sharded_event_queue&) = delete;
  sharded_event_queue& operator=(const sharded_event_queue&) = delete;

  [[nodiscard]] unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
  [[nodiscard]] vdur lookahead() const { return lookahead_; }

  /// Schedules `fn` on `shard` at absolute time `at`. Legal from setup code
  /// (before run) and from events already executing on that same shard;
  /// scheduling onto a *different* currently-running shard is a data race —
  /// use send().
  template <typename F>
  void schedule_at(unsigned shard, vtime at, F&& fn) {
    shards_.at(shard)->q.schedule_at(at, std::forward<F>(fn));
  }

  /// Cross-shard send honoring the conservative contract: `at` must be at
  /// least `lookahead` past the sending shard's clock (== is the horizon
  /// boundary and is allowed). Buffered in the sender's outbox; delivered at
  /// the window barrier in ascending (at, origin) order. `from` must be the
  /// shard of the currently executing event (or any shard during setup).
  template <typename F>
  void send(unsigned from, unsigned to, vtime at, std::uint64_t origin, F&& fn) {
    auto& src = *shards_.at(from);
    if (to >= shards_.size()) throw std::out_of_range("sharded_event_queue::send: bad shard");
    if (at < src.q.now() + lookahead_) {
      throw std::logic_error(
          "sharded_event_queue::send: timestamp inside the lookahead horizon");
    }
    src.outbox.push_back({at, origin, to, event_queue::callback(std::forward<F>(fn))});
  }

  /// Runs every pending event to completion, fanning each window's shards
  /// across `ex`'s workers. Returns the number of events processed.
  std::uint64_t run(exec::job_executor& ex);

  /// Sequential convenience: one inline worker, identical results.
  std::uint64_t run();

  /// Budgeted run: stops at the first synchronization barrier where at least
  /// `max_events` events have been processed (the livelock guard for
  /// workload drivers). Each round processes the same multiset of events at
  /// every shard/worker count, so the stopping point — checked only at
  /// barriers — is shard-invariant too. `ex` may be null (sequential).
  std::uint64_t run_budgeted(exec::job_executor* ex, std::uint64_t max_events);

  /// Adaptive lookahead (opt-in; off by default so the base contract stays
  /// byte-for-byte what PR 8 shipped). When a whole round moves zero
  /// cross-shard deliveries, the next round runs up to `max_widen`
  /// consecutive L-sized sub-segments in one go — with a delivery barrier
  /// after every sub-segment, so L remains the correctness floor and any
  /// send still lands at a grid barrier at or before its timestamp. Any
  /// delivered traffic decays the factor back to 1. The widening state is
  /// driven only by the delivered-send count, which is itself
  /// shard-invariant, so results stay bit-identical at every shard/worker
  /// count; workloads that always send exactly at the horizon (now + L) are
  /// additionally bit-identical to their non-adaptive runs.
  void set_adaptive_lookahead(bool on, unsigned max_widen = 8) {
    adaptive_ = on;
    max_widen_ = max_widen < 1 ? 1 : max_widen;
    if (!on) widen_ = 1;
  }
  [[nodiscard]] bool adaptive_lookahead() const { return adaptive_; }
  /// Rounds that ran with a widened (> 1 sub-segment) horizon.
  [[nodiscard]] std::uint64_t widened_windows() const { return widened_windows_; }
  /// Largest widen factor any round actually used.
  [[nodiscard]] std::uint64_t peak_widen() const { return peak_widen_; }

  /// Direct access to one shard's queue (setup, and events running on that
  /// shard). The sharded workloads hand each node group's machine its
  /// shard's queue so all thread scheduling stays shard-local.
  [[nodiscard]] event_queue& shard_queue(unsigned shard) { return shards_.at(shard)->q; }

  /// Pre-sizes every shard's private callback slab so the parallel windows
  /// of a run with bursts of up to `per_shard` in-flight events never
  /// allocate (see event_queue::reserve_slots).
  void reserve_slots(std::size_t per_shard) {
    for (auto& s : shards_) s->q.reserve_slots(per_shard);
  }

  /// The given shard's clock (its last executed event's timestamp).
  [[nodiscard]] vtime now(unsigned shard) const { return shards_.at(shard)->q.now(); }
  /// Latest clock across shards — the simulation's end time after run().
  [[nodiscard]] vtime now() const {
    vtime t{};
    for (const auto& s : shards_) t = max(t, s->q.now());
    return t;
  }
  [[nodiscard]] bool empty() const {
    for (const auto& s : shards_) {
      if (!s->q.empty() || !s->outbox.empty()) return false;
    }
    return true;
  }
  [[nodiscard]] std::uint64_t processed() const {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->q.processed();
    return n;
  }
  /// Synchronization rounds executed so far. A pure function of the global
  /// schedule and the lookahead — identical for every shard/worker count.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  /// Cross-shard deliveries merged so far (same invariance).
  [[nodiscard]] std::uint64_t cross_sends() const { return cross_sends_; }

 private:
  struct pending_send {
    vtime at;
    std::uint64_t origin;
    unsigned to;
    event_queue::callback fn;
  };
  struct shard {
    event_queue q;
    std::vector<pending_send> outbox;  ///< written only by the shard's worker
  };

  /// One synchronization round; returns false when fully drained.
  bool window(exec::job_executor* ex);
  /// Flushes all outboxes in (at, origin) order; returns deliveries made.
  std::uint64_t deliver_outboxes();

  std::vector<std::unique_ptr<shard>> shards_;
  vdur lookahead_;
  std::uint64_t windows_{0};
  std::uint64_t cross_sends_{0};
  bool adaptive_{false};
  unsigned max_widen_{8};
  std::uint64_t widen_{1};
  std::uint64_t widened_windows_{0};
  std::uint64_t peak_widen_{1};
};

}  // namespace adx::sim
