// Hardware parameters of the simulated NUMA multiprocessor.
//
// The preset `butterfly_gp1000()` is calibrated so the primitive lock-path
// costs measured by the paper on a 32-node BBN Butterfly GP1000 (Tables 4-8)
// come out at comparable magnitudes: local/remote memory deltas of a few
// microseconds, atomic read-modify-write at the owning memory module, and
// memory modules that service one access at a time (the source of hot-spot
// contention under spinning).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace adx::sim {

/// Index of a machine node; every node pairs one processor with one memory
/// module (the Butterfly arrangement).
using node_id = std::uint32_t;

enum class interconnect_model : std::uint8_t {
  constant_wire,  ///< fixed one-way remote latency (default, calibrated)
  butterfly,      ///< staged 4x4 switch network with per-switch queueing
  hierarchical,   ///< two-level NUMA: cheap intra-group wire, dear cross-group
};

struct machine_config {
  /// Number of nodes (processor + memory module pairs).
  unsigned nodes = 32;

  /// One-way wire latency to the node's own memory module.
  vdur local_wire = microseconds(0.2);

  /// One-way latency across the butterfly switch to a remote module
  /// (constant_wire model).
  vdur remote_wire = microseconds(1.3);

  /// Which interconnect prices remote accesses. The staged model routes
  /// every remote access through log4(nodes) 4x4 switches, each a FIFO
  /// server, so hot-spot traffic saturates the *network* (tree blockage),
  /// not just the target module. Its uncontended one-way latency is
  /// stages x (switch_stage_latency + switch_service) — the defaults make it
  /// equal to remote_wire on 32 nodes, so the models agree when idle.
  interconnect_model wire_model = interconnect_model::constant_wire;
  vdur switch_stage_latency = microseconds(0.3);
  vdur switch_service = microseconds(0.13);

  /// Nodes per NUMA group (hierarchical model). Grouping also defines the
  /// sharding unit for the parallel DES: one shard owns one group's nodes,
  /// and `min_cross_group_latency()` is its conservative lookahead.
  unsigned group_size = 8;

  /// One-way wire latency between two nodes in the same group (hierarchical
  /// model). Cross-group accesses pay `remote_wire`.
  vdur group_wire = microseconds(0.7);

  /// Module occupancy per plain read or write; a module services one access
  /// at a time, so concurrent accesses to one module queue behind each other.
  vdur mem_service = microseconds(0.6);

  /// Module occupancy for an atomic read-modify-write (the GP1000 `atomior`
  /// class of operations, executed at the memory module).
  vdur atomic_service = microseconds(1.2);

  /// Cost of a user-level thread context switch (Cthreads on the GP1000).
  vdur context_switch = microseconds(85);

  /// Latency for an idle processor to notice newly ready work.
  vdur dispatch_latency = microseconds(12);

  /// Seed for all randomness owned by the machine.
  std::uint64_t seed = 0x5eedULL;

  friend bool operator==(const machine_config&, const machine_config&) = default;

  /// NUMA group of a node (node_id / group_size, every model).
  [[nodiscard]] unsigned group_of(node_id n) const { return n / group_size; }

  /// Number of NUMA groups (ceiling division; the last group may be short).
  [[nodiscard]] unsigned groups() const {
    return (nodes + group_size - 1) / group_size;
  }

  /// Lower bound on the virtual time for any influence to cross a group
  /// boundary — the conservative lookahead for the sharded DES. Every
  /// cross-group access pays at least one outbound wire traversal before it
  /// can touch remote state, so the one-way uncontended latency is safe.
  [[nodiscard]] vdur min_cross_group_latency() const;

  /// The paper's platform: 32-node BBN Butterfly GP1000.
  [[nodiscard]] static machine_config butterfly_gp1000();

  /// A small fast machine for unit tests.
  [[nodiscard]] static machine_config test_machine(unsigned nodes = 4);

  /// Two-level NUMA machine past the Butterfly's scale: `groups` groups of
  /// `per_group` nodes (default 32x32 = 1024). Intra-group traffic rides the
  /// cheap group wire; cross-group traffic pays a backbone hop several times
  /// dearer, so lock homes and policy placement matter more than on the flat
  /// GP1000 wire.
  [[nodiscard]] static machine_config hierarchical_numa(unsigned groups = 32,
                                                        unsigned per_group = 32);

  /// Fat-tree-style HPC machine: 4096 nodes in 64-node groups with fast
  /// local silicon and a relatively long backbone — the stress preset for
  /// the open-loop serving scenarios.
  [[nodiscard]] static machine_config fat_tree_hpc4096();
};

}  // namespace adx::sim
