// Hardware parameters of the simulated NUMA multiprocessor.
//
// The preset `butterfly_gp1000()` is calibrated so the primitive lock-path
// costs measured by the paper on a 32-node BBN Butterfly GP1000 (Tables 4-8)
// come out at comparable magnitudes: local/remote memory deltas of a few
// microseconds, atomic read-modify-write at the owning memory module, and
// memory modules that service one access at a time (the source of hot-spot
// contention under spinning).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace adx::sim {

/// Index of a machine node; every node pairs one processor with one memory
/// module (the Butterfly arrangement).
using node_id = std::uint32_t;

enum class interconnect_model : std::uint8_t {
  constant_wire,  ///< fixed one-way remote latency (default, calibrated)
  butterfly,      ///< staged 4x4 switch network with per-switch queueing
};

struct machine_config {
  /// Number of nodes (processor + memory module pairs).
  unsigned nodes = 32;

  /// One-way wire latency to the node's own memory module.
  vdur local_wire = microseconds(0.2);

  /// One-way latency across the butterfly switch to a remote module
  /// (constant_wire model).
  vdur remote_wire = microseconds(1.3);

  /// Which interconnect prices remote accesses. The staged model routes
  /// every remote access through log4(nodes) 4x4 switches, each a FIFO
  /// server, so hot-spot traffic saturates the *network* (tree blockage),
  /// not just the target module. Its uncontended one-way latency is
  /// stages x (switch_stage_latency + switch_service) — the defaults make it
  /// equal to remote_wire on 32 nodes, so the models agree when idle.
  interconnect_model wire_model = interconnect_model::constant_wire;
  vdur switch_stage_latency = microseconds(0.3);
  vdur switch_service = microseconds(0.13);

  /// Module occupancy per plain read or write; a module services one access
  /// at a time, so concurrent accesses to one module queue behind each other.
  vdur mem_service = microseconds(0.6);

  /// Module occupancy for an atomic read-modify-write (the GP1000 `atomior`
  /// class of operations, executed at the memory module).
  vdur atomic_service = microseconds(1.2);

  /// Cost of a user-level thread context switch (Cthreads on the GP1000).
  vdur context_switch = microseconds(85);

  /// Latency for an idle processor to notice newly ready work.
  vdur dispatch_latency = microseconds(12);

  /// Seed for all randomness owned by the machine.
  std::uint64_t seed = 0x5eedULL;

  friend bool operator==(const machine_config&, const machine_config&) = default;

  /// The paper's platform: 32-node BBN Butterfly GP1000.
  [[nodiscard]] static machine_config butterfly_gp1000();

  /// A small fast machine for unit tests.
  [[nodiscard]] static machine_config test_machine(unsigned nodes = 4);
};

}  // namespace adx::sim
