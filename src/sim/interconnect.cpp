#include "sim/interconnect.hpp"

namespace adx::sim {

namespace {

/// Smallest power of 4 >= n, and its log4.
unsigned log4_ceil(unsigned n) {
  unsigned stages = 0;
  unsigned cap = 1;
  while (cap < n) {
    cap *= 4;
    ++stages;
  }
  return stages == 0 ? 1 : stages;
}

}  // namespace

butterfly_network::butterfly_network(unsigned nodes, vdur stage_latency,
                                     vdur switch_service)
    : stages_(log4_ceil(nodes)),
      stage_latency_(stage_latency),
      switch_service_(switch_service) {
  unsigned cap = 1;
  for (unsigned s = 0; s < stages_; ++s) cap *= 4;
  per_stage_ = cap / 4;  // 4x4 switches: N/4 per stage
  busy_.assign(static_cast<std::size_t>(stages_) * per_stage_, vtime{});
}

unsigned butterfly_network::route(node_id src, node_id dst, unsigned stage) const {
  // Base-4 destination-tag routing: after traversing stage s, the address's
  // digit s has been corrected to the destination's. The switch occupied at
  // stage s serves the address whose digits > s come from the source and
  // digits < s from the destination — drop digit s itself to index the
  // switch within the stage.
  unsigned addr = 0;
  unsigned mul = 1;
  for (unsigned d = 0; d < stages_; ++d) {
    const unsigned digit = d < stage ? (dst >> (2 * d)) & 3u : (src >> (2 * d)) & 3u;
    addr += digit * mul;
    mul *= 4;
  }
  // Remove digit `stage` from the address.
  const unsigned lo_mul = 1u << (2 * stage);
  const unsigned lo = addr % lo_mul;
  const unsigned hi = addr / (lo_mul * 4);
  return (hi * lo_mul + lo) % per_stage_;
}

vtime butterfly_network::traverse(node_id src, node_id dst, vtime depart) {
  ++packets_;
  vtime t = depart;
  for (unsigned s = 0; s < stages_; ++s) {
    auto& busy = busy_[static_cast<std::size_t>(s) * per_stage_ + route(src, dst, s)];
    const vtime start = max(t, busy);
    total_delay_ += start - t;
    busy = start + switch_service_;
    t = busy + stage_latency_;
  }
  return t;
}

}  // namespace adx::sim
