// The machine facade: global virtual clock + event queue + memory system +
// RNG. Everything above (the thread package, locks, applications) talks to
// the hardware through this class.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include <memory>

#include "sim/event_queue.hpp"
#include "sim/interconnect.hpp"
#include "sim/machine_config.hpp"
#include "sim/memory.hpp"
#include "sim/rng.hpp"

namespace adx::sim {

class machine {
 public:
  explicit machine(machine_config cfg);

  /// Places the machine on an externally owned event queue (an execution
  /// domain's shard): all timing still flows through this machine's modules
  /// and wires, but events execute on — and the clock is read from — the
  /// shared queue. The queue must outlive the machine.
  machine(machine_config cfg, event_queue& queue);

  machine(const machine&) = delete;
  machine& operator=(const machine&) = delete;

  [[nodiscard]] const machine_config& config() const { return cfg_; }
  [[nodiscard]] unsigned nodes() const { return cfg_.nodes; }
  [[nodiscard]] event_queue& events() { return *events_; }
  [[nodiscard]] const event_queue& events() const { return *events_; }
  [[nodiscard]] vtime now() const { return events_->now(); }
  [[nodiscard]] rng& random() { return rng_; }

  /// Issues one memory access from node `from` to the word homed at `home`,
  /// starting now. Returns the time at which the requester has the result
  /// (round trip: wire out, queue + service at the module, wire back).
  vtime access(node_id from, node_id home, access_kind kind);

  /// Issues `n` back-to-back accesses (e.g. copying a multi-word record);
  /// returns the completion time of the last.
  vtime access_n(node_id from, node_id home, access_kind kind, std::uint64_t n);

  [[nodiscard]] const access_counts& counts() const { return counts_; }
  [[nodiscard]] const memory_module& module_at(node_id n) const { return modules_.at(n); }

  /// Total queueing delay across all modules — the machine-level congestion
  /// signal used by the contention benches.
  [[nodiscard]] vdur total_queue_delay() const;

  /// The staged network, when wire_model == butterfly (null otherwise).
  [[nodiscard]] const butterfly_network* network() const { return network_.get(); }

  /// Attaches a schedule perturber (not owned; null detaches). The machine
  /// consults its access-delay hook (interconnect spikes) and forwards the
  /// pointer to the event queue for tie-break perturbation.
  void set_perturber(perturber* p) {
    perturber_ = p;
    events_->set_perturber(p);
  }
  [[nodiscard]] perturber* get_perturber() const { return perturber_; }

 private:
  void init();

  machine_config cfg_;
  std::unique_ptr<event_queue> owned_events_;  ///< null when borrowing
  event_queue* events_;
  std::vector<memory_module> modules_;
  access_counts counts_;
  rng rng_;
  std::unique_ptr<butterfly_network> network_;
  perturber* perturber_{nullptr};
};

}  // namespace adx::sim
