// Interconnect models.
//
// The default machine prices remote accesses with a constant one-way wire
// latency — cheap and sufficient for the calibrated tables. The butterfly
// model reproduces the GP1000's actual topology: a log4(N)-stage omega
// network of 4x4 switches. Every remote access traverses one switch per
// stage; each switch is a FIFO single-server, so congestion arises *inside
// the network* (tree saturation toward a hot module), not only at the
// module — the phenomenon the BBN literature calls hot-spot tree blockage.
//
// Routing: stage s of the path from source node to destination node is the
// switch indexed by the destination's digit-s neighbourhood — the standard
// base-4 butterfly wiring. Deterministic, contention-visible, and testable.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine_config.hpp"
#include "sim/time.hpp"

namespace adx::sim {

/// The staged switch network. Only instantiated for the butterfly model
/// (see interconnect_model in machine_config.hpp).
class butterfly_network {
 public:
  /// `nodes` is rounded up to a power of 4 for routing purposes.
  butterfly_network(unsigned nodes, vdur stage_latency, vdur switch_service);

  [[nodiscard]] unsigned stages() const { return stages_; }
  [[nodiscard]] unsigned switches_per_stage() const { return per_stage_; }

  /// The switch index (within its stage) a packet from `src` to `dst`
  /// occupies at `stage`.
  [[nodiscard]] unsigned route(node_id src, node_id dst, unsigned stage) const;

  /// Sends one packet from `src` to `dst` starting at `depart`; returns its
  /// arrival time at the destination after queueing through every stage.
  vtime traverse(node_id src, node_id dst, vtime depart);

  /// Total queueing delay experienced inside the network so far.
  [[nodiscard]] vdur total_switch_delay() const { return total_delay_; }
  [[nodiscard]] std::uint64_t packets() const { return packets_; }

 private:
  unsigned stages_;
  unsigned per_stage_;
  vdur stage_latency_;
  vdur switch_service_;
  /// busy-until time per switch, stage-major.
  std::vector<vtime> busy_;
  vdur total_delay_{};
  std::uint64_t packets_{0};
};

}  // namespace adx::sim
