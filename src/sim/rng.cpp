#include "sim/rng.hpp"

#include <cmath>

namespace adx::sim {

double rng::exponential(double mean) {
  // Inverse-CDF sampling; clamp the uniform away from 0 to keep log finite.
  double u = uniform01();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace adx::sim
