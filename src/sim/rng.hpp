// Deterministic pseudo-random number generation for the simulator and the
// workload/instance generators. xoshiro256** seeded via SplitMix64 — fast,
// high quality, and (unlike std::mt19937 + std::uniform_int_distribution)
// bit-identical across standard library implementations, which the
// reproducibility story depends on.
#pragma once

#include <array>
#include <cstdint>

namespace adx::sim {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.
class rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire-style rejection-free enough for
  /// simulation purposes (bias < 2^-64 * bound is negligible here, but we use
  /// the multiply-shift reduction which is unbiased up to 2^-64).
  constexpr std::uint64_t below(std::uint64_t bound) {
    // 128-bit multiply-high reduction.
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Fisher–Yates shuffle of [first, last).
  template <typename It>
  constexpr void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = below(i);
      auto tmp = first[i - 1];
      first[i - 1] = first[j];
      first[j] = tmp;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace adx::sim
