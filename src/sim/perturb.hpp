// Schedule-perturbation interface for the deterministic simulator.
//
// A `perturber` is a set of hooks the simulation core consults at the points
// where real hardware exhibits timing nondeterminism: tie-breaking among
// events due at the same instant, extra latency on memory accesses
// (interconnect congestion spikes), extra delay before a thread resumes at an
// await point, and forced preemption at lock-word touchpoints. The default
// implementation of every hook is the identity, so an attached null or
// default perturber leaves a run bit-identical to an unperturbed one.
//
// Perturbers are pure schedule modifiers: they may change *when* things
// happen, never *what* the simulated program does — which is what makes them
// safe to drive from a seeded RNG and replay exactly (adx::check builds its
// schedule-exploration harness on top of this interface).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/machine_config.hpp"
#include "sim/time.hpp"

namespace adx::sim {

class perturber {
 public:
  virtual ~perturber() = default;

  /// Tie-break key for an event scheduled at `at` with insertion sequence
  /// `seq`. Events due at the same instant run in increasing key order (key
  /// ties fall back to insertion order). Returning `seq` preserves the
  /// default FIFO tie-breaking.
  [[nodiscard]] virtual std::uint64_t tie_key(vtime at, std::uint64_t seq) {
    (void)at;
    return seq;
  }

  /// Extra round-trip latency added to one memory access from `from` to the
  /// module at `home` (an interconnect congestion spike).
  [[nodiscard]] virtual vdur access_delay(node_id from, node_id home) {
    (void)from;
    (void)home;
    return {};
  }

  /// Extra delay before thread `tid` resumes at an await point (the thread
  /// keeps its processor; models cache refill / TLB / interrupt jitter).
  [[nodiscard]] virtual vdur resume_delay(std::uint32_t tid) {
    (void)tid;
    return {};
  }

  /// True if thread `tid` should be forced to yield its processor at a
  /// lock-word touchpoint (models involuntary preemption inside the lock
  /// acquisition path — the window where lost wakeups and barging races
  /// hide).
  [[nodiscard]] virtual bool preempt_at_lock(std::uint32_t tid) {
    (void)tid;
    return false;
  }
};

/// A declarative perturbation intensity profile — the serializable half of a
/// perturber. adx::check turns a profile plus a seed into a concrete seeded
/// perturber; keeping the profile here lets run configurations round-trip
/// through JSON without depending on the checker.
struct perturb_profile {
  /// Randomize the ordering of events due at the same instant.
  bool reorder_ties{false};
  /// Percent chance (0-100) that a resume at an await point is delayed.
  std::uint32_t delay_pct{0};
  /// Upper bound on one injected resume delay, in microseconds.
  std::int64_t max_delay_us{0};
  /// Percent chance (0-100) of a forced yield at a lock-word touchpoint.
  std::uint32_t preempt_pct{0};
  /// Percent chance (0-100) that a memory access is latency-spiked.
  std::uint32_t latency_pct{0};
  /// Magnitude of one interconnect latency spike, in microseconds.
  std::int64_t latency_spike_us{0};

  friend bool operator==(const perturb_profile&, const perturb_profile&) = default;

  [[nodiscard]] bool enabled() const {
    return reorder_ties || delay_pct > 0 || preempt_pct > 0 || latency_pct > 0;
  }

  // Named presets, in increasing order of aggression.
  [[nodiscard]] static perturb_profile none() { return {}; }
  [[nodiscard]] static perturb_profile ties() { return {true, 0, 0, 0, 0, 0}; }
  [[nodiscard]] static perturb_profile delay() { return {true, 25, 200, 0, 0, 0}; }
  [[nodiscard]] static perturb_profile preempt() { return {true, 0, 0, 20, 0, 0}; }
  [[nodiscard]] static perturb_profile latency() { return {true, 0, 0, 0, 25, 150}; }
  [[nodiscard]] static perturb_profile chaos() { return {true, 25, 200, 20, 25, 150}; }
};

/// Name of a preset profile ("none", "ties", "delay", "preempt", "latency",
/// "chaos"), or "custom" for anything else.
[[nodiscard]] const char* to_string(const perturb_profile& p);

/// Parses a preset profile name (as printed by to_string); throws
/// std::invalid_argument on unknown names, listing the valid ones.
[[nodiscard]] perturb_profile parse_perturb_profile(std::string_view name);

}  // namespace adx::sim
