// Metrics registry: named counters, gauges and log-scaled histograms with a
// JSON snapshot exporter.
//
// Names are dotted paths ("sim.remote_reads", "lock.qlock.wait_us"); the
// registry stores them in sorted order so snapshots are deterministic.
// Lookup creates on first use; holders may cache the returned reference —
// entries are never removed and node-based map storage keeps them stable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/log_histogram.hpp"
#include "sim/memory.hpp"

namespace adx::obs {

class counter {
 public:
  void inc(std::uint64_t d = 1) { v_ += d; }
  void set(std::uint64_t v) { v_ = v; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_{0};
};

class gauge {
 public:
  void set(double v) { v_ = v; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_{0.0};
};

class metrics {
 public:
  [[nodiscard]] counter& get_counter(std::string_view name) {
    return counters_[std::string(name)];
  }
  [[nodiscard]] gauge& get_gauge(std::string_view name) {
    return gauges_[std::string(name)];
  }
  /// Creates with default scaling when absent; use set_histogram to install
  /// a pre-filled or custom-scaled one.
  [[nodiscard]] log_histogram& get_histogram(std::string_view name) {
    auto it = histograms_.find(std::string(name));
    if (it == histograms_.end()) {
      it = histograms_.emplace(std::string(name), log_histogram{}).first;
    }
    return it->second;
  }
  void set_histogram(std::string_view name, log_histogram h) {
    histograms_.insert_or_assign(std::string(name), std::move(h));
  }

  [[nodiscard]] const std::map<std::string, counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, gauge>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, log_histogram>& histograms() const {
    return histograms_;
  }

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,min,max,
  /// mean,p50,p90,p99}}} — keys sorted, output deterministic.
  [[nodiscard]] std::string to_json() const;

  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, counter> counters_;
  std::map<std::string, gauge> gauges_;
  std::map<std::string, log_histogram> histograms_;
};

/// Snapshots the simulator's memory-access ledger (the paper's R/W cost
/// units) into counters under `prefix`.
void export_access_counts(const sim::access_counts& c, metrics& m,
                          std::string_view prefix = "sim");

}  // namespace adx::obs
