// The one JSON *reader* in the codebase. The obs subsystem is emit-only by
// design (json.hpp); the reader exists for the two places that must consume
// JSON they themselves printed: adx::run_config (replaying a checker
// configuration) and adx::perf (diffing a BENCH.json against the committed
// baseline). It is deliberately a miniature: objects, arrays, strings,
// bools, null, and numbers kept as raw text so 64-bit seeds round-trip
// without double truncation.
//
// Header-only; errors throw std::invalid_argument prefixed with the caller's
// chosen context string ("run_config", "bench_report", ...).
#pragma once

#include <charconv>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace adx::obs {

struct jvalue;
using jobject = std::map<std::string, jvalue, std::less<>>;
using jarray = std::vector<jvalue>;

struct jvalue {
  std::variant<std::nullptr_t, bool, std::string /*number (raw)*/,
               std::pair<char, std::string> /*tagged: 's' = string*/, jobject, jarray>
      v{nullptr};

  /// Error-message prefix used by the typed accessors below.
  std::string_view ctx{"json"};

  [[nodiscard]] bool is_object() const { return std::holds_alternative<jobject>(v); }
  [[nodiscard]] const jobject& object() const {
    if (!is_object()) throw std::invalid_argument(std::string(ctx) + ": expected object");
    return std::get<jobject>(v);
  }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<jarray>(v); }
  [[nodiscard]] const jarray& array() const {
    if (!is_array()) throw std::invalid_argument(std::string(ctx) + ": expected array");
    return std::get<jarray>(v);
  }

  [[nodiscard]] bool boolean() const {
    if (!std::holds_alternative<bool>(v)) {
      throw std::invalid_argument(std::string(ctx) + ": expected bool");
    }
    return std::get<bool>(v);
  }
  [[nodiscard]] const std::string& str() const {
    if (!std::holds_alternative<std::pair<char, std::string>>(v)) {
      throw std::invalid_argument(std::string(ctx) + ": expected string");
    }
    return std::get<std::pair<char, std::string>>(v).second;
  }
  template <typename T>
  [[nodiscard]] T number() const {
    if (!std::holds_alternative<std::string>(v)) {
      throw std::invalid_argument(std::string(ctx) + ": expected number");
    }
    const auto& raw = std::get<std::string>(v);
    T out{};
    const auto* end = raw.data() + raw.size();
    const auto [ptr, ec] = std::from_chars(raw.data(), end, out);
    if (ec != std::errc{} || ptr != end) {
      throw std::invalid_argument(std::string(ctx) + ": bad number: " + raw);
    }
    return out;
  }
};

class json_reader {
 public:
  /// `ctx` prefixes every error message ("run_config: JSON parse error ...").
  explicit json_reader(std::string_view text, std::string_view ctx = "json")
      : s_(text), ctx_(ctx) {}

  jvalue parse() {
    auto v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument(std::string(ctx_) + ": JSON parse error at offset " +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + '\'');
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  [[nodiscard]] jvalue tag(jvalue v) const {
    v.ctx = ctx_;
    return v;
  }

  jvalue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return tag({{std::pair<char, std::string>{'s', string()}}});
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return tag({{true}});
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return tag({{false}});
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return tag({{nullptr}});
      default: return number();
    }
  }

  jvalue object() {
    expect('{');
    jobject out;
    if (peek() == '}') {
      ++pos_;
      return tag({{std::move(out)}});
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      auto key = string();
      expect(':');
      out.emplace(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return tag({{std::move(out)}});
    }
  }

  jvalue array() {
    expect('[');
    jarray out;
    if (peek() == ']') {
      ++pos_;
      return tag({{std::move(out)}});
    }
    for (;;) {
      out.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return tag({{std::move(out)}});
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("bad escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned cp{};
          const auto* first = s_.data() + pos_;
          const auto [ptr, ec] = std::from_chars(first, first + 4, cp, 16);
          if (ec != std::errc{} || ptr != first + 4) fail("bad \\u escape");
          pos_ += 4;
          // Config/report text is ASCII; anything beyond is preserved byte-wise.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else {
            fail("non-ASCII \\u escape unsupported");
          }
          break;
        }
        default: fail("bad escape");
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  jvalue number() {
    const auto start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    return tag({{std::string(s_.substr(start, pos_ - start))}});
  }

  std::string_view s_;
  std::string_view ctx_;
  std::size_t pos_{0};
};

/// Looks up `key` in `o`; returns null when absent (caller keeps defaults).
[[nodiscard]] inline const jvalue* json_find(const jobject& o, std::string_view key) {
  const auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

}  // namespace adx::obs
