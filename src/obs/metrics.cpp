#include "obs/metrics.hpp"

#include <sstream>

#include "obs/json.hpp"

namespace adx::obs {

std::string metrics::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << json_str(name) << ':' << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << json_str(name) << ':' << json_num(g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << json_str(name) << ":{\"count\":" << h.count()
       << ",\"min\":" << json_num(h.min()) << ",\"max\":" << json_num(h.max())
       << ",\"mean\":" << json_num(h.mean())
       << ",\"p50\":" << json_num(h.percentile(50))
       << ",\"p90\":" << json_num(h.percentile(90))
       << ",\"p99\":" << json_num(h.percentile(99)) << '}';
  }
  os << "}}\n";
  return os.str();
}

void export_access_counts(const sim::access_counts& c, metrics& m,
                          std::string_view prefix) {
  const std::string p(prefix);
  m.get_counter(p + ".local_reads").set(c.local_reads);
  m.get_counter(p + ".local_writes").set(c.local_writes);
  m.get_counter(p + ".local_rmws").set(c.local_rmws);
  m.get_counter(p + ".remote_reads").set(c.remote_reads);
  m.get_counter(p + ".remote_writes").set(c.remote_writes);
  m.get_counter(p + ".remote_rmws").set(c.remote_rmws);
  m.get_counter(p + ".reads").set(c.reads());
  m.get_counter(p + ".writes").set(c.writes());
  m.get_counter(p + ".rmws").set(c.rmws());
  m.get_counter(p + ".total").set(c.total());
}

}  // namespace adx::obs
