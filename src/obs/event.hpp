// The structured event model of the observability subsystem.
//
// Events are recorded against *virtual* time and carry the identity triple
// the rest of the system already thinks in: processor (pid), thread (tid)
// and — via the name/category — the object (lock, queue, ...) that emitted
// them. The phases map 1:1 onto Chrome trace-event phases so a recorded
// stream exports losslessly to Perfetto:
//
//   complete  -> "X"  a span with an explicit duration (lock held, thread
//                     occupying a processor, ...)
//   instant   -> "i"  a point event (contention hit, reconfiguration, ...)
//   counter   -> "C"  a sampled integer signal (waiting-thread count, ...)
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace adx::obs {

enum class phase : std::uint8_t { complete, instant, counter };

/// Chrome trace-event phase letter.
[[nodiscard]] constexpr char to_chrome_phase(phase p) {
  switch (p) {
    case phase::complete: return 'X';
    case phase::instant: return 'i';
    case phase::counter: return 'C';
  }
  return '?';
}

/// One optional numeric annotation on an event. Keys are string literals
/// (static storage duration) so recording never copies them.
struct annot {
  const char* key{nullptr};
  std::int64_t value{0};

  [[nodiscard]] bool present() const { return key != nullptr; }
};

struct event {
  std::string name;
  const char* cat{""};  ///< category; a string literal ("ct", "lock", ...)
  phase ph{phase::instant};
  sim::vtime ts{};   ///< event (or span start) virtual time
  sim::vdur dur{};   ///< span length; meaningful for phase::complete only
  std::uint32_t pid{0};  ///< processor / home-node track
  std::uint32_t tid{0};  ///< thread track
  annot a1{};  ///< e.g. {"v_i", sensor value}
  annot a2{};  ///< e.g. {"waiting", n}
  const char* detail_key{nullptr};  ///< optional string annotation key
  std::string detail;               ///< e.g. the decision d_c, "pure-spin(400)"
};

}  // namespace adx::obs
