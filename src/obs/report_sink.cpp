#include "obs/report_sink.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace adx::obs {

std::string report_builder::num(double v, int prec) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(prec) << v;
  return ss.str();
}

std::string report_builder::pct(double fraction, int prec) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(prec) << fraction * 100.0 << '%';
  return ss.str();
}

std::optional<report_format> parse_report_format(std::string_view s) {
  if (s == "table") return report_format::table;
  if (s == "csv") return report_format::csv;
  if (s == "json") return report_format::json;
  return std::nullopt;
}

const char* to_string(report_format f) {
  switch (f) {
    case report_format::table: return "table";
    case report_format::csv: return "csv";
    case report_format::json: return "json";
  }
  return "?";
}

report_sink::report_sink(report_format f, std::ostream& os) : fmt_(f), os_(&os) {}

void report_sink::emit(const report& r) const {
  switch (fmt_) {
    case report_format::table: emit_table(r); break;
    case report_format::csv: emit_csv(r); break;
    case report_format::json: emit_json(r); break;
  }
}

void report_sink::emit_table(const report& r) const {
  auto& os = *os_;
  if (!r.title.empty()) os << r.title << '\n';
  for (const auto& line : r.preamble) os << line << '\n';
  if (!r.title.empty() || !r.preamble.empty()) os << '\n';

  std::vector<std::size_t> widths(r.columns.size());
  for (std::size_t c = 0; c < r.columns.size(); ++c) widths[c] = r.columns[c].size();
  for (const auto& row : r.rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto line = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << v << " |";
    }
    os << '\n';
  };
  line();
  print_row(r.columns);
  line();
  for (const auto& row : r.rows) print_row(row);
  line();

  if (!r.notes.empty()) {
    os << '\n';
    for (const auto& n : r.notes) os << n << '\n';
  }
}

namespace {

std::string csv_cell(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (const char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void report_sink::emit_csv(const report& r) const {
  auto& os = *os_;
  if (!r.title.empty()) os << "# " << r.title << '\n';
  for (const auto& line : r.preamble) os << "# " << line << '\n';
  for (std::size_t c = 0; c < r.columns.size(); ++c) {
    os << (c ? "," : "") << csv_cell(r.columns[c]);
  }
  os << '\n';
  for (const auto& row : r.rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << csv_cell(row[c]);
    }
    os << '\n';
  }
  for (const auto& n : r.notes) os << "# " << n << '\n';
}

void report_sink::emit_json(const report& r) const {
  auto& os = *os_;
  os << "{\"title\":" << json_str(r.title) << ",\"columns\":[";
  for (std::size_t c = 0; c < r.columns.size(); ++c) {
    os << (c ? "," : "") << json_str(r.columns[c]);
  }
  os << "],\"rows\":[";
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    os << (i ? "," : "") << "\n{";
    const auto& row = r.rows[i];
    for (std::size_t c = 0; c < r.columns.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string{};
      os << (c ? "," : "") << json_str(r.columns[c]) << ':'
         << (json_is_number(v) ? v : json_str(v));
    }
    os << '}';
  }
  os << "\n],\"notes\":[";
  for (std::size_t i = 0; i < r.notes.size(); ++i) {
    os << (i ? "," : "") << json_str(r.notes[i]);
  }
  os << "]}\n";
}

}  // namespace adx::obs
