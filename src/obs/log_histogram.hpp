// Log-scaled histogram with percentile queries (HdrHistogram-style).
//
// Buckets cover geometric octaves [min·2^o, min·2^(o+1)) split into a fixed
// number of linear sub-buckets, so relative quantization error is bounded by
// 2^(1/sub_per_octave) (~9% at the default 8) across the whole range —
// exactly what wait-time / critical-section-length / spin-count
// distributions need, where values span five orders of magnitude.
//
// add() is allocation-free after construction (fixed bucket vector), cheap
// enough to run always-on inside lock instrumentation.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace adx::obs {

class log_histogram {
 public:
  explicit log_histogram(double min_value = 1.0, unsigned sub_per_octave = 8,
                         unsigned octaves = 48)
      : min_value_(min_value > 0 ? min_value : 1.0),
        sub_(sub_per_octave == 0 ? 1 : sub_per_octave),
        buckets_(1 + static_cast<std::size_t>(octaves) * sub_, 0) {}

  void add(double x) {
    ++count_;
    sum_ += x;
    if (x < min_seen_) min_seen_ = x;
    if (x > max_seen_) max_seen_ = x;
    ++buckets_[index_of(x)];
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ ? min_seen_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_seen_ : 0.0; }

  /// Value at percentile `p` in [0,100]: the midpoint of the bucket holding
  /// the p-th sample (clamped to the observed min/max, so percentile(0) and
  /// percentile(100) are exact).
  [[nodiscard]] double percentile(double p) const {
    if (count_ == 0) return 0.0;
    if (p <= 0.0) return min();
    if (p >= 100.0) return max();
    const double target = p / 100.0 * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      cum += buckets_[i];
      if (static_cast<double>(cum) >= target) {
        const double mid = (bucket_lo(i) + bucket_hi(i)) / 2.0;
        if (mid < min_seen_) return min_seen_;
        if (mid > max_seen_) return max_seen_;
        return mid;
      }
    }
    return max();
  }

  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

  /// Bucket geometry, exposed so a histogram can be reconstructed on the
  /// other side of a wire (telemetry): construct with the same
  /// (min_value, sub_per_octave, octaves) and restore() the state.
  [[nodiscard]] double min_value() const { return min_value_; }
  [[nodiscard]] unsigned sub_per_octave() const {
    return static_cast<unsigned>(sub_);
  }

  /// Installs wire-transferred state verbatim (sparse non-zero buckets).
  /// Geometry is NOT restored here — the receiver must have constructed this
  /// histogram with the sender's min_value/sub_per_octave/bucket count for
  /// percentiles to land in the same buckets. Out-of-range indices are
  /// dropped rather than trusted (the wire is not an invariant).
  void restore(std::uint64_t count, double sum, double mn, double mx,
               const std::vector<std::pair<std::uint32_t, std::uint64_t>>& sparse) {
    reset();
    count_ = count;
    sum_ = sum;
    if (count > 0) {
      min_seen_ = mn;
      max_seen_ = mx;
    }
    for (const auto& [i, n] : sparse) {
      if (i < buckets_.size()) buckets_[i] += n;
    }
  }

  /// Lower bound of bucket `i` (bucket 0 holds everything below min_value_).
  [[nodiscard]] double bucket_lo(std::size_t i) const {
    if (i == 0) return 0.0;
    const std::size_t k = i - 1;
    const auto octave = static_cast<double>(k / sub_);
    const auto sub = static_cast<double>(k % sub_);
    return min_value_ * pow2(octave) * (1.0 + sub / static_cast<double>(sub_));
  }
  [[nodiscard]] double bucket_hi(std::size_t i) const {
    return i + 1 < buckets_.size() ? bucket_lo(i + 1)
                                   : bucket_lo(i) * 2.0;  // open-ended top
  }

  /// Accumulates another histogram's samples (same geometry assumed; extra
  /// buckets on either side are ignored). Lets per-place histograms merge
  /// host-side in fixed place order, keeping sharded results deterministic.
  void merge_from(const log_histogram& o) {
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.count_ > 0) {
      if (o.min_seen_ < min_seen_) min_seen_ = o.min_seen_;
      if (o.max_seen_ > max_seen_) max_seen_ = o.max_seen_;
    }
    const std::size_t n =
        buckets_.size() < o.buckets_.size() ? buckets_.size() : o.buckets_.size();
    for (std::size_t i = 0; i < n; ++i) buckets_[i] += o.buckets_[i];
  }

  void reset() {
    count_ = 0;
    sum_ = 0.0;
    min_seen_ = std::numeric_limits<double>::infinity();
    max_seen_ = -std::numeric_limits<double>::infinity();
    for (auto& b : buckets_) b = 0;
  }

 private:
  [[nodiscard]] static double pow2(double e) {
    double v = 1.0;
    for (; e >= 1.0; e -= 1.0) v *= 2.0;
    return v;
  }

  [[nodiscard]] std::size_t index_of(double x) const {
    if (!(x >= min_value_)) return 0;  // below range (or NaN): underflow bucket
    double lo = min_value_;
    std::size_t octave = 0;
    const std::size_t max_octave = (buckets_.size() - 1) / sub_;
    while (x >= lo * 2.0 && octave + 1 < max_octave) {
      lo *= 2.0;
      ++octave;
    }
    if (x >= lo * 2.0) return buckets_.size() - 1;  // overflow: top bucket
    auto sub = static_cast<std::size_t>((x - lo) / lo * static_cast<double>(sub_));
    if (sub >= sub_) sub = sub_ - 1;
    return 1 + octave * sub_ + sub;
  }

  double min_value_;
  std::size_t sub_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_{0};
  double sum_{0.0};
  double min_seen_{std::numeric_limits<double>::infinity()};
  double max_seen_{-std::numeric_limits<double>::infinity()};
};

}  // namespace adx::obs
