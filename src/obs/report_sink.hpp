// Uniform bench reporting: one `report` (title + preamble + columns + rows +
// notes) rendered to any of three formats through a `report_sink`, so every
// bench can offer `--format=table|csv|json` without hand-rolling emitters.
//
//   table — the fixed-width +---+ grid the benches have always printed
//           (byte-compatible with the old workload::table renderer);
//   csv   — header row + quoted data rows, prose lines as '#' comments;
//   json  — machine-readable: rows become objects keyed by column name, and
//           cells that parse fully as numbers are emitted unquoted.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adx::obs {

enum class report_format { table, csv, json };

/// Parses "table" / "csv" / "json"; nullopt on anything else.
[[nodiscard]] std::optional<report_format> parse_report_format(std::string_view s);
[[nodiscard]] const char* to_string(report_format f);

struct report {
  std::string title;
  std::vector<std::string> preamble;  ///< prose lines printed before the grid
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> notes;  ///< prose lines printed after the grid

  report& add_row(std::vector<std::string> cells) {
    rows.push_back(std::move(cells));
    return *this;
  }
};

class report_sink {
 public:
  explicit report_sink(report_format f, std::ostream& os);

  void emit(const report& r) const;

  [[nodiscard]] report_format format() const { return fmt_; }

 private:
  void emit_table(const report& r) const;
  void emit_csv(const report& r) const;
  void emit_json(const report& r) const;

  report_format fmt_;
  std::ostream* os_;
};

}  // namespace adx::obs
