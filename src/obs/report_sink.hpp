// Uniform bench reporting: one `report` (title + preamble + columns + rows +
// notes) rendered to any of three formats through a `report_sink`, so every
// bench can offer `--format=table|csv|json` without hand-rolling emitters.
//
//   table — the fixed-width +---+ grid the benches have always printed
//           (byte-compatible with the old workload::table renderer);
//   csv   — header row + quoted data rows, prose lines as '#' comments;
//   json  — machine-readable: rows become objects keyed by column name, and
//           cells that parse fully as numbers are emitted unquoted.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adx::obs {

enum class report_format { table, csv, json };

/// Parses "table" / "csv" / "json"; nullopt on anything else.
[[nodiscard]] std::optional<report_format> parse_report_format(std::string_view s);
[[nodiscard]] const char* to_string(report_format f);

struct report {
  std::string title;
  std::vector<std::string> preamble;  ///< prose lines printed before the grid
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> notes;  ///< prose lines printed after the grid

  report& add_row(std::vector<std::string> cells) {
    rows.push_back(std::move(cells));
    return *this;
  }
};

class report_sink {
 public:
  explicit report_sink(report_format f, std::ostream& os);

  void emit(const report& r) const;

  [[nodiscard]] report_format format() const { return fmt_; }

 private:
  void emit_table(const report& r) const;
  void emit_csv(const report& r) const;
  void emit_json(const report& r) const;

  report_format fmt_;
  std::ostream* os_;
};

/// Fluent construction of a report, plus the shared numeric cell formatters.
/// This is the one table-building API: benches, examples and the checker all
/// assemble their output through it and render via a report_sink.
class report_builder {
 public:
  explicit report_builder(std::vector<std::string> headers) {
    rep_.columns = std::move(headers);
  }

  report_builder& title(std::string t) {
    rep_.title = std::move(t);
    return *this;
  }
  report_builder& preamble(std::string line) {
    rep_.preamble.push_back(std::move(line));
    return *this;
  }
  report_builder& note(std::string line) {
    rep_.notes.push_back(std::move(line));
    return *this;
  }
  report_builder& row(std::vector<std::string> cells) {
    rep_.add_row(std::move(cells));
    return *this;
  }

  /// Renders the classic fixed-width +---+ grid (byte-identical to the old
  /// hand-rolled printer when no title/preamble/notes are set).
  void print(std::ostream& os = std::cout) const {
    emit(report_format::table, os);
  }

  /// Renders through a report_sink in any supported format.
  void emit(report_format f, std::ostream& os = std::cout) const {
    report_sink(f, os).emit(rep_);
  }

  [[nodiscard]] const report& rep() const { return rep_; }
  [[nodiscard]] report& rep() { return rep_; }

  /// Formats a double with `prec` decimals.
  [[nodiscard]] static std::string num(double v, int prec = 2);
  /// Formats a percentage (e.g. "17.8%").
  [[nodiscard]] static std::string pct(double fraction, int prec = 1);

 private:
  report rep_;
};

}  // namespace adx::obs
