// Structured event tracer.
//
// Disabled by default, and the disabled fast path is a single branch with no
// allocation — call sites either test enabled() themselves (so they can skip
// building names) or rely on the record methods' own guard. Recording is
// pure host-side bookkeeping: it charges no virtual time and schedules no
// events, so enabling the tracer never perturbs a deterministic simulation.
//
// Export formats:
//   * Chrome trace-event JSON (chrome_json()) — loads directly in Perfetto /
//     chrome://tracing; spans are "X" complete events, instants "i",
//     counters "C", with ts/dur in microseconds of virtual time.
//   * CSV (csv()) — one line per event for ad-hoc analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace adx::obs {

/// Streaming hook: a sink attached to a tracer receives every recorded event
/// as it happens, before (and independent of) in-memory storage. This is how
/// the telemetry subsystem taps a tracer for live export — a sink-only
/// tracer (enabled() false, sink attached) streams without storing, so an
/// unbounded run never grows the event vector.
class trace_sink {
 public:
  virtual ~trace_sink() = default;
  virtual void on_trace_event(const event& e) = 0;
};

class tracer {
 public:
  tracer() = default;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Attaches a streaming sink (not owned; null detaches).
  void attach_sink(trace_sink* s) { sink_ = s; }
  [[nodiscard]] trace_sink* sink() const { return sink_; }

  /// True when record methods do anything at all — stored, streamed, or
  /// both. Instrumentation call sites guard on this (it preserves the
  /// zero-alloc disabled path: one branch, no event is built).
  [[nodiscard]] bool recording() const { return enabled_ || sink_ != nullptr; }

  /// Caps stored events; further records are counted as dropped rather than
  /// growing without bound on long runs.
  void set_limit(std::size_t max_events) { max_events_ = max_events; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// A span with an explicit duration (ts = start).
  void complete(const std::string& name, const char* cat, sim::vtime ts,
                sim::vdur dur, std::uint32_t pid, std::uint32_t tid,
                annot a1 = {}, annot a2 = {}) {
    if (!recording()) return;
    record({name, cat, phase::complete, ts, dur, pid, tid, a1, a2, nullptr, {}});
  }

  /// A point event, optionally carrying a string annotation (detail).
  void instant(const std::string& name, const char* cat, sim::vtime ts,
               std::uint32_t pid, std::uint32_t tid, annot a1 = {}, annot a2 = {},
               const char* detail_key = nullptr, std::string detail = {}) {
    if (!recording()) return;
    record({name, cat, phase::instant, ts, {}, pid, tid, a1, a2, detail_key,
            std::move(detail)});
  }

  /// A counter sample; rendered by Perfetto as a value track.
  void counter(const std::string& name, const char* cat, sim::vtime ts,
               std::uint32_t pid, std::int64_t value) {
    if (!recording()) return;
    record({name, cat, phase::counter, ts, {}, pid, 0, {"value", value}, {}, nullptr, {}});
  }

  [[nodiscard]] const std::vector<event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  /// Events are emitted sorted by timestamp (stable, so recording order
  /// breaks ties deterministically).
  [[nodiscard]] std::string chrome_json() const;

  /// "ph,ts_us,dur_us,pid,tid,cat,name,key=value;..." lines.
  [[nodiscard]] std::string csv() const;

 private:
  void record(event e) {
    if (sink_ != nullptr) sink_->on_trace_event(e);
    if (enabled_) push(std::move(e));
  }

  void push(event e) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(std::move(e));
  }

  bool enabled_{false};
  trace_sink* sink_{nullptr};
  std::vector<event> events_;
  std::size_t max_events_{8'000'000};
  std::uint64_t dropped_{0};
};

}  // namespace adx::obs
