#include "obs/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "obs/json.hpp"

namespace adx::obs {

namespace {

/// ts/dur in microseconds with nanosecond resolution (3 decimals).
std::string us_fixed(double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

void append_args(std::ostringstream& os, const event& e) {
  if (!e.a1.present() && !e.a2.present() && e.detail_key == nullptr) return;
  os << ",\"args\":{";
  bool first = true;
  const auto field = [&](const char* k, const std::string& v) {
    if (!first) os << ',';
    first = false;
    os << json_str(k) << ':' << v;
  };
  if (e.a1.present()) field(e.a1.key, std::to_string(e.a1.value));
  if (e.a2.present()) field(e.a2.key, std::to_string(e.a2.value));
  if (e.detail_key != nullptr) field(e.detail_key, json_str(e.detail));
  os << '}';
}

/// Indices of events sorted by timestamp, stable in recording order.
std::vector<std::size_t> by_time(const std::vector<event>& events) {
  std::vector<std::size_t> idx(events.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return events[a].ts.ns < events[b].ts.ns;
  });
  return idx;
}

}  // namespace

std::string tracer::chrome_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto i : by_time(events_)) {
    const auto& e = events_[i];
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":" << json_str(e.name) << ",\"cat\":" << json_str(e.cat)
       << ",\"ph\":\"" << to_chrome_phase(e.ph) << "\",\"ts\":" << us_fixed(e.ts.us());
    if (e.ph == phase::complete) os << ",\"dur\":" << us_fixed(e.dur.us());
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    if (e.ph == phase::instant) os << ",\"s\":\"t\"";  // thread-scoped instant
    append_args(os, e);
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"";
  if (dropped_ > 0) {
    os << ",\"otherData\":{\"droppedEvents\":" << dropped_ << '}';
  }
  os << "}\n";
  return os.str();
}

std::string tracer::csv() const {
  std::ostringstream os;
  os << "ph,ts_us,dur_us,pid,tid,cat,name,args\n";
  for (const auto i : by_time(events_)) {
    const auto& e = events_[i];
    os << to_chrome_phase(e.ph) << ',' << us_fixed(e.ts.us()) << ','
       << (e.ph == phase::complete ? us_fixed(e.dur.us()) : std::string{}) << ','
       << e.pid << ',' << e.tid << ',' << e.cat << ',' << e.name << ',';
    const char* sep = "";
    if (e.a1.present()) {
      os << sep << e.a1.key << '=' << e.a1.value;
      sep = ";";
    }
    if (e.a2.present()) {
      os << sep << e.a2.key << '=' << e.a2.value;
      sep = ";";
    }
    if (e.detail_key != nullptr) os << sep << e.detail_key << '=' << e.detail;
    os << '\n';
  }
  return os.str();
}

}  // namespace adx::obs
