// Umbrella header for the observability subsystem `adx::obs`:
//
//   tracer       — structured events (spans/instants/counters) against
//                  virtual time, exported as Chrome trace JSON / CSV;
//   metrics      — named counters, gauges, log-scaled histograms with
//                  percentile queries and a JSON snapshot;
//   report_sink  — uniform table/CSV/JSON rendering for bench output.
//
// The feedback loop M --v_i--> P --d_c--> Psi is only as good as what the
// monitor can observe; this subsystem is the common event model behind it.
#pragma once

#include "obs/event.hpp"       // IWYU pragma: export
#include "obs/json.hpp"        // IWYU pragma: export
#include "obs/log_histogram.hpp"  // IWYU pragma: export
#include "obs/metrics.hpp"     // IWYU pragma: export
#include "obs/report_sink.hpp"  // IWYU pragma: export
#include "obs/tracer.hpp"      // IWYU pragma: export
