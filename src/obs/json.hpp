// Minimal JSON emission helpers shared by the observability exporters
// (Chrome trace JSON, metrics snapshots, report sinks). Emission only — the
// subsystem never parses JSON, so this stays a handful of formatting
// functions rather than a document model.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace adx::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not added).
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// A quoted, escaped JSON string literal.
[[nodiscard]] inline std::string json_str(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

/// Formats a double as a JSON number. JSON has no NaN/Inf, so those become
/// null; integers print without a fractional part to keep snapshots tidy.
[[nodiscard]] inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// True if the whole of `s` parses as a finite JSON-representable number —
/// used by the report sink to emit numeric-looking cells unquoted.
[[nodiscard]] inline bool json_is_number(std::string_view s) {
  if (s.empty()) return false;
  double v{};
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, v);
  return ec == std::errc{} && ptr == end && std::isfinite(v);
}

}  // namespace adx::obs
