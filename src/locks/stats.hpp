// Per-lock instrumentation: acquisition counts, waiting-time accumulation,
// the locking-pattern trace behind the paper's Figures 4-9 (number of
// threads waiting on the lock, over virtual time), always-on wait/hold-time
// histograms, and the structured-event hooks of the obs subsystem.
//
// Every lock implementation reports its state transitions here with the
// (time, thread) identity of the transition, so attaching an obs::tracer
// turns any lock into a source of Chrome-trace spans without touching the
// lock's own code. All recording is host-side: it charges no virtual time
// and never perturbs the simulation, enabled or not.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "locks/observer.hpp"
#include "obs/log_histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "telemetry/hook.hpp"

namespace adx::locks {

class lock_stats {
 public:
  void on_request(sim::vtime /*at*/, std::uint32_t /*tid*/) { ++requests_; }

  void on_contended(sim::vtime at, std::uint32_t tid) {
    ++contended_;
    if (tracing()) {
      tracer_->instant(name_contend_, "lock", at, pid_, tid);
    }
    if (observer_) observer_->on_contended(*owner_, at, tid);
  }

  void on_acquired(sim::vtime at, sim::vdur waited, std::uint32_t tid) {
    ++acquisitions_;
    wait_time_.add(waited.us());
    wait_hist_.add(waited.us());
    held_since_ = at;
    // Release-to-acquire gap: with a release already recorded this is the
    // handoff latency of the grant (dispatch + wakeup under direct handoff,
    // re-compete delay under barging). Feeds the `handoff-latency` sensor.
    if (releases_ > 0) last_handoff_ = at - last_release_at_;
    if (tracing()) {
      tracer_->complete(name_acquire_, "lock", sim::vtime{at.ns - waited.ns},
                        waited, pid_, tid);
    }
    if (observer_) observer_->on_acquired(*owner_, at, waited, tid);
  }

  void on_release(sim::vtime at, std::uint32_t tid) {
    ++releases_;
    const auto held = at - held_since_;
    held_time_.add(held.us());
    held_hist_.add(held.us());
    last_held_ = held;
    last_release_at_ = at;
    if (tracing()) {
      tracer_->complete(name_held_, "lock", held_since_, held, pid_, tid);
    }
    if (observer_) observer_->on_release(*owner_, at, tid);
  }

  void on_spin_iteration() { ++spin_iterations_; }

  void on_block(sim::vtime at, std::uint32_t tid) {
    ++blocks_;
    if (tracing()) {
      tracer_->instant(name_block_, "lock", at, pid_, tid);
    }
    if (observer_) observer_->on_block(*owner_, at, tid);
  }

  void on_handoff(sim::vtime at, std::uint32_t to_tid) {
    ++handoffs_;
    if (tracing()) {
      tracer_->instant(name_handoff_, "lock", at, pid_, to_tid,
                       {"to_tid", to_tid});
    }
    if (observer_) observer_->on_handoff(*owner_, at, to_tid);
  }

  /// A reconfiguration decision d_c, annotated with the sensor value v_i
  /// that caused it — what makes a pattern figure *explainable*. When the
  /// deciding policy identifies itself, the trace detail also carries the
  /// policy name and the full sensor vector it decided on.
  void on_reconfigure(sim::vtime at, std::uint32_t tid, std::int64_t sensor_value,
                      std::string decision, std::string_view policy_name = {},
                      std::string_view sensors = {}) {
    ++reconfigures_;
    if (observer_) observer_->on_reconfigure(*owner_, at, tid, decision);
    // Live telemetry: every adaptation decision in the process funnels
    // through here (engine decisions, async pumps, coordinator and federated
    // demotions), so this single hook streams them all. One relaxed load
    // when telemetry is off.
    if (telemetry::enabled()) {
      telemetry::publish_adapt_event(at.ns,
                                     trace_name_.empty() ? "lock" : trace_name_,
                                     policy_name, decision, sensors, sensor_value);
    }
    if (tracing()) {
      if (!policy_name.empty()) {
        decision += " policy=";
        decision += policy_name;
        if (!sensors.empty()) {
          decision += " sensors=";
          decision += sensors;
        }
      }
      tracer_->instant(name_reconfigure_, "lock", at, pid_, tid,
                       {"v_i", sensor_value}, {}, "d_c", std::move(decision));
    }
  }

  /// Ψ transition brackets: reconfigurable locks call these around the
  /// atomic attribute-set swap so observers can check nothing slipped in.
  void on_psi_begin(sim::vtime at) {
    if (observer_) observer_->on_psi_begin(*owner_, at);
  }
  void on_psi_end(sim::vtime at) {
    if (observer_) observer_->on_psi_end(*owner_, at);
  }

  /// Records the current number of waiting threads; feeds the pattern trace
  /// and the tracer's counter track if attached.
  void on_waiting_changed(sim::vtime at, std::int64_t waiting) {
    peak_waiting_ = waiting > peak_waiting_ ? waiting : peak_waiting_;
    waiting_dist_.add(static_cast<double>(waiting));
    if (pattern_) pattern_->record(at, waiting);
    if (tracing()) {
      tracer_->counter(name_waiting_, "lock", at, pid_, waiting);
    }
  }

  /// Attaches a locking-pattern trace (not owned).
  void attach_pattern_trace(sim::trace* t) { pattern_ = t; }
  [[nodiscard]] sim::trace* pattern_trace() const { return pattern_; }

  /// Attaches a structured-event tracer (not owned). `name` labels this
  /// lock's events; `pid` is the track the events land on (by convention the
  /// lock's home node). Event names are precomputed here so the recording
  /// fast path never builds strings.
  void attach_tracer(obs::tracer* t, std::string name, std::uint32_t pid) {
    tracer_ = t;
    pid_ = pid;
    name_held_ = name + ".held";
    name_acquire_ = name + ".acquire";
    name_contend_ = name + ".contend";
    name_block_ = name + ".block";
    name_handoff_ = name + ".handoff";
    name_reconfigure_ = name + ".reconfigure";
    name_waiting_ = name + ".waiting";
    trace_name_ = std::move(name);
  }
  [[nodiscard]] obs::tracer* tracer() const { return tracer_; }
  [[nodiscard]] const std::string& trace_name() const { return trace_name_; }

  /// Attaches a lock-event observer (not owned; null detaches). `owner` is
  /// the lock these stats belong to — passed back on every callback so one
  /// observer can watch many locks.
  void attach_observer(lock_object* owner, lock_event_observer* o) {
    owner_ = owner;
    observer_ = o;
  }
  [[nodiscard]] lock_event_observer* observer() const { return observer_; }

  /// Snapshots counters and distributions into a metrics registry under
  /// `prefix` (e.g. "lock.qlock").
  void export_metrics(obs::metrics& m, const std::string& prefix) const {
    m.get_counter(prefix + ".requests").set(requests_);
    m.get_counter(prefix + ".acquisitions").set(acquisitions_);
    m.get_counter(prefix + ".releases").set(releases_);
    m.get_counter(prefix + ".contended").set(contended_);
    m.get_counter(prefix + ".spin_iterations").set(spin_iterations_);
    m.get_counter(prefix + ".blocks").set(blocks_);
    m.get_counter(prefix + ".handoffs").set(handoffs_);
    m.get_counter(prefix + ".reconfigures").set(reconfigures_);
    m.get_gauge(prefix + ".peak_waiting").set(static_cast<double>(peak_waiting_));
    m.get_gauge(prefix + ".contention_ratio").set(contention_ratio());
    m.set_histogram(prefix + ".wait_us", wait_hist_);
    m.set_histogram(prefix + ".held_us", held_hist_);
  }

  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t acquisitions() const { return acquisitions_; }
  [[nodiscard]] std::uint64_t releases() const { return releases_; }
  [[nodiscard]] std::uint64_t contended() const { return contended_; }
  [[nodiscard]] std::uint64_t spin_iterations() const { return spin_iterations_; }
  [[nodiscard]] std::uint64_t blocks() const { return blocks_; }
  [[nodiscard]] std::uint64_t handoffs() const { return handoffs_; }
  [[nodiscard]] std::uint64_t reconfigures() const { return reconfigures_; }
  [[nodiscard]] std::int64_t peak_waiting() const { return peak_waiting_; }
  /// Duration of the most recently *completed* hold (the `lock-hold-time`
  /// sensor's state variable).
  [[nodiscard]] sim::vdur last_held() const { return last_held_; }
  /// Most recent release-to-acquire gap (the `handoff-latency` sensor's
  /// state variable; zero until a release has been followed by an acquire).
  [[nodiscard]] sim::vdur last_handoff_latency() const { return last_handoff_; }
  [[nodiscard]] const sim::accumulator& wait_time_us() const { return wait_time_; }
  [[nodiscard]] const sim::accumulator& held_time_us() const { return held_time_; }
  [[nodiscard]] const sim::accumulator& waiting_depth() const { return waiting_dist_; }
  [[nodiscard]] const obs::log_histogram& wait_histogram() const { return wait_hist_; }
  [[nodiscard]] const obs::log_histogram& held_histogram() const { return held_hist_; }

  /// Fraction of acquisitions that found the lock busy.
  [[nodiscard]] double contention_ratio() const {
    return requests_ ? static_cast<double>(contended_) / static_cast<double>(requests_) : 0.0;
  }

 private:
  [[nodiscard]] bool tracing() const { return tracer_ != nullptr && tracer_->recording(); }

  std::uint64_t requests_{0};
  std::uint64_t acquisitions_{0};
  std::uint64_t releases_{0};
  std::uint64_t contended_{0};
  std::uint64_t spin_iterations_{0};
  std::uint64_t blocks_{0};
  std::uint64_t handoffs_{0};
  std::uint64_t reconfigures_{0};
  std::int64_t peak_waiting_{0};
  sim::vtime held_since_{};
  sim::vdur last_held_{};
  sim::vtime last_release_at_{};
  sim::vdur last_handoff_{};
  sim::accumulator wait_time_;
  sim::accumulator held_time_;
  sim::accumulator waiting_dist_;
  obs::log_histogram wait_hist_{/*min_value=*/0.5};
  obs::log_histogram held_hist_{/*min_value=*/0.5};
  sim::trace* pattern_{nullptr};

  lock_object* owner_{nullptr};
  lock_event_observer* observer_{nullptr};
  obs::tracer* tracer_{nullptr};
  std::uint32_t pid_{0};
  std::string trace_name_;
  std::string name_held_;
  std::string name_acquire_;
  std::string name_contend_;
  std::string name_block_;
  std::string name_handoff_;
  std::string name_reconfigure_;
  std::string name_waiting_;
};

}  // namespace adx::locks
