// Per-lock instrumentation: acquisition counts, waiting-time accumulation and
// the locking-pattern trace behind the paper's Figures 4-9 (number of threads
// waiting on the lock, over virtual time).
#pragma once

#include <cstdint>

#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace adx::locks {

class lock_stats {
 public:
  void on_request(sim::vtime /*at*/) { ++requests_; }

  void on_contended() { ++contended_; }

  void on_acquired(sim::vdur waited) {
    ++acquisitions_;
    wait_time_.add(waited.us());
  }

  void on_release() { ++releases_; }
  void on_spin_iteration() { ++spin_iterations_; }
  void on_block() { ++blocks_; }
  void on_handoff() { ++handoffs_; }

  /// Records the current number of waiting threads; feeds the pattern trace
  /// if one is attached.
  void on_waiting_changed(sim::vtime at, std::int64_t waiting) {
    peak_waiting_ = waiting > peak_waiting_ ? waiting : peak_waiting_;
    waiting_dist_.add(static_cast<double>(waiting));
    if (pattern_) pattern_->record(at, waiting);
  }

  /// Attaches a locking-pattern trace (not owned).
  void attach_pattern_trace(sim::trace* t) { pattern_ = t; }
  [[nodiscard]] sim::trace* pattern_trace() const { return pattern_; }

  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t acquisitions() const { return acquisitions_; }
  [[nodiscard]] std::uint64_t releases() const { return releases_; }
  [[nodiscard]] std::uint64_t contended() const { return contended_; }
  [[nodiscard]] std::uint64_t spin_iterations() const { return spin_iterations_; }
  [[nodiscard]] std::uint64_t blocks() const { return blocks_; }
  [[nodiscard]] std::uint64_t handoffs() const { return handoffs_; }
  [[nodiscard]] std::int64_t peak_waiting() const { return peak_waiting_; }
  [[nodiscard]] const sim::accumulator& wait_time_us() const { return wait_time_; }
  [[nodiscard]] const sim::accumulator& waiting_depth() const { return waiting_dist_; }

  /// Fraction of acquisitions that found the lock busy.
  [[nodiscard]] double contention_ratio() const {
    return requests_ ? static_cast<double>(contended_) / static_cast<double>(requests_) : 0.0;
  }

 private:
  std::uint64_t requests_{0};
  std::uint64_t acquisitions_{0};
  std::uint64_t releases_{0};
  std::uint64_t contended_{0};
  std::uint64_t spin_iterations_{0};
  std::uint64_t blocks_{0};
  std::uint64_t handoffs_{0};
  std::int64_t peak_waiting_{0};
  sim::accumulator wait_time_;
  sim::accumulator waiting_dist_;
  sim::trace* pattern_{nullptr};
};

}  // namespace adx::locks
