// Condition variable over the lock family: wait() atomically releases the
// associated lock and suspends; signal()/broadcast() wake waiters, which
// reacquire the lock before returning (Mesa semantics — recheck your
// predicate in a loop). Works with any lock_object.
//
// Missed-signal safety: a waiter registers on the condition queue *before*
// releasing the lock. A signal that fires while the waiter is still inside
// its unlock path removes it from the queue; the waiter notices it is no
// longer registered and skips the suspend entirely.
#pragma once

#include <algorithm>
#include <deque>

#include "locks/lock.hpp"

namespace adx::locks {

class condition {
 public:
  condition() = default;
  condition(const condition&) = delete;
  condition& operator=(const condition&) = delete;

  /// Atomically releases `lk` and waits for a signal; reacquires `lk`
  /// before returning. Caller must hold `lk`.
  ct::task<void> wait(ct::context& ctx, lock_object& lk) {
    q_.push_back(ctx.self());
    co_await lk.unlock(ctx);
    // --- atomic window: a signal during our unlock already dequeued us.
    if (std::find(q_.begin(), q_.end(), ctx.self()) != q_.end()) {
      co_await ctx.block();
    }
    co_await lk.lock(ctx);
  }

  /// Wakes the oldest waiter (no lock required, as in Cthreads).
  ct::task<void> signal(ct::context& ctx) {
    if (!q_.empty()) {
      const auto t = q_.front();
      q_.pop_front();
      // If the waiter has not suspended yet, the failed unblock is fine: it
      // will see itself dequeued and skip the block.
      co_await ctx.unblock(t);
    }
  }

  /// Wakes every current waiter.
  ct::task<void> broadcast(ct::context& ctx) {
    std::deque<ct::thread_id> batch;
    batch.swap(q_);
    for (const auto t : batch) {
      co_await ctx.unblock(t);
    }
  }

  [[nodiscard]] std::size_t waiters() const { return q_.size(); }

 private:
  std::deque<ct::thread_id> q_;
};

}  // namespace adx::locks
