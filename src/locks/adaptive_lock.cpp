#include "locks/adaptive_lock.hpp"

#include <memory>

namespace adx::locks {

adaptive_lock::adaptive_lock(sim::node_id home, lock_cost_model cost,
                             simple_adapt_params params, waiting_policy initial,
                             std::unique_ptr<lock_scheduler> sched)
    : reconfigurable_lock(home, cost, initial, std::move(sched)), params_(params) {
  object_monitor().add_sensor(core::sensor(
      "no-of-waiting-threads", [this] { return waiting_now(); }, params_.sample_period));
  set_policy(std::make_shared<simple_adapt_policy>(*this, params_));
}

ct::task<void> adaptive_lock::post_release_hook(ct::context& ctx) {
  const auto reconfigs_before = costs().reconfiguration_ops;
  const auto delivered = feedback_point();
  if (delivered == 0) co_return;

  // Monitor: read the sensed state variable and run low-level processing.
  co_await ctx.touch(home(), sim::access_kind::read,
                     static_cast<std::uint64_t>(delivered));
  co_await ctx.compute(cost_.monitor_sample_overhead * static_cast<std::int64_t>(delivered));
  // Adaptation policy execution.
  co_await ctx.compute(cost_.policy_execution * static_cast<std::int64_t>(delivered));
  // Any reconfiguration decisions: charge the packed 1R + 1W per Ψ.
  const auto reconfigs = costs().reconfiguration_ops - reconfigs_before;
  if (reconfigs > 0) {
    co_await ctx.compute(cost_.configure_attr_overhead *
                         static_cast<std::int64_t>(reconfigs));
    co_await ctx.touch(home(), sim::access_kind::read, reconfigs);
    co_await ctx.touch(home(), sim::access_kind::write, reconfigs);
    if (auto* p = dynamic_cast<const lock_adapt_policy*>(policy())) {
      const auto& d = p->last_decision();
      stats_.on_reconfigure(ctx.now(), ctx.self(), d.sensor_value,
                            describe(d.applied), p->policy_name(), d.sensors);
    }
  }
}

}  // namespace adx::locks
