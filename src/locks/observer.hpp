// Lock-event observer: a host-side subscription to the state transitions
// every lock implementation already reports into lock_stats. Where the
// tracer renders those transitions for humans, an observer lets *programs*
// watch them — adx::check's invariant oracles (mutual exclusion, lost
// wakeup, reconfiguration atomicity, fairness) are observers.
//
// All callbacks run host-side at the moment the lock reports the event; they
// charge no virtual time and must not schedule events or touch lock state.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace adx::locks {

class lock_object;

class lock_event_observer {
 public:
  virtual ~lock_event_observer() = default;

  /// Lock acquired by `tid` after waiting `waited`.
  virtual void on_acquired(lock_object& lk, sim::vtime at, sim::vdur waited,
                           std::uint32_t tid) {
    (void)lk, (void)at, (void)waited, (void)tid;
  }

  /// Lock released by `tid` (reported at unlock entry, before any handoff).
  virtual void on_release(lock_object& lk, sim::vtime at, std::uint32_t tid) {
    (void)lk, (void)at, (void)tid;
  }

  /// `tid` found the lock busy and entered its waiting protocol.
  virtual void on_contended(lock_object& lk, sim::vtime at, std::uint32_t tid) {
    (void)lk, (void)at, (void)tid;
  }

  /// `tid` is about to block (give up its processor) waiting for the lock.
  virtual void on_block(lock_object& lk, sim::vtime at, std::uint32_t tid) {
    (void)lk, (void)at, (void)tid;
  }

  /// Releaser handed the lock directly to `to_tid` (grant_mode 0).
  virtual void on_handoff(lock_object& lk, sim::vtime at, std::uint32_t to_tid) {
    (void)lk, (void)at, (void)to_tid;
  }

  /// A reconfiguration decision fired (policy change chosen by `tid`).
  virtual void on_reconfigure(lock_object& lk, sim::vtime at, std::uint32_t tid,
                              std::string_view decision) {
    (void)lk, (void)at, (void)tid, (void)decision;
  }

  /// A Ψ transition (atomic attribute-set swap) is starting / has finished.
  /// Any acquire, release or block reported between the pair violates
  /// reconfiguration atomicity.
  virtual void on_psi_begin(lock_object& lk, sim::vtime at) { (void)lk, (void)at; }
  virtual void on_psi_end(lock_object& lk, sim::vtime at) { (void)lk, (void)at; }
};

}  // namespace adx::locks
