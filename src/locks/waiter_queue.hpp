// Small-buffer FIFO of waiting threads.
//
// Every contended lock keeps a wait queue, and in practice it is tiny: even
// the paper's worst-case locking patterns (Figures 4-9) peak at a handful of
// simultaneous waiters per lock. The inline ring keeps the first 8 waiters
// without any heap allocation — a fresh lock costs nothing to construct —
// and spills transparently when contention runs deeper.
//
// Supports exactly what the locks need: FIFO push_back/pop_front plus
// push_front (a woken loser re-queues at the head so wake order stays fair).
#pragma once

#include "ct/runtime.hpp"
#include "sim/small_ring.hpp"

namespace adx::locks {

using waiter_queue = sim::small_ring<ct::thread_id, 8>;

}  // namespace adx::locks
