// Lock schedulers (§5.1): the reconfigurable component that determines the
// delay a registered thread experiences. Split per the paper into
// registration (logging threads that want the lock), acquisition (the
// waiting mechanism — lives in the lock's waiting loop), and release
// (selecting the next thread granted the lock). Three disciplines from the
// paper's client-server experiment [MS93]: FCFS, Priority, Handoff.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "ct/runtime.hpp"

namespace adx::locks {

class lock_scheduler {
 public:
  virtual ~lock_scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Registration component: log a thread desiring lock access.
  virtual void register_waiter(ct::thread_id t, int priority) = 0;

  /// Release component: select (and remove) the next thread to grant.
  virtual std::optional<ct::thread_id> pick_next() = 0;

  /// Removes a registered thread (timed-out conditional waiter); returns
  /// whether it was present.
  virtual bool deregister(ct::thread_id t) = 0;

  [[nodiscard]] virtual std::size_t waiting() const = 0;
};

/// First-come-first-served: grant in registration order.
class fcfs_scheduler final : public lock_scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "fcfs"; }

  void register_waiter(ct::thread_id t, int) override { q_.push_back(t); }

  std::optional<ct::thread_id> pick_next() override {
    if (q_.empty()) return std::nullopt;
    const auto t = q_.front();
    q_.erase(q_.begin());
    return t;
  }

  bool deregister(ct::thread_id t) override {
    const auto it = std::find(q_.begin(), q_.end(), t);
    if (it == q_.end()) return false;
    q_.erase(it);
    return true;
  }

  [[nodiscard]] std::size_t waiting() const override { return q_.size(); }

 private:
  std::vector<ct::thread_id> q_;
};

/// Priority: grant to the highest-priority registrant (FIFO within a level).
class priority_scheduler final : public lock_scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "priority"; }

  void register_waiter(ct::thread_id t, int priority) override {
    q_.push_back({t, priority, seq_++});
  }

  std::optional<ct::thread_id> pick_next() override {
    if (q_.empty()) return std::nullopt;
    auto best = q_.begin();
    for (auto it = std::next(q_.begin()); it != q_.end(); ++it) {
      if (it->priority > best->priority ||
          (it->priority == best->priority && it->seq < best->seq)) {
        best = it;
      }
    }
    const auto t = best->tid;
    q_.erase(best);
    return t;
  }

  bool deregister(ct::thread_id t) override {
    const auto it = std::find_if(q_.begin(), q_.end(),
                                 [t](const entry& e) { return e.tid == t; });
    if (it == q_.end()) return false;
    q_.erase(it);
    return true;
  }

  [[nodiscard]] std::size_t waiting() const override { return q_.size(); }

 private:
  struct entry {
    ct::thread_id tid;
    int priority;
    std::uint64_t seq;
  };
  std::vector<entry> q_;
  std::uint64_t seq_{0};
};

/// Handoff: the releaser (or the application) designates a successor; grants
/// go to the designated thread when registered, FCFS otherwise (Black's
/// handoff scheduling, cited in §5.1).
class handoff_scheduler final : public lock_scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "handoff"; }

  /// Names the thread the next release should prefer.
  void designate(ct::thread_id t) { designated_ = t; }
  [[nodiscard]] std::optional<ct::thread_id> designated() const { return designated_; }

  void register_waiter(ct::thread_id t, int) override { q_.push_back(t); }

  std::optional<ct::thread_id> pick_next() override {
    if (designated_) {
      const auto it = std::find(q_.begin(), q_.end(), *designated_);
      if (it != q_.end()) {
        const auto t = *it;
        q_.erase(it);
        designated_.reset();
        return t;
      }
    }
    if (q_.empty()) return std::nullopt;
    const auto t = q_.front();
    q_.erase(q_.begin());
    return t;
  }

  bool deregister(ct::thread_id t) override {
    const auto it = std::find(q_.begin(), q_.end(), t);
    if (it == q_.end()) return false;
    q_.erase(it);
    return true;
  }

  [[nodiscard]] std::size_t waiting() const override { return q_.size(); }

 private:
  std::vector<ct::thread_id> q_;
  std::optional<ct::thread_id> designated_;
};

}  // namespace adx::locks
