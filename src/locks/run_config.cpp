#include "locks/run_config.hpp"

#include <charconv>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <variant>
#include <vector>

#include "obs/json.hpp"

namespace adx {
namespace {

// ---------------------------------------------------------------------------
// A miniature JSON reader, private to run_config. The obs subsystem is
// emit-only by design; run_config is the one place in the codebase that needs
// to read JSON back (replaying a printed configuration), so the parser lives
// here rather than growing obs into a document-model library. Numbers keep
// their raw text so 64-bit seeds round-trip without double truncation.
// ---------------------------------------------------------------------------

struct jvalue;
using jobject = std::map<std::string, jvalue, std::less<>>;
using jarray = std::vector<jvalue>;

struct jvalue {
  std::variant<std::nullptr_t, bool, std::string /*number (raw)*/,
               std::pair<char, std::string> /*tagged: 's' = string*/, jobject, jarray>
      v{nullptr};

  [[nodiscard]] bool is_object() const { return std::holds_alternative<jobject>(v); }
  [[nodiscard]] const jobject& object() const { return std::get<jobject>(v); }

  [[nodiscard]] bool boolean() const {
    if (!std::holds_alternative<bool>(v)) throw std::invalid_argument("run_config: expected bool");
    return std::get<bool>(v);
  }
  [[nodiscard]] const std::string& str() const {
    if (!std::holds_alternative<std::pair<char, std::string>>(v)) {
      throw std::invalid_argument("run_config: expected string");
    }
    return std::get<std::pair<char, std::string>>(v).second;
  }
  template <typename T>
  [[nodiscard]] T number() const {
    if (!std::holds_alternative<std::string>(v)) {
      throw std::invalid_argument("run_config: expected number");
    }
    const auto& raw = std::get<std::string>(v);
    T out{};
    const auto* end = raw.data() + raw.size();
    const auto [ptr, ec] = std::from_chars(raw.data(), end, out);
    if (ec != std::errc{} || ptr != end) {
      throw std::invalid_argument("run_config: bad number: " + raw);
    }
    return out;
  }
};

class json_reader {
 public:
  explicit json_reader(std::string_view text) : s_(text) {}

  jvalue parse() {
    auto v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("run_config: JSON parse error at offset " +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + '\'');
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  jvalue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return jvalue{{std::pair<char, std::string>{'s', string()}}};
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return jvalue{{true}};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return jvalue{{false}};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return jvalue{{nullptr}};
      default: return number();
    }
  }

  jvalue object() {
    expect('{');
    jobject out;
    if (peek() == '}') {
      ++pos_;
      return jvalue{{std::move(out)}};
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      auto key = string();
      expect(':');
      out.emplace(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return jvalue{{std::move(out)}};
    }
  }

  jvalue array() {
    expect('[');
    jarray out;
    if (peek() == ']') {
      ++pos_;
      return jvalue{{std::move(out)}};
    }
    for (;;) {
      out.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return jvalue{{std::move(out)}};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("bad escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned cp{};
          const auto* first = s_.data() + pos_;
          const auto [ptr, ec] = std::from_chars(first, first + 4, cp, 16);
          if (ec != std::errc{} || ptr != first + 4) fail("bad \\u escape");
          pos_ += 4;
          // Config text is ASCII; anything beyond is preserved byte-wise.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else {
            fail("non-ASCII \\u escape unsupported");
          }
          break;
        }
        default: fail("bad escape");
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  jvalue number() {
    const auto start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    return jvalue{{std::string(s_.substr(start, pos_ - start))}};
  }

  std::string_view s_;
  std::size_t pos_{0};
};

const jvalue* find(const jobject& o, std::string_view key) {
  const auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

// Field helpers: absent keys keep the caller's default.
void read_ns(const jobject& o, std::string_view key, sim::vdur& out) {
  if (const auto* v = find(o, key)) out = sim::nanoseconds(v->number<std::int64_t>());
}
template <typename T>
void read_num(const jobject& o, std::string_view key, T& out) {
  if (const auto* v = find(o, key)) out = v->number<T>();
}
void read_bool(const jobject& o, std::string_view key, bool& out) {
  if (const auto* v = find(o, key)) out = v->boolean();
}

const char* to_string(sim::interconnect_model m) {
  return m == sim::interconnect_model::butterfly ? "butterfly" : "constant_wire";
}

sim::interconnect_model parse_wire_model(std::string_view s) {
  if (s == "constant_wire") return sim::interconnect_model::constant_wire;
  if (s == "butterfly") return sim::interconnect_model::butterfly;
  throw std::invalid_argument("run_config: unknown wire_model: " + std::string(s) +
                              " (valid: constant_wire butterfly)");
}

}  // namespace

std::string run_config::to_json() const {
  using obs::json_str;
  std::ostringstream os;
  os << "{\"machine\":{"
     << "\"nodes\":" << machine.nodes
     << ",\"local_wire_ns\":" << machine.local_wire.ns
     << ",\"remote_wire_ns\":" << machine.remote_wire.ns
     << ",\"wire_model\":" << json_str(to_string(machine.wire_model))
     << ",\"switch_stage_latency_ns\":" << machine.switch_stage_latency.ns
     << ",\"switch_service_ns\":" << machine.switch_service.ns
     << ",\"mem_service_ns\":" << machine.mem_service.ns
     << ",\"atomic_service_ns\":" << machine.atomic_service.ns
     << ",\"context_switch_ns\":" << machine.context_switch.ns
     << ",\"dispatch_latency_ns\":" << machine.dispatch_latency.ns
     << ",\"seed\":" << machine.seed << '}';
  os << ",\"lock\":" << json_str(locks::to_string(lock));
  os << ",\"params\":{"
     << "\"combined_spin_limit\":" << params.combined_spin_limit
     << ",\"grant_mode\":" << params.grant_mode
     << ",\"initial_policy\":{"
     << "\"spin_time\":" << params.initial_policy.spin_time
     << ",\"delay_time\":" << params.initial_policy.delay_time
     << ",\"sleep_time\":" << params.initial_policy.sleep_time
     << ",\"timeout_us\":" << params.initial_policy.timeout_us << '}'
     << ",\"adapt\":{"
     << "\"waiting_threshold\":" << params.adapt.waiting_threshold
     << ",\"n\":" << params.adapt.n
     << ",\"spin_cap\":" << params.adapt.spin_cap
     << ",\"sample_period\":" << params.adapt.sample_period
     << ",\"pure_spin_on_idle\":" << (params.adapt.pure_spin_on_idle ? "true" : "false")
     << "}}";
  os << ",\"perturb\":{"
     << "\"reorder_ties\":" << (perturb.reorder_ties ? "true" : "false")
     << ",\"delay_pct\":" << perturb.delay_pct
     << ",\"max_delay_us\":" << perturb.max_delay_us
     << ",\"preempt_pct\":" << perturb.preempt_pct
     << ",\"latency_pct\":" << perturb.latency_pct
     << ",\"latency_spike_us\":" << perturb.latency_spike_us << '}';
  os << ",\"seed\":" << seed << '}';
  return os.str();
}

run_config run_config::from_json(std::string_view text) {
  const auto root = json_reader(text).parse();
  if (!root.is_object()) throw std::invalid_argument("run_config: expected a JSON object");
  const auto& o = root.object();

  run_config rc;
  if (const auto* m = find(o, "machine")) {
    if (!m->is_object()) throw std::invalid_argument("run_config: machine must be an object");
    const auto& mo = m->object();
    read_num(mo, "nodes", rc.machine.nodes);
    read_ns(mo, "local_wire_ns", rc.machine.local_wire);
    read_ns(mo, "remote_wire_ns", rc.machine.remote_wire);
    if (const auto* wm = find(mo, "wire_model")) {
      rc.machine.wire_model = parse_wire_model(wm->str());
    }
    read_ns(mo, "switch_stage_latency_ns", rc.machine.switch_stage_latency);
    read_ns(mo, "switch_service_ns", rc.machine.switch_service);
    read_ns(mo, "mem_service_ns", rc.machine.mem_service);
    read_ns(mo, "atomic_service_ns", rc.machine.atomic_service);
    read_ns(mo, "context_switch_ns", rc.machine.context_switch);
    read_ns(mo, "dispatch_latency_ns", rc.machine.dispatch_latency);
    read_num(mo, "seed", rc.machine.seed);
  }
  if (const auto* lk = find(o, "lock")) rc.lock = locks::parse_lock_kind(lk->str());
  if (const auto* p = find(o, "params")) {
    if (!p->is_object()) throw std::invalid_argument("run_config: params must be an object");
    const auto& po = p->object();
    read_num(po, "combined_spin_limit", rc.params.combined_spin_limit);
    read_num(po, "grant_mode", rc.params.grant_mode);
    if (const auto* ip = find(po, "initial_policy")) {
      const auto& io = ip->object();
      read_num(io, "spin_time", rc.params.initial_policy.spin_time);
      read_num(io, "delay_time", rc.params.initial_policy.delay_time);
      read_num(io, "sleep_time", rc.params.initial_policy.sleep_time);
      read_num(io, "timeout_us", rc.params.initial_policy.timeout_us);
    }
    if (const auto* ad = find(po, "adapt")) {
      const auto& ao = ad->object();
      read_num(ao, "waiting_threshold", rc.params.adapt.waiting_threshold);
      read_num(ao, "n", rc.params.adapt.n);
      read_num(ao, "spin_cap", rc.params.adapt.spin_cap);
      read_num(ao, "sample_period", rc.params.adapt.sample_period);
      read_bool(ao, "pure_spin_on_idle", rc.params.adapt.pure_spin_on_idle);
    }
  }
  if (const auto* pt = find(o, "perturb")) {
    if (!pt->is_object()) throw std::invalid_argument("run_config: perturb must be an object");
    const auto& to = pt->object();
    read_bool(to, "reorder_ties", rc.perturb.reorder_ties);
    read_num(to, "delay_pct", rc.perturb.delay_pct);
    read_num(to, "max_delay_us", rc.perturb.max_delay_us);
    read_num(to, "preempt_pct", rc.perturb.preempt_pct);
    read_num(to, "latency_pct", rc.perturb.latency_pct);
    read_num(to, "latency_spike_us", rc.perturb.latency_spike_us);
  }
  if (const auto* s = find(o, "seed")) rc.seed = s->number<std::uint64_t>();
  return rc;
}

}  // namespace adx

namespace adx::locks {

std::unique_ptr<lock_object> make_lock(const adx::run_config& rc, sim::node_id home,
                                       const lock_cost_model& cost) {
  return make_lock(rc.lock, home, cost, rc.params);
}

}  // namespace adx::locks
