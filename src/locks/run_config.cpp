#include "locks/run_config.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/json_reader.hpp"

namespace adx {
namespace {

// The JSON reader lives in obs/json_reader.hpp (shared with the perf
// baseline differ); run_config keeps only its typed field helpers here.
using obs::jobject;
using obs::jvalue;
using obs::json_find;

// Field helpers: absent keys keep the caller's default.
void read_ns(const jobject& o, std::string_view key, sim::vdur& out) {
  if (const auto* v = json_find(o, key)) out = sim::nanoseconds(v->number<std::int64_t>());
}
template <typename T>
void read_num(const jobject& o, std::string_view key, T& out) {
  if (const auto* v = json_find(o, key)) out = v->number<T>();
}
void read_bool(const jobject& o, std::string_view key, bool& out) {
  if (const auto* v = json_find(o, key)) out = v->boolean();
}

const char* to_string(sim::interconnect_model m) {
  switch (m) {
    case sim::interconnect_model::butterfly:
      return "butterfly";
    case sim::interconnect_model::hierarchical:
      return "hierarchical";
    case sim::interconnect_model::constant_wire:
      break;
  }
  return "constant_wire";
}

sim::interconnect_model parse_wire_model(std::string_view s) {
  if (s == "constant_wire") return sim::interconnect_model::constant_wire;
  if (s == "butterfly") return sim::interconnect_model::butterfly;
  if (s == "hierarchical") return sim::interconnect_model::hierarchical;
  throw std::invalid_argument("run_config: unknown wire_model: " + std::string(s) +
                              " (valid: constant_wire butterfly hierarchical)");
}

}  // namespace

std::string run_config::to_json() const {
  using obs::json_str;
  std::ostringstream os;
  os << "{\"machine\":{"
     << "\"nodes\":" << machine.nodes
     << ",\"local_wire_ns\":" << machine.local_wire.ns
     << ",\"remote_wire_ns\":" << machine.remote_wire.ns
     << ",\"wire_model\":" << json_str(to_string(machine.wire_model))
     << ",\"switch_stage_latency_ns\":" << machine.switch_stage_latency.ns
     << ",\"switch_service_ns\":" << machine.switch_service.ns
     << ",\"mem_service_ns\":" << machine.mem_service.ns
     << ",\"atomic_service_ns\":" << machine.atomic_service.ns
     << ",\"context_switch_ns\":" << machine.context_switch.ns
     << ",\"dispatch_latency_ns\":" << machine.dispatch_latency.ns;
  // Group keys exist only under the hierarchical model, keeping every
  // pre-hierarchical config (and replay journal) byte-stable.
  if (machine.wire_model == sim::interconnect_model::hierarchical) {
    os << ",\"group_size\":" << machine.group_size
       << ",\"group_wire_ns\":" << machine.group_wire.ns;
  }
  os << ",\"seed\":" << machine.seed << '}';
  os << ",\"lock\":" << json_str(locks::to_string(lock));
  os << ",\"params\":{"
     << "\"combined_spin_limit\":" << params.combined_spin_limit
     << ",\"grant_mode\":" << params.grant_mode
     << ",\"initial_policy\":{"
     << "\"spin_time\":" << params.initial_policy.spin_time
     << ",\"delay_time\":" << params.initial_policy.delay_time
     << ",\"sleep_time\":" << params.initial_policy.sleep_time
     << ",\"timeout_us\":" << params.initial_policy.timeout_us << '}'
     << ",\"adapt\":{"
     << "\"waiting_threshold\":" << params.adapt.waiting_threshold
     << ",\"n\":" << params.adapt.n
     << ",\"spin_cap\":" << params.adapt.spin_cap
     << ",\"sample_period\":" << params.adapt.sample_period
     << ",\"pure_spin_on_idle\":" << (params.adapt.pure_spin_on_idle ? "true" : "false")
     << '}'
     << ",\"policy\":" << params.policy.to_json() << '}';
  os << ",\"perturb\":{"
     << "\"reorder_ties\":" << (perturb.reorder_ties ? "true" : "false")
     << ",\"delay_pct\":" << perturb.delay_pct
     << ",\"max_delay_us\":" << perturb.max_delay_us
     << ",\"preempt_pct\":" << perturb.preempt_pct
     << ",\"latency_pct\":" << perturb.latency_pct
     << ",\"latency_spike_us\":" << perturb.latency_spike_us << '}';
  os << ",\"seed\":" << seed;
  // The object axis is emitted only when set, so pure lock configs keep
  // their historical shape (and replay journals stay byte-stable).
  if (shards != 1) os << ",\"shards\":" << shards;
  if (adaptive_lookahead) os << ",\"adaptive_lookahead\":true";
  if (!object.empty()) os << ",\"object\":" << json_str(object);
  if (!object_policy.is_default()) {
    os << ",\"object_policy\":" << object_policy.to_json();
  }
  os << '}';
  return os.str();
}

run_config run_config::from_json(std::string_view text) {
  const auto root = obs::json_reader(text, "run_config").parse();
  if (!root.is_object()) throw std::invalid_argument("run_config: expected a JSON object");
  const auto& o = root.object();

  run_config rc;
  if (const auto* m = json_find(o, "machine")) {
    if (!m->is_object()) throw std::invalid_argument("run_config: machine must be an object");
    const auto& mo = m->object();
    read_num(mo, "nodes", rc.machine.nodes);
    read_ns(mo, "local_wire_ns", rc.machine.local_wire);
    read_ns(mo, "remote_wire_ns", rc.machine.remote_wire);
    if (const auto* wm = json_find(mo, "wire_model")) {
      rc.machine.wire_model = parse_wire_model(wm->str());
    }
    read_ns(mo, "switch_stage_latency_ns", rc.machine.switch_stage_latency);
    read_ns(mo, "switch_service_ns", rc.machine.switch_service);
    read_ns(mo, "mem_service_ns", rc.machine.mem_service);
    read_ns(mo, "atomic_service_ns", rc.machine.atomic_service);
    read_ns(mo, "context_switch_ns", rc.machine.context_switch);
    read_ns(mo, "dispatch_latency_ns", rc.machine.dispatch_latency);
    read_num(mo, "group_size", rc.machine.group_size);
    if (rc.machine.group_size == 0) {
      throw std::invalid_argument("run_config: group_size must be >= 1");
    }
    read_ns(mo, "group_wire_ns", rc.machine.group_wire);
    read_num(mo, "seed", rc.machine.seed);
  }
  if (const auto* lk = json_find(o, "lock")) rc.lock = locks::parse_lock_kind(lk->str());
  if (const auto* p = json_find(o, "params")) {
    if (!p->is_object()) throw std::invalid_argument("run_config: params must be an object");
    const auto& po = p->object();
    read_num(po, "combined_spin_limit", rc.params.combined_spin_limit);
    read_num(po, "grant_mode", rc.params.grant_mode);
    if (const auto* ip = json_find(po, "initial_policy")) {
      const auto& io = ip->object();
      read_num(io, "spin_time", rc.params.initial_policy.spin_time);
      read_num(io, "delay_time", rc.params.initial_policy.delay_time);
      read_num(io, "sleep_time", rc.params.initial_policy.sleep_time);
      read_num(io, "timeout_us", rc.params.initial_policy.timeout_us);
    }
    if (const auto* ad = json_find(po, "adapt")) {
      const auto& ao = ad->object();
      read_num(ao, "waiting_threshold", rc.params.adapt.waiting_threshold);
      read_num(ao, "n", rc.params.adapt.n);
      read_num(ao, "spin_cap", rc.params.adapt.spin_cap);
      read_num(ao, "sample_period", rc.params.adapt.sample_period);
      read_bool(ao, "pure_spin_on_idle", rc.params.adapt.pure_spin_on_idle);
    }
    if (const auto* ps = json_find(po, "policy")) {
      rc.params.policy = policy::policy_spec::from_json_value(*ps);
    }
  }
  if (const auto* pt = json_find(o, "perturb")) {
    if (!pt->is_object()) throw std::invalid_argument("run_config: perturb must be an object");
    const auto& to = pt->object();
    read_bool(to, "reorder_ties", rc.perturb.reorder_ties);
    read_num(to, "delay_pct", rc.perturb.delay_pct);
    read_num(to, "max_delay_us", rc.perturb.max_delay_us);
    read_num(to, "preempt_pct", rc.perturb.preempt_pct);
    read_num(to, "latency_pct", rc.perturb.latency_pct);
    read_num(to, "latency_spike_us", rc.perturb.latency_spike_us);
  }
  if (const auto* s = json_find(o, "seed")) rc.seed = s->number<std::uint64_t>();
  if (const auto* sh = json_find(o, "shards")) rc.shards = sh->number<unsigned>();
  read_bool(o, "adaptive_lookahead", rc.adaptive_lookahead);
  if (const auto* ob = json_find(o, "object")) rc.object = ob->str();
  if (const auto* op = json_find(o, "object_policy")) {
    rc.object_policy = policy::policy_spec::from_json_value(*op);
  }
  return rc;
}

}  // namespace adx

namespace adx::locks {

std::unique_ptr<lock_object> make_lock(const adx::run_config& rc, sim::node_id home,
                                       const lock_cost_model& cost) {
  return make_lock(rc.lock, home, cost, rc.params);
}

}  // namespace adx::locks
