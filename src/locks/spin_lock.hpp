// Pure spin lock (test-test-and-set): minimum-latency waiting when the
// waiter's processor has nothing better to do (Table 4-6 "spin-lock" rows).
#pragma once

#include "locks/lock.hpp"

namespace adx::locks {

class spin_lock final : public lock_object {
 public:
  spin_lock(sim::node_id home, lock_cost_model cost) : lock_object(home, cost) {}

  [[nodiscard]] std::string_view kind() const override { return "spin"; }

  ct::task<void> lock(ct::context& ctx) override {
    const auto requested = ctx.now();
    stats_.on_request(requested, ctx.self());
    co_await ctx.compute(cost_.spin_lock_overhead);
    if (co_await try_acquire(ctx)) {
      stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
      co_return;
    }
    stats_.on_contended(ctx.now(), ctx.self());
    note_waiting(ctx.now(), +1);
    co_await spin_ttas(ctx, -1);
    note_waiting(ctx.now(), -1);
    stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
  }

  ct::task<void> unlock(ct::context& ctx) override {
    co_await ctx.compute(cost_.spin_unlock_overhead);
    stats_.on_release(ctx.now(), ctx.self());
    co_await release_word(ctx);
  }
};

}  // namespace adx::locks
