// Adaptive lock (§4, §5): a reconfigurable lock with a built-in customized
// monitor and the paper's `simple-adapt` policy, forming the closely-coupled
// feedback loop executed inline by unlocking threads.
//
// Monitor: one sensor, `no-of-waiting-threads`, sampled once during every
// other unlock operation (period 2 by default).
//
// Policy (verbatim from §4):
//
//   IF   no-of-waiting-threads = 0                → configure pure spin
//   ELIF no-of-waiting-threads <= Waiting-Threshold → no-of-spins += n
//   ELSE                                          → no-of-spins -= 2n
//   IF   no-of-spins <= 0                         → configure pure blocking
//
// Waiting-Threshold and n are lock-specific constants, exposed here as
// parameters (the paper notes they must be tuned per lock; the ablation
// bench `bench_abl_threshold` sweeps them).
#pragma once

#include <algorithm>
#include <string>

#include "core/policy.hpp"
#include "core/sensor.hpp"
#include "locks/reconfigurable_lock.hpp"

namespace adx::locks {

struct simple_adapt_params {
  std::int64_t waiting_threshold = 4;  ///< Waiting-Threshold
  std::int64_t n = 10;                 ///< the per-lock adjustment constant
  std::int64_t spin_cap = 200;         ///< upper bound on no-of-spins
  std::uint64_t sample_period = 2;     ///< sample every k-th unlock (paper: 2)
  /// The paper's no-contention rule configures an *unbounded* pure spin —
  /// correct with one thread per processor (TSP, §4), but under
  /// multiprogramming a long spin steals cycles from runnable peers. With
  /// this false, the no-contention configuration is mixed(spin_cap): spin up
  /// to the cap, then block — the bounded-spin rule production adaptive
  /// mutexes use.
  bool pure_spin_on_idle = true;

  friend bool operator==(const simple_adapt_params&, const simple_adapt_params&) = default;
};

/// The policy interface an adaptive lock drives. The lock's feedback loop is
/// policy-agnostic: it delivers observations, charges the monitor/policy/Ψ
/// costs, and asks the installed policy for its identity and most recent
/// decision when annotating reconfigure events. Concrete policies are the
/// built-in `simple_adapt_policy` below (the default) and any policy built by
/// the `adx::policy` engine (src/policy) — which is how one lock class runs
/// the whole registered policy family.
class lock_adapt_policy : public core::adaptation_policy {
 public:
  /// The most recent reconfiguration decision d_c together with the sensor
  /// value v_i that caused it and a rendering of the full sensor vector, for
  /// trace annotation.
  struct decision_record {
    std::int64_t sensor_value{0};
    waiting_policy applied{};
    std::string sensors{};  ///< "name=value ..." snapshot at decision time
  };

  /// Registry-style policy name ("simple-adapt", "break-even", ...).
  [[nodiscard]] virtual std::string_view policy_name() const = 0;
  [[nodiscard]] virtual const decision_record& last_decision() const = 0;
};

/// The paper's simple-adapt policy, operating on a reconfigurable lock.
class simple_adapt_policy final : public lock_adapt_policy {
 public:
  simple_adapt_policy(reconfigurable_lock& lk, simple_adapt_params p)
      : lk_(&lk), p_(p) {}

  void observe(const core::observation& obs) override {
    if (obs.sensor != "no-of-waiting-threads") return;
    const std::int64_t waiting = obs.value;
    const auto cur = lk_->current_policy();

    waiting_policy next;
    if (waiting == 0) {
      // No contention: configure the lock to be the lowest-latency spin
      // (unbounded per the paper, or bounded-then-block for multiprogrammed
      // workloads).
      next = p_.pure_spin_on_idle ? waiting_policy::pure_spin(p_.spin_cap)
                                  : waiting_policy::mixed(p_.spin_cap);
    } else {
      std::int64_t spins = cur.spin_time;
      if (waiting <= p_.waiting_threshold) {
        spins += p_.n;
      } else {
        spins -= 2 * p_.n;
      }
      spins = std::min(spins, p_.spin_cap);
      if (spins <= 0) {
        next = waiting_policy::pure_sleep();  // configure pure blocking
      } else {
        next = waiting_policy::mixed(spins);  // spin, then block
      }
    }
    if (next != cur && lk_->apply_waiting_policy(next)) {
      note_decision();
      last_ = {waiting, next,
               "no-of-waiting-threads=" + std::to_string(waiting)};
    }
  }

  [[nodiscard]] const simple_adapt_params& params() const { return p_; }
  [[nodiscard]] std::string_view policy_name() const override { return "simple-adapt"; }
  [[nodiscard]] const decision_record& last_decision() const override { return last_; }

 private:
  reconfigurable_lock* lk_;
  simple_adapt_params p_;
  decision_record last_{};
};

class adaptive_lock final : public reconfigurable_lock {
 public:
  adaptive_lock(sim::node_id home, lock_cost_model cost,
                simple_adapt_params params = {},
                waiting_policy initial = waiting_policy::mixed(10),
                std::unique_ptr<lock_scheduler> sched = nullptr);

  [[nodiscard]] std::string_view kind() const override { return "adaptive"; }

  [[nodiscard]] const simple_adapt_params& adapt_params() const { return params_; }

 protected:
  /// The closely-coupled feedback loop, executed by the unlocking thread:
  /// sample the sensor, run the policy, charge monitor + policy + any Ψ cost.
  ct::task<void> post_release_hook(ct::context& ctx) override;

 private:
  simple_adapt_params params_;
};

}  // namespace adx::locks
