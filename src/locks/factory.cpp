#include "locks/factory.hpp"

#include <stdexcept>
#include <string>

#include "cli/parse_error.hpp"

#include "locks/advisory_lock.hpp"
#include "locks/backoff_lock.hpp"
#include "locks/blocking_lock.hpp"
#include "locks/combined_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/spin_lock.hpp"
#include "locks/tas_lock.hpp"
#include "locks/ticket_lock.hpp"
#include "policy/registry.hpp"

namespace adx::locks {

const char* to_string(lock_kind k) {
  switch (k) {
    case lock_kind::atomior: return "atomior";
    case lock_kind::spin: return "spin";
    case lock_kind::backoff: return "spin-with-backoff";
    case lock_kind::blocking: return "blocking";
    case lock_kind::combined: return "combined";
    case lock_kind::advisory: return "advisory";
    case lock_kind::ticket: return "ticket";
    case lock_kind::mcs: return "mcs";
    case lock_kind::reconfigurable: return "reconfigurable";
    case lock_kind::adaptive: return "adaptive";
  }
  return "?";
}

std::span<const lock_kind> all_lock_kinds() {
  static constexpr lock_kind kinds[] = {
      lock_kind::atomior,  lock_kind::spin,   lock_kind::backoff,
      lock_kind::blocking, lock_kind::combined, lock_kind::advisory,
      lock_kind::ticket,   lock_kind::mcs,    lock_kind::reconfigurable,
      lock_kind::adaptive,
  };
  return kinds;
}

lock_kind parse_lock_kind(std::string_view name) {
  for (auto k : all_lock_kinds()) {
    if (name == to_string(k)) return k;
  }
  throw cli::unknown_value("lock kind", name, all_lock_kinds(),
                           [](auto k) { return to_string(k); });
}

std::unique_ptr<lock_object> make_lock(lock_kind kind, sim::node_id home,
                                       const lock_cost_model& cost,
                                       const lock_params& params) {
  switch (kind) {
    case lock_kind::atomior:
      return std::make_unique<tas_lock>(home, cost);
    case lock_kind::spin:
      return std::make_unique<spin_lock>(home, cost);
    case lock_kind::backoff:
      return std::make_unique<backoff_spin_lock>(home, cost);
    case lock_kind::blocking:
      return std::make_unique<blocking_lock>(home, cost);
    case lock_kind::combined:
      return std::make_unique<combined_lock>(home, cost, params.combined_spin_limit);
    case lock_kind::advisory:
      return std::make_unique<advisory_lock>(home, cost);
    case lock_kind::ticket:
      return std::make_unique<ticket_lock>(home, cost);
    case lock_kind::mcs:
      return std::make_unique<mcs_lock>(home, cost);
    case lock_kind::reconfigurable: {
      auto lk = std::make_unique<reconfigurable_lock>(home, cost, params.initial_policy);
      lk->attributes().at("grant-mode").set(params.grant_mode);
      return lk;
    }
    case lock_kind::adaptive: {
      auto lk = std::make_unique<adaptive_lock>(home, cost, params.adapt,
                                                params.initial_policy);
      lk->attributes().at("grant-mode").set(params.grant_mode);
      // The default spec keeps the lock's built-in simple-adapt policy (the
      // constructor already installed it); anything else goes through the
      // policy registry, which replaces the sensor set and the policy.
      if (!params.policy.is_default()) {
        policy::policy_registry::install(*lk, params, cost);
      }
      return lk;
    }
  }
  throw std::invalid_argument("make_lock: bad kind");
}

}  // namespace adx::locks
