// adx::run_config — the one value that fully determines a simulated run.
//
// Every experiment in this codebase is a function of the same five choices:
// the machine shape, the lock kind, the lock parameters, the perturbation
// profile, and the seed. Historically each driver (the TSP solver, the
// benches, the checker) assembled those pieces ad hoc; run_config packages
// them as a single serializable value so that a failing schedule-exploration
// run can print its configuration as JSON and any driver can replay it
// exactly from that text.
//
// The struct is aggregate-friendly (designated initializers work) and also
// offers a fluent builder style:
//
//   auto rc = adx::run_config{}
//                 .with_machine(sim::machine_config::test_machine(4))
//                 .with_lock(locks::lock_kind::adaptive)
//                 .with_grant_mode(1)
//                 .with_perturb(sim::perturb_profile::preempt())
//                 .with_seed(7);
//   auto lk = locks::make_lock(rc, home, cost);
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "locks/factory.hpp"
#include "sim/event_domain.hpp"
#include "sim/machine_config.hpp"
#include "sim/perturb.hpp"

namespace adx {

struct run_config {
  sim::machine_config machine = sim::machine_config::butterfly_gp1000();
  locks::lock_kind lock = locks::lock_kind::spin;
  locks::lock_params params{};
  sim::perturb_profile perturb{};
  /// Run seed: feeds both the machine RNG (machine.seed is overridden at
  /// build time when nonzero here) and any seeded perturber built from this
  /// config. Zero means "keep machine.seed as-is".
  std::uint64_t seed{0};
  /// Adaptive-object axis (src/objects): empty means a pure lock run;
  /// otherwise an objects::object_kind name ("hashmap", "monitor"). Kept as
  /// a string because run_config sits below the objects library.
  std::string object;
  /// Object-level adaptation policy (stripe-adapt / mode-adapt). The default
  /// spec means "the object's own default policy".
  policy::policy_spec object_policy{};
  /// DES shards for workloads running on an execution domain (federated ct
  /// sweeps, open-loop serving). 1 = the sequential queue; results are
  /// bit-identical at every value, so this is purely a wall-clock knob.
  unsigned shards = 1;
  /// Opt-in adaptive lookahead for the execution domain: windows widen over
  /// quiet rounds and decay on cross-shard traffic. Virtual results stay
  /// bit-identical to the fixed-lookahead run for workloads whose sends all
  /// travel at exactly the horizon (everything federation::post ships).
  bool adaptive_lookahead = false;

  friend bool operator==(const run_config&, const run_config&) = default;

  // ------- fluent builder -------

  run_config& with_machine(sim::machine_config m) {
    machine = m;
    return *this;
  }
  run_config& with_nodes(unsigned n) {
    machine.nodes = n;
    return *this;
  }
  run_config& with_lock(locks::lock_kind k) {
    lock = k;
    return *this;
  }
  run_config& with_params(locks::lock_params p) {
    params = p;
    return *this;
  }
  run_config& with_policy(locks::waiting_policy wp) {
    params.initial_policy = wp;
    return *this;
  }
  run_config& with_grant_mode(std::int64_t m) {
    params.grant_mode = m;
    return *this;
  }
  run_config& with_perturb(sim::perturb_profile p) {
    perturb = p;
    return *this;
  }
  run_config& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  run_config& with_object(std::string kind) {
    object = std::move(kind);
    return *this;
  }
  run_config& with_object_policy(policy::policy_spec spec) {
    object_policy = std::move(spec);
    return *this;
  }
  run_config& with_shards(unsigned s) {
    shards = s;
    return *this;
  }
  run_config& with_adaptive_lookahead(bool on = true) {
    adaptive_lookahead = on;
    return *this;
  }

  /// The domain options this config asks for (seed falls back to the
  /// machine's when no run seed is set).
  [[nodiscard]] sim::domain_options domain_options() const {
    return {.shards = shards,
            .seed = seed != 0 ? seed : machine.seed,
            .adaptive_lookahead = adaptive_lookahead};
  }

  /// The machine configuration to actually instantiate: `machine` with its
  /// RNG seed replaced by the run seed (when one is set).
  [[nodiscard]] sim::machine_config effective_machine() const {
    auto m = machine;
    if (seed != 0) m.seed = seed;
    return m;
  }

  /// Serializes to a single-line JSON object; from_json(to_json(c)) == c.
  [[nodiscard]] std::string to_json() const;

  /// Parses a run_config from JSON as printed by to_json(). Unknown keys are
  /// ignored (forward compatibility); missing keys keep their defaults.
  /// Throws std::invalid_argument on malformed input.
  [[nodiscard]] static run_config from_json(std::string_view text);
};

}  // namespace adx

namespace adx::locks {

/// Builds the lock a run_config describes, homed at `home`.
[[nodiscard]] std::unique_ptr<lock_object> make_lock(const adx::run_config& rc,
                                                     sim::node_id home,
                                                     const lock_cost_model& cost);

}  // namespace adx::locks
