// Lock factory: uniform construction of any lock kind, used by the benches
// and the TSP driver to sweep lock families.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "locks/adaptive_lock.hpp"
#include "locks/lock.hpp"
#include "policy/spec.hpp"

namespace adx::locks {

enum class lock_kind {
  atomior,
  spin,
  backoff,
  blocking,
  combined,
  advisory,
  ticket,
  mcs,
  reconfigurable,
  adaptive,
};

[[nodiscard]] const char* to_string(lock_kind k);

/// Parses a lock-kind name (as printed by to_string); throws
/// std::invalid_argument naming the valid kinds on unknown names.
[[nodiscard]] lock_kind parse_lock_kind(std::string_view name);

/// All lock kinds, in declaration order — the sweep axis for benches and
/// the adx-check CLI.
[[nodiscard]] std::span<const lock_kind> all_lock_kinds();

struct lock_params {
  std::int64_t combined_spin_limit = 10;
  waiting_policy initial_policy = waiting_policy::mixed(10);
  simple_adapt_params adapt{};
  /// Release discipline for reconfigurable/adaptive locks: 0 = direct
  /// handoff (paper setting), 1 = release-and-retry (barging; avoids grant
  /// convoys under heavy multiprogramming).
  std::int64_t grant_mode = 0;
  /// Adaptation policy for adaptive locks. The default spec keeps the lock's
  /// built-in simple-adapt loop (bit-identical to pre-engine behavior); any
  /// other spec is instantiated through the adx::policy registry.
  policy::policy_spec policy{};

  friend bool operator==(const lock_params&, const lock_params&) = default;
};

[[nodiscard]] std::unique_ptr<lock_object> make_lock(lock_kind kind, sim::node_id home,
                                                     const lock_cost_model& cost,
                                                     const lock_params& params = {});

}  // namespace adx::locks
