// Ticket lock (extension beyond the paper's lock set): FIFO-fair spin lock —
// one RMW to take a ticket, then read-spinning on the now-serving counter.
// Included as a fairness baseline for the scheduler benches.
#pragma once

#include "locks/lock.hpp"

namespace adx::locks {

class ticket_lock final : public lock_object {
 public:
  ticket_lock(sim::node_id home, lock_cost_model cost)
      : lock_object(home, cost), next_(home, 0), serving_(home, 0) {}

  [[nodiscard]] std::string_view kind() const override { return "ticket"; }

  ct::task<void> lock(ct::context& ctx) override {
    const auto requested = ctx.now();
    stats_.on_request(requested, ctx.self());
    co_await ctx.compute(cost_.spin_lock_overhead);
    const auto my = co_await ctx.fetch_add(next_, std::uint64_t{1});
    auto cur = co_await ctx.read(serving_);
    if (cur != my) {
      stats_.on_contended(ctx.now(), ctx.self());
      note_waiting(ctx.now(), +1);
      do {
        stats_.on_spin_iteration();
        co_await ctx.compute(cost_.spin_pause);
        cur = co_await ctx.read(serving_);
      } while (cur != my);
      note_waiting(ctx.now(), -1);
    }
    set_owner(ctx.self());
    word_.raw() = 1;  // held bit mirrors the ticket state for invariants
    stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
  }

  ct::task<void> unlock(ct::context& ctx) override {
    co_await ctx.compute(cost_.spin_unlock_overhead);
    stats_.on_release(ctx.now(), ctx.self());
    set_owner(ct::invalid_thread);
    word_.raw() = 0;
    co_await ctx.rmw(serving_, [](std::uint64_t v) { return v + 1; });
  }

 private:
  ct::svar<std::uint64_t> next_;
  ct::svar<std::uint64_t> serving_;
};

}  // namespace adx::locks
