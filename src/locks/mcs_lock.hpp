// MCS queue lock (extension): waiters spin on a flag homed on their *own*
// node, so waiting generates no remote traffic — the NUMA-friendly contrast
// to the hot-spot spin locks. Used by the placement/contention extension
// benches.
#pragma once

#include <memory>
#include <unordered_map>

#include "locks/lock.hpp"

namespace adx::locks {

class mcs_lock final : public lock_object {
  static constexpr std::uint64_t none = ~std::uint64_t{0};

  struct qnode {
    ct::svar<std::uint64_t> granted;  ///< homed on the waiter's node
    ct::svar<std::uint64_t> next;     ///< successor thread id, or `none`
    qnode(sim::node_id n) : granted(n, 0), next(n, none) {}
  };

 public:
  mcs_lock(sim::node_id home, lock_cost_model cost)
      : lock_object(home, cost), tail_(home, none) {}

  [[nodiscard]] std::string_view kind() const override { return "mcs"; }

  ct::task<void> lock(ct::context& ctx) override {
    const auto requested = ctx.now();
    stats_.on_request(requested, ctx.self());
    co_await ctx.compute(cost_.spin_lock_overhead);

    qnode& me = node_for(ctx);
    me.granted.raw() = 0;
    me.next.raw() = none;
    co_await ctx.touch(ctx.proc(), sim::access_kind::write, 2);  // node init (local)

    const auto prev = co_await ctx.exchange(tail_, std::uint64_t{ctx.self()});
    if (prev == none) {
      set_owner(ctx.self());
      word_.raw() = 1;
      stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
      co_return;
    }
    stats_.on_contended(ctx.now(), ctx.self());
    note_waiting(ctx.now(), +1);
    // Link behind the predecessor (a write on the predecessor's node).
    qnode& p = node_for_thread(static_cast<ct::thread_id>(prev), ctx);
    co_await ctx.write(p.next, std::uint64_t{ctx.self()});
    // Spin on the LOCAL granted flag.
    for (;;) {
      stats_.on_spin_iteration();
      const auto g = co_await ctx.read(me.granted);
      if (g != 0) break;
      co_await ctx.compute(cost_.spin_pause);
    }
    note_waiting(ctx.now(), -1);
    set_owner(ctx.self());
    word_.raw() = 1;
    stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
  }

  ct::task<void> unlock(ct::context& ctx) override {
    co_await ctx.compute(cost_.spin_unlock_overhead);
    stats_.on_release(ctx.now(), ctx.self());
    qnode& me = node_for(ctx);

    auto succ = co_await ctx.read(me.next);
    if (succ == none) {
      // No known successor: try to swing the tail back to empty.
      const auto old =
          co_await ctx.cas(tail_, std::uint64_t{ctx.self()}, none);
      if (old == std::uint64_t{ctx.self()}) {
        set_owner(ct::invalid_thread);
        word_.raw() = 0;
        co_return;
      }
      // A successor is mid-enqueue: wait for its link to appear.
      do {
        co_await ctx.compute(cost_.spin_pause);
        succ = co_await ctx.read(me.next);
      } while (succ == none);
    }
    const auto succ_tid = static_cast<ct::thread_id>(succ);
    qnode& s = node_for_thread(succ_tid, ctx);
    set_owner(succ_tid);
    stats_.on_handoff(ctx.now(), succ_tid);
    co_await ctx.write(s.granted, std::uint64_t{1});  // remote write to waiter
  }

 private:
  qnode& node_for(ct::context& ctx) { return node_at(ctx.self(), ctx.proc()); }

  qnode& node_for_thread(ct::thread_id t, ct::context& ctx) {
    return node_at(t, ctx.rt().thread_ref(t).proc);
  }

  qnode& node_at(ct::thread_id t, sim::node_id proc) {
    auto it = nodes_.find(t);
    if (it == nodes_.end()) {
      it = nodes_.emplace(t, std::make_unique<qnode>(proc)).first;
    }
    return *it->second;
  }

  ct::svar<std::uint64_t> tail_;
  std::unordered_map<ct::thread_id, std::unique_ptr<qnode>> nodes_;
};

}  // namespace adx::locks
