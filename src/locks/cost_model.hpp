// Software-path costs of the Cthreads lock implementations.
//
// The hardware (wire, module service) is priced by adx::sim; what remains is
// the fixed instruction-path cost of each lock operation in the thread
// package — the dominant term in the paper's Tables 4-5 (e.g. the atomior
// lock op costs 30.73 us local, of which only ~1.6 us is the memory system).
// `butterfly_cthreads()` is calibrated against those tables.
#pragma once

#include "sim/time.hpp"

namespace adx::locks {

struct lock_cost_model {
  /// Instruction path of the raw atomior lock/unlock (Table 4 row 1).
  sim::vdur tas_lock_overhead = sim::microseconds(29.0);
  sim::vdur tas_unlock_overhead = sim::microseconds(3.0);

  /// Instruction path of the spin-family lock()/unlock() (Table 4-5 rows 2-3).
  sim::vdur spin_lock_overhead = sim::microseconds(38.0);
  sim::vdur spin_unlock_overhead = sim::microseconds(4.0);

  /// Processor-side delay per spin iteration (loop + test), bounding the rate
  /// at which a spinner hammers the lock word's memory module.
  sim::vdur spin_pause = sim::microseconds(25.0);

  /// Backoff quantum: a backoff waiter delays quantum x (waiters) per round.
  sim::vdur backoff_quantum = sim::microseconds(250.0);

  /// Instruction path of the blocking lock()/unlock() (queue management,
  /// scheduler interaction; Table 4-5 rows 4).
  sim::vdur blocking_lock_overhead = sim::microseconds(80.0);
  sim::vdur blocking_unlock_overhead = sim::microseconds(55.0);

  /// Extra work on the adaptive unlock path: check for currently blocked
  /// threads (Table 5: adaptive unlock > spin unlock).
  sim::vdur adaptive_unlock_check = sim::microseconds(8.0);

  /// Executing one monitor sample: read the state variable, run low-level
  /// processing (Table 8: monitor(one state variable) = 66.03 us).
  sim::vdur monitor_sample_overhead = sim::microseconds(62.0);

  /// Executing the user adaptation policy on one observation.
  sim::vdur policy_execution = sim::microseconds(6.0);

  /// Explicit attribute-ownership acquisition by an external agent
  /// (Table 8: acquisition = 30.75 us, comparable to a test-and-set).
  sim::vdur acquisition_overhead = sim::microseconds(29.0);

  /// Instruction path of configure(waiting policy) / configure(scheduler)
  /// beyond the charged memory accesses (Table 8 rows 2-3).
  sim::vdur configure_attr_overhead = sim::microseconds(8.0);
  sim::vdur configure_sched_overhead = sim::microseconds(9.0);

  /// The paper's Cthreads implementation on the BBN Butterfly GP1000.
  [[nodiscard]] static lock_cost_model butterfly_cthreads() { return {}; }

  /// Cheap paths for fast unit tests (timing structure preserved, scaled down).
  [[nodiscard]] static lock_cost_model fast_test();
};

}  // namespace adx::locks
