// Adaptive reader-writer lock — the paper's conclusion applied: "we will use
// the concept of closely-coupled adaptation in other operating system
// components as well" (§7). The same adaptive-object structure as the
// exclusive adaptive lock, instantiated for a new abstraction:
//
//   * internal state IV: reader count, writer flag, waiting queues;
//   * mutable attributes CV: `read-bias` in [0, 100] — the grant preference
//     (0 = strict writer preference: arriving readers queue behind waiting
//     writers; 100 = strong reader preference: up to 100 readers are
//     admitted between writer grants; values between batch proportionally) —
//     and `spin-time`, the waiting policy shared with the exclusive lock;
//   * monitor M: sensors for the read share of recent acquisitions and the
//     writer backlog, sampled every k-th release;
//   * policy P (`rw_adapt_policy`): read-mostly phases push the bias toward
//     reader preference (maximizing read concurrency); write-heavy phases or
//     a writer backlog push toward writer preference (bounding writer
//     latency).
#pragma once

#include <deque>

#include "core/adaptive.hpp"
#include "core/policy.hpp"
#include "ct/context.hpp"
#include "ct/task.hpp"
#include "locks/cost_model.hpp"
#include "locks/stats.hpp"

namespace adx::locks {

class reconfigurable_rw_lock : public core::adaptive_object {
 public:
  reconfigurable_rw_lock(sim::node_id home, lock_cost_model cost,
                         std::int64_t initial_read_bias = 50,
                         std::int64_t initial_spin = 10);

  reconfigurable_rw_lock(const reconfigurable_rw_lock&) = delete;
  reconfigurable_rw_lock& operator=(const reconfigurable_rw_lock&) = delete;

  ct::task<void> lock_shared(ct::context& ctx);
  ct::task<void> unlock_shared(ct::context& ctx);
  ct::task<void> lock_exclusive(ct::context& ctx);
  ct::task<void> unlock_exclusive(ct::context& ctx);

  [[nodiscard]] sim::node_id home() const { return word_.home(); }
  [[nodiscard]] lock_stats& stats() { return stats_; }
  [[nodiscard]] const lock_stats& stats() const { return stats_; }

  // Unsimulated views for tests/invariants.
  [[nodiscard]] std::int64_t readers_raw() const { return readers_; }
  [[nodiscard]] bool writer_raw() const { return writer_held_; }
  [[nodiscard]] std::int64_t waiting_readers() const {
    return static_cast<std::int64_t>(read_queue_.size());
  }
  [[nodiscard]] std::int64_t waiting_writers() const {
    return static_cast<std::int64_t>(write_queue_.size());
  }
  [[nodiscard]] std::uint64_t read_acquisitions() const { return read_acqs_; }
  [[nodiscard]] std::uint64_t write_acquisitions() const { return write_acqs_; }
  [[nodiscard]] const sim::accumulator& writer_wait_us() const { return writer_wait_; }
  [[nodiscard]] const sim::accumulator& reader_wait_us() const { return reader_wait_; }

  [[nodiscard]] std::int64_t read_bias() const { return attributes().value("read-bias"); }

  /// Native Ψ for the in-object policy (caller charges the 1R+1W); clamps to
  /// [0, 100]. Returns false if the attribute is owned elsewhere.
  bool apply_read_bias(std::int64_t bias);

 protected:
  /// Feedback hook run by releasing threads (closely coupled).
  virtual ct::task<void> post_release_hook(ct::context& ctx, bool was_write);

  std::int64_t readers_{0};
  bool writer_held_{false};
  lock_cost_model cost_;

 private:
  [[nodiscard]] bool reader_admissible() const;
  [[nodiscard]] bool writer_admissible() const;

  /// Grants queued threads per the current bias. Decisions happen in the
  /// caller's atomic window; wakeups are charged afterwards.
  ct::task<void> grant_waiters(ct::context& ctx);

  ct::svar<std::uint64_t> word_;  ///< timing anchor for lock-word traffic
  lock_stats stats_;

  std::deque<ct::thread_id> read_queue_;
  std::deque<ct::thread_id> write_queue_;
  /// Readers admitted since the last writer grant (bias batching).
  std::int64_t reads_since_writer_grant_{0};

  std::uint64_t read_acqs_{0};
  std::uint64_t write_acqs_{0};
  sim::accumulator writer_wait_;
  sim::accumulator reader_wait_;
};

struct rw_adapt_params {
  std::int64_t hi_read_ratio_pct = 80;  ///< above this, move to reader pref
  std::int64_t lo_read_ratio_pct = 40;  ///< below this, move to writer pref
  std::int64_t writer_backlog_limit = 3;  ///< backlog forces writer pref
  std::int64_t step = 25;               ///< bias adjustment per decision
  std::uint64_t sample_period = 4;      ///< sample every k-th release
};

/// The user-provided policy: track the grant bias to the observed workload
/// mix, exactly as simple-adapt tracks the spin budget to the waiting count.
class rw_adapt_policy final : public core::adaptation_policy {
 public:
  rw_adapt_policy(reconfigurable_rw_lock& lk, rw_adapt_params p) : lk_(&lk), p_(p) {}

  void observe(const core::observation& obs) override;

 private:
  reconfigurable_rw_lock* lk_;
  rw_adapt_params p_;
};

class adaptive_rw_lock final : public reconfigurable_rw_lock {
 public:
  adaptive_rw_lock(sim::node_id home, lock_cost_model cost, rw_adapt_params params = {});

  /// Read share (percent) of the current, not-yet-sampled release window.
  [[nodiscard]] std::int64_t window_read_pct() const {
    const auto total = reads_window_ + writes_window_;
    return total == 0 ? 50 : static_cast<std::int64_t>(100 * reads_window_ / total);
  }

 protected:
  ct::task<void> post_release_hook(ct::context& ctx, bool was_write) override;

 private:
  rw_adapt_params params_;
  std::uint64_t reads_window_{0};
  std::uint64_t writes_window_{0};
};

}  // namespace adx::locks
