// The raw atomior lock: spin directly on the atomic-or primitive (Table 4
// row 1). Cheapest lock operation; under contention every iteration is an
// RMW at the home module, so it degrades the fastest — the baseline the
// smarter locks improve on.
#pragma once

#include "locks/lock.hpp"

namespace adx::locks {

class tas_lock final : public lock_object {
 public:
  tas_lock(sim::node_id home, lock_cost_model cost) : lock_object(home, cost) {}

  [[nodiscard]] std::string_view kind() const override { return "atomior"; }

  ct::task<void> lock(ct::context& ctx) override {
    const auto requested = ctx.now();
    stats_.on_request(requested, ctx.self());
    co_await ctx.compute(cost_.tas_lock_overhead);
    if (co_await try_acquire(ctx)) {
      stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
      co_return;
    }
    stats_.on_contended(ctx.now(), ctx.self());
    note_waiting(ctx.now(), +1);
    for (;;) {
      stats_.on_spin_iteration();
      co_await ctx.compute(cost_.spin_pause);
      if (co_await try_acquire(ctx)) break;
    }
    note_waiting(ctx.now(), -1);
    stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
  }

  ct::task<void> unlock(ct::context& ctx) override {
    co_await ctx.compute(cost_.tas_unlock_overhead);
    stats_.on_release(ctx.now(), ctx.self());
    co_await release_word(ctx);
  }
};

}  // namespace adx::locks
