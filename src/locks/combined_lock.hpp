// Combined lock: spin `spin_limit` times, then block (the static
// spin-then-block locks of Figure 1 — spin-1 / spin-10 / spin-50). The
// optimal spin count depends on critical-section length and locking pattern;
// that observation is exactly what motivates the adaptive lock.
#pragma once

#include "locks/lock.hpp"
#include "locks/waiter_queue.hpp"

namespace adx::locks {

class combined_lock final : public lock_object {
 public:
  combined_lock(sim::node_id home, lock_cost_model cost, std::int64_t spin_limit)
      : lock_object(home, cost), spin_limit_(spin_limit) {}

  [[nodiscard]] std::string_view kind() const override { return "combined"; }
  [[nodiscard]] std::int64_t spin_limit() const { return spin_limit_; }

  ct::task<void> lock(ct::context& ctx) override {
    const auto requested = ctx.now();
    stats_.on_request(requested, ctx.self());
    co_await ctx.compute(cost_.spin_lock_overhead);
    if (co_await try_acquire(ctx)) {
      stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
      co_return;
    }
    stats_.on_contended(ctx.now(), ctx.self());
    note_waiting(ctx.now(), +1);
    for (;;) {
      if (spin_limit_ > 0 && co_await spin_ttas(ctx, spin_limit_)) break;
      // Spin budget exhausted: register and block.
      co_await ctx.touch(home(), sim::access_kind::write, 2);
      // --- atomic window: missed-release re-check.
      if ((word_.raw() & 1) == 0) {
        if (co_await try_acquire(ctx)) break;
        continue;
      }
      queue_.push_back(ctx.self());
      stats_.on_block(ctx.now(), ctx.self());
      co_await ctx.block();
      break;  // handoff
    }
    note_waiting(ctx.now(), -1);
    stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
  }

  ct::task<void> unlock(ct::context& ctx) override {
    co_await ctx.compute(cost_.spin_unlock_overhead);
    stats_.on_release(ctx.now(), ctx.self());
    co_await ctx.touch(home(), sim::access_kind::read);  // blocked-waiter check
    while (!queue_.empty()) {
      const auto next = queue_.front();
      queue_.pop_front();
      co_await ctx.touch(home(), sim::access_kind::write);
      set_owner(next);
      if (co_await ctx.unblock(next)) {
        stats_.on_handoff(ctx.now(), next);
        co_return;
      }
      set_owner(ct::invalid_thread);
    }
    co_await release_word(ctx);  // spinners race for it
  }

 private:
  std::int64_t spin_limit_;
  waiter_queue queue_;
};

}  // namespace adx::locks
