// Lock object interface and shared machinery.
//
// Every lock is placed on a home node (its word and registration metadata
// live in that node's memory module — "centralized vs. distributed" lock
// placement is just this choice), carries per-lock statistics, and exposes
// coroutine lock()/unlock() operations executed by simulated threads.
//
// Implementation pattern used throughout: *native state, charged timing*.
// The authoritative lock state (held bit, registration queue) is plain C++
// data mutated only inside await-free windows, which the single-threaded
// event loop makes atomic; the latency of each step is charged through the
// machine's memory system (svar RMWs for the word, `touch` for metadata).
// This yields exact determinism with faithful NUMA timing.
#pragma once

#include <stdexcept>
#include <string_view>

#include "ct/context.hpp"
#include "ct/task.hpp"
#include "locks/cost_model.hpp"
#include "locks/stats.hpp"

namespace adx::locks {

class lock_object {
 public:
  virtual ~lock_object() = default;

  lock_object(const lock_object&) = delete;
  lock_object& operator=(const lock_object&) = delete;

  /// Acquires the lock; returns when the calling thread owns it.
  virtual ct::task<void> lock(ct::context& ctx) = 0;

  /// Releases the lock; the caller must be the owner.
  virtual ct::task<void> unlock(ct::context& ctx) = 0;

  [[nodiscard]] virtual std::string_view kind() const = 0;

  [[nodiscard]] sim::node_id home() const { return word_.home(); }
  [[nodiscard]] lock_stats& stats() { return stats_; }
  [[nodiscard]] const lock_stats& stats() const { return stats_; }
  [[nodiscard]] const lock_cost_model& cost_model() const { return cost_; }

  /// Current number of threads waiting (spinning or blocked) — the state
  /// variable the paper's customized lock monitor senses.
  [[nodiscard]] std::int64_t waiting_now() const { return waiting_; }

  /// Unsimulated view of the held bit, for tests and invariant checks.
  [[nodiscard]] bool held_raw() const { return (word_.raw() & 1) != 0; }

  /// Owner thread (ct::invalid_thread when free); maintained natively.
  [[nodiscard]] ct::thread_id owner() const { return owner_; }

  /// Attaches a lock-event observer (not owned; null detaches). The observer
  /// sees every state transition this lock reports into its stats.
  void attach_observer(lock_event_observer* o) { stats_.attach_observer(this, o); }

  /// Binds the lock to one execution-domain place (NUMA group / DES shard).
  /// Native lock state is plain C++ mutated inside await-free windows — that
  /// is only atomic because one shard's event loop is single-threaded, so a
  /// lock shared across shards would race under parallel windows. Federated
  /// workloads bind each lock to its group; the grant and release paths then
  /// reject threads whose runtime lives on another place. Cross-group use of
  /// a lock must instead travel through the domain's send() (e.g. a proxy
  /// request to a server thread on the lock's own group).
  void bind_place(unsigned place) {
    place_ = place;
    place_bound_ = true;
  }
  [[nodiscard]] bool place_bound() const { return place_bound_; }
  [[nodiscard]] unsigned place() const { return place_; }

 protected:
  lock_object(sim::node_id home, lock_cost_model cost)
      : word_(home, 0), cost_(cost) {}

  /// Schedule exploration: forced preemption at a lock-word touchpoint. The
  /// perturber may demand the thread yield here — legal because every caller
  /// is already at an await point, so all lock protocols must tolerate an
  /// interleaving at this spot anyway. Only yields when a peer is ready
  /// (otherwise the yield is a no-op that just burns dispatch latency).
  ct::task<void> maybe_preempt(ct::context& ctx) {
    auto* p = ctx.rt().perturber();
    if (p != nullptr && p->preempt_at_lock(ctx.self()) &&
        ctx.rt().has_ready_peer(ctx.proc())) {
      co_await ctx.yield();
    }
  }

  /// Shard-discipline check at the grant/release touchpoints: a bound lock
  /// may only be operated by threads of its own place.
  void check_place(ct::context& ctx) const {
    if (place_bound_ && ctx.rt().home_place() != place_) {
      throw std::logic_error(
          "lock_object: cross-place lock operation (bind_place discipline); "
          "route through the execution domain's send() instead");
    }
  }

  /// One test-and-set attempt (atomior): returns true if acquired.
  ct::task<bool> try_acquire(ct::context& ctx) {
    check_place(ctx);
    co_await maybe_preempt(ctx);
    const auto old = co_await ctx.fetch_or(word_, std::uint64_t{1});
    if ((old & 1) == 0) {
      owner_ = ctx.self();
      co_return true;
    }
    co_return false;
  }

  /// Test-test-and-set spin: up to `max_iters` read iterations (negative =
  /// unbounded), attempting acquisition whenever the word reads free.
  /// Returns true if acquired. The caller accounts the waiting count.
  ct::task<bool> spin_ttas(ct::context& ctx, std::int64_t max_iters) {
    for (std::int64_t i = 0; max_iters < 0 || i < max_iters; ++i) {
      stats_.on_spin_iteration();
      co_await maybe_preempt(ctx);
      const auto v = co_await ctx.read(word_);
      if ((v & 1) == 0) {
        if (co_await try_acquire(ctx)) co_return true;
      }
      co_await ctx.compute(cost_.spin_pause);
    }
    co_return false;
  }

  /// Releases the word (plain write of 0). Caller handles queue handoff.
  ct::task<void> release_word(ct::context& ctx) {
    check_place(ctx);
    owner_ = ct::invalid_thread;
    co_await ctx.write(word_, std::uint64_t{0});
  }

  /// Registers a change in the waiting population (spinners + blocked).
  void note_waiting(sim::vtime at, std::int64_t delta) {
    waiting_ += delta;
    stats_.on_waiting_changed(at, waiting_);
  }

  void set_owner(ct::thread_id t) { owner_ = t; }

  ct::svar<std::uint64_t> word_;
  lock_cost_model cost_;
  lock_stats stats_;
  std::int64_t waiting_{0};
  ct::thread_id owner_{ct::invalid_thread};
  unsigned place_{0};
  bool place_bound_{false};
};

/// RAII-style scoped critical section for simulated code:
///   co_await locks::with(lk, ctx, [&]() -> ct::task<void> { ... });
template <typename Body>
ct::task<void> with(lock_object& lk, ct::context& ctx, Body body) {
  co_await lk.lock(ctx);
  co_await body();
  co_await lk.unlock(ctx);
}

}  // namespace adx::locks
