// Spin-with-backoff (the Anderson et al. variation cited in §5.2): a waiter
// spins once; if the lock is busy it backs off for a delay proportional to
// the number of waiting threads before retrying. Cuts hot-spot traffic at
// the cost of a longer locking cycle (Table 6: backoff cycle ~320 us vs
// ~45 us for pure spin).
#pragma once

#include <algorithm>

#include "locks/lock.hpp"

namespace adx::locks {

class backoff_spin_lock final : public lock_object {
 public:
  backoff_spin_lock(sim::node_id home, lock_cost_model cost) : lock_object(home, cost) {}

  [[nodiscard]] std::string_view kind() const override { return "spin-with-backoff"; }

  ct::task<void> lock(ct::context& ctx) override {
    const auto requested = ctx.now();
    stats_.on_request(requested, ctx.self());
    co_await ctx.compute(cost_.spin_lock_overhead);
    if (co_await try_acquire(ctx)) {
      stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
      co_return;
    }
    stats_.on_contended(ctx.now(), ctx.self());
    note_waiting(ctx.now(), +1);
    for (;;) {
      const auto factor = std::max<std::int64_t>(std::int64_t{1}, waiting_);
      co_await ctx.compute(cost_.backoff_quantum * factor);
      stats_.on_spin_iteration();
      const auto v = co_await ctx.read(word_);
      if ((v & 1) == 0 && co_await try_acquire(ctx)) break;
    }
    note_waiting(ctx.now(), -1);
    stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
  }

  ct::task<void> unlock(ct::context& ctx) override {
    co_await ctx.compute(cost_.spin_unlock_overhead);
    stats_.on_release(ctx.now(), ctx.self());
    co_await release_word(ctx);
  }
};

}  // namespace adx::locks
