#include "locks/cost_model.hpp"

namespace adx::locks {

lock_cost_model lock_cost_model::fast_test() {
  lock_cost_model c;
  c.tas_lock_overhead = sim::microseconds(2.0);
  c.tas_unlock_overhead = sim::microseconds(0.5);
  c.spin_lock_overhead = sim::microseconds(3.0);
  c.spin_unlock_overhead = sim::microseconds(0.5);
  c.spin_pause = sim::microseconds(1.0);
  c.backoff_quantum = sim::microseconds(5.0);
  c.blocking_lock_overhead = sim::microseconds(6.0);
  c.blocking_unlock_overhead = sim::microseconds(4.0);
  c.adaptive_unlock_check = sim::microseconds(1.0);
  c.monitor_sample_overhead = sim::microseconds(4.0);
  c.policy_execution = sim::microseconds(1.0);
  c.acquisition_overhead = sim::microseconds(2.0);
  c.configure_attr_overhead = sim::microseconds(1.0);
  c.configure_sched_overhead = sim::microseconds(1.0);
  return c;
}

}  // namespace adx::locks
