// Advisory (speculative) lock (§2, footnote 2): the owner advises requesting
// threads whether to spin or sleep while waiting, updating the advice word
// during different phases of its computation. Performs well for variable-
// length critical sections: the owner knows how long it will hold the lock,
// the waiters do not.
#pragma once

#include <deque>

#include "locks/lock.hpp"

namespace adx::locks {

enum class lock_advice : std::uint64_t { spin = 0, sleep = 1 };

class advisory_lock final : public lock_object {
 public:
  advisory_lock(sim::node_id home, lock_cost_model cost)
      : lock_object(home, cost), advice_(home, 0) {}

  [[nodiscard]] std::string_view kind() const override { return "advisory"; }

  /// Owner-side: publish what waiters should do for the current phase.
  ct::task<void> set_advice(ct::context& ctx, lock_advice a) {
    co_await ctx.write(advice_, static_cast<std::uint64_t>(a));
  }

  [[nodiscard]] lock_advice current_advice() const {
    return static_cast<lock_advice>(advice_.raw());
  }

  ct::task<void> lock(ct::context& ctx) override {
    const auto requested = ctx.now();
    stats_.on_request(requested, ctx.self());
    co_await ctx.compute(cost_.spin_lock_overhead);
    if (co_await try_acquire(ctx)) {
      stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
      co_return;
    }
    stats_.on_contended(ctx.now(), ctx.self());
    note_waiting(ctx.now(), +1);
    for (;;) {
      const auto adv = static_cast<lock_advice>(co_await ctx.read(advice_));
      if (adv == lock_advice::spin) {
        // Spin a chunk, then re-consult the advice (the owner may have
        // entered a long phase meanwhile).
        if (co_await spin_ttas(ctx, advice_spin_chunk)) break;
        continue;
      }
      // Advice says sleep: register and block, as a blocking lock.
      co_await ctx.touch(home(), sim::access_kind::write, 2);
      // --- atomic window: missed-release re-check.
      if ((word_.raw() & 1) == 0) {
        if (co_await try_acquire(ctx)) break;
        continue;
      }
      queue_.push_back(ctx.self());
      stats_.on_block(ctx.now(), ctx.self());
      co_await ctx.block();
      break;  // handoff
    }
    note_waiting(ctx.now(), -1);
    stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
  }

  ct::task<void> unlock(ct::context& ctx) override {
    co_await ctx.compute(cost_.spin_unlock_overhead);
    stats_.on_release(ctx.now(), ctx.self());
    co_await ctx.touch(home(), sim::access_kind::read);
    while (!queue_.empty()) {
      const auto next = queue_.front();
      queue_.pop_front();
      co_await ctx.touch(home(), sim::access_kind::write);
      set_owner(next);
      if (co_await ctx.unblock(next)) {
        stats_.on_handoff(ctx.now(), next);
        co_return;
      }
      set_owner(ct::invalid_thread);
    }
    co_await release_word(ctx);
  }

  /// Spin iterations between advice refreshes.
  static constexpr std::int64_t advice_spin_chunk = 8;

 private:
  ct::svar<std::uint64_t> advice_;
  std::deque<ct::thread_id> queue_;
};

}  // namespace adx::locks
