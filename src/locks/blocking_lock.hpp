// Pure blocking lock (the plain Cthreads mutex of Tables 1-6): contended
// waiters enqueue on the lock's wait queue (homed with the lock word) and
// give up their processor; release frees the word and wakes the oldest
// waiter, which then *re-competes* for the lock. This release-and-retry
// discipline is what the paper's reconfigurable lock improves on — its
// release scheduler component grants the lock directly to the selected
// registrant instead.
#pragma once

#include "locks/lock.hpp"
#include "locks/waiter_queue.hpp"

namespace adx::locks {

class blocking_lock final : public lock_object {
 public:
  blocking_lock(sim::node_id home, lock_cost_model cost) : lock_object(home, cost) {}

  [[nodiscard]] std::string_view kind() const override { return "blocking"; }

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  ct::task<void> lock(ct::context& ctx) override {
    const auto requested = ctx.now();
    stats_.on_request(requested, ctx.self());
    co_await ctx.compute(cost_.blocking_lock_overhead);
    if (co_await try_acquire(ctx)) {
      stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
      co_return;
    }
    stats_.on_contended(ctx.now(), ctx.self());
    note_waiting(ctx.now(), +1);
    bool was_woken = false;
    for (;;) {
      // Registration-record traffic at the lock's home node.
      co_await ctx.touch(home(), sim::access_kind::write, 2);
      // --- atomic window (no awaits until block): re-check for a release
      // that slipped in while we were writing the registration record.
      if ((word_.raw() & 1) == 0) {
        if (co_await try_acquire(ctx)) break;
        continue;  // another thread got it; re-register
      }
      // A previously woken loser keeps its place at the head of the queue.
      if (was_woken) {
        queue_.push_front(ctx.self());
      } else {
        queue_.push_back(ctx.self());
      }
      stats_.on_block(ctx.now(), ctx.self());
      co_await ctx.block();
      // Woken after a release: retry the acquisition immediately (another
      // thread may still beat us to it, in which case we re-queue).
      was_woken = true;
      const bool got = co_await try_acquire(ctx);
      co_await ctx.compute(cost_.blocking_lock_overhead / 2);  // retry path
      if (got) break;
    }
    note_waiting(ctx.now(), -1);
    stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
  }

  ct::task<void> unlock(ct::context& ctx) override {
    co_await ctx.compute(cost_.blocking_unlock_overhead);
    stats_.on_release(ctx.now(), ctx.self());
    // Inspect the wait queue (one read at home), free the word, then wake
    // the oldest waiter to re-compete.
    co_await ctx.touch(home(), sim::access_kind::read);
    co_await release_word(ctx);
    if (!queue_.empty()) {
      const auto next = queue_.front();
      queue_.pop_front();
      co_await ctx.touch(home(), sim::access_kind::write);  // dequeue record
      co_await ctx.unblock(next);
    }
  }

 private:
  waiter_queue queue_;
};

}  // namespace adx::locks
