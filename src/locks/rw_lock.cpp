#include "locks/rw_lock.hpp"

#include <algorithm>
#include <vector>

namespace adx::locks {

reconfigurable_rw_lock::reconfigurable_rw_lock(sim::node_id home, lock_cost_model cost,
                                               std::int64_t initial_read_bias,
                                               std::int64_t initial_spin)
    : core::adaptive_object("rw"), cost_(cost), word_(home, 0) {
  auto& a = attributes();
  a.declare("read-bias", std::clamp<std::int64_t>(initial_read_bias, 0, 100));
  a.declare("spin-time", initial_spin);
}

bool reconfigurable_rw_lock::apply_read_bias(std::int64_t bias) {
  bias = std::clamp<std::int64_t>(bias, 0, 100);
  auto& attr = attributes().at("read-bias");
  if (attr.get() == bias) return true;  // no-op Ψ
  if (attr.set(bias) != core::set_result::ok) return false;
  note_reconfiguration(core::op_cost{1, 1});
  return true;
}

bool reconfigurable_rw_lock::reader_admissible() const {
  if (writer_held_) return false;
  if (write_queue_.empty()) return true;
  // Writers are waiting: bypass them only within the bias allowance.
  return reads_since_writer_grant_ < read_bias();
}

bool reconfigurable_rw_lock::writer_admissible() const {
  return !writer_held_ && readers_ == 0;
}

ct::task<void> reconfigurable_rw_lock::lock_shared(ct::context& ctx) {
  const auto requested = ctx.now();
  stats_.on_request(requested, ctx.self());
  co_await ctx.compute(cost_.spin_lock_overhead);
  co_await ctx.fetch_or(word_, std::uint64_t{1});  // lock-word traffic
  // --- atomic window.
  if (reader_admissible()) {
    ++readers_;
    ++reads_since_writer_grant_;
    ++read_acqs_;
    reader_wait_.add((ctx.now() - requested).us());
    stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
    co_return;
  }
  stats_.on_contended(ctx.now(), ctx.self());
  stats_.on_waiting_changed(ctx.now(),
                            waiting_readers() + waiting_writers() + 1);
  for (;;) {
    // Spin phase (waiting-policy attribute shared with the exclusive lock).
    const auto spin = attributes().value("spin-time");
    bool admitted = false;
    for (std::int64_t i = 0; i < spin; ++i) {
      stats_.on_spin_iteration();
      co_await ctx.read(word_);
      // --- atomic window per iteration.
      if (reader_admissible()) {
        ++readers_;
        ++reads_since_writer_grant_;
        admitted = true;
        break;
      }
      co_await ctx.compute(cost_.spin_pause);
    }
    if (admitted) break;
    // Register and block; a releasing thread admits us (readers_ already
    // incremented by the granter before the wakeup).
    co_await ctx.touch(home(), sim::access_kind::write, 2);
    // --- atomic window: missed-grant re-check.
    if (reader_admissible()) {
      ++readers_;
      ++reads_since_writer_grant_;
      break;
    }
    read_queue_.push_back(ctx.self());
    stats_.on_block(ctx.now(), ctx.self());
    co_await ctx.block();
    break;  // granted
  }
  ++read_acqs_;
  reader_wait_.add((ctx.now() - requested).us());
  stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
}

ct::task<void> reconfigurable_rw_lock::unlock_shared(ct::context& ctx) {
  co_await ctx.compute(cost_.spin_unlock_overhead);
  co_await ctx.fetch_add(word_, std::uint64_t{0});  // reader-count decrement
  // --- atomic window.
  --readers_;
  stats_.on_release(ctx.now(), ctx.self());
  if (readers_ == 0) co_await grant_waiters(ctx);
  co_await post_release_hook(ctx, /*was_write=*/false);
}

ct::task<void> reconfigurable_rw_lock::lock_exclusive(ct::context& ctx) {
  const auto requested = ctx.now();
  stats_.on_request(requested, ctx.self());
  co_await ctx.compute(cost_.spin_lock_overhead);
  co_await ctx.fetch_or(word_, std::uint64_t{1});
  // --- atomic window (barging allowed when completely free and no queue).
  if (writer_admissible() && write_queue_.empty()) {
    writer_held_ = true;
    reads_since_writer_grant_ = 0;
    ++write_acqs_;
    writer_wait_.add((ctx.now() - requested).us());
    stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
    co_return;
  }
  stats_.on_contended(ctx.now(), ctx.self());
  stats_.on_waiting_changed(ctx.now(),
                            waiting_readers() + waiting_writers() + 1);
  for (;;) {
    const auto spin = attributes().value("spin-time");
    bool admitted = false;
    for (std::int64_t i = 0; i < spin; ++i) {
      stats_.on_spin_iteration();
      co_await ctx.read(word_);
      if (writer_admissible() && write_queue_.empty()) {
        writer_held_ = true;
        reads_since_writer_grant_ = 0;
        admitted = true;
        break;
      }
      co_await ctx.compute(cost_.spin_pause);
    }
    if (admitted) break;
    co_await ctx.touch(home(), sim::access_kind::write, 2);
    if (writer_admissible() && write_queue_.empty()) {
      writer_held_ = true;
      reads_since_writer_grant_ = 0;
      break;
    }
    write_queue_.push_back(ctx.self());
    stats_.on_block(ctx.now(), ctx.self());
    co_await ctx.block();
    break;  // granted (writer_held_ set by the granter)
  }
  ++write_acqs_;
  writer_wait_.add((ctx.now() - requested).us());
  stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
}

ct::task<void> reconfigurable_rw_lock::unlock_exclusive(ct::context& ctx) {
  co_await ctx.compute(cost_.spin_unlock_overhead + cost_.adaptive_unlock_check);
  co_await ctx.write(word_, std::uint64_t{0});
  // --- atomic window.
  writer_held_ = false;
  stats_.on_release(ctx.now(), ctx.self());
  co_await grant_waiters(ctx);
  co_await post_release_hook(ctx, /*was_write=*/true);
}

ct::task<void> reconfigurable_rw_lock::grant_waiters(ct::context& ctx) {
  // --- atomic window: decide the grant set.
  if (writer_held_ || readers_ != 0) co_return;
  std::vector<ct::thread_id> readers_to_wake;
  ct::thread_id writer_to_wake = ct::invalid_thread;

  const bool grant_writer =
      !write_queue_.empty() &&
      (read_queue_.empty() || reads_since_writer_grant_ >= read_bias());
  if (grant_writer) {
    writer_to_wake = write_queue_.front();
    write_queue_.pop_front();
    writer_held_ = true;
    reads_since_writer_grant_ = 0;
  } else {
    while (!read_queue_.empty() &&
           (write_queue_.empty() || reads_since_writer_grant_ < read_bias())) {
      readers_to_wake.push_back(read_queue_.front());
      read_queue_.pop_front();
      ++readers_;
      ++reads_since_writer_grant_;
    }
  }
  stats_.on_waiting_changed(ctx.now(), waiting_readers() + waiting_writers());

  // Charged wakeups (queued threads are guaranteed blocked: their enqueue
  // and block are adjacent).
  if (writer_to_wake != ct::invalid_thread) {
    co_await ctx.touch(home(), sim::access_kind::write);
    co_await ctx.unblock(writer_to_wake);
    stats_.on_handoff(ctx.now(), writer_to_wake);
  }
  for (const auto r : readers_to_wake) {
    co_await ctx.touch(home(), sim::access_kind::write);
    co_await ctx.unblock(r);
    stats_.on_handoff(ctx.now(), r);
  }
}

ct::task<void> reconfigurable_rw_lock::post_release_hook(ct::context&, bool) {
  co_return;
}

void rw_adapt_policy::observe(const core::observation& obs) {
  if (obs.sensor == "read-ratio-pct") {
    const auto bias = lk_->read_bias();
    std::int64_t next = bias;
    if (obs.value >= p_.hi_read_ratio_pct) {
      next = bias + p_.step;
    } else if (obs.value <= p_.lo_read_ratio_pct) {
      next = bias - p_.step;
    }
    if (next != bias && lk_->apply_read_bias(next)) note_decision();
  } else if (obs.sensor == "waiting-writers") {
    if (obs.value >= p_.writer_backlog_limit) {
      const auto bias = lk_->read_bias();
      if (bias > 0 && lk_->apply_read_bias(bias - p_.step)) note_decision();
    }
  }
}

adaptive_rw_lock::adaptive_rw_lock(sim::node_id home, lock_cost_model cost,
                                   rw_adapt_params params)
    : reconfigurable_rw_lock(home, cost), params_(params) {
  object_monitor().add_sensor(core::sensor(
      "read-ratio-pct",
      [this] {
        const auto pct = window_read_pct();
        reads_window_ = 0;
        writes_window_ = 0;
        return pct;
      },
      params_.sample_period));
  object_monitor().add_sensor(core::sensor(
      "waiting-writers", [this] { return waiting_writers(); },
      params_.sample_period));
  set_policy(std::make_shared<rw_adapt_policy>(*this, params_));
}

ct::task<void> adaptive_rw_lock::post_release_hook(ct::context& ctx, bool was_write) {
  (was_write ? writes_window_ : reads_window_)++;
  const auto reconfigs_before = costs().reconfiguration_ops;
  const auto delivered = feedback_point();
  if (delivered == 0) co_return;
  co_await ctx.touch(home(), sim::access_kind::read,
                     static_cast<std::uint64_t>(delivered));
  co_await ctx.compute((cost_.monitor_sample_overhead + cost_.policy_execution) *
                       static_cast<std::int64_t>(delivered));
  const auto reconfigs = costs().reconfiguration_ops - reconfigs_before;
  if (reconfigs > 0) {
    co_await ctx.touch(home(), sim::access_kind::read, reconfigs);
    co_await ctx.touch(home(), sim::access_kind::write, reconfigs);
  }
}

}  // namespace adx::locks
