// Reconfigurable lock (§5.1, [MS93]): the lock whose waiting policy and
// scheduling discipline can be altered at run time behind the plain
// lock()/unlock() interface.
//
// Mutable attributes (the paper's table of waiting-policy attributes):
//
//   spin-time  delay-time  sleep-time  timeout   resulting lock
//      n           0           0          0      pure spin
//      n           n           0          0      spin (back-off)
//      0           0           n          0      pure sleep
//      x           x           x          n      conditional sleep/spin
//      n           n           n          x      mixed sleep/spin
//
// The lock scheduler (registration / acquisition / release components) is a
// pluggable object; swapping it mid-run honours the paper's transition
// protocol — pre-registered threads are served by the old scheduler, the new
// one is adopted when the registration queue drains (flag set/reset, 5W
// total per Table 8).
//
// A fifth mutable attribute, `grant-mode`, selects the release discipline:
//   0 = direct handoff — the release component grants the lock to the
//       selected registrant (lowest release-to-run latency with a processor
//       per thread, the paper's setting);
//   1 = release-and-retry (barging) — the word is freed before the selected
//       registrant is woken, and it re-competes. Under heavy
//       multiprogramming direct handoff convoys: the grantee may sit in its
//       processor's ready queue for milliseconds while the lock is already
//       charged to it; barging lets any runnable thread take the free lock.
#pragma once

#include <memory>
#include <string>

#include "core/adaptive.hpp"
#include "locks/lock.hpp"
#include "locks/scheduler.hpp"

namespace adx::locks {

/// A full waiting-policy setting — the packed CV_i instance for locks.
struct waiting_policy {
  std::int64_t spin_time{0};   ///< TTAS iterations per waiting round
  std::int64_t delay_time{0};  ///< back-off quanta between rounds
  std::int64_t sleep_time{0};  ///< nonzero: the thread may block
  std::int64_t timeout_us{0};  ///< nonzero: timed (conditional) block, in us

  friend bool operator==(const waiting_policy&, const waiting_policy&) = default;

  [[nodiscard]] static waiting_policy pure_spin(std::int64_t n = 64) { return {n, 0, 0, 0}; }
  [[nodiscard]] static waiting_policy spin_backoff(std::int64_t n = 8, std::int64_t d = 1) {
    return {n, d, 0, 0};
  }
  [[nodiscard]] static waiting_policy pure_sleep() { return {0, 0, 1, 0}; }
  [[nodiscard]] static waiting_policy conditional(std::int64_t timeout_us,
                                                  std::int64_t spin = 8) {
    return {spin, 0, 0, timeout_us};
  }
  [[nodiscard]] static waiting_policy mixed(std::int64_t spin, std::int64_t delay = 0,
                                            std::int64_t sleep = 1) {
    return {spin, delay, sleep, 0};
  }

  [[nodiscard]] bool is_pure_spin() const {
    return spin_time > 0 && sleep_time == 0 && timeout_us == 0;
  }
  [[nodiscard]] bool is_pure_sleep() const { return spin_time == 0 && sleep_time > 0; }
};

/// Human-readable configuration name, used to annotate reconfiguration
/// events (the decision d_c) in traces: "pure-spin(400)", "pure-blocking",
/// "spin-then-block(30)", ...
[[nodiscard]] std::string describe(const waiting_policy& wp);

class reconfigurable_lock : public lock_object, public core::adaptive_object {
 public:
  reconfigurable_lock(sim::node_id home, lock_cost_model cost,
                      waiting_policy initial = waiting_policy::mixed(10),
                      std::unique_ptr<lock_scheduler> sched = nullptr);

  [[nodiscard]] std::string_view kind() const override { return "reconfigurable"; }

  ct::task<void> lock(ct::context& ctx) override;
  ct::task<void> unlock(ct::context& ctx) override;

  // ------- Ψ operations (simulated and charged; Table 8 costs) -------

  /// configure(waiting policy): one read + one write of the packed policy
  /// word, plus the instruction path.
  ct::task<void> configure_waiting_policy(ct::context& ctx, waiting_policy wp);

  /// configure(scheduler): three sub-module writes, a transition-flag write;
  /// the flag-reset write is charged when the new scheduler is adopted.
  ct::task<void> configure_scheduler(ct::context& ctx,
                                     std::unique_ptr<lock_scheduler> next);

  /// Explicit attribute-ownership acquisition by an external agent
  /// (Table 8 "acquisition"; cost comparable to a test-and-set).
  ct::task<bool> acquire_attribute(ct::context& ctx, std::string_view name,
                                   core::agent_id agent);
  ct::task<void> release_attribute(ct::context& ctx, std::string_view name,
                                   core::agent_id agent);

  // ------- native reconfiguration (for in-object adaptation policies;
  //         the caller charges the cost) -------

  /// Applies all four waiting-policy attributes as one packed Ψ (1R + 1W).
  /// Returns false (and changes nothing) if any attribute is immutable or
  /// owned by another agent; true on success or no-op. `at` labels the Ψ
  /// brackets reported to an attached lock-event observer (host-side callers
  /// without a clock may leave it zero).
  bool apply_waiting_policy(const waiting_policy& wp,
                            std::optional<core::agent_id> who = std::nullopt,
                            sim::vtime at = {});

  [[nodiscard]] waiting_policy current_policy() const;

  [[nodiscard]] lock_scheduler& scheduler() { return *sched_; }
  [[nodiscard]] const lock_scheduler& scheduler() const { return *sched_; }
  [[nodiscard]] bool scheduler_transition_pending() const { return pending_sched_ != nullptr; }

 protected:
  /// Runs after the release path completes; the adaptive lock hooks its
  /// monitor/policy feedback here.
  virtual ct::task<void> post_release_hook(ct::context& ctx);

 private:
  std::unique_ptr<lock_scheduler> sched_;
  std::unique_ptr<lock_scheduler> pending_sched_;
};

}  // namespace adx::locks
