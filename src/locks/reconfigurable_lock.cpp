#include "locks/reconfigurable_lock.hpp"

#include <sstream>

namespace adx::locks {

std::string describe(const waiting_policy& wp) {
  std::ostringstream os;
  if (wp.is_pure_spin()) {
    os << "pure-spin(" << wp.spin_time << ')';
  } else if (wp.is_pure_sleep()) {
    os << "pure-blocking";
  } else if (wp.timeout_us > 0) {
    os << "conditional(spin=" << wp.spin_time << ",timeout=" << wp.timeout_us << "us)";
  } else if (wp.sleep_time > 0) {
    os << "spin-then-block(" << wp.spin_time << ')';
  } else {
    os << "spin-backoff(" << wp.spin_time << ',' << wp.delay_time << ')';
  }
  return os.str();
}

reconfigurable_lock::reconfigurable_lock(sim::node_id home, lock_cost_model cost,
                                         waiting_policy initial,
                                         std::unique_ptr<lock_scheduler> sched)
    : lock_object(home, cost),
      core::adaptive_object("fcfs"),
      sched_(sched ? std::move(sched) : std::make_unique<fcfs_scheduler>()) {
  auto& a = attributes();
  a.declare("spin-time", initial.spin_time);
  a.declare("delay-time", initial.delay_time);
  a.declare("sleep-time", initial.sleep_time);
  a.declare("timeout", initial.timeout_us);
  a.declare("grant-mode", 0);  // 0 = direct handoff, 1 = release-and-retry
  init_method_impl(std::string(sched_->name()));
}

waiting_policy reconfigurable_lock::current_policy() const {
  const auto& a = attributes();
  return {a.value("spin-time"), a.value("delay-time"), a.value("sleep-time"),
          a.value("timeout")};
}

bool reconfigurable_lock::apply_waiting_policy(const waiting_policy& wp,
                                               std::optional<core::agent_id> who,
                                               sim::vtime at) {
  auto& a = attributes();
  const auto cur = current_policy();
  if (cur == wp) return true;  // no-op: no Ψ recorded
  // All-or-nothing check first (ownership / mutability), then apply.
  const char* names[] = {"spin-time", "delay-time", "sleep-time", "timeout"};
  for (const char* n : names) {
    const auto& attr = a.at(n);
    if (!attr.is_mutable()) return false;
    if (attr.owner() && (!who || *who != *attr.owner())) return false;
  }
  // The four sets below form one Ψ transition: the single-threaded event loop
  // makes the window atomic (no awaits), and the brackets let an attached
  // observer verify that — any lock traffic between them is a violation.
  stats_.on_psi_begin(at);
  a.at("spin-time").set(wp.spin_time, who);
  a.at("delay-time").set(wp.delay_time, who);
  a.at("sleep-time").set(wp.sleep_time, who);
  a.at("timeout").set(wp.timeout_us, who);
  stats_.on_psi_end(at);
  note_reconfiguration(core::op_cost{1, 1});  // packed policy word
  return true;
}

ct::task<void> reconfigurable_lock::lock(ct::context& ctx) {
  const auto requested = ctx.now();
  stats_.on_request(requested, ctx.self());
  // The adaptive/reconfigurable lock path initially spins before deciding to
  // block, so its lock-op cost tracks the spin lock's (Table 4).
  co_await ctx.compute(cost_.spin_lock_overhead);
  if (co_await try_acquire(ctx)) {
    stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
    co_return;
  }
  stats_.on_contended(ctx.now(), ctx.self());
  note_waiting(ctx.now(), +1);

  for (bool acquired = false; !acquired;) {
    // Attributes are re-read every round: reconfiguration (including by the
    // in-object adaptation policy) takes effect on waiting threads mid-wait.
    const auto wp = current_policy();

    if (wp.spin_time > 0) {
      if (co_await spin_ttas(ctx, wp.spin_time)) break;
    }
    if (wp.delay_time > 0) {
      co_await ctx.compute(cost_.backoff_quantum * wp.delay_time);
      const auto v = co_await ctx.read(word_);
      if ((v & 1) == 0 && co_await try_acquire(ctx)) break;
    }
    if (wp.timeout_us > 0) {
      // Conditional sleep: register and block with a timeout.
      co_await ctx.touch(home(), sim::access_kind::write, 2);
      // --- atomic window: missed-release re-check.
      if ((word_.raw() & 1) == 0) {
        if (co_await try_acquire(ctx)) break;
        continue;
      }
      sched_->register_waiter(ctx.self(), ctx.priority());
      stats_.on_block(ctx.now(), ctx.self());
      const bool woken = co_await ctx.block_for(
          sim::microseconds(static_cast<double>(wp.timeout_us)));
      if (woken) {
        if (owner() == ctx.self()) break;  // handoff grant
        continue;                          // release-and-retry wakeup
      }
      sched_->deregister(ctx.self());  // expired: withdraw registration
      continue;
    }
    if (wp.sleep_time > 0) {
      co_await ctx.touch(home(), sim::access_kind::write, 2);
      if ((word_.raw() & 1) == 0) {
        if (co_await try_acquire(ctx)) break;
        continue;
      }
      sched_->register_waiter(ctx.self(), ctx.priority());
      stats_.on_block(ctx.now(), ctx.self());
      co_await ctx.block();
      // Direct handoff made us owner; under release-and-retry we were merely
      // woken and must re-compete.
      if (owner() == ctx.self()) break;
      continue;
    }
    if (wp.spin_time <= 0 && wp.delay_time <= 0) {
      // Degenerate all-zero policy: behave as a modest pure spin.
      if (co_await spin_ttas(ctx, 16)) break;
    }
  }

  note_waiting(ctx.now(), -1);
  stats_.on_acquired(ctx.now(), ctx.now() - requested, ctx.self());
}

ct::task<void> reconfigurable_lock::unlock(ct::context& ctx) {
  // Spin-lock release path plus the check for currently blocked threads
  // (Table 5: adaptive unlock costs more than spin unlock).
  co_await ctx.compute(cost_.spin_unlock_overhead + cost_.adaptive_unlock_check);
  stats_.on_release(ctx.now(), ctx.self());
  co_await ctx.touch(home(), sim::access_kind::read);  // inspect registrations

  bool handed = false;
  if (attributes().value("grant-mode") != 0) {
    // Release-and-retry: free the word first, then wake the scheduler's pick
    // to re-compete (it re-registers if it loses). Keep picking past waiters
    // whose timed waits expired concurrently, so no registrant is stranded.
    co_await release_word(ctx);
    for (;;) {
      const auto next = sched_->pick_next();
      if (!next) break;
      co_await ctx.touch(home(), sim::access_kind::write);
      if (co_await ctx.unblock(*next)) break;
    }
    if (pending_sched_ && sched_->waiting() == 0) {
      // Pre-registered threads all served: adopt the new scheduler here too.
      sched_ = std::move(pending_sched_);
      reconfigure_method_impl(std::string(sched_->name()));
      co_await ctx.touch(home(), sim::access_kind::write);  // reset flag
    }
    co_await post_release_hook(ctx);
    co_return;
  }
  for (;;) {
    const auto next = sched_->pick_next();
    if (!next) break;
    co_await ctx.touch(home(), sim::access_kind::write);  // dequeue record
    set_owner(*next);
    if (co_await ctx.unblock(*next)) {
      stats_.on_handoff(ctx.now(), *next);
      handed = true;
      break;
    }
    set_owner(ct::invalid_thread);  // timed out concurrently; try another
  }

  if (!handed) {
    if (pending_sched_ && sched_->waiting() == 0) {
      // All pre-registered threads served: adopt the new scheduler and reset
      // the transition flag (the deferred 5th write of configure(scheduler)).
      sched_ = std::move(pending_sched_);
      reconfigure_method_impl(std::string(sched_->name()));
      co_await ctx.touch(home(), sim::access_kind::write);
    }
    co_await release_word(ctx);
  }
  co_await post_release_hook(ctx);
}

ct::task<void> reconfigurable_lock::configure_waiting_policy(ct::context& ctx,
                                                             waiting_policy wp) {
  co_await ctx.compute(cost_.configure_attr_overhead);
  co_await ctx.touch(home(), sim::access_kind::read);
  co_await ctx.touch(home(), sim::access_kind::write);
  apply_waiting_policy(wp, std::nullopt, ctx.now());
}

ct::task<void> reconfigurable_lock::configure_scheduler(
    ct::context& ctx, std::unique_ptr<lock_scheduler> next) {
  stats_.on_reconfigure(ctx.now(), ctx.self(), /*sensor_value=*/-1,
                        "scheduler:" + std::string(next->name()));
  co_await ctx.compute(cost_.configure_sched_overhead);
  co_await ctx.touch(home(), sim::access_kind::write, 3);  // three sub-modules
  co_await ctx.touch(home(), sim::access_kind::write);     // set transition flag
  // --- atomic window.
  if (sched_->waiting() == 0 && !pending_sched_) {
    sched_ = std::move(next);
    reconfigure_method_impl(std::string(sched_->name()));
    co_await ctx.touch(home(), sim::access_kind::write);  // immediate flag reset
  } else {
    pending_sched_ = std::move(next);
  }
}

ct::task<bool> reconfigurable_lock::acquire_attribute(ct::context& ctx,
                                                      std::string_view name,
                                                      core::agent_id agent) {
  co_await ctx.compute(cost_.acquisition_overhead);
  co_await ctx.touch(home(), sim::access_kind::rmw);
  co_return attributes().at(name).acquire(agent);
}

ct::task<void> reconfigurable_lock::release_attribute(ct::context& ctx,
                                                      std::string_view name,
                                                      core::agent_id agent) {
  co_await ctx.touch(home(), sim::access_kind::write);
  attributes().at(name).release(agent);
}

ct::task<void> reconfigurable_lock::post_release_hook(ct::context&) { co_return; }

}  // namespace adx::locks
