// LMSK (Little, Murty, Sweeney, Karel) branch-and-bound for the Travelling
// Sales Person problem — the algorithm the paper's §4 application implements
// [SBBG89]. The search proceeds by dynamic construction of a tree of
// subproblems: each node carries a reduced cost matrix and a lower bound;
// branching includes or excludes the zero-cost edge with maximum penalty;
// subtour-closing arcs are forbidden as edges are committed.
//
// The expander counts every matrix-cell operation it performs; the parallel
// driver converts those counts into charged virtual time, so simulated
// execution time tracks the real arithmetic actually done.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/machine_config.hpp"
#include "tsp/instance.hpp"

namespace adx::tsp {

/// Lower-bound value marking an infeasible subproblem.
inline constexpr std::int64_t kInfBound = std::int64_t{1} << 50;

/// A completed tour.
struct tour {
  std::vector<std::int16_t> order;  ///< city sequence (closed implicitly)
  std::int64_t cost{kInfBound};

  [[nodiscard]] bool valid() const { return cost < kInfBound; }
};

/// One node of the search tree.
struct subproblem {
  std::vector<std::int32_t> m;        ///< k x k reduced cost matrix
  std::vector<std::int16_t> rows;     ///< city label of each matrix row
  std::vector<std::int16_t> cols;     ///< city label of each matrix column
  std::vector<std::array<std::int16_t, 2>> edges;  ///< committed (from,to) arcs
  std::int64_t bound{0};
  std::uint32_t seq{0};          ///< creation sequence, deterministic PQ ties
  sim::node_id data_home{0};     ///< node holding the matrix (NUMA charging)

  [[nodiscard]] int k() const { return static_cast<int>(rows.size()); }
  [[nodiscard]] std::int32_t cell(int i, int j) const {
    return m[static_cast<std::size_t>(i) * rows.size() + j];
  }
  std::int32_t& cell(int i, int j) {
    return m[static_cast<std::size_t>(i) * rows.size() + j];
  }
  /// Matrix words, for data-movement charging.
  [[nodiscard]] std::uint64_t words() const {
    return static_cast<std::uint64_t>(rows.size()) * rows.size();
  }
};

/// Result of expanding one node.
struct expand_result {
  std::optional<tour> completed;       ///< set when the node resolved to a tour
  std::vector<subproblem> children;    ///< surviving children (0-2)
  std::uint64_t ops{0};                ///< matrix-cell operations performed
};

class lmsk {
 public:
  explicit lmsk(const instance& inst) : inst_(&inst) {}

  /// The root subproblem: full reduced matrix.
  [[nodiscard]] subproblem root();

  /// Expands `sp`; children with bound >= `best` are pruned. `next_seq` is
  /// advanced for each child created (caller supplies the counter so that
  /// parallel searchers produce globally unique, deterministic sequence ids).
  [[nodiscard]] expand_result expand(subproblem sp, std::int64_t best,
                                     std::uint32_t& next_seq);

  [[nodiscard]] const instance& problem() const { return *inst_; }

  [[nodiscard]] std::uint64_t total_ops() const { return total_ops_; }
  [[nodiscard]] std::uint64_t total_expansions() const { return expansions_; }

 private:
  /// Full row+column reduction; returns the bound increase (or kInfBound).
  std::int64_t reduce(subproblem& sp);
  std::int64_t reduce_row(subproblem& sp, int i);
  std::int64_t reduce_col(subproblem& sp, int j);

  struct branch_pick {
    int i{-1};
    int j{-1};
    std::int64_t penalty{-1};
  };
  /// The zero cell with maximum penalty (min row alternative + min col
  /// alternative) — the LMSK branching rule.
  branch_pick choose_branch(const subproblem& sp);

  /// Forbids the arc that would close the partial chain ending the committed
  /// edge set into a premature subtour.
  void forbid_subtour_arc(subproblem& child);

  /// Resolves a k==2 node into a tour (or nothing if infeasible).
  std::optional<tour> finish(const subproblem& sp);

  /// Builds the closed tour from a complete edge set; empty optional if the
  /// edges do not form a single Hamiltonian cycle.
  std::optional<tour> assemble(const std::vector<std::array<std::int16_t, 2>>& edges);

  const instance* inst_;
  std::uint64_t ops_{0};
  std::uint64_t total_ops_{0};
  std::uint64_t expansions_{0};
};

/// Sequential best-first LMSK solver (the paper's sequential baseline in
/// Table 1).
struct seq_result {
  tour best;
  std::uint64_t expansions{0};
  std::uint64_t ops{0};
  std::size_t peak_queue{0};
};

[[nodiscard]] seq_result solve_sequential(const instance& inst);

/// Exhaustive solver for cross-checking on tiny instances (n <= 10).
[[nodiscard]] tour solve_brute_force(const instance& inst);

}  // namespace adx::tsp
