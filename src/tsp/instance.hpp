// TSP problem instances: dense distance matrices over a fully connected
// graph (the paper's LMSK algorithm operates on exactly this). Generators
// are seeded and bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace adx::tsp {

/// "No edge" marker inside cost matrices. Chosen so that sums of a few INFs
/// do not overflow int32 when accumulated into int64 bounds.
inline constexpr std::int32_t kInf = 0x3f3f3f3f;

class instance {
 public:
  instance(int n, std::vector<std::int32_t> d);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] std::int32_t at(int i, int j) const { return d_[static_cast<std::size_t>(i) * n_ + j]; }
  [[nodiscard]] const std::vector<std::int32_t>& data() const { return d_; }

  /// Cost of a closed tour visiting `order` (size n) in sequence.
  [[nodiscard]] std::int64_t tour_cost(const std::vector<std::int16_t>& order) const;

  /// Asymmetric instance with uniform edge weights in [lo, hi].
  [[nodiscard]] static instance random_asymmetric(int n, std::uint64_t seed,
                                                  std::int32_t lo = 1,
                                                  std::int32_t hi = 100);

  /// Symmetric instance from random points on a `span` x `span` grid
  /// (rounded Euclidean distance).
  [[nodiscard]] static instance random_euclidean(int n, std::uint64_t seed,
                                                 std::int32_t span = 1000);

 private:
  int n_;
  std::vector<std::int32_t> d_;
};

}  // namespace adx::tsp
