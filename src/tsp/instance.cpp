#include "tsp/instance.hpp"

#include <cmath>
#include <stdexcept>

namespace adx::tsp {

instance::instance(int n, std::vector<std::int32_t> d) : n_(n), d_(std::move(d)) {
  if (n < 3) throw std::invalid_argument("instance: need at least 3 cities");
  if (d_.size() != static_cast<std::size_t>(n) * n) {
    throw std::invalid_argument("instance: matrix size mismatch");
  }
  for (int i = 0; i < n; ++i) d_[static_cast<std::size_t>(i) * n + i] = kInf;
}

std::int64_t instance::tour_cost(const std::vector<std::int16_t>& order) const {
  if (order.size() != static_cast<std::size_t>(n_)) {
    throw std::invalid_argument("tour_cost: order size mismatch");
  }
  std::int64_t c = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    c += at(order[i], order[(i + 1) % order.size()]);
  }
  return c;
}

instance instance::random_asymmetric(int n, std::uint64_t seed, std::int32_t lo,
                                     std::int32_t hi) {
  sim::rng r(seed);
  std::vector<std::int32_t> d(static_cast<std::size_t>(n) * n, kInf);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) {
        d[static_cast<std::size_t>(i) * n + j] =
            static_cast<std::int32_t>(r.uniform(lo, hi));
      }
    }
  }
  return instance(n, std::move(d));
}

instance instance::random_euclidean(int n, std::uint64_t seed, std::int32_t span) {
  sim::rng r(seed);
  std::vector<std::pair<double, double>> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    pts.emplace_back(r.uniform01() * span, r.uniform01() * span);
  }
  std::vector<std::int32_t> d(static_cast<std::size_t>(n) * n, kInf);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) {
        const double dx = pts[i].first - pts[j].first;
        const double dy = pts[i].second - pts[j].second;
        d[static_cast<std::size_t>(i) * n + j] =
            static_cast<std::int32_t>(std::lround(std::sqrt(dx * dx + dy * dy))) + 1;
      }
    }
  }
  return instance(n, std::move(d));
}

}  // namespace adx::tsp
