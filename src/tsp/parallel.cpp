#include "tsp/parallel.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <queue>
#include <sstream>

#include "ct/context.hpp"
#include "ct/runtime.hpp"

namespace adx::tsp {

const char* to_string(variant v) {
  switch (v) {
    case variant::centralized: return "centralized";
    case variant::distributed: return "distributed";
    case variant::distributed_lb: return "distributed-lb";
  }
  return "?";
}

namespace {

/// Deterministic best-first ordering: lowest bound, then creation sequence.
struct worse {
  bool operator()(const subproblem& a, const subproblem& b) const {
    return a.bound == b.bound ? a.seq > b.seq : a.bound > b.bound;
  }
};

using shard_queue = std::priority_queue<subproblem, std::vector<subproblem>, worse>;

/// Number of queue-record words touched inside a qlock critical section
/// (pointer, bound key, list links — the node payload itself stays where it
/// was allocated and is charged when the matrix is actually read).
constexpr std::uint64_t kQueueRecordWords = 12;

/// The whole shared state of one parallel run.
struct tsp_sim {
  const instance& inst;
  const parallel_config& cfg;
  ct::runtime rt;

  unsigned P;
  unsigned nshards;

  // Work-queue shards and their locks ("qlock").
  std::vector<shard_queue> shards;
  std::vector<std::unique_ptr<ct::svar<std::int64_t>>> shard_size;
  std::vector<std::unique_ptr<locks::lock_object>> qlocks;

  // Best-tour value: one copy (centralized) or one per processor, each with
  // its own "glob-low-lock".
  std::vector<std::unique_ptr<ct::svar<std::int64_t>>> best_val;
  std::vector<std::unique_ptr<locks::lock_object>> low_locks;

  // Active-searcher count under "glob-act-lock"; global done flag and the
  // best tour's order under "globlock".
  ct::svar<std::int64_t> active;
  std::unique_ptr<locks::lock_object> act_lock;
  ct::svar<std::uint64_t> done;
  std::unique_ptr<locks::lock_object> glob_lock;
  ct::svar<std::int64_t> pending;  ///< total queued subproblems (atomic ctr)

  tour best_tour;  ///< order of the global best (guarded by globlock)

  // Aggregate counters (bookkeeping; mutated inside atomic windows only).
  std::uint64_t expansions{0};
  std::uint64_t pruned_pops{0};
  std::uint64_t steals{0};
  std::uint64_t total_ops{0};

  sim::trace qlock_pattern{"qlock"};
  sim::trace act_pattern{"glob-act-lock"};

  tsp_sim(const instance& in, const parallel_config& c)
      : inst(in),
        cfg(c),
        rt(c.run.effective_machine()),
        P(c.processors),
        nshards(c.impl == variant::centralized ? 1 : c.processors),
        active(0, static_cast<std::int64_t>(c.processors)),
        done(0, 0),
        pending(0, 0) {
    if (P == 0 || P > c.run.machine.nodes) {
      throw std::invalid_argument("tsp: processors out of range for machine");
    }
    shards.resize(nshards);
    for (unsigned s = 0; s < nshards; ++s) {
      const sim::node_id home = shard_home(s);
      shard_size.push_back(std::make_unique<ct::svar<std::int64_t>>(home, 0));
      qlocks.push_back(locks::make_lock(cfg.run, home, cfg.cost));
    }
    const unsigned nbest = cfg.impl == variant::centralized ? 1 : P;
    for (unsigned b = 0; b < nbest; ++b) {
      const sim::node_id home = cfg.impl == variant::centralized ? 0 : b;
      best_val.push_back(std::make_unique<ct::svar<std::int64_t>>(home, kInfBound));
      low_locks.push_back(locks::make_lock(cfg.run, home, cfg.cost));
    }
    act_lock = locks::make_lock(cfg.run, 0, cfg.cost);
    glob_lock = locks::make_lock(cfg.run, 0, cfg.cost);

    if (cfg.record_patterns) {
      for (auto& q : qlocks) q->stats().attach_pattern_trace(&qlock_pattern);
      act_lock->stats().attach_pattern_trace(&act_pattern);
    }

    if (cfg.tracer) {
      rt.attach_tracer(cfg.tracer);
      for (std::size_t i = 0; i < qlocks.size(); ++i) {
        qlocks[i]->stats().attach_tracer(
            cfg.tracer,
            qlocks.size() == 1 ? "qlock" : "qlock[" + std::to_string(i) + ']',
            static_cast<std::uint32_t>(shard_home(static_cast<unsigned>(i))));
      }
      for (std::size_t i = 0; i < low_locks.size(); ++i) {
        low_locks[i]->stats().attach_tracer(
            cfg.tracer,
            low_locks.size() == 1 ? "glob-low-lock"
                                  : "glob-low-lock[" + std::to_string(i) + ']',
            static_cast<std::uint32_t>(low_locks[i]->home()));
      }
      act_lock->stats().attach_tracer(cfg.tracer, "glob-act-lock", 0);
      glob_lock->stats().attach_tracer(cfg.tracer, "globlock", 0);
    }

    // The main thread enqueues the initial problem before forking the
    // searchers. As in practical B&B codes, the root is first expanded
    // breadth-first into a frontier of ~2P subproblems so every searcher
    // starts on a coherent piece of the global tree (shard 0 for the
    // centralized queue, round-robin across the per-processor queues).
    lmsk seeder(inst);
    std::uint32_t seed_seq = 1;
    std::deque<subproblem> frontier;
    frontier.push_back(seeder.root());
    while (frontier.size() < 2 * static_cast<std::size_t>(P) && !frontier.empty()) {
      auto sp = std::move(frontier.front());
      frontier.pop_front();
      if (sp.k() <= 2) {
        frontier.push_back(std::move(sp));
        break;  // tree bottomed out before the frontier filled
      }
      auto er = seeder.expand(std::move(sp), kInfBound, seed_seq);
      if (er.completed) {
        // Degenerate tiny tree: record nothing, searchers will re-derive.
        continue;
      }
      for (auto& c : er.children) frontier.push_back(std::move(c));
      if (er.children.empty() && frontier.empty()) break;
    }
    unsigned rr = 0;
    for (auto& sp : frontier) {
      const unsigned s = rr++ % nshards;
      auto node = std::move(sp);
      node.data_home = shard_home(s);
      shards[s].push(std::move(node));
      shard_size[s]->raw() = static_cast<std::int64_t>(shards[s].size());
      pending.raw() += 1;
    }
  }

  [[nodiscard]] sim::node_id shard_home(unsigned s) const {
    return cfg.impl == variant::centralized ? 0 : s;
  }

  [[nodiscard]] unsigned my_shard(unsigned me) const {
    return cfg.impl == variant::centralized ? 0 : me;
  }

  [[nodiscard]] unsigned best_slot(unsigned me) const {
    return cfg.impl == variant::centralized ? 0 : me;
  }

  /// Charged cost of moving `words` matrix words to/from `home`, as
  /// block-transfer accesses.
  ct::task<void> charge_data(ct::context& ctx, sim::node_id home,
                             sim::access_kind kind, std::uint64_t words) {
    const auto n = std::max<std::uint64_t>(1, words / cfg.data_word_divisor);
    co_await ctx.touch(home, kind, n);
  }

  /// Pops the best node from shard `s` under its qlock; updates the shard
  /// size word and the global pending counter.
  ct::task<std::optional<subproblem>> pop_shard(ct::context& ctx, unsigned s) {
    std::optional<subproblem> sp;
    co_await qlocks[s]->lock(ctx);
    co_await ctx.touch(shard_home(s), sim::access_kind::read, kQueueRecordWords);
    // --- atomic window.
    if (!shards[s].empty()) {
      sp = shards[s].top();
      shards[s].pop();
      co_await ctx.write(*shard_size[s],
                         static_cast<std::int64_t>(shards[s].size()));
      co_await ctx.fetch_add(pending, std::int64_t{-1});
    }
    co_await qlocks[s]->unlock(ctx);
    co_return sp;
  }

  /// Pushes a node onto shard `s` under its qlock. The bound-ordered insert
  /// traverses ~half the queue inside the critical section.
  ct::task<void> push_shard(ct::context& ctx, unsigned s, subproblem sp) {
    co_await qlocks[s]->lock(ctx);
    const std::uint64_t scan = 1 + shards[s].size() / 2;
    co_await ctx.touch(shard_home(s), sim::access_kind::read,
                       scan * cfg.queue_scan_entry_words);
    co_await ctx.touch(shard_home(s), sim::access_kind::write, kQueueRecordWords);
    shards[s].push(std::move(sp));
    co_await ctx.write(*shard_size[s], static_cast<std::int64_t>(shards[s].size()));
    co_await ctx.fetch_add(pending, std::int64_t{1});
    co_await qlocks[s]->unlock(ctx);
  }

  /// Gets the next unit of work per the variant's discipline; nullopt means
  /// "no work visible anywhere right now".
  ct::task<std::optional<subproblem>> get_work(ct::context& ctx, unsigned me) {
    switch (cfg.impl) {
      case variant::centralized: {
        co_return co_await pop_shard(ctx, 0);
      }
      case variant::distributed: {
        auto sp = co_await pop_shard(ctx, me);
        if (sp) co_return sp;
        // Local queue empty: take from the next non-empty queue on the ring.
        for (unsigned off = 1; off < P; ++off) {
          const unsigned j = (me + off) % P;
          const auto size = co_await ctx.read(*shard_size[j]);
          if (size <= 0) continue;
          sp = co_await pop_shard(ctx, j);
          if (sp) {
            ++steals;
            co_return sp;
          }
        }
        co_return std::nullopt;
      }
      case variant::distributed_lb: {
        // Load balancing: pull one subproblem from the next processor's
        // queue into the local queue, then take the local best.
        const unsigned nb = (me + 1) % P;
        const auto nb_size = co_await ctx.read(*shard_size[nb]);
        if (nb_size > 0) {
          auto moved = co_await pop_shard(ctx, nb);
          if (moved) {
            ++steals;
            moved->data_home = shard_home(me);
            co_await charge_data(ctx, shard_home(me), sim::access_kind::write,
                                 moved->words());
            co_await push_shard(ctx, me, std::move(*moved));
          }
        }
        auto sp = co_await pop_shard(ctx, me);
        if (sp) co_return sp;
        for (unsigned off = 2; off < P; ++off) {
          const unsigned j = (me + off) % P;
          const auto size = co_await ctx.read(*shard_size[j]);
          if (size <= 0) continue;
          sp = co_await pop_shard(ctx, j);
          if (sp) {
            ++steals;
            co_return sp;
          }
        }
        co_return std::nullopt;
      }
    }
    co_return std::nullopt;
  }

  /// Reads this searcher's view of the best tour value (its local copy in
  /// the distributed variants).
  ct::task<std::int64_t> read_best(ct::context& ctx, unsigned me) {
    co_return co_await ctx.read(*best_val[best_slot(me)]);
  }

  /// Publishes an improved tour: updates the best value under glob-low-lock
  /// (all copies, in the distributed variants) and records the order under
  /// globlock.
  ct::task<void> publish_tour(ct::context& ctx, unsigned me, const tour& t) {
    bool improved = false;
    {
      auto& lk = *low_locks[best_slot(me)];
      co_await lk.lock(ctx);
      const auto cur = co_await ctx.read(*best_val[best_slot(me)]);
      if (t.cost < cur) {
        co_await ctx.write(*best_val[best_slot(me)], t.cost);
        improved = true;
      }
      co_await lk.unlock(ctx);
    }
    if (!improved) co_return;

    if (cfg.impl != variant::centralized) {
      // Propagate the new best to every other processor's copy.
      for (unsigned j = 0; j < P; ++j) {
        if (j == best_slot(me)) continue;
        co_await low_locks[j]->lock(ctx);
        const auto cur = co_await ctx.read(*best_val[j]);
        if (t.cost < cur) co_await ctx.write(*best_val[j], t.cost);
        co_await low_locks[j]->unlock(ctx);
      }
    }
    // Record the tour order itself under the multi-purpose global lock.
    co_await glob_lock->lock(ctx);
    co_await ctx.touch(0, sim::access_kind::write,
                       static_cast<std::uint64_t>(t.order.size()) / 4 + 1);
    if (t.cost < best_tour.cost) best_tour = t;
    co_await glob_lock->unlock(ctx);
  }

  /// The searcher thread body.
  ct::task<void> searcher(ct::context& ctx, unsigned me) {
    lmsk engine(inst);
    // Globally unique, deterministic child sequence ids: stride by P.
    std::uint32_t seq = 1 + me;
    const std::uint32_t stride = P;

    for (;;) {
      auto sp = co_await get_work(ctx, me);
      if (!sp) {
        const bool keep_going = co_await idle(ctx, me);
        if (!keep_going) co_return;
        continue;
      }

      const auto best = co_await read_best(ctx, me);
      if (sp->bound >= best) {
        ++pruned_pops;
        continue;
      }

      // Read the node's matrix from wherever it lives.
      co_await charge_data(ctx, sp->data_home, sim::access_kind::read, sp->words());

      // Expand (real arithmetic, charged as processor time).
      std::uint32_t scratch_seq = 0;
      auto er = engine.expand(std::move(*sp), best, scratch_seq);
      // Hand out globally unique, per-searcher-strided sequence ids.
      for (auto& child : er.children) {
        child.seq = seq;
        seq += stride;
      }
      ++expansions;
      total_ops += er.ops;
      co_await ctx.compute(sim::microseconds(cfg.per_op_us * static_cast<double>(er.ops)));

      if (er.completed && er.completed->valid()) {
        co_await publish_tour(ctx, me, *er.completed);
      }
      for (auto& child : er.children) {
        const unsigned target = my_shard(me);
        child.data_home = shard_home(target);
        co_await charge_data(ctx, child.data_home, sim::access_kind::write,
                             child.words());
        co_await push_shard(ctx, target, std::move(child));
      }
    }
  }

  /// No work visible: deactivate and poll. Returns false when the
  /// computation is globally finished (this searcher should exit).
  ct::task<bool> idle(ct::context& ctx, unsigned me) {
    co_await act_lock->lock(ctx);
    const auto a = co_await ctx.read(active);
    co_await ctx.write(active, a - 1);
    co_await act_lock->unlock(ctx);

    for (;;) {
      if (co_await ctx.read(done) != 0) co_return false;

      const auto queued = co_await ctx.read(pending);
      if (queued > 0) {
        // Work appeared: reactivate.
        co_await act_lock->lock(ctx);
        const auto a2 = co_await ctx.read(active);
        co_await ctx.write(active, a2 + 1);
        co_await act_lock->unlock(ctx);
        co_return true;
      }

      // The active-slave count is read under its mutual-exclusion lock
      // (glob-act-lock) — the polling by idle searchers is what gives this
      // lock its contention pattern (Figures 5/7/9).
      co_await act_lock->lock(ctx);
      const auto act_now = co_await ctx.read(active);
      co_await act_lock->unlock(ctx);
      if (act_now == 0) {
        // Everyone idle and nothing queued: if a tour exists, declare done.
        const auto best = co_await read_best(ctx, me);
        if (best < kInfBound) {
          co_await glob_lock->lock(ctx);
          co_await ctx.write(done, std::uint64_t{1});
          co_await glob_lock->unlock(ctx);
          co_return false;
        }
      }
      // Per-searcher jitter: identical poll cadences in a deterministic
      // simulation can lock into starvation cycles that real systems escape
      // through natural timing noise.
      co_await ctx.sleep_for(cfg.poll_interval +
                             sim::microseconds(17.0 * (me + 1)));
    }
  }
};

lock_report merge_reports(const char* name,
                          const std::vector<std::unique_ptr<locks::lock_object>>& group) {
  lock_report r;
  r.name = name;
  double wait_sum = 0.0;
  std::uint64_t wait_n = 0;
  for (const auto& lk : group) {
    const auto& s = lk->stats();
    r.requests += s.requests();
    r.contended += s.contended();
    r.peak_waiting = std::max(r.peak_waiting, s.peak_waiting());
    wait_sum += s.wait_time_us().sum();
    wait_n += s.wait_time_us().count();
  }
  r.mean_wait_us = wait_n ? wait_sum / static_cast<double>(wait_n) : 0.0;
  r.contention_ratio =
      r.requests ? static_cast<double>(r.contended) / static_cast<double>(r.requests) : 0.0;
  return r;
}

}  // namespace

parallel_result solve_parallel(const instance& inst, const parallel_config& cfg) {
  tsp_sim s(inst, cfg);

  for (unsigned p = 0; p < s.P; ++p) {
    s.rt.fork(p, [&s, p](ct::context& ctx) -> ct::task<void> {
      co_await s.searcher(ctx, p);
    });
  }
  auto run = s.rt.run(cfg.max_events);
  if (!run.completed) {
    std::ostringstream msg;
    msg << "tsp::solve_parallel did not terminate: t=" << s.rt.now().ms()
        << "ms events=" << run.events << " done=" << s.done.raw()
        << " pending=" << s.pending.raw() << " active=" << s.active.raw()
        << " expansions=" << s.expansions << "; threads:";
    for (unsigned t = 0; t < s.P; ++t) {
      msg << ' ' << t << '=' << ct::to_string(s.rt.state_of(t));
    }
    const auto lockline = [&msg](const char* n, const locks::lock_object& lk) {
      msg << "; " << n << " held=" << lk.held_raw() << " owner=" << lk.owner()
          << " waiting=" << lk.waiting_now();
    };
    lockline("qlock0", *s.qlocks[0]);
    lockline("act", *s.act_lock);
    lockline("glob", *s.glob_lock);
    lockline("low0", *s.low_locks[0]);
    throw std::runtime_error(msg.str());
  }

  parallel_result res;
  res.best = s.best_tour;
  res.elapsed = run.end_time;
  res.events = run.events;
  res.expansions = s.expansions;
  res.pruned_pops = s.pruned_pops;
  res.ops = s.total_ops;
  res.steals = s.steals;
  res.lock_reports.push_back(merge_reports("qlock", s.qlocks));
  res.lock_reports.push_back(merge_reports("glob-low-lock", s.low_locks));
  {
    std::vector<std::unique_ptr<locks::lock_object>> one;
    one.push_back(std::move(s.act_lock));
    res.lock_reports.push_back(merge_reports("glob-act-lock", one));
    one.clear();
    one.push_back(std::move(s.glob_lock));
    res.lock_reports.push_back(merge_reports("globlock", one));
  }
  res.qlock_pattern = std::move(s.qlock_pattern);
  res.act_pattern = std::move(s.act_pattern);
  return res;
}

}  // namespace adx::tsp
