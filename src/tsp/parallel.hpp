// Parallel LMSK TSP on the simulated multiprocessor (§4).
//
// The program is a collection of asynchronous cooperating searcher threads
// (one per processor, as in the paper's measurements) sharing two
// abstractions: a work queue of subproblems and the best-tour-so-far value.
// Three implementations vary those abstractions:
//
//   * centralized          — one global queue + one global best value, both
//                            on a single node; optimal pruning, high
//                            contention and remote traffic;
//   * distributed          — per-processor queues on a ring (steal from the
//                            next non-empty queue), per-processor best-value
//                            copies propagated on improvement; may expand
//                            useless nodes due to stale bounds;
//   * distributed_lb       — distributed plus the paper's load-balancing
//                            rule: each time a searcher gets a node it moves
//                            one subproblem from the next processor's queue
//                            into its own, then takes its local best.
//
// All variants synchronize with the paper's four locks: `qlock` (work
// queue), `glob-act-lock` (active-searcher count), `glob-low-lock` (best
// tour value) and `globlock` (multi-purpose global-structure lock). Any lock
// kind from the factory can be used, so blocking vs. adaptive is a parameter
// (Tables 1-3), and the locking patterns of qlock / glob-act-lock can be
// traced (Figures 4-9).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "locks/factory.hpp"
#include "locks/run_config.hpp"
#include "obs/tracer.hpp"
#include "sim/trace.hpp"
#include "tsp/lmsk.hpp"

namespace adx::tsp {

enum class variant { centralized, distributed, distributed_lb };

[[nodiscard]] const char* to_string(variant v);

struct parallel_config {
  unsigned processors = 10;
  variant impl = variant::centralized;

  /// Unified run configuration (machine shape, lock kind + parameters,
  /// perturbation profile, seed). `processors`/`impl` and the lock cost
  /// model stay TSP-specific knobs on top of it.
  adx::run_config run = adx::run_config{}.with_lock(locks::lock_kind::blocking);
  locks::lock_cost_model cost = locks::lock_cost_model::butterfly_cthreads();

  /// Charged processor time per LMSK matrix-cell operation. Calibrated so
  /// the sequential 32-city baseline lands near the paper's 20.7 s.
  double per_op_us = 4.5;

  /// Matrix words are charged as words/divisor memory accesses (block
  /// transfers); keeps data traffic realistic without overwhelming the
  /// module model.
  std::uint64_t data_word_divisor = 8;

  /// The shared queue is a bound-ordered linked structure (as in the 1993
  /// Cthreads implementation): an insert traverses ~half the queue inside
  /// the qlock critical section, reading this many words per entry. This is
  /// what makes the centralized queue's critical sections long — and its
  /// qlock hot (Figure 4) — while the shorter per-processor queues of the
  /// distributed variants stay cheap (Figures 6/8).
  std::uint64_t queue_scan_entry_words = 2;

  /// Idle searchers re-check for work at this interval.
  sim::vdur poll_interval = sim::microseconds(500);

  /// Record qlock / glob-act-lock locking patterns (Figures 4-9).
  bool record_patterns = false;

  /// Structured-event tracer (not owned; may be null). When set, the runtime
  /// and every lock emit spans/instants into it: thread run slices, lock
  /// acquire/held spans, contention and handoff instants, reconfiguration
  /// decisions annotated with v_i / d_c.
  obs::tracer* tracer = nullptr;

  std::uint64_t max_events = 400'000'000ULL;
};

/// Aggregated statistics of one lock (or one lock group, for the per-shard
/// locks of the distributed variants).
struct lock_report {
  std::string name;
  std::uint64_t requests{0};
  std::uint64_t contended{0};
  std::int64_t peak_waiting{0};
  double mean_wait_us{0.0};
  double contention_ratio{0.0};
};

struct parallel_result {
  tour best;
  sim::vtime elapsed{};
  std::uint64_t expansions{0};
  std::uint64_t pruned_pops{0};
  std::uint64_t ops{0};
  std::uint64_t steals{0};
  std::uint64_t events{0};
  std::vector<lock_report> lock_reports;
  sim::trace qlock_pattern{"qlock"};
  sim::trace act_pattern{"glob-act-lock"};
};

/// Runs the parallel solver to completion on a fresh simulated machine.
[[nodiscard]] parallel_result solve_parallel(const instance& inst,
                                             const parallel_config& cfg);

}  // namespace adx::tsp
