#include "tsp/lmsk.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>

namespace adx::tsp {

namespace {

/// Saturating add against kInf cells.
inline std::int32_t sat(std::int32_t v) { return v >= kInf ? kInf : v; }

}  // namespace

subproblem lmsk::root() {
  const int n = inst_->n();
  subproblem sp;
  sp.m = inst_->data();
  sp.rows.resize(n);
  sp.cols.resize(n);
  std::iota(sp.rows.begin(), sp.rows.end(), std::int16_t{0});
  std::iota(sp.cols.begin(), sp.cols.end(), std::int16_t{0});
  ops_ = 0;
  sp.bound = reduce(sp);
  total_ops_ += ops_;
  return sp;
}

std::int64_t lmsk::reduce_row(subproblem& sp, int i) {
  const int k = sp.k();
  std::int32_t mn = kInf;
  for (int j = 0; j < k; ++j) {
    ++ops_;
    mn = std::min(mn, sp.cell(i, j));
  }
  if (mn >= kInf) return kInfBound;  // no outgoing arc: infeasible
  if (mn > 0) {
    for (int j = 0; j < k; ++j) {
      ++ops_;
      auto& c = sp.cell(i, j);
      if (c < kInf) c -= mn;
    }
  }
  return mn;
}

std::int64_t lmsk::reduce_col(subproblem& sp, int j) {
  const int k = sp.k();
  std::int32_t mn = kInf;
  for (int i = 0; i < k; ++i) {
    ++ops_;
    mn = std::min(mn, sp.cell(i, j));
  }
  if (mn >= kInf) return kInfBound;
  if (mn > 0) {
    for (int i = 0; i < k; ++i) {
      ++ops_;
      auto& c = sp.cell(i, j);
      if (c < kInf) c -= mn;
    }
  }
  return mn;
}

std::int64_t lmsk::reduce(subproblem& sp) {
  const int k = sp.k();
  std::int64_t added = 0;
  for (int i = 0; i < k; ++i) {
    const auto r = reduce_row(sp, i);
    if (r >= kInfBound) return kInfBound;
    added += r;
  }
  for (int j = 0; j < k; ++j) {
    const auto c = reduce_col(sp, j);
    if (c >= kInfBound) return kInfBound;
    added += c;
  }
  return added;
}

lmsk::branch_pick lmsk::choose_branch(const subproblem& sp) {
  const int k = sp.k();
  branch_pick best;
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      ++ops_;
      if (sp.cell(i, j) != 0) continue;
      // Penalty: cheapest alternative use of row i plus of column j.
      std::int32_t row_alt = kInf;
      for (int jj = 0; jj < k; ++jj) {
        ++ops_;
        if (jj != j) row_alt = std::min(row_alt, sp.cell(i, jj));
      }
      std::int32_t col_alt = kInf;
      for (int ii = 0; ii < k; ++ii) {
        ++ops_;
        if (ii != i) col_alt = std::min(col_alt, sp.cell(ii, j));
      }
      const std::int64_t penalty =
          static_cast<std::int64_t>(sat(row_alt)) + static_cast<std::int64_t>(sat(col_alt));
      if (penalty > best.penalty) best = {i, j, penalty};
    }
  }
  return best;
}

void lmsk::forbid_subtour_arc(subproblem& child) {
  // Maps over committed arcs. The chain containing the newest arc runs from
  // some start city s (no incoming committed arc) to some end city e (no
  // outgoing committed arc); arc (e, s) would close a premature subtour.
  std::map<std::int16_t, std::int16_t> next, prev;
  for (const auto& e : child.edges) {
    next[e[0]] = e[1];
    prev[e[1]] = e[0];
  }
  std::int16_t s = child.edges.back()[0];
  while (prev.count(s)) s = prev[s];
  std::int16_t e = child.edges.back()[1];
  while (next.count(e)) e = next[e];

  const auto ri = std::find(child.rows.begin(), child.rows.end(), e);
  const auto cj = std::find(child.cols.begin(), child.cols.end(), s);
  if (ri != child.rows.end() && cj != child.cols.end()) {
    child.cell(static_cast<int>(ri - child.rows.begin()),
               static_cast<int>(cj - child.cols.begin())) = kInf;
  }
}

std::optional<tour> lmsk::finish(const subproblem& sp) {
  // k == 2: two arcs remain; pick the feasible (finite) assignment.
  const std::int64_t a = static_cast<std::int64_t>(sat(sp.cell(0, 0))) +
                         static_cast<std::int64_t>(sat(sp.cell(1, 1)));
  const std::int64_t b = static_cast<std::int64_t>(sat(sp.cell(0, 1))) +
                         static_cast<std::int64_t>(sat(sp.cell(1, 0)));
  auto edges = sp.edges;
  if (a < kInf && a <= b) {
    edges.push_back({sp.rows[0], sp.cols[0]});
    edges.push_back({sp.rows[1], sp.cols[1]});
  } else if (b < kInf) {
    edges.push_back({sp.rows[0], sp.cols[1]});
    edges.push_back({sp.rows[1], sp.cols[0]});
  } else {
    return std::nullopt;
  }
  return assemble(edges);
}

std::optional<tour> lmsk::assemble(
    const std::vector<std::array<std::int16_t, 2>>& edges) {
  const int n = inst_->n();
  if (edges.size() != static_cast<std::size_t>(n)) return std::nullopt;
  std::vector<std::int16_t> next(n, -1);
  for (const auto& e : edges) {
    if (next[e[0]] != -1) return std::nullopt;  // duplicate out-arc
    next[e[0]] = e[1];
  }
  tour t;
  t.order.reserve(n);
  std::int16_t c = 0;
  for (int i = 0; i < n; ++i) {
    if (c < 0 || c >= n) return std::nullopt;
    t.order.push_back(c);
    c = next[c];
  }
  if (c != 0) return std::nullopt;  // not a single closed cycle
  // Reject cycles that skip cities (t.order would repeat one).
  std::vector<bool> seen(n, false);
  for (auto v : t.order) {
    if (seen[v]) return std::nullopt;
    seen[v] = true;
  }
  t.cost = inst_->tour_cost(t.order);
  return t;
}

expand_result lmsk::expand(subproblem sp, std::int64_t best, std::uint32_t& next_seq) {
  ops_ = 0;
  ++expansions_;
  expand_result out;

  if (sp.k() == 2) {
    out.completed = finish(sp);
    out.ops = ops_ += 8;
    total_ops_ += ops_;
    return out;
  }

  const auto pick = choose_branch(sp);
  if (pick.i < 0) {
    // No zero cell: the node is infeasible (all arcs forbidden).
    out.ops = ops_;
    total_ops_ += ops_;
    return out;
  }

  // --- Exclude child: forbid arc (rows[i] -> cols[j]).
  {
    subproblem ex = sp;
    ops_ += ex.words();  // matrix copy
    ex.cell(pick.i, pick.j) = kInf;
    const auto ra = reduce_row(ex, pick.i);
    const auto ca = reduce_col(ex, pick.j);
    if (ra < kInfBound && ca < kInfBound) {
      ex.bound = sp.bound + ra + ca;
      if (ex.bound < best) {
        ex.seq = next_seq++;
        out.children.push_back(std::move(ex));
      }
    }
  }

  // --- Include child: commit arc (rows[i] -> cols[j]), drop row i / col j.
  {
    const int k = sp.k();
    subproblem in;
    in.rows.reserve(k - 1);
    in.cols.reserve(k - 1);
    for (int i = 0; i < k; ++i) {
      if (i != pick.i) in.rows.push_back(sp.rows[i]);
    }
    for (int j = 0; j < k; ++j) {
      if (j != pick.j) in.cols.push_back(sp.cols[j]);
    }
    in.m.resize(static_cast<std::size_t>(k - 1) * (k - 1));
    for (int i = 0, ii = 0; i < k; ++i) {
      if (i == pick.i) continue;
      for (int j = 0, jj = 0; j < k; ++j) {
        if (j == pick.j) continue;
        ++ops_;
        in.cell(ii, jj) = sp.cell(i, j);
        ++jj;
      }
      ++ii;
    }
    in.edges = sp.edges;
    in.edges.push_back({sp.rows[pick.i], sp.cols[pick.j]});
    forbid_subtour_arc(in);
    ops_ += static_cast<std::uint64_t>(in.edges.size()) * 2;
    const auto added = reduce(in);
    if (added < kInfBound) {
      in.bound = sp.bound + added;
      if (in.bound < best) {
        in.seq = next_seq++;
        out.children.push_back(std::move(in));
      }
    }
  }

  out.ops = ops_;
  total_ops_ += ops_;
  return out;
}

seq_result solve_sequential(const instance& inst) {
  lmsk engine(inst);
  seq_result res;

  struct worse {
    bool operator()(const subproblem& a, const subproblem& b) const {
      return a.bound == b.bound ? a.seq > b.seq : a.bound > b.bound;
    }
  };
  std::priority_queue<subproblem, std::vector<subproblem>, worse> pq;
  std::uint32_t seq = 1;
  pq.push(engine.root());

  while (!pq.empty()) {
    res.peak_queue = std::max(res.peak_queue, pq.size());
    subproblem sp = pq.top();
    pq.pop();
    if (sp.bound >= res.best.cost) continue;  // pruned
    auto er = engine.expand(std::move(sp), res.best.cost, seq);
    ++res.expansions;
    if (er.completed && er.completed->cost < res.best.cost) {
      res.best = *er.completed;
    }
    for (auto& c : er.children) pq.push(std::move(c));
  }
  res.ops = engine.total_ops();
  return res;
}

tour solve_brute_force(const instance& inst) {
  const int n = inst.n();
  std::vector<std::int16_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::int16_t{0});
  tour best;
  // Fix city 0 first; permute the rest.
  do {
    const auto c = inst.tour_cost(perm);
    if (c < best.cost) {
      best.cost = c;
      best.order = perm;
    }
  } while (std::next_permutation(perm.begin() + 1, perm.end()));
  return best;
}

}  // namespace adx::tsp
