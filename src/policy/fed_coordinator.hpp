// Cross-shard policy coordination over a federation.
//
// Under the sharded DES the async_runtime's coordinator cannot scan locks on
// other shards — that would read native state across a place boundary. The
// federated coordinator splits the loop into messages:
//
//   member daemon tick (group g's shard)
//     -> snapshot its coordinated locks' acquisition counts
//     -> federation::post(g, 0, report)           [one lookahead later]
//   report lands (group 0's shard)
//     -> update per-lock idle streaks; on `idle_ticks` flat reports,
//        federation::post(0, g, apply-demotion)   [one lookahead later]
//   demotion lands (group g's shard)
//     -> async_runtime::apply_external_demotion — a plain event on the
//        lock's own shard, so the bind_place discipline holds.
//
// The two message hops replace the local scan's virtual-time charges: 2L of
// messaging latency is the price of coordinating across the machine, exactly
// the tradeoff the paper's global-policy discussion predicts. All state
// lives on a fixed shard (members' reports on shard 0, lock state on the
// owning shard), every hop is a domain send with a shard-invariant origin,
// so runs stay bit-identical across shard/worker counts.
#pragma once

#include <cstdint>
#include <vector>

#include "ct/federation.hpp"
#include "locks/reconfigurable_lock.hpp"
#include "policy/runtime.hpp"

namespace adx::policy {

struct fed_coordinator_config {
  /// Consecutive flat reports after which a lock is demoted. 0 disables.
  std::uint64_t idle_ticks = 4;
  /// The cheap waiting policy idle locks are demoted to.
  locks::waiting_policy idle_policy = locks::waiting_policy::pure_spin(16);
};

/// The hub. Lives host-side; its mutable state partitions cleanly by shard
/// (see member comments), so parallel windows never race on it.
class fed_coordinator {
 public:
  explicit fed_coordinator(ct::federation& fed, fed_coordinator_config cfg = {})
      : fed_(&fed), cfg_(cfg) {}

  fed_coordinator(const fed_coordinator&) = delete;
  fed_coordinator& operator=(const fed_coordinator&) = delete;

  /// Enrols group `g`'s policy runtime: installs a tick observer on it (so
  /// its local idle scan is disabled) and tracks its coordinated locks.
  /// Call before art.start() / before the run.
  void attach(unsigned group, async_runtime& art);

  /// Acquisition reports received at the hub (group-0 shard; read
  /// host-side after the run).
  [[nodiscard]] std::uint64_t reports() const { return reports_; }
  /// Demotions the hub issued (group-0 shard; read host-side after the run).
  [[nodiscard]] std::uint64_t demotions_issued() const { return demotions_; }

 private:
  struct lock_track {
    std::uint64_t last_acquisitions = 0;
    std::uint64_t idle_streak = 0;
    bool demoted = false;
  };
  struct member {
    unsigned group = 0;
    async_runtime* art = nullptr;
    /// Written only by report events on the hub shard (group 0).
    std::vector<lock_track> locks;
  };

  void on_tick(std::size_t member_idx);
  void on_report(std::size_t member_idx, std::vector<std::uint64_t> acquisitions);

  ct::federation* fed_;
  fed_coordinator_config cfg_;
  /// Slots are appended host-side before the run; after that, each member's
  /// `locks` vector is mutated only on the hub shard.
  std::vector<member> members_;
  std::uint64_t reports_ = 0;    ///< hub-shard only
  std::uint64_t demotions_ = 0;  ///< hub-shard only
};

}  // namespace adx::policy
