// The adaptation-policy engine: turns a declarative `policy_spec` into a
// running `locks::lock_adapt_policy`.
//
// Structure of a built policy:
//
//   observation ──> aggregator (per sensor) ──> decision core ──> wrappers
//                   last-value / ewma /          the policy P      hysteresis /
//                   max-in-window                (P of §3)         deadband /
//                                                                  cooldown
//                                          ──> apply_waiting_policy (Ψ)
//
// The engine is the glue: it owns per-sensor aggregators, feeds the folded
// values to the decision core, filters the core's desired configuration
// through the wrapper stack, and applies the survivor to the lock — recording
// the decision (sensor value, applied Ψ, full sensor vector) for the obs
// reconfigure annotation. The lock's feedback loop itself is unchanged; it
// just drives this policy object instead of the built-in one.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/sensor.hpp"
#include "locks/adaptive_lock.hpp"
#include "locks/reconfigurable_lock.hpp"
#include "policy/spec.hpp"

namespace adx::policy {

/// Folds a sensor's raw samples into the value the decision core sees.
/// Integer-valued throughout: ewma keeps a double accumulator but reports a
/// rounded int64 so decisions stay platform-independent.
class aggregator {
 public:
  explicit aggregator(const sensor_spec& s);

  /// Feeds one raw sample; returns the aggregated value.
  std::int64_t feed(std::int64_t raw);

  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  aggregation agg_;
  double alpha_;
  std::uint64_t window_;
  bool primed_{false};
  double ewma_{0.0};
  std::deque<std::int64_t> recent_;
  std::int64_t value_{0};
};

/// A policy core: maps (aggregated observation, current configuration) to a
/// desired configuration, or nothing to leave the lock alone. Cores are pure
/// decision logic — sensor plumbing, wrapper filtering and Ψ application all
/// live in the engine.
class decision_core {
 public:
  virtual ~decision_core() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// `value` is the aggregated reading of the sensor named in `obs`.
  [[nodiscard]] virtual std::optional<locks::waiting_policy> decide(
      const core::observation& obs, std::int64_t value,
      const locks::waiting_policy& current) = 0;

  /// Called after a decision of this core was actually applied to the lock
  /// (post-wrapper). Lets cores that model state (e.g. cooldown-like logic)
  /// track real Ψ transitions rather than suppressed proposals.
  virtual void notify_applied() {}
};

/// Decision-filter combinators. Each wraps an inner core and passes, delays
/// or suppresses its desired configurations; `notify_applied` is forwarded
/// inward so nested cores still observe real transitions.
[[nodiscard]] std::unique_ptr<decision_core> wrap_hysteresis(
    std::unique_ptr<decision_core> inner, std::uint64_t confirm);
[[nodiscard]] std::unique_ptr<decision_core> wrap_deadband(
    std::unique_ptr<decision_core> inner, std::int64_t band);
[[nodiscard]] std::unique_ptr<decision_core> wrap_cooldown(
    std::unique_ptr<decision_core> inner, std::uint64_t observations);

/// The runtime policy installed on an adaptive lock: drives the wrapped core
/// from aggregated sensor values and applies its decisions.
class engine final : public locks::lock_adapt_policy {
 public:
  engine(locks::reconfigurable_lock& lk, std::string spec_name,
         std::unique_ptr<decision_core> core, std::vector<sensor_spec> sensors);

  void observe(const core::observation& obs) override;

  [[nodiscard]] std::string_view policy_name() const override { return name_; }
  [[nodiscard]] const decision_record& last_decision() const override { return last_; }

 private:
  [[nodiscard]] std::string render_sensor_vector() const;

  locks::reconfigurable_lock* lk_;
  std::string name_;
  std::unique_ptr<decision_core> core_;
  std::vector<sensor_spec> specs_;       // parallel to aggs_
  std::vector<aggregator> aggs_;
  decision_record last_{};
};

}  // namespace adx::policy
