#include "policy/registry.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "policy/engine.hpp"
#include "policy/policies.hpp"
#include "policy/sensors.hpp"

namespace adx::policy {

namespace {

using core_factory = std::unique_ptr<decision_core> (*)(
    const policy_spec&, const locks::simple_adapt_params&,
    const locks::lock_cost_model&);

struct registry_entry {
  policy_info info;
  core_factory make;
  /// Default sensor names, in delivery order (nullptr-terminated slots).
  const char* sensors[2];
  /// Aggregation applied to `lock-hold-time` style sensors by default.
  aggregation hold_agg;
};

const registry_entry kRegistry[] = {
    {{"simple-adapt", "the paper's §4 waiting-count rule (default)"},
     &make_simple_adapt_core,
     {"no-of-waiting-threads", nullptr},
     aggregation::last_value},
    {{"break-even", "cost-model break-even: spin while queue x hold < block cost"},
     &make_break_even_core,
     {"no-of-waiting-threads", "lock-hold-time"},
     aggregation::ewma},
    {{"ewma-hold", "size the spin budget to the smoothed hold time"},
     &make_ewma_hold_core,
     {"lock-hold-time", nullptr},
     aggregation::ewma},
    {{"multi-sensor", "spin only when queue AND hold time are both short"},
     &make_multi_sensor_core,
     {"no-of-waiting-threads", "lock-hold-time"},
     aggregation::ewma},
};

const registry_entry& find_entry(std::string_view name) {
  for (const auto& e : kRegistry) {
    if (e.info.name == name) return e;
  }
  std::string msg = "unknown policy: " + std::string(name) + " (valid:";
  for (const auto& e : kRegistry) {
    msg += ' ';
    msg += e.info.name;
  }
  msg += ')';
  throw std::invalid_argument(msg);
}

std::vector<sensor_spec> default_sensors(const registry_entry& e,
                                         std::uint64_t sample_period) {
  std::vector<sensor_spec> out;
  for (const char* name : e.sensors) {
    if (name == nullptr) break;
    sensor_spec s;
    s.name = name;
    s.period = sample_period;
    s.agg = std::string_view(name) == "no-of-waiting-threads" ? aggregation::last_value
                                                              : e.hold_agg;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

std::span<const policy_info> all_policies() {
  static const std::vector<policy_info> infos = [] {
    std::vector<policy_info> v;
    for (const auto& e : kRegistry) v.push_back(e.info);
    return v;
  }();
  return infos;
}

std::vector<std::string_view> all_policy_names() {
  std::vector<std::string_view> names;
  for (const auto& e : kRegistry) names.push_back(e.info.name);
  return names;
}

std::string_view parse_policy_name(std::string_view name) {
  return find_entry(name).info.name;
}

policy_spec default_spec(std::string_view name, std::uint64_t sample_period) {
  const auto& e = find_entry(name);
  policy_spec spec;
  spec.name = std::string(e.info.name);
  // simple-adapt with empty sensors IS the default spec: the factory then
  // keeps the lock's built-in policy, which this registry must not disturb.
  if (spec.name != "simple-adapt") {
    spec.sensors = default_sensors(e, sample_period);
  }
  return spec;
}

void install(locks::adaptive_lock& lk, const locks::lock_params& params,
             const locks::lock_cost_model& cost) {
  const auto& spec = params.policy;
  const auto& entry = find_entry(spec.name);

  auto sensors = spec.sensors.empty()
                     ? default_sensors(entry, params.adapt.sample_period)
                     : spec.sensors;

  // The spec's monitor replaces the lock's built-in one (which carried only
  // the hard-wired waiting-count sensor), through the object-generic path.
  // The engine aggregates observations itself, so the monitor registers the
  // sensors unfolded (fold_in_monitor = false keeps decisions bit-identical
  // to the pre-sensor_host wiring).
  lock_sensor_host host(lk);
  install_sensors(lk, host, sensors, /*fold_in_monitor=*/false);

  auto core = entry.make(spec, params.adapt, cost);
  // Wrappers are listed outermost-first; build inside-out.
  for (auto it = spec.wrappers.rbegin(); it != spec.wrappers.rend(); ++it) {
    if (it->kind == "hysteresis") {
      core = wrap_hysteresis(std::move(core), it->confirm);
    } else if (it->kind == "deadband") {
      core = wrap_deadband(std::move(core), it->band);
    } else if (it->kind == "cooldown") {
      core = wrap_cooldown(std::move(core), it->observations);
    } else {
      throw std::invalid_argument("unknown wrapper kind: " + it->kind +
                                  " (valid: hysteresis deadband cooldown)");
    }
  }

  std::string full_name(core->name());
  lk.set_policy(std::make_shared<engine>(lk, std::move(full_name), std::move(core),
                                         std::move(sensors)));
}

}  // namespace adx::policy
