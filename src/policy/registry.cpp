#include "policy/registry.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "cli/parse_error.hpp"
#include "core/policy.hpp"
#include "policy/engine.hpp"
#include "policy/policies.hpp"
#include "policy/sensors.hpp"

namespace adx::policy {

namespace {

double param_or(const policy_spec& spec, std::string_view key, double fallback) {
  const auto it = spec.params.find(key);
  return it == spec.params.end() ? fallback : it->second;
}

// ------------------------------------------------------------ lock family

using core_factory = std::unique_ptr<decision_core> (*)(
    const policy_spec&, const locks::simple_adapt_params&,
    const locks::lock_cost_model&);

struct registry_entry {
  policy_info info;
  core_factory make;
  /// Default sensor names, in delivery order (nullptr-terminated slots).
  const char* sensors[2];
  /// Aggregation applied to `lock-hold-time` style sensors by default.
  aggregation hold_agg;
};

const registry_entry kRegistry[] = {
    {{"simple-adapt", "the paper's §4 waiting-count rule (default)"},
     &make_simple_adapt_core,
     {"no-of-waiting-threads", nullptr},
     aggregation::last_value},
    {{"break-even", "cost-model break-even: spin while queue x hold < block cost"},
     &make_break_even_core,
     {"no-of-waiting-threads", "lock-hold-time"},
     aggregation::ewma},
    {{"ewma-hold", "size the spin budget to the smoothed hold time"},
     &make_ewma_hold_core,
     {"lock-hold-time", nullptr},
     aggregation::ewma},
    {{"multi-sensor", "spin only when queue AND hold time are both short"},
     &make_multi_sensor_core,
     {"no-of-waiting-threads", "lock-hold-time"},
     aggregation::ewma},
};

const registry_entry& find_entry(std::string_view name) {
  for (const auto& e : kRegistry) {
    if (e.info.name == name) return e;
  }
  throw cli::unknown_value("policy", name, kRegistry,
                           [](const auto& e) { return e.info.name; });
}

std::vector<sensor_spec> default_sensors(const registry_entry& e,
                                         std::uint64_t sample_period) {
  std::vector<sensor_spec> out;
  for (const char* name : e.sensors) {
    if (name == nullptr) break;
    sensor_spec s;
    s.name = name;
    s.period = sample_period;
    s.agg = std::string_view(name) == "no-of-waiting-threads" ? aggregation::last_value
                                                              : e.hold_agg;
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------- object family
//
// The object policies (stripe-adapt for maps, mode-adapt for monitors) run
// their raw rule through confirm/cooldown filtering so a mis-tuned
// threshold thrashes Ψ instead of oscillating the object (§4's tuning
// caveat applies to objects too). `vote` is -1 shrink/classic, 0 hold,
// +1 grow/delegate.

struct decision_filter {
  std::uint64_t confirm;
  std::uint64_t cooldown;
  int last_vote = 0;
  std::uint64_t streak = 0;
  std::uint64_t muted = 0;

  /// Returns true when the vote survives confirmation and cooldown.
  bool admit(int vote) {
    if (muted > 0) {
      --muted;
      return false;
    }
    if (vote == 0) {
      last_vote = 0;
      streak = 0;
      return false;
    }
    streak = vote == last_vote ? streak + 1 : 1;
    last_vote = vote;
    if (streak < confirm) return false;
    streak = 0;
    muted = cooldown;
    return true;
  }
};

class stripe_adapt_policy final : public core::adaptation_policy {
 public:
  stripe_adapt_policy(stripe_controller& ctl, stripe_adapt_params p)
      : ctl_(&ctl),
        p_(p),
        filter_{p.confirm, p.cooldown},
        bucket_filter_{p.confirm, p.cooldown} {}

  void observe(const core::observation& obs) override {
    if (obs.sensor == "load-factor") {
      load_ = obs.value;
    } else if (obs.sensor == "stripe-contention-skew") {
      skew_ = obs.value;
    } else if (obs.sensor == "probe-length") {
      probe_ = obs.value;
      // The probe-length rule is its own vote path: long chains under low
      // contention need more buckets, not more locks, so bucket-array
      // growth triggers independent of the stripe votes below.
      vote_buckets();
      return;
    }
    int vote = 0;
    if (skew_ >= p_.skew_grow || load_ >= p_.load_grow) {
      vote = +1;
    } else if (skew_ <= 0 && load_ <= p_.load_shrink) {
      vote = -1;
    }
    if (!filter_.admit(vote)) return;
    const unsigned active = ctl_->active_stripes();
    const unsigned f = std::max(2u, ctl_->stripe_factor());
    const unsigned target =
        vote > 0 ? std::min(ctl_->max_stripes(), active * f)
                 : std::max(ctl_->min_stripes(), active / f);
    if (target == active) return;
    note_decision();
    ctl_->request_stripes(target);
  }

 private:
  void vote_buckets() {
    const unsigned buckets = ctl_->buckets_per_stripe();
    const unsigned cap = ctl_->max_buckets_per_stripe();
    if (p_.probe_grow <= 0 || buckets == 0 || cap == 0) return;
    if (!bucket_filter_.admit(probe_ >= p_.probe_grow ? +1 : 0)) return;
    const unsigned target = std::min(cap, buckets * 2);
    if (target == buckets) return;
    note_decision();
    ctl_->request_buckets(target);
  }

  stripe_controller* ctl_;
  stripe_adapt_params p_;
  decision_filter filter_;
  decision_filter bucket_filter_;
  std::int64_t load_{0};
  std::int64_t skew_{0};
  std::int64_t probe_{0};
};

class mode_adapt_policy final : public core::adaptation_policy {
 public:
  mode_adapt_policy(mode_controller& ctl, mode_adapt_params p)
      : ctl_(&ctl), p_(p), filter_{p.confirm, p.cooldown} {}

  void observe(const core::observation& obs) override {
    if (obs.sensor == "section-time") {
      section_us_ = obs.value;
    } else if (obs.sensor == "monitor-waiters") {
      waiters_ = obs.value;
    }
    int vote = 0;
    if (section_us_ >= p_.classic_above_us) {
      vote = -1;  // long sections: delegation just serializes them on one thread
    } else if (section_us_ <= p_.delegate_below_us && waiters_ >= p_.min_waiters) {
      vote = +1;  // short contended sections: handoff cost dominates — combine
    }
    if (!filter_.admit(vote)) return;
    const std::int64_t want = vote > 0 ? 1 : 0;
    if (want == ctl_->current_mode()) return;
    note_decision();
    ctl_->request_mode(want);
  }

 private:
  mode_controller* ctl_;
  mode_adapt_params p_;
  decision_filter filter_;
  std::int64_t section_us_{0};
  std::int64_t waiters_{0};
};

std::vector<sensor_spec> map_default_sensors() {
  std::vector<sensor_spec> out;
  sensor_spec skew;
  skew.name = "stripe-contention-skew";
  skew.period = 2;
  skew.agg = aggregation::max_in_window;
  skew.window = 4;
  out.push_back(skew);
  sensor_spec load;
  load.name = "load-factor";
  load.period = 4;
  load.agg = aggregation::last_value;
  out.push_back(load);
  sensor_spec probe;
  probe.name = "probe-length";
  probe.period = 8;
  probe.agg = aggregation::ewma;
  out.push_back(probe);
  return out;
}

std::vector<sensor_spec> monitor_default_sensors() {
  std::vector<sensor_spec> out;
  sensor_spec section;
  section.name = "section-time";
  section.period = 2;
  section.agg = aggregation::ewma;
  out.push_back(section);
  sensor_spec waiters;
  waiters.name = "monitor-waiters";
  waiters.period = 2;
  waiters.agg = aggregation::max_in_window;
  waiters.window = 4;
  out.push_back(waiters);
  sensor_spec rate;
  rate.name = "entry-rate";
  rate.period = 8;
  rate.agg = aggregation::last_value;
  out.push_back(rate);
  return out;
}

constexpr policy_info kObjectInfos[] = {
    {"stripe-adapt", "grow/shrink the map's stripe count; probe-length grows buckets",
     policy_family::map},
    {"mode-adapt", "flip the monitor between classic and delegated entry",
     policy_family::monitor},
};

/// Checks the single registered name of an object family and applies the
/// shared error UX.
void expect_object_policy(const policy_spec& spec, std::string_view want,
                          policy_family f) {
  if (spec.name == want) return;
  throw cli::unknown_value("policy", spec.name,
                           policy_registry::names(f));
}

/// async mode: the object's monitor runs loosely coupled, so feedback
/// points only queue observations (zero policy cost on the fast path) and
/// the periodic runtime drains them out-of-band.
void apply_exec_mode(core::adaptive_object& obj, const policy_spec& spec) {
  if (spec.mode == exec_mode::async) {
    obj.object_monitor().set_mode(core::coupling::loosely_coupled);
  }
}

}  // namespace

// ------------------------------------------------------- policy_registry

std::span<const policy_info> policy_registry::catalogue() {
  static const std::vector<policy_info> infos = [] {
    std::vector<policy_info> v;
    for (const auto& e : kRegistry) v.push_back(e.info);
    for (const auto& i : kObjectInfos) v.push_back(i);
    return v;
  }();
  return infos;
}

std::vector<std::string_view> policy_registry::names(policy_family f) {
  std::vector<std::string_view> out;
  for (const auto& i : catalogue()) {
    if (i.family == f) out.push_back(i.name);
  }
  return out;
}

std::string_view policy_registry::parse(std::string_view name, policy_family f) {
  for (const auto& i : catalogue()) {
    if (i.family == f && i.name == name) return i.name;
  }
  throw cli::unknown_value("policy", name, names(f));
}

policy_spec policy_registry::default_spec(std::string_view name,
                                          std::uint64_t sample_period) {
  if (name == "stripe-adapt") {
    policy_spec spec;
    spec.name = "stripe-adapt";
    spec.sensors = map_default_sensors();
    return spec;
  }
  if (name == "mode-adapt") {
    policy_spec spec;
    spec.name = "mode-adapt";
    spec.sensors = monitor_default_sensors();
    return spec;
  }
  const auto& e = find_entry(name);
  policy_spec spec;
  spec.name = std::string(e.info.name);
  // simple-adapt with empty sensors IS the default spec: the factory then
  // keeps the lock's built-in policy, which this registry must not disturb.
  if (spec.name != "simple-adapt") {
    spec.sensors = default_sensors(e, sample_period);
  }
  return spec;
}

void policy_registry::install(locks::adaptive_lock& lk,
                              const locks::lock_params& params,
                              const locks::lock_cost_model& cost) {
  const auto& spec = params.policy;
  const auto& entry = find_entry(spec.name);

  auto sensors = spec.sensors.empty()
                     ? default_sensors(entry, params.adapt.sample_period)
                     : spec.sensors;

  // The spec's monitor replaces the lock's built-in one (which carried only
  // the hard-wired waiting-count sensor), through the object-generic path.
  // The engine aggregates observations itself, so the monitor registers the
  // sensors unfolded (fold_in_monitor = false keeps decisions bit-identical
  // to the pre-sensor_host wiring).
  lock_sensor_host host(lk);
  install_sensors(lk, host, sensors, /*fold_in_monitor=*/false);
  apply_exec_mode(lk, spec);

  auto core = entry.make(spec, params.adapt, cost);
  // Wrappers are listed outermost-first; build inside-out.
  for (auto it = spec.wrappers.rbegin(); it != spec.wrappers.rend(); ++it) {
    if (it->kind == "hysteresis") {
      core = wrap_hysteresis(std::move(core), it->confirm);
    } else if (it->kind == "deadband") {
      core = wrap_deadband(std::move(core), it->band);
    } else if (it->kind == "cooldown") {
      core = wrap_cooldown(std::move(core), it->observations);
    } else {
      throw std::invalid_argument("unknown wrapper kind: " + it->kind +
                                  " (valid: hysteresis deadband cooldown)");
    }
  }

  std::string full_name(core->name());
  lk.set_policy(std::make_shared<engine>(lk, std::move(full_name), std::move(core),
                                         std::move(sensors)));
}

void policy_registry::install(core::adaptive_object& obj, sensor_host& host,
                              stripe_controller& ctl, const policy_spec& spec) {
  expect_object_policy(spec, "stripe-adapt", policy_family::map);
  const auto sensors = spec.sensors.empty() ? map_default_sensors() : spec.sensors;
  install_sensors(obj, host, sensors);
  apply_exec_mode(obj, spec);
  stripe_adapt_params p;
  p.skew_grow = static_cast<std::int64_t>(param_or(spec, "skew-grow", 2));
  p.load_grow = static_cast<std::int64_t>(param_or(spec, "load-grow", 150));
  p.load_shrink = static_cast<std::int64_t>(param_or(spec, "load-shrink", 50));
  p.probe_grow = static_cast<std::int64_t>(
      param_or(spec, "probe-grow", static_cast<double>(stripe_adapt_params{}.probe_grow)));
  p.confirm = static_cast<std::uint64_t>(param_or(spec, "confirm", 2));
  p.cooldown = static_cast<std::uint64_t>(param_or(spec, "cooldown", 8));
  obj.set_policy(std::make_shared<stripe_adapt_policy>(ctl, p));
}

void policy_registry::install(core::adaptive_object& obj, sensor_host& host,
                              mode_controller& ctl, const policy_spec& spec) {
  expect_object_policy(spec, "mode-adapt", policy_family::monitor);
  const auto sensors = spec.sensors.empty() ? monitor_default_sensors() : spec.sensors;
  install_sensors(obj, host, sensors);
  apply_exec_mode(obj, spec);
  mode_adapt_params p;
  p.delegate_below_us = static_cast<std::int64_t>(param_or(spec, "delegate-below-us", 30));
  p.classic_above_us = static_cast<std::int64_t>(param_or(spec, "classic-above-us", 80));
  p.min_waiters = static_cast<std::int64_t>(param_or(spec, "min-waiters", 1));
  p.confirm = static_cast<std::uint64_t>(param_or(spec, "confirm", 2));
  p.cooldown = static_cast<std::uint64_t>(param_or(spec, "cooldown", 4));
  obj.set_policy(std::make_shared<mode_adapt_policy>(ctl, p));
}

// ------------------------------------------------------- legacy wrappers

std::span<const policy_info> all_policies() {
  static const std::vector<policy_info> infos = [] {
    std::vector<policy_info> v;
    for (const auto& e : kRegistry) v.push_back(e.info);
    return v;
  }();
  return infos;
}

std::vector<std::string_view> all_policy_names() {
  std::vector<std::string_view> names;
  for (const auto& e : kRegistry) names.push_back(e.info.name);
  return names;
}

std::string_view parse_policy_name(std::string_view name) {
  return find_entry(name).info.name;
}

policy_spec default_spec(std::string_view name, std::uint64_t sample_period) {
  (void)find_entry(name);  // lock-family validation (and its error UX)
  return policy_registry::default_spec(name, sample_period);
}

void install(locks::adaptive_lock& lk, const locks::lock_params& params,
             const locks::lock_cost_model& cost) {
  policy_registry::install(lk, params, cost);
}

}  // namespace adx::policy
