// Built-in decision cores: the concrete adaptation policies P the registry
// can instantiate. Each factory reads its knobs from the spec's `params` map
// (absent keys take defaults derived from the lock's `simple_adapt_params`
// and its cost model).
#pragma once

#include <memory>

#include "locks/adaptive_lock.hpp"
#include "locks/cost_model.hpp"
#include "policy/engine.hpp"
#include "policy/spec.hpp"

namespace adx::policy {

/// The paper's §4 rule, identical in behavior to the lock's built-in
/// `simple_adapt_policy`. Knobs: waiting_threshold, n, spin_cap,
/// pure_spin_on_idle (0/1).
[[nodiscard]] std::unique_ptr<decision_core> make_simple_adapt_core(
    const policy_spec& spec, const locks::simple_adapt_params& defaults,
    const locks::lock_cost_model& cost);

/// Cost-model break-even rule: spin only while the expected wait (waiters ×
/// smoothed hold time) stays below the cost of a block/unblock round trip,
/// with the spin budget itself sized from the model. Knobs: break_even_us
/// (default: blocking minus spinning lock+unlock overhead), spin_cap.
[[nodiscard]] std::unique_ptr<decision_core> make_break_even_core(
    const policy_spec& spec, const locks::simple_adapt_params& defaults,
    const locks::lock_cost_model& cost);

/// Hold-time tracking rule: size the spin budget to cover one (smoothed)
/// critical section; holds too long to spin through become pure blocking.
/// Knobs: spin_cap.
[[nodiscard]] std::unique_ptr<decision_core> make_ewma_hold_core(
    const policy_spec& spec, const locks::simple_adapt_params& defaults,
    const locks::lock_cost_model& cost);

/// Two-sensor rule (waiting count + hold time): spin only when the queue is
/// short AND sections are short; either signal alone can flip the lock to
/// blocking. Knobs: waiting_threshold, spin_cap, spin_budget_us.
[[nodiscard]] std::unique_ptr<decision_core> make_multi_sensor_core(
    const policy_spec& spec, const locks::simple_adapt_params& defaults,
    const locks::lock_cost_model& cost);

}  // namespace adx::policy
