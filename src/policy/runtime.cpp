#include "policy/runtime.hpp"

#include <optional>

#include "locks/reconfigurable_lock.hpp"

namespace adx::policy {

bool async_runtime::adopt_lock(locks::lock_object& lk,
                               const locks::lock_params& params,
                               const locks::lock_cost_model& cost) {
  if (started_) return false;
  if (params.policy.mode != exec_mode::async) return false;
  auto* al = dynamic_cast<locks::adaptive_lock*>(&lk);
  if (al == nullptr) return false;
  registration r;
  r.obj = al;
  r.lock = al;
  r.cost = cost;
  r.coordinate = params.policy.coordinate;
  r.last_acquisitions = al->stats().acquisitions();
  regs_.push_back(r);
  return true;
}

bool async_runtime::adopt_object(core::adaptive_object& obj, const policy_spec& spec,
                                 const locks::lock_cost_model& cost) {
  if (started_) return false;
  if (spec.mode != exec_mode::async) return false;
  registration r;
  r.obj = &obj;
  r.cost = cost;
  regs_.push_back(r);
  return true;
}

bool async_runtime::adopt_map(core::adaptive_object& obj, stripe_controller& ctl,
                              const policy_spec& spec,
                              const locks::lock_cost_model& cost) {
  if (started_) return false;
  if (spec.mode != exec_mode::async) return false;
  registration r;
  r.obj = &obj;
  r.stripes = &ctl;
  r.cost = cost;
  r.coordinate = spec.coordinate;
  regs_.push_back(r);
  return true;
}

void async_runtime::start(ct::runtime& rt) {
  if (started_ || regs_.empty()) return;
  started_ = true;
  rt_ = &rt;
  rt.fork(
      cfg_.proc, [this](ct::context& ctx) { return daemon(ctx); }, cfg_.priority);
}

const async_runtime::registration* async_runtime::coordinated_at(std::size_t i) const {
  std::size_t k = 0;
  for (const auto& r : regs_) {
    if (r.coordinate && r.lock != nullptr) {
      if (k == i) return &r;
      ++k;
    }
  }
  return nullptr;
}

std::size_t async_runtime::coordinated_locks() const {
  std::size_t k = 0;
  for (const auto& r : regs_) {
    if (r.coordinate && r.lock != nullptr) ++k;
  }
  return k;
}

std::uint64_t async_runtime::coordinated_acquisitions(std::size_t i) const {
  const auto* r = coordinated_at(i);
  return r == nullptr ? 0 : r->lock->stats().acquisitions();
}

bool async_runtime::apply_external_demotion(std::size_t i,
                                            const locks::waiting_policy& pol) {
  std::size_t k = 0;
  for (auto& r : regs_) {
    if (!r.coordinate || r.lock == nullptr) continue;
    if (k++ != i) continue;
    if (r.lock->current_policy() == pol) return false;
    const auto now = rt_ != nullptr ? rt_->now() : sim::vtime{};
    if (!r.lock->apply_waiting_policy(pol, std::nullopt, now)) return false;
    r.demoted = true;
    ++demotions_;
    r.lock->stats().on_reconfigure(now, ct::invalid_thread, 0,
                                   locks::describe(pol), "fed-coordinator",
                                   "[cross-shard]");
    return true;
  }
  return false;
}

ct::task<void> async_runtime::daemon(ct::context& ctx) {
  for (;;) {
    co_await ctx.sleep_for(cfg_.period);
    ++ticks_;
    for (auto& r : regs_) {
      const auto before = r.obj->costs().reconfiguration_ops;
      const auto delivered = r.obj->pump();
      const auto reconfigs = r.obj->costs().reconfiguration_ops - before;
      pumped_ += delivered;
      co_await charge(ctx, r, delivered, reconfigs);
    }
    co_await coordinate(ctx);
    if (tick_observer_) tick_observer_(ticks_);
    if (cfg_.max_ticks != 0 && ticks_ >= cfg_.max_ticks) break;
    // Last thread standing: the workload drained, so stop and let run()
    // finish. (Start the runtime after forking the workload.)
    if (ctx.rt().live_threads() <= 1) break;
  }
}

ct::task<void> async_runtime::charge(ct::context& ctx, const registration& r,
                                     std::uint64_t delivered,
                                     std::uint64_t reconfigs) {
  // Mirrors adaptive_lock::post_release_hook's accounting, but billed to
  // the daemon on its own processor — that is the entire point: the
  // operating threads' fast path no longer carries these charges.
  if (delivered > 0) {
    if (r.lock != nullptr) {
      co_await ctx.touch(r.lock->home(), sim::access_kind::read, delivered);
    }
    co_await ctx.compute((r.cost.monitor_sample_overhead + r.cost.policy_execution) *
                         static_cast<std::int64_t>(delivered));
  }
  if (reconfigs > 0) {
    co_await ctx.compute(r.cost.configure_attr_overhead *
                         static_cast<std::int64_t>(reconfigs));
    if (r.lock != nullptr) {
      co_await ctx.touch(r.lock->home(), sim::access_kind::read, reconfigs);
      co_await ctx.touch(r.lock->home(), sim::access_kind::write, reconfigs);
      if (auto* p = dynamic_cast<const locks::lock_adapt_policy*>(r.lock->policy())) {
        const auto& d = p->last_decision();
        r.lock->stats().on_reconfigure(ctx.now(), ctx.self(), d.sensor_value,
                                       locks::describe(d.applied), p->policy_name(),
                                       d.sensors);
      }
    }
  }
}

ct::task<void> async_runtime::coordinate(ct::context& ctx) {
  const auto& cc = cfg_.coord;

  // Idle-lock demotion: a coordinated lock whose acquisition count stayed
  // flat for `idle_ticks` consecutive ticks is demoted to the cheap policy.
  // First activity afterwards re-arms it (its own policy can then promote
  // it back from fresh observations). With an external tick observer
  // attached the scan is skipped entirely — the federated coordinator owns
  // idle decisions then, fed by the acquisition reports it collects.
  if (cc.idle_ticks > 0 && !tick_observer_) {
    for (auto& r : regs_) {
      if (!r.coordinate || r.lock == nullptr) continue;
      const auto acq = r.lock->stats().acquisitions();
      if (acq == r.last_acquisitions) {
        ++r.idle_streak;
      } else {
        r.idle_streak = 0;
        r.demoted = false;
      }
      r.last_acquisitions = acq;
      if (r.demoted || r.idle_streak < cc.idle_ticks) continue;
      if (r.lock->current_policy() == cc.idle_policy) {
        r.demoted = true;
        continue;
      }
      if (!r.lock->apply_waiting_policy(cc.idle_policy, std::nullopt, ctx.now())) {
        continue;
      }
      r.demoted = true;
      ++demotions_;
      co_await ctx.compute(r.cost.configure_attr_overhead);
      co_await ctx.touch(r.lock->home(), sim::access_kind::read, 1);
      co_await ctx.touch(r.lock->home(), sim::access_kind::write, 1);
      r.lock->stats().on_reconfigure(ctx.now(), ctx.self(),
                                     static_cast<std::int64_t>(r.idle_streak),
                                     locks::describe(cc.idle_policy), "coordinator",
                                     "[idle-ticks=" + std::to_string(r.idle_streak) +
                                         "]");
    }
  }

  // Aggregate stripe budget: when the coordinated maps' total active
  // stripes exceed the budget, shrink the widest one by its own factor.
  // The request is applied cooperatively by the map's next operation.
  if (cc.stripe_budget > 0) {
    unsigned total = 0;
    registration* widest = nullptr;
    for (auto& r : regs_) {
      if (!r.coordinate || r.stripes == nullptr) continue;
      const auto active = r.stripes->active_stripes();
      total += active;
      if (widest == nullptr || active > widest->stripes->active_stripes()) {
        widest = &r;
      }
    }
    if (widest != nullptr && total > cc.stripe_budget) {
      auto& s = *widest->stripes;
      const unsigned f = s.stripe_factor() < 2 ? 2 : s.stripe_factor();
      const unsigned floor = s.min_stripes();
      const unsigned target = s.active_stripes() / f < floor ? floor
                                                             : s.active_stripes() / f;
      if (target < s.active_stripes()) {
        s.request_stripes(target);
        ++stripe_caps_;
        co_await ctx.compute(widest->cost.configure_attr_overhead);
      }
    }
  }
}

}  // namespace adx::policy
