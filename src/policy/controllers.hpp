// Controller interfaces adaptive *objects* expose to their policies (the Ψ
// half of the feedback loop, object-generic edition).
//
// A controller is the narrow, dependency-free surface a policy core drives:
// the adaptive hash map implements `stripe_controller`, the adaptive
// monitor implements `mode_controller`. Decisions are *requests* — the
// policy runs host-side (inline at a feedback point, or out-of-band in the
// async runtime) and the object applies the requested reconfiguration
// cooperatively at its next quiescent opportunity.
//
// These used to live in src/objects; they moved down here so the unified
// `policy_registry` can own every install path (locks and objects) without
// the policy library depending on the object implementations.
#pragma once

#include <cstdint>

namespace adx::policy {

/// The map-side interface the stripe policy drives.
class stripe_controller {
 public:
  virtual ~stripe_controller() = default;
  [[nodiscard]] virtual unsigned active_stripes() const = 0;
  [[nodiscard]] virtual unsigned min_stripes() const = 0;
  [[nodiscard]] virtual unsigned max_stripes() const = 0;
  [[nodiscard]] virtual unsigned stripe_factor() const = 0;
  /// Requests a stripe-count reconfiguration (clamped by the map; applied
  /// cooperatively before a subsequent operation).
  virtual void request_stripes(unsigned target) = 0;

  /// Bucket-array hooks: the per-stripe bucket count and its cap. A map
  /// that cannot grow its bucket arrays keeps the defaults (0 disables the
  /// probe-length growth rule).
  [[nodiscard]] virtual unsigned buckets_per_stripe() const { return 0; }
  [[nodiscard]] virtual unsigned max_buckets_per_stripe() const { return 0; }
  /// Requests a per-stripe bucket-array reconfiguration (clamped; applied
  /// cooperatively like request_stripes).
  virtual void request_buckets(unsigned /*per_stripe*/) {}
};

/// Knobs of the stripe-adapt policy; every key can be overridden through
/// `policy_spec::params` (kebab-case keys match the field comments).
struct stripe_adapt_params {
  std::int64_t skew_grow = 2;     ///< "skew-grow": grow when skew >= this
  std::int64_t load_grow = 150;   ///< "load-grow": grow when load% >= this
  std::int64_t load_shrink = 50;  ///< "load-shrink": shrink only when load% <= this
  /// "probe-grow": double the bucket arrays when the probe-length sensor
  /// (100 x chain nodes traversed per op) reaches this. Independent of the
  /// stripe votes: long chains under low contention need more buckets, not
  /// more locks. 0 disables.
  std::int64_t probe_grow = 300;
  std::uint64_t confirm = 2;      ///< "confirm": consecutive same-direction votes
  std::uint64_t cooldown = 8;     ///< "cooldown": observations muted after a request
};

/// The monitor-side interface the mode policy drives.
class mode_controller {
 public:
  virtual ~mode_controller() = default;
  /// 0 = classic blocking entry, 1 = delegated (combining) execution.
  [[nodiscard]] virtual std::int64_t current_mode() const = 0;
  virtual void request_mode(std::int64_t mode) = 0;
};

/// Knobs of the mode-adapt policy ("delegate short sections"): overridable
/// through `policy_spec::params`.
struct mode_adapt_params {
  std::int64_t delegate_below_us = 30;  ///< "delegate-below-us"
  std::int64_t classic_above_us = 80;   ///< "classic-above-us"
  std::int64_t min_waiters = 1;         ///< "min-waiters": delegation needs queueing
  std::uint64_t confirm = 2;            ///< "confirm"
  std::uint64_t cooldown = 4;           ///< "cooldown"
};

}  // namespace adx::policy
