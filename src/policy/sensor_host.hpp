// The object-generic half of the sensor catalogue (§3's "diversity" factor,
// promoted beyond locks).
//
// A `sensor_host` is any adaptive object that can name its observable state
// variables and build a core::sensor reading each one. The reconfigurable
// lock, the adaptive hash map and the adaptive monitor all implement it, so
// one `install_sensors` path wires a declarative sensor list (the
// `policy_spec::sensors` vector a run_config carries) onto any of them with
// the same validation UX: an unknown sensor name throws
// std::invalid_argument listing every name the host exposes.
#pragma once

#include <span>
#include <string_view>

#include "core/adaptive.hpp"
#include "core/sensor.hpp"
#include "policy/spec.hpp"

namespace adx::policy {

class sensor_host {
 public:
  virtual ~sensor_host() = default;

  /// Every sensor name this host can build, the sweep/validation axis.
  [[nodiscard]] virtual std::span<const std::string_view> sensor_names() const = 0;

  /// Builds a named sensor reading this host's state. Implementations
  /// should call `throw_unknown_sensor` on unrecognized names so every host
  /// reports errors identically.
  [[nodiscard]] virtual core::sensor make_sensor(std::string_view name,
                                                 std::uint64_t period) = 0;

  /// Shared error UX: "unknown sensor: X (valid: a b c)".
  [[noreturn]] static void throw_unknown_sensor(
      std::string_view name, std::span<const std::string_view> valid);
};

/// Maps a spec aggregation onto the core monitor's fold.
[[nodiscard]] core::sensor_aggregation to_core_aggregation(const sensor_spec& s);

/// Replaces `obj`'s monitor sensors with `specs`, each built by `host` and
/// registered with its spec's aggregation fold. Validation happens before the
/// first sensor is installed: on an unknown name the monitor is untouched.
///
/// `fold_in_monitor = false` registers every sensor unfolded (last-value):
/// the lock policy engine predates the core-level folds and keeps its own
/// aggregators for bit-compatible decision records, so the lock install path
/// must not fold twice. Object-level policies (hash map, monitor object)
/// use the default and consume monitor-aggregated observations directly.
void install_sensors(core::adaptive_object& obj, sensor_host& host,
                     std::span<const sensor_spec> specs, bool fold_in_monitor = true);

}  // namespace adx::policy
