#include "policy/policies.hpp"

#include <algorithm>
#include <cmath>

namespace adx::policy {

namespace {

using locks::waiting_policy;

double knob(const policy_spec& spec, std::string_view key, double fallback) {
  const auto it = spec.params.find(key);
  return it == spec.params.end() ? fallback : it->second;
}

/// The block/unblock round trip a spinner avoids: what blocking costs over
/// spinning on the lock()/unlock() instruction paths (Table 4-5).
double default_break_even_us(const locks::lock_cost_model& cost) {
  return (cost.blocking_lock_overhead + cost.blocking_unlock_overhead -
          cost.spin_lock_overhead - cost.spin_unlock_overhead)
      .us();
}

std::int64_t clamp_spins(double spins, std::int64_t cap) {
  if (spins < 1.0) return 1;
  if (spins > static_cast<double>(cap)) return cap;
  return static_cast<std::int64_t>(spins);
}

// ---------------------------------------------------------------- simple-adapt

class simple_adapt_core final : public decision_core {
 public:
  simple_adapt_core(const policy_spec& spec, const locks::simple_adapt_params& d)
      : threshold_(static_cast<std::int64_t>(knob(spec, "waiting_threshold",
                                                  static_cast<double>(d.waiting_threshold)))),
        n_(static_cast<std::int64_t>(knob(spec, "n", static_cast<double>(d.n)))),
        spin_cap_(static_cast<std::int64_t>(knob(spec, "spin_cap",
                                                 static_cast<double>(d.spin_cap)))),
        pure_spin_on_idle_(knob(spec, "pure_spin_on_idle",
                                d.pure_spin_on_idle ? 1.0 : 0.0) != 0.0) {}

  [[nodiscard]] std::string_view name() const override { return "simple-adapt"; }

  std::optional<waiting_policy> decide(const core::observation& obs,
                                       std::int64_t value,
                                       const waiting_policy& cur) override {
    if (obs.sensor != "no-of-waiting-threads") return std::nullopt;
    const std::int64_t waiting = value;
    if (waiting == 0) {
      return pure_spin_on_idle_ ? waiting_policy::pure_spin(spin_cap_)
                                : waiting_policy::mixed(spin_cap_);
    }
    std::int64_t spins = cur.spin_time;
    if (waiting <= threshold_) {
      spins += n_;
    } else {
      spins -= 2 * n_;
    }
    spins = std::min(spins, spin_cap_);
    if (spins <= 0) return waiting_policy::pure_sleep();
    return waiting_policy::mixed(spins);
  }

 private:
  std::int64_t threshold_;
  std::int64_t n_;
  std::int64_t spin_cap_;
  bool pure_spin_on_idle_;
};

// ------------------------------------------------------------------ break-even

class break_even_core final : public decision_core {
 public:
  break_even_core(const policy_spec& spec, const locks::simple_adapt_params& d,
                  const locks::lock_cost_model& cost)
      : break_even_us_(knob(spec, "break_even_us", default_break_even_us(cost))),
        spin_cap_(static_cast<std::int64_t>(knob(spec, "spin_cap",
                                                 static_cast<double>(d.spin_cap)))),
        spin_pause_us_(cost.spin_pause.us()) {}

  [[nodiscard]] std::string_view name() const override { return "break-even"; }

  std::optional<waiting_policy> decide(const core::observation& obs,
                                       std::int64_t value,
                                       const waiting_policy& /*cur*/) override {
    if (obs.sensor == "lock-hold-time") {
      hold_us_ = static_cast<double>(value);
      return std::nullopt;
    }
    if (obs.sensor != "no-of-waiting-threads") return std::nullopt;
    const auto waiting = static_cast<double>(value);
    // Spin budget: just enough iterations to cover the break-even window.
    const auto spins = clamp_spins(break_even_us_ / spin_pause_us_, spin_cap_);
    if (value == 0) return waiting_policy::mixed(spins);
    // Expected wait = queue depth × smoothed hold time. Below break-even a
    // spinner wins; above it the block/unblock round trip is cheaper.
    const double expected_wait_us = waiting * hold_us_;
    if (hold_us_ <= 0.0 || expected_wait_us <= break_even_us_) {
      return waiting_policy::mixed(spins);
    }
    return waiting_policy::pure_sleep();
  }

 private:
  double break_even_us_;
  std::int64_t spin_cap_;
  double spin_pause_us_;
  double hold_us_{0.0};
};

// ------------------------------------------------------------------- ewma-hold

class ewma_hold_core final : public decision_core {
 public:
  ewma_hold_core(const policy_spec& spec, const locks::simple_adapt_params& d,
                 const locks::lock_cost_model& cost)
      : spin_cap_(static_cast<std::int64_t>(knob(spec, "spin_cap",
                                                 static_cast<double>(d.spin_cap)))),
        spin_pause_us_(cost.spin_pause.us()) {}

  [[nodiscard]] std::string_view name() const override { return "ewma-hold"; }

  std::optional<waiting_policy> decide(const core::observation& obs,
                                       std::int64_t value,
                                       const waiting_policy& /*cur*/) override {
    if (obs.sensor != "lock-hold-time") return std::nullopt;
    if (value <= 0) return std::nullopt;  // no completed hold observed yet
    // Spin long enough to cover one smoothed critical section; a section the
    // cap cannot cover means waiters should block instead of burn the cap.
    const double spins = std::ceil(static_cast<double>(value) / spin_pause_us_);
    if (spins > static_cast<double>(spin_cap_)) return waiting_policy::pure_sleep();
    return waiting_policy::mixed(clamp_spins(spins, spin_cap_));
  }

 private:
  std::int64_t spin_cap_;
  double spin_pause_us_;
};

// ---------------------------------------------------------------- multi-sensor

class multi_sensor_core final : public decision_core {
 public:
  multi_sensor_core(const policy_spec& spec, const locks::simple_adapt_params& d,
                    const locks::lock_cost_model& cost)
      : threshold_(static_cast<std::int64_t>(knob(spec, "waiting_threshold",
                                                  static_cast<double>(d.waiting_threshold)))),
        spin_cap_(static_cast<std::int64_t>(knob(spec, "spin_cap",
                                                 static_cast<double>(d.spin_cap)))),
        spin_budget_us_(knob(spec, "spin_budget_us", default_break_even_us(cost))),
        spin_pause_us_(cost.spin_pause.us()) {}

  [[nodiscard]] std::string_view name() const override { return "multi-sensor"; }

  std::optional<waiting_policy> decide(const core::observation& obs,
                                       std::int64_t value,
                                       const waiting_policy& /*cur*/) override {
    if (obs.sensor == "lock-hold-time") {
      hold_us_ = static_cast<double>(value);
      return std::nullopt;
    }
    if (obs.sensor != "no-of-waiting-threads") return std::nullopt;
    if (value == 0) return waiting_policy::mixed(spin_cap_);
    // Spin only when both signals agree it is cheap: a short queue AND short
    // sections. A deep queue or a long hold alone flips the lock to blocking.
    const bool short_queue = value <= threshold_;
    const bool short_holds = hold_us_ <= spin_budget_us_;
    if (!short_queue || !short_holds) return waiting_policy::pure_sleep();
    const double cover_us = std::max(hold_us_, spin_pause_us_);
    return waiting_policy::mixed(
        clamp_spins(std::ceil(cover_us / spin_pause_us_), spin_cap_));
  }

 private:
  std::int64_t threshold_;
  std::int64_t spin_cap_;
  double spin_budget_us_;
  double spin_pause_us_;
  double hold_us_{0.0};
};

}  // namespace

std::unique_ptr<decision_core> make_simple_adapt_core(
    const policy_spec& spec, const locks::simple_adapt_params& defaults,
    const locks::lock_cost_model& /*cost*/) {
  return std::make_unique<simple_adapt_core>(spec, defaults);
}

std::unique_ptr<decision_core> make_break_even_core(
    const policy_spec& spec, const locks::simple_adapt_params& defaults,
    const locks::lock_cost_model& cost) {
  return std::make_unique<break_even_core>(spec, defaults, cost);
}

std::unique_ptr<decision_core> make_ewma_hold_core(
    const policy_spec& spec, const locks::simple_adapt_params& defaults,
    const locks::lock_cost_model& cost) {
  return std::make_unique<ewma_hold_core>(spec, defaults, cost);
}

std::unique_ptr<decision_core> make_multi_sensor_core(
    const policy_spec& spec, const locks::simple_adapt_params& defaults,
    const locks::lock_cost_model& cost) {
  return std::make_unique<multi_sensor_core>(spec, defaults, cost);
}

}  // namespace adx::policy
