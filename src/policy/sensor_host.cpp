#include "policy/sensor_host.hpp"

#include <stdexcept>
#include <string>

#include "cli/parse_error.hpp"

namespace adx::policy {

void sensor_host::throw_unknown_sensor(std::string_view name,
                                       std::span<const std::string_view> valid) {
  throw cli::unknown_value("sensor", name, valid);
}

core::sensor_aggregation to_core_aggregation(const sensor_spec& s) {
  switch (s.agg) {
    case aggregation::last_value: return core::sensor_aggregation::last_value();
    case aggregation::ewma: return core::sensor_aggregation::ewma(s.ewma_alpha);
    case aggregation::max_in_window:
      return core::sensor_aggregation::max_in_window(s.window);
  }
  return {};
}

void install_sensors(core::adaptive_object& obj, sensor_host& host,
                     std::span<const sensor_spec> specs, bool fold_in_monitor) {
  // Validate the whole list first so a bad name cannot leave the monitor
  // half-replaced.
  const auto valid = host.sensor_names();
  for (const auto& s : specs) {
    bool known = false;
    for (const auto n : valid) known = known || n == s.name;
    if (!known) sensor_host::throw_unknown_sensor(s.name, valid);
  }
  obj.object_monitor().clear_sensors();
  for (const auto& s : specs) {
    obj.object_monitor().add_sensor(
        host.make_sensor(s.name, s.period),
        fold_in_monitor ? to_core_aggregation(s) : core::sensor_aggregation{});
  }
}

}  // namespace adx::policy
