// adx::policy — declarative adaptation-policy specification.
//
// A `policy_spec` names a registered adaptation policy P, its numeric knobs,
// the sensors it observes (each with its own sampling period and windowed
// aggregation), and any decision-filter wrappers (hysteresis / deadband /
// cooldown) stacked around it. It is pure data: serializable JSON that rides
// inside `adx::run_config` (so a sweep cell or a failing checker run fully
// records which policy it ran), buildable fluently, comparable for equality.
//
// This header is deliberately dependency-free (stdlib + the obs JSON
// helpers): `locks::lock_params` embeds a policy_spec without the locks
// library depending on the policy *engine*. The engine — the registry,
// sensor sources, decision cores and combinators that turn a spec into a
// running policy — lives above locks in src/policy/{registry,engine,...}.
#pragma once

#include <charconv>
#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cli/parse_error.hpp"
#include "obs/json.hpp"
#include "obs/json_reader.hpp"

namespace adx::policy {

/// Where the policy core executes relative to the adapted object's
/// operations. `sync` is the paper's closely-coupled loop: every k-th
/// instrumentation point runs M and P inline and charges their cost to the
/// operating thread. `async` decouples them: instrumentation points only
/// queue observations (the object's monitor runs loosely coupled, so the
/// fast path carries zero policy cost) and the periodic policy runtime
/// (`policy::async_runtime`) drains and evaluates them out-of-band at fixed
/// virtual-time ticks.
enum class exec_mode : std::uint8_t {
  sync,
  async,
};

[[nodiscard]] constexpr const char* to_string(exec_mode m) {
  switch (m) {
    case exec_mode::sync: return "sync";
    case exec_mode::async: return "async";
  }
  return "?";
}

[[nodiscard]] inline exec_mode parse_exec_mode(std::string_view s) {
  if (s == "sync") return exec_mode::sync;
  if (s == "async") return exec_mode::async;
  throw cli::unknown_value("mode", s, {"sync", "async"});
}

/// How a sensor's raw samples are folded into the value the policy sees.
enum class aggregation : std::uint8_t {
  last_value,     ///< the newest sample, unfiltered (the paper's monitor)
  ewma,           ///< exponentially weighted moving average (smoothing)
  max_in_window,  ///< max over the last `window` samples (spike detection)
};

[[nodiscard]] constexpr const char* to_string(aggregation a) {
  switch (a) {
    case aggregation::last_value: return "last-value";
    case aggregation::ewma: return "ewma";
    case aggregation::max_in_window: return "max-in-window";
  }
  return "?";
}

[[nodiscard]] inline aggregation parse_aggregation(std::string_view s) {
  if (s == "last-value") return aggregation::last_value;
  if (s == "ewma") return aggregation::ewma;
  if (s == "max-in-window") return aggregation::max_in_window;
  throw std::invalid_argument("unknown aggregation: " + std::string(s) +
                              " (valid: last-value ewma max-in-window)");
}

/// One named sensor attached to the adapted lock's monitor.
struct sensor_spec {
  std::string name = "no-of-waiting-threads";
  /// Sampling period in triggers: sample once every `period`-th
  /// instrumentation point (the paper's lock monitor uses 2). 0 is
  /// normalized to 1 by core::sensor.
  std::uint64_t period = 2;
  aggregation agg = aggregation::last_value;
  double ewma_alpha = 0.25;  ///< weight of the newest sample (ewma only)
  std::uint64_t window = 8;  ///< sample window size (max-in-window only)

  friend bool operator==(const sensor_spec&, const sensor_spec&) = default;
};

/// One decision-filter combinator wrapped around the policy core. Wrappers
/// suppress Ψ thrash (§4: Waiting-Threshold and n must be tuned per lock —
/// these make a mis-tuned core cheap instead of pathological).
struct wrapper_spec {
  /// "hysteresis" | "deadband" | "cooldown".
  std::string kind = "hysteresis";
  /// hysteresis: the core must produce the *same* desired configuration this
  /// many consecutive times before it is applied.
  std::uint64_t confirm = 2;
  /// deadband: a same-shape reconfiguration moving spin-time by less than
  /// this many iterations is suppressed.
  std::int64_t band = 8;
  /// cooldown: after an applied Ψ, suppress further decisions for this many
  /// observations.
  std::uint64_t observations = 4;

  friend bool operator==(const wrapper_spec&, const wrapper_spec&) = default;
};

struct policy_spec {
  /// Registered policy name. "simple-adapt" with no params/sensors/wrappers
  /// is the default and preserves the built-in adaptive-lock behavior
  /// bit-for-bit.
  std::string name = "simple-adapt";
  /// Policy-specific numeric knobs; absent keys take the policy's defaults
  /// (for simple-adapt, the lock's `simple_adapt_params`).
  std::map<std::string, double, std::less<>> params;
  /// Sensor set; empty means the policy's default sensors.
  std::vector<sensor_spec> sensors;
  /// Decision filters, outermost first.
  std::vector<wrapper_spec> wrappers;
  /// sync: policy runs inline at instrumentation points (the default).
  /// async: observations queue and the periodic runtime evaluates them.
  exec_mode mode = exec_mode::sync;
  /// Async runtime tick period in virtual microseconds (async mode only).
  std::uint64_t period_us = kDefaultPeriodUs;
  /// Opt this object into the cross-object coordinator's global
  /// rebalancing (async mode only).
  bool coordinate = false;

  static constexpr std::uint64_t kDefaultPeriodUs = 50;

  friend bool operator==(const policy_spec&, const policy_spec&) = default;

  /// True for the spec value that means "the built-in simple-adapt loop with
  /// the lock's own parameters" — the factory's bit-identical fast path.
  /// Any async spec is non-default: even async simple-adapt must go through
  /// the engine so the runtime can drain its queued observations.
  [[nodiscard]] bool is_default() const {
    return name == "simple-adapt" && params.empty() && sensors.empty() &&
           wrappers.empty() && mode == exec_mode::sync && !coordinate;
  }

  // ------- fluent builder -------

  policy_spec& with_name(std::string n) {
    name = std::move(n);
    return *this;
  }
  policy_spec& with_param(std::string key, double value) {
    params[std::move(key)] = value;
    return *this;
  }
  policy_spec& with_sensor(sensor_spec s) {
    sensors.push_back(std::move(s));
    return *this;
  }
  policy_spec& with_hysteresis(std::uint64_t confirm = 2) {
    wrapper_spec w;
    w.kind = "hysteresis";
    w.confirm = confirm;
    wrappers.push_back(w);
    return *this;
  }
  policy_spec& with_deadband(std::int64_t band = 8) {
    wrapper_spec w;
    w.kind = "deadband";
    w.band = band;
    wrappers.push_back(w);
    return *this;
  }
  policy_spec& with_cooldown(std::uint64_t observations = 4) {
    wrapper_spec w;
    w.kind = "cooldown";
    w.observations = observations;
    wrappers.push_back(w);
    return *this;
  }
  policy_spec& with_mode(exec_mode m) {
    mode = m;
    return *this;
  }
  /// Switch to async execution, optionally with a runtime tick period.
  policy_spec& with_async(std::uint64_t period = kDefaultPeriodUs) {
    mode = exec_mode::async;
    period_us = period;
    return *this;
  }
  policy_spec& with_coordinate(bool on = true) {
    coordinate = on;
    return *this;
  }

  // ------- JSON (single-line; from_json(to_json(s)) == s) -------

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static policy_spec from_json(std::string_view text);
  /// Parses from an already-parsed JSON value (how run_config embeds specs).
  [[nodiscard]] static policy_spec from_json_value(const obs::jvalue& v);
};

namespace detail {

/// Shortest round-trip formatting for spec numbers: param values survive
/// to_json/from_json bit-exactly (obs::json_num's %.6g would not).
[[nodiscard]] inline std::string spec_num(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

}  // namespace detail

inline std::string policy_spec::to_json() const {
  std::ostringstream os;
  os << "{\"name\":" << obs::json_str(name) << ",\"params\":{";
  bool first = true;
  for (const auto& [k, v] : params) {
    if (!first) os << ',';
    first = false;
    os << obs::json_str(k) << ':' << detail::spec_num(v);
  }
  os << "},\"sensors\":[";
  first = true;
  for (const auto& s : sensors) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":" << obs::json_str(s.name) << ",\"period\":" << s.period
       << ",\"agg\":" << obs::json_str(to_string(s.agg))
       << ",\"ewma_alpha\":" << detail::spec_num(s.ewma_alpha)
       << ",\"window\":" << s.window << '}';
  }
  os << "],\"wrappers\":[";
  first = true;
  for (const auto& w : wrappers) {
    if (!first) os << ',';
    first = false;
    os << "{\"kind\":" << obs::json_str(w.kind) << ",\"confirm\":" << w.confirm
       << ",\"band\":" << w.band << ",\"observations\":" << w.observations << '}';
  }
  os << "]";
  // The execution-mode keys are emitted only when they deviate from the
  // defaults so every pre-existing spec (and the replay journals that embed
  // them) keeps a byte-identical JSON form.
  if (mode != exec_mode::sync) os << ",\"mode\":" << obs::json_str(to_string(mode));
  if (period_us != kDefaultPeriodUs) os << ",\"period_us\":" << period_us;
  if (coordinate) os << ",\"coordinate\":true";
  os << '}';
  return os.str();
}

inline policy_spec policy_spec::from_json_value(const obs::jvalue& v) {
  if (!v.is_object()) {
    throw std::invalid_argument("policy_spec: expected a JSON object");
  }
  const auto& o = v.object();
  policy_spec spec;
  if (const auto* n = obs::json_find(o, "name")) spec.name = n->str();
  if (const auto* p = obs::json_find(o, "params")) {
    for (const auto& [k, pv] : p->object()) spec.params[k] = pv.number<double>();
  }
  if (const auto* ss = obs::json_find(o, "sensors")) {
    for (const auto& sv : ss->array()) {
      const auto& so = sv.object();
      sensor_spec s;
      if (const auto* f = obs::json_find(so, "name")) s.name = f->str();
      if (const auto* f = obs::json_find(so, "period")) s.period = f->number<std::uint64_t>();
      if (const auto* f = obs::json_find(so, "agg")) s.agg = parse_aggregation(f->str());
      if (const auto* f = obs::json_find(so, "ewma_alpha")) s.ewma_alpha = f->number<double>();
      if (const auto* f = obs::json_find(so, "window")) s.window = f->number<std::uint64_t>();
      spec.sensors.push_back(std::move(s));
    }
  }
  if (const auto* ws = obs::json_find(o, "wrappers")) {
    for (const auto& wv : ws->array()) {
      const auto& wo = wv.object();
      wrapper_spec w;
      if (const auto* f = obs::json_find(wo, "kind")) w.kind = f->str();
      if (const auto* f = obs::json_find(wo, "confirm")) w.confirm = f->number<std::uint64_t>();
      if (const auto* f = obs::json_find(wo, "band")) w.band = f->number<std::int64_t>();
      if (const auto* f = obs::json_find(wo, "observations")) {
        w.observations = f->number<std::uint64_t>();
      }
      if (w.kind != "hysteresis" && w.kind != "deadband" && w.kind != "cooldown") {
        throw std::invalid_argument("policy_spec: unknown wrapper kind: " + w.kind +
                                    " (valid: hysteresis deadband cooldown)");
      }
      spec.wrappers.push_back(std::move(w));
    }
  }
  if (const auto* m = obs::json_find(o, "mode")) spec.mode = parse_exec_mode(m->str());
  if (const auto* p = obs::json_find(o, "period_us")) {
    spec.period_us = p->number<std::uint64_t>();
  }
  if (const auto* c = obs::json_find(o, "coordinate")) spec.coordinate = c->boolean();
  return spec;
}

inline policy_spec policy_spec::from_json(std::string_view text) {
  const auto root = obs::json_reader(text, "policy_spec").parse();
  return from_json_value(root);
}

}  // namespace adx::policy
