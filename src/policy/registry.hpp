// The policy registry: the by-name catalogue of adaptation policies and the
// single registration surface (`policy_registry`) that turns a
// `policy_spec` into a live monitor + policy pair on any adaptive object.
//
// One class owns every install path:
//   - lock family   (simple-adapt, break-even, ewma-hold, multi-sensor):
//     installed on a `locks::adaptive_lock` — the layer `locks::factory`
//     calls through and the sweep axis for adx-check (`--policies=all`).
//   - map family    (stripe-adapt): installed on anything exposing a
//     `stripe_controller` (the adaptive hash map).
//   - monitor family (mode-adapt): installed on anything exposing a
//     `mode_controller` (the adaptive monitor).
//
// Every install consumes the same `policy_spec` schema — name, params,
// sensors, wrappers, and the execution mode (`sync` runs the policy inline
// at feedback points; `async` switches the object's monitor to loose
// coupling so observations queue for the periodic policy runtime,
// `policy::async_runtime`, and the fast path carries zero policy cost).
//
// The free functions at the bottom (`install`, `all_policies`, ...) are the
// pre-unification surface kept as thin wrappers; new code should call
// `policy_registry` directly.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "core/adaptive.hpp"
#include "locks/adaptive_lock.hpp"
#include "locks/cost_model.hpp"
#include "locks/factory.hpp"
#include "policy/controllers.hpp"
#include "policy/sensor_host.hpp"
#include "policy/spec.hpp"

namespace adx::policy {

/// Which kind of adaptive object a registered policy drives.
enum class policy_family : std::uint8_t { lock, map, monitor };

[[nodiscard]] constexpr const char* to_string(policy_family f) {
  switch (f) {
    case policy_family::lock: return "lock";
    case policy_family::map: return "map";
    case policy_family::monitor: return "monitor";
  }
  return "?";
}

struct policy_info {
  std::string_view name;
  std::string_view description;
  policy_family family = policy_family::lock;
};

/// The unified registration API. All members are static — the catalogue is
/// compiled in; there is no mutable global state.
class policy_registry {
 public:
  /// Every registered policy across all families, in registration order.
  [[nodiscard]] static std::span<const policy_info> catalogue();

  /// Names within one family (the `--policies` sweep axis is the lock
  /// family).
  [[nodiscard]] static std::vector<std::string_view> names(policy_family f);

  /// Validates a name within a family; throws std::invalid_argument listing
  /// that family's valid names (shared cli::unknown_value UX).
  [[nodiscard]] static std::string_view parse(std::string_view name,
                                              policy_family f);

  /// The canonical spec for a registered policy of any family: its name
  /// plus its default sensor set. For the lock family, sensor periods come
  /// from `sample_period`; for "simple-adapt" the sensors vector is left
  /// empty so the spec stays `is_default()` and the lock factory keeps the
  /// built-in bit-identical path.
  [[nodiscard]] static policy_spec default_spec(std::string_view name,
                                                std::uint64_t sample_period = 2);

  /// Installs the lock-family policy described by `params.policy` on `lk`:
  /// replaces the monitor's sensor set with the spec's (falling back to the
  /// policy's default sensors), builds the wrapped decision core, and sets
  /// it as the lock's adaptation policy. Throws std::invalid_argument on
  /// unknown policy, sensor or wrapper names.
  static void install(locks::adaptive_lock& lk, const locks::lock_params& params,
                      const locks::lock_cost_model& cost);

  /// Installs a map-family policy ("stripe-adapt") driving `ctl`, with
  /// sensors installed on `obj`'s monitor through `host`.
  static void install(core::adaptive_object& obj, sensor_host& host,
                      stripe_controller& ctl, const policy_spec& spec);

  /// Installs a monitor-family policy ("mode-adapt") driving `ctl`.
  static void install(core::adaptive_object& obj, sensor_host& host,
                      mode_controller& ctl, const policy_spec& spec);
};

// ------------------------------------------------------- legacy wrappers
// The pre-unification lock-family surface. Deprecated: call
// `policy_registry` directly (see DESIGN.md's migration note).

/// Every lock-family policy, in registration order.
[[nodiscard]] std::span<const policy_info> all_policies();
[[nodiscard]] std::vector<std::string_view> all_policy_names();

/// Validates a lock-family policy name; throws std::invalid_argument
/// listing every registered name on unknown input.
[[nodiscard]] std::string_view parse_policy_name(std::string_view name);

/// policy_registry::default_spec restricted to the lock family.
[[nodiscard]] policy_spec default_spec(std::string_view name,
                                       std::uint64_t sample_period = 2);

/// policy_registry::install for locks (the factory's historical entry).
void install(locks::adaptive_lock& lk, const locks::lock_params& params,
             const locks::lock_cost_model& cost);

}  // namespace adx::policy
