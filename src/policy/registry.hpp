// The policy registry: the by-name catalogue of adaptation policies and the
// single entry point (`install`) that turns a `policy_spec` into a live
// monitor + policy pair on an adaptive lock.
//
// This is the layer the lock factory calls through, and the sweep axis for
// adx-check (`--policies=all`) and the `bench_abl_policy` scenario.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "locks/adaptive_lock.hpp"
#include "locks/cost_model.hpp"
#include "locks/factory.hpp"
#include "policy/spec.hpp"

namespace adx::policy {

struct policy_info {
  std::string_view name;
  std::string_view description;
};

/// Every registered policy, in registration order.
[[nodiscard]] std::span<const policy_info> all_policies();
[[nodiscard]] std::vector<std::string_view> all_policy_names();

/// Validates a policy name; throws std::invalid_argument listing every
/// registered name on unknown input (same UX as locks::parse_lock_kind).
[[nodiscard]] std::string_view parse_policy_name(std::string_view name);

/// The canonical spec for a registered policy: its name plus its default
/// sensor set (periods taken from `sample_period`). For "simple-adapt" the
/// sensors vector is left empty so the spec stays `is_default()` and the
/// factory keeps the built-in bit-identical path.
[[nodiscard]] policy_spec default_spec(std::string_view name,
                                       std::uint64_t sample_period = 2);

/// Installs the policy described by `params.policy` on `lk`: replaces the
/// monitor's sensor set with the spec's (falling back to the policy's default
/// sensors), builds the wrapped decision core, and sets it as the lock's
/// adaptation policy. Throws std::invalid_argument on unknown policy, sensor
/// or wrapper names.
void install(locks::adaptive_lock& lk, const locks::lock_params& params,
             const locks::lock_cost_model& cost);

}  // namespace adx::policy
