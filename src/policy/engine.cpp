#include "policy/engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace adx::policy {

// ---------------------------------------------------------------- aggregator

aggregator::aggregator(const sensor_spec& s)
    : agg_(s.agg), alpha_(s.ewma_alpha), window_(s.window == 0 ? 1 : s.window) {}

std::int64_t aggregator::feed(std::int64_t raw) {
  switch (agg_) {
    case aggregation::last_value:
      value_ = raw;
      break;
    case aggregation::ewma:
      if (!primed_) {
        ewma_ = static_cast<double>(raw);
        primed_ = true;
      } else {
        ewma_ = alpha_ * static_cast<double>(raw) + (1.0 - alpha_) * ewma_;
      }
      value_ = static_cast<std::int64_t>(std::llround(ewma_));
      break;
    case aggregation::max_in_window:
      recent_.push_back(raw);
      if (recent_.size() > window_) recent_.pop_front();
      value_ = *std::max_element(recent_.begin(), recent_.end());
      break;
  }
  return value_;
}

// ---------------------------------------------------------------- combinators

namespace {

class hysteresis_core final : public decision_core {
 public:
  hysteresis_core(std::unique_ptr<decision_core> inner, std::uint64_t confirm)
      : inner_(std::move(inner)), confirm_(confirm == 0 ? 1 : confirm) {
    name_ = std::string(inner_->name()) + "+hysteresis";
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

  std::optional<locks::waiting_policy> decide(const core::observation& obs,
                                              std::int64_t value,
                                              const locks::waiting_policy& cur) override {
    auto want = inner_->decide(obs, value, cur);
    if (!want) {
      streak_ = 0;
      return std::nullopt;
    }
    if (pending_ && *want == *pending_) {
      ++streak_;
    } else {
      pending_ = *want;
      streak_ = 1;
    }
    if (streak_ < confirm_) return std::nullopt;
    streak_ = 0;
    pending_.reset();
    return want;
  }

  void notify_applied() override { inner_->notify_applied(); }

 private:
  std::unique_ptr<decision_core> inner_;
  std::uint64_t confirm_;
  std::optional<locks::waiting_policy> pending_;
  std::uint64_t streak_{0};
  std::string name_;
};

/// True when two configurations have the same *shape* (pure spin / pure
/// blocking / spin-then-block) and differ only in the spin-time magnitude.
bool same_shape(const locks::waiting_policy& a, const locks::waiting_policy& b) {
  return (a.spin_time > 0) == (b.spin_time > 0) &&
         (a.sleep_time > 0) == (b.sleep_time > 0) &&
         (a.delay_time > 0) == (b.delay_time > 0) && a.timeout_us == b.timeout_us;
}

class deadband_core final : public decision_core {
 public:
  deadband_core(std::unique_ptr<decision_core> inner, std::int64_t band)
      : inner_(std::move(inner)), band_(band < 0 ? 0 : band) {
    name_ = std::string(inner_->name()) + "+deadband";
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

  std::optional<locks::waiting_policy> decide(const core::observation& obs,
                                              std::int64_t value,
                                              const locks::waiting_policy& cur) override {
    auto want = inner_->decide(obs, value, cur);
    if (!want) return std::nullopt;
    // Shape changes (spin↔block) always pass; small spin-time nudges within
    // the band are suppressed — they cost a Ψ (1R+1W + configure overhead)
    // for a negligible behavioral change.
    if (same_shape(*want, cur) &&
        std::llabs(want->spin_time - cur.spin_time) < band_) {
      return std::nullopt;
    }
    return want;
  }

  void notify_applied() override { inner_->notify_applied(); }

 private:
  std::unique_ptr<decision_core> inner_;
  std::int64_t band_;
  std::string name_;
};

class cooldown_core final : public decision_core {
 public:
  cooldown_core(std::unique_ptr<decision_core> inner, std::uint64_t observations)
      : inner_(std::move(inner)), cooldown_(observations) {
    name_ = std::string(inner_->name()) + "+cooldown";
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

  std::optional<locks::waiting_policy> decide(const core::observation& obs,
                                              std::int64_t value,
                                              const locks::waiting_policy& cur) override {
    // The inner core still sees every observation (its state advances), but
    // its decisions are discarded while the cooldown runs.
    auto want = inner_->decide(obs, value, cur);
    if (remaining_ > 0) {
      --remaining_;
      return std::nullopt;
    }
    return want;
  }

  void notify_applied() override {
    remaining_ = cooldown_;
    inner_->notify_applied();
  }

 private:
  std::unique_ptr<decision_core> inner_;
  std::uint64_t cooldown_;
  std::uint64_t remaining_{0};
  std::string name_;
};

}  // namespace

std::unique_ptr<decision_core> wrap_hysteresis(std::unique_ptr<decision_core> inner,
                                               std::uint64_t confirm) {
  return std::make_unique<hysteresis_core>(std::move(inner), confirm);
}

std::unique_ptr<decision_core> wrap_deadband(std::unique_ptr<decision_core> inner,
                                             std::int64_t band) {
  return std::make_unique<deadband_core>(std::move(inner), band);
}

std::unique_ptr<decision_core> wrap_cooldown(std::unique_ptr<decision_core> inner,
                                             std::uint64_t observations) {
  return std::make_unique<cooldown_core>(std::move(inner), observations);
}

// -------------------------------------------------------------------- engine

engine::engine(locks::reconfigurable_lock& lk, std::string spec_name,
               std::unique_ptr<decision_core> core, std::vector<sensor_spec> sensors)
    : lk_(&lk), name_(std::move(spec_name)), core_(std::move(core)),
      specs_(std::move(sensors)) {
  aggs_.reserve(specs_.size());
  for (const auto& s : specs_) aggs_.emplace_back(s);
}

void engine::observe(const core::observation& obs) {
  std::int64_t value = obs.value;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == obs.sensor) {
      value = aggs_[i].feed(obs.value);
      break;
    }
  }
  const auto cur = lk_->current_policy();
  auto want = core_->decide(obs, value, cur);
  if (!want || *want == cur) return;
  if (lk_->apply_waiting_policy(*want)) {
    note_decision();
    core_->notify_applied();
    last_ = {value, *want, render_sensor_vector()};
  }
}

std::string engine::render_sensor_vector() const {
  std::string out;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += specs_[i].name;
    out += '=';
    out += std::to_string(aggs_[i].value());
  }
  return out;
}

}  // namespace adx::policy
