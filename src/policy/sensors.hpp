// Sensor catalogue for lock adaptation policies.
//
// Generalizes the adaptive lock's single hard-wired `no-of-waiting-threads`
// sensor into a named family, each reading a different state variable of the
// adapted lock (§3's "diversity" factor). All sources are host-side reads of
// state the lock already maintains — attaching any of them charges no extra
// virtual time beyond the per-observation sample cost the feedback loop
// already bills.
//
// The catalogue is exposed two ways: the historical `make_lock_sensor`
// free function, and `lock_sensor_host` — the lock's implementation of the
// object-generic `policy::sensor_host` concept, which routes the same
// catalogue through the shared `install_sensors` path the adaptive hash map
// and adaptive monitor use.
#pragma once

#include <span>
#include <string_view>

#include "core/sensor.hpp"
#include "locks/reconfigurable_lock.hpp"
#include "policy/sensor_host.hpp"

namespace adx::policy {

/// Names of every known lock sensor, the sweep/validation axis.
[[nodiscard]] std::span<const std::string_view> all_sensor_names();

/// Builds a named sensor reading `lk`'s state:
///   no-of-waiting-threads  current waiter count (the paper's sensor)
///   lock-hold-time         duration of the last completed hold, in µs
///   handoff-latency        last release→acquire gap, in µs
///   acquire-rate           acquisitions since the previous sample
/// Throws std::invalid_argument listing the valid names on unknown `name`.
[[nodiscard]] core::sensor make_lock_sensor(std::string_view name,
                                            locks::reconfigurable_lock& lk,
                                            std::uint64_t period);

/// The reconfigurable lock's `sensor_host` view: the adapter that lets the
/// lock family share the object-generic sensor-install path. The wrapped
/// lock must outlive any sensor built here.
class lock_sensor_host final : public sensor_host {
 public:
  explicit lock_sensor_host(locks::reconfigurable_lock& lk) : lk_(&lk) {}

  [[nodiscard]] std::span<const std::string_view> sensor_names() const override {
    return all_sensor_names();
  }

  [[nodiscard]] core::sensor make_sensor(std::string_view name,
                                         std::uint64_t period) override {
    return make_lock_sensor(name, *lk_, period);
  }

 private:
  locks::reconfigurable_lock* lk_;
};

}  // namespace adx::policy
