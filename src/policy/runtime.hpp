// The periodic policy runtime: asynchronous, cross-object adaptation.
//
// All policies used to run synchronously inside lock/object operations —
// exactly the monitoring-cost tradeoff §3 of the paper warns about: every
// k-th instrumentation point charged monitor sampling and policy execution
// to the operating thread. `async_runtime` decouples them, in the style of
// APEX's apex_register_periodic_policy:
//
//   - A spec with `mode: async` makes the registry install the object's
//     monitor loosely coupled, so instrumentation points only queue
//     observations (the queue is the in-sim stand-in for the native side's
//     lock-free snapshot ring) and the acquire/release fast path carries
//     ZERO policy cost in virtual time.
//   - A low-priority daemon — a ct task here, a real thread in src/native
//     (native::policy_daemon) — wakes at fixed virtual-time ticks, drains
//     every registered object's queue through `adaptive_object::pump()`,
//     runs the installed policy core out-of-band, and charges the monitor /
//     policy / Ψ costs to *itself* on its own processor.
//   - On top, a cross-object coordinator observes every registration
//     globally and rebalances: locks idle for `idle_ticks` consecutive
//     ticks are demoted to cheap spinning (their waiters, if any ever
//     arrive, stop paying blocking-handoff cost), and the aggregate stripe
//     count across coordinated maps is capped under `stripe_budget`
//     (memory pressure), shrinking the widest map first.
//
// Determinism contract: daemon wakeups are ordinary simulator events at
// start + k*period, so runs remain bit-reproducible (FIFO tie-break) and
// adx-check oracles / ddmin replay apply unchanged. The daemon exits when
// it is the last live thread, so `run()`/`run_all()` still drain.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "ct/context.hpp"
#include "ct/runtime.hpp"
#include "ct/task.hpp"
#include "locks/adaptive_lock.hpp"
#include "locks/cost_model.hpp"
#include "locks/factory.hpp"
#include "policy/controllers.hpp"
#include "policy/spec.hpp"

namespace adx::policy {

/// Cross-object rebalancing knobs.
struct coordinator_config {
  /// Consecutive ticks with zero new acquisitions after which a coordinated
  /// lock is demoted. 0 disables idle demotion.
  std::uint64_t idle_ticks = 4;
  /// The cheap waiting policy idle locks are demoted to.
  locks::waiting_policy idle_policy = locks::waiting_policy::pure_spin(16);
  /// Aggregate active-stripe budget across coordinated maps; exceeding it
  /// shrinks the widest map by its stripe factor. 0 disables the cap.
  unsigned stripe_budget = 0;
};

struct runtime_config {
  /// Virtual-time tick period of the daemon.
  sim::vdur period = sim::microseconds(
      static_cast<double>(policy_spec::kDefaultPeriodUs));
  /// Processor the daemon is pinned to.
  ct::proc_id proc = 0;
  /// Fork priority; negative keeps the daemon behind application threads.
  int priority = -1;
  /// Safety stop after this many ticks; 0 = run until the workload drains.
  std::uint64_t max_ticks = 0;
  coordinator_config coord;
};

/// The periodic policy runtime. Register async-mode objects, `start()` it
/// on the ct runtime, run the workload; it stops by itself.
class async_runtime {
 public:
  explicit async_runtime(runtime_config cfg = {}) : cfg_(cfg) {}

  /// Adopts a factory-made lock whose `params.policy` ran `mode: async`
  /// through the registry. Returns false (and registers nothing) when the
  /// lock is not adaptive or the spec is synchronous — callers can pass
  /// every lock of a run unconditionally. `spec.coordinate` opts the lock
  /// into the coordinator's idle-demotion scan.
  bool adopt_lock(locks::lock_object& lk, const locks::lock_params& params,
                  const locks::lock_cost_model& cost);

  /// Adopts a generic adaptive object (the monitor): pumped every tick, no
  /// coordinator hooks.
  bool adopt_object(core::adaptive_object& obj, const policy_spec& spec,
                    const locks::lock_cost_model& cost);

  /// Adopts an adaptive map: pumped every tick; when `spec.coordinate` is
  /// set, its stripe controller joins the aggregate stripe-budget scan.
  bool adopt_map(core::adaptive_object& obj, stripe_controller& ctl,
                 const policy_spec& spec, const locks::lock_cost_model& cost);

  /// Forks the daemon task (no-op without registrations). Call after the
  /// objects exist and before `rt.run()`.
  void start(ct::runtime& rt);

  /// Hands this runtime's tick to an external coordinator (the federated
  /// cross-shard coordinator): the daemon invokes `fn(tick)` at the end of
  /// every tick, after pumping, and the *local* idle-demotion scan is
  /// disabled — idle decisions now belong to whoever observes the ticks.
  /// The stripe-budget scan stays local (stripes are place-local state).
  /// Call before start(); null detaches.
  void set_tick_observer(std::function<void(std::uint64_t)> fn) {
    tick_observer_ = std::move(fn);
  }

  // ------- external-coordination surface (federated coordinator) -------

  /// Number of locks registered with `coordinate` set, in adoption order.
  [[nodiscard]] std::size_t coordinated_locks() const;
  /// Acquisition count of the i-th coordinated lock (native read — callers
  /// must be on this runtime's shard or host-side after the run).
  [[nodiscard]] std::uint64_t coordinated_acquisitions(std::size_t i) const;

  /// Applies a demotion decided by an external coordinator to the i-th
  /// coordinated lock. Runs as a plain event on this runtime's shard: no
  /// virtual-time charge here — the cross-shard messaging latency (one
  /// lookahead each way) stands in for the coordination cost. Returns false
  /// if the lock already runs that policy.
  bool apply_external_demotion(std::size_t i, const locks::waiting_policy& pol);

  [[nodiscard]] const runtime_config& config() const { return cfg_; }
  [[nodiscard]] std::size_t registrations() const { return regs_.size(); }

  // ------- introspection (host-side, for tests and benches) -------

  /// Daemon wakeups completed.
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  /// Observations delivered to policy cores across all registrations.
  [[nodiscard]] std::uint64_t pumped() const { return pumped_; }
  /// Coordinator idle-lock demotions applied.
  [[nodiscard]] std::uint64_t demotions() const { return demotions_; }
  /// Coordinator stripe-budget shrink requests issued.
  [[nodiscard]] std::uint64_t stripe_caps() const { return stripe_caps_; }

 private:
  struct registration {
    core::adaptive_object* obj;
    locks::adaptive_lock* lock = nullptr;     ///< set for lock adoptions
    stripe_controller* stripes = nullptr;     ///< set for coordinated maps
    locks::lock_cost_model cost;
    bool coordinate = false;
    // Coordinator state (locks): acquisition count at the last tick and how
    // many consecutive ticks it stayed flat.
    std::uint64_t last_acquisitions = 0;
    std::uint64_t idle_streak = 0;
    bool demoted = false;
  };

  ct::task<void> daemon(ct::context& ctx);
  ct::task<void> charge(ct::context& ctx, const registration& r,
                        std::uint64_t delivered, std::uint64_t reconfigs);
  ct::task<void> coordinate(ct::context& ctx);

  [[nodiscard]] const registration* coordinated_at(std::size_t i) const;

  runtime_config cfg_;
  std::vector<registration> regs_;
  std::function<void(std::uint64_t)> tick_observer_;
  ct::runtime* rt_ = nullptr;
  bool started_ = false;
  std::uint64_t ticks_ = 0;
  std::uint64_t pumped_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t stripe_caps_ = 0;
};

}  // namespace adx::policy
