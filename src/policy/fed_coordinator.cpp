#include "policy/fed_coordinator.hpp"

#include <utility>

namespace adx::policy {

void fed_coordinator::attach(unsigned group, async_runtime& art) {
  member m;
  m.group = group;
  m.art = &art;
  m.locks.resize(art.coordinated_locks());
  for (std::size_t i = 0; i < m.locks.size(); ++i) {
    m.locks[i].last_acquisitions = art.coordinated_acquisitions(i);
  }
  members_.push_back(std::move(m));
  const std::size_t idx = members_.size() - 1;
  art.set_tick_observer([this, idx](std::uint64_t) { on_tick(idx); });
}

void fed_coordinator::on_tick(std::size_t member_idx) {
  // Runs inside the member daemon's tick, i.e. on the member group's shard:
  // reading its own coordinated locks' counters is place-local.
  member& m = members_[member_idx];
  std::vector<std::uint64_t> acq(m.art->coordinated_locks());
  for (std::size_t i = 0; i < acq.size(); ++i) {
    acq[i] = m.art->coordinated_acquisitions(i);
  }
  if (m.group == 0) {
    // The hub's own member: its shard *is* the hub shard, so the report can
    // be applied in place. Routing it through post(0, 0, ...) would also be
    // correct (and identically ordered), but would charge a needless L.
    on_report(member_idx, std::move(acq));
    return;
  }
  fed_->post(m.group, 0, [this, member_idx, a = std::move(acq)]() mutable {
    on_report(member_idx, std::move(a));
  });
}

void fed_coordinator::on_report(std::size_t member_idx,
                                std::vector<std::uint64_t> acquisitions) {
  // Runs on the hub shard (group 0); members_[*].locks is only touched here.
  member& m = members_[member_idx];
  ++reports_;
  if (cfg_.idle_ticks == 0) return;
  for (std::size_t i = 0; i < acquisitions.size() && i < m.locks.size(); ++i) {
    lock_track& t = m.locks[i];
    if (acquisitions[i] == t.last_acquisitions) {
      ++t.idle_streak;
    } else {
      t.idle_streak = 0;
      t.demoted = false;
    }
    t.last_acquisitions = acquisitions[i];
    if (t.demoted || t.idle_streak < cfg_.idle_ticks) continue;
    t.demoted = true;
    ++demotions_;
    async_runtime* art = m.art;
    const auto pol = cfg_.idle_policy;
    if (m.group == 0) {
      art->apply_external_demotion(i, pol);
    } else {
      fed_->post(0, m.group, [art, i, pol] {
        art->apply_external_demotion(i, pol);
      });
    }
  }
}

}  // namespace adx::policy
