#include "policy/sensors.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace adx::policy {

namespace {

constexpr std::string_view kSensorNames[] = {
    "no-of-waiting-threads",
    "lock-hold-time",
    "handoff-latency",
    "acquire-rate",
};

}  // namespace

std::span<const std::string_view> all_sensor_names() { return kSensorNames; }

core::sensor make_lock_sensor(std::string_view name, locks::reconfigurable_lock& lk,
                              std::uint64_t period) {
  if (name == "no-of-waiting-threads") {
    return core::sensor(std::string(name), [&lk] { return lk.waiting_now(); }, period);
  }
  if (name == "lock-hold-time") {
    return core::sensor(
        std::string(name),
        [&lk] { return static_cast<std::int64_t>(std::llround(lk.stats().last_held().us())); },
        period);
  }
  if (name == "handoff-latency") {
    return core::sensor(
        std::string(name),
        [&lk] {
          return static_cast<std::int64_t>(
              std::llround(lk.stats().last_handoff_latency().us()));
        },
        period);
  }
  if (name == "acquire-rate") {
    // Acquisitions since the previous sample of *this* sensor — a rate in
    // units of "acquires per sampling period".
    return core::sensor(
        std::string(name),
        [&lk, prev = std::uint64_t{0}]() mutable {
          const auto now = lk.stats().acquisitions();
          const auto delta = now - prev;
          prev = now;
          return static_cast<std::int64_t>(delta);
        },
        period);
  }
  sensor_host::throw_unknown_sensor(name, kSensorNames);
}

}  // namespace adx::policy
