#include "workload/ct_serve.hpp"

#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>

#include "ct/context.hpp"
#include "ct/federation.hpp"
#include "obs/log_histogram.hpp"

namespace adx::workload {

namespace {

/// Per-group native state; touched only by events on the group's own shard.
struct group_state {
  std::deque<sim::vtime> box;        ///< pending requests (arrival times)
  std::deque<ct::thread_id> parked;  ///< blocked servers, FIFO wake order
  bool stop = false;
  std::uint64_t generated = 0;
  std::uint64_t served = 0;
  std::uint64_t remote_out = 0;
  obs::log_histogram latency{0.001};  ///< arrival-to-completion, µs
};

}  // namespace

ct_serve_result run_ct_serve(const ct_serve_config& cfg, exec::job_executor* ex) {
  if (cfg.servers_per_group == 0) {
    throw std::invalid_argument("ct_serve: need servers");
  }
  if (cfg.machine.wire_model == sim::interconnect_model::butterfly) {
    throw std::invalid_argument("ct_serve: butterfly model cannot federate");
  }

  auto dom = sim::make_event_domain(
      cfg.machine, {.shards = cfg.shards,
                    .seed = cfg.seed,
                    .adaptive_lookahead = cfg.adaptive_lookahead,
                    .max_widen = cfg.max_widen});
  ct::federation fed(cfg.machine, *dom);
  const unsigned G = fed.groups();

  std::vector<group_state> groups(G);
  std::vector<std::unique_ptr<locks::lock_object>> lk(G);
  unsigned sources_done = 0;  // hub (group-0 shard) only

  // Delivery to a group's mailbox: push and wake one parked server. Runs on
  // the destination's shard (directly for local arrivals, via post for
  // remote ones).
  auto deliver = [&](unsigned dest) {
    auto& ds = groups[dest];
    ds.box.push_back(dom->queue_of(dest).now());
    if (!ds.parked.empty()) {
      const auto tid = ds.parked.front();
      ds.parked.pop_front();
      fed.group_runtime(dest).unblock(tid);
    }
  };

  // The per-group arrival chain: each event draws this arrival's routing and
  // the next interarrival gap from the group's own domain stream — a single
  // sequential chain per place, so the draw order is shard-invariant.
  std::vector<std::function<void()>> chain(G);
  for (unsigned g = 0; g < G; ++g) {
    chain[g] = [&, g] {
      auto& gs = groups[g];
      auto& q = dom->queue_of(g);
      if (gs.generated == cfg.requests_per_group) {
        fed.post(g, 0, [&fed, &groups, &sources_done, G] {
          if (++sources_done < G) return;
          for (unsigned h = 0; h < G; ++h) {
            fed.post(0, h, [&fed, &groups, h] {
              auto& hs = groups[h];
              hs.stop = true;
              while (!hs.parked.empty()) {
                fed.group_runtime(h).unblock(hs.parked.front());
                hs.parked.pop_front();
              }
            });
          }
        });
        return;
      }
      ++gs.generated;
      auto& rs = dom->stream(g);
      const bool remote = G > 1 && rs.uniform01() < cfg.remote_fraction;
      if (remote) {
        const unsigned dest =
            (g + 1 + static_cast<unsigned>(rs.below(G - 1))) % G;
        ++gs.remote_out;
        fed.post(g, dest, [&deliver, dest] { deliver(dest); });
      } else {
        deliver(g);
      }
      const double dt = rs.exponential(cfg.mean_interarrival_us);
      q.schedule_at(q.now() + sim::microseconds(dt < 0.01 ? 0.01 : dt),
                    [&chain, g] { chain[g](); });
    };
  }

  for (unsigned g = 0; g < G; ++g) {
    lk[g] = locks::make_lock(cfg.kind, 0, cfg.cost, cfg.params);
    lk[g]->bind_place(g);

    auto& rt = fed.group_runtime(g);
    const unsigned gn = rt.processors();
    for (unsigned s = 0; s < cfg.servers_per_group; ++s) {
      rt.fork(s % gn, [&cfg, &groups, &lk, g](ct::context& ctx) -> ct::task<void> {
        auto& gs = groups[g];
        for (;;) {
          if (!gs.box.empty()) {
            const auto arrived = gs.box.front();
            gs.box.pop_front();
            co_await lk[g]->lock(ctx);
            co_await ctx.compute(cfg.service);
            co_await lk[g]->unlock(ctx);
            ++gs.served;
            gs.latency.add((ctx.now() - arrived).us());
            continue;
          }
          if (gs.stop) co_return;
          gs.parked.push_back(ctx.self());
          co_await ctx.block();
        }
      });
    }

    // Kick the arrival chain: the first gap is drawn host-side in group
    // order from the group's own stream (the chain continues it in-shard).
    const double dt0 = dom->stream(g).exponential(cfg.mean_interarrival_us);
    dom->queue_of(g).schedule_at(
        sim::vtime{} + sim::microseconds(dt0 < 0.01 ? 0.01 : dt0),
        [&chain, g] { chain[g](); });
  }

  const auto run = fed.run_all(ex, cfg.max_events);

  ct_serve_result res;
  res.elapsed = run.end_time;
  res.completed = run.completed;
  obs::log_histogram all{0.001};
  for (unsigned g = 0; g < G; ++g) {
    res.generated += groups[g].generated;
    res.served += groups[g].served;
    res.remote_requests += groups[g].remote_out;
    all.merge_from(groups[g].latency);
    res.acquisitions += lk[g]->stats().acquisitions();
    res.blocks += lk[g]->stats().blocks();
  }
  res.latency_mean_us = all.mean();
  res.latency_p50_us = all.percentile(50.0);
  res.latency_p99_us = all.percentile(99.0);
  res.latency_max_us = all.max();
  res.latency = std::move(all);
  res.posts = fed.posts();
  res.domain = dom->stats();
  const double secs = static_cast<double>(res.elapsed.ns) / 1e9;
  res.throughput = secs > 0 ? static_cast<double>(res.served) / secs : 0.0;
  return res;
}

}  // namespace adx::workload
