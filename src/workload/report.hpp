// Tiny fixed-width table printer shared by the benchmark binaries so every
// table/figure bench prints paper-style rows uniformly.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace adx::workload {

class table {
 public:
  explicit table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const;

  /// Formats a double with `prec` decimals.
  [[nodiscard]] static std::string num(double v, int prec = 2);
  /// Formats a percentage (e.g. "17.8%").
  [[nodiscard]] static std::string pct(double fraction, int prec = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adx::workload
