// Bench-side table builder. Historically this was a hand-rolled fixed-width
// grid printer; it is now a thin wrapper over obs::report, so every bench
// that builds a `table` can render it as the classic grid, CSV, or JSON
// through an obs::report_sink (`--format=table|csv|json`).
#pragma once

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/report_sink.hpp"

namespace adx::workload {

class table {
 public:
  explicit table(std::vector<std::string> headers) {
    rep_.columns = std::move(headers);
  }

  table& title(std::string t) {
    rep_.title = std::move(t);
    return *this;
  }
  table& preamble(std::string line) {
    rep_.preamble.push_back(std::move(line));
    return *this;
  }
  table& note(std::string line) {
    rep_.notes.push_back(std::move(line));
    return *this;
  }
  table& row(std::vector<std::string> cells) {
    rep_.add_row(std::move(cells));
    return *this;
  }

  /// Renders the classic fixed-width +---+ grid (byte-identical to the old
  /// hand-rolled printer when no title/preamble/notes are set).
  void print(std::ostream& os = std::cout) const {
    emit(obs::report_format::table, os);
  }

  /// Renders through a report_sink in any supported format.
  void emit(obs::report_format f, std::ostream& os = std::cout) const {
    obs::report_sink(f, os).emit(rep_);
  }

  [[nodiscard]] const obs::report& rep() const { return rep_; }
  [[nodiscard]] obs::report& rep() { return rep_; }

  /// Formats a double with `prec` decimals.
  [[nodiscard]] static std::string num(double v, int prec = 2);
  /// Formats a percentage (e.g. "17.8%").
  [[nodiscard]] static std::string pct(double fraction, int prec = 1);

 private:
  obs::report rep_;
};

}  // namespace adx::workload
