#include "workload/report.hpp"

#include <iomanip>
#include <sstream>

namespace adx::workload {

std::string table::num(double v, int prec) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(prec) << v;
  return ss.str();
}

std::string table::pct(double fraction, int prec) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(prec) << fraction * 100.0 << '%';
  return ss.str();
}

}  // namespace adx::workload
