#include "workload/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace adx::workload {

void table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  const auto line = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << v << " |";
    }
    os << '\n';
  };
  line();
  print_row(headers_);
  line();
  for (const auto& r : rows_) print_row(r);
  line();
}

std::string table::num(double v, int prec) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(prec) << v;
  return ss.str();
}

std::string table::pct(double fraction, int prec) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(prec) << fraction * 100.0 << '%';
  return ss.str();
}

}  // namespace adx::workload
