// Client-server lock-scheduler workload (§2, from [MS93]): "one experiment
// compares the performance of three lock schedulers — FCFS, Priority, and
// Handoff — using a common class of multiprocessor applications:
// applications structured as client-server programs. For such applications,
// priority locks exhibit the best performance whereas FCFS locks exhibit the
// worst."
//
// N clients post requests to a board guarded by one reconfigurable lock; a
// single high-priority server drains the board under the same lock. With
// FCFS the server queues behind every client; with the Priority scheduler it
// jumps the registration queue; with Handoff the clients designate the
// server as the lock's successor after posting.
#pragma once

#include <cstdint>

#include "locks/cost_model.hpp"
#include "sim/machine_config.hpp"
#include "sim/time.hpp"

namespace adx::workload {

enum class sched_kind { fcfs, priority, handoff };

[[nodiscard]] const char* to_string(sched_kind k);

struct client_server_config {
  unsigned processors = 8;   ///< server on proc 0, clients on 1..clients
  unsigned clients = 6;
  std::uint64_t total_requests = 240;

  sim::vdur client_prep = sim::microseconds(150);   ///< board CS, client side
  sim::vdur client_think = sim::microseconds(100);
  /// The server takes at most this many requests per lock acquisition...
  std::uint64_t server_batch = 4;
  /// ...spending this long per request inside the critical section...
  sim::vdur server_per_request = sim::microseconds(30);
  sim::vdur server_fixed = sim::microseconds(50);
  /// ...and this long per request *outside* the lock (reply processing).
  /// The server pipeline — wait for lock, drain, post-process — is the
  /// throughput gate, so every extra microsecond the scheduler makes the
  /// server wait extends the makespan directly.
  sim::vdur server_post_per_request = sim::microseconds(120);

  sched_kind sched = sched_kind::fcfs;
  locks::lock_cost_model cost = locks::lock_cost_model::butterfly_cthreads();
  sim::machine_config machine = sim::machine_config::butterfly_gp1000();
  std::uint64_t seed = 7;
  std::uint64_t max_events = 200'000'000ULL;
};

struct client_server_result {
  sim::vtime elapsed{};
  std::uint64_t server_rounds{0};
  double mean_server_wait_us{0.0};
  double mean_client_wait_us{0.0};
  /// Mean time a posted request sits on the board before the server picks it
  /// up — the service latency the lock scheduler controls. This is the §2
  /// metric on which priority wins and FCFS loses: with FCFS the server
  /// queues behind every posting client before it can pick anything up.
  double mean_request_latency_us{0.0};
  /// Requests served per virtual second.
  double throughput{0.0};
};

[[nodiscard]] client_server_result run_client_server(const client_server_config& cfg);

}  // namespace adx::workload
