// Partitioned critical-section workload on the federated thread package —
// the fig1-style sweep, scaled out across execution-domain shards with REAL
// ct threads (not the event-driven lock model of open_loop).
//
// Each NUMA group runs its own closed-loop cs_workload community: a group-
// local lock (bound to its place), `threads_per_group` client threads, an
// echo server thread, and optionally a per-group async policy daemon. Every
// `remote_every`-th iteration a client posts an echo request to the next
// group's server and blocks; the server acquires its own group's lock,
// performs the service, and posts the reply back — so lock handoffs, wakeups
// and policy pumps all cross shard boundaries through federation::post()
// (i.e. the domain's send() at exactly the lookahead horizon).
//
// Determinism: locks are place-bound, all think-time jitter is pre-drawn
// host-side in (group, thread, iteration) order from one rng, and every
// cross-group influence is a tagged send — so the run is bit-identical on
// the sequential queue and at every shard/worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/job_executor.hpp"
#include "locks/factory.hpp"
#include "sim/event_domain.hpp"
#include "sim/machine_config.hpp"

namespace adx::workload {

struct sharded_cs_config {
  sim::machine_config machine = sim::machine_config::hierarchical_numa(4, 8);
  unsigned threads_per_group = 6;
  std::uint64_t iterations = 40;
  sim::vdur cs_length = sim::microseconds(100);
  sim::vdur think_time = sim::microseconds(300);
  double think_jitter = 0.25;

  /// Every `remote_every`-th iteration posts an echo to the next group and
  /// blocks for the reply. 0 disables cross-group traffic entirely.
  std::uint64_t remote_every = 4;
  /// Service demand of the echo server's lock-guarded section.
  sim::vdur server_service = sim::microseconds(30);

  locks::lock_kind kind = locks::lock_kind::spin;
  locks::lock_params params{};
  locks::lock_cost_model cost = locks::lock_cost_model::butterfly_cthreads();

  /// Enrols every group's policy runtime with the cross-shard coordinator
  /// (requires an async coordinated spec in `params.policy` to do anything).
  bool coordinate = false;

  std::uint64_t seed = 42;
  unsigned shards = 1;
  bool adaptive_lookahead = false;
  unsigned max_widen = 8;
  std::uint64_t max_events = 200'000'000ULL;
};

struct sharded_cs_result {
  sim::vtime elapsed{};
  bool completed{false};
  /// Lock acquisitions per group, in group order, and their sum.
  std::vector<std::uint64_t> group_acquisitions;
  std::uint64_t acquisitions{0};
  std::uint64_t contended{0};
  std::uint64_t blocks{0};
  std::uint64_t spin_iterations{0};
  /// Echo round-trips completed and their latency (µs), merged group order.
  std::uint64_t echoes{0};
  double echo_rtt_mean_us{0.0};
  double echo_rtt_p99_us{0.0};
  /// Cross-shard messages (echo requests + replies + policy traffic).
  std::uint64_t posts{0};
  /// Policy activity summed in group order; coordinator counters from hub.
  std::uint64_t policy_ticks{0};
  std::uint64_t policy_pumped{0};
  std::uint64_t coord_reports{0};
  std::uint64_t coord_demotions{0};
  sim::domain_stats domain;
  double throughput{0.0};
};

/// Runs the workload on `cfg.shards` shards; `ex` (nullable) supplies the
/// worker pool that executes shard windows in parallel.
[[nodiscard]] sharded_cs_result run_sharded_cs(const sharded_cs_config& cfg,
                                               exec::job_executor* ex = nullptr);

}  // namespace adx::workload
