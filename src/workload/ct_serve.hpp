// Open-loop request serving on the federated thread package — real ct
// server threads on a sharded execution domain (the fat_tree_hpc4096
// scenario's engine).
//
// Each NUMA group runs an open-loop Poisson arrival process on its own
// shard, drawn from the domain's per-place rng stream: an arrival is either
// local (delivered directly to the group's mailbox) or remote (shipped to
// another group through federation::post, arriving one lookahead later —
// the canonical cross-group transit). A pool of server threads per group
// pops requests, acquires the group's place-bound lock, performs the
// service, and records the arrival-to-completion latency. Parked servers
// wait in a FIFO and are woken one per delivery.
//
// Shutdown is a two-phase message protocol with a time-ordering proof:
// every group posts source-done to the hub after its last arrival (time
// t_src); the hub receives the G-th at t_c >= max_g(t_src)+L and posts stop
// to every group, delivered at t_c+L. Every request is delivered by
// t_src+L <= t_c < t_c+L, so stop strictly follows all deliveries, and
// servers drain their mailbox before honouring it — no request is lost.
//
// All mutable state is place-partitioned (mailboxes, parked lists, the
// stream draws, histograms) or hub-only (the source-done count), and every
// cross-place influence is a tagged send, so results are bit-identical at
// every shard/worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/job_executor.hpp"
#include "locks/factory.hpp"
#include "obs/log_histogram.hpp"
#include "sim/event_domain.hpp"
#include "sim/machine_config.hpp"

namespace adx::workload {

struct ct_serve_config {
  sim::machine_config machine = sim::machine_config::hierarchical_numa(4, 8);
  /// Server threads per group, pinned to distinct local processors.
  unsigned servers_per_group = 2;
  std::uint64_t requests_per_group = 200;
  double mean_interarrival_us = 60.0;
  /// Fraction of a group's arrivals that target another group.
  double remote_fraction = 0.2;
  /// Lock-guarded service demand per request.
  sim::vdur service = sim::microseconds(25);

  locks::lock_kind kind = locks::lock_kind::adaptive;
  locks::lock_params params{};
  locks::lock_cost_model cost = locks::lock_cost_model::butterfly_cthreads();

  std::uint64_t seed = 42;
  unsigned shards = 1;
  bool adaptive_lookahead = false;
  unsigned max_widen = 8;
  std::uint64_t max_events = 500'000'000ULL;
};

struct ct_serve_result {
  sim::vtime elapsed{};
  bool completed{false};
  std::uint64_t generated{0};
  std::uint64_t served{0};
  /// Requests delivered across a group boundary.
  std::uint64_t remote_requests{0};
  /// Arrival-to-completion latency (µs), merged in group order.
  double latency_mean_us{0.0};
  double latency_p50_us{0.0};
  double latency_p99_us{0.0};
  double latency_max_us{0.0};
  /// The full merged latency histogram the percentiles above were read from
  /// (group-order merge; deterministic). Telemetry producers stream it so
  /// the aggregation dashboard can compute exact fleet-wide percentiles.
  obs::log_histogram latency{0.001};
  std::uint64_t acquisitions{0};
  std::uint64_t blocks{0};
  std::uint64_t posts{0};
  sim::domain_stats domain;
  double throughput{0.0};
};

[[nodiscard]] ct_serve_result run_ct_serve(const ct_serve_config& cfg,
                                           exec::job_executor* ex = nullptr);

}  // namespace adx::workload
