#include "workload/open_loop.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>

#include "sim/rng.hpp"
#include "sim/sharded_event_queue.hpp"
#include "sim/stats.hpp"

namespace adx::workload {
namespace {

std::int64_t draw_ns(sim::rng& gen, double mean_us) {
  const double v = gen.exponential(mean_us) * 1000.0;
  return v < 1.0 ? 1 : static_cast<std::int64_t>(std::llround(v));
}

/// One in-flight request: when it arrived (client clock) and its service
/// demand, both fixed at the arrival draw so they are independent of lock
/// dynamics and shard count.
struct request {
  sim::vtime arrival;
  std::int64_t cs_ns;
};

struct lock_state {
  bool busy = false;
  std::deque<request> waiters;
};

/// Per-group service side: the lock-guarded objects and the latency record.
/// All fields are touched only by the group's events, which execute
/// sequentially on the group's shard — the shard discipline TSan polices.
struct group_state {
  std::vector<lock_state> locks;
  sim::log_histogram latency;
  std::uint64_t completed = 0;
  std::uint64_t grants_spin = 0;
  std::uint64_t grants_block = 0;
};

/// Per-group client side: the arrival process. Owns its rng, so the draw
/// sequence is a pure function of (seed, group) — re-sharding cannot
/// reorder it.
struct client_state {
  sim::rng gen{0};
  std::uint64_t remaining = 0;
  std::uint64_t origin_counter = 0;
  std::uint64_t remote_requests = 0;
};

class engine {
 public:
  engine(const open_loop_config& cfg)
      : cfg_(cfg),
        lookahead_(cfg.machine.min_cross_group_latency()),
        q_(cfg.shards, lookahead_) {
    if (cfg.locks_per_group == 0) {
      throw std::invalid_argument("open_loop: locks_per_group must be > 0");
    }
    if (cfg.requests_per_group == 0) {
      throw std::invalid_argument("open_loop: requests_per_group must be > 0");
    }
    if (cfg.mean_interarrival_us <= 0.0 || cfg.mean_service_us <= 0.0) {
      throw std::invalid_argument("open_loop: means must be positive");
    }
    const unsigned n = cfg.machine.groups();
    groups_.resize(n);
    clients_.resize(n);
    for (unsigned g = 0; g < n; ++g) {
      groups_[g].locks.resize(cfg.locks_per_group);
      clients_[g].gen.reseed(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (g + 1)));
      clients_[g].remaining = cfg.requests_per_group;
      const auto first = sim::vtime{} + sim::vdur{draw_interarrival(clients_[g].gen,
                                                                    sim::vtime{})};
      q_.schedule_at(shard_of(g), first, [this, g, first] { arrival(g, first); });
    }
  }

  open_loop_result run(exec::job_executor* ex) {
    if (ex != nullptr) {
      q_.run(*ex);
    } else {
      q_.run();
    }
    open_loop_result r;
    sim::log_histogram merged;
    for (const auto& g : groups_) {
      merged.merge(g.latency);
      r.completed += g.completed;
      r.grants_spin += g.grants_spin;
      r.grants_block += g.grants_block;
    }
    for (const auto& c : clients_) r.remote_requests += c.remote_requests;
    r.elapsed = q_.now();
    r.p50_ns = merged.p50();
    r.p99_ns = merged.p99();
    r.p999_ns = merged.p999();
    r.max_ns = merged.max();
    r.mean_ns = merged.mean();
    r.windows = q_.windows();
    r.cross_sends = q_.cross_sends();
    if (r.elapsed.ns > 0) {
      r.throughput =
          static_cast<double>(r.completed) / (static_cast<double>(r.elapsed.ns) * 1e-9);
    }
    return r;
  }

 private:
  [[nodiscard]] unsigned shard_of(unsigned group) const { return group % cfg_.shards; }

  /// Interarrival draw with the square-wave burst modulation applied at the
  /// draw's start time.
  std::int64_t draw_interarrival(sim::rng& gen, sim::vtime at) {
    double mean = cfg_.mean_interarrival_us;
    if (cfg_.bursty) {
      const auto period = static_cast<std::int64_t>(cfg_.burst_period_us * 1000.0);
      if (period > 0 && (at.ns / period) % 2 == 0) mean /= cfg_.burst_mult;
    }
    return draw_ns(gen, mean);
  }

  /// One client arrival on group `g` at time `t`: route the request, then
  /// schedule the next arrival — one pending arrival per group keeps the
  /// heap O(groups) instead of O(total requests).
  void arrival(unsigned g, sim::vtime t) {
    auto& c = clients_[g];
    const bool remote = groups_.size() > 1 && c.gen.uniform01() < cfg_.remote_ratio;
    const auto target_off = remote ? 1 + c.gen.below(groups_.size() - 1) : 0;
    const unsigned lock = static_cast<unsigned>(c.gen.below(cfg_.locks_per_group));
    const request req{t, draw_ns(c.gen, cfg_.mean_service_us)};
    if (remote) {
      const unsigned h = static_cast<unsigned>((g + target_off) % groups_.size());
      // Transit == lookahead: the send lands exactly at the horizon — the
      // legal boundary of the conservative contract. The origin tag never
      // mentions a shard index, so the barrier merge order is invariant
      // under re-sharding.
      const std::uint64_t origin =
          (static_cast<std::uint64_t>(g) << 32) | c.origin_counter++;
      ++c.remote_requests;
      const sim::vtime deliver = t + lookahead_;
      q_.send(shard_of(g), shard_of(h), deliver, origin,
              [this, h, lock, req, deliver] { arrive(h, lock, req, deliver); });
    } else {
      arrive(g, lock, req, t);
    }
    if (--c.remaining > 0) {
      const sim::vtime next = t + sim::vdur{draw_interarrival(c.gen, t)};
      q_.schedule_at(shard_of(g), next, [this, g, next] { arrival(g, next); });
    }
  }

  void arrive(unsigned g, unsigned lock, request req, sim::vtime now) {
    auto& l = groups_[g].locks[lock];
    if (l.busy) {
      l.waiters.push_back(req);
    } else {
      grant(g, lock, req, now, 0);
    }
  }

  /// Whether this grant hands off in spin mode. `depth` is the queue depth
  /// at grant time (0 = uncontended arrival).
  [[nodiscard]] bool spin_grant(std::size_t depth) const {
    switch (cfg_.kind) {
      case locks::lock_kind::blocking:
        return false;
      case locks::lock_kind::combined:
        return static_cast<std::int64_t>(depth) <= cfg_.params.combined_spin_limit;
      case locks::lock_kind::advisory:
      case locks::lock_kind::reconfigurable:
      case locks::lock_kind::adaptive:
        return static_cast<std::int64_t>(depth) <= cfg_.params.adapt.waiting_threshold;
      default:
        return true;  // atomior / spin / backoff / ticket / mcs
    }
  }

  /// Starts service for `req` on (g, lock) at `now`; `depth` is the waiter
  /// count at grant (pricing input). All costs are integer-ns functions of
  /// (kind, cost model, machine, depth) — byte-stable by construction.
  void grant(unsigned g, unsigned lock, request req, sim::vtime now, std::size_t depth) {
    auto& gs = groups_[g];
    gs.locks[lock].busy = true;
    const bool spin = spin_grant(depth);
    std::int64_t pre = 0;
    if (spin) {
      pre = (cfg_.cost.spin_lock_overhead + cfg_.cost.spin_unlock_overhead).ns;
      if (depth > 0) pre += cfg_.cost.spin_pause.ns;  // handoff: one poll period
      if (cfg_.kind == locks::lock_kind::backoff && depth > 0) {
        pre += cfg_.cost.backoff_quantum.ns / 2;  // expected residual backoff
      }
      if (cfg_.kind == locks::lock_kind::mcs) {
        pre += cfg_.machine.mem_service.ns;  // enqueue the queue node
      }
    } else {
      pre = (cfg_.cost.blocking_lock_overhead + cfg_.cost.blocking_unlock_overhead).ns;
      if (depth > 0) {
        pre += (cfg_.machine.context_switch + cfg_.machine.dispatch_latency).ns;
      }
    }
    if (cfg_.kind == locks::lock_kind::adaptive ||
        cfg_.kind == locks::lock_kind::reconfigurable) {
      pre += cfg_.cost.adaptive_unlock_check.ns;
    }
    // Spin hot-spot tax: every still-waiting spinner fires one RMW at the
    // lock word's module per spin_pause, and the module services one access
    // at a time — so the holder's critical section stretches by
    // waiters x (cs / pause) x service. This is the §2 mechanism that makes
    // spinning collapse under deep queues (slower CS -> deeper queue).
    std::int64_t tax = 0;
    if (spin && depth > 0) {
      const std::int64_t hammer = cfg_.kind == locks::lock_kind::mcs
                                      ? 0  // local spinning: no module traffic
                                      : cfg_.kind == locks::lock_kind::ticket
                                            ? cfg_.machine.mem_service.ns  // polling reads
                                            : cfg_.machine.atomic_service.ns;
      tax = req.cs_ns * static_cast<std::int64_t>(depth) * hammer / cfg_.cost.spin_pause.ns;
    }
    const sim::vtime end = now + sim::vdur{pre + tax + req.cs_ns};
    const sim::vtime arrival = req.arrival;
    q_.schedule_at(shard_of(g), end, [this, g, lock, arrival, spin, end] {
      complete(g, lock, arrival, spin, end);
    });
  }

  void complete(unsigned g, unsigned lock, sim::vtime arrival, bool spin, sim::vtime now) {
    auto& gs = groups_[g];
    gs.latency.add(static_cast<std::uint64_t>((now - arrival).ns));
    ++gs.completed;
    ++(spin ? gs.grants_spin : gs.grants_block);
    auto& l = gs.locks[lock];
    l.busy = false;
    if (!l.waiters.empty()) {
      const std::size_t depth = l.waiters.size();
      const request next = l.waiters.front();
      l.waiters.pop_front();
      grant(g, lock, next, now, depth);
    }
  }

  open_loop_config cfg_;
  sim::vdur lookahead_;
  sim::sharded_event_queue q_;
  std::vector<group_state> groups_;
  std::vector<client_state> clients_;
};

}  // namespace

open_loop_result run_open_loop(const open_loop_config& cfg) {
  return engine(cfg).run(nullptr);
}

open_loop_result run_open_loop(const open_loop_config& cfg, exec::job_executor& ex) {
  return engine(cfg).run(&ex);
}

std::vector<open_loop_result> run_open_loop_sweep(
    const std::vector<open_loop_config>& configs, exec::job_executor& ex) {
  return ex.map(configs.size(), [&](std::size_t i) { return run_open_loop(configs[i]); });
}

}  // namespace adx::workload
