#include "workload/sharded_cs.hpp"

#include <deque>
#include <memory>
#include <stdexcept>

#include "ct/context.hpp"
#include "ct/federation.hpp"
#include "obs/log_histogram.hpp"
#include "policy/fed_coordinator.hpp"
#include "policy/runtime.hpp"

namespace adx::workload {

namespace {

struct echo_request {
  unsigned from_group;
  ct::thread_id client;
};

/// Per-group native state. Only events on the group's own shard touch it
/// (clients, the server, and delivered cross-group callbacks all execute
/// there), so parallel windows never race.
struct group_state {
  std::deque<echo_request> box;
  bool server_blocked = false;
  std::uint64_t served = 0;
  std::uint64_t expected = 0;
  ct::thread_id server_tid = ct::invalid_thread;
  obs::log_histogram rtt{0.001};  ///< echo round-trips, µs
};

}  // namespace

sharded_cs_result run_sharded_cs(const sharded_cs_config& cfg,
                                 exec::job_executor* ex) {
  if (cfg.threads_per_group == 0) {
    throw std::invalid_argument("sharded_cs: need threads");
  }
  if (cfg.machine.wire_model == sim::interconnect_model::butterfly) {
    throw std::invalid_argument("sharded_cs: butterfly model cannot federate");
  }

  auto dom = sim::make_event_domain(
      cfg.machine, {.shards = cfg.shards,
                    .seed = cfg.seed,
                    .adaptive_lookahead = cfg.adaptive_lookahead,
                    .max_widen = cfg.max_widen});
  ct::federation fed(cfg.machine, *dom);
  const unsigned G = fed.groups();

  std::vector<group_state> groups(G);
  std::vector<std::unique_ptr<locks::lock_object>> lk(G);
  std::vector<std::unique_ptr<policy::async_runtime>> art(G);
  policy::fed_coordinator coord(fed);

  const std::uint64_t echoes_per_thread =
      (G > 1 && cfg.remote_every > 0) ? cfg.iterations / cfg.remote_every : 0;

  // Pre-draw think-time jitter host-side in (group, thread, iteration) order
  // from one stream, so neither sharding nor scheduling perturbs the draws.
  sim::rng jr(cfg.seed);
  std::vector<std::vector<double>> jitter(static_cast<std::size_t>(G) *
                                          cfg.threads_per_group);
  for (auto& v : jitter) {
    v.reserve(cfg.iterations);
    for (std::uint64_t i = 0; i < cfg.iterations; ++i) {
      v.push_back(1.0 + cfg.think_jitter * (2.0 * jr.uniform01() - 1.0));
    }
  }

  for (unsigned g = 0; g < G; ++g) {
    auto& gs = groups[g];
    gs.expected = cfg.threads_per_group * echoes_per_thread;

    // The group's lock lives on its first local node and is place-bound:
    // only this group's threads may operate it natively.
    lk[g] = locks::make_lock(cfg.kind, 0, cfg.cost, cfg.params);
    lk[g]->bind_place(g);

    auto& rt = fed.group_runtime(g);
    const unsigned gn = rt.processors();
    const ct::proc_id server_proc = gn - 1;
    const unsigned client_procs = gn > 1 ? gn - 1 : 1;

    // Clients.
    for (unsigned t = 0; t < cfg.threads_per_group; ++t) {
      const ct::proc_id proc = t % client_procs;
      auto* jit = &jitter[static_cast<std::size_t>(g) * cfg.threads_per_group + t];
      const bool oversub = cfg.threads_per_group > client_procs;
      rt.fork(proc, [&cfg, &fed, &groups, &lk, g, G, jit, oversub](ct::context& ctx)
                  -> ct::task<void> {
        for (std::uint64_t i = 0; i < cfg.iterations; ++i) {
          co_await lk[g]->lock(ctx);
          co_await ctx.compute(cfg.cs_length);
          co_await lk[g]->unlock(ctx);
          if (G > 1 && cfg.remote_every > 0 && (i + 1) % cfg.remote_every == 0) {
            const unsigned dest = (g + 1) % G;
            const auto t0 = ctx.now();
            const auto self = ctx.self();
            // The post and the block happen inside one event, so the reply
            // (at least one lookahead away) can never beat the suspension.
            fed.post(g, dest, [&fed, &groups, dest, g, self] {
              auto& ds = groups[dest];
              ds.box.push_back({g, self});
              if (ds.server_blocked) {
                fed.group_runtime(dest).unblock(ds.server_tid);
              }
            });
            co_await ctx.block();
            groups[g].rtt.add((ctx.now() - t0).us());
          }
          const auto think = sim::nanoseconds(static_cast<std::int64_t>(
              static_cast<double>(cfg.think_time.ns) * (*jit)[i]));
          if (oversub) {
            co_await ctx.sleep_for(think);
          } else {
            co_await ctx.compute(think);
          }
        }
      });
    }

    // Echo server (skipped when no cross-group traffic can arrive).
    if (gs.expected > 0) {
      gs.server_tid = rt.fork(
          server_proc,
          [&cfg, &fed, &groups, &lk, g](ct::context& ctx) -> ct::task<void> {
            auto& gs = groups[g];
            while (gs.served < gs.expected) {
              if (gs.box.empty()) {
                gs.server_blocked = true;
                co_await ctx.block();
                gs.server_blocked = false;
                continue;
              }
              const auto req = gs.box.front();
              gs.box.pop_front();
              co_await lk[g]->lock(ctx);
              co_await ctx.compute(cfg.server_service);
              co_await lk[g]->unlock(ctx);
              ++gs.served;
              fed.post_unblock(g, {req.from_group, req.client});
            }
          },
          /*priority=*/10);
    }

    // Per-group policy daemon (registers only for async-mode specs); the
    // cross-shard coordinator owns idle decisions when enrolled.
    const ct::proc_id daemon_proc = gn >= 2 ? gn - 2 : 0;
    art[g] = std::make_unique<policy::async_runtime>(policy::runtime_config{
        .period = sim::microseconds(
            static_cast<double>(cfg.params.policy.period_us)),
        .proc = daemon_proc,
    });
    art[g]->adopt_lock(*lk[g], cfg.params, cfg.cost);
    if (cfg.coordinate) coord.attach(g, *art[g]);
    art[g]->start(rt);
  }

  const auto run = fed.run_all(ex, cfg.max_events);

  sharded_cs_result res;
  res.elapsed = run.end_time;
  res.completed = run.completed;
  res.group_acquisitions.reserve(G);
  obs::log_histogram rtt_all{0.001};
  for (unsigned g = 0; g < G; ++g) {
    const auto& s = lk[g]->stats();
    res.group_acquisitions.push_back(s.acquisitions());
    res.acquisitions += s.acquisitions();
    res.contended += s.contended();
    res.blocks += s.blocks();
    res.spin_iterations += s.spin_iterations();
    res.policy_ticks += art[g]->ticks();
    res.policy_pumped += art[g]->pumped();
    res.echoes += groups[g].rtt.count();
    rtt_all.merge_from(groups[g].rtt);
  }
  res.echo_rtt_mean_us = rtt_all.mean();
  res.echo_rtt_p99_us = rtt_all.percentile(99.0);
  res.posts = fed.posts();
  res.coord_reports = coord.reports();
  res.coord_demotions = coord.demotions_issued();
  res.domain = dom->stats();
  const double secs = static_cast<double>(res.elapsed.ns) / 1e9;
  res.throughput = secs > 0 ? static_cast<double>(res.acquisitions) / secs : 0.0;
  return res;
}

}  // namespace adx::workload
