#include "workload/client_server.hpp"

#include <deque>
#include <memory>
#include <stdexcept>

#include "ct/context.hpp"
#include "ct/runtime.hpp"
#include "locks/reconfigurable_lock.hpp"
#include "sim/event_domain.hpp"

namespace adx::workload {

const char* to_string(sched_kind k) {
  switch (k) {
    case sched_kind::fcfs: return "fcfs";
    case sched_kind::priority: return "priority";
    case sched_kind::handoff: return "handoff";
  }
  return "?";
}

namespace {

std::unique_ptr<locks::lock_scheduler> make_sched(sched_kind k) {
  switch (k) {
    case sched_kind::fcfs: return std::make_unique<locks::fcfs_scheduler>();
    case sched_kind::priority: return std::make_unique<locks::priority_scheduler>();
    case sched_kind::handoff: return std::make_unique<locks::handoff_scheduler>();
  }
  throw std::invalid_argument("bad sched_kind");
}

}  // namespace

client_server_result run_client_server(const client_server_config& cfg) {
  if (cfg.clients == 0 || cfg.clients + 1 > cfg.processors ||
      cfg.processors > cfg.machine.nodes) {
    throw std::invalid_argument("client_server: bad processor/client counts");
  }

  auto dom = sim::make_event_domain(cfg.machine, {.shards = 1, .seed = cfg.seed});
  ct::runtime rt(cfg.machine, dom->queue_of(0));
  // The board lock: a reconfigurable lock in pure-sleep configuration so
  // every contended waiter goes through the scheduler's registration queue —
  // which is the component under test.
  locks::reconfigurable_lock board(0, cfg.cost, locks::waiting_policy::pure_sleep(),
                                   make_sched(cfg.sched));
  auto* handoff =
      cfg.sched == sched_kind::handoff
          ? dynamic_cast<locks::handoff_scheduler*>(&board.scheduler())
          : nullptr;

  ct::svar<std::int64_t> posted(0, 0);     // requests on the board
  ct::svar<std::int64_t> produced(0, 0);   // total posted so far
  ct::svar<std::int64_t> served(0, 0);     // total drained
  ct::svar<std::uint64_t> done(0, 0);
  std::deque<sim::vtime> board_times;      // post time of each pending request

  sim::accumulator server_wait;
  sim::accumulator client_wait;
  sim::accumulator request_latency;
  std::uint64_t server_rounds = 0;

  sim::rng jr(cfg.seed);
  std::vector<std::vector<double>> jitter(cfg.clients);
  for (auto& v : jitter) {
    v.reserve(cfg.total_requests);
    for (std::uint64_t i = 0; i < cfg.total_requests; ++i) {
      v.push_back(0.75 + 0.5 * jr.uniform01());
    }
  }

  const ct::thread_id server_tid = rt.fork(
      0,
      [&](ct::context& ctx) -> ct::task<void> {
        for (;;) {
          // Check for work with a plain read first: a server that grabs the
          // board lock just to find it empty starves the posting clients.
          if (co_await ctx.read(posted) == 0) {
            co_await ctx.sleep_for(sim::microseconds(40));
            continue;
          }
          const auto t0 = ctx.now();
          co_await board.lock(ctx);
          server_wait.add((ctx.now() - t0).us());
          ++server_rounds;
          // Drain a bounded batch inside the critical section.
          const auto n = co_await ctx.read(posted);
          const auto take =
              std::min<std::int64_t>(n, static_cast<std::int64_t>(cfg.server_batch));
          if (take > 0) {
            co_await ctx.compute(cfg.server_fixed + cfg.server_per_request * take);
            co_await ctx.write(posted, n - take);
            for (std::int64_t i = 0; i < take && !board_times.empty(); ++i) {
              request_latency.add((ctx.now() - board_times.front()).us());
              board_times.pop_front();
            }
          }
          co_await board.unlock(ctx);
          if (take > 0) {
            // Reply processing outside the lock — the serial server pipeline.
            co_await ctx.compute(cfg.server_post_per_request * take);
            const auto s = co_await ctx.read(served);
            co_await ctx.write(served, s + take);
            if (s + take >= static_cast<std::int64_t>(cfg.total_requests)) {
              co_await ctx.write(done, std::uint64_t{1});
              co_return;
            }
          } else {
            co_await ctx.sleep_for(sim::microseconds(40));
          }
        }
      },
      /*priority=*/10);

  for (unsigned c = 0; c < cfg.clients; ++c) {
    rt.fork(
        1 + c,
        [&, c](ct::context& ctx) -> ct::task<void> {
          for (std::uint64_t i = 0;; ++i) {
            if (co_await ctx.read(done) != 0) co_return;
            // Claim a production slot; stop once the quota is met.
            const auto p = co_await ctx.fetch_add(produced, std::int64_t{1});
            if (p >= static_cast<std::int64_t>(cfg.total_requests)) co_return;

            const auto t0 = ctx.now();
            co_await board.lock(ctx);
            client_wait.add((ctx.now() - t0).us());
            co_await ctx.compute(cfg.client_prep);
            const auto n = co_await ctx.read(posted);
            co_await ctx.write(posted, n + 1);
            board_times.push_back(ctx.now());
            if (handoff) handoff->designate(server_tid);
            co_await board.unlock(ctx);

            const auto think = sim::nanoseconds(static_cast<std::int64_t>(
                static_cast<double>(cfg.client_think.ns) *
                jitter[c][i % cfg.total_requests]));
            co_await ctx.sleep_for(think);
          }
        },
        /*priority=*/0);
  }

  const auto events = dom->run(nullptr, cfg.max_events);
  const auto run = rt.finish_all(events);

  client_server_result res;
  res.elapsed = run.end_time;
  res.server_rounds = server_rounds;
  res.mean_server_wait_us = server_wait.mean();
  res.mean_client_wait_us = client_wait.mean();
  res.mean_request_latency_us = request_latency.mean();
  const double secs = static_cast<double>(res.elapsed.ns) / 1e9;
  res.throughput =
      secs > 0 ? static_cast<double>(cfg.total_requests) / secs : 0.0;
  return res;
}

}  // namespace adx::workload
