// Open-loop request-serving workload on the sharded DES.
//
// The closed-loop workloads (cs_workload, client_server) measure makespan: T
// threads loop as fast as the lock lets them, so offered load falls whenever
// the lock slows down — exactly the feedback that hides tail latency in real
// serving systems. This family is open-loop: simulated client requests arrive
// on a Poisson (optionally bursty) process whose rate does NOT depend on
// completions, hit lock-guarded shared state, and report the latency
// distribution (p50/p99/p999 via sim::log_histogram) per lock kind and
// policy. Under bursts a spin lock's hot-spot tax compounds (deep queues slow
// every critical section, which deepens the queue), a blocking lock pays a
// fixed context-switch handoff, and an adaptive lock switches between them on
// queue depth — the regime where the paper's adaptation argument matters most.
//
// Scale-out: the machine is a hierarchical NUMA config; each NUMA group owns
// `locks_per_group` lock-guarded objects and an arrival process, and runs on
// a `sim::sharded_event_queue` shard (group % shards). Cross-group requests
// travel through sharded_event_queue::send() with transit exactly equal to
// the conservative lookahead (machine.min_cross_group_latency()), tagged with
// the shard-count-invariant origin (group << 32 | counter) — so results are
// bit-identical for ANY shard count and ANY worker count. The lock dynamics
// are a deterministic event-driven model priced from lock_cost_model +
// machine_config (grant handoffs, spin hot-spot module traffic, adaptive
// mode switching on params.adapt.waiting_threshold), not the full ct::runtime
// — adx-check's `serve` fixture covers real locks under open-loop arrivals.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/job_executor.hpp"
#include "locks/factory.hpp"
#include "sim/machine_config.hpp"

namespace adx::workload {

struct open_loop_config {
  sim::machine_config machine = sim::machine_config::hierarchical_numa();
  locks::lock_kind kind = locks::lock_kind::adaptive;
  locks::lock_params params{};
  locks::lock_cost_model cost = locks::lock_cost_model::butterfly_cthreads();

  /// DES shards (groups are assigned round-robin: shard = group % shards).
  /// Results are bit-identical at every value; 1 is the sequential queue.
  unsigned shards = 1;

  /// Lock-guarded objects per NUMA group.
  unsigned locks_per_group = 4;

  /// Requests each group's arrival process generates.
  std::uint64_t requests_per_group = 1000;

  /// Mean interarrival time per group (exponential draws).
  double mean_interarrival_us = 150.0;

  /// Mean critical-section service demand per request (exponential draws).
  double mean_service_us = 40.0;

  /// Fraction of a group's requests that target a lock in another group
  /// (these ride sharded_event_queue::send at exactly the lookahead horizon).
  double remote_ratio = 0.10;

  /// Square-wave burst modulation: during every other `burst_period_us`
  /// window the arrival rate is multiplied by `burst_mult`.
  bool bursty = false;
  double burst_mult = 4.0;
  double burst_period_us = 20'000.0;

  std::uint64_t seed = 42;
};

struct open_loop_result {
  std::uint64_t completed{0};
  sim::vtime elapsed{};
  /// Request latency (arrival to completion), merged across all groups.
  std::uint64_t p50_ns{0};
  std::uint64_t p99_ns{0};
  std::uint64_t p999_ns{0};
  std::uint64_t max_ns{0};
  double mean_ns{0.0};
  /// Grants served in spin vs blocking handoff mode (adaptive kinds use both).
  std::uint64_t grants_spin{0};
  std::uint64_t grants_block{0};
  /// Cross-group requests routed through send().
  std::uint64_t remote_requests{0};
  /// Sharded-DES synchronization rounds and barrier deliveries — pure
  /// functions of the schedule, identical for every shard/worker count.
  std::uint64_t windows{0};
  std::uint64_t cross_sends{0};
  /// Requests completed per virtual second.
  double throughput{0.0};
};

/// Runs the workload with sequential windows (no thread pool).
[[nodiscard]] open_loop_result run_open_loop(const open_loop_config& cfg);

/// Runs the workload fanning each synchronization window's shards across
/// `ex`'s workers. Bit-identical to the sequential overload.
[[nodiscard]] open_loop_result run_open_loop(const open_loop_config& cfg,
                                             exec::job_executor& ex);

/// Sweep driver: each configuration is an independent sequential-window
/// simulation; sweep points fan out across `ex`'s workers, collected by
/// index (byte-identical for any worker count).
[[nodiscard]] std::vector<open_loop_result> run_open_loop_sweep(
    const std::vector<open_loop_config>& configs, exec::job_executor& ex);

}  // namespace adx::workload
