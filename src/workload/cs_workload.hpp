// Synthetic critical-section workload — the artificial workload generator
// behind Figure 1 and the §2 spin-vs-block results from [MS93].
//
// T threads (round-robin pinned to P processors) each execute `iterations`
// cycles of { lock; compute(cs_length); unlock; compute(think_time) } on one
// shared lock. Sweeping cs_length with different lock kinds reproduces the
// combined-lock crossovers of Figure 1; sweeping threads-per-processor
// reproduces the spin-vs-block rule of §2.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/job_executor.hpp"
#include "locks/factory.hpp"
#include "sim/machine_config.hpp"

namespace adx::workload {

struct cs_config {
  unsigned processors = 10;
  unsigned threads = 10;
  std::uint64_t iterations = 100;
  sim::vdur cs_length = sim::microseconds(100);
  sim::vdur think_time = sim::microseconds(300);

  locks::lock_kind kind = locks::lock_kind::spin;
  locks::lock_params params{};
  locks::lock_cost_model cost = locks::lock_cost_model::butterfly_cthreads();
  sim::machine_config machine = sim::machine_config::butterfly_gp1000();
  sim::node_id lock_home = 0;

  /// Deterministic per-iteration think-time jitter (fraction of think_time);
  /// avoids artificial lockstep between identical threads.
  double think_jitter = 0.25;
  std::uint64_t seed = 42;

  std::uint64_t max_events = 200'000'000ULL;
};

struct cs_result {
  sim::vtime elapsed{};
  std::uint64_t acquisitions{0};
  std::uint64_t contended{0};
  std::uint64_t blocks{0};
  std::uint64_t spin_iterations{0};
  std::int64_t peak_waiting{0};
  double mean_wait_us{0.0};
  double contention_ratio{0.0};
  /// Critical sections completed per virtual second.
  double throughput{0.0};
  /// Async policy runtime activity (zero for sync-mode runs): daemon ticks,
  /// observations pumped to the policy, coordinator idle demotions.
  std::uint64_t policy_ticks{0};
  std::uint64_t policy_pumped{0};
  std::uint64_t demotions{0};
};

[[nodiscard]] cs_result run_cs_workload(const cs_config& cfg);

/// Sweep driver: runs every configuration as an independent simulation,
/// fanning the sweep points out across `ex`'s workers. Results are collected
/// by index (out[i] is configs[i]'s result), so a sweep's figures are
/// byte-identical for any worker count — with one worker this is exactly the
/// historical sequential loop.
[[nodiscard]] std::vector<cs_result> run_cs_sweep(const std::vector<cs_config>& configs,
                                                  exec::job_executor& ex);

}  // namespace adx::workload
