#include "workload/cs_workload.hpp"

#include <stdexcept>

#include "ct/context.hpp"
#include "ct/runtime.hpp"
#include "policy/runtime.hpp"
#include "sim/event_domain.hpp"

namespace adx::workload {

cs_result run_cs_workload(const cs_config& cfg) {
  if (cfg.processors == 0 || cfg.processors > cfg.machine.nodes) {
    throw std::invalid_argument("cs_workload: processors out of range");
  }
  if (cfg.threads == 0) throw std::invalid_argument("cs_workload: need threads");

  // One runtime on a sequential execution domain: the same drive path the
  // sharded federation uses, so this workload's schedules stay comparable
  // with the partitioned variants byte for byte.
  auto dom = sim::make_event_domain(cfg.machine, {.shards = 1, .seed = cfg.seed});
  ct::runtime rt(cfg.machine, dom->queue_of(0));
  auto lk = locks::make_lock(cfg.kind, cfg.lock_home, cfg.cost, cfg.params);
  sim::rng jitter_rng(cfg.seed);

  // Async-mode specs hand the policy to the periodic runtime: the daemon
  // runs on a spare node when the machine has one, else shares the last
  // workload processor. adopt_lock() is a no-op for sync specs.
  const ct::proc_id daemon_proc =
      cfg.processors < cfg.machine.nodes ? cfg.processors : cfg.processors - 1;
  policy::async_runtime art(policy::runtime_config{
      .period = sim::microseconds(static_cast<double>(cfg.params.policy.period_us)),
      .proc = daemon_proc,
  });
  art.adopt_lock(*lk, cfg.params, cfg.cost);

  // Pre-draw deterministic jitter factors (one stream per thread) so thread
  // scheduling order cannot perturb the draw sequence.
  std::vector<std::vector<double>> jitter(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    jitter[t].reserve(cfg.iterations);
    for (std::uint64_t i = 0; i < cfg.iterations; ++i) {
      jitter[t].push_back(1.0 + cfg.think_jitter * (2.0 * jitter_rng.uniform01() - 1.0));
    }
  }

  for (unsigned t = 0; t < cfg.threads; ++t) {
    const ct::proc_id proc = t % cfg.processors;
    rt.fork(proc, [&, t](ct::context& ctx) -> ct::task<void> {
      for (std::uint64_t i = 0; i < cfg.iterations; ++i) {
        co_await lk->lock(ctx);
        co_await ctx.compute(cfg.cs_length);
        co_await lk->unlock(ctx);
        const auto think =
            sim::nanoseconds(static_cast<std::int64_t>(
                static_cast<double>(cfg.think_time.ns) * jitter[t][i]));
        // With more threads than processors, thinking yields the processor
        // so runnable peers make progress (the multiprogramming case of §2).
        if (cfg.threads > cfg.processors) {
          co_await ctx.sleep_for(think);
        } else {
          co_await ctx.compute(think);
        }
      }
    });
  }

  // Fork the daemon last so workload threads exist before its first tick
  // (it exits when it is the last live thread).
  art.start(rt);

  const auto events = dom->run(nullptr, cfg.max_events);
  const auto run = rt.finish_all(events);

  cs_result res;
  res.policy_ticks = art.ticks();
  res.policy_pumped = art.pumped();
  res.demotions = art.demotions();
  res.elapsed = run.end_time;
  const auto& s = lk->stats();
  res.acquisitions = s.acquisitions();
  res.contended = s.contended();
  res.blocks = s.blocks();
  res.spin_iterations = s.spin_iterations();
  res.peak_waiting = s.peak_waiting();
  res.mean_wait_us = s.wait_time_us().mean();
  res.contention_ratio = s.contention_ratio();
  const double secs = static_cast<double>(res.elapsed.ns) / 1e9;
  res.throughput = secs > 0 ? static_cast<double>(res.acquisitions) / secs : 0.0;
  return res;
}

std::vector<cs_result> run_cs_sweep(const std::vector<cs_config>& configs,
                                    exec::job_executor& ex) {
  return ex.map(configs.size(),
                [&](std::size_t i) { return run_cs_workload(configs[i]); });
}

}  // namespace adx::workload
