// BENCH.json — the machine-readable perf trajectory.
//
// A bench_report is what one `adx-bench` invocation measured: per scenario,
// per metric, the median/IQR/min over R repetitions, each metric tagged with
// its clock. The file is versioned, emitted deterministically (stable key
// order, fixed number formatting) so committed baselines diff cleanly, and
// round-trips exactly: virtual-clock metrics are written with full double
// precision because the comparison demands bit-exact equality on them.
//
// compare_reports() implements the regression gate:
//   * virtual-clock metrics — EXACT match required, both directions. The
//     simulator is deterministic; any change means simulated behaviour
//     changed and the baseline must be consciously regenerated.
//   * wall-clock metrics — current median may exceed the baseline median by
//     tolerance * baseline + an IQR-scaled noise band; only slowdowns beyond
//     that fail. Improvements and new metrics are reported, never fatal.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "perf/scenario.hpp"

namespace adx::perf {

struct bench_report {
  int version{1};
  unsigned reps{0};
  unsigned warmup{0};
  std::string note;  ///< free text: toolchain, host, provenance
  std::vector<scenario_summary> scenarios;

  [[nodiscard]] const scenario_summary* find(std::string_view name) const;

  /// Deterministic multi-line JSON (committed-baseline friendly).
  [[nodiscard]] std::string to_json() const;

  /// Parses to_json() output. Unknown keys are ignored; malformed input
  /// throws std::invalid_argument. Rejects bench_version newer than this
  /// build understands.
  [[nodiscard]] static bench_report from_json(std::string_view text);
};

/// Wall-metric tolerance configuration. `per_metric` overrides the default
/// for individual metric names.
struct tolerance_spec {
  double wall_default{0.25};
  std::map<std::string, double, std::less<>> per_metric;

  /// Parses "0.3" (global) or "0.3,wall_ns=0.5,nodes_per_sec=0.4" (global
  /// plus per-metric overrides; the leading global is optional). Fractions,
  /// not percent. Throws std::invalid_argument on malformed input.
  [[nodiscard]] static tolerance_spec parse(std::string_view text);

  [[nodiscard]] double for_metric(std::string_view name) const {
    const auto it = per_metric.find(name);
    return it == per_metric.end() ? wall_default : it->second;
  }
};

/// Validates that no per-metric tolerance names a deterministic
/// (virtual-clock) metric of `baseline` — tolerance on those is refused, not
/// silently accepted. Returns error lines; empty means valid.
[[nodiscard]] std::vector<std::string> validate_tolerance(const tolerance_spec& tol,
                                                          const bench_report& baseline);

enum class finding_kind : std::uint8_t {
  missing_scenario,    ///< baseline scenario absent from current run (fail)
  missing_metric,      ///< baseline metric absent from current run (fail)
  virtual_divergence,  ///< deterministic metric changed (fail)
  wall_regression,     ///< wall metric beyond the tolerance band (fail)
  wall_improvement,    ///< wall metric faster beyond the band (informational)
  new_entry,           ///< scenario/metric only in current (informational)
};

[[nodiscard]] const char* to_string(finding_kind k);

struct finding {
  finding_kind kind{finding_kind::new_entry};
  std::string scenario;
  std::string metric;  ///< empty for scenario-level findings
  double baseline{0};
  double current{0};
  double limit{0};  ///< the allowed bound that was exceeded (wall findings)

  [[nodiscard]] bool fatal() const {
    return kind != finding_kind::wall_improvement && kind != finding_kind::new_entry;
  }
  [[nodiscard]] std::string describe() const;
};

struct compare_result {
  std::vector<finding> findings;

  [[nodiscard]] bool failed() const {
    for (const auto& f : findings) {
      if (f.fatal()) return true;
    }
    return false;
  }
  /// Names of scenarios with at least one fatal finding, deduplicated, in
  /// first-seen order — what the CLI prints and CI greps.
  [[nodiscard]] std::vector<std::string> regressed_scenarios() const;
};

[[nodiscard]] compare_result compare_reports(const bench_report& current,
                                             const bench_report& baseline,
                                             const tolerance_spec& tol);

}  // namespace adx::perf
