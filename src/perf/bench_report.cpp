#include "perf/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/json_reader.hpp"

namespace adx::perf {
namespace {

constexpr int kMaxVersion = 1;

/// Full-precision double formatting: virtual metrics must round-trip
/// bit-exactly through the committed baseline. %.17g is lossless for IEEE
/// doubles; integral values print without an exponent for readable diffs.
std::string num17(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double relative_gap(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) / scale;
}

}  // namespace

const scenario_summary* bench_report::find(std::string_view name) const {
  for (const auto& s : scenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string bench_report::to_json() const {
  using obs::json_str;
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench_version\": " << version << ",\n";
  os << "  \"reps\": " << reps << ",\n";
  os << "  \"warmup\": " << warmup << ",\n";
  os << "  \"note\": " << json_str(note) << ",\n";
  os << "  \"scenarios\": [";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": " << json_str(s.name)
       << ", \"metrics\": [";
    for (std::size_t j = 0; j < s.metrics.size(); ++j) {
      const auto& m = s.metrics[j];
      os << (j ? ",\n" : "\n") << "      {\"name\": " << json_str(m.name)
         << ", \"unit\": " << json_str(m.unit)
         << ", \"clock\": " << json_str(to_string(m.clock));
      if (m.higher_better) os << ", \"dir\": \"up\"";
      os << ", \"median\": " << num17(m.stats.median)
         << ", \"iqr\": " << num17(m.stats.iqr)
         << ", \"min\": " << num17(m.stats.min) << ", \"reps\": " << m.reps << '}';
    }
    os << "\n    ]}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bench_report bench_report::from_json(std::string_view text) {
  const auto root = obs::json_reader(text, "bench_report").parse();
  const auto& o = root.object();

  bench_report r;
  if (const auto* v = obs::json_find(o, "bench_version")) r.version = v->number<int>();
  if (r.version > kMaxVersion) {
    throw std::invalid_argument("bench_report: file has bench_version " +
                                std::to_string(r.version) + "; this build understands <= " +
                                std::to_string(kMaxVersion));
  }
  if (const auto* v = obs::json_find(o, "reps")) r.reps = v->number<unsigned>();
  if (const auto* v = obs::json_find(o, "warmup")) r.warmup = v->number<unsigned>();
  if (const auto* v = obs::json_find(o, "note")) r.note = v->str();
  if (const auto* ss = obs::json_find(o, "scenarios")) {
    for (const auto& sv : ss->array()) {
      const auto& so = sv.object();
      scenario_summary s;
      if (const auto* v = obs::json_find(so, "name")) s.name = v->str();
      if (s.name.empty()) throw std::invalid_argument("bench_report: scenario without name");
      if (const auto* ms = obs::json_find(so, "metrics")) {
        for (const auto& mv : ms->array()) {
          const auto& mo = mv.object();
          metric_summary m;
          if (const auto* v = obs::json_find(mo, "name")) m.name = v->str();
          if (const auto* v = obs::json_find(mo, "unit")) m.unit = v->str();
          if (const auto* v = obs::json_find(mo, "clock")) {
            const auto c = parse_metric_clock(v->str());
            if (!c) {
              throw std::invalid_argument("bench_report: unknown clock '" + v->str() +
                                          "' (valid: virtual wall)");
            }
            m.clock = *c;
          }
          if (const auto* v = obs::json_find(mo, "dir")) {
            if (v->str() != "up" && v->str() != "down") {
              throw std::invalid_argument("bench_report: unknown dir '" + v->str() +
                                          "' (valid: up down)");
            }
            m.higher_better = v->str() == "up";
          }
          if (const auto* v = obs::json_find(mo, "median")) m.stats.median = v->number<double>();
          if (const auto* v = obs::json_find(mo, "iqr")) m.stats.iqr = v->number<double>();
          if (const auto* v = obs::json_find(mo, "min")) m.stats.min = v->number<double>();
          if (const auto* v = obs::json_find(mo, "reps")) m.reps = v->number<unsigned>();
          s.metrics.push_back(std::move(m));
        }
      }
      r.scenarios.push_back(std::move(s));
    }
  }
  return r;
}

tolerance_spec tolerance_spec::parse(std::string_view text) {
  tolerance_spec out;
  if (text.empty()) return out;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const auto item = text.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                                       : comma - pos);
    pos = comma == std::string_view::npos ? text.size() + 1 : comma + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    const auto parse_frac = [&](std::string_view s) {
      try {
        std::size_t used = 0;
        const double v = std::stod(std::string(s), &used);
        if (used != s.size() || !(v >= 0) || v > 100) throw std::invalid_argument("range");
        return v;
      } catch (const std::exception&) {
        throw std::invalid_argument("tolerance: bad fraction '" + std::string(s) +
                                    "' (expected e.g. 0.25)");
      }
    };
    if (eq == std::string_view::npos) {
      if (!first) {
        throw std::invalid_argument(
            "tolerance: the global fraction must come first (got '" + std::string(item) +
            "')");
      }
      out.wall_default = parse_frac(item);
    } else {
      const auto name = item.substr(0, eq);
      if (name.empty()) throw std::invalid_argument("tolerance: empty metric name");
      out.per_metric.emplace(std::string(name), parse_frac(item.substr(eq + 1)));
    }
    first = false;
  }
  return out;
}

std::vector<std::string> validate_tolerance(const tolerance_spec& tol,
                                            const bench_report& baseline) {
  std::vector<std::string> errors;
  for (const auto& [name, frac] : tol.per_metric) {
    (void)frac;
    bool known = false;
    for (const auto& s : baseline.scenarios) {
      for (const auto& m : s.metrics) {
        if (m.name != name) continue;
        known = true;
        if (m.clock == metric_clock::virtual_time) {
          errors.push_back("metric '" + name +
                           "' is measured on the deterministic virtual clock; an exact "
                           "match is required and --tolerance does not apply to it");
        }
      }
    }
    if (!known) {
      errors.push_back("metric '" + name + "' does not appear in the baseline");
    }
  }
  return errors;
}

const char* to_string(finding_kind k) {
  switch (k) {
    case finding_kind::missing_scenario: return "missing-scenario";
    case finding_kind::missing_metric: return "missing-metric";
    case finding_kind::virtual_divergence: return "virtual-divergence";
    case finding_kind::wall_regression: return "wall-regression";
    case finding_kind::wall_improvement: return "wall-improvement";
    case finding_kind::new_entry: return "new-entry";
  }
  return "?";
}

std::string finding::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " scenario=" << scenario;
  if (!metric.empty()) os << " metric=" << metric;
  switch (kind) {
    case finding_kind::virtual_divergence:
      os << " baseline=" << num17(baseline) << " current=" << num17(current)
         << " (deterministic metric; regenerate the baseline if this change is intended)";
      break;
    case finding_kind::wall_regression:
    case finding_kind::wall_improvement: {
      const double pct = baseline != 0 ? 100.0 * (current - baseline) / baseline : 0;
      char buf[32];
      std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
      os << " baseline=" << num17(baseline) << " current=" << num17(current) << " (" << buf
         << ", allowed bound " << num17(limit) << ')';
      break;
    }
    case finding_kind::missing_scenario:
    case finding_kind::missing_metric:
      os << " (present in baseline, absent from this run)";
      break;
    case finding_kind::new_entry: os << " (not in baseline; informational)"; break;
  }
  return os.str();
}

std::vector<std::string> compare_result::regressed_scenarios() const {
  std::vector<std::string> out;
  for (const auto& f : findings) {
    if (!f.fatal()) continue;
    bool seen = false;
    for (const auto& n : out) seen = seen || n == f.scenario;
    if (!seen) out.push_back(f.scenario);
  }
  return out;
}

compare_result compare_reports(const bench_report& current, const bench_report& baseline,
                               const tolerance_spec& tol) {
  compare_result out;
  for (const auto& bs : baseline.scenarios) {
    const auto* cs = current.find(bs.name);
    if (cs == nullptr) {
      out.findings.push_back({finding_kind::missing_scenario, bs.name, "", 0, 0, 0});
      continue;
    }
    for (const auto& bm : bs.metrics) {
      const metric_summary* cm = nullptr;
      for (const auto& m : cs->metrics) {
        if (m.name == bm.name) cm = &m;
      }
      if (cm == nullptr) {
        out.findings.push_back({finding_kind::missing_metric, bs.name, bm.name, 0, 0, 0});
        continue;
      }
      if (bm.clock == metric_clock::virtual_time) {
        // Exact: the baseline stores full precision, the simulator is
        // deterministic, so the only legitimate gap is zero. The epsilon
        // guards against a future emitter that rounds, nothing else.
        if (relative_gap(cm->stats.median, bm.stats.median) > 1e-12) {
          out.findings.push_back({finding_kind::virtual_divergence, bs.name, bm.name,
                                  bm.stats.median, cm->stats.median, bm.stats.median});
        }
        continue;
      }
      // Wall clock: tolerance plus an IQR-scaled band on top. The band uses
      // the larger of the two runs' IQRs so a noisy host widens its own gate
      // rather than tripping it. `dir` decides which side of the band is the
      // regression: higher is worse for times, lower is worse for rates.
      const double frac = tol.for_metric(bm.name);
      const double band = 1.5 * std::max(bm.stats.iqr, cm->stats.iqr);
      const double upper = bm.stats.median * (1.0 + frac) + band;
      const double lower = bm.stats.median * (1.0 - frac) - band;
      if (cm->stats.median > upper) {
        out.findings.push_back({bm.higher_better ? finding_kind::wall_improvement
                                                 : finding_kind::wall_regression,
                                bs.name, bm.name, bm.stats.median, cm->stats.median, upper});
      } else if (cm->stats.median < lower) {
        out.findings.push_back({bm.higher_better ? finding_kind::wall_regression
                                                 : finding_kind::wall_improvement,
                                bs.name, bm.name, bm.stats.median, cm->stats.median, lower});
      }
    }
    for (const auto& m : cs->metrics) {
      bool in_baseline = false;
      for (const auto& bm : bs.metrics) in_baseline = in_baseline || bm.name == m.name;
      if (!in_baseline) {
        out.findings.push_back({finding_kind::new_entry, bs.name, m.name, 0,
                                m.stats.median, 0});
      }
    }
  }
  for (const auto& cs : current.scenarios) {
    if (baseline.find(cs.name) == nullptr) {
      out.findings.push_back({finding_kind::new_entry, cs.name, "", 0, 0, 0});
    }
  }
  return out;
}

}  // namespace adx::perf
