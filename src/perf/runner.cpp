#include "perf/scenario.hpp"

#include <chrono>
#include <map>
#include <stdexcept>

namespace adx::perf {
namespace {

struct collected {
  std::string unit;
  metric_clock clock{metric_clock::virtual_time};
  bool higher_better{false};
  std::vector<double> values;
};

}  // namespace

scenario_summary run_scenario(const scenario& sc, unsigned reps, unsigned warmup) {
  if (reps == 0) throw std::invalid_argument("run_scenario: reps must be >= 1");
  for (unsigned i = 0; i < warmup; ++i) (void)sc.body();

  std::vector<std::string> order;  // first-seen metric order, for stable output
  std::map<std::string, collected, std::less<>> by_name;
  const auto record = [&](const metric_sample& m) {
    auto it = by_name.find(m.name);
    if (it == by_name.end()) {
      order.push_back(m.name);
      it = by_name.emplace(m.name, collected{m.unit, m.clock, m.higher_better, {}}).first;
    } else if (it->second.unit != m.unit || it->second.clock != m.clock ||
               it->second.higher_better != m.higher_better) {
      throw std::logic_error("scenario " + sc.name + ": metric " + m.name +
                             " changed unit/clock between repetitions");
    }
    it->second.values.push_back(m.value);
  };

  for (unsigned rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = sc.body();
    const auto t1 = std::chrono::steady_clock::now();
    for (const auto& m : result.metrics) record(m);
    record({"wall_ns", "ns", metric_clock::wall,
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count())});
  }

  scenario_summary out;
  out.name = sc.name;
  for (const auto& name : order) {
    const auto& c = by_name.at(name);
    if (c.values.size() != reps) {
      throw std::logic_error("scenario " + sc.name + ": metric " + name +
                             " reported in only " + std::to_string(c.values.size()) +
                             " of " + std::to_string(reps) + " repetitions");
    }
    if (c.clock == metric_clock::virtual_time) {
      // The simulator's clock cannot see host timing; any spread here means a
      // scenario body leaked real-world state into the simulation.
      for (const double v : c.values) {
        if (v != c.values.front()) {
          throw std::logic_error("scenario " + sc.name + ": virtual-clock metric " +
                                 name + " varied between repetitions (" +
                                 std::to_string(c.values.front()) + " vs " +
                                 std::to_string(v) + ") — determinism broken");
        }
      }
    }
    out.metrics.push_back({name, c.unit, c.clock, summarize(c.values),
                           static_cast<unsigned>(c.values.size()), c.higher_better});
  }
  return out;
}

std::vector<scenario_outcome> run_scenarios(const std::vector<const scenario*>& list,
                                            unsigned reps, unsigned warmup,
                                            exec::job_executor& ex,
                                            const scenario_progress& progress) {
  return ex.map(list.size(), [&](std::size_t i) {
    if (progress.started) progress.started(*list[i]);
    scenario_outcome o;
    try {
      o.summary = run_scenario(*list[i], reps, warmup);
    } catch (const std::exception& e) {
      o.error = e.what();
    }
    if (progress.finished) progress.finished(*list[i], o);
    return o;
  });
}

}  // namespace adx::perf
