// The adx-bench scenario registry.
//
// A scenario is a named, self-contained measurement: it runs one of the
// paper's table/figure experiments (or an ablation / pure-simulator
// microbench) at a fixed seed and reduced-but-representative shape, and
// returns its metrics. Scenario names match the bench binaries they mirror
// (bench_table7_cycle_adaptive, bench_fig1_cs_sweep, ...) so a regression
// report points straight at the binary to rerun by hand.
//
// The runner (run_scenario) layers warmup + R timed repetitions on top of
// each scenario body, measures host wall time around every repetition, and
// folds the per-repetition samples into median/IQR/min summaries.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "exec/job_executor.hpp"
#include "perf/metric.hpp"

namespace adx::perf {

/// What one repetition of a scenario body reports. Wall time around the body
/// is measured by the runner; bodies only report virtual-clock metrics plus
/// any wall-derived rates they want tracked (tagged metric_clock::wall).
struct scenario_result {
  std::vector<metric_sample> metrics;
};

struct scenario {
  std::string name;         ///< bench-binary-style identifier
  std::string description;  ///< one line for --list
  std::function<scenario_result()> body;
};

/// All registered scenarios, in registration order. Names are unique.
[[nodiscard]] const std::vector<scenario>& all_scenarios();

/// Finds a scenario by name; null when unknown.
[[nodiscard]] const scenario* find_scenario(std::string_view name);

/// One summarized scenario run, as recorded in BENCH.json.
struct scenario_summary {
  std::string name;
  std::vector<metric_summary> metrics;
};

/// Runs `sc` with `warmup` discarded repetitions followed by `reps` measured
/// ones and summarizes every reported metric plus the implicit `wall_ns`
/// (host wall time of one repetition, clock=wall). Virtual-clock metrics are
/// checked for cross-repetition determinism; a mismatch throws
/// std::logic_error naming the offending metric — that would mean simulated
/// behaviour depends on host timing, which the simulator forbids.
[[nodiscard]] scenario_summary run_scenario(const scenario& sc, unsigned reps,
                                            unsigned warmup);

/// One scenario's outcome in a batch run: either a summary or the error that
/// stopped it (empty = success).
struct scenario_outcome {
  scenario_summary summary;
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Progress hooks for run_scenarios. With several workers the callbacks fire
/// from pool threads, possibly concurrently — synchronize any shared output.
struct scenario_progress {
  std::function<void(const scenario&)> started;
  std::function<void(const scenario&, const scenario_outcome&)> finished;
};

/// Runs every scenario in `list` through run_scenario, fanning independent
/// scenarios out across `ex`'s workers. Wall-clock repetitions stay
/// sequential *within* each scenario (one scenario never times another's
/// reps against itself on the same worker), and outcomes are collected by
/// list index, so the report content — and every virtual-clock metric in it —
/// is identical to a sequential run for any worker count. Wall metrics keep
/// their usual noise; measure committed baselines with one worker.
[[nodiscard]] std::vector<scenario_outcome> run_scenarios(
    const std::vector<const scenario*>& list, unsigned reps, unsigned warmup,
    exec::job_executor& ex, const scenario_progress& progress = {});

}  // namespace adx::perf
