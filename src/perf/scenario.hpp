// The adx-bench scenario registry.
//
// A scenario is a named, self-contained measurement: it runs one of the
// paper's table/figure experiments (or an ablation / pure-simulator
// microbench) at a fixed seed and reduced-but-representative shape, and
// returns its metrics. Scenario names match the bench binaries they mirror
// (bench_table7_cycle_adaptive, bench_fig1_cs_sweep, ...) so a regression
// report points straight at the binary to rerun by hand.
//
// The runner (run_scenario) layers warmup + R timed repetitions on top of
// each scenario body, measures host wall time around every repetition, and
// folds the per-repetition samples into median/IQR/min summaries.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "perf/metric.hpp"

namespace adx::perf {

/// What one repetition of a scenario body reports. Wall time around the body
/// is measured by the runner; bodies only report virtual-clock metrics plus
/// any wall-derived rates they want tracked (tagged metric_clock::wall).
struct scenario_result {
  std::vector<metric_sample> metrics;
};

struct scenario {
  std::string name;         ///< bench-binary-style identifier
  std::string description;  ///< one line for --list
  std::function<scenario_result()> body;
};

/// All registered scenarios, in registration order. Names are unique.
[[nodiscard]] const std::vector<scenario>& all_scenarios();

/// Finds a scenario by name; null when unknown.
[[nodiscard]] const scenario* find_scenario(std::string_view name);

/// One summarized scenario run, as recorded in BENCH.json.
struct scenario_summary {
  std::string name;
  std::vector<metric_summary> metrics;
};

/// Runs `sc` with `warmup` discarded repetitions followed by `reps` measured
/// ones and summarizes every reported metric plus the implicit `wall_ns`
/// (host wall time of one repetition, clock=wall). Virtual-clock metrics are
/// checked for cross-repetition determinism; a mismatch throws
/// std::logic_error naming the offending metric — that would mean simulated
/// behaviour depends on host timing, which the simulator forbids.
[[nodiscard]] scenario_summary run_scenario(const scenario& sc, unsigned reps,
                                            unsigned warmup);

}  // namespace adx::perf
