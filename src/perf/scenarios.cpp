// Scenario definitions for adx-bench: every paper table, Figure 1, the six
// locking-pattern figures, representative extension/ablation benches, and a
// pure event-queue microbench. Shapes are reduced from the bench binaries'
// defaults (fewer seeds, smaller instances) so a full sweep stays in CI
// budget, but each scenario exercises the same code path as the binary it is
// named after.
//
// Scenario bodies report virtual-clock metrics (deterministic for the fixed
// seeds used here) plus wall-derived rates; the runner adds `wall_ns` around
// every repetition. Micro-cost scenarios loop their probes several times per
// repetition so the wall measurement rises above scheduler jitter.
#include "perf/scenario.hpp"

#include <chrono>
#include <memory>

#include "locks/adaptive_lock.hpp"
#include "locks/reconfigurable_lock.hpp"
#include "locks/scheduler.hpp"
#include "objects/adaptive_hash_map.hpp"
#include "objects/adaptive_monitor.hpp"
#include "perf/probes.hpp"
#include "policy/registry.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharded_event_queue.hpp"
#include "tsp/instance.hpp"
#include "tsp/parallel.hpp"
#include "workload/cs_workload.hpp"
#include "workload/ct_serve.hpp"
#include "workload/open_loop.hpp"
#include "workload/sharded_cs.hpp"

namespace adx::perf {
namespace {

constexpr metric_clock kVirtual = metric_clock::virtual_time;
constexpr metric_clock kWall = metric_clock::wall;

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Pure event-queue churn: 64 self-rescheduling chains plus tie bursts. The
// closest thing to a direct measurement of the simulator's hot path — every
// other scenario pays for its workload on top of this.
// ---------------------------------------------------------------------------

struct churn_chain {
  sim::event_queue* q{nullptr};
  std::uint64_t remaining{0};
  std::uint64_t x{0};
  std::uint64_t* tie_hits{nullptr};
};

void churn_step(churn_chain& c) {
  if (c.remaining-- == 0) return;
  c.x = c.x * 6364136223846793005ULL + 1442695040888963407ULL;
  const auto delta = sim::nanoseconds(static_cast<std::int64_t>(c.x % 997) + 1);
  c.q->schedule_after(delta, [&c] { churn_step(c); });
  if (c.x % 16 == 0) {
    // A burst of events due at the same instant: exercises FIFO tie-breaking.
    const auto at = c.q->now() + delta;
    for (int i = 0; i < 4; ++i) {
      c.q->schedule_at(at, [&c] { ++*c.tie_hits; });
    }
  }
}

scenario_result run_event_queue_churn() {
  sim::event_queue q;
  std::uint64_t tie_hits = 0;
  std::vector<churn_chain> chains(64);
  for (std::size_t i = 0; i < chains.size(); ++i) {
    chains[i] = {&q, /*remaining=*/4000, /*x=*/0x9e3779b97f4a7c15ULL + i, &tie_hits};
    q.schedule_at(sim::vtime{i}, [&c = chains[i]] { churn_step(c); });
  }
  const auto t0 = std::chrono::steady_clock::now();
  q.run();
  const double wall_s = wall_seconds_since(t0);

  scenario_result r;
  r.metrics.push_back({"events_processed", "count", kVirtual,
                       static_cast<double>(q.processed())});
  r.metrics.push_back({"tie_events", "count", kVirtual, static_cast<double>(tie_hits)});
  r.metrics.push_back({"end_virtual_us", "us", kVirtual, q.now().us()});
  r.metrics.push_back({"events_per_sec", "events/s", kWall,
                       static_cast<double>(q.processed()) / wall_s,
                       /*higher_better=*/true});
  return r;
}

// ---------------------------------------------------------------------------
// Sharded event-queue churn: 8 shards of dense self-rescheduling chains under
// a wide lookahead (big windows, few barriers) plus cross-shard sends landing
// exactly at the horizon. The sequential run supplies the virtual metrics and
// the sequential wall rate; a second, identical run fans the windows across 4
// workers — its wall rate over the sequential one is the sharding speedup the
// ROADMAP's scale item asks for.
// ---------------------------------------------------------------------------

struct sharded_churn_state {
  sim::sharded_event_queue* q{nullptr};
  std::vector<std::uint64_t> origin_counters;   // one per shard
  std::vector<std::uint64_t> deliveries;        // one per shard (local writes)
};

struct sharded_chain {
  sharded_churn_state* s{nullptr};
  unsigned shard{0};
  std::uint64_t remaining{0};
  std::uint64_t x{0};
};

void sharded_churn_step(sharded_chain& c) {
  if (c.remaining-- == 0) return;
  c.x = c.x * 6364136223846793005ULL + 1442695040888963407ULL;
  auto& q = *c.s->q;
  const auto delta = sim::nanoseconds(static_cast<std::int64_t>(c.x % 997) + 1);
  q.schedule_at(c.shard, q.now(c.shard) + delta, [&c] { sharded_churn_step(c); });
  if (c.x % 64 == 0 && q.shards() > 1) {
    // Cross-shard send at exactly now + lookahead: the legal horizon boundary.
    const unsigned to =
        static_cast<unsigned>((c.shard + 1 + c.x % (q.shards() - 1)) % q.shards());
    const std::uint64_t origin = (static_cast<std::uint64_t>(c.shard) << 32) |
                                 c.s->origin_counters[c.shard]++;
    auto* hits = &c.s->deliveries[to];
    q.send(c.shard, to, q.now(c.shard) + q.lookahead(), origin, [hits] { ++*hits; });
  }
}

struct sharded_churn_out {
  std::uint64_t processed{0};
  std::uint64_t windows{0};
  std::uint64_t cross_sends{0};
  double end_us{0};
  double wall_s{0};
};

sharded_churn_out run_sharded_churn_once(unsigned jobs) {
  constexpr unsigned kShards = 8;
  constexpr unsigned kChainsPerShard = 8;
  constexpr std::uint64_t kEventsPerChain = 2500;
  sim::sharded_event_queue q(kShards, sim::microseconds(1000));
  sharded_churn_state s{&q, std::vector<std::uint64_t>(kShards),
                        std::vector<std::uint64_t>(kShards)};
  std::vector<sharded_chain> chains(kShards * kChainsPerShard);
  for (unsigned sh = 0; sh < kShards; ++sh) {
    for (unsigned k = 0; k < kChainsPerShard; ++k) {
      auto& c = chains[sh * kChainsPerShard + k];
      c = {&s, sh, kEventsPerChain, 0x9e3779b97f4a7c15ULL + sh * 131 + k};
      q.schedule_at(sh, sim::vtime{k}, [&c] { sharded_churn_step(c); });
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (jobs > 1) {
    exec::job_executor ex(jobs);
    q.run(ex);
  } else {
    q.run();
  }
  sharded_churn_out out;
  out.wall_s = wall_seconds_since(t0);
  out.processed = q.processed();
  out.windows = q.windows();
  out.cross_sends = q.cross_sends();
  out.end_us = q.now().us();
  return out;
}

scenario_result run_sharded_queue_churn() {
  const auto seq = run_sharded_churn_once(1);
  const auto par = run_sharded_churn_once(4);

  scenario_result r;
  r.metrics.push_back({"events_processed", "count", kVirtual,
                       static_cast<double>(seq.processed)});
  r.metrics.push_back({"windows", "count", kVirtual, static_cast<double>(seq.windows)});
  r.metrics.push_back({"cross_sends", "count", kVirtual,
                       static_cast<double>(seq.cross_sends)});
  r.metrics.push_back({"end_virtual_us", "us", kVirtual, seq.end_us});
  r.metrics.push_back({"events_per_sec_seq", "events/s", kWall,
                       static_cast<double>(seq.processed) / seq.wall_s,
                       /*higher_better=*/true});
  r.metrics.push_back({"events_per_sec_jobs4", "events/s", kWall,
                       static_cast<double>(par.processed) / par.wall_s,
                       /*higher_better=*/true});
  return r;
}

// ---------------------------------------------------------------------------
// Open-loop serving: tail latency per lock kind under light and bursty load
// (src/workload/open_loop). Light load rewards the spin handoff; the bursty
// phase drives queue depths where the spin hot-spot tax compounds and only
// blocking handoffs drain — adaptive must track the winner on both. All
// latency quantiles are virtual-clock and gated exactly.
// ---------------------------------------------------------------------------

workload::open_loop_config serve_base() {
  workload::open_loop_config c;
  c.machine = sim::machine_config::hierarchical_numa(8, 8);
  c.shards = 4;
  c.locks_per_group = 1;
  c.requests_per_group = 1500;
  c.mean_interarrival_us = 600;
  c.mean_service_us = 40;
  c.remote_ratio = 0.10;
  c.params.adapt.waiting_threshold = 16;
  return c;
}

scenario_result run_serve_openloop() {
  const struct {
    const char* tag;
    bool bursty;
  } loads[] = {{"light", false}, {"bursty", true}};
  const struct {
    const char* tag;
    locks::lock_kind kind;
  } kinds[] = {{"spin", locks::lock_kind::spin},
               {"blocking", locks::lock_kind::blocking},
               {"adaptive", locks::lock_kind::adaptive}};
  scenario_result r;
  double total_requests = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& load : loads) {
    for (const auto& k : kinds) {
      auto cfg = serve_base();
      cfg.kind = k.kind;
      cfg.bursty = load.bursty;
      cfg.burst_mult = 8;
      cfg.burst_period_us = 30'000;
      const auto res = run_open_loop(cfg);
      total_requests += static_cast<double>(res.completed);
      const std::string p = std::string(load.tag) + '_' + k.tag;
      r.metrics.push_back({p + "_p50_us", "us", kVirtual,
                           static_cast<double>(res.p50_ns) / 1e3});
      r.metrics.push_back({p + "_p99_us", "us", kVirtual,
                           static_cast<double>(res.p99_ns) / 1e3});
      r.metrics.push_back({p + "_p999_us", "us", kVirtual,
                           static_cast<double>(res.p999_ns) / 1e3});
    }
  }
  const double wall_s = wall_seconds_since(t0);
  r.metrics.push_back({"requests_per_sec", "req/s", kWall, total_requests / wall_s,
                       /*higher_better=*/true});
  return r;
}

// ---------------------------------------------------------------------------
// The 1000+-node end-to-end: the hierarchical_numa() preset (1024 nodes, 32
// groups) serving bursty open-loop traffic on 8 DES shards, all three
// handoff disciplines. Virtual quantiles gate exactly; the wall rate rides
// the IQR band.
// ---------------------------------------------------------------------------

scenario_result run_serve_tail_1024() {
  const struct {
    const char* tag;
    locks::lock_kind kind;
  } kinds[] = {{"spin", locks::lock_kind::spin},
               {"blocking", locks::lock_kind::blocking},
               {"adaptive", locks::lock_kind::adaptive}};
  scenario_result r;
  double total_requests = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& k : kinds) {
    auto cfg = serve_base();
    cfg.machine = sim::machine_config::hierarchical_numa();  // 32x32 = 1024 nodes
    cfg.shards = 8;
    cfg.requests_per_group = 400;
    cfg.kind = k.kind;
    cfg.bursty = true;
    cfg.burst_mult = 8;
    cfg.burst_period_us = 30'000;
    const auto res = run_open_loop(cfg);
    total_requests += static_cast<double>(res.completed);
    const std::string p = std::string("n1024_") + k.tag;
    r.metrics.push_back({p + "_p50_us", "us", kVirtual,
                         static_cast<double>(res.p50_ns) / 1e3});
    r.metrics.push_back({p + "_p99_us", "us", kVirtual,
                         static_cast<double>(res.p99_ns) / 1e3});
    r.metrics.push_back({p + "_p999_us", "us", kVirtual,
                         static_cast<double>(res.p999_ns) / 1e3});
    if (k.kind == locks::lock_kind::adaptive) {
      r.metrics.push_back({"n1024_completed", "count", kVirtual,
                           static_cast<double>(res.completed)});
      r.metrics.push_back({"n1024_windows", "count", kVirtual,
                           static_cast<double>(res.windows)});
      r.metrics.push_back({"n1024_cross_sends", "count", kVirtual,
                           static_cast<double>(res.cross_sends)});
    }
  }
  const double wall_s = wall_seconds_since(t0);
  r.metrics.push_back({"requests_per_sec", "req/s", kWall, total_requests / wall_s,
                       /*higher_better=*/true});
  return r;
}

// ---------------------------------------------------------------------------
// Federated ct sweep: the fig1-style closed-loop community with REAL ct
// threads, one runtime per NUMA group on the execution domain. Lock
// handoffs, echo round-trips and policy pumps all cross shard boundaries
// through federation::post(), and every reported figure is virtual-clock —
// the baseline gate therefore also pins the cross-shard protocol itself
// (elapsed times, echo quantiles and post counts are shard-invariant).
// ---------------------------------------------------------------------------

scenario_result run_ct_sharded_cs() {
  const struct {
    const char* tag;
    locks::lock_kind kind;
  } kinds[] = {{"spin", locks::lock_kind::spin},
               {"blocking", locks::lock_kind::blocking},
               {"adaptive", locks::lock_kind::adaptive}};
  scenario_result r;
  double total_acquisitions = 0;
  const auto t0 = std::chrono::steady_clock::now();
  exec::job_executor ex(4);
  for (const auto& k : kinds) {
    workload::sharded_cs_config cfg;
    cfg.machine = sim::machine_config::hierarchical_numa(4, 6);
    cfg.threads_per_group = 4;
    cfg.iterations = 30;
    cfg.remote_every = 3;
    cfg.kind = k.kind;
    cfg.shards = 4;
    const auto res = run_sharded_cs(cfg, &ex);
    total_acquisitions += static_cast<double>(res.acquisitions);
    const std::string p = k.tag;
    r.metrics.push_back({p + "_virtual_ms", "ms", kVirtual, res.elapsed.ms()});
    r.metrics.push_back({p + "_echo_p99_us", "us", kVirtual, res.echo_rtt_p99_us});
    r.metrics.push_back({p + "_acquisitions", "count", kVirtual,
                         static_cast<double>(res.acquisitions)});
    if (k.kind == locks::lock_kind::adaptive) {
      r.metrics.push_back({"echoes", "count", kVirtual,
                           static_cast<double>(res.echoes)});
      r.metrics.push_back({"cross_posts", "count", kVirtual,
                           static_cast<double>(res.posts)});
      r.metrics.push_back({"windows", "count", kVirtual,
                           static_cast<double>(res.domain.windows)});
    }
  }
  const double wall_s = wall_seconds_since(t0);
  r.metrics.push_back({"acquisitions_per_sec", "acq/s", kWall,
                       total_acquisitions / wall_s,
                       /*higher_better=*/true});
  return r;
}

// ---------------------------------------------------------------------------
// The 4096-node end-to-end: open-loop serving with real ct server threads on
// the fat_tree_hpc4096 preset (64 groups x 64 nodes), one federated runtime
// per group on 8 DES shards. The largest machine the repo simulates; latency
// quantiles, served counts and cross-group post counts gate exactly.
// ---------------------------------------------------------------------------

scenario_result run_serve_ct_fat4096() {
  const struct {
    const char* tag;
    locks::lock_kind kind;
  } kinds[] = {{"spin", locks::lock_kind::spin},
               {"blocking", locks::lock_kind::blocking},
               {"adaptive", locks::lock_kind::adaptive}};
  scenario_result r;
  double total_served = 0;
  const auto t0 = std::chrono::steady_clock::now();
  exec::job_executor ex(4);
  for (const auto& k : kinds) {
    workload::ct_serve_config cfg;
    cfg.machine = sim::machine_config::fat_tree_hpc4096();
    cfg.servers_per_group = 2;
    cfg.requests_per_group = 25;  // x64 groups = 1600 requests
    cfg.mean_interarrival_us = 80;
    cfg.remote_fraction = 0.25;
    cfg.kind = k.kind;
    cfg.shards = 8;
    const auto res = run_ct_serve(cfg, &ex);
    total_served += static_cast<double>(res.served);
    const std::string p = std::string("fat4096_") + k.tag;
    r.metrics.push_back({p + "_p50_us", "us", kVirtual, res.latency_p50_us});
    r.metrics.push_back({p + "_p99_us", "us", kVirtual, res.latency_p99_us});
    r.metrics.push_back({p + "_virtual_ms", "ms", kVirtual, res.elapsed.ms()});
    if (k.kind == locks::lock_kind::adaptive) {
      r.metrics.push_back({"fat4096_served", "count", kVirtual,
                           static_cast<double>(res.served)});
      r.metrics.push_back({"fat4096_remote", "count", kVirtual,
                           static_cast<double>(res.remote_requests)});
      r.metrics.push_back({"fat4096_posts", "count", kVirtual,
                           static_cast<double>(res.posts)});
      r.metrics.push_back({"fat4096_windows", "count", kVirtual,
                           static_cast<double>(res.domain.windows)});
    }
  }
  const double wall_s = wall_seconds_since(t0);
  r.metrics.push_back({"requests_per_sec", "req/s", kWall, total_served / wall_s,
                       /*higher_better=*/true});
  return r;
}

// ---------------------------------------------------------------------------
// Tables 1-3: TSP blocking vs adaptive (reduced: 16 cities, 3 seeds).
// ---------------------------------------------------------------------------

scenario_result run_tsp_scenario(tsp::variant v) {
  constexpr unsigned kCities = 16;
  constexpr unsigned kProcessors = 8;
  const std::vector<std::uint64_t> seeds = {9001, 1234, 777};

  const auto t0 = std::chrono::steady_clock::now();
  const auto blocking = run_tsp(v, locks::lock_kind::blocking, kCities, kProcessors, seeds);
  const auto adaptive = run_tsp(v, locks::lock_kind::adaptive, kCities, kProcessors, seeds);
  const double wall_s = wall_seconds_since(t0);

  const double total_nodes =
      static_cast<double>(blocking.mean_expansions + adaptive.mean_expansions) *
      static_cast<double>(seeds.size());

  scenario_result r;
  r.metrics.push_back({"blocking_virtual_ms", "ms", kVirtual, blocking.mean_ms});
  r.metrics.push_back({"adaptive_virtual_ms", "ms", kVirtual, adaptive.mean_ms});
  r.metrics.push_back({"improvement_frac", "frac", kVirtual,
                       (blocking.mean_ms - adaptive.mean_ms) / blocking.mean_ms});
  r.metrics.push_back({"expansions_blocking", "count", kVirtual,
                       static_cast<double>(blocking.mean_expansions)});
  r.metrics.push_back({"expansions_adaptive", "count", kVirtual,
                       static_cast<double>(adaptive.mean_expansions)});
  r.metrics.push_back({"tsp_nodes_per_sec", "nodes/s", kWall, total_nodes / wall_s,
                       /*higher_better=*/true});
  return r;
}

// ---------------------------------------------------------------------------
// Tables 4-5: lock/unlock op cost, every kind, local + remote.
// ---------------------------------------------------------------------------

scenario_result run_lock_op_costs(bool unlock_side) {
  constexpr int kInner = 8;  // lift wall time above timer jitter
  const struct {
    locks::lock_kind kind;
    const char* name;
  } kinds[] = {
      {locks::lock_kind::atomior, "atomior"},   {locks::lock_kind::spin, "spin"},
      {locks::lock_kind::backoff, "backoff"},   {locks::lock_kind::blocking, "blocking"},
      {locks::lock_kind::adaptive, "adaptive"},
  };
  scenario_result r;
  for (int i = 0; i < kInner; ++i) {
    const bool record = i == 0;  // identical every iteration (deterministic)
    for (const auto& k : kinds) {
      const auto local = time_lock_ops(k.kind, false);
      const auto remote = time_lock_ops(k.kind, true);
      if (!record) continue;
      const char* op = unlock_side ? "unlock" : "lock";
      const double lv = unlock_side ? local.unlock_us : local.lock_us;
      const double rv = unlock_side ? remote.unlock_us : remote.lock_us;
      r.metrics.push_back({std::string(op) + '_' + k.name + "_local_us", "us", kVirtual, lv});
      r.metrics.push_back({std::string(op) + '_' + k.name + "_remote_us", "us", kVirtual, rv});
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Tables 6-7: the locking cycle (release-to-acquire with a waiter present).
// ---------------------------------------------------------------------------

scenario_result run_cycle_static() {
  constexpr int kInner = 6;
  const struct {
    locks::lock_kind kind;
    const char* name;
  } kinds[] = {
      {locks::lock_kind::spin, "spin"},
      {locks::lock_kind::backoff, "backoff"},
      {locks::lock_kind::blocking, "blocking"},
  };
  scenario_result r;
  for (int i = 0; i < kInner; ++i) {
    const bool record = i == 0;
    for (const auto& k : kinds) {
      const auto make = [&](ct::runtime&, sim::node_id home) {
        return locks::make_lock(k.kind, home, locks::lock_cost_model::butterfly_cthreads());
      };
      const double local = time_cycle_us(make, false);
      const double remote = time_cycle_us(make, true);
      if (!record) continue;
      r.metrics.push_back({std::string("cycle_") + k.name + "_local_us", "us", kVirtual, local});
      r.metrics.push_back({std::string("cycle_") + k.name + "_remote_us", "us", kVirtual, remote});
    }
  }
  return r;
}

scenario_result run_cycle_adaptive() {
  constexpr int kInner = 20;  // small per-cycle cost: amortize timer jitter
  const struct {
    const char* name;
    locks::waiting_policy policy;
  } rows[] = {
      {"as_spin", locks::waiting_policy::pure_spin(4096)},
      {"as_blocking", locks::waiting_policy::pure_sleep()},
  };
  scenario_result r;
  for (int i = 0; i < kInner; ++i) {
    const bool record = i == 0;
    for (const auto& row : rows) {
      const auto make = [&](ct::runtime&, sim::node_id home) {
        // A reconfigurable lock pinned to the configuration (no monitor /
        // policy feedback, exactly like an adaptive lock between adaptations).
        return std::make_unique<locks::reconfigurable_lock>(
            home, locks::lock_cost_model::butterfly_cthreads(), row.policy);
      };
      const double local = time_cycle_us(make, false);
      const double remote = time_cycle_us(make, true);
      if (!record) continue;
      r.metrics.push_back({std::string("cycle_") + row.name + "_local_us", "us", kVirtual, local});
      r.metrics.push_back({std::string("cycle_") + row.name + "_remote_us", "us", kVirtual, remote});
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Table 8: configuration-operation costs (Ψ machinery).
// ---------------------------------------------------------------------------

double time_config_acquisition(bool remote) {
  ct::runtime rt(sim::machine_config::butterfly_gp1000());
  locks::reconfigurable_lock lk(remote ? 7 : 0,
                                locks::lock_cost_model::butterfly_cthreads());
  double us = 0;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    const auto t0 = ctx.now();
    (void)co_await lk.acquire_attribute(ctx, "spin-time", 1);
    us = (ctx.now() - t0).us();
  });
  rt.run_all();
  return us;
}

double time_config_policy(bool remote) {
  ct::runtime rt(sim::machine_config::butterfly_gp1000());
  locks::reconfigurable_lock lk(remote ? 7 : 0,
                                locks::lock_cost_model::butterfly_cthreads());
  double us = 0;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    const auto t0 = ctx.now();
    co_await lk.configure_waiting_policy(ctx, locks::waiting_policy::pure_spin(16));
    us = (ctx.now() - t0).us();
  });
  rt.run_all();
  return us;
}

double time_config_scheduler(bool remote) {
  ct::runtime rt(sim::machine_config::butterfly_gp1000());
  locks::reconfigurable_lock lk(remote ? 7 : 0,
                                locks::lock_cost_model::butterfly_cthreads());
  double us = 0;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    const auto t0 = ctx.now();
    co_await lk.configure_scheduler(ctx, std::make_unique<locks::priority_scheduler>());
    us = (ctx.now() - t0).us();
  });
  rt.run_all();
  return us;
}

scenario_result run_config_ops() {
  constexpr int kInner = 8;
  scenario_result r;
  for (int i = 0; i < kInner; ++i) {
    const bool record = i == 0;
    const double acq_l = time_config_acquisition(false);
    const double acq_r = time_config_acquisition(true);
    const double pol_l = time_config_policy(false);
    const double pol_r = time_config_policy(true);
    const double sch_l = time_config_scheduler(false);
    const double sch_r = time_config_scheduler(true);
    if (!record) continue;
    r.metrics.push_back({"acquisition_local_us", "us", kVirtual, acq_l});
    r.metrics.push_back({"acquisition_remote_us", "us", kVirtual, acq_r});
    r.metrics.push_back({"configure_policy_local_us", "us", kVirtual, pol_l});
    r.metrics.push_back({"configure_policy_remote_us", "us", kVirtual, pol_r});
    r.metrics.push_back({"configure_scheduler_local_us", "us", kVirtual, sch_l});
    r.metrics.push_back({"configure_scheduler_remote_us", "us", kVirtual, sch_r});
  }
  return r;
}

// ---------------------------------------------------------------------------
// Figure 1: critical-section-length sweep (reduced grid).
// ---------------------------------------------------------------------------

scenario_result run_fig1_cs_sweep() {
  const double cs_lengths_us[] = {10, 100, 800};
  const struct {
    const char* name;
    locks::lock_kind kind;
    std::int64_t spin_limit;
  } cols[] = {
      {"blocking", locks::lock_kind::blocking, 0},
      {"combined10", locks::lock_kind::combined, 10},
      {"adaptive", locks::lock_kind::adaptive, 0},
  };
  scenario_result r;
  double total_ms = 0;
  double total_blocks = 0;
  for (const auto& col : cols) {
    double col_ms = 0;
    for (const double cs : cs_lengths_us) {
      workload::cs_config cfg;
      cfg.processors = 6;
      cfg.threads = 12;
      cfg.iterations = 60;
      cfg.cs_length = sim::microseconds(cs);
      cfg.think_time = sim::microseconds(3 * cs + 100);
      cfg.kind = col.kind;
      cfg.params.combined_spin_limit = col.spin_limit;
      // Multiprogramming-appropriate adaptation constants (as in the bench).
      cfg.params.adapt = {2, 25, 50, 2};
      const auto res = run_cs_workload(cfg);
      col_ms += res.elapsed.ms();
      total_blocks += static_cast<double>(res.blocks);
    }
    total_ms += col_ms;
    r.metrics.push_back({std::string(col.name) + "_virtual_ms", "ms", kVirtual, col_ms});
  }
  r.metrics.push_back({"total_virtual_ms", "ms", kVirtual, total_ms});
  r.metrics.push_back({"total_blocks", "count", kVirtual, total_blocks});
  return r;
}

// ---------------------------------------------------------------------------
// Figures 4-9: TSP locking patterns (one recorded solve each).
// ---------------------------------------------------------------------------

scenario_result run_pattern_figure(tsp::variant v, bool qlock) {
  auto cfg = tsp_cfg(v, locks::lock_kind::blocking, 10);
  cfg.record_patterns = true;
  const auto inst = tsp::instance::random_asymmetric(20, 9001);
  const auto res = tsp::solve_parallel(inst, cfg);
  const auto& report = qlock ? res.lock_reports[0] : res.lock_reports[2];

  scenario_result r;
  r.metrics.push_back({"elapsed_virtual_ms", "ms", kVirtual, res.elapsed.ms()});
  r.metrics.push_back({"expansions", "count", kVirtual,
                       static_cast<double>(res.expansions)});
  r.metrics.push_back({"lock_requests", "count", kVirtual,
                       static_cast<double>(report.requests)});
  r.metrics.push_back({"contended_frac", "frac", kVirtual, report.contention_ratio});
  r.metrics.push_back({"peak_waiting", "count", kVirtual,
                       static_cast<double>(report.peak_waiting)});
  return r;
}

// ---------------------------------------------------------------------------
// Extension: spin vs. blocking by threads-per-processor (reduced).
// ---------------------------------------------------------------------------

scenario_result run_ext_spin_vs_block() {
  scenario_result r;
  const struct {
    unsigned threads;
    unsigned procs;
    const char* tag;
  } shapes[] = {{6, 6, "1x"}, {12, 6, "2x"}, {18, 6, "3x"}};
  for (const auto& s : shapes) {
    workload::cs_config base;
    base.processors = s.procs;
    base.threads = s.threads;
    base.iterations = 60;
    base.cs_length = sim::microseconds(100);
    base.think_time = sim::microseconds(300);
    if (s.threads <= s.procs) {
      auto c = base;
      c.kind = locks::lock_kind::spin;
      r.metrics.push_back({std::string("spin_") + s.tag + "_virtual_ms", "ms", kVirtual,
                           run_cs_workload(c).elapsed.ms()});
    }
    auto cc = base;
    cc.kind = locks::lock_kind::combined;
    cc.params.combined_spin_limit = 25;
    r.metrics.push_back({std::string("combined25_") + s.tag + "_virtual_ms", "ms", kVirtual,
                         run_cs_workload(cc).elapsed.ms()});
    auto cb = base;
    cb.kind = locks::lock_kind::blocking;
    r.metrics.push_back({std::string("blocking_") + s.tag + "_virtual_ms", "ms", kVirtual,
                         run_cs_workload(cb).elapsed.ms()});
  }
  return r;
}

// ---------------------------------------------------------------------------
// Ablation: constant-wire vs. staged-butterfly interconnect (reduced).
// ---------------------------------------------------------------------------

scenario_result run_abl_interconnect() {
  scenario_result r;
  for (const bool staged : {false, true}) {
    for (const auto kind : {locks::lock_kind::spin, locks::lock_kind::adaptive}) {
      workload::cs_config cfg;
      cfg.processors = 10;
      cfg.threads = 10;
      cfg.iterations = 60;
      cfg.cs_length = sim::microseconds(60);
      cfg.think_time = sim::microseconds(150);
      cfg.kind = kind;
      cfg.params.adapt = {12, 20, 400, 2};
      if (staged) cfg.machine.wire_model = sim::interconnect_model::butterfly;
      const auto res = run_cs_workload(cfg);
      r.metrics.push_back({std::string(staged ? "butterfly_" : "constant_") +
                               locks::to_string(kind) + "_virtual_ms",
                           "ms", kVirtual, res.elapsed.ms()});
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Ablation: simple-adapt constants sweep (reduced grid).
// ---------------------------------------------------------------------------

scenario_result run_abl_threshold() {
  constexpr unsigned kCities = 14;
  const auto inst = tsp::instance::random_asymmetric(kCities, 9001);
  scenario_result r;
  {
    auto cfg = tsp_cfg(tsp::variant::centralized, locks::lock_kind::blocking, 10);
    const auto res = tsp::solve_parallel(inst, cfg);
    r.metrics.push_back({"blocking_baseline_virtual_ms", "ms", kVirtual, res.elapsed.ms()});
  }
  for (const std::int64_t threshold : {1, 12}) {
    for (const std::int64_t n : {5, 20}) {
      auto cfg = tsp_cfg(tsp::variant::centralized, locks::lock_kind::adaptive, 10);
      cfg.run.params.adapt.waiting_threshold = threshold;
      cfg.run.params.adapt.n = n;
      const auto res = tsp::solve_parallel(inst, cfg);
      r.metrics.push_back({"t" + std::to_string(threshold) + "_n" + std::to_string(n) +
                               "_virtual_ms",
                           "ms", kVirtual, res.elapsed.ms()});
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Ablation: adaptation-policy sweep over the Figure 1 grid.
// ---------------------------------------------------------------------------

scenario_result run_abl_policy() {
  const double cs_lengths_us[] = {10, 100, 800};
  // The registered policy family plus one wrapped variant; the empty spec is
  // the built-in simple-adapt loop (the plain-adaptive reference column).
  const struct {
    const char* tag;
    policy::policy_spec spec;
  } cols[] = {
      {"simple_adapt", policy::policy_spec{}},
      {"break_even", policy::default_spec("break-even")},
      {"ewma_hold", policy::default_spec("ewma-hold")},
      {"multi_sensor", policy::default_spec("multi-sensor")},
      {"simple_adapt_hyst", policy::default_spec("simple-adapt").with_hysteresis(2)},
      // Same break-even core at a quarter of the sampling rate: probes the
      // paper's monitoring-overhead tradeoff against the period-2 columns.
      {"break_even_p8", policy::default_spec("break-even", 8)},
  };
  scenario_result r;
  for (const auto& col : cols) {
    double col_ms = 0;
    for (const double cs : cs_lengths_us) {
      workload::cs_config cfg;
      cfg.processors = 6;
      cfg.threads = 12;
      cfg.iterations = 60;
      cfg.cs_length = sim::microseconds(cs);
      cfg.think_time = sim::microseconds(3 * cs + 100);
      cfg.kind = locks::lock_kind::adaptive;
      cfg.params.adapt = {2, 25, 50, 2};
      cfg.params.policy = col.spec;
      const auto res = run_cs_workload(cfg);
      col_ms += res.elapsed.ms();
      r.metrics.push_back({std::string(col.tag) + "_cs" +
                               std::to_string(static_cast<int>(cs)) + "_virtual_ms",
                           "ms", kVirtual, res.elapsed.ms()});
    }
    r.metrics.push_back({std::string(col.tag) + "_total_virtual_ms", "ms", kVirtual,
                         col_ms});
  }
  return r;
}

// ---------------------------------------------------------------------------
// Ablation: sync vs async policy execution (src/policy/runtime). The async
// rows queue observations at the feedback point (zero inline policy cost)
// and a daemon on a spare processor drains them periodically; all metrics
// are virtual-clock and therefore gated exactly.
// ---------------------------------------------------------------------------

scenario_result run_abl_async_policy() {
  const double cs_lengths_us[] = {10, 100, 800};
  const struct {
    const char* tag;
    bool async;
  } cols[] = {{"sync", false}, {"async", true}};
  scenario_result r;
  for (const auto& col : cols) {
    double col_ms = 0;
    std::uint64_t ticks = 0;
    std::uint64_t pumped = 0;
    for (const double cs : cs_lengths_us) {
      workload::cs_config cfg;
      cfg.processors = 6;
      cfg.threads = 12;
      cfg.iterations = 60;
      cfg.cs_length = sim::microseconds(cs);
      cfg.think_time = sim::microseconds(3 * cs + 100);
      cfg.kind = locks::lock_kind::adaptive;
      cfg.params.adapt = {2, 25, 50, 2};
      cfg.params.policy = policy::default_spec("break-even");
      if (col.async) cfg.params.policy.with_async();
      const auto res = run_cs_workload(cfg);
      col_ms += res.elapsed.ms();
      ticks += res.policy_ticks;
      pumped += res.policy_pumped;
    }
    r.metrics.push_back({std::string(col.tag) + "_total_virtual_ms", "ms", kVirtual,
                         col_ms});
    if (col.async) {
      r.metrics.push_back({"async_daemon_ticks", "count", kVirtual,
                           static_cast<double>(ticks)});
      r.metrics.push_back({"async_pumped", "count", kVirtual,
                           static_cast<double>(pumped)});
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// src/objects: striped hash map, fixed vs adaptive stripe granularity. The
// coarse column wins global sweeps (size_slow touches every stripe lock),
// the fine column wins point-op contention; the adaptive column must track
// whichever tradeoff the current shape rewards.
// ---------------------------------------------------------------------------

enum class map_mix { insert, find, mixed };

struct map_run_out {
  double virtual_ms = 0;
  unsigned final_stripes = 0;
  std::uint64_t resizes = 0;
};

map_run_out run_map_workload(map_mix mix, unsigned procs, unsigned threads,
                             unsigned fixed_stripes, bool adaptive,
                             std::uint64_t seed) {
  ct::runtime rt(sim::machine_config::test_machine(procs));

  objects::map_config mc;
  mc.min_stripes = adaptive ? 4 : fixed_stripes;
  mc.max_stripes = adaptive ? 64 : fixed_stripes;
  mc.initial_stripes = mc.min_stripes;
  mc.stripe_factor = 4;  // 4 -> 16 -> 64
  mc.buckets_per_stripe = 8;
  mc.nodes = procs;
  mc.adaptive = adaptive;
  // The oversubscribed shapes run 3 threads per processor: use the bounded
  // spin-then-block idle rule for the stripe locks (§4's multiprogramming
  // caveat — an unbounded idle spin can starve a ready stripe holder).
  mc.lock_params.adapt.pure_spin_on_idle = false;
  // Per-object policy tuning (the §4 caveat applies to the map policy too):
  // the default confirm/cooldown admits transient queue-skew spikes, which
  // on this workload thrashes grow/shrink cycles — each one a full quiesce.
  // With 2% global sweeps every extra stripe makes each sweep costlier, so
  // growth has to clear a high bar: a wide deadband (skew 6, load 400) plus
  // longer confirmation keeps Ψ for sustained signals and lets the map hold
  // coarse striping when the sweep tax outweighs point-op relief.
  mc.spec = objects::default_map_spec()
                .with_param("skew-grow", 6)
                .with_param("load-grow", 400)
                .with_param("load-shrink", 40)
                .with_param("confirm", 3)
                .with_param("cooldown", 16);
  objects::adaptive_hash_map<std::uint64_t, std::int64_t> map(mc);

  // The point-op working set scales with the thread count, as a live cache
  // would: the oversubscribed shape carries 4x the keys, so coarse striping
  // pays long chains exactly when contention is also at its worst.
  const std::uint64_t key_space = 40 * std::max(1u, threads / 6);
  constexpr std::uint64_t kInsertSpace = 256;  // insert bench key range
  constexpr unsigned kOps = 220;

  // Pre-drawn per-thread streams: scheduling cannot perturb the draws.
  sim::rng r(seed);
  std::vector<std::vector<double>> u(threads), jit(threads);
  std::vector<std::vector<std::uint64_t>> key(threads);
  for (unsigned t = 0; t < threads; ++t) {
    for (unsigned i = 0; i < kOps; ++i) {
      u[t].push_back(r.uniform01());
      key[t].push_back(r.below(mix == map_mix::insert ? kInsertSpace : key_space));
      jit[t].push_back(r.uniform01());
    }
  }

  if (mix == map_mix::find) {
    // Preload the working set so every probe traverses a realistic chain.
    rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
      for (std::uint64_t k = 0; k < key_space; ++k) {
        co_await map.insert(ctx, k, static_cast<std::int64_t>(k));
      }
    });
    rt.run_all();
  }

  for (unsigned t = 0; t < threads; ++t) {
    rt.fork(t % procs, [&, t](ct::context& ctx) -> ct::task<void> {
      for (unsigned i = 0; i < kOps; ++i) {
        const auto k = key[t][i];
        switch (mix) {
          case map_mix::insert:
            co_await map.insert(ctx, k, static_cast<std::int64_t>(k));
            break;
          case map_mix::find:
            co_await map.find(ctx, k);
            break;
          case map_mix::mixed:
            if (u[t][i] < 0.40) {
              co_await map.insert(ctx, k, static_cast<std::int64_t>(k));
            } else if (u[t][i] < 0.78) {
              co_await map.find(ctx, k);
            } else if (u[t][i] < 0.98) {
              co_await map.erase(ctx, k);
            } else {
              co_await map.size_slow(ctx);  // ~2% global ops
            }
            break;
        }
        co_await ctx.sleep_for(sim::nanoseconds(
            500 + static_cast<std::int64_t>(1500.0 * jit[t][i])));
      }
    });
  }
  const auto t0 = rt.now();
  rt.run_all();

  map_run_out out;
  out.virtual_ms = (rt.now() - t0).ms();
  out.final_stripes = map.active_stripes();
  out.resizes = map.resizes();
  return out;
}

scenario_result run_hashmap_bench(map_mix mix) {
  const struct {
    const char* tag;
    unsigned procs, threads;
  } shapes[] = {{"low", 6, 6}, {"high", 8, 24}};
  const struct {
    const char* tag;
    unsigned stripes;  // 0 = adaptive 4..64
  } cols[] = {{"fixed4", 4}, {"fixed64", 64}, {"adaptive", 0}};

  scenario_result r;
  for (const auto& s : shapes) {
    for (const auto& c : cols) {
      const auto out = run_map_workload(mix, s.procs, s.threads,
                                        c.stripes == 0 ? 4 : c.stripes,
                                        /*adaptive=*/c.stripes == 0, /*seed=*/41);
      r.metrics.push_back({std::string(s.tag) + "_" + c.tag + "_virtual_ms", "ms",
                           kVirtual, out.virtual_ms});
      if (c.stripes == 0) {
        r.metrics.push_back({std::string(s.tag) + "_adaptive_final_stripes", "count",
                             kVirtual, static_cast<double>(out.final_stripes)});
      }
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// src/objects: monitor execution-mode ablation. Under saturation every
// section serializes through the monitor either way, so delegated
// (combining) wins by replacing a handoff+wake per section with batched
// execution — decisively so at the long shape where classic's wake chain
// compounds; the mode-adapt column starts classic and must learn to
// delegate on both shapes.
// ---------------------------------------------------------------------------

double run_monitor_workload(std::int64_t initial_mode, bool adaptive,
                            sim::vdur section, std::uint64_t seed) {
  constexpr unsigned kProcs = 4;
  constexpr unsigned kThreads = 12;
  constexpr unsigned kOps = 120;
  ct::runtime rt(sim::machine_config::test_machine(kProcs));

  objects::monitor_config mc;
  mc.initial_mode = initial_mode;
  mc.adaptive = adaptive;
  // Both shapes keep the monitor saturated (12 threads, 4 procs), where
  // delegation's batched execution avoids a handoff+wake per section; widen
  // the delegate band so the 60us shape is inside it rather than in the
  // default 30..80us hold band, and reserve classic for truly long sections.
  mc.spec = objects::default_monitor_spec()
                .with_param("delegate-below-us", 70)
                .with_param("classic-above-us", 120);
  objects::adaptive_monitor mon(mc);

  sim::rng r(seed);
  std::vector<std::vector<double>> jit(kThreads);
  for (auto& v : jit) {
    for (unsigned i = 0; i < kOps; ++i) v.push_back(r.uniform01());
  }

  std::uint64_t counter = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    rt.fork(t % kProcs, [&, t](ct::context& ctx) -> ct::task<void> {
      for (unsigned i = 0; i < kOps; ++i) {
        co_await mon.execute(ctx, section, [&counter] { ++counter; });
        co_await ctx.sleep_for(sim::nanoseconds(
            1000 + static_cast<std::int64_t>(3000.0 * jit[t][i])));
      }
    });
  }
  const auto t0 = rt.now();
  rt.run_all();
  return (rt.now() - t0).ms();
}

scenario_result run_monitor_delegation() {
  const struct {
    const char* tag;
    sim::vdur section;
  } shapes[] = {{"short", sim::microseconds(4)}, {"long", sim::microseconds(60)}};
  const struct {
    const char* tag;
    std::int64_t mode;
    bool adaptive;
  } cols[] = {{"classic", objects::adaptive_monitor::kClassic, false},
              {"delegated", objects::adaptive_monitor::kDelegated, false},
              {"adaptive", objects::adaptive_monitor::kClassic, true}};
  scenario_result r;
  for (const auto& s : shapes) {
    for (const auto& c : cols) {
      r.metrics.push_back({std::string(s.tag) + "_" + c.tag + "_virtual_ms", "ms",
                           kVirtual,
                           run_monitor_workload(c.mode, c.adaptive, s.section, 43)});
    }
  }
  return r;
}

std::vector<scenario> make_registry() {
  std::vector<scenario> out;
  const auto add = [&](std::string name, std::string desc,
                       std::function<scenario_result()> body) {
    out.push_back({std::move(name), std::move(desc), std::move(body)});
  };

  add("sim_event_queue_churn",
      "pure event-queue stress: 64 self-rescheduling chains + tie bursts",
      run_event_queue_churn);
  add("sim_sharded_queue_churn",
      "sharded event-queue stress: 8 shards, windowed lookahead, horizon sends",
      run_sharded_queue_churn);
  add("bench_serve_openloop",
      "open-loop serving: tail latency per lock kind, light + bursty load",
      run_serve_openloop);
  add("bench_serve_tail_1024",
      "open-loop serving on the 1024-node hierarchical preset, 8 DES shards",
      run_serve_tail_1024);
  add("bench_sharded_cs",
      "federated ct CS sweep: real threads, cross-shard echoes, 4 shards",
      run_ct_sharded_cs);
  add("bench_serve_ct_fat4096",
      "ct serving on the 4096-node fat-tree preset, 64 federated runtimes",
      run_serve_ct_fat4096);
  add("bench_table1_tsp_central", "Table 1: centralized TSP, blocking vs adaptive",
      [] { return run_tsp_scenario(tsp::variant::centralized); });
  add("bench_table2_tsp_dist", "Table 2: distributed TSP, blocking vs adaptive",
      [] { return run_tsp_scenario(tsp::variant::distributed); });
  add("bench_table3_tsp_distlb", "Table 3: distributed+LB TSP, blocking vs adaptive",
      [] { return run_tsp_scenario(tsp::variant::distributed_lb); });
  add("bench_table4_lock_cost", "Table 4: Lock-op cost, every kind, local/remote",
      [] { return run_lock_op_costs(false); });
  add("bench_table5_unlock_cost", "Table 5: Unlock-op cost, every kind, local/remote",
      [] { return run_lock_op_costs(true); });
  add("bench_table6_cycle_static", "Table 6: locking cycle, static locks",
      run_cycle_static);
  add("bench_table7_cycle_adaptive", "Table 7: locking cycle, pinned adaptive lock",
      run_cycle_adaptive);
  add("bench_table8_config_ops", "Table 8: lock configuration-operation costs",
      run_config_ops);
  add("bench_fig1_cs_sweep", "Figure 1: CS-length sweep, blocking/combined/adaptive",
      run_fig1_cs_sweep);
  add("bench_fig4_pattern_central_qlock", "Figure 4: centralized TSP, qlock pattern",
      [] { return run_pattern_figure(tsp::variant::centralized, true); });
  add("bench_fig5_pattern_central_globact", "Figure 5: centralized TSP, globact pattern",
      [] { return run_pattern_figure(tsp::variant::centralized, false); });
  add("bench_fig6_pattern_dist_qlock", "Figure 6: distributed TSP, qlock pattern",
      [] { return run_pattern_figure(tsp::variant::distributed, true); });
  add("bench_fig7_pattern_dist_globact", "Figure 7: distributed TSP, globact pattern",
      [] { return run_pattern_figure(tsp::variant::distributed, false); });
  add("bench_fig8_pattern_distlb_qlock", "Figure 8: distributed+LB TSP, qlock pattern",
      [] { return run_pattern_figure(tsp::variant::distributed_lb, true); });
  add("bench_fig9_pattern_distlb_globact", "Figure 9: distributed+LB TSP, globact pattern",
      [] { return run_pattern_figure(tsp::variant::distributed_lb, false); });
  add("bench_ext_spin_vs_block", "extension: spin vs blocking by threads/processor",
      run_ext_spin_vs_block);
  add("bench_abl_interconnect", "ablation: constant-wire vs staged butterfly",
      run_abl_interconnect);
  add("bench_abl_threshold", "ablation: simple-adapt Waiting-Threshold x n",
      run_abl_threshold);
  add("bench_abl_policy", "ablation: adaptation-policy family over the Fig. 1 grid",
      run_abl_policy);
  add("bench_abl_async_policy",
      "ablation: sync vs async policy execution over the Fig. 1 grid",
      run_abl_async_policy);
  add("bench_hashmap_insert", "objects: hash-map insert storm, fixed vs adaptive stripes",
      [] { return run_hashmap_bench(map_mix::insert); });
  add("bench_hashmap_find", "objects: hash-map read-only probes, fixed vs adaptive stripes",
      [] { return run_hashmap_bench(map_mix::find); });
  add("bench_hashmap_mixed", "objects: hash-map mixed ops + 2% global sweeps, fixed vs adaptive",
      [] { return run_hashmap_bench(map_mix::mixed); });
  add("bench_monitor_delegation", "objects: monitor classic vs delegated vs mode-adapt",
      run_monitor_delegation);
  return out;
}

}  // namespace

const std::vector<scenario>& all_scenarios() {
  static const std::vector<scenario> registry = make_registry();
  return registry;
}

const scenario* find_scenario(std::string_view name) {
  for (const auto& s : all_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace adx::perf
