// Metric model for the adx-bench perf harness.
//
// Every scenario reports a set of named metrics, and every metric is tagged
// with the clock it was measured on — the distinction the whole regression
// gate turns on:
//
//   * virtual_time — the simulator's deterministic clock (or a deterministic
//     count derived from it: virtual cycles, expansions, locking-cycle cost).
//     For a fixed seed and machine shape two runs produce bit-identical
//     values on any host, so the baseline comparison demands an EXACT match;
//     a divergence means simulated behaviour changed, never noise.
//   * wall — host wall-clock time (or a rate derived from it). Noisy by
//     nature; comparisons apply a relative tolerance widened by the measured
//     inter-repetition IQR.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adx::perf {

enum class metric_clock : std::uint8_t { virtual_time, wall };

[[nodiscard]] constexpr const char* to_string(metric_clock c) {
  return c == metric_clock::virtual_time ? "virtual" : "wall";
}

[[nodiscard]] inline std::optional<metric_clock> parse_metric_clock(std::string_view s) {
  if (s == "virtual") return metric_clock::virtual_time;
  if (s == "wall") return metric_clock::wall;
  return std::nullopt;
}

/// One measured value from one repetition of a scenario.
struct metric_sample {
  std::string name;
  std::string unit;  ///< "us", "ms", "ns", "events/s", ...
  metric_clock clock{metric_clock::virtual_time};
  double value{0};
  /// Direction for wall-clock gating: false (default) means higher is worse
  /// (times, costs); true means higher is better (throughput rates). Ignored
  /// for virtual-clock metrics, which are compared exactly.
  bool higher_better{false};
};

/// Robust location/spread over the repetition values of one metric.
struct summary_stats {
  double median{0};
  double iqr{0};  ///< Q3 - Q1 (0 for deterministic metrics)
  double min{0};
};

/// Median/IQR/min of `values` (copied; empty input yields all-zero stats).
/// Quartiles use linear interpolation between order statistics.
[[nodiscard]] inline summary_stats summarize(std::vector<double> values) {
  summary_stats s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  const auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
  };
  s.median = quantile(0.5);
  s.iqr = quantile(0.75) - quantile(0.25);
  s.min = values.front();
  return s;
}

/// A summarized metric: what BENCH.json records per scenario.
struct metric_summary {
  std::string name;
  std::string unit;
  metric_clock clock{metric_clock::virtual_time};
  summary_stats stats;
  unsigned reps{0};
  bool higher_better{false};  ///< see metric_sample::higher_better
};

}  // namespace adx::perf
