// adx-bench — the unified benchmark driver and perf regression gate.
//
//   adx-bench --list                         what can be measured
//   adx-bench --out=BENCH.json               measure everything, write report
//   adx-bench --compare=baseline.json        measure + diff against a baseline
//             --tolerance=0.25               (wall metrics only; virtual
//                                            metrics always require an exact
//                                            match and refuse a tolerance)
//
// Exit codes: 0 success, 1 regression (or virtual divergence) against the
// baseline, 2 usage error.
#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "cli/options.hpp"
#include "exec/job_executor.hpp"
#include "perf/bench_report.hpp"
#include "perf/scenario.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/client.hpp"

namespace {

using namespace adx;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "adx-bench: cannot read '" << path << "'\n";
    std::exit(2);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << text) || !out.flush()) {
    std::cerr << "adx-bench: cannot write '" << path << "'\n";
    std::exit(2);
  }
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const auto end = comma == std::string::npos ? text.size() : comma;
    if (end > pos) out.push_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt =
      cli::options("adx-bench",
                   "unified benchmark driver: runs the paper's table/figure/ablation "
                   "scenarios and gates wall-time regressions against a committed baseline")
          .flag("list", "list scenarios and exit")
          .str("scenarios", "", "comma-separated subset to run (default: all)")
          .u64("reps", 5, "measured repetitions per scenario")
          .u64("warmup", 1, "discarded warmup repetitions per scenario")
          .u64("jobs", 1,
               "parallel scenario workers (0 = one per host core); reps stay "
               "sequential within a scenario, virtual metrics are identical "
               "for any value, wall metrics get noisier — keep 1 when "
               "recording a baseline")
          .str("out", "BENCH.json", "where to write the report")
          .str("compare", "", "baseline BENCH.json to diff against")
          .str("tolerance", "",
               "wall-metric tolerance: global fraction, then name=frac overrides "
               "(e.g. 0.25,wall_ns=0.5); requires --compare")
          .str("note", "", "free-text provenance recorded in the report")
          .str("telemetry", "",
               "stream scenario progress/results to this endpoint (unix:PATH "
               "or tcp:HOST:PORT) instead of stderr")
          .str("telemetry-run", "adx-bench", "run id tagging this stream")
          .str("telemetry-dump", "", "also write the telemetry frames to this file")
          .u64("slow-pop-ns", 0,
               "debug: busy-wait N ns of host time in every event-queue pop "
               "(gate self-test; virtual results unchanged)")
          .note("Clocks: metrics tagged clock=virtual are simulated virtual time —")
          .note("deterministic for a fixed seed, identical on every machine, and compared")
          .note("EXACTLY against the baseline (--tolerance refuses to apply to them).")
          .note("Metrics tagged clock=wall are host wall-clock time — noisy, compared")
          .note("within tolerance * baseline + an IQR-scaled band.")
          .note("")
          .note("Exit codes: 0 ok, 1 regression vs --compare baseline, 2 usage error.");
  opt.parse(argc, argv);

  if (opt.get_flag("list")) {
    for (const auto& s : perf::all_scenarios()) {
      std::cout << s.name << "\n    " << s.description << '\n';
    }
    return 0;
  }

  if (!opt.get_str("tolerance").empty() && opt.get_str("compare").empty()) {
    std::cerr << "adx-bench: --tolerance only makes sense with --compare\n";
    return 2;
  }
  if (opt.get_u64("reps") == 0) {
    std::cerr << "adx-bench: --reps must be >= 1\n";
    return 2;
  }

  // Parse the baseline and the tolerance BEFORE measuring: a malformed file or
  // a tolerance naming a deterministic metric should fail in milliseconds, not
  // after a full benchmark sweep.
  perf::bench_report baseline;
  perf::tolerance_spec tol;
  const bool comparing = !opt.get_str("compare").empty();
  if (comparing) {
    try {
      baseline = perf::bench_report::from_json(read_file(opt.get_str("compare")));
      tol = perf::tolerance_spec::parse(opt.get_str("tolerance"));
    } catch (const std::exception& e) {
      std::cerr << "adx-bench: " << e.what() << '\n';
      return 2;
    }
    const auto errors = perf::validate_tolerance(tol, baseline);
    if (!errors.empty()) {
      for (const auto& e : errors) std::cerr << "adx-bench: " << e << '\n';
      return 2;
    }
  }

  std::vector<const perf::scenario*> to_run;
  if (opt.get_str("scenarios").empty()) {
    for (const auto& s : perf::all_scenarios()) to_run.push_back(&s);
  } else {
    for (const auto& name : split_csv(opt.get_str("scenarios"))) {
      const auto* s = perf::find_scenario(name);
      if (s == nullptr) {
        std::cerr << "adx-bench: unknown scenario '" << name << "' (see --list)\n";
        return 2;
      }
      to_run.push_back(s);
    }
  }

  sim::event_queue::set_debug_pop_delay_ns(opt.get_u64("slow-pop-ns"));

  perf::bench_report report;
  report.reps = static_cast<unsigned>(opt.get_u64("reps"));
  report.warmup = static_cast<unsigned>(opt.get_u64("warmup"));
  report.note = opt.get_str("note");

  // With telemetry attached, progress/results go to the aggregation server
  // as structured frames instead of stderr chatter — the dashboard shows
  // them merged with every other producer's.
  std::unique_ptr<telemetry::client> tele;
  if (!opt.get_str("telemetry").empty() || !opt.get_str("telemetry-dump").empty()) {
    telemetry::client_options copt;
    copt.endpoint = opt.get_str("telemetry");
    copt.dump_path = opt.get_str("telemetry-dump");
    copt.run_id = opt.get_str("telemetry-run");
    copt.producer = "adx-bench";
    std::string terr;
    tele = telemetry::client::open(copt, &terr);
    if (!tele) std::cerr << "adx-bench: telemetry disabled: " << terr << '\n';
  }

  exec::job_executor ex(exec::resolve_jobs(opt.get_u64("jobs")));
  const bool parallel = ex.jobs() > 1 && to_run.size() > 1;
  std::mutex progress_mu;
  perf::scenario_progress progress;
  std::atomic<std::uint64_t> scenarios_done{0};
  if (tele) {
    progress.finished = [&](const perf::scenario& s, const perf::scenario_outcome& o) {
      tele->publish_result(s.name, !o.ok(), o.error);
      tele->publish_progress(scenarios_done.fetch_add(1, std::memory_order_relaxed) + 1,
                             to_run.size(), s.name);
    };
  } else if (parallel) {
    std::cerr << "adx-bench: running " << to_run.size() << " scenarios across "
              << ex.jobs() << " workers\n";
    progress.finished = [&](const perf::scenario& s, const perf::scenario_outcome& o) {
      const std::lock_guard<std::mutex> l(progress_mu);
      std::cerr << "  finished " << s.name << (o.ok() ? "" : " (FAILED)") << '\n';
    };
  } else {
    progress.started = [](const perf::scenario& s) {
      std::cerr << "  running " << s.name << " ..." << std::flush;
    };
    progress.finished = [](const perf::scenario&, const perf::scenario_outcome& o) {
      if (o.ok()) std::cerr << " done\n";
    };
  }

  const auto outcomes =
      perf::run_scenarios(to_run, report.reps, report.warmup, ex, progress);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok()) {
      std::cerr << "\nadx-bench: scenario " << to_run[i]->name
                << " failed: " << outcomes[i].error << '\n';
      return 1;
    }
    report.scenarios.push_back(outcomes[i].summary);
  }

  write_file(opt.get_str("out"), report.to_json());
  std::cerr << "adx-bench: wrote " << opt.get_str("out") << " (" << report.scenarios.size()
            << " scenarios, " << report.reps << " reps)\n";
  if (tele) {
    tele->publish_result("bench", false,
                         std::to_string(report.scenarios.size()) + " scenarios");
    tele->flush();
  }

  if (!comparing) return 0;

  // A --scenarios filter deliberately skips the rest of the suite; gating a
  // filtered run against the full baseline would report every unselected
  // scenario as missing. Narrow the baseline to what actually ran and say so.
  if (!opt.get_str("scenarios").empty()) {
    std::vector<perf::scenario_summary> kept;
    for (auto& bs : baseline.scenarios) {
      if (report.find(bs.name) != nullptr) kept.push_back(std::move(bs));
    }
    const auto skipped = baseline.scenarios.size() - kept.size();
    baseline.scenarios = std::move(kept);
    if (skipped > 0) {
      std::cout << "info scenario filter active; " << skipped
                << " baseline scenario(s) not selected, not compared\n";
    }
  }

  const auto cmp = perf::compare_reports(report, baseline, tol);
  for (const auto& f : cmp.findings) {
    (f.fatal() ? std::cerr : std::cout) << (f.fatal() ? "FAIL " : "info ") << f.describe()
                                        << '\n';
  }
  if (cmp.failed()) {
    std::cerr << "adx-bench: regression gate FAILED; offending scenarios:";
    for (const auto& name : cmp.regressed_scenarios()) std::cerr << ' ' << name;
    std::cerr << '\n';
    return 1;
  }
  std::cout << "adx-bench: regression gate passed (" << baseline.scenarios.size()
            << " baseline scenarios checked)\n";
  return 0;
}
