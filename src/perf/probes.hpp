// Reusable measurement cores shared by the bench binaries and the adx-bench
// scenario registry: the standard TSP experiment runner (Tables 1-3), the
// lock/unlock micro-cost probes (Tables 4-5) and the locking-cycle probe
// (Tables 6-7). Moved here from bench/bench_common.hpp so that scenarios can
// run the exact same measurements the table benches print — one definition of
// each experiment, two consumers.
//
// Everything here reports *virtual* time (the simulator's deterministic
// clock) unless a name says otherwise; the perf runner layers host wall-time
// measurement on top.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "ct/context.hpp"
#include "locks/factory.hpp"
#include "tsp/parallel.hpp"

namespace adx::perf {

inline std::vector<std::uint64_t> default_seeds() {
  return {9001, 1234, 777, 31337, 2026, 5, 99, 4242};
}

/// The paper's TSP experiment configuration (Tables 1-3), with the adaptation
/// constants tuned for the TSP locks as §4 prescribes.
inline tsp::parallel_config tsp_cfg(tsp::variant v, locks::lock_kind k,
                                    unsigned processors) {
  tsp::parallel_config cfg;
  cfg.impl = v;
  cfg.processors = processors;
  cfg.run.lock = k;
  cfg.run.params.adapt = {/*waiting_threshold=*/12, /*n=*/20, /*spin_cap=*/400,
                          /*sample_period=*/2};
  return cfg;
}

struct tsp_summary {
  double mean_ms{0};
  double best_ms{1e300};
  /// Mean of (elapsed / expansions): wall time per unit of search work.
  /// Branch-and-bound exploration is timing-sensitive, so two lock kinds
  /// explore slightly different trees; normalizing by expansions isolates
  /// the synchronization efficiency the paper's tables are about.
  double mean_ms_per_expansion{0};
  std::uint64_t mean_expansions{0};
  double qlock_contention{0};
  std::int64_t qlock_peak{0};
};

/// Runs one TSP variant+lock over the seed set; returns per-seed means.
inline tsp_summary run_tsp(tsp::variant v, locks::lock_kind k, unsigned cities,
                           unsigned processors,
                           const std::vector<std::uint64_t>& seeds) {
  tsp_summary s;
  for (const auto seed : seeds) {
    const auto inst = tsp::instance::random_asymmetric(static_cast<int>(cities), seed);
    const auto r = tsp::solve_parallel(inst, tsp_cfg(v, k, processors));
    s.mean_ms += r.elapsed.ms();
    s.best_ms = std::min(s.best_ms, r.elapsed.ms());
    s.mean_ms_per_expansion +=
        r.elapsed.ms() / static_cast<double>(std::max<std::uint64_t>(1, r.expansions));
    s.mean_expansions += r.expansions;
    s.qlock_contention += r.lock_reports[0].contention_ratio;
    s.qlock_peak = std::max(s.qlock_peak, r.lock_reports[0].peak_waiting);
  }
  const auto n = static_cast<double>(seeds.size());
  s.mean_ms /= n;
  s.mean_ms_per_expansion /= n;
  s.mean_expansions = static_cast<std::uint64_t>(static_cast<double>(s.mean_expansions) / n);
  s.qlock_contention /= n;
  return s;
}

/// Virtual time of the sequential baseline: real LMSK arithmetic charged at
/// per_op_us plus local data movement, no locks, no parallel machinery.
inline double sequential_virtual_ms(unsigned cities, std::uint64_t seed,
                                    const tsp::parallel_config& cfg) {
  const auto inst = tsp::instance::random_asymmetric(static_cast<int>(cities), seed);
  const auto seq = tsp::solve_sequential(inst);
  const double compute_ms =
      static_cast<double>(seq.ops) * cfg.per_op_us / 1000.0;
  // Per expansion: read the parent matrix and write ~2 children, all local.
  const double words = static_cast<double>(seq.expansions) * 3.0 *
                       static_cast<double>(cities) * static_cast<double>(cities) /
                       static_cast<double>(cfg.data_word_divisor);
  const double word_us =
      (2.0 * cfg.run.machine.local_wire + cfg.run.machine.mem_service).us();
  return compute_ms + words * word_us / 1000.0;
}

/// Times one lock/unlock op on a lock homed locally or remotely (Tables 4-5).
struct op_times {
  double lock_us{0};
  double unlock_us{0};
};

inline op_times time_lock_ops(locks::lock_kind k, bool remote) {
  ct::runtime rt(sim::machine_config::butterfly_gp1000());
  const sim::node_id home = remote ? 7 : 0;
  auto lk = locks::make_lock(k, home, locks::lock_cost_model::butterfly_cthreads());
  op_times out;
  rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
    const auto t0 = ctx.now();
    co_await lk->lock(ctx);
    out.lock_us = (ctx.now() - t0).us();
    const auto t1 = ctx.now();
    co_await lk->unlock(ctx);
    out.unlock_us = (ctx.now() - t1).us();
  });
  rt.run_all();
  return out;
}

/// Locking cycle on a busy lock (Tables 6-7): the paper's unlock-followed-by-
/// lock latency, release-to-acquire with one waiter present. The waiter's
/// waiting loop has its own phase (spin pauses, backoff quanta), so the
/// measurement averages over several owner hold times.
template <typename MakeLock>
double time_cycle_us(MakeLock make, bool remote) {
  double total = 0;
  const double holds_ms[] = {1.62, 1.85, 2.04, 2.31, 2.58};
  for (const double hold : holds_ms) {
    ct::runtime rt(sim::machine_config::butterfly_gp1000());
    const sim::node_id home = remote ? 7 : 0;
    auto lk = make(rt, home);
    sim::vtime released{};
    sim::vtime acquired{};
    rt.fork(0, [&](ct::context& ctx) -> ct::task<void> {
      co_await lk->lock(ctx);
      co_await ctx.compute(sim::milliseconds(hold));  // waiter settles in
      co_await lk->unlock(ctx);
      released = ctx.now();
    });
    rt.fork(1, [&](ct::context& ctx) -> ct::task<void> {
      co_await ctx.compute(sim::microseconds(100));
      co_await lk->lock(ctx);
      acquired = ctx.now();
      co_await lk->unlock(ctx);
    });
    rt.run_all();
    total += (acquired - released).us();
  }
  return total / std::size(holds_ms);
}

}  // namespace adx::perf
