#include "ct/runtime.hpp"

#include <sstream>
#include <utility>

#include "ct/context.hpp"

namespace adx::ct {

const char* to_string(thread_state s) {
  switch (s) {
    case thread_state::embryo: return "embryo";
    case thread_state::ready: return "ready";
    case thread_state::running: return "running";
    case thread_state::blocked: return "blocked";
    case thread_state::sleeping: return "sleeping";
    case thread_state::done: return "done";
  }
  return "?";
}

tcb::tcb() = default;
tcb::~tcb() = default;

namespace {

/// Outer coroutine for every thread: runs the user body, captures any
/// exception into the TCB, and performs exit processing (joiner wakeup,
/// processor handoff) while the frame is still live.
task<void> trampoline(runtime* rt, tcb* t, runtime::thread_fn fn) {
  try {
    co_await fn(*t->ctx);
  } catch (...) {
    t->error = std::current_exception();
  }
  rt->on_thread_exit(*t);
}

}  // namespace

runtime::runtime(sim::machine_config cfg) : mach_(cfg), procs_(cfg.nodes) {}

runtime::runtime(sim::machine_config cfg, sim::event_queue& queue, unsigned home_place)
    : mach_(cfg, queue), home_place_(home_place), procs_(cfg.nodes) {}

runtime::~runtime() = default;

thread_id runtime::fork(proc_id p, thread_fn fn, int priority) {
  if (p >= procs_.size()) throw std::out_of_range("runtime::fork: bad processor");
  ++forks_;
  auto t = std::make_unique<tcb>();
  t->id = static_cast<thread_id>(threads_.size());
  t->proc = p;
  t->priority = priority;
  t->ctx = std::make_unique<context>(*this, *t);
  t->root = trampoline(this, t.get(), std::move(fn));
  t->resume_point = t->root.handle();
  tcb& ref = *t;
  threads_.push_back(std::move(t));
  ++live_threads_;
  make_ready(ref);
  return ref.id;
}

runtime::run_result runtime::run(std::uint64_t max_events) {
  auto& q = mach_.events();
  std::uint64_t n = 0;
  while (n < max_events && q.run_one()) ++n;
  return finish(n);
}

runtime::run_result runtime::finish(std::uint64_t events) const {
  run_result r;
  r.end_time = mach_.now();
  r.events = events;
  for (const auto& t : threads_) {
    if (t->state != thread_state::done) r.stuck.push_back(t->id);
  }
  r.completed = r.stuck.empty() && mach_.events().empty();
  return r;
}

void runtime::throw_failures(const run_result& r) const {
  for (const auto& t : threads_) {
    if (t->error) std::rethrow_exception(t->error);
  }
  if (!mach_.events().empty()) {
    throw simulation_limit_error("runtime::run_all: event budget exhausted");
  }
  if (!r.completed) {
    std::ostringstream msg;
    msg << "runtime::run_all: deadlock, " << r.stuck.size() << " thread(s) stuck:";
    for (auto id : r.stuck) {
      msg << ' ' << id << '(' << to_string(threads_[id]->state) << ')';
    }
    throw deadlock_error(msg.str(), r.stuck);
  }
}

runtime::run_result runtime::run_all(std::uint64_t max_events) {
  auto r = run(max_events);
  throw_failures(r);
  return r;
}

runtime::run_result runtime::finish_all(std::uint64_t events) const {
  auto r = finish(events);
  throw_failures(r);
  return r;
}

thread_id runtime::current_on(proc_id p) const {
  const auto* cur = procs_.at(p).current;
  return cur ? cur->id : invalid_thread;
}

tcb& runtime::thread_ref(thread_id t) { return *threads_.at(t); }
const tcb& runtime::thread_ref(thread_id t) const { return *threads_.at(t); }

void runtime::schedule_resume(tcb& t, std::coroutine_handle<> h, sim::vtime at) {
  t.resume_point = h;
  const auto epoch = ++t.epoch;
  // Injected resume-point delay (schedule exploration): the thread holds its
  // processor slightly longer, widening the window for other processors'
  // memory traffic to interleave with this atomic window's neighbours.
  if (perturber_ != nullptr) at = at + perturber_->resume_delay(t.id);
  mach_.events().schedule_at(at, [&t, h, epoch] {
    if (t.epoch == epoch && t.state == thread_state::running) h.resume();
  });
}

void runtime::end_run_span(tcb& t, const char* how) {
  if (!tracing()) return;
  const auto now = mach_.now();
  tracer_->complete("run", "ct", t.run_started, now - t.run_started,
                    static_cast<std::uint32_t>(t.proc), t.id);
  tracer_->instant(how, "ct", now, static_cast<std::uint32_t>(t.proc), t.id);
}

void runtime::export_metrics(obs::metrics& m, const std::string& prefix) const {
  m.get_counter(prefix + ".forks").set(forks_);
  m.get_counter(prefix + ".dispatches").set(dispatches_);
  m.get_counter(prefix + ".blocks").set(blocks_);
  m.get_counter(prefix + ".unblocks").set(unblocks_);
  m.get_counter(prefix + ".yields").set(yields_);
  m.get_counter(prefix + ".sleeps").set(sleeps_);
  m.get_counter(prefix + ".exits").set(exits_);
}

void runtime::suspend_block(tcb& t, std::coroutine_handle<> h) {
  ++blocks_;
  end_run_span(t, "block");
  t.state = thread_state::blocked;
  t.resume_point = h;
  ++t.epoch;
  procs_[t.proc].current = nullptr;
  schedule_dispatch(t.proc, mach_.config().dispatch_latency);
}

void runtime::suspend_block_for(tcb& t, std::coroutine_handle<> h, sim::vdur timeout) {
  suspend_block(t, h);
  const auto epoch = t.epoch;
  tcb* tp = &t;
  mach_.events().schedule_after(timeout, [this, tp, epoch] {
    if (tp->epoch == epoch && tp->state == thread_state::blocked) {
      tp->last_block_timed_out = true;
      make_ready(*tp);
    }
  });
}

bool runtime::unblock(thread_id id) {
  tcb& t = thread_ref(id);
  if (t.state != thread_state::blocked && t.state != thread_state::sleeping) return false;
  ++unblocks_;
  if (tracing()) {
    tracer_->instant("unblock", "ct", mach_.now(),
                     static_cast<std::uint32_t>(t.proc), t.id);
  }
  t.last_block_timed_out = false;
  if (observer_ != nullptr) observer_->on_unblock(t.id, mach_.now());
  make_ready(t);
  return true;
}

void runtime::suspend_yield(tcb& t, std::coroutine_handle<> h) {
  ++yields_;
  end_run_span(t, "yield");
  t.resume_point = h;
  t.state = thread_state::ready;
  ++t.epoch;
  procs_[t.proc].current = nullptr;
  procs_[t.proc].ready.push_back(&t);
  schedule_dispatch(t.proc, mach_.config().dispatch_latency);
}

void runtime::suspend_sleep(tcb& t, std::coroutine_handle<> h, sim::vdur d) {
  ++sleeps_;
  end_run_span(t, "sleep");
  t.state = thread_state::sleeping;
  t.resume_point = h;
  ++t.epoch;
  procs_[t.proc].current = nullptr;
  const auto epoch = t.epoch;
  tcb* tp = &t;
  mach_.events().schedule_after(d, [this, tp, epoch] {
    if (tp->epoch == epoch && tp->state == thread_state::sleeping) make_ready(*tp);
  });
  schedule_dispatch(t.proc, mach_.config().dispatch_latency);
}

bool runtime::add_joiner(thread_id target, thread_id waiter) {
  tcb& t = thread_ref(target);
  if (t.state == thread_state::done) return false;
  t.joiners.push_back(waiter);
  return true;
}

void runtime::on_thread_exit(tcb& t) {
  ++exits_;
  end_run_span(t, "exit");
  t.state = thread_state::done;
  ++t.epoch;
  --live_threads_;
  for (auto j : t.joiners) unblock(j);
  t.joiners.clear();
  procs_[t.proc].current = nullptr;
  schedule_dispatch(t.proc, mach_.config().dispatch_latency);
}

void runtime::make_ready(tcb& t) {
  if (observer_ != nullptr) observer_->on_ready(t.id, mach_.now());
  t.state = thread_state::ready;
  ++t.epoch;
  auto& p = procs_[t.proc];
  p.ready.push_back(&t);
  if (p.current == nullptr) {
    schedule_dispatch(t.proc, mach_.config().dispatch_latency);
  }
}

void runtime::schedule_dispatch(proc_id p, sim::vdur after) {
  mach_.events().schedule_after(after, [this, p] { dispatch(p); });
}

void runtime::dispatch(proc_id p) {
  auto& proc = procs_[p];
  if (proc.current != nullptr || proc.ready.empty()) return;
  tcb* t = proc.ready.front();
  proc.ready.pop_front();
  proc.current = t;
  t->state = thread_state::running;
  ++t->epoch;
  ++dispatches_;
  t->run_started = mach_.now();
  // The context switch is charged on the switch-IN edge: restoring the
  // incoming thread's state occupies the processor for a full switch before
  // the thread runs (this is what makes a blocked lock waiter's wakeup cost
  // a switch, per Table 6's blocking locking cycle).
  const auto epoch = t->epoch;
  const auto h = t->resume_point;
  mach_.events().schedule_after(mach_.config().context_switch, [t, h, epoch] {
    if (t->epoch == epoch && t->state == thread_state::running) h.resume();
  });
}

}  // namespace adx::ct
