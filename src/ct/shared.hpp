// Shared memory words with NUMA placement.
//
// An `svar<T>` is a word of simulated shared memory homed on a specific node.
// All synchronized access goes through `context` awaitables (read / write /
// atomic RMW), which route through the machine's memory modules and charge
// wire + service latency. `raw()` bypasses the simulation entirely and exists
// for test setup and post-run verification only.
#pragma once

#include <type_traits>

#include "sim/machine_config.hpp"

namespace adx::ct {

template <typename T>
class svar {
  static_assert(std::is_trivially_copyable_v<T>,
                "svar models a machine word; store trivially copyable types");

 public:
  explicit svar(sim::node_id home, T init = T{}) : value_(init), home_(home) {}

  svar(const svar&) = delete;
  svar& operator=(const svar&) = delete;

  [[nodiscard]] sim::node_id home() const { return home_; }

  /// Unsimulated access for setup/verification; never call from simulated
  /// thread code on shared state (it would dodge both latency and the ledger).
  [[nodiscard]] T& raw() { return value_; }
  [[nodiscard]] const T& raw() const { return value_; }

 private:
  T value_;
  sim::node_id home_;
};

}  // namespace adx::ct
