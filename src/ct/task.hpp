// Lazy coroutine task type for simulated threads.
//
// A simulated thread's body is a C++20 coroutine. Calling into a sub-routine
// that itself performs simulated actions (e.g. lock acquisition) is another
// task awaited by the caller; completion resumes the caller by symmetric
// transfer, costing no virtual time. Only explicit awaitables on the thread
// context (compute, memory access, block, ...) advance the clock.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace adx::ct {

template <typename T>
class task;

namespace detail {

/// Resumes the awaiting coroutine (if any) when a task finishes.
template <typename Promise>
struct final_awaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct promise_base {
  std::coroutine_handle<> continuation{};
  std::exception_ptr error{};

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; owns the frame.
template <typename T = void>
class [[nodiscard]] task {
 public:
  struct promise_type : detail::promise_base {
    std::optional<T> value{};

    task get_return_object() {
      return task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    detail::final_awaiter<promise_type> final_suspend() noexcept { return {}; }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  task() = default;
  explicit task(handle_type h) : h_(h) {}
  task(task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  task& operator=(task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  task(const task&) = delete;
  task& operator=(const task&) = delete;
  ~task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const { return h_ && h_.done(); }
  [[nodiscard]] std::coroutine_handle<> handle() const { return h_; }

  /// Awaiting a task starts it; the awaiter is resumed when it completes.
  auto operator co_await() && noexcept {
    struct awaiter {
      handle_type h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      T await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
        return std::move(*h.promise().value);
      }
    };
    return awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  handle_type h_{};
};

/// void specialization.
template <>
class [[nodiscard]] task<void> {
 public:
  struct promise_type : detail::promise_base {
    task get_return_object() {
      return task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    detail::final_awaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
  };

  using handle_type = std::coroutine_handle<promise_type>;

  task() = default;
  explicit task(handle_type h) : h_(h) {}
  task(task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  task& operator=(task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  task(const task&) = delete;
  task& operator=(const task&) = delete;
  ~task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const { return h_ && h_.done(); }
  [[nodiscard]] std::coroutine_handle<> handle() const { return h_; }

  auto operator co_await() && noexcept {
    struct awaiter {
      handle_type h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    return awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  handle_type h_{};
};

}  // namespace adx::ct
