// Small coordination utilities on top of the thread package: wait queues,
// counting semaphores and barriers. These are application-support primitives
// (used by the TSP driver and the workload generators), not the measured
// article — the measured synchronization objects live in adx::locks.
#pragma once

#include <cstdint>
#include <deque>

#include "ct/context.hpp"
#include "ct/task.hpp"

namespace adx::ct {

/// FIFO wait queue. wait() enqueues the caller and blocks; notify wakes in
/// order. Enqueue+block contain no awaits between them, so the pair is atomic
/// with respect to the simulation.
class wait_queue {
 public:
  task<void> wait(context& ctx) {
    q_.push_back(ctx.self());
    co_await ctx.block();
  }

  /// Wakes the oldest waiter, if any.
  task<void> notify_one(context& ctx) {
    if (!q_.empty()) {
      const thread_id t = q_.front();
      q_.pop_front();
      co_await ctx.unblock(t);
    }
  }

  task<void> notify_all(context& ctx) {
    // Snapshot first (atomic: no awaits): threads woken here may re-enqueue
    // while we are still issuing wakeups, and those new waits belong to a
    // later round — they must not be swallowed by this notify.
    std::deque<thread_id> batch;
    batch.swap(q_);
    for (const thread_id t : batch) {
      co_await ctx.unblock(t);
    }
  }

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }

 private:
  std::deque<thread_id> q_;
};

/// Counting semaphore.
class semaphore {
 public:
  explicit semaphore(std::int64_t initial = 0) : count_(initial) {}

  task<void> acquire(context& ctx) {
    if (count_ > 0) {
      --count_;
      co_return;
    }
    co_await waiters_.wait(ctx);
  }

  task<void> release(context& ctx) {
    if (!waiters_.empty()) {
      co_await waiters_.notify_one(ctx);
    } else {
      ++count_;
    }
  }

  [[nodiscard]] std::int64_t count() const { return count_; }

 private:
  std::int64_t count_;
  wait_queue waiters_;
};

/// Cyclic barrier for `parties` threads.
class barrier {
 public:
  explicit barrier(std::size_t parties) : parties_(parties) {}

  task<void> arrive_and_wait(context& ctx) {
    if (++arrived_ == parties_) {
      arrived_ = 0;
      co_await waiters_.notify_all(ctx);
    } else {
      co_await waiters_.wait(ctx);
    }
  }

 private:
  std::size_t parties_;
  std::size_t arrived_{0};
  wait_queue waiters_;
};

}  // namespace adx::ct
