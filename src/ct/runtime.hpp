// The configurable thread package (multiprocessor Cthreads analog, [Muk91]).
//
// Each simulated thread is a coroutine pinned to a processor. Processors run
// one thread at a time with FIFO ready queues; blocking, yielding and waking
// pay the configured context-switch / dispatch latencies. All scheduling is
// driven by the machine's event queue, so runs are deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ct/task.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/machine.hpp"
#include "sim/small_ring.hpp"

namespace adx::ct {

using thread_id = std::uint32_t;
using proc_id = sim::node_id;

inline constexpr thread_id invalid_thread = ~thread_id{0};

enum class thread_state : std::uint8_t { embryo, ready, running, blocked, sleeping, done };

[[nodiscard]] const char* to_string(thread_state s);

class context;
class runtime;

/// Thread control block. Stable address for the lifetime of the runtime.
struct tcb {
  thread_id id{invalid_thread};
  proc_id proc{0};
  int priority{0};
  thread_state state{thread_state::embryo};

  /// Coroutine to resume when this thread is next scheduled.
  std::coroutine_handle<> resume_point{};
  /// Bumped on every state transition; invalidates in-flight timer events.
  std::uint64_t epoch{0};
  /// When the current dispatch put this thread on its processor; closes the
  /// "run" span when the thread next gives the processor up.
  sim::vtime run_started{};
  /// Result of the last block_for(): true if the wait timed out.
  bool last_block_timed_out{false};

  std::vector<thread_id> joiners;
  task<void> root;
  std::unique_ptr<context> ctx;
  std::exception_ptr error{};

  tcb();
  ~tcb();
  tcb(const tcb&) = delete;
  tcb& operator=(const tcb&) = delete;
};

/// Thrown by run_all() when the event queue drains with live threads left.
class deadlock_error : public std::runtime_error {
 public:
  deadlock_error(std::string msg, std::vector<thread_id> stuck)
      : std::runtime_error(std::move(msg)), stuck_(std::move(stuck)) {}
  [[nodiscard]] const std::vector<thread_id>& stuck() const { return stuck_; }

 private:
  std::vector<thread_id> stuck_;
};

/// Thrown when a run exceeds its event budget (livelock guard).
class simulation_limit_error : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Host-side observer of scheduling transitions. Like the tracer, it never
/// charges virtual time and never schedules events, so attaching one cannot
/// perturb a run. adx::check's invariant oracles (lost-wakeup, deadlock)
/// subscribe here to see wakeups that lock-level instrumentation cannot.
class runtime_observer {
 public:
  virtual ~runtime_observer() = default;

  /// A blocked/sleeping thread was woken by unblock().
  virtual void on_unblock(thread_id t, sim::vtime at) {
    (void)t;
    (void)at;
  }

  /// A thread became ready (wakeup, timeout self-wake, sleep expiry, fork).
  virtual void on_ready(thread_id t, sim::vtime at) {
    (void)t;
    (void)at;
  }
};

class runtime {
 public:
  using thread_fn = std::function<task<void>(context&)>;

  explicit runtime(sim::machine_config cfg);

  /// Places the runtime on an execution domain's queue: the machine borrows
  /// `queue` (a domain shard), so this runtime's events interleave with
  /// every other runtime on the same shard while the domain's window loop
  /// drives them all. Drive with the domain's run(), then read results via
  /// finish()/finish_all(). `home_place` is the domain place (NUMA group)
  /// this runtime's nodes belong to; locks bound to a place check it.
  runtime(sim::machine_config cfg, sim::event_queue& queue, unsigned home_place = 0);

  ~runtime();
  runtime(const runtime&) = delete;
  runtime& operator=(const runtime&) = delete;

  [[nodiscard]] sim::machine& mach() { return mach_; }
  [[nodiscard]] const sim::machine& mach() const { return mach_; }
  [[nodiscard]] sim::vtime now() const { return mach_.now(); }
  [[nodiscard]] unsigned processors() const { return mach_.nodes(); }

  /// The execution-domain place this runtime lives on (0 for standalone
  /// runtimes). Federated workloads bind each lock to its runtime's place;
  /// the lock grant/release paths reject threads from another place.
  [[nodiscard]] unsigned home_place() const { return home_place_; }

  /// Creates a thread pinned to processor `p`; it becomes runnable
  /// immediately (dispatched through the normal ready-queue machinery).
  thread_id fork(proc_id p, thread_fn fn, int priority = 0);

  struct run_result {
    sim::vtime end_time{};
    std::uint64_t events{0};
    bool completed{false};
    std::vector<thread_id> stuck;
  };

  /// Drives the simulation until the event queue drains or `max_events` have
  /// been processed. Does not throw on stuck threads; inspect the result.
  run_result run(std::uint64_t max_events = 500'000'000ULL);

  /// Like run(), but throws deadlock_error / simulation_limit_error and
  /// rethrows the first thread exception, so tests fail loudly.
  run_result run_all(std::uint64_t max_events = 500'000'000ULL);

  /// Assembles a run_result without driving the queue — for runtimes driven
  /// by an execution domain's window loop. `events` is echoed into the
  /// result (pass the domain's processed count, or this runtime's share).
  [[nodiscard]] run_result finish(std::uint64_t events) const;

  /// Throwing variant of finish(): rethrows the first thread exception and
  /// throws simulation_limit_error / deadlock_error exactly like run_all().
  run_result finish_all(std::uint64_t events) const;

  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }
  /// Threads forked and not yet done. Daemon-style tasks (the async policy
  /// runtime) use this to stop once only they remain live, so run() still
  /// drains naturally.
  [[nodiscard]] std::size_t live_threads() const { return live_threads_; }
  [[nodiscard]] thread_state state_of(thread_id t) const { return thread_ref(t).state; }
  [[nodiscard]] std::exception_ptr error_of(thread_id t) const { return thread_ref(t).error; }
  [[nodiscard]] thread_id current_on(proc_id p) const;
  [[nodiscard]] std::size_t ready_depth(proc_id p) const { return procs_.at(p).ready.size(); }

  // ------- services used by context awaitables and synchronization objects.

  [[nodiscard]] tcb& thread_ref(thread_id t);
  [[nodiscard]] const tcb& thread_ref(thread_id t) const;

  /// Resumes `h` (belonging to thread `t`) at absolute time `at`; the thread
  /// keeps its processor meanwhile (computing / waiting on memory).
  void schedule_resume(tcb& t, std::coroutine_handle<> h, sim::vtime at);

  /// Current thread gives up its processor until unblock(); `h` resumes it.
  void suspend_block(tcb& t, std::coroutine_handle<> h);

  /// Block with a timeout; on expiry the thread self-wakes with
  /// last_block_timed_out = true.
  void suspend_block_for(tcb& t, std::coroutine_handle<> h, sim::vdur timeout);

  /// Makes a blocked/sleeping thread ready. Returns false if it was not
  /// blocked (already ready, running or done) — callers treat that as a
  /// harmless lost-wakeup race, as on real hardware.
  bool unblock(thread_id t);

  /// True if yielding would actually switch (another thread is ready).
  [[nodiscard]] bool has_ready_peer(proc_id p) const { return !procs_.at(p).ready.empty(); }

  void suspend_yield(tcb& t, std::coroutine_handle<> h);
  void suspend_sleep(tcb& t, std::coroutine_handle<> h, sim::vdur d);

  /// Registers `waiter` to be woken when `target` exits; returns false if
  /// target already exited (waiter should not block).
  bool add_joiner(thread_id target, thread_id waiter);

  void on_thread_exit(tcb& t);

  // ------- observability (host-side only; never charges virtual time).

  /// Attaches a structured-event tracer (not owned). Each dispatched slice
  /// becomes a "run" span on the processor's track; blocks / yields / sleeps
  /// / unblocks become instants.
  void attach_tracer(obs::tracer* t) { tracer_ = t; }
  [[nodiscard]] obs::tracer* tracer() const { return tracer_; }

  /// Attaches a host-side scheduling observer (not owned; null detaches).
  void attach_observer(runtime_observer* o) { observer_ = o; }
  [[nodiscard]] runtime_observer* observer() const { return observer_; }

  /// Attaches a schedule perturber (not owned; null detaches): forwarded to
  /// the machine (tie-breaks, access spikes) and consulted directly for
  /// resume-point delays. Lock code reads it back via perturber() to honour
  /// forced preemption at lock-word touchpoints.
  void set_perturber(sim::perturber* p) {
    perturber_ = p;
    mach_.set_perturber(p);
  }
  [[nodiscard]] sim::perturber* perturber() const { return perturber_; }

  /// Snapshots the scheduling counters into a metrics registry.
  void export_metrics(obs::metrics& m, const std::string& prefix = "ct") const;

  [[nodiscard]] std::uint64_t dispatches() const { return dispatches_; }
  [[nodiscard]] std::uint64_t blocks() const { return blocks_; }
  [[nodiscard]] std::uint64_t unblocks() const { return unblocks_; }
  [[nodiscard]] std::uint64_t yields() const { return yields_; }

 private:
  struct processor {
    tcb* current{nullptr};
    sim::small_ring<tcb*, 4> ready;  ///< inline: ready depth rarely exceeds 4
  };

  void make_ready(tcb& t);
  void dispatch(proc_id p);
  void schedule_dispatch(proc_id p, sim::vdur after);

  /// Shared failure policy of run_all()/finish_all().
  void throw_failures(const run_result& r) const;

  [[nodiscard]] bool tracing() const { return tracer_ != nullptr && tracer_->recording(); }
  /// Closes the current "run" span of `t` and marks why it ended.
  void end_run_span(tcb& t, const char* how);

  sim::machine mach_;
  unsigned home_place_{0};
  std::vector<processor> procs_;
  std::vector<std::unique_ptr<tcb>> threads_;
  std::size_t live_threads_{0};

  obs::tracer* tracer_{nullptr};
  runtime_observer* observer_{nullptr};
  sim::perturber* perturber_{nullptr};
  std::uint64_t forks_{0};
  std::uint64_t dispatches_{0};
  std::uint64_t blocks_{0};
  std::uint64_t unblocks_{0};
  std::uint64_t yields_{0};
  std::uint64_t sleeps_{0};
  std::uint64_t exits_{0};
};

}  // namespace adx::ct
