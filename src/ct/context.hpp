// Per-thread view of the machine: every way a simulated thread can spend
// virtual time is an awaitable on its context.
//
//   co_await ctx.compute(us)          — burn processor time
//   co_await ctx.read(x) / write(x,v) — shared-memory access (NUMA-priced)
//   co_await ctx.fetch_or(x, m)       — atomic RMW at the owning module
//                                       (the GP1000 `atomior` analog)
//   co_await ctx.yield()/block()/sleep_for()/join()
//
// Plain C++ between awaits costs no virtual time; anything that would cost
// time on the real machine must go through an awaitable.
#pragma once

#include <coroutine>

#include "ct/runtime.hpp"
#include "ct/shared.hpp"
#include "sim/memory.hpp"

namespace adx::ct {

namespace detail {

struct timed_awaiter {
  runtime* rt;
  tcb* t;
  sim::vtime resume_at;

  bool await_ready() const noexcept { return resume_at <= rt->now(); }
  void await_suspend(std::coroutine_handle<> h) const {
    rt->schedule_resume(*t, h, resume_at);
  }
  void await_resume() const noexcept {}
};

template <typename T>
struct value_timed_awaiter {
  runtime* rt;
  tcb* t;
  sim::vtime resume_at;
  T value;

  bool await_ready() const noexcept { return resume_at <= rt->now(); }
  void await_suspend(std::coroutine_handle<> h) const {
    rt->schedule_resume(*t, h, resume_at);
  }
  T await_resume() const noexcept { return value; }
};

struct block_awaiter {
  runtime* rt;
  tcb* t;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const { rt->suspend_block(*t, h); }
  void await_resume() const noexcept {}
};

struct block_for_awaiter {
  runtime* rt;
  tcb* t;
  sim::vdur timeout;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    rt->suspend_block_for(*t, h, timeout);
  }
  /// True if woken by a peer; false if the timeout fired.
  bool await_resume() const noexcept { return !t->last_block_timed_out; }
};

struct yield_awaiter {
  runtime* rt;
  tcb* t;

  bool await_ready() const noexcept { return !rt->has_ready_peer(t->proc); }
  void await_suspend(std::coroutine_handle<> h) const { rt->suspend_yield(*t, h); }
  void await_resume() const noexcept {}
};

struct sleep_awaiter {
  runtime* rt;
  tcb* t;
  sim::vdur d;

  bool await_ready() const noexcept { return d.ns <= 0; }
  void await_suspend(std::coroutine_handle<> h) const { rt->suspend_sleep(*t, h, d); }
  void await_resume() const noexcept {}
};

struct join_awaiter {
  runtime* rt;
  tcb* t;
  thread_id target;

  bool await_ready() const noexcept {
    return rt->state_of(target) == thread_state::done;
  }
  bool await_suspend(std::coroutine_handle<> h) const {
    if (!rt->add_joiner(target, t->id)) return false;  // exited meanwhile
    rt->suspend_block(*t, h);
    return true;
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

class context {
 public:
  context(runtime& rt, tcb& t) : rt_(&rt), t_(&t) {}

  [[nodiscard]] runtime& rt() { return *rt_; }
  [[nodiscard]] sim::machine& mach() { return rt_->mach(); }
  [[nodiscard]] thread_id self() const { return t_->id; }
  [[nodiscard]] proc_id proc() const { return t_->proc; }
  [[nodiscard]] sim::vtime now() const { return rt_->now(); }
  [[nodiscard]] int priority() const { return t_->priority; }
  void set_priority(int p) { t_->priority = p; }

  /// Burn `d` of processor time.
  [[nodiscard]] detail::timed_awaiter compute(sim::vdur d) {
    return {rt_, t_, now() + d};
  }

  /// Shared-memory read; returns the value.
  template <typename T>
  [[nodiscard]] detail::value_timed_awaiter<T> read(const svar<T>& v) {
    const auto done = mach().access(proc(), v.home(), sim::access_kind::read);
    return {rt_, t_, done, v.raw()};
  }

  /// Shared-memory write.
  template <typename T>
  [[nodiscard]] detail::timed_awaiter write(svar<T>& v, T value) {
    const auto done = mach().access(proc(), v.home(), sim::access_kind::write);
    v.raw() = value;
    return {rt_, t_, done};
  }

  /// Generic atomic read-modify-write executed at the owning memory module;
  /// returns the previous value.
  template <typename T, typename F>
  [[nodiscard]] detail::value_timed_awaiter<T> rmw(svar<T>& v, F&& op) {
    const auto done = mach().access(proc(), v.home(), sim::access_kind::rmw);
    T old = v.raw();
    v.raw() = op(old);
    return {rt_, t_, done, old};
  }

  /// Atomic-or (the Butterfly `atomior` primitive); returns the old value.
  template <typename T>
  [[nodiscard]] auto fetch_or(svar<T>& v, T mask) {
    return rmw(v, [mask](T old) { return static_cast<T>(old | mask); });
  }

  template <typename T>
  [[nodiscard]] auto fetch_add(svar<T>& v, T delta) {
    return rmw(v, [delta](T old) { return static_cast<T>(old + delta); });
  }

  template <typename T>
  [[nodiscard]] auto exchange(svar<T>& v, T nv) {
    return rmw(v, [nv](T) { return nv; });
  }

  /// Compare-and-swap; returns the previous value (success iff == expect).
  template <typename T>
  [[nodiscard]] detail::value_timed_awaiter<T> cas(svar<T>& v, T expect, T desired) {
    const auto done = mach().access(proc(), v.home(), sim::access_kind::rmw);
    T old = v.raw();
    if (old == expect) v.raw() = desired;
    return {rt_, t_, done, old};
  }

  /// Charge `n` plain accesses to memory homed at `home` without modelling
  /// the data (bulk structure traffic: queue records, matrices, ...).
  [[nodiscard]] detail::timed_awaiter touch(sim::node_id home, sim::access_kind k,
                                            std::uint64_t n = 1) {
    return {rt_, t_, mach().access_n(proc(), home, k, n)};
  }

  /// Give up the processor to a ready peer (no-op when alone).
  [[nodiscard]] detail::yield_awaiter yield() { return {rt_, t_}; }

  /// Block until another thread calls unblock(self). The caller must have
  /// published its intent (e.g. enqueued itself on a lock's registration
  /// queue) *before* awaiting — there are no awaits between the two in lock
  /// code, which makes the pair atomic in the simulation.
  [[nodiscard]] detail::block_awaiter block() { return {rt_, t_}; }

  /// Block with a timeout; resumes with true if woken, false if it expired.
  [[nodiscard]] detail::block_for_awaiter block_for(sim::vdur d) { return {rt_, t_, d}; }

  /// Wake `target`; charges one write toward the target's processor node
  /// (run-queue manipulation traffic). Resumes with false if the target was
  /// not blocked (e.g. its timed wait expired concurrently).
  [[nodiscard]] detail::value_timed_awaiter<bool> unblock(thread_id target) {
    const auto t_proc = rt_->thread_ref(target).proc;
    const auto done = mach().access(proc(), t_proc, sim::access_kind::write);
    const bool woke = rt_->unblock(target);
    return {rt_, t_, done, woke};
  }

  /// Sleep for `d` of virtual time (processor is released).
  [[nodiscard]] detail::sleep_awaiter sleep_for(sim::vdur d) { return {rt_, t_, d}; }

  /// Wait for `target` to exit.
  [[nodiscard]] detail::join_awaiter join(thread_id target) { return {rt_, t_, target}; }

 private:
  runtime* rt_;
  tcb* t_;
};

}  // namespace adx::ct
