// A federation of thread-package runtimes over an execution domain.
//
// Sharding the DES by NUMA group means one group's events must never touch
// another group's native state directly — but a ct::runtime is exactly a bag
// of native state (TCBs, ready rings, memory-module queues). The federation
// therefore instantiates one runtime *per group*, each built on the domain's
// queue for that place with a machine trimmed to the group's own nodes, and
// routes every cross-group influence through the domain's send():
//
//   * fork(global_node, ...) places the thread on the runtime of
//     group_of(global_node), at the node's group-local processor.
//   * post(from, to, fn) ships `fn` to group `to`'s shard, timestamped at
//     exactly now + lookahead (the canonical cross-group transit time) and
//     tagged with a shard-invariant origin (from << 32 | counter). The
//     callback runs on the target shard and may freely poke that group's
//     runtime (unblock a server, push a mailbox entry, ...).
//
// Because each group's machine is seeded as a pure function of (seed, group)
// and all cross-group traffic merges at window barriers in (at, origin)
// order, a federated workload is bit-identical on the sequential queue and
// on any shard/worker count.
//
// The butterfly wire model is rejected: its staged network prices paths by
// *global* node ids, which a trimmed per-group machine cannot reproduce.
// constant_wire and hierarchical price intra-group traffic identically when
// trimmed (cross-group traffic is priced by the post() transit instead).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ct/runtime.hpp"
#include "sim/event_domain.hpp"

namespace adx::ct {

class federation {
 public:
  /// Identifies a thread in the federation: which group runtime owns it plus
  /// its id within that runtime.
  struct fed_thread {
    unsigned group{0};
    thread_id id{invalid_thread};
  };

  /// Builds one runtime per NUMA group of `cfg` on `dom`'s queues. The
  /// domain must have exactly cfg.groups() places and must outlive the
  /// federation. Throws std::invalid_argument for the butterfly wire model
  /// or a place-count mismatch.
  federation(sim::machine_config cfg, sim::event_domain& dom);

  federation(const federation&) = delete;
  federation& operator=(const federation&) = delete;

  [[nodiscard]] const sim::machine_config& config() const { return cfg_; }
  [[nodiscard]] sim::event_domain& domain() { return *dom_; }
  [[nodiscard]] unsigned groups() const { return static_cast<unsigned>(rts_.size()); }
  [[nodiscard]] runtime& group_runtime(unsigned g) { return *rts_.at(g); }
  [[nodiscard]] const runtime& group_runtime(unsigned g) const { return *rts_.at(g); }

  /// The machine-config slice group `g` runs on (nodes = that group's size,
  /// seed folded with the group index). Exposed for workloads that need the
  /// per-group node count.
  [[nodiscard]] static sim::machine_config group_config(const sim::machine_config& cfg,
                                                        unsigned g);
  /// Nodes in group `g` (the last group may be short).
  [[nodiscard]] unsigned group_nodes(unsigned g) const;

  /// Forks a thread on the *global* node id's group runtime, pinned to the
  /// node's group-local processor.
  fed_thread fork(sim::node_id global_node, runtime::thread_fn fn, int priority = 0);

  /// Ships `fn` to group `to`'s shard through the domain, timestamped at
  /// exactly sender-now + lookahead with a shard-invariant origin tag. Legal
  /// from setup code and from events on group `from`'s shard.
  void post(unsigned from, unsigned to, std::function<void()> fn);

  /// Cross-group wakeup: the canonical remote lock-handoff / reply path.
  /// Arrives at the target exactly one lookahead after the sender's clock.
  void post_unblock(unsigned from, fed_thread t);

  struct run_result {
    sim::vtime end_time{};
    std::uint64_t events{0};
    bool completed{false};
    /// Stuck threads across all groups, in group order.
    std::vector<fed_thread> stuck;
  };

  /// Drives the domain's window loop (ex may be null), then aggregates every
  /// group's result in group order. Does not throw; inspect the result.
  run_result run(exec::job_executor* ex = nullptr,
                 std::uint64_t max_events = 500'000'000ULL);

  /// Like run() but fails loudly: rethrows the first thread error (group
  /// order), then simulation_limit_error / deadlock_error as runtime does.
  run_result run_all(exec::job_executor* ex = nullptr,
                     std::uint64_t max_events = 500'000'000ULL);

  /// Cross-group messages shipped via post()/post_unblock(), summed over
  /// sending groups in fixed group order (read host-side, after run()).
  [[nodiscard]] std::uint64_t posts() const;

  /// Scheduling counters summed over groups in fixed group order.
  [[nodiscard]] std::uint64_t total_dispatches() const;
  [[nodiscard]] std::uint64_t total_blocks() const;
  [[nodiscard]] std::uint64_t total_unblocks() const;

 private:
  sim::machine_config cfg_;
  sim::event_domain* dom_;
  std::vector<std::unique_ptr<runtime>> rts_;
  /// Per-group origin and post counters; each slot is written only by its
  /// own shard (or setup code), so parallel windows never race on them.
  std::vector<std::uint64_t> origin_counters_;
  std::vector<std::uint64_t> posts_by_group_;
};

}  // namespace adx::ct
