#include "ct/federation.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace adx::ct {

namespace {
/// splitmix64's golden-gamma: folds the group index into the seed so every
/// group draws an independent stream that is a pure function of (seed, g).
constexpr std::uint64_t kSeedGamma = 0x9e3779b97f4a7c15ULL;
}  // namespace

sim::machine_config federation::group_config(const sim::machine_config& cfg,
                                             unsigned g) {
  sim::machine_config gc = cfg;
  const unsigned base = g * cfg.group_size;
  gc.nodes = std::min(cfg.group_size, cfg.nodes - base);
  // The trimmed machine is all one group: give it the whole-node group size
  // so group_of() is 0 everywhere and hierarchical pricing stays intra-group.
  gc.group_size = std::max(gc.nodes, 1u);
  gc.seed = cfg.seed ^ (kSeedGamma * (g + 1));
  return gc;
}

federation::federation(sim::machine_config cfg, sim::event_domain& dom)
    : cfg_(cfg), dom_(&dom) {
  if (cfg_.wire_model == sim::interconnect_model::butterfly) {
    throw std::invalid_argument(
        "federation: butterfly wire model prices paths by global node id and "
        "cannot be trimmed per group; use constant_wire or hierarchical");
  }
  const unsigned groups = cfg_.groups();
  if (dom_->places() != groups) {
    std::ostringstream msg;
    msg << "federation: domain has " << dom_->places() << " places, machine has "
        << groups << " groups";
    throw std::invalid_argument(msg.str());
  }
  rts_.reserve(groups);
  for (unsigned g = 0; g < groups; ++g) {
    rts_.push_back(std::make_unique<runtime>(group_config(cfg_, g),
                                             dom_->queue_of(g), /*home_place=*/g));
  }
  origin_counters_.assign(groups, 0);
  posts_by_group_.assign(groups, 0);
}

unsigned federation::group_nodes(unsigned g) const {
  return group_config(cfg_, g).nodes;
}

federation::fed_thread federation::fork(sim::node_id global_node,
                                        runtime::thread_fn fn, int priority) {
  if (global_node >= cfg_.nodes) {
    throw std::out_of_range("federation::fork: node out of range");
  }
  const unsigned g = cfg_.group_of(global_node);
  const proc_id local = global_node - g * cfg_.group_size;
  return {g, rts_[g]->fork(local, std::move(fn), priority)};
}

void federation::post(unsigned from, unsigned to, std::function<void()> fn) {
  const std::uint64_t origin =
      (static_cast<std::uint64_t>(from) << 32) | origin_counters_.at(from)++;
  ++posts_by_group_[from];
  const sim::vtime at = dom_->queue_of(from).now() + dom_->lookahead();
  dom_->send(from, to, at, origin, [f = std::move(fn)]() mutable { f(); });
}

void federation::post_unblock(unsigned from, fed_thread t) {
  runtime* rt = rts_.at(t.group).get();
  post(from, t.group, [rt, id = t.id] { rt->unblock(id); });
}

federation::run_result federation::run(exec::job_executor* ex,
                                       std::uint64_t max_events) {
  const std::uint64_t events = dom_->run(ex, max_events);
  run_result r;
  r.events = events;
  r.end_time = dom_->now();
  r.completed = dom_->empty();
  for (unsigned g = 0; g < groups(); ++g) {
    const auto gr = rts_[g]->finish(0);
    for (auto id : gr.stuck) r.stuck.push_back({g, id});
  }
  r.completed = r.completed && r.stuck.empty();
  return r;
}

federation::run_result federation::run_all(exec::job_executor* ex,
                                           std::uint64_t max_events) {
  auto r = run(ex, max_events);
  for (unsigned g = 0; g < groups(); ++g) {
    for (std::size_t t = 0; t < rts_[g]->thread_count(); ++t) {
      if (auto err = rts_[g]->error_of(static_cast<thread_id>(t))) {
        std::rethrow_exception(err);
      }
    }
  }
  if (!dom_->empty()) {
    throw simulation_limit_error("federation::run_all: event budget exhausted");
  }
  if (!r.completed) {
    std::ostringstream msg;
    msg << "federation::run_all: deadlock, " << r.stuck.size()
        << " thread(s) stuck:";
    std::vector<thread_id> flat;
    for (const auto& s : r.stuck) {
      msg << ' ' << s.group << ':' << s.id;
      flat.push_back(s.id);
    }
    throw deadlock_error(msg.str(), std::move(flat));
  }
  return r;
}

std::uint64_t federation::posts() const {
  std::uint64_t n = 0;
  for (auto p : posts_by_group_) n += p;
  return n;
}

std::uint64_t federation::total_dispatches() const {
  std::uint64_t n = 0;
  for (const auto& rt : rts_) n += rt->dispatches();
  return n;
}

std::uint64_t federation::total_blocks() const {
  std::uint64_t n = 0;
  for (const auto& rt : rts_) n += rt->blocks();
  return n;
}

std::uint64_t federation::total_unblocks() const {
  std::uint64_t n = 0;
  for (const auto& rt : rts_) n += rt->unblocks();
  return n;
}

}  // namespace adx::ct
