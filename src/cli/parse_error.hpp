// adx::cli — shared parse-error UX for enumerated axes.
//
// Every axis a CLI flag or JSON field can select from — lock kind, policy
// name, object kind, exec mode, sensor name, aggregation — fails the same
// way: `unknown <what>: <got> (valid: a b c)`. The main()s catch
// std::invalid_argument and exit 2, so a typo on any axis produces the same
// shape of message listing every valid value. This header is the single
// place that shape is built; parsers must not hand-roll it.
#pragma once

#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>

namespace adx::cli {

/// Builds the repo-standard parse failure for an enumerated axis:
/// `unknown <what>: <got> (valid: v1 v2 ...)`. `valid` is any range; `proj`
/// maps an element to its display name (defaults to the element itself, so
/// ranges of strings work directly; pass `[](auto k) { return to_string(k); }`
/// for enum ranges).
template <typename Range, typename Proj = std::identity>
[[nodiscard]] std::invalid_argument unknown_value(std::string_view what,
                                                  std::string_view got,
                                                  const Range& valid,
                                                  Proj proj = {}) {
  std::string msg = "unknown ";
  msg += what;
  msg += ": ";
  msg += got;
  msg += " (valid:";
  for (const auto& v : valid) {
    msg += ' ';
    msg += proj(v);
  }
  msg += ')';
  return std::invalid_argument(msg);
}

/// Initializer-list convenience: `throw unknown_value("mode", s, {"sync",
/// "async"});`
[[nodiscard]] inline std::invalid_argument unknown_value(
    std::string_view what, std::string_view got,
    std::initializer_list<std::string_view> valid) {
  return unknown_value<std::initializer_list<std::string_view>>(what, got,
                                                                valid);
}

}  // namespace adx::cli
