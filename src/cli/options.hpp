// One command-line parser for every executable in the repo (benches,
// examples, adx-check). Each program declares its flags once — name, default,
// help text — and gets in return:
//
//   * `--name=value` and `--name value` parsing,
//   * a generated `--help` screen built from the declaration table,
//   * a clean error (exit 2) on unknown flags or malformed values,
//
// replacing the per-bench ad-hoc argv scans that silently ignored typos.
//
//   auto opt = adx::cli::options("bench_fig4", "lock pattern figure")
//                  .u64("cities", 10, "TSP problem size")
//                  .str("lock", "adaptive", "lock kind to trace")
//                  .flag("csv", "emit raw trace points as CSV");
//   opt.parse(argc, argv);
//   const auto cities = opt.get_u64("cities");
//
// Header-only: the parser is small and every user links a different binary.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace adx::cli {

class options {
 public:
  options(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  /// Declares an unsigned integer flag.
  options& u64(std::string name, std::uint64_t def, std::string help) {
    decls_.push_back({std::move(name), kind::u64, std::to_string(def),
                      std::move(help)});
    return *this;
  }

  /// Declares a string flag.
  options& str(std::string name, std::string def, std::string help) {
    decls_.push_back({std::move(name), kind::str, std::move(def), std::move(help)});
    return *this;
  }

  /// Declares a boolean flag (present = true; takes no value).
  options& flag(std::string name, std::string help) {
    decls_.push_back({std::move(name), kind::boolean, "", std::move(help)});
    return *this;
  }

  /// Appends a free-form line to the generated --help screen (printed after
  /// the flag table). Benches use this to state which clock each figure is
  /// measured on — simulated virtual time vs host wall time.
  options& note(std::string line) {
    notes_.push_back(std::move(line));
    return *this;
  }

  /// Parses argv. On `--help`/`-h` prints the generated usage table and exits
  /// 0; on an unknown flag or malformed value prints an error and exits 2.
  void parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_help(std::cout);
        std::exit(0);
      }
      if (arg.size() < 3 || arg.substr(0, 2) != "--") {
        die("unexpected argument: " + std::string(arg));
      }
      std::string_view name = arg.substr(2);
      std::string_view value;
      bool has_value = false;
      if (const auto eq = name.find('='); eq != std::string_view::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_value = true;
      }
      decl* d = find(name);
      if (d == nullptr) die("unknown flag: --" + std::string(name));
      if (d->k == kind::boolean) {
        if (has_value) die("flag --" + d->name + " takes no value");
        d->value = "1";
        d->set = true;
        continue;
      }
      if (!has_value) {
        if (i + 1 >= argc) die("flag --" + d->name + " needs a value");
        value = argv[++i];
      }
      if (d->k == kind::u64 && !is_u64(value)) {
        die("flag --" + d->name + " needs an unsigned integer, got '" +
            std::string(value) + "'");
      }
      d->value = std::string(value);
      d->set = true;
    }
  }

  [[nodiscard]] std::uint64_t get_u64(std::string_view name) const {
    return std::strtoull(get(name, kind::u64).value.c_str(), nullptr, 10);
  }
  [[nodiscard]] const std::string& get_str(std::string_view name) const {
    return get(name, kind::str).value;
  }
  [[nodiscard]] bool get_flag(std::string_view name) const {
    return get(name, kind::boolean).set;
  }
  /// True if the flag appeared on the command line (vs. holding its default).
  [[nodiscard]] bool was_set(std::string_view name) const {
    for (const auto& d : decls_) {
      if (d.name == name) return d.set;
    }
    return false;
  }

  void print_help(std::ostream& os) const {
    os << program_ << " — " << summary_ << "\n\nOptions:\n";
    std::size_t width = 0;
    for (const auto& d : decls_) width = std::max(width, label(d).size());
    for (const auto& d : decls_) {
      const auto lbl = label(d);
      os << "  " << lbl << std::string(width - lbl.size() + 2, ' ') << d.help;
      if (d.k != kind::boolean) os << " (default: " << (d.value.empty() ? "\"\"" : d.value) << ')';
      os << '\n';
    }
    os << "  --help" << std::string(width > 4 ? width - 4 + 2 : 2, ' ')
       << "show this help\n";
    if (!notes_.empty()) {
      os << '\n';
      for (const auto& n : notes_) os << n << '\n';
    }
  }

 private:
  enum class kind : std::uint8_t { u64, str, boolean };
  struct decl {
    std::string name;
    kind k;
    std::string value;  ///< current value (default until overridden)
    std::string help;
    bool set{false};
  };

  [[nodiscard]] static std::string label(const decl& d) {
    switch (d.k) {
      case kind::u64: return "--" + d.name + "=<n>";
      case kind::str: return "--" + d.name + "=<s>";
      case kind::boolean: return "--" + d.name;
    }
    return "--" + d.name;
  }

  [[nodiscard]] static bool is_u64(std::string_view v) {
    if (v.empty()) return false;
    for (const char c : v) {
      if (c < '0' || c > '9') return false;
    }
    return true;
  }

  [[noreturn]] void die(const std::string& why) const {
    std::cerr << program_ << ": " << why << "\n(run with --help for usage)\n";
    std::exit(2);
  }

  decl* find(std::string_view name) {
    for (auto& d : decls_) {
      if (d.name == name) return &d;
    }
    return nullptr;
  }

  const decl& get(std::string_view name, kind k) const {
    for (const auto& d : decls_) {
      if (d.name == name) {
        if (d.k != k) throw std::logic_error("options: wrong type for --" + d.name);
        return d;
      }
    }
    throw std::logic_error("options: undeclared flag --" + std::string(name));
  }

  std::string program_;
  std::string summary_;
  std::vector<decl> decls_;
  std::vector<std::string> notes_;
};

}  // namespace adx::cli
