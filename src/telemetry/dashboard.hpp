// Terminal dashboard over a timeline snapshot.
//
// Pure formatting: snapshot in, text out — trivially testable, and the
// refresh loop in adx-telemetryd just clears the screen and reprints. Shows
// per-run progress and adaptation counters, lock-kind occupancy (which
// configuration each adaptive object currently holds), and p50/p99 from
// the merged latency histograms.
#pragma once

#include <string>

#include "telemetry/timeline.hpp"

namespace adx::telemetry {

struct dashboard_options {
  std::size_t max_histograms{12};  ///< cap the latency table (busiest first)
  bool color{false};               ///< ANSI color (off for tests / pipes)
};

/// Renders `snap` as a fixed-width text panel (no ANSI clear codes; callers
/// prepend those for live refresh).
[[nodiscard]] std::string render_dashboard(const timeline::snapshot_data& snap,
                                           const dashboard_options& opt = {});

}  // namespace adx::telemetry
