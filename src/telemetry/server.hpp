// The aggregation server behind adx-telemetryd.
//
// One listener thread accepts producers; each connection gets its own
// reader thread (the per-connection subclient pattern) that decodes frames
// and applies them to the shared timeline. A malformed stream poisons only
// its own connection; a producer that vanishes mid-stream just marks its
// run done. The server owns no export or rendering policy — that lives in
// the timeline and the dashboard.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/timeline.hpp"
#include "telemetry/wire.hpp"

namespace adx::telemetry {

class server {
 public:
  /// Binds `ep` and starts accepting. Returns null with `err` on failure.
  /// `tl` must outlive the server.
  [[nodiscard]] static std::unique_ptr<server> start(const endpoint& ep, timeline& tl,
                                                     std::string* err = nullptr);

  ~server() { stop(); }
  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Stops accepting, wakes and joins every connection reader. Idempotent.
  void stop();

  [[nodiscard]] std::size_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Streams that ended in a protocol error (decode failure, bad framing).
  [[nodiscard]] std::size_t protocol_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  server(timeline& tl, int listen_fd) : tl_(tl), listen_fd_(listen_fd) {}

  void accept_loop();
  void read_connection(int fd);

  timeline& tl_;
  int listen_fd_{-1};
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> errors_{0};

  std::mutex conns_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> readers_;
  bool stopped_{false};
};

}  // namespace adx::telemetry
